package calsys

// One benchmark per experiment row of DESIGN.md §3 (E1-E9), measuring the
// performance claims behind the paper's design: foreach/selection
// throughput, generate/caloperate, catalog-mediated evaluation (Figure 1),
// the §3.3 scripts, factorization (Figures 2-3), window inference (§3.4),
// and DBCRON scheduling (Figure 4). Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"math"
	"strings"
	"testing"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
	"calsys/internal/core/matcache"
	"calsys/internal/core/periodic"
	"calsys/internal/core/plan"
	"calsys/internal/multical"
	"calsys/internal/rules"
	"calsys/internal/store"
)

func benchEnv(b *testing.B, epoch Civil) (*plan.Env, *caldb.Manager) {
	b.Helper()
	mgr, err := caldb.New(store.NewDB(), chronology.MustNew(epoch))
	if err != nil {
		b.Fatal(err)
	}
	return mgr.Env(), mgr
}

func benchExpr(b *testing.B, src string) callang.Expr {
	b.Helper()
	e, err := callang.ParseExpr(src)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// --- E1: foreach and selection throughput (§3.1) ------------------------

func BenchmarkE1Foreach(b *testing.B) {
	ch := chronology.MustNew(DefaultEpoch)
	for _, years := range []int{1, 10, 50} {
		days := int64(years) * 365
		weeks, err := calendar.GenerateFull(ch, Week, Day, 1, days)
		if err != nil {
			b.Fatal(err)
		}
		months, err := calendar.GenerateFull(ch, Month, Day, 1, days)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("strict/years=%d", years), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := calendar.Foreach(weeks, Overlaps, true, months); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("relaxed/years=%d", years), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := calendar.Foreach(weeks, Overlaps, false, months); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE1Selection(b *testing.B) {
	ch := chronology.MustNew(DefaultEpoch)
	days, err := calendar.GenerateFull(ch, Day, Day, 1, 3650)
	if err != nil {
		b.Fatal(err)
	}
	weeks, err := calendar.GenerateFull(ch, Week, Day, 1, 3650)
	if err != nil {
		b.Fatal(err)
	}
	order2, err := calendar.Foreach(days, During, true, weeks)
	if err != nil {
		b.Fatal(err)
	}
	for _, sel := range []Selection{SelectIndex(2), SelectLast(), SelectList(1, 3, 5), SelectRange(2, 4)} {
		b.Run(sel.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := calendar.Select(sel, order2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2: generate and caloperate (§3.2) ----------------------------------

func BenchmarkE2Generate(b *testing.B) {
	ch := chronology.MustNew(DefaultEpoch)
	for _, g := range []Granularity{Week, Month, Year} {
		for _, years := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("%v/years=%d", g, years), func(b *testing.B) {
				hi := Tick(years) * 365
				for i := 0; i < b.N; i++ {
					if _, err := calendar.GenerateFull(ch, g, Day, 1, hi); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkE2Caloperate(b *testing.B) {
	ch := chronology.MustNew(DefaultEpoch)
	days, err := calendar.GenerateFull(ch, Day, Day, 1, 36500)
	if err != nil {
		b.Fatal(err)
	}
	for _, counts := range [][]int{{7}, {30, 31}, {90, 91, 92, 92}} {
		b.Run(fmt.Sprintf("counts=%v", counts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := calendar.Caloperate(days, counts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: catalog-mediated evaluation (Figure 1) ---------------------------

func BenchmarkE3TuesdaysThroughCatalog(b *testing.B) {
	env, mgr := benchEnv(b, DefaultEpoch)
	ls := caldb.Lifespan{Lo: 1, Hi: caldb.MaxDayTick}
	if err := mgr.DefineDerived("Tuesdays", "[2]/DAYS:during:WEEKS", ls, caldb.GranAuto); err != nil {
		b.Fatal(err)
	}
	e := benchExpr(b, "Tuesdays")
	from, to := MustDate(1993, 1, 1), MustDate(1993, 12, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Evaluate(env, e, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: the EMP-DAYS script (§3.3) ---------------------------------------

func BenchmarkE4EmpDaysScript(b *testing.B) {
	env, mgr := benchEnv(b, MustDate(1993, 1, 1))
	ls := caldb.Lifespan{Lo: 1, Hi: caldb.MaxDayTick}
	hol, _ := calendar.FromPoints(Day, []Tick{31, 90})
	if err := mgr.DefineStored("HOLIDAYS", hol, ls); err != nil {
		b.Fatal(err)
	}
	var bus []Tick
	for d := Tick(1); d <= 150; d++ {
		if d != 31 && d != 89 && d != 90 {
			bus = append(bus, d)
		}
	}
	busCal, _ := calendar.FromPoints(Day, bus)
	if err := mgr.DefineStored("AM_BUS_DAYS", busCal, ls); err != nil {
		b.Fatal(err)
	}
	script, err := callang.ParseScript(`{LDOM = [n]/DAYS:during:MONTHS;
		LDOM_HOL = LDOM:intersects:HOLIDAYS;
		LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
		return (LDOM - LDOM_HOL + LAST_BUS_DAY);}`)
	if err != nil {
		b.Fatal(err)
	}
	from, to := MustDate(1993, 1, 1), MustDate(1993, 4, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.RunScript(env, script, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6/E7: factorized vs initial plans (Figures 2-3) ----------------------

func benchFactorization(b *testing.B, exprSrc string) {
	env, mgr := benchEnv(b, DefaultEpoch)
	ls := caldb.Lifespan{Lo: 1, Hi: caldb.MaxDayTick}
	defs := map[string]string{
		"Mondays":     "[1]/DAYS:during:WEEKS",
		"Januarys":    "[1]/MONTHS:during:YEARS",
		"Third_Weeks": "[3]/WEEKS:overlaps:MONTHS",
	}
	for name, src := range defs {
		if err := mgr.DefineDerived(name, src, ls, caldb.GranAuto); err != nil {
			b.Fatal(err)
		}
	}
	e := benchExpr(b, exprSrc)
	from, to := MustDate(1987, 1, 1), MustDate(1994, 12, 31)
	b.Run("factorized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Evaluate(env, e, from, to); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("initial", func(b *testing.B) {
		envOff := *env
		envOff.DisableFactorization = true
		for i := 0; i < b.N; i++ {
			if _, err := plan.Evaluate(&envOff, e, from, to); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE6Fig2MondaysInJanuary(b *testing.B) {
	benchFactorization(b, "Mondays:during:Januarys:during:1993/YEARS")
}

func BenchmarkE7Fig3ThirdWeekInJanuary(b *testing.B) {
	benchFactorization(b, "Third_Weeks:during:Januarys:during:1993/YEARS")
}

// --- E8: window inference on vs off (§3.4) ---------------------------------

func BenchmarkE8WindowInference(b *testing.B) {
	env, mgr := benchEnv(b, DefaultEpoch)
	ls := caldb.Lifespan{Lo: 1, Hi: caldb.MaxDayTick}
	if err := mgr.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS", ls, caldb.GranAuto); err != nil {
		b.Fatal(err)
	}
	if err := mgr.DefineDerived("Januarys", "[1]/MONTHS:during:YEARS", ls, caldb.GranAuto); err != nil {
		b.Fatal(err)
	}
	e := benchExpr(b, "Mondays:during:Januarys:during:1993/YEARS")
	for _, years := range []int{1, 8, 64} {
		from := MustDate(1993, 1, 1)
		to := MustDate(1993+years-1, 12, 31)
		b.Run(fmt.Sprintf("windowed/baseYears=%d", years), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.Evaluate(env, e, from, to); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("unwindowed/baseYears=%d", years), func(b *testing.B) {
			envOff := *env
			envOff.DisableWindowInference = true
			for i := 0; i < b.N; i++ {
				if _, err := plan.Evaluate(&envOff, e, from, to); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9: DBCRON scheduling sweep (Figure 4) --------------------------------

func BenchmarkE9DBCronSweep(b *testing.B) {
	for _, nRules := range []int{1, 10, 100} {
		for _, probeDays := range []int64{1, 7} {
			b.Run(fmt.Sprintf("rules=%d/T=%dd", nRules, probeDays), func(b *testing.B) {
				mgr, err := caldb.New(store.NewDB(), chronology.MustNew(MustDate(1993, 1, 1)))
				if err != nil {
					b.Fatal(err)
				}
				eng, err := rules.NewEngine(mgr)
				if err != nil {
					b.Fatal(err)
				}
				start := int64(0)
				noop := rules.FuncAction{Name: "noop",
					Fn: func(*store.Txn, *store.Event, int64) error { return nil }}
				for i := 0; i < nRules; i++ {
					expr := fmt.Sprintf("[%d]/DAYS:during:WEEKS", i%5+1)
					if err := eng.DefineTemporalRule(fmt.Sprintf("r%d", i), expr, noop, start); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				// Each iteration simulates 30 virtual days of probing and firing.
				now := start
				cron, err := rules.NewDBCron(eng, probeDays*SecondsPerDay, now)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					now += 30 * SecondsPerDay
					if _, err := cron.AdvanceTo(now); err != nil {
						b.Fatal(err)
					}
				}
				fired, _ := cron.Stats()
				b.ReportMetric(float64(fired)/float64(b.N), "firings/30d")
			})
		}
	}
}

// --- substrate micro-benchmarks --------------------------------------------

func BenchmarkBTreeInsert(b *testing.B) {
	bt := store.NewBTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bt.Insert(store.NewInt(int64(i)), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexedLookupVsScan(b *testing.B) {
	db := store.NewDB()
	schema, _ := store.NewSchema(store.Column{Name: "k", Type: store.TInt}, store.Column{Name: "v", Type: store.TText})
	if err := db.CreateTable("t", schema); err != nil {
		b.Fatal(err)
	}
	if err := db.RunTxn(func(tx *store.Txn) error {
		for i := 0; i < 10000; i++ {
			if _, err := tx.Append("t", store.Row{store.NewInt(int64(i)), store.NewText("x")}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	tab, _ := db.Table("t")
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tab.LookupEq("k", store.NewInt(int64(i%10000))); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := db.CreateIndex("t", "k"); err != nil {
		b.Fatal(err)
	}
	b.Run("btree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tab.LookupEq("k", store.NewInt(int64(i%10000))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkIntervalSetOps(b *testing.B) {
	mk := func(n int, stride int64) interval.Set {
		ivs := make([]interval.Interval, n)
		for i := range ivs {
			lo := chronology.TickFromOffset(int64(i) * stride)
			ivs[i] = interval.Interval{Lo: lo, Hi: lo + stride/2}
		}
		return interval.NewSet(ivs...)
	}
	a, c := mk(1000, 10), mk(1000, 14)
	b.Run("union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.Union(c)
		}
	})
	b.Run("intersect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.Intersect(c)
		}
	})
	b.Run("diff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.Diff(c)
		}
	})
}

func BenchmarkParseAndFactorize(b *testing.B) {
	src := "([1]/(DAYS:during:WEEKS)):during:(([1]/(MONTHS:during:YEARS)):during:(1993/YEARS))"
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := callang.ParseExpr(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	e := benchExpr(b, src)
	b.Run("factorize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			callang.Factorize(e, callang.KindMap{})
		}
	})
}

func BenchmarkQueryWithCalendarOnClause(b *testing.B) {
	sys := MustOpen()
	if _, err := sys.Exec(`create readings (day date, level float)`); err != nil {
		b.Fatal(err)
	}
	d := MustDate(1993, 1, 1)
	for i := 0; i < 365; i++ {
		stmt := fmt.Sprintf(`append readings (day = "%s", level = %d.0)`, d, i)
		if _, err := sys.Exec(stmt); err != nil {
			b.Fatal(err)
		}
		d = d.AddDays(1)
	}
	if err := sys.DefineCalendar("Tuesdays", "[2]/DAYS:during:WEEKS", GranAuto); err != nil {
		b.Fatal(err)
	}
	b.Run("onTuesdays", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.ExecOne(`retrieve (readings.level) on Tuesdays`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fullScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.ExecOne(`retrieve (readings.level)`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: the paper's shared-calendar marking (common-subexpression
// sharing plus the per-run generation cache) on vs off.
func BenchmarkSharingAblation(b *testing.B) {
	env, mgr := benchEnv(b, DefaultEpoch)
	_ = mgr
	e := benchExpr(b, "([1]/DAYS:during:WEEKS) + ([2]/DAYS:during:WEEKS) + ([3]/DAYS:during:WEEKS)")
	from, to := MustDate(1993, 1, 1), MustDate(1994, 12, 31)
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Evaluate(env, e, from, to); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unshared", func(b *testing.B) {
		envOff := *env
		envOff.DisableSharing = true
		for i := 0; i < b.N; i++ {
			if _, err := plan.Evaluate(&envOff, e, from, to); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// The process-wide materialization cache: a cold evaluation (fresh cache
// every iteration) pays full generation cost; a warm one is served from the
// shared cache. The gap is what a catalog of long-lived sessions — DBCRON,
// time series, interactive queries — saves on every repeated evaluation.
func BenchmarkCacheColdVsWarm(b *testing.B) {
	_, mgr := benchEnv(b, DefaultEpoch)
	const src = "(DAYS:during:WEEKS) + (DAYS:during:MONTHS)"
	from, to := MustDate(1980, 1, 1), MustDate(2019, 12, 31)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env := mgr.Env()
			env.Mat = matcache.New(matcache.DefaultBudget)
			if _, err := mgr.EvalExprEnv(env, src, from, to); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		env := mgr.Env()
		env.Mat = matcache.New(matcache.DefaultBudget)
		if _, err := mgr.EvalExprEnv(env, src, from, to); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mgr.EvalExprEnv(env, src, from, to); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// The parallel generate fan-out: one plan with sixteen independent,
// comparable-cost generate ops (window inference gives each union branch its
// own disjoint year window, so sharing cannot merge them), executed serially
// vs on the bounded worker pool. The shared cache is detached so every
// iteration pays real generation cost.
func BenchmarkParallelPlanExecution(b *testing.B) {
	_, mgr := benchEnv(b, DefaultEpoch)
	var parts []string
	for yr := 1990; yr < 2006; yr++ {
		parts = append(parts, fmt.Sprintf("(DAYS:during:%d/YEARS)", yr))
	}
	e := benchExpr(b, strings.Join(parts, " + "))
	from, to := MustDate(1990, 1, 1), MustDate(2005, 12, 31)
	run := func(parallelism int) func(b *testing.B) {
		return func(b *testing.B) {
			env := mgr.Env()
			env.Mat = nil
			env.Parallelism = parallelism
			for i := 0; i < b.N; i++ {
				if _, err := plan.Evaluate(env, e, from, to); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(0)) // 0 = GOMAXPROCS workers
}

// §5 baseline: the paper's algebra vs hand-coded MultiCal-style event/span
// iteration for "the third Friday of every month of 1993". The algebra
// carries optimizer overhead; the baseline's cost is the code a user must
// write and maintain instead of one expression.
func BenchmarkMultiCalBaselineThirdFridays(b *testing.B) {
	env, _ := benchEnv(b, DefaultEpoch)
	e := benchExpr(b, "[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS")
	from, to := MustDate(1993, 1, 1), MustDate(1993, 12, 31)
	b.Run("algebra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Evaluate(env, e, from, to); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multical", func(b *testing.B) {
		ch := env.Chron
		g := multical.Gregorian{Chron: ch}
		for i := 0; i < b.N; i++ {
			var out []Civil
			cursor, err := g.FromFields(multical.FieldSet{"year": 1993, "month": 1, "day": 1})
			if err != nil {
				b.Fatal(err)
			}
			for m := 0; m < 12; m++ {
				fridays := 0
				ev := cursor
				for {
					day := ch.CivilOf(ev.At)
					if day.Weekday() == Friday {
						fridays++
						if fridays == 3 {
							out = append(out, day)
							break
						}
					}
					ev = g.AddSpan(ev, multical.SpanDay)
				}
				cursor = g.AddSpan(cursor, multical.SpanMonth)
			}
			if len(out) != 12 {
				b.Fatal("wrong result")
			}
		}
	})
}

// --- periodic compression (pattern-backed generation) -----------------------

// Cold generation walks the chronology for every element of the window; warm
// windowed expansion from a cached periodic pattern is two O(1) index
// computations plus O(output) arithmetic. The gap is what the compressed
// representation saves on every repeated generation of a basic calendar.
func BenchmarkPeriodicGenerateColdVsWarm(b *testing.B) {
	ch := chronology.MustNew(DefaultEpoch)
	win := interval.Interval{Lo: 1, Hi: 3650} // ten years of day ticks
	for _, g := range []Granularity{Day, Week, Month} {
		b.Run(fmt.Sprintf("cold/%v", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := calendar.GenerateFull(ch, g, Day, win.Lo, win.Hi); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("warm/%v", g), func(b *testing.B) {
			cache := matcache.New(0)
			k := matcache.Key{Scope: "bench", ID: "G|" + g.String(), Gran: Day}
			pat, err := periodic.ForBasicPair(ch, g, Day)
			if err != nil {
				b.Fatal(err)
			}
			cache.PutPattern(k, matcache.AllTime, pat, math.MinInt64, math.MaxInt64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := cache.Get(k, win); !ok {
					b.Fatal("pattern entry missed")
				}
			}
		})
	}
}

// Resident cache bytes per basic calendar over a forty-year day-tick window
// (long enough that every granularity clears the compression threshold): the
// materializedB/cal metric is what each calendar costs as an interval list,
// cachedB/cal what it costs as the pattern entry Put now stores.
func BenchmarkMatcacheFootprint(b *testing.B) {
	ch := chronology.MustNew(DefaultEpoch)
	grans := []Granularity{Day, Week, Month, Year}
	win := interval.Interval{Lo: 1, Hi: 14600}
	var cachedBytes, matBytes int64
	for i := 0; i < b.N; i++ {
		cache := matcache.New(0)
		matBytes = 0
		for _, g := range grans {
			cal, err := calendar.GenerateFull(ch, g, Day, win.Lo, win.Hi)
			if err != nil {
				b.Fatal(err)
			}
			matBytes += matcache.SizeOf(cal)
			cache.Put(matcache.Key{Scope: "bench", ID: "G|" + g.String(), Gran: Day}, win, cal, true)
		}
		st := cache.Stats()
		if st.Patterns != len(grans) {
			b.Fatalf("only %d of %d basic calendars compressed: %v", st.Patterns, len(grans), st)
		}
		cachedBytes = st.Bytes
	}
	b.ReportMetric(float64(cachedBytes)/float64(len(grans)), "cachedB/cal")
	b.ReportMetric(float64(matBytes)/float64(len(grans)), "materializedB/cal")
}

// Every foreach listop over disjoint sorted operands takes the linear sweep;
// the same op over an argument with overlapping elements falls back to the
// generic per-element path. allocs/op is the tell: the sweep allocates
// O(result), the generic path scans candidates per argument element.
func BenchmarkForeachSweepVsGeneric(b *testing.B) {
	ch := chronology.MustNew(DefaultEpoch)
	weeks, err := calendar.GenerateFull(ch, Week, Day, 1, 36500)
	if err != nil {
		b.Fatal(err)
	}
	months, err := calendar.GenerateFull(ch, Month, Day, 1, 36500)
	if err != nil {
		b.Fatal(err)
	}
	// Widening every month by a week makes neighbors overlap, defeating the
	// sweep's precondition while keeping comparable cardinalities.
	wide := append([]interval.Interval(nil), months.Intervals()...)
	for i := range wide {
		wide[i].Hi += 7
	}
	overlapping, err := calendar.FromIntervals(Day, wide)
	if err != nil {
		b.Fatal(err)
	}
	for _, op := range []ListOp{Overlaps, During, Meets, Before, BeforeEquals} {
		b.Run(fmt.Sprintf("sweep/%v", op), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := calendar.Foreach(weeks, op, true, months); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("generic/%v", op), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := calendar.Foreach(weeks, op, true, overlapping); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The endpoint-index sweep kernels against the linear-merge kernels they
// replaced, over ten years of DAYS/WEEKS at day ticks — the paper's standard
// workload shape. foreach runs During strict (the most common grouping),
// the set ops run DAYS-vs-WEEKS both ways. Union has no arm here: the
// disjoint union is a straight output-writing merge in both kernels and the
// endpoint index cannot shrink it. The endpoint sub-benchmarks are CI-gated
// on both ns/op and allocs/op (see cmd/benchjson -gate).
func BenchmarkEndpointSweepVsLinear(b *testing.B) {
	ch := chronology.MustNew(DefaultEpoch)
	days, err := calendar.GenerateFull(ch, Day, Day, 1, 3650)
	if err != nil {
		b.Fatal(err)
	}
	weeks, err := calendar.GenerateFull(ch, Week, Day, 1, 3650)
	if err != nil {
		b.Fatal(err)
	}
	days.PrimeIndex()
	weeks.PrimeIndex()
	type kernel struct {
		name string
		run  func() error
	}
	foreach := func(f func(*calendar.Calendar, ListOp, bool, *calendar.Calendar) (*calendar.Calendar, error)) func() error {
		return func() error { _, err := f(days, During, true, weeks); return err }
	}
	setop := func(f func(a, b *calendar.Calendar) (*calendar.Calendar, error)) func() error {
		return func() error {
			if _, err := f(days, weeks); err != nil {
				return err
			}
			_, err := f(weeks, days)
			return err
		}
	}
	for _, k := range []kernel{
		{"endpoint/foreach", foreach(calendar.ForeachSweepEndpoint)},
		{"linear/foreach", foreach(calendar.ForeachSweepLinear)},
		{"endpoint/diff", setop(calendar.Diff)},
		{"linear/diff", setop(calendar.DiffLinear)},
		{"endpoint/intersect", setop(calendar.Intersect)},
		{"linear/intersect", setop(calendar.IntersectLinear)},
	} {
		b.Run(k.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := k.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- next-instant kernel (DBCRON scheduling at scale) ----------------------

// BenchmarkNextAfter measures one next-trigger query through the plan
// Scheduler: the kernel path (pattern arithmetic / probe cache) against the
// seed windowed path (evaluate the full 730-day lookahead and scan). The
// kernel/windowed ratio is the speedup that lets DBCRON carry ~10^6 rules.
// The kernel sub-benchmarks are CI-gated (see cmd/benchjson -gate).
func BenchmarkNextAfter(b *testing.B) {
	env, _ := benchEnv(b, DefaultEpoch)
	ch := env.Chron
	start := ch.EpochSecondsOf(MustDate(1993, 1, 1))
	for _, tc := range []struct{ name, src string }{
		{"basic", "DAYS"},
		{"weekly", "[2]/DAYS:during:WEEKS"},
		{"monthly", "[n]/DAYS:during:MONTHS"},
	} {
		prepped, gran, err := plan.Prepare(env, benchExpr(b, tc.src), nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []string{"kernel", "windowed"} {
			b.Run(tc.name+"/"+mode, func(b *testing.B) {
				s := plan.NewScheduler(env, prepped, gran)
				s.Configure(0, mode == "windowed")
				at := start
				// Warm outside the timer: the kernel's first query probes.
				if _, _, err := s.NextAfter(at); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					next, ok, err := s.NextAfter(at)
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						at = start
						continue
					}
					at = next
				}
			})
		}
	}
}

// BenchmarkNextAfterSymbolicAblation isolates the symbolic pattern
// calculus on a composite expression (every day except Mondays) no basic
// fast path covers, measuring a fresh rule's first scheduling decision —
// the cost DBCRON pays per arriving rule. `symbolic` lowers the whole
// expression to a closed-form pattern at scheduler construction and
// answers by span arithmetic with zero window evaluations; `materialized`
// sets Env.DisableSymbolic and pays the probe path, which must evaluate a
// lookahead window before its cache can answer anything. (Steady-state
// queries converge: the probe cache also reduces to arithmetic once
// warmed. Compile time is exactly where the calculus wins.) The symbolic
// sub-benchmark is CI-gated (see cmd/benchjson -gate).
func BenchmarkNextAfterSymbolicAblation(b *testing.B) {
	env, _ := benchEnv(b, DefaultEpoch)
	ablated := *env
	ablated.DisableSymbolic = true
	start := env.Chron.EpochSecondsOf(MustDate(1993, 1, 1))
	prepped, gran, err := plan.Prepare(env, benchExpr(b, "(DAYS:during:WEEKS) - ([1]/DAYS:during:WEEKS)"), nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		env  *plan.Env
	}{
		{"symbolic", env},
		{"materialized", &ablated},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := plan.NewScheduler(mode.env, prepped, gran)
				if _, ok, err := s.NextAfter(start); err != nil || !ok {
					b.Fatalf("NextAfter: ok=%v err=%v", ok, err)
				}
			}
		})
	}
}
