package serve

import (
	"encoding/json"
	"net/http"

	calvet "calsys/internal/core/callang/vet"
)

// Stable API error codes. Like calvet's CV-codes these are append-only:
// clients and CI pipelines filter on them, so a code's meaning never changes
// once released.
const (
	ErrUnauthorized = "unauthorized" // missing or unknown token
	ErrForbidden    = "forbidden"    // valid token, wrong tenant
	ErrNotFound     = "not_found"
	ErrConflict     = "conflict"   // name already defined
	ErrBadJSON      = "bad_json"   // request body is not the expected JSON
	ErrBadSchema    = "bad_schema" // recurrence schema invalid (position = field)
	ErrVetFailed    = "vet_failed" // calvet rejected the definition (diagnostics carry CV-codes)
	ErrBadWindow    = "bad_window" // unparsable or oversized expansion window
	ErrBadRequest   = "bad_request"
	ErrTooLarge     = "too_large" // request body over the configured limit
	ErrInternal     = "internal"
)

// Diagnostic is one positioned calvet diagnostic rendered for the wire.
type Diagnostic struct {
	Code     string `json:"code"`               // CV001..CV013, or PARSE
	Severity string `json:"severity"`           // "error" | "warning"
	Position string `json:"position,omitempty"` // "line:col" into the derivation source
	Message  string `json:"message"`
}

// wireDiags renders calvet diagnostics for the wire, keeping each
// diagnostic's stable CV-code and source position.
func wireDiags(diags calvet.Diags) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		jd := Diagnostic{Code: d.Code, Severity: d.Severity.String(), Message: d.Msg}
		if p := d.Pos; p.Line != 0 || p.Col != 0 {
			jd.Position = p.String()
		}
		out = append(out, jd)
	}
	return out
}

// ErrorBody is the structured JSON error envelope every non-2xx response
// carries: {"error": {code, message, position?, diagnostics?}}.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Position locates the problem: a "line:col" into a calendar
	// expression, or a recurrence-schema field path such as "wdays[1]".
	Position    string       `json:"position,omitempty"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}

type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// writeJSON writes v with the given status; encoding failures surface as a
// bare 500 since the header is already committed.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a structured JSON error.
func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	writeJSON(w, status, errorEnvelope{Error: body})
}

// writeVetError maps calvet diagnostics onto a 400 vet_failed body, keeping
// each diagnostic's stable CV-code and source position.
func writeVetError(w http.ResponseWriter, what string, diags calvet.Diags) {
	body := ErrorBody{Code: ErrVetFailed, Message: what + " does not vet"}
	body.Diagnostics = wireDiags(diags)
	for i, d := range diags {
		if body.Diagnostics[i].Position != "" && d.Severity == calvet.Error {
			body.Position = body.Diagnostics[i].Position
			break
		}
	}
	writeError(w, http.StatusBadRequest, body)
}
