// Package serve is calserved's multi-tenant HTTP serving layer: per-tenant
// namespaces over the CALENDARS catalog and the temporal-rule engine, a
// convenience recurrence schema that compiles down to calendar-language
// expressions, vet-on-write with structured CV-coded errors, and prepared
// plans shared across tenants for catalog-independent expressions.
package serve

import (
	"fmt"
	"sort"
	"strings"

	"calsys/internal/chronology"
)

// Recurrence is the convenience schema tenants send instead of calendar
// expressions (after the kazoo temporal_rules API): "third Friday monthly"
// arrives as {"cycle":"monthly","ordinal":"third","wdays":["friday"]} and
// compiles to [3]/(([5]/(DAYS:during:WEEKS)):during:MONTHS). The compiled
// expression references only the basic calendars, so it is catalog-
// independent and its prepared plan is shared across tenants.
type Recurrence struct {
	// Cycle is the recurrence cycle: date, daily, weekly, monthly, yearly.
	Cycle string `json:"cycle"`
	// Interval is the recurrence interval; only the default 1 is supported
	// (see Compile).
	Interval int `json:"interval,omitempty"`
	// Days are month days (1..31, or negative to count from the end:
	// -1 is the last day); used by monthly and yearly cycles.
	Days []int `json:"days,omitempty"`
	// Ordinal picks which matching weekday: every, first, second, third,
	// fourth, fifth, last. Defaults to every when WDays is set.
	Ordinal string `json:"ordinal,omitempty"`
	// WDays are weekday names (monday..sunday; "wensday" is accepted for
	// kazoo compatibility).
	WDays []string `json:"wdays,omitempty"`
	// Month restricts a yearly cycle to one month (1..12).
	Month int `json:"month,omitempty"`
	// StartDate is the single date of a cycle=date recurrence (ISO
	// YYYY-MM-DD).
	StartDate string `json:"start_date,omitempty"`
}

// SchemaError is a positioned recurrence-schema rejection: Field names the
// offending field ("cycle", "wdays[1]", ...), which the HTTP layer surfaces
// as the error position.
type SchemaError struct {
	Field string
	Msg   string
}

func (e *SchemaError) Error() string { return fmt.Sprintf("%s: %s", e.Field, e.Msg) }

func schemaErrf(field, format string, args ...any) *SchemaError {
	return &SchemaError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// weekdayNumber resolves a weekday name to the paper's Monday=1..Sunday=7
// numbering — the selection index of that day within a WEEKS unit.
func weekdayNumber(name string) (int, bool) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "monday":
		return 1, true
	case "tuesday":
		return 2, true
	case "wednesday", "wensday": // kazoo's schema ships the typo; accept it
		return 3, true
	case "thursday":
		return 4, true
	case "friday":
		return 5, true
	case "saturday":
		return 6, true
	case "sunday":
		return 7, true
	}
	return 0, false
}

// ordinalIndex resolves an ordinal name to a selection predicate: "[k]" for
// first..fifth, "[n]" for last, and ok=false ("every") for no selection.
func ordinalIndex(ordinal string) (pred string, every bool, err error) {
	switch strings.ToLower(strings.TrimSpace(ordinal)) {
	case "", "every":
		return "", true, nil
	case "first":
		return "[1]", false, nil
	case "second":
		return "[2]", false, nil
	case "third":
		return "[3]", false, nil
	case "fourth":
		return "[4]", false, nil
	case "fifth":
		return "[5]", false, nil
	case "last":
		return "[n]", false, nil
	}
	return "", false, schemaErrf("ordinal",
		"unknown ordinal %q (want every, first, second, third, fourth, fifth or last)", ordinal)
}

// selList renders a sorted, deduplicated selection list like "[1,3,5]".
func selList(ks []int) string {
	sorted := append([]int(nil), ks...)
	sort.Ints(sorted)
	parts := sorted[:0]
	for i, k := range sorted {
		if i == 0 || k != sorted[i-1] {
			parts = append(parts, k)
		}
	}
	strs := make([]string, len(parts))
	for i, k := range parts {
		strs[i] = fmt.Sprintf("%d", k)
	}
	return "[" + strings.Join(strs, ",") + "]"
}

// wdayNumbers validates and resolves the WDays field.
func (r Recurrence) wdayNumbers() ([]int, error) {
	out := make([]int, 0, len(r.WDays))
	for i, name := range r.WDays {
		n, ok := weekdayNumber(name)
		if !ok {
			return nil, schemaErrf(fmt.Sprintf("wdays[%d]", i), "unknown weekday %q", name)
		}
		out = append(out, n)
	}
	return out, nil
}

// checkDays validates month-day selectors: non-zero, |d| ≤ 31.
func checkDays(days []int) error {
	for i, d := range days {
		if d == 0 || d > 31 || d < -31 {
			return schemaErrf(fmt.Sprintf("days[%d]", i),
				"month day %d out of range (1..31, or -1..-31 from the end)", d)
		}
	}
	return nil
}

// monthUnit renders the grouping unit for one month of every year:
// ([m]/(MONTHS:during:YEARS)).
func monthUnit(m int) string {
	return fmt.Sprintf("([%d]/(MONTHS:during:YEARS))", m)
}

// Compile translates the recurrence schema to a calendar-language
// expression over the basic calendars. The chronology is needed only by
// cycle=date, to anchor the start date as a day tick. All errors are
// *SchemaError with a field position.
//
// Interval values beyond 1 are rejected: the calendar algebra has no
// anchored "every k-th" operator (a selection like [1,3,...]/WEEKS:during:
// YEARS would silently re-anchor at year boundaries), and a wrong answer is
// worse than a clear refusal.
func (r Recurrence) Compile(ch *chronology.Chronology) (string, error) {
	if r.Interval < 0 {
		return "", schemaErrf("interval", "interval must be positive")
	}
	if r.Interval > 1 {
		return "", schemaErrf("interval",
			"interval %d is not supported: only the default interval 1 compiles to the calendar algebra", r.Interval)
	}
	cycle := strings.ToLower(strings.TrimSpace(r.Cycle))
	switch cycle {
	case "":
		return "", schemaErrf("cycle", "cycle is required (date, daily, weekly, monthly or yearly)")
	case "date":
		return r.compileDate(ch)
	case "daily":
		return r.compileDaily()
	case "weekly":
		return r.compileWeekly()
	case "monthly":
		return r.compileMonthly()
	case "yearly":
		return r.compileYearly()
	}
	return "", schemaErrf("cycle", "unknown cycle %q (want date, daily, weekly, monthly or yearly)", r.Cycle)
}

// reject returns a SchemaError if any of the named fields is set; each
// cycle kind accepts only the fields that shape it, so a stray field is a
// mistake worth surfacing rather than ignoring.
func (r Recurrence) reject(cycle string, fields ...string) error {
	for _, f := range fields {
		set := false
		switch f {
		case "days":
			set = len(r.Days) > 0
		case "wdays":
			set = len(r.WDays) > 0
		case "ordinal":
			set = strings.TrimSpace(r.Ordinal) != ""
		case "month":
			set = r.Month != 0
		case "start_date":
			set = strings.TrimSpace(r.StartDate) != ""
		}
		if set {
			return schemaErrf(f, "%s is not supported for cycle %q", f, cycle)
		}
	}
	return nil
}

func (r Recurrence) compileDate(ch *chronology.Chronology) (string, error) {
	if err := r.reject("date", "days", "wdays", "ordinal", "month"); err != nil {
		return "", err
	}
	if strings.TrimSpace(r.StartDate) == "" {
		return "", schemaErrf("start_date", "cycle \"date\" requires start_date (YYYY-MM-DD)")
	}
	d, err := chronology.ParseCivil(r.StartDate)
	if err != nil {
		return "", schemaErrf("start_date", "bad date %q: %v", r.StartDate, err)
	}
	t := ch.DayTick(d)
	if t < 1 {
		return "", schemaErrf("start_date", "date %s is before the system epoch %s", d, ch.Epoch())
	}
	return fmt.Sprintf("DAYS:during:interval(%d, %d)", t, t), nil
}

func (r Recurrence) compileDaily() (string, error) {
	if err := r.reject("daily", "days", "wdays", "ordinal", "month", "start_date"); err != nil {
		return "", err
	}
	return "DAYS", nil
}

func (r Recurrence) compileWeekly() (string, error) {
	if err := r.reject("weekly", "days", "ordinal", "month", "start_date"); err != nil {
		return "", err
	}
	if len(r.WDays) == 0 {
		return "", schemaErrf("wdays", "cycle \"weekly\" requires wdays")
	}
	ws, err := r.wdayNumbers()
	if err != nil {
		return "", err
	}
	return selList(ws) + "/DAYS:during:WEEKS", nil
}

// compileWithin builds the monthly/yearly core over a grouping unit: unit ==
// "MONTHS" for monthly, or ([m]/(MONTHS:during:YEARS)) for one month of
// every year. cycle names the cycle for error messages.
func (r Recurrence) compileWithin(cycle, unit string) (string, error) {
	hasDays, hasWDays := len(r.Days) > 0, len(r.WDays) > 0
	if hasDays && (hasWDays || strings.TrimSpace(r.Ordinal) != "") {
		return "", schemaErrf("days", "days cannot be combined with wdays/ordinal")
	}
	switch {
	case hasDays:
		if err := checkDays(r.Days); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s/(DAYS:during:%s)", selList(r.Days), unit), nil
	case hasWDays:
		pred, every, err := ordinalIndex(r.Ordinal)
		if err != nil {
			return "", err
		}
		ws, err := r.wdayNumbers()
		if err != nil {
			return "", err
		}
		if every {
			// Every matching weekday: group the weekday calendar by the
			// unit, no outer selection.
			return fmt.Sprintf("(%s/(DAYS:during:WEEKS)):during:%s", selList(ws), unit), nil
		}
		// The k-th matching weekday of each unit, one union term per
		// weekday ("first Monday or Friday" is first-Monday + first-Friday).
		terms := make([]string, len(ws))
		for i, w := range ws {
			terms[i] = fmt.Sprintf("%s/(([%d]/(DAYS:during:WEEKS)):during:%s)", pred, w, unit)
		}
		return strings.Join(terms, " + "), nil
	case strings.TrimSpace(r.Ordinal) != "":
		return "", schemaErrf("ordinal", "ordinal requires wdays")
	case cycle == "yearly":
		// A bare yearly month is every day of that month.
		return fmt.Sprintf("DAYS:during:%s", unit), nil
	}
	return "", schemaErrf("days", "cycle %q requires days, or wdays with an optional ordinal", cycle)
}

func (r Recurrence) compileMonthly() (string, error) {
	if err := r.reject("monthly", "month", "start_date"); err != nil {
		return "", err
	}
	return r.compileWithin("monthly", "MONTHS")
}

func (r Recurrence) compileYearly() (string, error) {
	if err := r.reject("yearly", "start_date"); err != nil {
		return "", err
	}
	if r.Month == 0 {
		return "", schemaErrf("month", "cycle \"yearly\" requires month (1..12)")
	}
	if r.Month < 1 || r.Month > 12 {
		return "", schemaErrf("month", "month %d out of range (1..12)", r.Month)
	}
	return r.compileWithin("yearly", monthUnit(r.Month))
}
