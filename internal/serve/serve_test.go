package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"calsys/internal/chronology"
)

const testAdminToken = "test-admin-token"

// newTestServer boots a server anchored at 1993-01-01 behind httptest.
func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	today, _ := chronology.ParseCivil("1993-01-01")
	srv, err := New(Config{AdminToken: testAdminToken, Today: today})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// call issues one JSON request and decodes the response body.
func call(t *testing.T, ts *httptest.Server, method, path, token string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := map[string]any{}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s %s: non-JSON body %q", method, path, raw)
		}
	}
	return resp.StatusCode, out
}

// errCode digs the structured code out of an error envelope.
func errCode(body map[string]any) string {
	e, _ := body["error"].(map[string]any)
	code, _ := e["code"].(string)
	return code
}

// mkTenant provisions a tenant and returns its token.
func mkTenant(t *testing.T, ts *httptest.Server, name string) string {
	t.Helper()
	status, body := call(t, ts, "POST", "/v1/tenants", testAdminToken, map[string]any{"name": name})
	if status != http.StatusCreated {
		t.Fatalf("create tenant %s: status %d body %v", name, status, body)
	}
	tok, _ := body["token"].(string)
	if tok == "" {
		t.Fatalf("create tenant %s: no token in %v", name, body)
	}
	return tok
}

func TestHealthAndRouting(t *testing.T) {
	ts, _ := newTestServer(t)
	status, body := call(t, ts, "GET", "/healthz", "", nil)
	if status != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", status, body)
	}
	// Unknown routes come back as structured JSON, not the mux's text page.
	status, body = call(t, ts, "GET", "/no/such/route", "", nil)
	if status != http.StatusNotFound || errCode(body) != ErrNotFound {
		t.Fatalf("unknown route: %d %v", status, body)
	}
}

func TestTenantLifecycleAndAuth(t *testing.T) {
	ts, _ := newTestServer(t)

	// Tenant lifecycle is admin-only.
	status, body := call(t, ts, "POST", "/v1/tenants", "", map[string]any{"name": "acme"})
	if status != http.StatusUnauthorized || errCode(body) != ErrUnauthorized {
		t.Fatalf("create without token: %d %v", status, body)
	}
	status, body = call(t, ts, "POST", "/v1/tenants", "wrong", map[string]any{"name": "acme"})
	if status != http.StatusUnauthorized {
		t.Fatalf("create with wrong token: %d %v", status, body)
	}

	acme := mkTenant(t, ts, "acme")
	globex := mkTenant(t, ts, "globex")

	// Names are unique (case-insensitive) and validated.
	status, body = call(t, ts, "POST", "/v1/tenants", testAdminToken, map[string]any{"name": "ACME"})
	if status != http.StatusConflict || errCode(body) != ErrConflict {
		t.Fatalf("duplicate tenant: %d %v", status, body)
	}
	status, body = call(t, ts, "POST", "/v1/tenants", testAdminToken, map[string]any{"name": "no spaces"})
	if status != http.StatusBadRequest || errCode(body) != ErrBadRequest {
		t.Fatalf("invalid tenant name: %d %v", status, body)
	}

	// A tenant token opens its own namespace but not a peer's.
	status, _ = call(t, ts, "GET", "/v1/tenants/acme/calendars", acme, nil)
	if status != http.StatusOK {
		t.Fatalf("own namespace: %d", status)
	}
	status, body = call(t, ts, "GET", "/v1/tenants/acme/calendars", globex, nil)
	if status != http.StatusForbidden || errCode(body) != ErrForbidden {
		t.Fatalf("cross-tenant token: %d %v", status, body)
	}
	status, body = call(t, ts, "GET", "/v1/tenants/acme/calendars", "", nil)
	if status != http.StatusUnauthorized {
		t.Fatalf("no token: %d %v", status, body)
	}
	// The admin token opens every namespace.
	status, _ = call(t, ts, "GET", "/v1/tenants/acme/calendars", testAdminToken, nil)
	if status != http.StatusOK {
		t.Fatalf("admin in tenant namespace: %d", status)
	}

	// Drop, then the namespace is gone.
	status, _ = call(t, ts, "DELETE", "/v1/tenants/globex", testAdminToken, nil)
	if status != http.StatusNoContent {
		t.Fatalf("drop tenant: %d", status)
	}
	status, body = call(t, ts, "GET", "/v1/tenants/globex/calendars", globex, nil)
	if status != http.StatusNotFound {
		t.Fatalf("dropped tenant namespace: %d %v", status, body)
	}
}

func TestCalendarCRUD(t *testing.T) {
	ts, _ := newTestServer(t)
	tok := mkTenant(t, ts, "acme")

	// Derived calendar from a literal derivation.
	status, body := call(t, ts, "PUT", "/v1/tenants/acme/calendars/weekdays", tok,
		map[string]any{"derivation": "[1,2,3,4,5]/DAYS:during:WEEKS"})
	if status != http.StatusCreated {
		t.Fatalf("put derived: %d %v", status, body)
	}
	if body["granularity"] != "DAYS" || body["stored"] != false {
		t.Fatalf("derived entry: %v", body)
	}

	// Derived calendar from a recurrence schema: the response carries the
	// compiled derivation.
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/calendars/paydays", tok,
		map[string]any{"recurrence": map[string]any{"cycle": "monthly", "days": []int{15, -1}}})
	if status != http.StatusCreated {
		t.Fatalf("put recurrence: %d %v", status, body)
	}
	// The catalog canonicalizes derivations to script form; the compiled
	// expression is inside.
	if d, _ := body["derivation"].(string); !strings.Contains(d, "[-1,15]/(DAYS:during:MONTHS)") {
		t.Fatalf("compiled derivation: %q", body["derivation"])
	}

	// Stored calendar from explicit days; replace works in place.
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/calendars/holidays", tok,
		map[string]any{"days": []string{"1993-01-01", "1993-07-04"}})
	if status != http.StatusCreated || body["stored"] != true {
		t.Fatalf("put stored: %d %v", status, body)
	}
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/calendars/holidays", tok,
		map[string]any{"days": []string{"1993-01-01", "1993-07-04", "1993-12-25"}})
	if status != http.StatusOK || body["replaced"] != true {
		t.Fatalf("replace stored: %d %v", status, body)
	}

	// Redefining a derived calendar conflicts; storing days under a derived
	// name conflicts too.
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/calendars/weekdays", tok,
		map[string]any{"derivation": "DAYS"})
	if status != http.StatusConflict || errCode(body) != ErrConflict {
		t.Fatalf("redefine derived: %d %v", status, body)
	}
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/calendars/weekdays", tok,
		map[string]any{"days": []string{"1993-01-01"}})
	if status != http.StatusConflict {
		t.Fatalf("store over derived: %d %v", status, body)
	}

	// Exactly one body variant.
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/calendars/both", tok,
		map[string]any{"derivation": "DAYS", "days": []string{"1993-01-01"}})
	if status != http.StatusBadRequest || errCode(body) != ErrBadRequest {
		t.Fatalf("two variants: %d %v", status, body)
	}

	// List is sorted; get and delete round-trip.
	status, body = call(t, ts, "GET", "/v1/tenants/acme/calendars", tok, nil)
	if status != http.StatusOK {
		t.Fatalf("list: %d %v", status, body)
	}
	cals, _ := body["calendars"].([]any)
	var names []string
	for _, c := range cals {
		m, _ := c.(map[string]any)
		names = append(names, m["name"].(string))
	}
	if strings.Join(names, ",") != "holidays,paydays,weekdays" {
		t.Fatalf("list order: %v", names)
	}
	status, body = call(t, ts, "GET", "/v1/tenants/acme/calendars/paydays", tok, nil)
	if status != http.StatusOK || body["name"] != "paydays" {
		t.Fatalf("get: %d %v", status, body)
	}
	status, _ = call(t, ts, "DELETE", "/v1/tenants/acme/calendars/paydays", tok, nil)
	if status != http.StatusNoContent {
		t.Fatalf("delete: %d", status)
	}
	status, body = call(t, ts, "GET", "/v1/tenants/acme/calendars/paydays", tok, nil)
	if status != http.StatusNotFound || errCode(body) != ErrNotFound {
		t.Fatalf("get after delete: %d %v", status, body)
	}
}

// TestVetOnWrite proves definitions are vetted before the catalog is
// touched: a cyclic derivation comes back as a 400 with the analyzer's
// CV-coded, positioned diagnostics in the JSON body, and the catalog stays
// clean.
func TestVetOnWrite(t *testing.T) {
	ts, _ := newTestServer(t)
	tok := mkTenant(t, ts, "acme")

	// Self-referential derivation: calvet reports a CV002 cycle.
	status, body := call(t, ts, "PUT", "/v1/tenants/acme/calendars/selfloop", tok,
		map[string]any{"derivation": "selfloop + DAYS"})
	if status != http.StatusBadRequest {
		t.Fatalf("cyclic definition accepted: %d %v", status, body)
	}
	if errCode(body) != ErrVetFailed {
		t.Fatalf("error code: %v", body)
	}
	e, _ := body["error"].(map[string]any)
	diags, _ := e["diagnostics"].([]any)
	if len(diags) == 0 {
		t.Fatalf("no diagnostics in %v", body)
	}
	found := false
	for _, d := range diags {
		m, _ := d.(map[string]any)
		if m["code"] == "CV002" {
			found = true
			if m["severity"] != "error" {
				t.Fatalf("CV002 severity: %v", m)
			}
		}
	}
	if !found {
		t.Fatalf("no CV002 diagnostic in %v", diags)
	}

	// The rejected name never reached the catalog.
	status, _ = call(t, ts, "GET", "/v1/tenants/acme/calendars/selfloop", tok, nil)
	if status != http.StatusNotFound {
		t.Fatalf("rejected calendar is defined: %d", status)
	}

	// Undefined references are vetted too (CV001), on calendars and rules.
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/calendars/dangling", tok,
		map[string]any{"derivation": "nosuchcal + DAYS"})
	if status != http.StatusBadRequest || errCode(body) != ErrVetFailed {
		t.Fatalf("undefined ref: %d %v", status, body)
	}
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/rules/dangling", tok,
		map[string]any{"expr": "nosuchcal"})
	if status != http.StatusBadRequest || errCode(body) != ErrVetFailed {
		t.Fatalf("undefined rule ref: %d %v", status, body)
	}

	// A parse error surfaces as a positioned PARSE diagnostic.
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/calendars/broken", tok,
		map[string]any{"derivation": "DAYS:during:"})
	if status != http.StatusBadRequest || errCode(body) != ErrVetFailed {
		t.Fatalf("parse error: %d %v", status, body)
	}
}

// TestRecurrenceSchemaErrors proves invalid recurrence schemas come back as
// bad_schema with the offending field as the position.
func TestRecurrenceSchemaErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	tok := mkTenant(t, ts, "acme")
	status, body := call(t, ts, "PUT", "/v1/tenants/acme/calendars/bad", tok,
		map[string]any{"recurrence": map[string]any{"cycle": "weekly", "wdays": []string{"monday", "funday"}}})
	if status != http.StatusBadRequest || errCode(body) != ErrBadSchema {
		t.Fatalf("bad schema: %d %v", status, body)
	}
	e, _ := body["error"].(map[string]any)
	if e["position"] != "wdays[1]" {
		t.Fatalf("position: %v", e)
	}
}

func TestRuleCRUD(t *testing.T) {
	ts, _ := newTestServer(t)
	tok := mkTenant(t, ts, "acme")

	// Define from a recurrence; the response carries the compiled expr and
	// the next firing date after the tenant clock (anchored 1993-01-01).
	status, body := call(t, ts, "PUT", "/v1/tenants/acme/rules/board-meeting", tok,
		map[string]any{"recurrence": map[string]any{"cycle": "monthly", "ordinal": "third", "wdays": []string{"friday"}}})
	if status != http.StatusCreated {
		t.Fatalf("put rule: %d %v", status, body)
	}
	if body["next"] != "1993-01-15" {
		t.Fatalf("next firing: %v", body)
	}

	// Duplicate names conflict.
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/rules/board-meeting", tok,
		map[string]any{"expr": "DAYS"})
	if status != http.StatusConflict || errCode(body) != ErrConflict {
		t.Fatalf("duplicate rule: %d %v", status, body)
	}

	// Exactly one of expr/recurrence.
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/rules/none", tok, map[string]any{})
	if status != http.StatusBadRequest {
		t.Fatalf("empty rule body: %d %v", status, body)
	}

	// Get, list, next-by-rule, delete.
	status, body = call(t, ts, "GET", "/v1/tenants/acme/rules/board-meeting", tok, nil)
	if status != http.StatusOK || body["expr"] != "[3]/(([5]/(DAYS:during:WEEKS)):during:MONTHS)" {
		t.Fatalf("get rule: %d %v", status, body)
	}
	status, body = call(t, ts, "GET", "/v1/tenants/acme/rules", tok, nil)
	if status != http.StatusOK {
		t.Fatalf("list rules: %d %v", status, body)
	}
	if rules, _ := body["rules"].([]any); len(rules) != 1 {
		t.Fatalf("rule list: %v", body)
	}
	status, body = call(t, ts, "POST", "/v1/tenants/acme/next", tok,
		map[string]any{"rule": "board-meeting", "after": "1993-01-20"})
	if status != http.StatusOK || body["next"] != "1993-02-19" {
		t.Fatalf("next by rule: %d %v", status, body)
	}
	status, _ = call(t, ts, "DELETE", "/v1/tenants/acme/rules/board-meeting", tok, nil)
	if status != http.StatusNoContent {
		t.Fatalf("delete rule: %d", status)
	}
	status, _ = call(t, ts, "GET", "/v1/tenants/acme/rules/board-meeting", tok, nil)
	if status != http.StatusNotFound {
		t.Fatalf("get after delete: %d", status)
	}
}

func TestExpand(t *testing.T) {
	ts, _ := newTestServer(t)
	tok := mkTenant(t, ts, "acme")

	status, body := call(t, ts, "POST", "/v1/tenants/acme/expand", tok, map[string]any{
		"recurrence": map[string]any{"cycle": "monthly", "ordinal": "third", "wdays": []string{"friday"}},
		"from":       "1993-01-01", "to": "1993-03-31",
	})
	if status != http.StatusOK {
		t.Fatalf("expand: %d %v", status, body)
	}
	ivs, _ := body["intervals"].([]any)
	var starts []string
	for _, iv := range ivs {
		m, _ := iv.(map[string]any)
		starts = append(starts, m["start"].(string))
	}
	if strings.Join(starts, ",") != "1993-01-15,1993-02-19,1993-03-19" {
		t.Fatalf("expand intervals: %v", starts)
	}
	if body["count"] != float64(3) {
		t.Fatalf("expand count: %v", body["count"])
	}

	// Expansion sees the tenant's own catalog.
	call(t, ts, "PUT", "/v1/tenants/acme/calendars/holidays", tok,
		map[string]any{"days": []string{"1993-07-04", "1993-12-25"}})
	status, body = call(t, ts, "POST", "/v1/tenants/acme/expand", tok, map[string]any{
		"expr": "holidays", "from": "1993-01-01", "to": "1993-12-31",
	})
	if status != http.StatusOK {
		t.Fatalf("expand catalog expr: %d %v", status, body)
	}
	if body["count"] != float64(2) {
		t.Fatalf("holiday count: %v", body)
	}

	// Window validation: bad dates, inverted and oversized windows.
	for _, tc := range []struct{ from, to string }{
		{"not-a-date", "1993-01-01"},
		{"1993-01-01", "not-a-date"},
		{"1993-06-01", "1993-01-01"},
		{"1900-01-01", "2300-01-01"},
	} {
		status, body = call(t, ts, "POST", "/v1/tenants/acme/expand", tok, map[string]any{
			"expr": "DAYS", "from": tc.from, "to": tc.to,
		})
		if status != http.StatusBadRequest || errCode(body) != ErrBadWindow {
			t.Fatalf("window %s..%s: %d %v", tc.from, tc.to, status, body)
		}
	}
}

func TestNextInstant(t *testing.T) {
	ts, _ := newTestServer(t)
	tok := mkTenant(t, ts, "acme")

	// A basic-only expression rides the cross-tenant shared plan.
	status, body := call(t, ts, "POST", "/v1/tenants/acme/next", tok, map[string]any{
		"recurrence": map[string]any{"cycle": "yearly", "month": 7, "days": []int{4}},
	})
	if status != http.StatusOK {
		t.Fatalf("next: %d %v", status, body)
	}
	if body["next"] != "1993-07-04" || body["shared_plan"] != true {
		t.Fatalf("next basic: %v", body)
	}

	// An expression over the tenant catalog does not.
	call(t, ts, "PUT", "/v1/tenants/acme/calendars/holidays", tok,
		map[string]any{"days": []string{"1993-07-04", "1993-12-25"}})
	status, body = call(t, ts, "POST", "/v1/tenants/acme/next", tok, map[string]any{
		"expr": "holidays", "after": "1993-08-01",
	})
	if status != http.StatusOK {
		t.Fatalf("next catalog: %d %v", status, body)
	}
	if body["next"] != "1993-12-25" || body["shared_plan"] != false {
		t.Fatalf("next catalog: %v", body)
	}
}

// TestStructuredBodyErrors proves the request-body guardrails answer in the
// same structured JSON envelope as everything else.
func TestStructuredBodyErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	tok := mkTenant(t, ts, "acme")

	// Malformed JSON.
	req, _ := http.NewRequest("PUT", ts.URL+"/v1/tenants/acme/calendars/x",
		strings.NewReader("{not json"))
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("bad-JSON response is not JSON: %q", raw)
	}
	if resp.StatusCode != http.StatusBadRequest || errCode(body) != ErrBadJSON {
		t.Fatalf("bad JSON: %d %v", resp.StatusCode, body)
	}

	// Unknown fields are rejected, not silently dropped.
	status, body := call(t, ts, "PUT", "/v1/tenants/acme/calendars/x", tok,
		map[string]any{"derivation": "DAYS", "bogus": 1})
	if status != http.StatusBadRequest || errCode(body) != ErrBadJSON {
		t.Fatalf("unknown field: %d %v", status, body)
	}

	// Oversized bodies come back as structured 413s.
	today, _ := chronology.ParseCivil("1993-01-01")
	small, err := New(Config{AdminToken: testAdminToken, Today: today, MaxBodyBytes: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tss := httptest.NewServer(small.Handler())
	defer tss.Close()
	tok2 := mkTenant(t, tss, "acme")
	big := map[string]any{"derivation": strings.Repeat("DAYS + ", 200) + "DAYS"}
	status, body = call(t, tss, "PUT", "/v1/tenants/acme/calendars/big", tok2, big)
	if status != http.StatusRequestEntityTooLarge || errCode(body) != ErrTooLarge {
		t.Fatalf("oversized body: %d %v", status, body)
	}
}

// TestXAuthTokenHeader proves the alternate header spelling authenticates.
func TestXAuthTokenHeader(t *testing.T) {
	ts, _ := newTestServer(t)
	tok := mkTenant(t, ts, "acme")
	req, _ := http.NewRequest("GET", ts.URL+"/v1/tenants/acme/calendars", nil)
	req.Header.Set("X-Auth-Token", tok)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("X-Auth-Token auth: %d", resp.StatusCode)
	}
}

// TestStatsEndpoint sanity-checks the admin stats surface.
func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	mkTenant(t, ts, "acme")
	status, body := call(t, ts, "GET", "/v1/stats", testAdminToken, nil)
	if status != http.StatusOK {
		t.Fatalf("stats: %d %v", status, body)
	}
	if body["tenants"] != float64(1) {
		t.Fatalf("tenant count: %v", body)
	}
	status, _ = call(t, ts, "GET", "/v1/stats", "", nil)
	if status != http.StatusUnauthorized {
		t.Fatalf("stats without admin: %d", status)
	}
}

// TestCacheStatsEndpoint sanity-checks the admin cache observability
// surface: aggregate counters plus one footprint entry per shard.
func TestCacheStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	mkTenant(t, ts, "acme")
	status, body := call(t, ts, "GET", "/debug/cachestats", testAdminToken, nil)
	if status != http.StatusOK {
		t.Fatalf("cachestats: %d %v", status, body)
	}
	agg, ok := body["matcache"].(map[string]any)
	if !ok {
		t.Fatalf("no matcache aggregate in %v", body)
	}
	for _, field := range []string{"hits", "misses", "flights", "flight_waits", "bytes", "budget", "shards"} {
		if _, ok := agg[field]; !ok {
			t.Fatalf("aggregate missing %q: %v", field, agg)
		}
	}
	shards, ok := body["shards"].([]any)
	if !ok || len(shards) != int(agg["shards"].(float64)) {
		t.Fatalf("shards array (%v) does not match aggregate shard count %v", body["shards"], agg["shards"])
	}
	if status, _ = call(t, ts, "GET", "/debug/cachestats", "", nil); status != http.StatusUnauthorized {
		t.Fatalf("cachestats without admin: %d", status)
	}
}

// TestConcurrentTenants hammers several tenant namespaces concurrently —
// the race job runs this under -race to prove the registry, the shared
// plan cache and the per-tenant systems hold up.
func TestConcurrentTenants(t *testing.T) {
	ts, _ := newTestServer(t)
	const nTenants = 4
	tokens := make([]string, nTenants)
	for i := range tokens {
		tokens[i] = mkTenant(t, ts, fmt.Sprintf("t%d", i))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, nTenants*4)
	for i, tok := range tokens {
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("t%d", i)
			base := "/v1/tenants/" + name
			for j := 0; j < 8; j++ {
				status, body := call(t, ts, "PUT", fmt.Sprintf("%s/calendars/cal%d", base, j), tok,
					map[string]any{"days": []string{"1993-03-15", "1993-09-01"}})
				if status != http.StatusCreated {
					errCh <- fmt.Errorf("%s put cal%d: %d %v", name, j, status, body)
					return
				}
				status, body = call(t, ts, "POST", base+"/next", tok, map[string]any{
					"recurrence": map[string]any{"cycle": "monthly", "ordinal": "third", "wdays": []string{"friday"}},
				})
				if status != http.StatusOK || body["next"] != "1993-01-15" {
					errCh <- fmt.Errorf("%s next: %d %v", name, status, body)
					return
				}
				status, body = call(t, ts, "POST", base+"/expand", tok, map[string]any{
					"expr": fmt.Sprintf("cal%d", j), "from": "1993-01-01", "to": "1993-12-31",
				})
				if status != http.StatusOK || body["count"] != float64(2) {
					errCh <- fmt.Errorf("%s expand cal%d: %d %v", name, j, status, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// A provably-empty rule expression defines successfully (warnings never
// reject a write) but the 201 envelope must carry the CV010 diagnostic so
// clients learn the rule will never fire.
func TestRulePutSurfacesSymbolicWarnings(t *testing.T) {
	ts, _ := newTestServer(t)
	tok := mkTenant(t, ts, "acme")
	status, body := call(t, ts, "PUT", "/v1/tenants/acme/rules/never", tok,
		map[string]any{"expr": "DAYS - DAYS"})
	if status != http.StatusCreated {
		t.Fatalf("create: %d %v", status, body)
	}
	diags, _ := body["diagnostics"].([]any)
	if len(diags) == 0 {
		t.Fatalf("no diagnostics in success envelope: %v", body)
	}
	found := false
	for _, d := range diags {
		m, _ := d.(map[string]any)
		if m["code"] == "CV010" && m["severity"] == "warning" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no CV010 warning in %v", diags)
	}

	// A clean rule keeps a clean envelope.
	status, body = call(t, ts, "PUT", "/v1/tenants/acme/rules/daily", tok,
		map[string]any{"expr": "DAYS"})
	if status != http.StatusCreated {
		t.Fatalf("create daily: %d %v", status, body)
	}
	if _, present := body["diagnostics"]; present {
		t.Fatalf("unexpected diagnostics on clean rule: %v", body)
	}
}
