package serve

import (
	"fmt"
	"sync"

	"calsys"
	"calsys/internal/chronology"
	"calsys/internal/core/callang"
	"calsys/internal/core/plan"
)

// PlanShare holds prepared next-instant schedulers for catalog-independent
// expressions — those referencing only the basic calendars (DAYS, WEEKS,
// MONTHS, YEARS, ...), which is exactly what the recurrence compiler emits.
// Because such an expression evaluates identically for every tenant, one
// Scheduler (with its probe cache and exact-pattern fast path) serves
// thousands of tenants: the Bettini-style "stay on the compiled/pattern
// path" economics of the server. Tenant-dependent expressions never land
// here; they are evaluated under the owning tenant's catalog.
type PlanShare struct {
	sys *calsys.System // dedicated empty-catalog system the schedulers run under

	mu     sync.Mutex
	scheds map[string]*plan.Scheduler // canonical prepped expr + gran -> scheduler
	hits   int64
	misses int64
}

// NewPlanShare builds the share over a dedicated system (empty catalog,
// default epoch — basic calendars only, so the catalog never matters).
func NewPlanShare() (*PlanShare, error) {
	sys, err := calsys.Open(calsys.WithCatalogScope("shared-plans"))
	if err != nil {
		return nil, err
	}
	return &PlanShare{sys: sys, scheds: map[string]*plan.Scheduler{}}, nil
}

// Shareable reports whether a parsed expression references only basic
// calendars (no catalog entries, no `today`), making its plan valid for
// every tenant.
func Shareable(e callang.Expr) bool { return shareable(e) }

func shareable(e callang.Expr) bool {
	for ref := range callang.Analyze(e, callang.KindMap{}).Refs {
		if _, err := chronology.ParseGranularity(ref); err != nil {
			return false
		}
	}
	return true
}

// SchedulerFor returns the shared scheduler for a basic-only expression,
// building it on first use. ok=false means the expression is tenant-
// dependent and the caller must evaluate it under the tenant's own catalog.
func (p *PlanShare) SchedulerFor(e callang.Expr) (*plan.Scheduler, bool, error) {
	if !shareable(e) {
		return nil, false, nil
	}
	mgr := p.sys.Rules().Cal()
	env := mgr.Env()
	prepped, gran, err := plan.Prepare(env, e, nil)
	if err != nil {
		return nil, false, err
	}
	key := fmt.Sprintf("%s|%v", prepped.String(), gran)
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.scheds[key]; ok {
		p.hits++
		return s, true, nil
	}
	p.misses++
	s := plan.NewScheduler(env, prepped, gran)
	p.scheds[key] = s
	return s, true, nil
}

// Chron exposes the chronology shared plans are anchored at.
func (p *PlanShare) Chron() *chronology.Chronology { return p.sys.Chron() }

// ShareStats is the /v1/stats rendering of the plan share.
type ShareStats struct {
	Plans  int   `json:"plans"`  // distinct shared schedulers
	Hits   int64 `json:"hits"`   // scheduler reuses across requests/tenants
	Misses int64 `json:"misses"` // scheduler builds
}

// Stats snapshots the share counters.
func (p *PlanShare) Stats() ShareStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ShareStats{Plans: len(p.scheds), Hits: p.hits, Misses: p.misses}
}
