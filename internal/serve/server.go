package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"calsys"
	"calsys/internal/chronology"
	"calsys/internal/core/callang"
	"calsys/internal/core/matcache"
	"calsys/internal/core/plan"
)

// DefaultMaxBodyBytes bounds request bodies (1 MiB): calendar definitions
// and recurrence schemas are small; anything bigger is a mistake or abuse.
const DefaultMaxBodyBytes = 1 << 20

// maxWindowDays caps an expansion window (200 years): windowed evaluation
// is O(output), and an unbounded window lets one request monopolize a
// worker.
const maxWindowDays = 200 * 366

// Config assembles a Server.
type Config struct {
	// AdminToken authorizes tenant lifecycle and /v1/stats.
	AdminToken string
	// Today anchors every tenant's clock (zero value: the chronology
	// epoch, 1987-01-01).
	Today chronology.Civil
	// MaxBodyBytes caps request bodies; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// Server is the calserved HTTP layer: token auth, per-tenant CRUD with
// vet-on-write, windowed expansion and next-instant queries, all errors as
// structured JSON.
type Server struct {
	reg     *Registry
	share   *PlanShare
	maxBody int64
	mux     *http.ServeMux
}

// New assembles a server.
func New(cfg Config) (*Server, error) {
	if cfg.AdminToken == "" {
		return nil, fmt.Errorf("serve: Config.AdminToken is required")
	}
	today := cfg.Today
	if today == (chronology.Civil{}) {
		today = calsys.DefaultEpoch
	}
	share, err := NewPlanShare()
	if err != nil {
		return nil, err
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	s := &Server{
		reg:     NewRegistry(cfg.AdminToken, today),
		share:   share,
		maxBody: maxBody,
		mux:     http.NewServeMux(),
	}
	s.routes()
	return s, nil
}

// Registry exposes the tenant registry (tests, embedding).
func (s *Server) Registry() *Registry { return s.reg }

func (s *Server) routes() {
	m := s.mux
	m.HandleFunc("GET /healthz", s.handleHealth)
	m.HandleFunc("POST /v1/tenants", s.admin(s.handleTenantCreate))
	m.HandleFunc("GET /v1/tenants", s.admin(s.handleTenantList))
	m.HandleFunc("DELETE /v1/tenants/{tenant}", s.admin(s.handleTenantDrop))
	m.HandleFunc("GET /v1/stats", s.admin(s.handleStats))
	m.HandleFunc("GET /debug/cachestats", s.admin(s.handleCacheStats))

	m.HandleFunc("GET /v1/tenants/{tenant}/calendars", s.tenant(s.handleCalendarList))
	m.HandleFunc("PUT /v1/tenants/{tenant}/calendars/{name}", s.tenant(s.handleCalendarPut))
	m.HandleFunc("GET /v1/tenants/{tenant}/calendars/{name}", s.tenant(s.handleCalendarGet))
	m.HandleFunc("DELETE /v1/tenants/{tenant}/calendars/{name}", s.tenant(s.handleCalendarDelete))

	m.HandleFunc("GET /v1/tenants/{tenant}/rules", s.tenant(s.handleRuleList))
	m.HandleFunc("PUT /v1/tenants/{tenant}/rules/{name}", s.tenant(s.handleRulePut))
	m.HandleFunc("GET /v1/tenants/{tenant}/rules/{name}", s.tenant(s.handleRuleGet))
	m.HandleFunc("DELETE /v1/tenants/{tenant}/rules/{name}", s.tenant(s.handleRuleDelete))

	m.HandleFunc("POST /v1/tenants/{tenant}/expand", s.tenant(s.handleExpand))
	m.HandleFunc("POST /v1/tenants/{tenant}/next", s.tenant(s.handleNext))

	// Catch-all: unmatched paths get the same structured 404 as missing
	// resources, not the mux's plain-text page.
	m.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, ErrorBody{
			Code: ErrNotFound, Message: fmt.Sprintf("no route %s %s", r.Method, r.URL.Path),
		})
	})
}

// Handler returns the root handler: body-capped, panic-isolated routing.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		defer func() {
			if p := recover(); p != nil {
				writeError(w, http.StatusInternalServerError, ErrorBody{
					Code: ErrInternal, Message: fmt.Sprintf("internal error: %v", p),
				})
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// token extracts the bearer token: Authorization: Bearer <t> or
// X-Auth-Token: <t> (the kazoo convention).
func token(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if t, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(t)
		}
	}
	return strings.TrimSpace(r.Header.Get("X-Auth-Token"))
}

// admin wraps a handler with admin-token auth.
func (s *Server) admin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.reg.IsAdmin(token(r)) {
			writeError(w, http.StatusUnauthorized, ErrorBody{
				Code: ErrUnauthorized, Message: "admin token required",
			})
			return
		}
		h(w, r)
	}
}

// tenant wraps a handler with tenant auth: the path tenant's own token or
// the admin token. The resolved tenant rides in the request context-free
// way: handlers re-resolve via pathTenant.
func (s *Server) tenant(h func(w http.ResponseWriter, r *http.Request, t *Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		t, ok := s.reg.Get(name)
		if !ok {
			writeError(w, http.StatusNotFound, ErrorBody{
				Code: ErrNotFound, Message: fmt.Sprintf("no tenant %q", name),
			})
			return
		}
		tok := token(r)
		if tok == "" {
			writeError(w, http.StatusUnauthorized, ErrorBody{
				Code: ErrUnauthorized, Message: "token required (Authorization: Bearer or X-Auth-Token)",
			})
			return
		}
		if tok != t.Token && !s.reg.IsAdmin(tok) {
			writeError(w, http.StatusForbidden, ErrorBody{
				Code: ErrForbidden, Message: fmt.Sprintf("token does not grant access to tenant %q", name),
			})
			return
		}
		h(w, r, t)
	}
}

// decode reads a JSON body into v, mapping oversize and malformed bodies to
// structured errors. Returns false after writing the error response.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
				Code: ErrTooLarge, Message: fmt.Sprintf("request body over %d bytes", maxErr.Limit),
			})
			return false
		}
		writeError(w, http.StatusBadRequest, ErrorBody{
			Code: ErrBadJSON, Message: "bad JSON body: " + err.Error(),
		})
		return false
	}
	// Trailing garbage after the JSON value is a client bug.
	if dec.More() {
		writeError(w, http.StatusBadRequest, ErrorBody{
			Code: ErrBadJSON, Message: "trailing data after JSON body",
		})
		return false
	}
	_, _ = io.Copy(io.Discard, r.Body)
	return true
}

// --- health and admin ----------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type tenantCreateReq struct {
	Name string `json:"name"`
}

type tenantCreateResp struct {
	Name  string `json:"name"`
	Token string `json:"token"`
}

func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	var req tenantCreateReq
	if !s.decode(w, r, &req) {
		return
	}
	t, err := s.reg.Create(req.Name)
	if err != nil {
		status, code := http.StatusBadRequest, ErrBadRequest
		if strings.Contains(err.Error(), "already exists") {
			status, code = http.StatusConflict, ErrConflict
		}
		writeError(w, status, ErrorBody{Code: code, Message: err.Error(), Position: "name"})
		return
	}
	writeJSON(w, http.StatusCreated, tenantCreateResp{Name: t.Name, Token: t.Token})
}

func (s *Server) handleTenantList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.reg.Names()})
}

func (s *Server) handleTenantDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if !s.reg.Drop(name) {
		writeError(w, http.StatusNotFound, ErrorBody{
			Code: ErrNotFound, Message: fmt.Sprintf("no tenant %q", name),
		})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var matStats any
	if t, ok := s.firstTenant(); ok {
		matStats = t.System().MatStats()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tenants":      len(s.reg.Names()),
		"shared_plans": s.share.Stats(),
		"matcache":     matStats,
	})
}

// handleCacheStats reports the process-wide materialization cache: aggregate
// counters (hits/misses/flights/…) plus each shard's resident footprint, so
// operators can spot stripe imbalance and stampede behavior live.
func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	mat := matcache.Shared()
	writeJSON(w, http.StatusOK, map[string]any{
		"matcache": mat.Stats(),
		"shards":   mat.ShardStats(),
	})
}

// firstTenant returns any tenant (the shared cache's stats are process-wide,
// so any manager reads the same counters).
func (s *Server) firstTenant() (*Tenant, bool) {
	names := s.reg.Names()
	if len(names) == 0 {
		return nil, false
	}
	return s.reg.Get(names[0])
}

// --- calendars -----------------------------------------------------------

// calendarPutReq defines or replaces a calendar. Exactly one of Derivation,
// Recurrence or Days must be set: a calendar-language derivation, a
// recurrence schema (compiled to a derivation), or explicit stored dates
// (a HOLIDAYS-style values calendar, replaceable in place).
type calendarPutReq struct {
	Derivation string      `json:"derivation,omitempty"`
	Recurrence *Recurrence `json:"recurrence,omitempty"`
	Days       []string    `json:"days,omitempty"`
}

// calendarJSON is one catalog entry on the wire.
type calendarJSON struct {
	Name        string   `json:"name"`
	Derivation  string   `json:"derivation,omitempty"`
	EvalPlan    string   `json:"eval_plan,omitempty"`
	Granularity string   `json:"granularity"`
	Lifespan    string   `json:"lifespan"`
	Stored      bool     `json:"stored"`
	Warnings    []string `json:"warnings,omitempty"`
	Replaced    bool     `json:"replaced,omitempty"`
}

func entryJSON(e *calsys.CalendarEntry) calendarJSON {
	return calendarJSON{
		Name:        e.Name,
		Derivation:  e.Derivation,
		EvalPlan:    e.EvalPlan,
		Granularity: e.Gran.String(),
		Lifespan:    e.Lifespan.String(),
		Stored:      e.Values != nil,
		Warnings:    e.Warnings,
	}
}

func (s *Server) handleCalendarPut(w http.ResponseWriter, r *http.Request, t *Tenant) {
	name := r.PathValue("name")
	var req calendarPutReq
	if !s.decode(w, r, &req) {
		return
	}
	set := 0
	for _, ok := range []bool{req.Derivation != "", req.Recurrence != nil, len(req.Days) > 0} {
		if ok {
			set++
		}
	}
	if set != 1 {
		writeError(w, http.StatusBadRequest, ErrorBody{
			Code:    ErrBadRequest,
			Message: "exactly one of derivation, recurrence or days must be set",
		})
		return
	}
	sys := t.System()
	mgr := t.Manager()

	// Stored-values calendar: define, or replace in place when it exists.
	if len(req.Days) > 0 {
		cal, err := s.pointCalendar(sys, req.Days)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrorBody{
				Code: ErrBadRequest, Message: err.Error(), Position: "days",
			})
			return
		}
		replaced := false
		if prev, ok := mgr.Lookup(name); ok {
			if prev.Values == nil {
				writeError(w, http.StatusConflict, ErrorBody{
					Code:    ErrConflict,
					Message: fmt.Sprintf("calendar %q is derived; drop it before storing values under the name", name),
				})
				return
			}
			if err := sys.ReplaceStoredCalendar(name, cal); err != nil {
				writeError(w, http.StatusBadRequest, ErrorBody{Code: ErrBadRequest, Message: err.Error()})
				return
			}
			replaced = true
		} else if err := sys.DefineStoredCalendar(name, cal); err != nil {
			writeError(w, http.StatusBadRequest, ErrorBody{Code: ErrBadRequest, Message: err.Error()})
			return
		}
		e, _ := mgr.Lookup(name)
		resp := entryJSON(e)
		resp.Replaced = replaced
		status := http.StatusCreated
		if replaced {
			status = http.StatusOK
		}
		writeJSON(w, status, resp)
		return
	}

	// Derived calendar: from a literal derivation or a compiled recurrence.
	derivation := req.Derivation
	if req.Recurrence != nil {
		expr, err := req.Recurrence.Compile(sys.Chron())
		if err != nil {
			writeSchemaError(w, err)
			return
		}
		derivation = expr
	}
	if _, exists := mgr.Lookup(name); exists {
		writeError(w, http.StatusConflict, ErrorBody{
			Code: ErrConflict, Message: fmt.Sprintf("calendar %q already defined", name),
		})
		return
	}
	// Vet-on-write: reject with the analyzer's positioned CV-coded
	// diagnostics before the catalog is touched.
	if diags := mgr.Vet(name, derivation); diags.HasErrors() {
		writeVetError(w, fmt.Sprintf("calendar %q", name), diags)
		return
	}
	if err := sys.DefineCalendar(name, derivation, calsys.GranAuto); err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Code: ErrBadRequest, Message: err.Error()})
		return
	}
	e, _ := mgr.Lookup(name)
	writeJSON(w, http.StatusCreated, entryJSON(e))
}

// pointCalendar builds a stored DAYS calendar from ISO dates.
func (s *Server) pointCalendar(sys *calsys.System, days []string) (*calsys.Calendar, error) {
	ticks := make([]calsys.Tick, 0, len(days))
	for i, d := range days {
		c, err := chronology.ParseCivil(d)
		if err != nil {
			return nil, fmt.Errorf("days[%d]: %v", i, err)
		}
		tick := sys.DayTickOf(c)
		if tick < 1 {
			return nil, fmt.Errorf("days[%d]: %s is before the system epoch", i, c)
		}
		ticks = append(ticks, tick)
	}
	return calsys.PointCalendar(calsys.Day, ticks...)
}

// writeSchemaError maps a recurrence-compile error onto bad_schema with the
// field as position.
func writeSchemaError(w http.ResponseWriter, err error) {
	var se *SchemaError
	if errors.As(err, &se) {
		writeError(w, http.StatusBadRequest, ErrorBody{
			Code: ErrBadSchema, Message: se.Msg, Position: se.Field,
		})
		return
	}
	writeError(w, http.StatusBadRequest, ErrorBody{Code: ErrBadSchema, Message: err.Error()})
}

func (s *Server) handleCalendarList(w http.ResponseWriter, _ *http.Request, t *Tenant) {
	mgr := t.Manager()
	names := mgr.Names()
	out := make([]calendarJSON, 0, len(names))
	for _, n := range names {
		if e, ok := mgr.Lookup(n); ok {
			out = append(out, entryJSON(e))
		}
	}
	// Names() iterates a map; present a stable order.
	sortCalendars(out)
	writeJSON(w, http.StatusOK, map[string]any{"calendars": out})
}

func sortCalendars(cs []calendarJSON) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Name < cs[j-1].Name; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func (s *Server) handleCalendarGet(w http.ResponseWriter, r *http.Request, t *Tenant) {
	name := r.PathValue("name")
	e, ok := t.Manager().Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorBody{
			Code: ErrNotFound, Message: fmt.Sprintf("no calendar %q", name),
		})
		return
	}
	writeJSON(w, http.StatusOK, entryJSON(e))
}

func (s *Server) handleCalendarDelete(w http.ResponseWriter, r *http.Request, t *Tenant) {
	name := r.PathValue("name")
	if err := t.System().DropCalendar(name); err != nil {
		writeError(w, http.StatusNotFound, ErrorBody{Code: ErrNotFound, Message: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- rules ---------------------------------------------------------------

// rulePutReq defines a temporal rule from a calendar expression or a
// recurrence schema.
type rulePutReq struct {
	Expr       string      `json:"expr,omitempty"`
	Recurrence *Recurrence `json:"recurrence,omitempty"`
}

// ruleJSON is one rule on the wire.
type ruleJSON struct {
	Name  string `json:"name"`
	Expr  string `json:"expr"`
	Fired int64  `json:"fired"`
	Next  string `json:"next,omitempty"` // next firing date after the tenant clock
	// Diagnostics carries the analyzer's warnings on a successful define
	// (e.g. a CV010 provably-empty expression or a CV011 duplicate of an
	// existing calendar) so clients see them without failing the write.
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}

func (s *Server) handleRulePut(w http.ResponseWriter, r *http.Request, t *Tenant) {
	name := r.PathValue("name")
	var req rulePutReq
	if !s.decode(w, r, &req) {
		return
	}
	if (req.Expr == "") == (req.Recurrence == nil) {
		writeError(w, http.StatusBadRequest, ErrorBody{
			Code: ErrBadRequest, Message: "exactly one of expr or recurrence must be set",
		})
		return
	}
	sys := t.System()
	src := req.Expr
	if req.Recurrence != nil {
		expr, err := req.Recurrence.Compile(sys.Chron())
		if err != nil {
			writeSchemaError(w, err)
			return
		}
		src = expr
	}
	// Vet-on-write for rules too: an undefined or cyclic reference is
	// rejected here with positioned diagnostics, not at probe time.
	// Warnings (provably-empty expressions, duplicates of existing
	// calendars) ride along in the success envelope below.
	diags := t.Manager().Vet("", src)
	if diags.HasErrors() {
		writeVetError(w, fmt.Sprintf("rule %q", name), diags)
		return
	}
	ruleName := t.Name + "/" + name
	err := sys.OnCalendar(ruleName, src, func(_ *calsys.Txn, _ int64) error {
		t.markFired(name)
		return nil
	})
	if err != nil {
		status, code := http.StatusBadRequest, ErrBadRequest
		if strings.Contains(err.Error(), "already defined") {
			status, code = http.StatusConflict, ErrConflict
		}
		writeError(w, status, ErrorBody{Code: code, Message: err.Error()})
		return
	}
	t.rememberRule(name, src)
	resp := s.ruleJSON(t, ruleInfo{Name: name, Expr: src})
	if warns := diags.Warnings(); len(warns) > 0 {
		resp.Diagnostics = wireDiags(warns)
	}
	writeJSON(w, http.StatusCreated, resp)
}

// ruleJSON renders a rule with its next firing instant.
func (s *Server) ruleJSON(t *Tenant, info ruleInfo) ruleJSON {
	out := ruleJSON{Name: info.Name, Expr: info.Expr, Fired: info.Fired}
	if at, ok, err := s.nextInstant(t, info.Expr, t.System().Now()); err == nil && ok {
		out.Next = t.System().Chron().CivilOf(at).String()
	}
	return out
}

func (s *Server) handleRuleList(w http.ResponseWriter, _ *http.Request, t *Tenant) {
	infos := t.ruleList()
	out := make([]ruleJSON, 0, len(infos))
	for _, info := range infos {
		out = append(out, s.ruleJSON(t, info))
	}
	writeJSON(w, http.StatusOK, map[string]any{"rules": out})
}

func (s *Server) handleRuleGet(w http.ResponseWriter, r *http.Request, t *Tenant) {
	name := r.PathValue("name")
	info, ok := t.ruleByName(name)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorBody{
			Code: ErrNotFound, Message: fmt.Sprintf("no rule %q", name),
		})
		return
	}
	writeJSON(w, http.StatusOK, s.ruleJSON(t, info))
}

func (s *Server) handleRuleDelete(w http.ResponseWriter, r *http.Request, t *Tenant) {
	name := r.PathValue("name")
	if _, ok := t.ruleByName(name); !ok {
		writeError(w, http.StatusNotFound, ErrorBody{
			Code: ErrNotFound, Message: fmt.Sprintf("no rule %q", name),
		})
		return
	}
	if err := t.System().DropRule(t.Name + "/" + name); err != nil {
		writeError(w, http.StatusInternalServerError, ErrorBody{Code: ErrInternal, Message: err.Error()})
		return
	}
	t.forgetRule(name)
	w.WriteHeader(http.StatusNoContent)
}

// --- expand and next -----------------------------------------------------

// expandReq evaluates a calendar over a civil window. Exactly one of Expr
// or Recurrence; From/To are ISO dates.
type expandReq struct {
	Expr       string      `json:"expr,omitempty"`
	Recurrence *Recurrence `json:"recurrence,omitempty"`
	From       string      `json:"from"`
	To         string      `json:"to"`
}

type intervalJSON struct {
	Start string `json:"start"`
	End   string `json:"end"`
}

type expandResp struct {
	Expr        string         `json:"expr"`
	Granularity string         `json:"granularity"`
	Count       int            `json:"count"`
	Intervals   []intervalJSON `json:"intervals"`
}

// sourceExpr resolves the expr/recurrence pair every query request carries.
func (s *Server) sourceExpr(w http.ResponseWriter, sys *calsys.System, expr string, rec *Recurrence) (string, bool) {
	if (expr == "") == (rec == nil) {
		writeError(w, http.StatusBadRequest, ErrorBody{
			Code: ErrBadRequest, Message: "exactly one of expr or recurrence must be set",
		})
		return "", false
	}
	if rec != nil {
		src, err := rec.Compile(sys.Chron())
		if err != nil {
			writeSchemaError(w, err)
			return "", false
		}
		return src, true
	}
	return expr, true
}

// window parses and bounds the expansion window.
func (s *Server) window(w http.ResponseWriter, fromStr, toStr string) (from, to chronology.Civil, ok bool) {
	bad := func(field, msg string) {
		writeError(w, http.StatusBadRequest, ErrorBody{Code: ErrBadWindow, Message: msg, Position: field})
	}
	from, err := chronology.ParseCivil(fromStr)
	if err != nil {
		bad("from", fmt.Sprintf("bad date %q: %v", fromStr, err))
		return from, to, false
	}
	to, err = chronology.ParseCivil(toStr)
	if err != nil {
		bad("to", fmt.Sprintf("bad date %q: %v", toStr, err))
		return from, to, false
	}
	if to.Before(from) {
		bad("to", fmt.Sprintf("window end %s precedes start %s", to, from))
		return from, to, false
	}
	if days := to.Rata() - from.Rata(); days > maxWindowDays {
		bad("to", fmt.Sprintf("window of %d days exceeds the %d-day cap", days, maxWindowDays))
		return from, to, false
	}
	return from, to, true
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req expandReq
	if !s.decode(w, r, &req) {
		return
	}
	sys := t.System()
	src, ok := s.sourceExpr(w, sys, req.Expr, req.Recurrence)
	if !ok {
		return
	}
	from, to, ok := s.window(w, req.From, req.To)
	if !ok {
		return
	}
	// Vet before evaluating so undefined references come back positioned.
	if diags := t.Manager().Vet("", src); diags.HasErrors() {
		writeVetError(w, "expression", diags)
		return
	}
	cal, err := sys.EvalCalendar(src, from, to)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Code: ErrBadRequest, Message: err.Error()})
		return
	}
	flat := cal.Flatten()
	ch, g := sys.Chron(), cal.Granularity()
	ivs := flat.Intervals()
	resp := expandResp{
		Expr:        src,
		Granularity: g.String(),
		Count:       len(ivs),
		Intervals:   make([]intervalJSON, 0, len(ivs)),
	}
	for _, iv := range ivs {
		start := ch.CivilOf(ch.UnitStart(g, iv.Lo))
		end := ch.CivilOf(ch.UnitEndExcl(g, iv.Hi) - 1)
		// Selection inside a grouping unit can reach slightly outside the
		// requested window (the engine expands whole containing units);
		// clip to the window the client asked for.
		if end.Before(from) || to.Before(start) {
			continue
		}
		if start.Before(from) {
			start = from
		}
		if to.Before(end) {
			end = to
		}
		resp.Intervals = append(resp.Intervals, intervalJSON{
			Start: start.String(), End: end.String(),
		})
	}
	resp.Count = len(resp.Intervals)
	writeJSON(w, http.StatusOK, resp)
}

// nextReq asks for the first instant after After (ISO date; empty means
// the tenant clock's now) at which the expression or rule fires.
type nextReq struct {
	Expr       string      `json:"expr,omitempty"`
	Recurrence *Recurrence `json:"recurrence,omitempty"`
	Rule       string      `json:"rule,omitempty"`
	After      string      `json:"after,omitempty"`
}

type nextResp struct {
	Expr         string `json:"expr"`
	After        string `json:"after"`
	Next         string `json:"next,omitempty"`
	EpochSeconds int64  `json:"epoch_seconds,omitempty"`
	// Dormant is true when the expression never fires within the search
	// horizon.
	Dormant bool `json:"dormant,omitempty"`
	// SharedPlan reports whether the query was answered by a scheduler
	// shared across tenants (catalog-independent expression).
	SharedPlan bool `json:"shared_plan"`
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req nextReq
	if !s.decode(w, r, &req) {
		return
	}
	sys := t.System()
	var src string
	if req.Rule != "" {
		if req.Expr != "" || req.Recurrence != nil {
			writeError(w, http.StatusBadRequest, ErrorBody{
				Code: ErrBadRequest, Message: "rule cannot be combined with expr or recurrence",
			})
			return
		}
		info, ok := t.ruleByName(req.Rule)
		if !ok {
			writeError(w, http.StatusNotFound, ErrorBody{
				Code: ErrNotFound, Message: fmt.Sprintf("no rule %q", req.Rule),
			})
			return
		}
		src = info.Expr
	} else {
		var ok bool
		if src, ok = s.sourceExpr(w, sys, req.Expr, req.Recurrence); !ok {
			return
		}
	}
	after := sys.Now()
	afterStr := sys.Chron().CivilOf(after).String()
	if req.After != "" {
		c, err := chronology.ParseCivil(req.After)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrorBody{
				Code: ErrBadWindow, Message: fmt.Sprintf("bad date %q: %v", req.After, err), Position: "after",
			})
			return
		}
		after = sys.SecondsOf(c)
		afterStr = c.String()
	}
	if diags := t.Manager().Vet("", src); diags.HasErrors() {
		writeVetError(w, "expression", diags)
		return
	}
	at, ok, err := s.nextInstant(t, src, after)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Code: ErrBadRequest, Message: err.Error()})
		return
	}
	resp := nextResp{Expr: src, After: afterStr, SharedPlan: s.sharedPlanFor(src)}
	if !ok {
		resp.Dormant = true
	} else {
		resp.Next = sys.Chron().CivilOf(at).String()
		resp.EpochSeconds = at
	}
	writeJSON(w, http.StatusOK, resp)
}

// sharedPlanFor reports whether src rides the cross-tenant plan share.
func (s *Server) sharedPlanFor(src string) bool {
	e, err := callang.ParseExpr(src)
	return err == nil && shareable(e)
}

// nextInstant answers a next-instant query, preferring the cross-tenant
// shared scheduler for catalog-independent expressions and falling back to
// the tenant's own catalog otherwise.
func (s *Server) nextInstant(t *Tenant, src string, after int64) (int64, bool, error) {
	e, err := callang.ParseExpr(src)
	if err != nil {
		return 0, false, err
	}
	if sched, ok, err := s.share.SchedulerFor(e); err == nil && ok {
		return sched.NextAfter(after)
	}
	sys := t.System()
	env := t.Manager().Env()
	env.Now = sys.Clock().Now
	prepped, gran, err := plan.Prepare(env, e, nil)
	if err != nil {
		return 0, false, err
	}
	return plan.NextInstant(env, prepped, gran, after, 0)
}
