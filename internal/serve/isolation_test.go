package serve

import (
	"net/http"
	"testing"

	"calsys/internal/core/matcache"
)

// TestCrossTenantCacheIsolation is the tentpole's proof obligation: tenant
// A replacing a calendar must not invalidate tenant B's warm
// materialization-cache entries. Each tenant's catalog runs under a
// tenant-prefixed cache scope with its own generation counter, so A's
// catalog writes bump only A's generation — B's keys are untouched and
// B's expansions keep hitting.
func TestCrossTenantCacheIsolation(t *testing.T) {
	ts, _ := newTestServer(t)
	tokA := mkTenant(t, ts, "tenant-a")
	tokB := mkTenant(t, ts, "tenant-b")

	// Both tenants define a stored calendar under the same name — names
	// are per-namespace, and identical names must not collide in the
	// shared cache either.
	holidaysA := map[string]any{"days": []string{"1993-07-04"}}
	holidaysB := map[string]any{"days": []string{"1993-12-25", "1993-12-26"}}
	if st, body := call(t, ts, "PUT", "/v1/tenants/tenant-a/calendars/holidays", tokA, holidaysA); st != http.StatusCreated {
		t.Fatalf("A put: %d %v", st, body)
	}
	if st, body := call(t, ts, "PUT", "/v1/tenants/tenant-b/calendars/holidays", tokB, holidaysB); st != http.StatusCreated {
		t.Fatalf("B put: %d %v", st, body)
	}

	expand := func(tok, tenant string, wantCount float64) {
		t.Helper()
		st, body := call(t, ts, "POST", "/v1/tenants/"+tenant+"/expand", tok, map[string]any{
			"expr": "holidays + DAYS:during:([1]/(MONTHS:during:YEARS))",
			"from": "1993-01-01", "to": "1993-12-31",
		})
		if st != http.StatusOK {
			t.Fatalf("%s expand: %d %v", tenant, st, body)
		}
		if body["count"] != wantCount {
			t.Fatalf("%s expand count = %v, want %v", tenant, body["count"], wantCount)
		}
	}

	// Same expression, different catalogs: the counts differ, proving the
	// cache never serves one tenant's materialization to the other.
	// (January has 31 days; A adds July 4, B adds Dec 25 and 26.)
	expand(tokA, "tenant-a", 32) // 31 January days + Jul 4
	expand(tokB, "tenant-b", 33) // 31 January days + Dec 25 + Dec 26

	// Warm B's entry and verify the second expansion hits the cache.
	stats0 := matcache.Shared().Stats()
	expand(tokB, "tenant-b", 33)
	stats1 := matcache.Shared().Stats()
	if got := stats1.Hits - stats0.Hits; got < 1 {
		t.Fatalf("warm B expansion: %d cache hits, want >= 1 (stats %+v -> %+v)", got, stats0, stats1)
	}

	// Tenant A replaces its calendar: only A's generation moves.
	if st, body := call(t, ts, "PUT", "/v1/tenants/tenant-a/calendars/holidays", tokA,
		map[string]any{"days": []string{"1993-07-04", "1993-07-05"}}); st != http.StatusOK {
		t.Fatalf("A replace: %d %v", st, body)
	}

	// B's warm entry is still valid: hits keep coming, no new misses for B.
	stats2 := matcache.Shared().Stats()
	expand(tokB, "tenant-b", 33)
	stats3 := matcache.Shared().Stats()
	if got := stats3.Hits - stats2.Hits; got < 1 {
		t.Fatalf("B expansion after A's replace missed the cache (stats %+v -> %+v)", stats2, stats3)
	}
	if got := stats3.Misses - stats2.Misses; got != 0 {
		t.Fatalf("B expansion after A's replace recorded %d misses, want 0", got)
	}

	// A's own view did change: its expansion reflects the replacement
	// (a fresh materialization under A's bumped generation).
	expand(tokA, "tenant-a", 33) // 31 January days + Jul 4 + Jul 5
}

// TestTenantRecreateDoesNotAliasCache drops and recreates a tenant and
// proves the new incarnation does not read the old incarnation's cache
// entries: the catalog scope carries an incarnation counter, so both
// incarnations starting at generation 1 cannot collide.
func TestTenantRecreateDoesNotAliasCache(t *testing.T) {
	ts, _ := newTestServer(t)
	tok1 := mkTenant(t, ts, "phoenix")
	if st, body := call(t, ts, "PUT", "/v1/tenants/phoenix/calendars/cal", tok1,
		map[string]any{"days": []string{"1993-03-01"}}); st != http.StatusCreated {
		t.Fatalf("put: %d %v", st, body)
	}
	// Warm the first incarnation's entry.
	st, body := call(t, ts, "POST", "/v1/tenants/phoenix/expand", tok1, map[string]any{
		"expr": "cal", "from": "1993-01-01", "to": "1993-12-31",
	})
	if st != http.StatusOK || body["count"] != float64(1) {
		t.Fatalf("expand: %d %v", st, body)
	}

	if st, _ := call(t, ts, "DELETE", "/v1/tenants/phoenix", testAdminToken, nil); st != http.StatusNoContent {
		t.Fatalf("drop: %d", st)
	}
	tok2 := mkTenant(t, ts, "phoenix")

	// The recreated tenant defines a different calendar under the same
	// name; its expansion must see the new values, not the old entry.
	if st, body := call(t, ts, "PUT", "/v1/tenants/phoenix/calendars/cal", tok2,
		map[string]any{"days": []string{"1993-06-01", "1993-06-02"}}); st != http.StatusCreated {
		t.Fatalf("re-put: %d %v", st, body)
	}
	st, body = call(t, ts, "POST", "/v1/tenants/phoenix/expand", tok2, map[string]any{
		"expr": "cal", "from": "1993-01-01", "to": "1993-12-31",
	})
	if st != http.StatusOK {
		t.Fatalf("re-expand: %d %v", st, body)
	}
	if body["count"] != float64(2) {
		t.Fatalf("recreated tenant sees stale cache: %v", body)
	}
	ivs, _ := body["intervals"].([]any)
	first, _ := ivs[0].(map[string]any)
	if first["start"] != "1993-06-01" {
		t.Fatalf("recreated tenant expansion: %v", ivs)
	}
}

// TestSharedPlanReuse proves next-instant queries over catalog-independent
// expressions share one prepared scheduler across tenants.
func TestSharedPlanReuse(t *testing.T) {
	ts, srv := newTestServer(t)
	tokA := mkTenant(t, ts, "plan-a")
	tokB := mkTenant(t, ts, "plan-b")

	before := srv.share.Stats()
	q := map[string]any{
		"recurrence": map[string]any{"cycle": "monthly", "ordinal": "last", "wdays": []string{"friday"}},
	}
	for _, c := range []struct{ tok, tenant string }{
		{tokA, "plan-a"}, {tokB, "plan-b"}, {tokA, "plan-a"},
	} {
		st, body := call(t, ts, "POST", "/v1/tenants/"+c.tenant+"/next", c.tok, q)
		if st != http.StatusOK || body["next"] != "1993-01-29" || body["shared_plan"] != true {
			t.Fatalf("%s next: %d %v", c.tenant, st, body)
		}
	}
	after := srv.share.Stats()
	if got := after.Misses - before.Misses; got != 1 {
		t.Fatalf("scheduler builds = %d, want 1 (one shared plan for all tenants)", got)
	}
	if got := after.Hits - before.Hits; got != 2 {
		t.Fatalf("scheduler reuses = %d, want 2", got)
	}
}
