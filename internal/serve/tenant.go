package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"

	"calsys"
	"calsys/internal/caldb"
	"calsys/internal/chronology"
)

// tenantNameRe bounds tenant names: URL-safe, case-insensitive, ≤ 64 runes.
var tenantNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// Tenant is one namespace: its own calsys.System (catalog, rule engine,
// store, clock) behind a bearer token. The system's materialization-cache
// scope is tenant-prefixed, so the tenant's catalog generation counter is
// private — its Replace/Define/Drop never invalidates a peer's warm cache
// entries.
type Tenant struct {
	Name  string
	Token string

	sys *calsys.System

	// mu guards the rule bookkeeping below; the engine has its own locks
	// but the server also tracks each rule's source for listing.
	mu    sync.Mutex
	rules map[string]*ruleInfo // lower-case name -> info
}

// ruleInfo is the server's record of one temporal rule.
type ruleInfo struct {
	Name  string
	Expr  string // canonical calendar expression
	Fired int64  // action invocations (in-memory; reset on restart)
}

// System exposes the tenant's assembled system.
func (t *Tenant) System() *calsys.System { return t.sys }

// Manager exposes the tenant's catalog manager.
func (t *Tenant) Manager() *caldb.Manager { return t.sys.Rules().Cal() }

// rememberRule records a defined rule for listing.
func (t *Tenant) rememberRule(name, expr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules[strings.ToLower(name)] = &ruleInfo{Name: name, Expr: expr}
}

// forgetRule drops the listing record.
func (t *Tenant) forgetRule(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.rules, strings.ToLower(name))
}

// ruleByName returns a copy of one rule record.
func (t *Tenant) ruleByName(name string) (ruleInfo, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rules[strings.ToLower(name)]
	if !ok {
		return ruleInfo{}, false
	}
	return *r, true
}

// ruleList returns copies of all rule records, sorted by name.
func (t *Tenant) ruleList() []ruleInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ruleInfo, 0, len(t.rules))
	for _, r := range t.rules {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// markFired bumps a rule's in-memory firing counter (the rule action).
func (t *Tenant) markFired(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.rules[strings.ToLower(name)]; ok {
		r.Fired++
	}
}

// Registry owns the tenant set. Tenants are in-memory: calserved is the
// serving layer over the embedded engine, and durability of tenant data
// rides on the engine's snapshot/journal machinery, not on the registry.
type Registry struct {
	adminToken string
	today      chronology.Civil // the civil date all tenant clocks start at

	mu      sync.RWMutex
	tenants map[string]*Tenant // lower-case name -> tenant
	byToken map[string]*Tenant
}

// NewRegistry creates a registry; adminToken authorizes tenant lifecycle
// and stats endpoints, today anchors every tenant's virtual clock (rules
// compute their first trigger strictly after it).
func NewRegistry(adminToken string, today chronology.Civil) *Registry {
	return &Registry{
		adminToken: adminToken,
		today:      today,
		tenants:    map[string]*Tenant{},
		byToken:    map[string]*Tenant{},
	}
}

// newToken mints an unguessable bearer token.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: crypto/rand failed: %v", err))
	}
	return "ct_" + hex.EncodeToString(b[:])
}

// Create provisions a tenant: a fresh system whose catalog scope — and with
// it the generation counter keyed into the shared materialization cache —
// is prefixed with the tenant name.
func (r *Registry) Create(name string) (*Tenant, error) {
	if !tenantNameRe.MatchString(name) {
		return nil, fmt.Errorf("invalid tenant name %q (want [A-Za-z0-9][A-Za-z0-9_.-]{0,63})", name)
	}
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[key]; ok {
		return nil, fmt.Errorf("tenant %q already exists", name)
	}
	clock := calsys.NewVirtualClock(0)
	sys, err := calsys.Open(
		calsys.WithClock(clock),
		calsys.WithCatalogScope("tenant/"+key),
	)
	if err != nil {
		return nil, err
	}
	clock.Set(sys.SecondsOf(r.today))
	t := &Tenant{Name: name, Token: newToken(), sys: sys, rules: map[string]*ruleInfo{}}
	r.tenants[key] = t
	r.byToken[t.Token] = t
	return t, nil
}

// Drop removes a tenant; its cache entries become unaddressable (no key
// carries its scope any more) and age out of the shared LRU.
func (r *Registry) Drop(name string) bool {
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[key]
	if !ok {
		return false
	}
	delete(r.tenants, key)
	delete(r.byToken, t.Token)
	return true
}

// Get resolves a tenant by name.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[strings.ToLower(name)]
	return t, ok
}

// Auth resolves a tenant by bearer token.
func (r *Registry) Auth(token string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byToken[token]
	return t, ok
}

// IsAdmin reports whether token is the admin token.
func (r *Registry) IsAdmin(token string) bool {
	return token != "" && token == r.adminToken
}

// Names lists tenants, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// Today is the civil date tenant clocks were anchored at.
func (r *Registry) Today() chronology.Civil { return r.today }
