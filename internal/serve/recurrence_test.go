package serve

import (
	"errors"
	"strings"
	"testing"

	"calsys"
	"calsys/internal/chronology"
	"calsys/internal/core/callang"
)

func testChron(t *testing.T) *chronology.Chronology {
	t.Helper()
	sys, err := calsys.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return sys.Chron()
}

// TestRecurrenceCompile pins the compiled expression for every cycle kind
// and the ordinal × wdays combinations.
func TestRecurrenceCompile(t *testing.T) {
	cases := []struct {
		name string
		rec  Recurrence
		want string
	}{
		{"daily", Recurrence{Cycle: "daily"}, "DAYS"},
		{"daily-interval-1", Recurrence{Cycle: "daily", Interval: 1}, "DAYS"},
		{"weekly-one-day", Recurrence{Cycle: "weekly", WDays: []string{"tuesday"}},
			"[2]/DAYS:during:WEEKS"},
		{"weekly-mon-fri", Recurrence{Cycle: "weekly", WDays: []string{"friday", "monday"}},
			"[1,5]/DAYS:during:WEEKS"},
		{"weekly-dedup", Recurrence{Cycle: "weekly", WDays: []string{"friday", "monday", "friday"}},
			"[1,5]/DAYS:during:WEEKS"},
		{"weekly-kazoo-typo", Recurrence{Cycle: "weekly", WDays: []string{"wensday"}},
			"[3]/DAYS:during:WEEKS"},
		{"monthly-days", Recurrence{Cycle: "monthly", Days: []int{15, 1}},
			"[1,15]/(DAYS:during:MONTHS)"},
		{"monthly-last-day", Recurrence{Cycle: "monthly", Days: []int{-1}},
			"[-1]/(DAYS:during:MONTHS)"},
		{"monthly-every-weekday", Recurrence{Cycle: "monthly", WDays: []string{"tuesday"}},
			"([2]/(DAYS:during:WEEKS)):during:MONTHS"},
		{"monthly-every-explicit", Recurrence{Cycle: "monthly", Ordinal: "every", WDays: []string{"tuesday"}},
			"([2]/(DAYS:during:WEEKS)):during:MONTHS"},
		{"monthly-third-friday", Recurrence{Cycle: "monthly", Ordinal: "third", WDays: []string{"friday"}},
			"[3]/(([5]/(DAYS:during:WEEKS)):during:MONTHS)"},
		{"monthly-first", Recurrence{Cycle: "monthly", Ordinal: "first", WDays: []string{"monday"}},
			"[1]/(([1]/(DAYS:during:WEEKS)):during:MONTHS)"},
		{"monthly-second", Recurrence{Cycle: "monthly", Ordinal: "second", WDays: []string{"monday"}},
			"[2]/(([1]/(DAYS:during:WEEKS)):during:MONTHS)"},
		{"monthly-fourth", Recurrence{Cycle: "monthly", Ordinal: "fourth", WDays: []string{"monday"}},
			"[4]/(([1]/(DAYS:during:WEEKS)):during:MONTHS)"},
		{"monthly-fifth", Recurrence{Cycle: "monthly", Ordinal: "fifth", WDays: []string{"monday"}},
			"[5]/(([1]/(DAYS:during:WEEKS)):during:MONTHS)"},
		{"monthly-last-friday", Recurrence{Cycle: "monthly", Ordinal: "last", WDays: []string{"friday"}},
			"[n]/(([5]/(DAYS:during:WEEKS)):during:MONTHS)"},
		{"monthly-first-mon-or-fri", Recurrence{Cycle: "monthly", Ordinal: "first", WDays: []string{"monday", "friday"}},
			"[1]/(([1]/(DAYS:during:WEEKS)):during:MONTHS) + [1]/(([5]/(DAYS:during:WEEKS)):during:MONTHS)"},
		{"yearly-july-4", Recurrence{Cycle: "yearly", Month: 7, Days: []int{4}},
			"[4]/(DAYS:during:([7]/(MONTHS:during:YEARS)))"},
		{"yearly-whole-month", Recurrence{Cycle: "yearly", Month: 2},
			"DAYS:during:([2]/(MONTHS:during:YEARS))"},
		{"yearly-thanksgiving", Recurrence{Cycle: "yearly", Month: 11, Ordinal: "fourth", WDays: []string{"thursday"}},
			"[4]/(([4]/(DAYS:during:WEEKS)):during:([11]/(MONTHS:during:YEARS)))"},
		{"yearly-every-weekday", Recurrence{Cycle: "yearly", Month: 6, WDays: []string{"sunday"}},
			"([7]/(DAYS:during:WEEKS)):during:([6]/(MONTHS:during:YEARS))"},
		{"cycle-case-insensitive", Recurrence{Cycle: "  Daily "}, "DAYS"},
	}
	ch := testChron(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.rec.Compile(ch)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if got != tc.want {
				t.Fatalf("Compile = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestRecurrenceCompileDate pins the single-date compilation: the day tick
// is anchored to the chronology epoch.
func TestRecurrenceCompileDate(t *testing.T) {
	ch := testChron(t)
	got, err := Recurrence{Cycle: "date", StartDate: "1987-01-02"}.Compile(ch)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// 1987-01-02 is day tick 2 (the epoch day is tick 1).
	if want := "DAYS:during:interval(2, 2)"; got != want {
		t.Fatalf("Compile = %q, want %q", got, want)
	}
}

// TestRecurrenceReject pins the positioned rejection of every invalid
// schema shape: the error is a *SchemaError naming the offending field.
func TestRecurrenceReject(t *testing.T) {
	cases := []struct {
		name  string
		rec   Recurrence
		field string
	}{
		{"empty-cycle", Recurrence{}, "cycle"},
		{"unknown-cycle", Recurrence{Cycle: "fortnightly"}, "cycle"},
		{"interval-2", Recurrence{Cycle: "daily", Interval: 2}, "interval"},
		{"interval-negative", Recurrence{Cycle: "daily", Interval: -1}, "interval"},
		{"weekly-no-wdays", Recurrence{Cycle: "weekly"}, "wdays"},
		{"weekly-bad-weekday", Recurrence{Cycle: "weekly", WDays: []string{"monday", "funday"}}, "wdays[1]"},
		{"weekly-stray-days", Recurrence{Cycle: "weekly", WDays: []string{"monday"}, Days: []int{1}}, "days"},
		{"daily-stray-wdays", Recurrence{Cycle: "daily", WDays: []string{"monday"}}, "wdays"},
		{"daily-stray-month", Recurrence{Cycle: "daily", Month: 3}, "month"},
		{"monthly-none", Recurrence{Cycle: "monthly"}, "days"},
		{"monthly-days-and-wdays", Recurrence{Cycle: "monthly", Days: []int{1}, WDays: []string{"monday"}}, "days"},
		{"monthly-ordinal-no-wdays", Recurrence{Cycle: "monthly", Ordinal: "third"}, "ordinal"},
		{"monthly-bad-ordinal", Recurrence{Cycle: "monthly", Ordinal: "sixth", WDays: []string{"monday"}}, "ordinal"},
		{"monthly-day-zero", Recurrence{Cycle: "monthly", Days: []int{0}}, "days[0]"},
		{"monthly-day-32", Recurrence{Cycle: "monthly", Days: []int{1, 32}}, "days[1]"},
		{"monthly-day-minus-32", Recurrence{Cycle: "monthly", Days: []int{-32}}, "days[0]"},
		{"monthly-stray-month", Recurrence{Cycle: "monthly", Days: []int{1}, Month: 2}, "month"},
		{"yearly-no-month", Recurrence{Cycle: "yearly", Days: []int{1}}, "month"},
		{"yearly-month-13", Recurrence{Cycle: "yearly", Month: 13, Days: []int{1}}, "month"},
		{"date-no-start", Recurrence{Cycle: "date"}, "start_date"},
		{"date-bad-start", Recurrence{Cycle: "date", StartDate: "July 4"}, "start_date"},
		{"date-before-epoch", Recurrence{Cycle: "date", StartDate: "1986-12-31"}, "start_date"},
		{"date-stray-wdays", Recurrence{Cycle: "date", StartDate: "1993-07-04", WDays: []string{"monday"}}, "wdays"},
		{"weekly-stray-start", Recurrence{Cycle: "weekly", WDays: []string{"monday"}, StartDate: "1993-01-01"}, "start_date"},
	}
	ch := testChron(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.rec.Compile(ch)
			if err == nil {
				t.Fatalf("Compile accepted invalid schema %+v", tc.rec)
			}
			var se *SchemaError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *SchemaError", err)
			}
			if se.Field != tc.field {
				t.Fatalf("error field = %q, want %q (err: %v)", se.Field, tc.field, err)
			}
		})
	}
}

// expandDays evaluates a compiled expression over a civil window and
// returns the matching days as ISO strings.
func expandDays(t *testing.T, sys *calsys.System, expr, from, to string) []string {
	t.Helper()
	f, err := chronology.ParseCivil(from)
	if err != nil {
		t.Fatalf("ParseCivil(%q): %v", from, err)
	}
	u, err := chronology.ParseCivil(to)
	if err != nil {
		t.Fatalf("ParseCivil(%q): %v", to, err)
	}
	cal, err := sys.EvalCalendar(expr, f, u)
	if err != nil {
		t.Fatalf("EvalCalendar(%q): %v", expr, err)
	}
	ch, g := sys.Chron(), cal.Granularity()
	var out []string
	for _, iv := range cal.Flatten().Intervals() {
		for tick := iv.Lo; tick <= iv.Hi; tick++ {
			c := ch.CivilOf(ch.UnitStart(g, tick))
			// Mirror the server's window clipping: the engine expands
			// whole containing units, which can spill past the window.
			if c.Before(f) || u.Before(c) {
				continue
			}
			out = append(out, c.String())
		}
	}
	return out
}

// TestRecurrenceSemantics evaluates compiled expressions against known 1993
// dates (1993-01-01 was a Friday), proving the compilation is not just
// string-shaped but correct.
func TestRecurrenceSemantics(t *testing.T) {
	sys, err := calsys.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ch := sys.Chron()
	cases := []struct {
		name     string
		rec      Recurrence
		from, to string
		want     []string
	}{
		{"third-friday", Recurrence{Cycle: "monthly", Ordinal: "third", WDays: []string{"friday"}},
			"1993-01-01", "1993-03-31",
			[]string{"1993-01-15", "1993-02-19", "1993-03-19"}},
		{"last-friday", Recurrence{Cycle: "monthly", Ordinal: "last", WDays: []string{"friday"}},
			"1993-01-01", "1993-02-28",
			[]string{"1993-01-29", "1993-02-26"}},
		{"july-4", Recurrence{Cycle: "yearly", Month: 7, Days: []int{4}},
			"1993-01-01", "1994-12-31",
			[]string{"1993-07-04", "1994-07-04"}},
		{"weekly-mon-fri", Recurrence{Cycle: "weekly", WDays: []string{"monday", "friday"}},
			"1993-01-01", "1993-01-10",
			[]string{"1993-01-01", "1993-01-04", "1993-01-08"}},
		{"month-end", Recurrence{Cycle: "monthly", Days: []int{-1}},
			"1993-01-01", "1993-03-31",
			[]string{"1993-01-31", "1993-02-28", "1993-03-31"}},
		{"single-date", Recurrence{Cycle: "date", StartDate: "1993-07-04"},
			"1993-01-01", "1993-12-31",
			[]string{"1993-07-04"}},
		{"first-monday", Recurrence{Cycle: "monthly", Ordinal: "first", WDays: []string{"monday"}},
			"1993-07-01", "1993-07-31",
			[]string{"1993-07-05"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expr, err := tc.rec.Compile(ch)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			got := expandDays(t, sys, expr, tc.from, tc.to)
			if strings.Join(got, " ") != strings.Join(tc.want, " ") {
				t.Fatalf("%q over %s..%s = %v, want %v", expr, tc.from, tc.to, got, tc.want)
			}
		})
	}
}

// TestRecurrenceShareable proves every compiled recurrence references only
// basic calendars, so its prepared plan is shareable across tenants.
func TestRecurrenceShareable(t *testing.T) {
	ch := testChron(t)
	recs := []Recurrence{
		{Cycle: "daily"},
		{Cycle: "weekly", WDays: []string{"monday"}},
		{Cycle: "monthly", Ordinal: "third", WDays: []string{"friday"}},
		{Cycle: "yearly", Month: 7, Days: []int{4}},
		{Cycle: "date", StartDate: "1993-07-04"},
	}
	for _, rec := range recs {
		expr, err := rec.Compile(ch)
		if err != nil {
			t.Fatalf("Compile(%+v): %v", rec, err)
		}
		e, err := callang.ParseExpr(expr)
		if err != nil {
			t.Fatalf("parse %q: %v", expr, err)
		}
		if !Shareable(e) {
			t.Errorf("compiled recurrence %q is not shareable", expr)
		}
	}
}
