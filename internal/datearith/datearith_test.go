package datearith

import (
	"math"
	"testing"
	"testing/quick"

	"calsys/internal/chronology"
	"calsys/internal/store"
)

func d(y, m, day int) chronology.Civil { return chronology.Civil{Year: y, Month: m, Day: day} }

func TestThirty360(t *testing.T) {
	c := Thirty360{}
	cases := []struct {
		a, b chronology.Civil
		want int64
	}{
		{d(1993, 1, 1), d(1993, 2, 1), 30},   // every month has 30 days
		{d(1993, 1, 1), d(1994, 1, 1), 360},  // a year has 360 days
		{d(1993, 1, 15), d(1993, 3, 15), 60}, // two "months"
		{d(1993, 1, 31), d(1993, 2, 28), 28}, // d1 31 -> 30, Feb 28 real
		{d(1993, 1, 31), d(1993, 3, 31), 60}, // both ends truncate (US rule)
		{d(1993, 1, 30), d(1993, 1, 31), 0},  // 31st after 30th counts zero
		{d(1993, 2, 1), d(1993, 1, 1), -30},  // negative spans
	}
	for _, tc := range cases {
		if got := c.Days(tc.a, tc.b); got != tc.want {
			t.Errorf("30/360 days(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	if got := c.YearFraction(d(1993, 1, 1), d(1993, 7, 1)); got != 0.5 {
		t.Errorf("half year = %v", got)
	}
}

func TestThirty360EuropeanDiffers(t *testing.T) {
	us, eu := Thirty360{}, Thirty360European{}
	// d2=31 with d1 not 30/31: US keeps 31, European truncates to 30.
	a, b := d(1993, 1, 15), d(1993, 1, 31)
	if us.Days(a, b) != 16 {
		t.Errorf("US days = %d, want 16", us.Days(a, b))
	}
	if eu.Days(a, b) != 15 {
		t.Errorf("EU days = %d, want 15", eu.Days(a, b))
	}
}

func TestActualConventions(t *testing.T) {
	a, b := d(1993, 1, 1), d(1994, 1, 1) // 365 real days
	if (ActualActual{}).Days(a, b) != 365 || (Actual365{}).Days(a, b) != 365 || (Actual360{}).Days(a, b) != 365 {
		t.Error("actual day counts disagree with calendar")
	}
	if got := (ActualActual{}).YearFraction(a, b); got != 1.0 {
		t.Errorf("actual/actual year = %v", got)
	}
	if got := (Actual365{}).YearFraction(a, b); got != 1.0 {
		t.Errorf("actual/365 year = %v", got)
	}
	if got := (Actual360{}).YearFraction(a, b); math.Abs(got-365.0/360) > 1e-12 {
		t.Errorf("actual/360 year = %v", got)
	}
	// A leap year under actual/actual is exactly 1.
	if got := (ActualActual{}).YearFraction(d(1988, 1, 1), d(1989, 1, 1)); got != 1.0 {
		t.Errorf("leap year fraction = %v", got)
	}
	// Cross-year span sums per-year fractions.
	got := (ActualActual{}).YearFraction(d(1993, 7, 1), d(1995, 7, 1))
	if math.Abs(got-2.0) > 1e-9 {
		t.Errorf("two-year fraction = %v", got)
	}
	// Negative direction is antisymmetric.
	if (ActualActual{}).YearFraction(b, a) != -1.0 {
		t.Error("antisymmetry")
	}
}

func TestByName(t *testing.T) {
	for _, c := range Conventions() {
		got, err := ByName(c.Name())
		if err != nil || got.Name() != c.Name() {
			t.Errorf("ByName(%q): %v", c.Name(), err)
		}
	}
	if _, err := ByName("13/370"); err == nil {
		t.Error("unknown convention should fail")
	}
}

func TestAddMonths(t *testing.T) {
	cases := []struct {
		in   chronology.Civil
		n    int
		want chronology.Civil
	}{
		{d(1993, 1, 15), 1, d(1993, 2, 15)},
		{d(1993, 1, 31), 1, d(1993, 2, 28)}, // clamp
		{d(1988, 1, 31), 1, d(1988, 2, 29)}, // leap clamp
		{d(1993, 11, 30), 3, d(1994, 2, 28)},
		{d(1993, 1, 15), -1, d(1992, 12, 15)},
		{d(1993, 1, 15), -13, d(1991, 12, 15)},
		{d(1993, 1, 15), 24, d(1995, 1, 15)},
	}
	for _, tc := range cases {
		if got := AddMonths(tc.in, tc.n); got != tc.want {
			t.Errorf("AddMonths(%v,%d) = %v, want %v", tc.in, tc.n, got, tc.want)
		}
	}
}

func TestAddMonthsRoundTripProperty(t *testing.T) {
	f := func(y int16, mRaw, dRaw uint8, nRaw int8) bool {
		m := int(mRaw)%12 + 1
		day := int(dRaw)%28 + 1 // days <= 28 never clamp
		n := int(nRaw)
		base := chronology.Civil{Year: int(y), Month: m, Day: day}
		return AddMonths(AddMonths(base, n), -n) == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCouponSchedule(t *testing.T) {
	sched, err := CouponSchedule(d(1993, 1, 15), d(1995, 1, 15), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []chronology.Civil{d(1993, 7, 15), d(1994, 1, 15), d(1994, 7, 15), d(1995, 1, 15)}
	if len(sched) != len(want) {
		t.Fatalf("schedule = %v", sched)
	}
	for i := range want {
		if sched[i] != want[i] {
			t.Errorf("coupon %d = %v, want %v", i, sched[i], want[i])
		}
	}
	if _, err := CouponSchedule(d(1995, 1, 1), d(1993, 1, 1), 2); err == nil {
		t.Error("reversed dates should fail")
	}
	if _, err := CouponSchedule(d(1993, 1, 1), d(1995, 1, 1), 5); err == nil {
		t.Error("frequency 5 should fail")
	}
}

func testBond(basis Convention) Bond {
	return Bond{
		Issue: d(1993, 1, 15), Maturity: d(1998, 1, 15),
		Coupon: 0.08, Face: 100, Frequency: 2, Basis: basis,
	}
}

// The paper's point: the same bond on the same date has different accrued
// interest under 30/360 and actual/actual — using the wrong (Gregorian-only)
// date functions gives incorrect results.
func TestAccruedInterestDependsOnConvention(t *testing.T) {
	settle := d(1993, 3, 1)
	a30, err := testBond(Thirty360{}).AccruedInterest(settle)
	if err != nil {
		t.Fatal(err)
	}
	aAct, err := testBond(ActualActual{}).AccruedInterest(settle)
	if err != nil {
		t.Fatal(err)
	}
	// 30/360: 46 days of a 180-day period; actual: 45 of 181.
	want30 := 100 * 0.04 * 46.0 / 180.0
	wantAct := 100 * 0.04 * 45.0 / 181.0
	if math.Abs(a30-want30) > 1e-12 {
		t.Errorf("30/360 accrued = %v, want %v", a30, want30)
	}
	if math.Abs(aAct-wantAct) > 1e-12 {
		t.Errorf("actual accrued = %v, want %v", aAct, wantAct)
	}
	if a30 == aAct {
		t.Error("conventions must differ — that is the paper's motivation")
	}
}

func TestPriceYieldRoundTrip(t *testing.T) {
	for _, basis := range Conventions() {
		b := testBond(basis)
		settle := d(1993, 2, 1)
		price, err := b.Price(settle, 0.07)
		if err != nil {
			t.Fatalf("%s: %v", basis.Name(), err)
		}
		if price < 50 || price > 200 {
			t.Errorf("%s: implausible price %v", basis.Name(), price)
		}
		y, err := b.Yield(settle, price)
		if err != nil {
			t.Fatalf("%s: %v", basis.Name(), err)
		}
		if math.Abs(y-0.07) > 1e-7 {
			t.Errorf("%s: yield round trip = %v", basis.Name(), y)
		}
	}
}

func TestPriceAtParIntuition(t *testing.T) {
	// On a coupon date, a bond yielding its coupon trades near par.
	b := testBond(Thirty360{})
	price, err := b.Price(d(1993, 1, 15), 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(price-100) > 0.5 {
		t.Errorf("par price = %v", price)
	}
}

func TestBondErrors(t *testing.T) {
	b := testBond(Thirty360{})
	if _, err := b.AccruedInterest(d(1999, 1, 1)); err == nil {
		t.Error("settlement after maturity should fail")
	}
	if _, err := b.Price(d(1999, 1, 1), 0.05); err == nil {
		t.Error("price after maturity should fail")
	}
	if _, err := b.Yield(d(1993, 2, 1), -5); err == nil {
		t.Error("negative price should fail")
	}
	if _, err := b.Yield(d(1993, 2, 1), 1e9); err == nil {
		t.Error("absurd price should fail")
	}
}

func TestRegisteredFunctions(t *testing.T) {
	db := store.NewDB()
	if err := Register(db); err != nil {
		t.Fatal(err)
	}
	v, err := db.CallFunc("days", []store.Value{
		store.NewText("30/360"), store.NewText("1993-01-01"), store.NewText("1994-01-01")})
	if err != nil || v.I != 360 {
		t.Errorf("days() = %v, %v", v, err)
	}
	v, err = db.CallFunc("yearfrac", []store.Value{
		store.NewText("actual/365"), store.NewText("1993-01-01"), store.NewText("1994-01-01")})
	if err != nil || v.F != 1.0 {
		t.Errorf("yearfrac() = %v, %v", v, err)
	}
	v, err = db.CallFunc("addmonths", []store.Value{store.NewText("1993-01-31"), store.NewInt(1)})
	if err != nil || v.D != d(1993, 2, 28) {
		t.Errorf("addmonths() = %v, %v", v, err)
	}
	if _, err := db.CallFunc("days", []store.Value{store.NewText("nope"), store.NewText("1993-01-01"), store.NewText("1994-01-01")}); err == nil {
		t.Error("unknown convention should fail")
	}
	if _, err := db.CallFunc("days", []store.Value{store.NewInt(1), store.NewText("1993-01-01"), store.NewText("1994-01-01")}); err == nil {
		t.Error("non-text convention should fail")
	}
	if _, err := db.CallFunc("addmonths", []store.Value{store.NewText("1993-01-31"), store.NewText("x")}); err == nil {
		t.Error("non-int month count should fail")
	}
}
