// Package datearith implements user-defined semantics for date arithmetic —
// the paper's fourth motivation (§1): "the yield calculation on financial
// bonds uses a calendar that has 30 days in every month for date arithmetic,
// but 365 days in the year for the actual yield calculation. If date
// functions supplied by commercial databases are used, results will be
// incorrect because these date functions always assume the underlying
// calendar as the gregorian calendar."
//
// A Convention is a day-count calendar; date functions take the convention
// as an argument, and the package registers them as user-defined database
// functions so queries can say days("30/360", a, b).
package datearith

import (
	"fmt"
	"math"
	"strings"

	"calsys/internal/chronology"
)

// Convention is a day-count calendar: how many days lie between two dates
// and what fraction of a year they represent.
type Convention interface {
	// Name is the market name of the convention (e.g. "30/360").
	Name() string
	// Days returns the day count from a to b under the convention
	// (negative when b precedes a).
	Days(a, b chronology.Civil) int64
	// YearFraction returns the fraction of a year from a to b.
	YearFraction(a, b chronology.Civil) float64
}

// ActualActual counts real calendar days against real year lengths.
type ActualActual struct{}

// Name implements Convention.
func (ActualActual) Name() string { return "actual/actual" }

// Days implements Convention.
func (ActualActual) Days(a, b chronology.Civil) int64 { return b.Rata() - a.Rata() }

// YearFraction implements Convention: each calendar year's days are divided
// by that year's true length.
func (ActualActual) YearFraction(a, b chronology.Civil) float64 {
	if b.Before(a) {
		return -ActualActual{}.YearFraction(b, a)
	}
	if a.Year == b.Year {
		return float64(b.Rata()-a.Rata()) / float64(chronology.DaysInYear(a.Year))
	}
	frac := float64(chronology.Civil{Year: a.Year + 1, Month: 1, Day: 1}.Rata()-a.Rata()) /
		float64(chronology.DaysInYear(a.Year))
	for y := a.Year + 1; y < b.Year; y++ {
		frac += 1
	}
	frac += float64(b.Rata()-chronology.Civil{Year: b.Year, Month: 1, Day: 1}.Rata()) /
		float64(chronology.DaysInYear(b.Year))
	return frac
}

// Actual365 counts real days against a fixed 365-day year (the "actual/365
// fixed" money-market basis).
type Actual365 struct{}

// Name implements Convention.
func (Actual365) Name() string { return "actual/365" }

// Days implements Convention.
func (Actual365) Days(a, b chronology.Civil) int64 { return b.Rata() - a.Rata() }

// YearFraction implements Convention.
func (Actual365) YearFraction(a, b chronology.Civil) float64 {
	return float64(b.Rata()-a.Rata()) / 365
}

// Actual360 counts real days against a 360-day year (money markets).
type Actual360 struct{}

// Name implements Convention.
func (Actual360) Name() string { return "actual/360" }

// Days implements Convention.
func (Actual360) Days(a, b chronology.Civil) int64 { return b.Rata() - a.Rata() }

// YearFraction implements Convention.
func (Actual360) YearFraction(a, b chronology.Civil) float64 {
	return float64(b.Rata()-a.Rata()) / 360
}

// Thirty360 is the US (NASD) 30/360 bond basis: every month is treated as 30
// days — the paper's example of application-specific date semantics.
type Thirty360 struct{}

// Name implements Convention.
func (Thirty360) Name() string { return "30/360" }

// Days implements Convention.
func (Thirty360) Days(a, b chronology.Civil) int64 {
	d1, d2 := a.Day, b.Day
	if d1 == 31 {
		d1 = 30
	}
	if d2 == 31 && d1 == 30 {
		d2 = 30
	}
	return int64((b.Year-a.Year)*360 + (b.Month-a.Month)*30 + (d2 - d1))
}

// YearFraction implements Convention.
func (Thirty360) YearFraction(a, b chronology.Civil) float64 {
	return float64(Thirty360{}.Days(a, b)) / 360
}

// Thirty360European is the European 30E/360 variant: both month-end days
// truncate to 30 unconditionally.
type Thirty360European struct{}

// Name implements Convention.
func (Thirty360European) Name() string { return "30E/360" }

// Days implements Convention.
func (Thirty360European) Days(a, b chronology.Civil) int64 {
	d1, d2 := a.Day, b.Day
	if d1 == 31 {
		d1 = 30
	}
	if d2 == 31 {
		d2 = 30
	}
	return int64((b.Year-a.Year)*360 + (b.Month-a.Month)*30 + (d2 - d1))
}

// YearFraction implements Convention.
func (Thirty360European) YearFraction(a, b chronology.Civil) float64 {
	return float64(Thirty360European{}.Days(a, b)) / 360
}

// Conventions lists every built-in convention.
func Conventions() []Convention {
	return []Convention{ActualActual{}, Actual365{}, Actual360{}, Thirty360{}, Thirty360European{}}
}

// ByName resolves a convention by its market name.
func ByName(name string) (Convention, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, c := range Conventions() {
		if strings.ToLower(c.Name()) == n {
			return c, nil
		}
	}
	return nil, fmt.Errorf("datearith: unknown day-count convention %q", name)
}

// AddMonths moves a date by n calendar months, clamping the day to the
// target month's length (Jan 31 + 1 month = Feb 28).
func AddMonths(d chronology.Civil, n int) chronology.Civil {
	mi := (d.Year*12 + d.Month - 1) + n
	y, m := mi/12, mi%12+1
	if mi < 0 {
		y = (mi - 11) / 12
		m = mi - y*12 + 1
	}
	day := d.Day
	if dim := chronology.DaysInMonth(y, m); day > dim {
		day = dim
	}
	return chronology.Civil{Year: y, Month: m, Day: day}
}

// CouponSchedule returns the coupon dates of a bond from issue (exclusive)
// to maturity (inclusive), every 12/frequency months, generated backwards
// from maturity as markets do.
func CouponSchedule(issue, maturity chronology.Civil, frequency int) ([]chronology.Civil, error) {
	if frequency <= 0 || 12%frequency != 0 {
		return nil, fmt.Errorf("datearith: coupon frequency %d must divide 12", frequency)
	}
	if !issue.Before(maturity) {
		return nil, fmt.Errorf("datearith: issue %v must precede maturity %v", issue, maturity)
	}
	step := 12 / frequency
	var rev []chronology.Civil
	for d, k := maturity, 1; issue.Before(d); k++ {
		rev = append(rev, d)
		d = AddMonths(maturity, -k*step)
	}
	out := make([]chronology.Civil, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out, nil
}

// Bond is a plain fixed-coupon bond.
type Bond struct {
	Issue     chronology.Civil
	Maturity  chronology.Civil
	Coupon    float64 // annual coupon rate (0.08 = 8%)
	Face      float64
	Frequency int // coupons per year
	Basis     Convention
}

// AccruedInterest returns the interest accrued from the last coupon date up
// to settlement, under the bond's day-count basis — the calculation the
// paper's 30/360 example is about.
func (b Bond) AccruedInterest(settle chronology.Civil) (float64, error) {
	sched, err := CouponSchedule(b.Issue, b.Maturity, b.Frequency)
	if err != nil {
		return 0, err
	}
	prev := b.Issue
	var next chronology.Civil
	found := false
	for _, c := range sched {
		if settle.Before(c) {
			next = c
			found = true
			break
		}
		prev = c
	}
	if !found {
		return 0, fmt.Errorf("datearith: settlement %v after maturity", settle)
	}
	period := b.Basis.Days(prev, next)
	if period == 0 {
		return 0, nil
	}
	accrued := b.Basis.Days(prev, settle)
	return b.Face * b.Coupon / float64(b.Frequency) * float64(accrued) / float64(period), nil
}

// Price returns the dirty price of the bond at settlement for a given
// annual yield (compounded at the coupon frequency), discounting each cash
// flow by the basis year-fraction from settlement.
func (b Bond) Price(settle chronology.Civil, yield float64) (float64, error) {
	sched, err := CouponSchedule(b.Issue, b.Maturity, b.Frequency)
	if err != nil {
		return 0, err
	}
	if !settle.Before(b.Maturity) {
		return 0, fmt.Errorf("datearith: settlement %v after maturity", settle)
	}
	coupon := b.Face * b.Coupon / float64(b.Frequency)
	price := 0.0
	for _, c := range sched {
		if !settle.Before(c) {
			continue
		}
		t := b.Basis.YearFraction(settle, c)
		cash := coupon
		if c == b.Maturity {
			cash += b.Face
		}
		price += cash / math.Pow(1+yield/float64(b.Frequency), t*float64(b.Frequency))
	}
	return price, nil
}

// Yield solves Price(settle, y) = price by bisection; the answer depends on
// the day-count convention, which is the paper's point.
func (b Bond) Yield(settle chronology.Civil, price float64) (float64, error) {
	if price <= 0 {
		return 0, fmt.Errorf("datearith: price must be positive")
	}
	lo, hi := -0.99, 10.0
	plo, err := b.Price(settle, lo)
	if err != nil {
		return 0, err
	}
	phi, err := b.Price(settle, hi)
	if err != nil {
		return 0, err
	}
	if (plo-price)*(phi-price) > 0 {
		return 0, fmt.Errorf("datearith: price %v out of range [%v, %v]", price, phi, plo)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		pm, err := b.Price(settle, mid)
		if err != nil {
			return 0, err
		}
		if math.Abs(pm-price) < 1e-10 {
			return mid, nil
		}
		// Price decreases in yield.
		if pm > price {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
