package datearith

import (
	"fmt"

	"calsys/internal/store"
)

// Register declares the convention-parameterized date functions as
// user-defined database functions, the extensible-database route the paper
// proposes: queries can then say days("30/360", a, b) or
// yearfrac("actual/365", a, b) with any registered convention.
func Register(db *store.DB) error {
	conv := func(v store.Value) (Convention, error) {
		if v.T != store.TText {
			return nil, fmt.Errorf("datearith: convention argument must be text")
		}
		return ByName(v.S)
	}
	dates := func(args []store.Value) (a, b store.Value, err error) {
		a, err = args[1].CoerceTo(store.TDate)
		if err != nil {
			return
		}
		b, err = args[2].CoerceTo(store.TDate)
		return
	}
	if err := db.RegisterFunc(store.UserFunc{
		Name: "days", MinArgs: 3, MaxArgs: 3,
		Fn: func(args []store.Value) (store.Value, error) {
			c, err := conv(args[0])
			if err != nil {
				return store.Null, err
			}
			a, b, err := dates(args)
			if err != nil {
				return store.Null, err
			}
			return store.NewInt(c.Days(a.D, b.D)), nil
		},
	}); err != nil {
		return err
	}
	if err := db.RegisterFunc(store.UserFunc{
		Name: "yearfrac", MinArgs: 3, MaxArgs: 3,
		Fn: func(args []store.Value) (store.Value, error) {
			c, err := conv(args[0])
			if err != nil {
				return store.Null, err
			}
			a, b, err := dates(args)
			if err != nil {
				return store.Null, err
			}
			return store.NewFloat(c.YearFraction(a.D, b.D)), nil
		},
	}); err != nil {
		return err
	}
	return db.RegisterFunc(store.UserFunc{
		Name: "addmonths", MinArgs: 2, MaxArgs: 2,
		Fn: func(args []store.Value) (store.Value, error) {
			d, err := args[0].CoerceTo(store.TDate)
			if err != nil {
				return store.Null, err
			}
			if args[1].T != store.TInt {
				return store.Null, fmt.Errorf("datearith: addmonths takes an integer month count")
			}
			return store.NewDate(AddMonths(d.D, int(args[1].I))), nil
		},
	})
}
