package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	for i := 0; i < 3; i++ {
		if err := Hit(in, "anything"); err != nil {
			t.Fatal(err)
		}
	}
	if in.Count("anything") != 0 {
		t.Error("nil injector counted hits")
	}
	if in.Log() != nil {
		t.Error("nil injector logged")
	}
}

func TestFailAtNth(t *testing.T) {
	in := New(1)
	in.FailAt("s", 3)
	for i := 1; i <= 5; i++ {
		err := Hit(in, "s")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call 3: err = %v", err)
			}
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Site != "s" || ie.Nth != 3 || ie.Crash {
				t.Fatalf("call 3: %+v", ie)
			}
			continue
		}
		if err != nil {
			t.Fatalf("call %d: unexpected %v", i, err)
		}
	}
	if in.Count("s") != 5 {
		t.Errorf("Count = %d", in.Count("s"))
	}
	if log := in.Log(); len(log) != 1 || log[0] != "s#3:fail" {
		t.Errorf("Log = %v", log)
	}
}

func TestCrashAtIsDetectable(t *testing.T) {
	in := New(7)
	in.CrashAt("d", 1)
	err := Hit(in, "d")
	if !IsCrash(err) {
		t.Fatalf("err = %v, want crash", err)
	}
	if IsCrash(errors.New("plain")) {
		t.Error("plain error classified as crash")
	}
	// one-shot: next hit passes
	if err := Hit(in, "d"); err != nil {
		t.Fatalf("second hit: %v", err)
	}
}

func TestPanicAt(t *testing.T) {
	in := New(1)
	in.PanicAt("p", 1)
	defer func() {
		v := recover()
		ip, ok := v.(InjectedPanic)
		if !ok || ip.Site != "p" {
			t.Fatalf("recovered %v", v)
		}
	}()
	_ = Hit(in, "p")
	t.Fatal("no panic")
}

func TestDelayAt(t *testing.T) {
	in := New(1)
	in.DelayAt("slow", 1, 10*time.Millisecond)
	t0 := time.Now()
	if err := Hit(in, "slow"); err != nil {
		t.Fatal(err)
	}
	if time.Since(t0) < 10*time.Millisecond {
		t.Error("no delay observed")
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(seed)
		in.FailProb("p", 0.5)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, Hit(in, "p") != nil)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical pattern (suspicious)")
	}
}

func TestDisarm(t *testing.T) {
	in := New(1)
	in.FailProb("x", 1.0)
	if Hit(in, "x") == nil {
		t.Fatal("armed site did not fire")
	}
	in.Disarm("x")
	if err := Hit(in, "x"); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
}
