// Package faultinject is a deterministic fault-injection harness for chaos
// testing the durability layer. Code under test declares named sites
// (faultinject.Hit(inj, "journal.append")); tests arm sites with a plan —
// fail the nth call, panic, crash, delay, or fail with a seeded probability —
// and the injector replays identically for a given seed.
//
// A nil *Injector is inert: every Hit returns nil at the cost of one branch,
// so production code threads the injector through unconditionally.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Mode selects what an armed site does when its plan matches a call.
type Mode int

const (
	// Fail makes Hit return an *InjectedError.
	Fail Mode = iota
	// Panic makes Hit panic with an InjectedPanic value.
	Panic
	// Crash makes Hit return an *InjectedError marked as a process crash:
	// the caller is expected to abandon the component mid-operation, the
	// way a killed daemon would.
	Crash
	// Delay makes Hit sleep for the armed duration, then return nil.
	Delay
)

func (m Mode) String() string {
	switch m {
	case Fail:
		return "fail"
	case Panic:
		return "panic"
	case Crash:
		return "crash"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ErrInjected is the sentinel all injected failures wrap; match with
// errors.Is.
var ErrInjected = errors.New("injected fault")

// InjectedError reports which site and call number produced a fault.
type InjectedError struct {
	Site  string
	Nth   int // 1-based call count at the site when the fault fired
	Crash bool
}

// Error implements error.
func (e *InjectedError) Error() string {
	kind := "fault"
	if e.Crash {
		kind = "crash"
	}
	return fmt.Sprintf("injected %s at %s (call %d)", kind, e.Site, e.Nth)
}

// Is makes errors.Is(err, ErrInjected) true for injected errors.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// InjectedPanic is the value thrown by a Panic-mode site.
type InjectedPanic struct {
	Site string
	Nth  int
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("injected panic at %s (call %d)", p.Site, p.Nth)
}

// IsCrash reports whether err carries an injected crash, i.e. the harness
// asked the component to die here rather than handle a failure.
func IsCrash(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie) && ie.Crash
}

// plan is one armed behaviour at a site.
type plan struct {
	mode  Mode
	nth   int           // fire on exactly the nth call (0 = disabled)
	prob  float64       // or fire with this probability per call
	delay time.Duration // Delay mode
	once  bool          // disarm after firing
}

type site struct {
	calls int
	plans []*plan
}

// Injector holds armed sites and a seeded PRNG. All methods are safe for
// concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites map[string]*site
	log   []string
}

// New returns an injector whose probabilistic decisions replay for the seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), sites: map[string]*site{}}
}

func (in *Injector) site(name string) *site {
	s, ok := in.sites[name]
	if !ok {
		s = &site{}
		in.sites[name] = s
	}
	return s
}

// FailAt arms site to fail exactly its nth call (1-based), once.
func (in *Injector) FailAt(name string, nth int) {
	in.arm(name, &plan{mode: Fail, nth: nth, once: true})
}

// CrashAt arms site to crash exactly its nth call (1-based), once.
func (in *Injector) CrashAt(name string, nth int) {
	in.arm(name, &plan{mode: Crash, nth: nth, once: true})
}

// PanicAt arms site to panic exactly its nth call (1-based), once.
func (in *Injector) PanicAt(name string, nth int) {
	in.arm(name, &plan{mode: Panic, nth: nth, once: true})
}

// DelayAt arms site to sleep d on exactly its nth call (1-based), once.
func (in *Injector) DelayAt(name string, nth int, d time.Duration) {
	in.arm(name, &plan{mode: Delay, nth: nth, delay: d, once: true})
}

// FailProb arms site to fail each call with probability p under the seeded
// PRNG, until disarmed.
func (in *Injector) FailProb(name string, p float64) { in.arm(name, &plan{mode: Fail, prob: p}) }

// Disarm removes every plan at site (pending ones included).
func (in *Injector) Disarm(name string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.sites[name]; ok {
		s.plans = nil
	}
}

func (in *Injector) arm(name string, p *plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(name)
	s.plans = append(s.plans, p)
}

// Count returns how many times site has been hit.
func (in *Injector) Count(name string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.sites[name]; ok {
		return s.calls
	}
	return 0
}

// Log returns the faults fired so far, in order.
func (in *Injector) Log() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.log...)
}

// Hit is the injection point: code under test calls it with its site name.
// It is nil-safe so production builds pay only a branch.
func Hit(in *Injector, name string) error {
	if in == nil {
		return nil
	}
	return in.hit(name)
}

func (in *Injector) hit(name string) error {
	in.mu.Lock()
	s := in.site(name)
	s.calls++
	nth := s.calls
	var fired *plan
	for _, p := range s.plans {
		match := false
		switch {
		case p.nth > 0:
			match = p.nth == nth
		case p.prob > 0:
			match = in.rng.Float64() < p.prob
		}
		if match {
			fired = p
			break
		}
	}
	if fired != nil && fired.once {
		for i, p := range s.plans {
			if p == fired {
				s.plans = append(s.plans[:i], s.plans[i+1:]...)
				break
			}
		}
	}
	if fired != nil {
		in.log = append(in.log, fmt.Sprintf("%s#%d:%s", name, nth, fired.mode))
	}
	in.mu.Unlock()

	if fired == nil {
		return nil
	}
	switch fired.mode {
	case Fail:
		return &InjectedError{Site: name, Nth: nth}
	case Crash:
		return &InjectedError{Site: name, Nth: nth, Crash: true}
	case Panic:
		panic(InjectedPanic{Site: name, Nth: nth})
	case Delay:
		time.Sleep(fired.delay)
	}
	return nil
}
