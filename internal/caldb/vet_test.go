package caldb

import (
	"strings"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	calvet "calsys/internal/core/callang/vet"
)

func TestDefineRejectsUndefinedReference(t *testing.T) {
	m := newManager(t)
	err := m.DefineDerived("BAD", "NOPE:during:MONTHS", lifespanFrom1985(), GranAuto)
	if err == nil {
		t.Fatal("undefined reference should reject the definition")
	}
	for _, want := range []string{"does not vet", "CV001", `"NOPE"`, "1:1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
	if _, ok := m.Lookup("BAD"); ok {
		t.Error("rejected calendar landed in the catalog")
	}
}

func TestDefineRejectsZeroSelection(t *testing.T) {
	m := newManager(t)
	err := m.DefineDerived("ZERO", "0/DAYS:during:MONTHS", lifespanFrom1985(), GranAuto)
	if err == nil {
		t.Fatal("zero label selection should reject the definition")
	}
	for _, want := range []string{"CV004", "no-zero"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
}

func TestDefineRejectsSelfCycle(t *testing.T) {
	m := newManager(t)
	err := m.DefineDerived("LOOPY", "LOOPY:during:MONTHS", lifespanFrom1985(), chronology.Day)
	if err == nil {
		t.Fatal("self-referential derivation should reject the definition")
	}
	for _, want := range []string{"CV002", "LOOPY → LOOPY"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
}

func TestDefineRecordsWarnings(t *testing.T) {
	m := newManager(t)
	if err := m.DefineDerived("TODAYS_MONTH", "{return (today:during:MONTHS);}",
		lifespanFrom1985(), chronology.Day); err != nil {
		t.Fatal(err)
	}
	e, ok := m.Lookup("TODAYS_MONTH")
	if !ok {
		t.Fatal("calendar missing")
	}
	found := false
	for _, w := range e.Warnings {
		if strings.Contains(w, "CV008") {
			found = true
		}
	}
	if !found {
		t.Errorf("volatile derivation should record a CV008 warning, got %q", e.Warnings)
	}
	row, err := m.FigureRow("TODAYS_MONTH")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(row, "Vet-Warnings") || !strings.Contains(row, "CV008") {
		t.Errorf("figure row should render vet warnings:\n%s", row)
	}

	// Warnings survive a catalog reload (they live in the vet_warnings
	// column, not just the cache).
	if err := m.reload(); err != nil {
		t.Fatal(err)
	}
	e2, _ := m.Lookup("todays_month")
	if len(e2.Warnings) == 0 || !strings.Contains(e2.Warnings[0], "CV008") {
		t.Errorf("warnings lost on reload: %q", e2.Warnings)
	}
}

func TestCleanDefinitionHasNoWarnings(t *testing.T) {
	m := newManager(t)
	if err := m.DefineDerived("Tuesdays", "[2]/DAYS:during:WEEKS", lifespanFrom1985(), GranAuto); err != nil {
		t.Fatal(err)
	}
	e, _ := m.Lookup("Tuesdays")
	if len(e.Warnings) != 0 {
		t.Errorf("clean definition recorded warnings: %q", e.Warnings)
	}
	row, _ := m.FigureRow("Tuesdays")
	if strings.Contains(row, "Vet-Warnings") {
		t.Errorf("figure row should omit the Vet-Warnings line when clean:\n%s", row)
	}
}

func TestVetAndVetDefined(t *testing.T) {
	m := newManager(t)
	ds := m.Vet("X", "NOPE:during:MONTHS")
	if !ds.HasErrors() {
		t.Error("Vet should report the undefined reference")
	}
	ds = m.Vet("", "[2]/DAYS:during:WEEKS")
	if len(ds) != 0 {
		t.Errorf("clean source should vet clean, got:\n%s", ds)
	}
	// Parse failures surface as diagnostics, not panics.
	ds = m.Vet("", "DAYS:during:")
	if !ds.HasErrors() {
		t.Error("parse failure should surface as an error diagnostic")
	}

	if err := m.DefineDerived("Tuesdays", "[2]/DAYS:during:WEEKS", lifespanFrom1985(), GranAuto); err != nil {
		t.Fatal(err)
	}
	got, err := m.VetDefined("Tuesdays")
	if err != nil || len(got) != 0 {
		t.Errorf("VetDefined(Tuesdays) = %v, %v", got, err)
	}
	if _, err := m.VetDefined("missing"); err == nil {
		t.Error("VetDefined on an unknown name should error")
	}
}

func TestReplaceStoredRevetsDependents(t *testing.T) {
	m := newManager(t)
	hol, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{31, 90})
	if err := m.DefineStored("HOL", hol, Lifespan{Lo: 1, Hi: MaxDayTick}); err != nil {
		t.Fatal(err)
	}
	// WEEKS + HOL mixes Week and Day elements: CV003 warning at define time.
	if err := m.DefineDerived("UNION", "WEEKS + HOL", lifespanFrom1985(), chronology.Day); err != nil {
		t.Fatal(err)
	}
	e, _ := m.Lookup("UNION")
	if len(e.Warnings) == 0 || !strings.Contains(e.Warnings[0], calvet.CodeGranMismatch) {
		t.Fatalf("expected a CV003 warning at define time, got %q", e.Warnings)
	}

	// Replacing HOL with week-granularity values clears the mismatch; the
	// dependent's stored warnings refresh.
	wk, _ := calendar.FromPoints(chronology.Week, []chronology.Tick{5})
	if err := m.ReplaceStored("HOL", wk); err != nil {
		t.Fatal(err)
	}
	e, _ = m.Lookup("UNION")
	if len(e.Warnings) != 0 {
		t.Errorf("warnings should refresh after replacement, got %q", e.Warnings)
	}
}
