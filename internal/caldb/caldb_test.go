package caldb

import (
	"strings"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/store"
)

func d(y, m, day int) chronology.Civil { return chronology.Civil{Year: y, Month: m, Day: day} }

func newManager(t testing.TB) *Manager {
	t.Helper()
	m, err := New(store.NewDB(), chronology.MustNew(chronology.DefaultEpoch))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func lifespanFrom1985() Lifespan {
	// Day ticks relative to the 1987 epoch: 1985-01-01 is tick -730.
	return Lifespan{Lo: -730, Hi: MaxDayTick}
}

// Figure 1: the Tuesdays tuple with derivation [2]/DAYS:during:WEEKS,
// lifespan (1985, ∞), granularity DAYS.
func TestFigure1CatalogRow(t *testing.T) {
	m := newManager(t)
	if err := m.DefineDerived("Tuesdays", "{[2]/DAYS:during:WEEKS;}", lifespanFrom1985(), GranAuto); err != nil {
		t.Fatal(err)
	}
	e, ok := m.Lookup("Tuesdays")
	if !ok {
		t.Fatal("Tuesdays not in catalog")
	}
	if e.Gran != chronology.Day {
		t.Errorf("granularity = %v, want DAYS", e.Gran)
	}
	if !e.Lifespan.Unbounded() {
		t.Errorf("lifespan = %v, want unbounded", e.Lifespan)
	}
	if !strings.Contains(e.EvalPlan, "GENERATE DAYS") || !strings.Contains(e.EvalPlan, "SELECT [2]") {
		t.Errorf("eval plan:\n%s", e.EvalPlan)
	}
	row, err := m.FigureRow("Tuesdays")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Tuesdays", "[2]/(DAYS:during:WEEKS)", "(-730,∞)", "DAYS"} {
		if !strings.Contains(row, want) {
			t.Errorf("figure row missing %q:\n%s", want, row)
		}
	}
	// And it evaluates: Tuesdays of January 1993 are the 2190+7k ticks.
	cal, err := m.EvalExpr("Tuesdays", d(1993, 1, 1), d(1993, 1, 31))
	if err != nil {
		t.Fatal(err)
	}
	if cal.Flatten().String() != "{(2190,2190),(2197,2197),(2204,2204),(2211,2211),(2218,2218)}" {
		t.Errorf("Tuesdays = %v", cal)
	}
	// The catalog row survives a round trip through the store.
	if err := m.reload(); err != nil {
		t.Fatal(err)
	}
	e2, ok := m.Lookup("tuesdays") // case-insensitive
	if !ok || e2.Derivation != e.Derivation || e2.Gran != e.Gran {
		t.Errorf("reloaded entry differs: %+v", e2)
	}
}

func TestStoredCalendarLifecycle(t *testing.T) {
	m := newManager(t)
	hol, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{31, 90})
	if err := m.DefineStored("HOLIDAYS", hol, Lifespan{Lo: 1, Hi: 365}); err != nil {
		t.Fatal(err)
	}
	got, ok := m.StoredCalendar("HOLIDAYS")
	if !ok || got.String() != "{(31,31),(90,90)}" {
		t.Errorf("stored = %v, %v", got, ok)
	}
	if g, ok := m.ElemKindOf("HOLIDAYS"); !ok || g != chronology.Day {
		t.Errorf("kind = %v, %v", g, ok)
	}
	// Replace values (new year's holiday list).
	hol2, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{31, 90, 359})
	if err := m.ReplaceStored("HOLIDAYS", hol2); err != nil {
		t.Fatal(err)
	}
	got, _ = m.StoredCalendar("HOLIDAYS")
	if got.Len() != 3 {
		t.Errorf("after replace: %v", got)
	}
	if err := m.reload(); err != nil {
		t.Fatal(err)
	}
	got, _ = m.StoredCalendar("HOLIDAYS")
	if got.Len() != 3 {
		t.Errorf("after reload: %v", got)
	}
	// Drop.
	if err := m.Drop("HOLIDAYS"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.StoredCalendar("HOLIDAYS"); ok {
		t.Error("dropped calendar still resolves")
	}
	if err := m.Drop("HOLIDAYS"); err == nil {
		t.Error("double drop should fail")
	}
	if err := m.ReplaceStored("HOLIDAYS", hol); err == nil {
		t.Error("replace after drop should fail")
	}
}

func TestDefineValidation(t *testing.T) {
	m := newManager(t)
	ls := lifespanFrom1985()
	cases := []struct {
		name string
		fn   func() error
	}{
		{"empty name", func() error { return m.DefineDerived("", "DAYS;", ls, GranAuto) }},
		{"shadow basic", func() error { return m.DefineDerived("WEEKS", "DAYS;", ls, GranAuto) }},
		{"reserved today", func() error { return m.DefineDerived("today", "DAYS;", ls, GranAuto) }},
		{"parse error", func() error { return m.DefineDerived("X", "[0]/DAYS;", ls, GranAuto) }},
		{"unknown ref", func() error { return m.DefineDerived("X", "NO_SUCH;", ls, GranAuto) }},
		{"bad lifespan", func() error { return m.DefineDerived("X", "DAYS;", Lifespan{Lo: 5, Hi: 1}, GranAuto) }},
		{"zero lifespan", func() error { return m.DefineDerived("X", "DAYS;", Lifespan{}, GranAuto) }},
		{"nil stored", func() error { return m.DefineStored("X", nil, ls) }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: should fail", tc.name)
		}
	}
	if err := m.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS;", ls, GranAuto); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS;", ls, GranAuto); err == nil {
		t.Error("duplicate definition should fail")
	}
}

func TestDerivedChainThroughCatalog(t *testing.T) {
	m := newManager(t)
	ls := lifespanFrom1985()
	if err := m.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS;", ls, GranAuto); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineDerived("Januarys", "[1]/MONTHS:during:YEARS;", ls, GranAuto); err != nil {
		t.Fatal(err)
	}
	// Granularity inference through the chain: Mondays has kind DAYS,
	// Januarys kind MONTHS.
	if g, _ := m.ElemKindOf("Mondays"); g != chronology.Day {
		t.Errorf("Mondays kind = %v", g)
	}
	if g, _ := m.ElemKindOf("Januarys"); g != chronology.Month {
		t.Errorf("Januarys kind = %v", g)
	}
	cal, err := m.EvalExpr("Mondays:during:Januarys:during:1993/YEARS", d(1987, 1, 1), d(1994, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	if cal.Flatten().String() != "{(2196,2196),(2203,2203),(2210,2210),(2217,2217)}" {
		t.Errorf("Mondays during January 1993 = %v", cal)
	}
}

func TestMultiStatementDerivation(t *testing.T) {
	m := newManager(t)
	ls := lifespanFrom1985()
	hol, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{2223}) // Jan 31 1993
	if err := m.DefineStored("HOLIDAYS", hol, ls); err != nil {
		t.Fatal(err)
	}
	weekdays := "{WD = [1,2,3,4,5]/DAYS:during:WEEKS; return (WD - HOLIDAYS);}"
	if err := m.DefineDerived("BUSINESS_DAYS", weekdays, ls, chronology.Day); err != nil {
		t.Fatal(err)
	}
	e, _ := m.Lookup("BUSINESS_DAYS")
	if !strings.HasPrefix(e.EvalPlan, "SCRIPT") {
		t.Errorf("multi-statement eval plan = %q", e.EvalPlan)
	}
	// The set difference in the script coalesces adjacent weekdays into
	// Mon-Fri runs, so clip with strict overlaps rather than during.
	cal, err := m.EvalExpr("BUSINESS_DAYS:overlaps:interval(2217, 2226)", d(1993, 1, 1), d(1993, 2, 28))
	if err != nil {
		t.Fatal(err)
	}
	// Jan 25..Feb 3 1993 range (2217..2226): weekdays minus the Jan 31
	// holiday (a Sunday, so no effect): Mon 25..Fri 29 = 2217..2221, Mon
	// Feb 1..Wed Feb 3 = 2224..2226.
	if cal.Flatten().ToSet().String() != "{(2217,2221),(2224,2226)}" {
		t.Errorf("business days = %v", cal.Flatten().ToSet())
	}
}

func TestRunScriptThroughCatalog(t *testing.T) {
	m := newManager(t)
	v, err := m.RunScript("{return ([n]/DAYS:during:MONTHS);}", d(1993, 1, 1), d(1993, 3, 31))
	if err != nil {
		t.Fatal(err)
	}
	// Month ends of Jan-Mar 1993 in 1987-epoch ticks: 2223, 2251, 2282.
	if v.Cal.String() != "{(2223,2223),(2251,2251),(2282,2282)}" {
		t.Errorf("month ends = %v", v.Cal)
	}
	if _, err := m.RunScript("{oops;", d(1993, 1, 1), d(1993, 3, 31)); err == nil {
		t.Error("parse error should surface")
	}
	if _, err := m.EvalExpr("]bad[", d(1993, 1, 1), d(1993, 1, 2)); err == nil {
		t.Error("expression parse error should surface")
	}
}

func TestNames(t *testing.T) {
	m := newManager(t)
	ls := lifespanFrom1985()
	_ = m.DefineDerived("A1", "DAYS:during:MONTHS;", ls, GranAuto)
	_ = m.DefineDerived("B2", "DAYS:during:WEEKS;", ls, GranAuto)
	names := m.Names()
	if len(names) != 2 {
		t.Errorf("Names = %v", names)
	}
}

// The lifespan column of Figure 1 is enforced: stored values are clipped to
// the lifespan, and a derived calendar describes no time points outside it.
func TestLifespanEnforcement(t *testing.T) {
	m := newManager(t)
	// A holiday list valid only for 1987 (day ticks 1..365), with a stray
	// value outside it.
	hol, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{31, 90, 400})
	if err := m.DefineStored("HOLIDAYS87", hol, Lifespan{Lo: 1, Hi: 365}); err != nil {
		t.Fatal(err)
	}
	got, err := m.EvalExpr("HOLIDAYS87:intersects:(DAYS:during:interval(1, 500))", d(1987, 1, 1), d(1988, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	// Day 400 lies outside the lifespan and must not appear.
	if got.String() != "{(31,31),(90,90)}" {
		t.Errorf("clipped holidays = %v", got)
	}

	// A derived calendar defined only for 1987: evaluating 1988 yields
	// nothing.
	if err := m.DefineDerived("EOM87", "[n]/DAYS:during:MONTHS", Lifespan{Lo: 1, Hi: 365}, GranAuto); err != nil {
		t.Fatal(err)
	}
	// Force the opaque (script) path by defining through a two-statement
	// derivation as well.
	if err := m.DefineDerived("EOM87S", "{x = [n]/DAYS:during:MONTHS; return (x);}",
		Lifespan{Lo: 1, Hi: 365}, chronology.Day); err != nil {
		t.Fatal(err)
	}
	in87, err := m.EvalExpr("EOM87S", d(1987, 1, 1), d(1987, 3, 31))
	if err != nil {
		t.Fatal(err)
	}
	if in87.Flatten().Len() != 3 {
		t.Errorf("month ends within lifespan = %v", in87.Flatten())
	}
	in88, err := m.EvalExpr("EOM87S", d(1988, 1, 1), d(1988, 3, 31))
	if err != nil {
		t.Fatal(err)
	}
	if !in88.IsEmpty() {
		t.Errorf("evaluation outside lifespan = %v, want empty", in88)
	}
	if lo, hi, ok := m.LifespanOf("EOM87S"); !ok || lo != 1 || hi != 365 {
		t.Errorf("LifespanOf = %d,%d,%v", lo, hi, ok)
	}
	if _, _, ok := m.LifespanOf("missing"); ok {
		t.Error("missing calendar should have no lifespan")
	}
}

// A single-expression derivation with a bounded lifespan is evaluated
// opaquely so the lifespan still clips it.
func TestBoundedLifespanBlocksInlining(t *testing.T) {
	m := newManager(t)
	if err := m.DefineDerived("EOM87X", "[n]/DAYS:during:MONTHS", Lifespan{Lo: 1, Hi: 365}, GranAuto); err != nil {
		t.Fatal(err)
	}
	in88, err := m.EvalExpr("EOM87X", d(1988, 1, 1), d(1988, 3, 31))
	if err != nil {
		t.Fatal(err)
	}
	if !in88.IsEmpty() {
		t.Errorf("single-expression derivation escaped its lifespan: %v", in88)
	}
	in87, err := m.EvalExpr("EOM87X", d(1987, 1, 1), d(1987, 2, 28))
	if err != nil {
		t.Fatal(err)
	}
	if in87.Flatten().Len() != 2 {
		t.Errorf("within lifespan = %v", in87.Flatten())
	}
}

// Periodic compression reaches catalog evaluation end to end: the generates
// behind a derived calendar are answered by patterns in the process-wide
// shared cache, re-evaluation over a distant window reuses them, and the
// results match the fully materialized (DisablePeriodic) path.
func TestPeriodicCompressionThroughCatalog(t *testing.T) {
	m := newManager(t)
	if err := m.DefineDerived("Paydays", "{[n]/DAYS:during:MONTHS;}", lifespanFrom1985(), GranAuto); err != nil {
		t.Fatal(err)
	}
	before := m.MatStats()
	got, err := m.EvalExpr("Paydays", d(1990, 1, 1), d(1999, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	after := m.MatStats()
	if after.Patterns <= before.Patterns {
		t.Fatalf("catalog evaluation stored no patterns: before %+v, after %+v", before, after)
	}
	envOff := m.Env()
	envOff.DisablePeriodic = true
	want, err := m.EvalExprEnv(envOff, "Paydays", d(1990, 1, 1), d(1999, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Flatten().ToSet().Equal(want.Flatten().ToSet()) {
		t.Fatalf("periodic catalog evaluation diverges:\n periodic     %v\n materialized %v",
			got.Flatten(), want.Flatten())
	}
	// A distant window is served from the same all-time pattern entries —
	// no new patterns, no growth in resident generate bytes.
	mid := m.MatStats()
	later, err := m.EvalExpr("Paydays", d(2005, 1, 1), d(2005, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	if later.Flatten().Len() != 12 {
		t.Fatalf("2005 Paydays = %v, want 12 month-ends", later.Flatten())
	}
	end := m.MatStats()
	if end.Patterns != mid.Patterns {
		t.Errorf("re-evaluation over a distant window grew pattern entries: %d -> %d",
			mid.Patterns, end.Patterns)
	}
	if end.Hits <= mid.Hits {
		t.Errorf("re-evaluation did not hit the shared cache: %+v -> %+v", mid, end)
	}
}

// A snapshot restored with a CALENDARS table of the wrong shape must be
// rejected when the manager attaches, not panic while decoding rows.
func TestNewRejectsIncompatibleCatalogTable(t *testing.T) {
	chron := chronology.MustNew(chronology.DefaultEpoch)

	db := store.NewDB()
	short, err := store.NewSchema(
		store.Column{Name: "name", Type: store.TText},
		store.Column{Name: "granularity", Type: store.TText},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableName, short); err != nil {
		t.Fatal(err)
	}
	if _, err := New(db, chron); err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("short CALENDARS schema: err = %v, want column-count rejection", err)
	}

	db = store.NewDB()
	wrongType, err := store.NewSchema(
		store.Column{Name: "name", Type: store.TText},
		store.Column{Name: "derivation_script", Type: store.TText},
		store.Column{Name: "eval_plan", Type: store.TText},
		store.Column{Name: "lifespan", Type: store.TInt}, // should be TInterval
		store.Column{Name: "granularity", Type: store.TText},
		store.Column{Name: "calvalues", Type: store.TCalendar},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(TableName, wrongType); err != nil {
		t.Fatal(err)
	}
	if _, err := New(db, chron); err == nil || !strings.Contains(err.Error(), "lifespan") {
		t.Fatalf("wrong lifespan type: err = %v, want type rejection naming the column", err)
	}
}

// Corrupt catalog rows surface positioned errors (row id + what was wrong)
// when a fresh manager attaches over the restored database.
func TestReloadPositionsCorruptRowErrors(t *testing.T) {
	m := newManager(t)
	if err := m.DefineDerived("Tuesdays", "{[2]/DAYS:during:WEEKS;}", lifespanFrom1985(), GranAuto); err != nil {
		t.Fatal(err)
	}
	db := m.DB()
	tab, _ := db.Table(TableName)
	rids, err := tab.LookupEq("name", store.NewText("Tuesdays"))
	if err != nil || len(rids) != 1 {
		t.Fatalf("catalog row lookup: rids=%v err=%v", rids, err)
	}
	mangle := func(col int, v store.Value) {
		t.Helper()
		row, _ := tab.Get(rids[0])
		bad := row.Clone()
		bad[col] = v
		if err := db.RunTxn(func(tx *store.Txn) error {
			return tx.Replace(TableName, rids[0], bad)
		}); err != nil {
			t.Fatal(err)
		}
	}

	mangle(4, store.NewText("martian"))
	_, err = New(db, m.Chron())
	if err == nil || !strings.Contains(err.Error(), "CALENDARS row") ||
		!strings.Contains(err.Error(), "bad granularity") {
		t.Fatalf("mangled granularity: err = %v, want positioned granularity error", err)
	}

	mangle(4, store.NewText("DAYS"))
	mangle(1, store.NewText("{[2]/DAYS:during:"))
	_, err = New(db, m.Chron())
	if err == nil || !strings.Contains(err.Error(), "bad derivation script") {
		t.Fatalf("mangled derivation: err = %v, want derivation error", err)
	}

	mangle(1, store.NewText(""))
	mangle(0, store.NewText("  "))
	_, err = New(db, m.Chron())
	if err == nil || !strings.Contains(err.Error(), "empty name") {
		t.Fatalf("blank name: err = %v, want empty-name error", err)
	}
}
