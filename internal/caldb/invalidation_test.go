package caldb

import (
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/plan"
)

// uncachedEnv evaluates with the shared materialization cache bypassed, for
// ground-truth comparisons.
func (m *Manager) uncachedEnv() *plan.Env {
	return &plan.Env{Chron: m.chron, Cat: m, DisableSharing: true}
}

// Replacing a stored calendar must invalidate every cached materialization
// that depends on it: a warmed evaluation re-run after ReplaceStored has to
// reflect the new values, not the stale cache entry.
func TestCacheInvalidationOnReplaceStored(t *testing.T) {
	m := newManager(t)
	ls := lifespanFrom1985()
	// Jan 31 1993 (tick 2223) is a Sunday: removing it from weekdays is a
	// no-op, so the pre-replace result keeps all weekdays.
	hol, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{2223})
	if err := m.DefineStored("HOLIDAYS", hol, ls); err != nil {
		t.Fatal(err)
	}
	const expr = "([1,2,3,4,5]/DAYS:during:WEEKS) - HOLIDAYS"
	from, to := d(1993, 1, 1), d(1993, 1, 31)

	first, err := m.EvalExpr(expr, from, to)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := m.MatStats().Hits
	warm, err := m.EvalExpr(expr, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Equal(first) {
		t.Fatalf("warm re-evaluation diverged:\n%v\nvs\n%v", warm, first)
	}
	if m.MatStats().Hits == hitsBefore {
		t.Fatal("second evaluation did not hit the materialization cache")
	}

	// Move the holiday to Monday Jan 25 1993 (tick 2217); the weekday set
	// must now lose that day.
	hol2, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{2217})
	if err := m.ReplaceStored("HOLIDAYS", hol2); err != nil {
		t.Fatal(err)
	}
	after, err := m.EvalExpr(expr, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if after.Equal(first) {
		t.Fatal("evaluation after ReplaceStored returned the stale cached value")
	}
	truth, err := m.EvalExprEnv(m.uncachedEnv(), expr, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Equal(truth) {
		t.Fatalf("post-replace cached evaluation = %v, want %v", after, truth)
	}
}

// Dropping and redefining a derived calendar must likewise invalidate its
// cached materializations.
func TestCacheInvalidationOnRedefineDerived(t *testing.T) {
	m := newManager(t)
	ls := lifespanFrom1985()
	if err := m.DefineDerived("PICKED", "{[1]/DAYS:during:WEEKS;}", ls, GranAuto); err != nil {
		t.Fatal(err)
	}
	from, to := d(1993, 1, 1), d(1993, 3, 31)
	mondays, err := m.EvalExpr("PICKED", from, to)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then swap the definition to Tuesdays.
	if _, err := m.EvalExpr("PICKED", from, to); err != nil {
		t.Fatal(err)
	}
	if err := m.Drop("PICKED"); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineDerived("PICKED", "{[2]/DAYS:during:WEEKS;}", ls, GranAuto); err != nil {
		t.Fatal(err)
	}
	after, err := m.EvalExpr("PICKED", from, to)
	if err != nil {
		t.Fatal(err)
	}
	if after.Equal(mondays) {
		t.Fatal("redefined calendar still evaluates to the stale cached value")
	}
	truth, err := m.EvalExprEnv(m.uncachedEnv(), "PICKED", from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Equal(truth) {
		t.Fatalf("post-redefine evaluation = %v, want %v", after, truth)
	}
}

// Expressions reading `today` are volatile: two evaluations at different
// clock instants must see different values even at one catalog generation.
func TestVolatileTodayNeverCached(t *testing.T) {
	m := newManager(t)
	now := m.chron.EpochSecondsOf(d(1993, 1, 4))
	env := m.Env()
	env.Now = func() int64 { return now }
	from, to := d(1993, 1, 1), d(1993, 12, 31)
	first, err := m.EvalExprEnv(env, "today", from, to)
	if err != nil {
		t.Fatal(err)
	}
	now = m.chron.EpochSecondsOf(d(1993, 1, 5))
	second, err := m.EvalExprEnv(env, "today", from, to)
	if err != nil {
		t.Fatal(err)
	}
	if first.Equal(second) {
		t.Fatalf("`today` was served from cache across a clock change: %v", second)
	}
}

// VolatileOf must see through derivation references: a calendar defined in
// terms of another calendar that reads `today` is itself volatile.
func TestVolatilityIsTransitive(t *testing.T) {
	m := newManager(t)
	ls := lifespanFrom1985()
	if err := m.DefineDerived("ANCHOR", "{today;}", ls, chronology.Day); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineDerived("WRAPPED", "{ANCHOR + ([1]/DAYS:during:WEEKS);}", ls, chronology.Day); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineDerived("STEADY", "{[1]/DAYS:during:WEEKS;}", ls, GranAuto); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]bool{"ANCHOR": true, "WRAPPED": true, "STEADY": false} {
		if got := m.VolatileOf(name); got != want {
			t.Errorf("VolatileOf(%s) = %v, want %v", name, got, want)
		}
	}
}
