// Package caldb manages the CALENDARS catalog table of Figure 1 inside the
// extensible database: each user-defined calendar is a tuple
//
//	CALENDARS(name, derivation-script, eval-plan, lifespan, granularity, values)
//
// and the package implements plan.Catalog on top of it, so the expression
// compiler and the rule system resolve calendars straight from the catalog.
package caldb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	calvet "calsys/internal/core/callang/vet"
	"calsys/internal/core/interval"
	"calsys/internal/core/matcache"
	"calsys/internal/core/plan"
	"calsys/internal/store"
)

// TableName is the catalog table's name.
const TableName = "CALENDARS"

// GranAuto asks DefineDerived to infer the calendar's granularity from its
// derivation script.
const GranAuto chronology.Granularity = -1

// MaxDayTick stands in for the paper's ∞ lifespan bound (roughly the year
// 10000 for a late-20th-century epoch). It equals plan.UnboundedDayTick, the
// threshold below which a derivation's lifespan forces opaque evaluation.
const MaxDayTick = plan.UnboundedDayTick

// Lifespan is the validity range of a calendar in day ticks; Hi = MaxDayTick
// renders as ∞ (Figure 1 shows (1985, ∞)).
type Lifespan struct {
	Lo, Hi chronology.Tick
}

// Unbounded reports an open upper bound.
func (l Lifespan) Unbounded() bool { return l.Hi >= MaxDayTick }

// String renders the lifespan like Figure 1.
func (l Lifespan) String() string {
	if l.Unbounded() {
		return fmt.Sprintf("(%d,∞)", l.Lo)
	}
	return fmt.Sprintf("(%d,%d)", l.Lo, l.Hi)
}

// Entry is one decoded CALENDARS tuple.
type Entry struct {
	Name       string
	Derivation string // empty for stored-values calendars
	EvalPlan   string
	Lifespan   Lifespan
	Gran       chronology.Granularity
	Values     *calendar.Calendar // nil for derived calendars
	// Warnings are the calvet warnings recorded when the calendar was
	// defined (or last re-vetted); rendered by FigureRow/Describe.
	Warnings []string
	// Version is the catalog generation this entry was last written at;
	// materializations computed against an older generation are stale.
	Version uint64
	script  *callang.Script
}

// Manager owns the CALENDARS table and resolves calendar names for the
// planner and rule system.
type Manager struct {
	db    *store.DB
	chron *chronology.Chronology

	// mat is the shared cross-evaluation materialization cache; scope
	// namespaces this manager's entries in it. gen is the catalog
	// generation, bumped on every Define/Replace/Drop so stale
	// materializations stop being addressable.
	mat   *matcache.Cache
	scope string
	gen   atomic.Uint64

	mu    sync.RWMutex
	cache map[string]*Entry // lower-case name -> decoded entry
	// volatile memoizes VolatileOf per generation (volGen is the generation
	// the memo was computed at).
	volatile map[string]bool
	volGen   uint64

	// listeners are invoked (outside m.mu) after every successful catalog
	// mutation; DBCRON uses this to schedule a mass next-trigger recompute.
	listenMu  sync.Mutex
	listeners []func()
}

// AddChangeListener registers a callback invoked after every successful
// catalog mutation (Define / Replace / Drop), outside the manager's locks.
// Callbacks should only set flags or send on channels; heavy work belongs in
// the caller's own loop.
func (m *Manager) AddChangeListener(fn func()) {
	m.listenMu.Lock()
	defer m.listenMu.Unlock()
	m.listeners = append(m.listeners, fn)
}

// notifyChanged fires the change listeners.
func (m *Manager) notifyChanged() {
	m.listenMu.Lock()
	fns := append([]func(){}, m.listeners...)
	m.listenMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// scopeCounter distinguishes managers sharing the process-wide cache.
var scopeCounter atomic.Uint64

// catalogCols are the column types a CALENDARS table must lead with; a
// restored snapshot whose catalog disagrees is rejected up front instead of
// decoding garbage (or panicking on short rows) later.
var catalogCols = []store.Type{
	store.TText, store.TText, store.TText, store.TInterval, store.TText, store.TCalendar,
}

// checkCatalogSchema validates an existing CALENDARS table (e.g. one restored
// from a snapshot) against the layout of Figure 1.
func checkCatalogSchema(tab *store.Table) error {
	if len(tab.Schema.Cols) < len(catalogCols) {
		return fmt.Errorf("caldb: CALENDARS table has %d columns, want at least %d (incompatible snapshot?)",
			len(tab.Schema.Cols), len(catalogCols))
	}
	for i, want := range catalogCols {
		if got := tab.Schema.Cols[i].Type; got != want {
			return fmt.Errorf("caldb: CALENDARS column %d (%s) has type %v, want %v (incompatible snapshot?)",
				i, tab.Schema.Cols[i].Name, got, want)
		}
	}
	return nil
}

// New creates (if necessary) the CALENDARS table and returns a Manager with
// an anonymous materialization-cache scope.
func New(db *store.DB, chron *chronology.Chronology) (*Manager, error) {
	return NewScoped(db, chron, "")
}

// NewScoped is New with a caller-chosen scope prefix for the shared
// materialization cache. The serving layer passes "tenant/<name>" so every
// cache key is tenant-prefixed and carries that tenant's own catalog
// generation: one tenant's Replace bumps only its own generation, leaving
// every other tenant's warm entries addressable. The prefix is combined with
// a process-unique incarnation counter, so dropping and recreating a tenant
// under the same name can never alias a stale entry from the previous
// incarnation (both start their generation counters at 1).
func NewScoped(db *store.DB, chron *chronology.Chronology, scope string) (*Manager, error) {
	if tab, ok := db.Table(TableName); ok {
		if err := checkCatalogSchema(tab); err != nil {
			return nil, err
		}
	} else {
		schema, err := store.NewSchema(
			store.Column{Name: "name", Type: store.TText},
			store.Column{Name: "derivation_script", Type: store.TText},
			store.Column{Name: "eval_plan", Type: store.TText},
			store.Column{Name: "lifespan", Type: store.TInterval},
			store.Column{Name: "granularity", Type: store.TText},
			store.Column{Name: "calvalues", Type: store.TCalendar},
			store.Column{Name: "vet_warnings", Type: store.TText},
		)
		if err != nil {
			return nil, err
		}
		if err := db.CreateTable(TableName, schema); err != nil {
			return nil, err
		}
		if err := db.CreateIndex(TableName, "name"); err != nil {
			return nil, err
		}
	}
	if scope == "" {
		scope = "caldb"
	}
	m := &Manager{
		db: db, chron: chron, cache: map[string]*Entry{},
		mat:   matcache.Shared(),
		scope: fmt.Sprintf("%s#%d|%v", scope, scopeCounter.Add(1), chron.Epoch()),
	}
	m.gen.Store(1)
	if err := m.reload(); err != nil {
		return nil, err
	}
	return m, nil
}

// CatalogGeneration implements plan.VersionedCatalog: a counter bumped on
// every Define/Replace/Drop. Shared materializations of catalog-dependent
// calendars are keyed by it, so any catalog mutation invalidates them.
func (m *Manager) CatalogGeneration() uint64 { return m.gen.Load() }

// MatScope returns this manager's namespace in the shared materialization
// cache (the tenant-prefixed scope for managers built by the serving layer).
func (m *Manager) MatScope() string { return m.scope }

// bump advances the catalog generation and returns the new value.
func (m *Manager) bump() uint64 { return m.gen.Add(1) }

// DB exposes the underlying database.
func (m *Manager) DB() *store.DB { return m.db }

// Chron exposes the chronology.
func (m *Manager) Chron() *chronology.Chronology { return m.chron }

// Env returns a fresh evaluation environment bound to this catalog and the
// shared materialization cache. Callers set Now/Wait as needed.
func (m *Manager) Env() *plan.Env {
	return &plan.Env{Chron: m.chron, Cat: m, Mat: m.mat, MatScope: m.scope}
}

// MatStats snapshots the shared materialization cache's counters (the cache
// is process-wide; the counters aggregate across catalogs).
func (m *Manager) MatStats() matcache.Stats { return m.mat.Stats() }

// reload rebuilds the cache from the table (startup, or after external
// writes).
func (m *Manager) reload() error {
	tab, ok := m.db.Table(TableName)
	if !ok {
		return fmt.Errorf("caldb: CALENDARS table missing")
	}
	cache := map[string]*Entry{}
	var decodeErr error
	tab.Scan(func(rid int64, row store.Row) bool {
		e, err := decodeEntry(row)
		if err != nil {
			decodeErr = fmt.Errorf("caldb: CALENDARS row %d: %w", rid, err)
			return false
		}
		cache[strings.ToLower(e.Name)] = e
		return true
	})
	if decodeErr != nil {
		return decodeErr
	}
	gen := m.bump()
	for _, e := range cache {
		e.Version = gen
	}
	m.mu.Lock()
	m.cache = cache
	m.mu.Unlock()
	return nil
}

func decodeEntry(row store.Row) (*Entry, error) {
	if len(row) < len(catalogCols) {
		return nil, fmt.Errorf("row has %d columns, want at least %d", len(row), len(catalogCols))
	}
	e := &Entry{
		Name:       row[0].S,
		Derivation: row[1].S,
		EvalPlan:   row[2].S,
		Lifespan:   Lifespan{Lo: row[3].Iv.Lo, Hi: row[3].Iv.Hi},
		Values:     row[5].Cal,
	}
	if strings.TrimSpace(e.Name) == "" {
		return nil, fmt.Errorf("entry has an empty name")
	}
	g, err := chronology.ParseGranularity(row[4].S)
	if err != nil {
		return nil, fmt.Errorf("entry %q: bad granularity: %w", e.Name, err)
	}
	e.Gran = g
	if e.Derivation != "" {
		s, err := callang.ParseDerivation(e.Derivation)
		if err != nil {
			return nil, fmt.Errorf("entry %q: bad derivation script: %w", e.Name, err)
		}
		e.script = s
	}
	// Rows written before the vet_warnings column existed are one value
	// short; treat them as warning-free.
	if len(row) > 6 && row[6].S != "" {
		e.Warnings = strings.Split(row[6].S, "\n")
	}
	return e, nil
}

// checkName rejects empty names and names that shadow basic calendars.
func checkName(name string) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("caldb: empty calendar name")
	}
	if _, err := chronology.ParseGranularity(name); err == nil {
		return fmt.Errorf("caldb: %q shadows a basic calendar", name)
	}
	if strings.EqualFold(name, "today") {
		return fmt.Errorf("caldb: %q is a reserved name", name)
	}
	return nil
}

// DefineDerived records a derived calendar: its derivation script is parsed,
// its granularity inferred (or overridden when gran is valid), and its
// evaluation plan compiled over the lifespan and stored in the catalog, as
// in Figure 1.
func (m *Manager) DefineDerived(name, derivation string, lifespan Lifespan, gran chronology.Granularity) error {
	if err := checkName(name); err != nil {
		return err
	}
	if m.exists(name) {
		return fmt.Errorf("caldb: calendar %q already defined", name)
	}
	script, err := callang.ParseDerivation(derivation)
	if err != nil {
		return err
	}
	if gran == GranAuto {
		gran = m.inferGran(script)
	} else if !gran.Valid() {
		return fmt.Errorf("caldb: invalid granularity %v", gran)
	}
	if lifespan.Lo == 0 || lifespan.Hi == 0 || lifespan.Lo > lifespan.Hi {
		return fmt.Errorf("caldb: invalid lifespan %v", lifespan)
	}

	// Static analysis before any plan work: undefined references, cycles and
	// no-zero violations reject the definition with positioned diagnostics;
	// warnings are recorded in the catalog row.
	diags := calvet.AnalyzeScript(script, m, calvet.Options{SelfName: name, Chron: m.chron})
	if diags.HasErrors() {
		return fmt.Errorf("caldb: %q does not vet:\n%s", name, diags.Errors())
	}
	warnings := diagLines(diags.Warnings())

	// Compile the eval-plan column for the catalog. Single-expression
	// derivations compile to a plan; multi-statement scripts store a
	// per-statement rendering.
	planText, err := m.renderPlan(script, lifespan)
	if err != nil {
		return fmt.Errorf("caldb: %q does not compile: %w", name, err)
	}

	entry := &Entry{
		Name: name, Derivation: script.String(), EvalPlan: planText,
		Lifespan: lifespan, Gran: gran, script: script, Warnings: warnings,
	}
	return m.insert(entry)
}

// diagLines renders diagnostics one per line for catalog storage.
func diagLines(ds calvet.Diags) []string {
	if len(ds) == 0 {
		return nil
	}
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

// Vet statically analyzes a derivation source as if it were being defined
// under name (which may be empty for anonymous expressions), without
// touching the catalog. Parse failures surface as diagnostics.
func (m *Manager) Vet(name, derivation string) calvet.Diags {
	return calvet.ParseAndAnalyze(derivation, m, calvet.Options{SelfName: name, Chron: m.chron})
}

// VetDefined re-runs the static analyzer over an already-defined calendar's
// derivation script.
func (m *Manager) VetDefined(name string) (calvet.Diags, error) {
	e, ok := m.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("caldb: no calendar %q", name)
	}
	if e.script == nil {
		return nil, nil // stored-values calendars have nothing to vet
	}
	return calvet.AnalyzeScript(e.script, m, calvet.Options{SelfName: e.Name, Chron: m.chron}), nil
}

// DefineStored records a calendar with explicit values (e.g. HOLIDAYS).
func (m *Manager) DefineStored(name string, values *calendar.Calendar, lifespan Lifespan) error {
	if err := checkName(name); err != nil {
		return err
	}
	if m.exists(name) {
		return fmt.Errorf("caldb: calendar %q already defined", name)
	}
	if values == nil {
		return fmt.Errorf("caldb: stored calendar %q needs values", name)
	}
	if lifespan.Lo == 0 || lifespan.Hi == 0 || lifespan.Lo > lifespan.Hi {
		return fmt.Errorf("caldb: invalid lifespan %v", lifespan)
	}
	entry := &Entry{
		Name: name, EvalPlan: "LOAD " + name,
		Lifespan: lifespan, Gran: values.Granularity(), Values: values,
	}
	return m.insert(entry)
}

// ReplaceStored updates the values of a stored calendar (holiday lists
// change year to year).
func (m *Manager) ReplaceStored(name string, values *calendar.Calendar) error {
	m.mu.RLock()
	e, ok := m.cache[strings.ToLower(name)]
	m.mu.RUnlock()
	if !ok || e.Values == nil {
		return fmt.Errorf("caldb: no stored calendar %q", name)
	}
	// Re-vet every derived calendar that references the replaced one against
	// its post-replacement granularity: new errors reject the replacement
	// before it lands, new warnings refresh the dependents' catalog rows.
	revetted, err := m.revetDependents(e.Name, values.Granularity())
	if err != nil {
		return err
	}
	tab, _ := m.db.Table(TableName)
	rids, err := tab.LookupEq("name", store.NewText(e.Name))
	if err != nil || len(rids) == 0 {
		return fmt.Errorf("caldb: catalog row for %q missing", name)
	}
	row, _ := tab.Get(rids[0])
	newRow := row.Clone()
	newRow[5] = store.NewCalendar(values)
	newRow[4] = store.NewText(values.Granularity().String())
	if err := m.db.RunTxn(func(tx *store.Txn) error {
		return tx.Replace(TableName, rids[0], newRow)
	}); err != nil {
		return err
	}
	gen := m.bump()
	m.mu.Lock()
	upd := *e
	upd.Values = values
	upd.Gran = values.Granularity()
	upd.Version = gen
	m.cache[strings.ToLower(name)] = &upd
	m.mu.Unlock()
	for dep, warnings := range revetted {
		m.refreshWarnings(dep, warnings, gen)
	}
	m.notifyChanged()
	return nil
}

// granOverride resolves one calendar name to a hypothetical granularity,
// deferring everything else to the Manager; ReplaceStored uses it to vet
// dependents against the replacement before committing it.
type granOverride struct {
	*Manager
	name string
	g    chronology.Granularity
}

func (o granOverride) ElemKindOf(name string) (chronology.Granularity, bool) {
	if strings.EqualFold(name, o.name) {
		return o.g, true
	}
	return o.Manager.ElemKindOf(name)
}

// revetDependents vets every derived calendar referencing name as if name
// had granularity g, returning each dependent's fresh warning set, or an
// error if any dependent stops vetting clean.
func (m *Manager) revetDependents(name string, g chronology.Granularity) (map[string][]string, error) {
	m.mu.RLock()
	var deps []*Entry
	for _, e := range m.cache {
		if e.script == nil {
			continue
		}
		for ref := range callang.AnalyzeScript(e.script, m).Refs {
			if strings.EqualFold(ref, name) {
				deps = append(deps, e)
				break
			}
		}
	}
	m.mu.RUnlock()
	if len(deps) == 0 {
		return nil, nil
	}
	cat := granOverride{Manager: m, name: name, g: g}
	out := map[string][]string{}
	for _, dep := range deps {
		diags := calvet.AnalyzeScript(dep.script, cat, calvet.Options{SelfName: dep.Name, Chron: m.chron})
		if diags.HasErrors() {
			return nil, fmt.Errorf("caldb: replacing %q breaks %q:\n%s", name, dep.Name, diags.Errors())
		}
		out[dep.Name] = diagLines(diags.Warnings())
	}
	return out, nil
}

// refreshWarnings rewrites a calendar's stored warning list in cache and
// catalog row.
func (m *Manager) refreshWarnings(name string, warnings []string, gen uint64) {
	m.mu.Lock()
	e, ok := m.cache[strings.ToLower(name)]
	if ok {
		upd := *e
		upd.Warnings = warnings
		upd.Version = gen
		m.cache[strings.ToLower(name)] = &upd
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	tab, _ := m.db.Table(TableName)
	rids, err := tab.LookupEq("name", store.NewText(e.Name))
	if err != nil || len(rids) == 0 {
		return
	}
	row, ok := tab.Get(rids[0])
	if !ok || len(row) <= 6 {
		return
	}
	newRow := row.Clone()
	newRow[6] = store.NewText(strings.Join(warnings, "\n"))
	_ = m.db.RunTxn(func(tx *store.Txn) error {
		return tx.Replace(TableName, rids[0], newRow)
	})
}

// Drop removes a calendar definition.
func (m *Manager) Drop(name string) error {
	m.mu.Lock()
	key := strings.ToLower(name)
	e, ok := m.cache[key]
	if ok {
		delete(m.cache, key)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("caldb: no calendar %q", name)
	}
	m.bump()
	tab, _ := m.db.Table(TableName)
	rids, err := tab.LookupEq("name", store.NewText(e.Name))
	if err != nil {
		return err
	}
	if err := m.db.RunTxn(func(tx *store.Txn) error {
		for _, rid := range rids {
			if err := tx.Delete(TableName, rid); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	m.notifyChanged()
	return nil
}

// Lookup returns a calendar's catalog entry.
func (m *Manager) Lookup(name string) (*Entry, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.cache[strings.ToLower(name)]
	return e, ok
}

// Names lists defined calendars (excluding basic ones).
func (m *Manager) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.cache))
	for _, e := range m.cache {
		out = append(out, e.Name)
	}
	return out
}

func (m *Manager) exists(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.cache[strings.ToLower(name)]
	return ok
}

func (m *Manager) insert(e *Entry) error {
	e.Version = m.bump()
	values := store.Value{T: store.TCalendar}
	if e.Values != nil {
		values = store.NewCalendar(e.Values)
	}
	row := store.Row{
		store.NewText(e.Name),
		store.NewText(e.Derivation),
		store.NewText(e.EvalPlan),
		store.NewInterval(interval.Interval{Lo: e.Lifespan.Lo, Hi: e.Lifespan.Hi}),
		store.NewText(e.Gran.String()),
		values,
		store.NewText(strings.Join(e.Warnings, "\n")),
	}
	if err := m.db.RunTxn(func(tx *store.Txn) error {
		_, err := tx.Append(TableName, row)
		return err
	}); err != nil {
		return err
	}
	m.mu.Lock()
	m.cache[strings.ToLower(e.Name)] = e
	m.mu.Unlock()
	m.notifyChanged()
	return nil
}

// inferGran picks a calendar's element kind from its derivation: for a
// single-expression script, the expression's kind; otherwise the script's
// tick granularity.
func (m *Manager) inferGran(script *callang.Script) chronology.Granularity {
	if e, ok := script.SingleExpr(); ok {
		if g, ok := callang.ElemKind(e, m); ok {
			return g
		}
	}
	return callang.AnalyzeScript(script, m).TickGran
}

// renderPlan compiles a derivation for the eval-plan catalog column.
func (m *Manager) renderPlan(script *callang.Script, lifespan Lifespan) (string, error) {
	env := m.Env()
	if e, ok := script.SingleExpr(); ok {
		prepped, gran, err := plan.Prepare(env, e, nil)
		if err != nil {
			return "", err
		}
		win := convertLifespan(m.chron, lifespan, gran)
		p, err := plan.Compile(env, prepped, nil, gran, win)
		if err != nil {
			return "", err
		}
		return p.String(), nil
	}
	// Multi-statement script: validate it references resolvable calendars by
	// compiling each assignable expression lazily at run time; the catalog
	// stores the script rendering.
	return "SCRIPT " + script.String(), nil
}

func convertLifespan(ch *chronology.Chronology, l Lifespan, gran chronology.Granularity) interval.Interval {
	lo := ch.TickAt(gran, ch.UnitStart(chronology.Day, l.Lo))
	hi := ch.TickAt(gran, ch.UnitEndExcl(chronology.Day, l.Hi)-1)
	return interval.Interval{Lo: lo, Hi: hi}
}

// --- plan.Catalog ------------------------------------------------------

// DerivationOf implements plan.Catalog.
func (m *Manager) DerivationOf(name string) (*callang.Script, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.cache[strings.ToLower(name)]
	if !ok || e.script == nil {
		return nil, false
	}
	return e.script, true
}

// ElemKindOf implements plan.Catalog.
func (m *Manager) ElemKindOf(name string) (chronology.Granularity, bool) {
	if g, err := chronology.ParseGranularity(name); err == nil {
		return g, true
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.cache[strings.ToLower(name)]
	if !ok {
		return 0, false
	}
	return e.Gran, true
}

// LifespanOf implements plan.LifespanCatalog: the lifespan column of
// Figure 1, in day ticks.
func (m *Manager) LifespanOf(name string) (lo, hi chronology.Tick, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, found := m.cache[strings.ToLower(name)]
	if !found {
		return 0, 0, false
	}
	return e.Lifespan.Lo, e.Lifespan.Hi, true
}

// StoredCalendar implements plan.Catalog.
func (m *Manager) StoredCalendar(name string) (*calendar.Calendar, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.cache[strings.ToLower(name)]
	if !ok || e.Values == nil {
		return nil, false
	}
	return e.Values, true
}

// VolatileOf implements plan.VolatilityCatalog: whether the named calendar's
// value can change between evaluations at one catalog generation, because
// its derivation — directly or through referenced calendars — reads `today`
// or waits on the clock. Volatile calendars are never served from the shared
// materialization cache. Results are memoized per catalog generation.
func (m *Manager) VolatileOf(name string) bool {
	key := strings.ToLower(name)
	gen := m.gen.Load()
	m.mu.Lock()
	if m.volGen != gen {
		m.volatile = map[string]bool{}
		m.volGen = gen
	} else if v, ok := m.volatile[key]; ok {
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()
	v := m.computeVolatile(key, map[string]bool{})
	m.mu.Lock()
	if m.volGen == gen {
		m.volatile[key] = v
	}
	m.mu.Unlock()
	return v
}

// computeVolatile walks a calendar's derivation graph; visiting guards
// against reference cycles (which evaluation rejects separately).
func (m *Manager) computeVolatile(key string, visiting map[string]bool) bool {
	if key == "today" {
		return true
	}
	if visiting[key] {
		return false
	}
	visiting[key] = true
	e, ok := m.Lookup(key)
	if !ok || e.script == nil {
		return false
	}
	if scriptWaits(e.script) {
		return true
	}
	for ref := range callang.AnalyzeScript(e.script, m).Refs {
		lower := strings.ToLower(ref)
		if lower == "today" {
			return true
		}
		if _, err := chronology.ParseGranularity(ref); err == nil {
			continue
		}
		if m.computeVolatile(lower, visiting) {
			return true
		}
	}
	return false
}

// scriptWaits reports whether a script contains an empty-bodied while loop
// (the paper's "do nothing" wait), whose result depends on when it runs.
func scriptWaits(s *callang.Script) bool {
	var walk func([]callang.Stmt) bool
	walk = func(ss []callang.Stmt) bool {
		for _, st := range ss {
			switch n := st.(type) {
			case *callang.IfStmt:
				if walk(n.Then) || walk(n.Else) {
					return true
				}
			case *callang.WhileStmt:
				if len(n.Body) == 0 || walk(n.Body) {
					return true
				}
			}
		}
		return false
	}
	return walk(s.Stmts)
}

// exprVolatile reports whether an expression's value can change between
// evaluations at one catalog generation (it reads `today`, directly or via a
// referenced derived calendar).
func (m *Manager) exprVolatile(e callang.Expr) bool {
	for ref := range callang.Analyze(e, m).Refs {
		if strings.EqualFold(ref, "today") || m.VolatileOf(ref) {
			return true
		}
	}
	return false
}

// --- evaluation conveniences -------------------------------------------

// evalCached evaluates an expression, consulting the shared materialization
// cache for the whole expression's result first. Expression results are
// cached under their exact window only (derived windows have boundary
// effects, so slicing a superset is unsound) and keyed by the catalog
// generation, so any Define/Replace/Drop invalidates them. Volatile
// expressions (reading `today`) and environments with any optimization
// ablated bypass the cache so results and benchmarks stay honest.
func (m *Manager) evalCached(env *plan.Env, e callang.Expr, from, to chronology.Civil) (*calendar.Calendar, error) {
	if env.Mat == nil || env.DisableSharing || env.DisableFactorization ||
		env.DisableWindowInference || env.DisablePeriodic || m.exprVolatile(e) {
		return plan.Evaluate(env, e, from, to)
	}
	prepped, gran, err := plan.Prepare(env, e, nil)
	if err != nil {
		return nil, err
	}
	win, err := plan.CivilWindow(env.Chron, gran, from, to)
	if err != nil {
		return nil, err
	}
	key := matcache.Key{
		Scope:   env.MatScope,
		ID:      "E|" + e.String(),
		Version: m.gen.Load(),
		Gran:    gran,
	}
	if c, ok := env.Mat.Get(key, win); ok {
		return c, nil
	}
	// Fly the whole-expression materialization: when a tenant Replace bumps
	// the generation, every concurrent client of a popular expression misses
	// at once, and without coalescing each would compile and execute the
	// same plan (the classic cache stampede). Expression flights sit at the
	// top of the materialization hierarchy — their leaders may wait on
	// derived- or generate-level flights, never on other expression flights
	// — so the wait graph stays acyclic.
	return env.Mat.Do(key, win, func() (*calendar.Calendar, bool, error) {
		p, err := plan.Compile(env, prepped, nil, gran, win)
		if err != nil {
			return nil, false, err
		}
		c, err := p.Exec(env, nil)
		return c, false, err
	})
}

// EvalExpr parses and evaluates a calendar expression over a civil window.
func (m *Manager) EvalExpr(src string, from, to chronology.Civil) (*calendar.Calendar, error) {
	e, err := callang.ParseExpr(src)
	if err != nil {
		return nil, err
	}
	return m.evalCached(m.Env(), e, from, to)
}

// EvalExprEnv is EvalExpr with a caller-supplied environment (clock, wait
// hook, optimization toggles).
func (m *Manager) EvalExprEnv(env *plan.Env, src string, from, to chronology.Civil) (*calendar.Calendar, error) {
	e, err := callang.ParseExpr(src)
	if err != nil {
		return nil, err
	}
	return m.evalCached(env, e, from, to)
}

// RunScript parses and runs a calendar script over a civil window.
func (m *Manager) RunScript(src string, from, to chronology.Civil) (plan.Value, error) {
	s, err := callang.ParseScript(src)
	if err != nil {
		return plan.Value{}, err
	}
	return plan.RunScript(m.Env(), s, from, to)
}

// FigureRow renders a calendar's catalog tuple in the layout of Figure 1.
func (m *Manager) FigureRow(name string) (string, error) {
	e, ok := m.Lookup(name)
	if !ok {
		return "", fmt.Errorf("caldb: no calendar %q", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Name              | %s\n", e.Name)
	fmt.Fprintf(&b, "Derivation-Script | %s\n", e.Derivation)
	fmt.Fprintf(&b, "Eval-Plan         | %s\n", strings.ReplaceAll(e.EvalPlan, "\n", " ; "))
	fmt.Fprintf(&b, "Lifespan          | %s\n", e.Lifespan)
	fmt.Fprintf(&b, "Granularity       | %s\n", e.Gran)
	if e.Values != nil {
		fmt.Fprintf(&b, "Values            | %s\n", e.Values)
	} else {
		fmt.Fprintf(&b, "Values            |\n")
	}
	for _, w := range e.Warnings {
		fmt.Fprintf(&b, "Vet-Warnings      | %s\n", w)
	}
	return b.String(), nil
}
