// Package chronology implements the calendrical substrate of the calendar
// system: proleptic Gregorian civil-date arithmetic, the basic granularities
// (SECONDS through CENTURY) of Chandra/Segev/Stonebraker (ICDE 1994), and the
// paper's "no-zero" tick convention, under which an interval never contains
// tick 0 — the tick preceding 1 is -1.
//
// All calendrical math is implemented from first principles (no dependence on
// package time), because the calendar system must be able to host non-civil
// conventions such as the 30/360 bond calendar alongside the Gregorian one.
package chronology

import (
	"fmt"
	"strings"
)

// Granularity identifies one of the basic calendars of the paper (§3.2):
// SECONDS, MINUTES, HOURS, DAYS, WEEKS, MONTHS, YEARS, DECADES and CENTURY.
type Granularity int

// The basic granularities, ordered from finest to coarsest.
const (
	Second Granularity = iota
	Minute
	Hour
	Day
	Week
	Month
	Year
	Decade
	Century
	numGranularities
)

var granNames = [...]string{
	Second:  "SECONDS",
	Minute:  "MINUTES",
	Hour:    "HOURS",
	Day:     "DAYS",
	Week:    "WEEKS",
	Month:   "MONTHS",
	Year:    "YEARS",
	Decade:  "DECADES",
	Century: "CENTURY",
}

// String returns the paper's upper-case name for the granularity.
func (g Granularity) String() string {
	if g < 0 || g >= numGranularities {
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
	return granNames[g]
}

// Valid reports whether g names one of the basic granularities.
func (g Granularity) Valid() bool { return g >= 0 && g < numGranularities }

// Finer reports whether g is strictly finer than h (e.g. Day is finer than
// Month). Week and Month are not comparable by containment, but the paper
// orders granularities linearly by span, which we follow.
func (g Granularity) Finer(h Granularity) bool { return g < h }

// Coarser reports whether g is strictly coarser than h.
func (g Granularity) Coarser(h Granularity) bool { return g > h }

// Granularities returns all basic granularities from finest to coarsest.
func Granularities() []Granularity {
	gs := make([]Granularity, 0, numGranularities)
	for g := Granularity(0); g < numGranularities; g++ {
		gs = append(gs, g)
	}
	return gs
}

// ParseGranularity resolves a (case-insensitive) basic-calendar name, with or
// without a trailing S, to a Granularity.
func ParseGranularity(name string) (Granularity, error) {
	n := strings.ToUpper(strings.TrimSpace(name))
	for g, s := range granNames {
		if n == s || n+"S" == s || n == s+"S" {
			return Granularity(g), nil
		}
	}
	// Common singular aliases.
	switch n {
	case "SEC", "SECS":
		return Second, nil
	case "MIN", "MINS":
		return Minute, nil
	case "HR", "HRS":
		return Hour, nil
	case "CENTURIES":
		return Century, nil
	}
	return 0, fmt.Errorf("chronology: unknown granularity %q", name)
}
