package chronology

import (
	"testing"
	"testing/quick"
)

func chron1987(t testing.TB) *Chronology {
	t.Helper()
	c, err := New(DefaultEpoch)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func chron1993(t testing.TB) *Chronology {
	t.Helper()
	return MustNew(Civil{Year: 1993, Month: 1, Day: 1})
}

func TestTickConvention(t *testing.T) {
	if TickFromOffset(0) != 1 || TickFromOffset(-1) != -1 || TickFromOffset(5) != 6 {
		t.Error("TickFromOffset wrong")
	}
	if OffsetFromTick(1) != 0 || OffsetFromTick(-1) != -1 || OffsetFromTick(6) != 5 {
		t.Error("OffsetFromTick wrong")
	}
	if NextTick(-1) != 1 || NextTick(1) != 2 || NextTick(-3) != -2 {
		t.Error("NextTick wrong")
	}
	if PrevTick(1) != -1 || PrevTick(2) != 1 || PrevTick(-1) != -2 {
		t.Error("PrevTick wrong")
	}
	if AddTicks(-1, 1) != 1 || AddTicks(1, -1) != -1 || AddTicks(3, 4) != 7 {
		t.Error("AddTicks wrong")
	}
	if TickDiff(-1, 1) != 1 || TickDiff(1, 3) != 2 {
		t.Error("TickDiff wrong")
	}
	if err := CheckTick(0); err == nil {
		t.Error("CheckTick(0) should fail")
	}
	if err := CheckTick(1); err != nil {
		t.Error("CheckTick(1) should pass")
	}
}

func TestTickZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("OffsetFromTick(0) should panic")
		}
	}()
	OffsetFromTick(0)
}

func TestTickRoundTripProperty(t *testing.T) {
	f := func(off int32) bool {
		return OffsetFromTick(TickFromOffset(int64(off))) == int64(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The paper (§3.1): with days counted from Jan 1 1993, the WEEKS calendar is
// {(-4,3),(4,10),(11,17),...} because Jan 1 1993 is a Friday and weeks run
// Monday-Sunday.
func TestPaperWeeks1993(t *testing.T) {
	c := chron1993(t)
	want := [][2]Tick{{-4, 3}, {4, 10}, {11, 17}, {18, 24}, {25, 31}, {32, 38}, {39, 45}}
	for i, w := range want {
		lo, hi := c.UnitSpanIn(Week, Tick(i+1), Day)
		if lo != w[0] || hi != w[1] {
			t.Errorf("week %d spans days (%d,%d), want (%d,%d)", i+1, lo, hi, w[0], w[1])
		}
	}
}

// The paper (§3.1): the months of 1993 in day ticks are
// {(1,31),(32,59),(60,90),(91,120),...}.
func TestPaperMonths1993(t *testing.T) {
	c := chron1993(t)
	want := [][2]Tick{{1, 31}, {32, 59}, {60, 90}, {91, 120}, {121, 151}, {152, 181}}
	for i, w := range want {
		lo, hi := c.UnitSpanIn(Month, Tick(i+1), Day)
		if lo != w[0] || hi != w[1] {
			t.Errorf("month %d spans days (%d,%d), want (%d,%d)", i+1, lo, hi, w[0], w[1])
		}
	}
}

// The paper (§3.2): generate(YEARS, DAYS, [Jan 1 1987, Jan 3 1992]) begins
// {(1,365),(366,731),(732,1096),(1097,1461),(1462,1826),...}; the chronology
// supplies the underlying year spans.
func TestPaperYearSpans1987(t *testing.T) {
	c := chron1987(t)
	want := [][2]Tick{{1, 365}, {366, 731}, {732, 1096}, {1097, 1461}, {1462, 1826}, {1827, 2192}}
	for i, w := range want {
		lo, hi := c.UnitSpanIn(Year, Tick(i+1), Day)
		if lo != w[0] || hi != w[1] {
			t.Errorf("year %d spans days (%d,%d), want (%d,%d)", i+1, lo, hi, w[0], w[1])
		}
	}
}

func TestUnitStartEnd(t *testing.T) {
	c := chron1987(t)
	if s := c.UnitStart(Day, 1); s != 0 {
		t.Errorf("UnitStart(Day,1) = %d", s)
	}
	if e := c.UnitEndExcl(Day, 1); e != SecondsPerDay {
		t.Errorf("UnitEndExcl(Day,1) = %d", e)
	}
	if s := c.UnitStart(Day, -1); s != -SecondsPerDay {
		t.Errorf("UnitStart(Day,-1) = %d", s)
	}
	if e := c.UnitEndExcl(Day, -1); e != 0 {
		t.Errorf("UnitEndExcl(Day,-1) = %d", e)
	}
	if s := c.UnitStart(Hour, 1); s != 0 {
		t.Errorf("UnitStart(Hour,1) = %d", s)
	}
	if s := c.UnitStart(Hour, 25); s != 24*3600 {
		t.Errorf("UnitStart(Hour,25) = %d", s)
	}
	// 1987 is in the 1980s decade and the 1900s century.
	if d := c.CivilOf(c.UnitStart(Decade, 1)); d != (Civil{1980, 1, 1}) {
		t.Errorf("decade 1 starts %v", d)
	}
	if d := c.CivilOf(c.UnitStart(Century, 1)); d != (Civil{1900, 1, 1}) {
		t.Errorf("century 1 starts %v", d)
	}
}

func TestTickAtGranularities(t *testing.T) {
	c := chron1987(t)
	// Midnight of the epoch is second 0 => tick 1 at every granularity.
	for _, g := range Granularities() {
		if got := c.TickAt(g, 0); got != 1 {
			t.Errorf("TickAt(%v, 0) = %d, want 1", g, got)
		}
	}
	// One second before the epoch is tick -1 for fine granularities.
	for _, g := range []Granularity{Second, Minute, Hour, Day} {
		if got := c.TickAt(g, -1); got != -1 {
			t.Errorf("TickAt(%v, -1) = %d, want -1", g, got)
		}
	}
	// Jan 1 1987 is a Thursday, so second -1 (Dec 31 1986, a Wednesday) is in
	// the same Monday-aligned week, tick 1.
	if got := c.TickAt(Week, -1); got != 1 {
		t.Errorf("TickAt(Week, -1) = %d, want 1", got)
	}
	// Dec 31 1986 is month tick -1, year tick -1, decade tick 1 (1980s).
	if got := c.TickAt(Month, -1); got != -1 {
		t.Errorf("TickAt(Month,-1) = %d, want -1", got)
	}
	if got := c.TickAt(Year, -1); got != -1 {
		t.Errorf("TickAt(Year,-1) = %d, want -1", got)
	}
	if got := c.TickAt(Decade, -1); got != 1 {
		t.Errorf("TickAt(Decade,-1) = %d, want 1", got)
	}
}

func TestUnitRoundTripProperty(t *testing.T) {
	c := chron1987(t)
	for _, g := range Granularities() {
		g := g
		f := func(off int16) bool {
			tick := TickFromOffset(int64(off))
			start := c.UnitStart(g, tick)
			endExcl := c.UnitEndExcl(g, tick)
			if endExcl <= start {
				return false
			}
			// Every second in the unit maps back to the unit's tick.
			return c.TickAt(g, start) == tick && c.TickAt(g, endExcl-1) == tick &&
				c.TickAt(g, endExcl) == NextTick(tick)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", g, err)
		}
	}
}

func TestDayTickCivil(t *testing.T) {
	c := chron1987(t)
	if got := c.DayTick(Civil{1987, 1, 1}); got != 1 {
		t.Errorf("DayTick(epoch) = %d", got)
	}
	if got := c.DayTick(Civil{1986, 12, 31}); got != -1 {
		t.Errorf("DayTick(day before epoch) = %d", got)
	}
	if got := c.DayTick(Civil{1992, 1, 3}); got != 1829 {
		t.Errorf("DayTick(Jan 3 1992) = %d, want 1829 (paper §3.2)", got)
	}
	if got := c.CivilOfDayTick(1829); got != (Civil{1992, 1, 3}) {
		t.Errorf("CivilOfDayTick(1829) = %v", got)
	}
	if w := c.WeekdayOfDayTick(1); w != Thursday {
		t.Errorf("epoch weekday = %v, want Thursday", w)
	}
}

func TestYearTick(t *testing.T) {
	c := chron1987(t)
	if got := c.YearTick(1987); got != 1 {
		t.Errorf("YearTick(1987) = %d", got)
	}
	if got := c.YearTick(1993); got != 7 {
		t.Errorf("YearTick(1993) = %d", got)
	}
	if got := c.YearTick(1986); got != -1 {
		t.Errorf("YearTick(1986) = %d", got)
	}
	if got := c.YearOfTick(7); got != 1993 {
		t.Errorf("YearOfTick(7) = %d", got)
	}
}

func TestRebase(t *testing.T) {
	c := chron1987(t)
	// Year 7 (1993) begins in month tick 73 (Jan 1993 is the 73rd month from
	// Jan 1987) and on day tick 2193.
	if got := c.Rebase(Year, 7, Month); got != 73 {
		t.Errorf("Rebase(Year 7 -> Month) = %d, want 73", got)
	}
	if got := c.Rebase(Year, 7, Day); got != 2193 {
		t.Errorf("Rebase(Year 7 -> Day) = %d, want 2193", got)
	}
	if got := c.Rebase(Day, 1, Year); got != 1 {
		t.Errorf("Rebase(Day 1 -> Year) = %d, want 1", got)
	}
}

func TestFormatTick(t *testing.T) {
	c := chron1987(t)
	cases := map[string]string{
		c.FormatTick(Day, 1):    "1987-01-01",
		c.FormatTick(Year, 7):   "1993",
		c.FormatTick(Month, 73): "January 1993",
		c.FormatTick(Hour, 25):  "1987-01-02 00:00:00",
		c.FormatTick(Week, 1):   "week of 1986-12-29",
		c.FormatTick(Decade, 1): "1980s",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("FormatTick = %q, want %q", got, want)
		}
	}
}

func TestNewRejectsInvalidEpoch(t *testing.T) {
	if _, err := New(Civil{1987, 2, 30}); err == nil {
		t.Error("New should reject invalid epoch")
	}
}

func TestEpochSeconds(t *testing.T) {
	c := chron1987(t)
	if s := c.EpochSecondsOf(Civil{1987, 1, 2}); s != SecondsPerDay {
		t.Errorf("EpochSecondsOf(+1d) = %d", s)
	}
	if d := c.CivilOf(-1); d != (Civil{1986, 12, 31}) {
		t.Errorf("CivilOf(-1) = %v", d)
	}
}

// A mid-year, mid-week epoch: the paper assumes Jan 1 but the chronology
// must not.
func TestMidYearEpoch(t *testing.T) {
	c := MustNew(Civil{Year: 1990, Month: 7, Day: 18}) // a Wednesday
	if c.DayTick(Civil{1990, 7, 18}) != 1 {
		t.Error("epoch day tick")
	}
	// Month tick 1 is July 1990, starting June 30 days before the epoch.
	if d := c.CivilOf(c.UnitStart(Month, 1)); d != (Civil{1990, 7, 1}) {
		t.Errorf("month 1 starts %v", d)
	}
	// Year tick 1 is 1990, starting ~198 days before the epoch.
	if d := c.CivilOf(c.UnitStart(Year, 1)); d != (Civil{1990, 1, 1}) {
		t.Errorf("year 1 starts %v", d)
	}
	// The week containing the epoch starts on the preceding Monday.
	if d := c.CivilOf(c.UnitStart(Week, 1)); d != (Civil{1990, 7, 16}) {
		t.Errorf("week 1 starts %v", d)
	}
	// Ticks before the epoch are negative.
	if got := c.DayTick(Civil{1990, 7, 17}); got != -1 {
		t.Errorf("day before epoch = %d", got)
	}
	if got := c.TickAt(Month, c.EpochSecondsOf(Civil{1990, 6, 30})); got != -1 {
		t.Errorf("June 1990 month tick = %d", got)
	}
	// Round trips still hold at every granularity.
	for _, g := range Granularities() {
		for _, tick := range []Tick{-5, -1, 1, 2, 9} {
			start := c.UnitStart(g, tick)
			if got := c.TickAt(g, start); got != tick {
				t.Errorf("%v tick %d round trip = %d", g, tick, got)
			}
		}
	}
}
