package chronology

import (
	"fmt"
	"strconv"
	"strings"
)

// Civil is a proleptic Gregorian calendar date.
type Civil struct {
	Year  int // astronomical year numbering (1 BCE is year 0)
	Month int // 1..12
	Day   int // 1..daysInMonth
}

// Weekday numbers days of the week following the paper's convention:
// Monday is 1 and Sunday is 7 ("Note that Monday is taken to be 1 and
// Sunday as 7").
type Weekday int

// Days of the week, Monday-first per the paper.
const (
	Monday Weekday = 1 + iota
	Tuesday
	Wednesday
	Thursday
	Friday
	Saturday
	Sunday
)

var weekdayNames = [...]string{"", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}

// String returns the English weekday name.
func (w Weekday) String() string {
	if w < Monday || w > Sunday {
		return fmt.Sprintf("Weekday(%d)", int(w))
	}
	return weekdayNames[w]
}

var monthNames = [...]string{"", "January", "February", "March", "April", "May", "June",
	"July", "August", "September", "October", "November", "December"}

// MonthName returns the English name of month m (1..12).
func MonthName(m int) string {
	if m < 1 || m > 12 {
		return fmt.Sprintf("Month(%d)", m)
	}
	return monthNames[m]
}

// IsLeap reports whether the Gregorian year y is a leap year.
func IsLeap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

var monthDays = [...]int{0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

// DaysInMonth returns the number of days in month m of year y.
func DaysInMonth(y, m int) int {
	if m == 2 && IsLeap(y) {
		return 29
	}
	if m < 1 || m > 12 {
		return 0
	}
	return monthDays[m]
}

// DaysInYear returns 365 or 366.
func DaysInYear(y int) int {
	if IsLeap(y) {
		return 366
	}
	return 365
}

// Valid reports whether c is a real calendar date.
func (c Civil) Valid() bool {
	return c.Month >= 1 && c.Month <= 12 && c.Day >= 1 && c.Day <= DaysInMonth(c.Year, c.Month)
}

// String formats the date as YYYY-MM-DD.
func (c Civil) String() string {
	return fmt.Sprintf("%04d-%02d-%02d", c.Year, c.Month, c.Day)
}

// Rata returns the number of days from the civil epoch 1970-01-01 to c
// (negative before it). This is Howard Hinnant's days_from_civil algorithm,
// valid over the full proleptic Gregorian calendar.
func (c Civil) Rata() int64 {
	y := int64(c.Year)
	m := int64(c.Month)
	d := int64(c.Day)
	if m <= 2 {
		y--
	}
	var era int64
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1            // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468       // shift so 1970-01-01 is 0
}

// CivilFromRata inverts Rata: it returns the civil date of the given day
// number relative to 1970-01-01.
func CivilFromRata(z int64) Civil {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d := doy - (153*mp+2)/5 + 1              // [1, 31]
	var m int64
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return Civil{Year: int(y), Month: int(m), Day: int(d)}
}

// WeekdayOfRata returns the weekday of the given rata day. 1970-01-01 was a
// Thursday.
func WeekdayOfRata(z int64) Weekday {
	// 1970-01-01 (rata 0) is Thursday (= 4 in Monday-first numbering).
	w := floorMod(z+3, 7) + 1 // rata -3 (1969-12-29) is Monday
	return Weekday(w)
}

// Weekday returns the weekday of c.
func (c Civil) Weekday() Weekday { return WeekdayOfRata(c.Rata()) }

// AddDays returns the civil date n days after c (n may be negative).
func (c Civil) AddDays(n int64) Civil { return CivilFromRata(c.Rata() + n) }

// Before reports whether c is strictly earlier than d.
func (c Civil) Before(d Civil) bool {
	if c.Year != d.Year {
		return c.Year < d.Year
	}
	if c.Month != d.Month {
		return c.Month < d.Month
	}
	return c.Day < d.Day
}

// ParseCivil parses a date in either ISO form "2006-01-02" or the paper's
// prose form "Jan 2, 2006" / "January 2, 2006".
func ParseCivil(s string) (Civil, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Civil{}, fmt.Errorf("chronology: empty date")
	}
	if c, ok := parseISO(s); ok {
		return c, nil
	}
	if c, ok := parseProse(s); ok {
		return c, nil
	}
	return Civil{}, fmt.Errorf("chronology: cannot parse date %q", s)
}

func parseISO(s string) (Civil, bool) {
	parts := strings.Split(s, "-")
	// Permit a leading minus for negative years: "-0044-03-15".
	neg := false
	if len(parts) > 0 && parts[0] == "" {
		neg = true
		parts = parts[1:]
	}
	if len(parts) != 3 {
		return Civil{}, false
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return Civil{}, false
	}
	if neg {
		y = -y
	}
	c := Civil{Year: y, Month: m, Day: d}
	if !c.Valid() {
		return Civil{}, false
	}
	return c, true
}

func parseProse(s string) (Civil, bool) {
	// "Jan 2, 2006", "January 2 2006"
	s = strings.ReplaceAll(s, ",", " ")
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return Civil{}, false
	}
	m := monthFromName(fields[0])
	if m == 0 {
		return Civil{}, false
	}
	d, err1 := strconv.Atoi(fields[1])
	y, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil {
		return Civil{}, false
	}
	c := Civil{Year: y, Month: m, Day: d}
	if !c.Valid() {
		return Civil{}, false
	}
	return c, true
}

func monthFromName(name string) int {
	n := strings.ToLower(name)
	for m := 1; m <= 12; m++ {
		full := strings.ToLower(monthNames[m])
		if n == full || (len(n) >= 3 && strings.HasPrefix(full, n)) {
			return m
		}
	}
	return 0
}

// floorDiv returns the floor of a/b for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// floorMod returns a mod b with the sign of b, for b > 0.
func floorMod(a, b int64) int64 {
	m := a % b
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}
