package chronology

import "fmt"

// A Tick is a signed unit count under the paper's no-zero convention: valid
// ticks are ..., -2, -1, 1, 2, ... and 0 never occurs. Tick 1 of a
// granularity is the unit containing the system start date; the unit before
// it is tick -1.
//
// "Since this is unintuitive, we adopt the convention that an interval will
// never contain 0." (§3.1)
type Tick = int64

// TickFromOffset converts a zero-based signed unit offset from the epoch unit
// into a no-zero tick: offset 0 is tick 1, offset -1 is tick -1.
func TickFromOffset(off int64) Tick {
	if off >= 0 {
		return off + 1
	}
	return off
}

// OffsetFromTick inverts TickFromOffset. It panics on tick 0, which is
// unrepresentable; callers validating external input should use CheckTick
// first.
func OffsetFromTick(t Tick) int64 {
	if t == 0 {
		panic("chronology: tick 0 is not a valid tick (no-zero convention)")
	}
	if t > 0 {
		return t - 1
	}
	return t
}

// CheckTick returns an error if t is not a valid no-zero tick.
func CheckTick(t Tick) error {
	if t == 0 {
		return fmt.Errorf("chronology: tick 0 violates the no-zero convention")
	}
	return nil
}

// NextTick returns the tick after t, skipping 0.
func NextTick(t Tick) Tick {
	if t == -1 {
		return 1
	}
	return t + 1
}

// PrevTick returns the tick before t, skipping 0.
func PrevTick(t Tick) Tick {
	if t == 1 {
		return -1
	}
	return t - 1
}

// AddTicks advances t by n units, skipping 0 (n may be negative).
func AddTicks(t Tick, n int64) Tick {
	return TickFromOffset(OffsetFromTick(t) + n)
}

// TickDiff returns the number of units from a to b (b - a in offset space).
func TickDiff(a, b Tick) int64 {
	return OffsetFromTick(b) - OffsetFromTick(a)
}
