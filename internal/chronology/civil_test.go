package chronology

import (
	"testing"
	"testing/quick"
)

func TestRataKnownDates(t *testing.T) {
	cases := []struct {
		c    Civil
		rata int64
	}{
		{Civil{1970, 1, 1}, 0},
		{Civil{1970, 1, 2}, 1},
		{Civil{1969, 12, 31}, -1},
		{Civil{2000, 3, 1}, 11017},
		{Civil{1987, 1, 1}, 6209},
		{Civil{1600, 1, 1}, -135140},
	}
	for _, tc := range cases {
		if got := tc.c.Rata(); got != tc.rata {
			t.Errorf("Rata(%v) = %d, want %d", tc.c, got, tc.rata)
		}
		if got := CivilFromRata(tc.rata); got != tc.c {
			t.Errorf("CivilFromRata(%d) = %v, want %v", tc.rata, got, tc.c)
		}
	}
}

func TestRataRoundTripProperty(t *testing.T) {
	f := func(z int32) bool {
		r := int64(z)
		return CivilFromRata(r).Rata() == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCivilRoundTripProperty(t *testing.T) {
	f := func(yRaw int16, mRaw, dRaw uint8) bool {
		y := int(yRaw)
		m := int(mRaw)%12 + 1
		d := int(dRaw)%DaysInMonth(y, m) + 1
		c := Civil{Year: y, Month: m, Day: d}
		return CivilFromRata(c.Rata()) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRataMonotoneProperty(t *testing.T) {
	f := func(z int32) bool {
		r := int64(z)
		return CivilFromRata(r).Before(CivilFromRata(r + 1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWeekdays(t *testing.T) {
	cases := []struct {
		c Civil
		w Weekday
	}{
		{Civil{1970, 1, 1}, Thursday},
		{Civil{1993, 1, 1}, Friday}, // anchors the paper's WEEKS-1993 example
		{Civil{1987, 1, 1}, Thursday},
		{Civil{1992, 12, 28}, Monday},
		{Civil{2026, 7, 4}, Saturday},
	}
	for _, tc := range cases {
		if got := tc.c.Weekday(); got != tc.w {
			t.Errorf("%v.Weekday() = %v, want %v", tc.c, got, tc.w)
		}
	}
}

func TestIsLeap(t *testing.T) {
	for y, want := range map[int]bool{2000: true, 1900: false, 1988: true, 1993: false, 2024: true, 2100: false} {
		if got := IsLeap(y); got != want {
			t.Errorf("IsLeap(%d) = %v, want %v", y, got, want)
		}
	}
}

func TestDaysInMonth(t *testing.T) {
	if got := DaysInMonth(1988, 2); got != 29 {
		t.Errorf("DaysInMonth(1988,2) = %d, want 29", got)
	}
	if got := DaysInMonth(1987, 2); got != 28 {
		t.Errorf("DaysInMonth(1987,2) = %d, want 28", got)
	}
	if got := DaysInMonth(1987, 13); got != 0 {
		t.Errorf("DaysInMonth(1987,13) = %d, want 0", got)
	}
}

func TestCivilValid(t *testing.T) {
	valid := []Civil{{1987, 1, 1}, {1988, 2, 29}, {0, 12, 31}}
	invalid := []Civil{{1987, 2, 29}, {1987, 0, 1}, {1987, 1, 0}, {1987, 13, 1}, {1987, 1, 32}}
	for _, c := range valid {
		if !c.Valid() {
			t.Errorf("%v should be valid", c)
		}
	}
	for _, c := range invalid {
		if c.Valid() {
			t.Errorf("%v should be invalid", c)
		}
	}
}

func TestParseCivil(t *testing.T) {
	cases := map[string]Civil{
		"1987-01-01":      {1987, 1, 1},
		"Jan 1, 1987":     {1987, 1, 1},
		"January 3, 1992": {1992, 1, 3},
		"Dec 31 1993":     {1993, 12, 31},
		"1993-1-1":        {1993, 1, 1},
	}
	for s, want := range cases {
		got, err := ParseCivil(s)
		if err != nil {
			t.Errorf("ParseCivil(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseCivil(%q) = %v, want %v", s, got, want)
		}
	}
	for _, bad := range []string{"", "1987-02-30", "Smarch 1, 1987", "yesterday", "1987/01/01"} {
		if _, err := ParseCivil(bad); err == nil {
			t.Errorf("ParseCivil(%q) should fail", bad)
		}
	}
}

func TestAddDays(t *testing.T) {
	c := Civil{1987, 1, 1}
	if got := c.AddDays(365); got != (Civil{1988, 1, 1}) {
		t.Errorf("AddDays(365) = %v", got)
	}
	if got := c.AddDays(-1); got != (Civil{1986, 12, 31}) {
		t.Errorf("AddDays(-1) = %v", got)
	}
}

func TestFloorDivMod(t *testing.T) {
	cases := []struct{ a, b, q, m int64 }{
		{7, 3, 2, 1}, {-7, 3, -3, 2}, {7, 7, 1, 0}, {-7, 7, -1, 0}, {0, 5, 0, 0}, {-1, 86400, -1, 86399},
	}
	for _, tc := range cases {
		if q := floorDiv(tc.a, tc.b); q != tc.q {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", tc.a, tc.b, q, tc.q)
		}
		if m := floorMod(tc.a, tc.b); m != tc.m {
			t.Errorf("floorMod(%d,%d) = %d, want %d", tc.a, tc.b, m, tc.m)
		}
	}
}

func TestMonthName(t *testing.T) {
	if MonthName(1) != "January" || MonthName(12) != "December" {
		t.Error("month names wrong")
	}
	if MonthName(0) == "January" {
		t.Error("month 0 must not map to January")
	}
}

func TestParseGranularity(t *testing.T) {
	cases := map[string]Granularity{
		"DAYS": Day, "days": Day, "DAY": Day, "WEEKS": Week, "CENTURY": Century,
		"centuries": Century, "sec": Second, "MINUTES": Minute, "hrs": Hour,
		"MONTHS": Month, "YEARS": Year, "DECADES": Decade,
	}
	for s, want := range cases {
		got, err := ParseGranularity(s)
		if err != nil {
			t.Errorf("ParseGranularity(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseGranularity(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := ParseGranularity("fortnights"); err == nil {
		t.Error("ParseGranularity(fortnights) should fail")
	}
}

func TestGranularityOrdering(t *testing.T) {
	gs := Granularities()
	if len(gs) != 9 {
		t.Fatalf("expected 9 basic granularities, got %d", len(gs))
	}
	for i := 1; i < len(gs); i++ {
		if !gs[i-1].Finer(gs[i]) || !gs[i].Coarser(gs[i-1]) {
			t.Errorf("%v should be finer than %v", gs[i-1], gs[i])
		}
	}
	if Granularity(99).Valid() {
		t.Error("granularity 99 should be invalid")
	}
}
