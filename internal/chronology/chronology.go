package chronology

import "fmt"

// SecondsPerDay is the length of a civil day in this chronology. Leap
// seconds and time zones are outside the paper's model and are not
// represented.
const SecondsPerDay = 86400

// A Chronology anchors the basic calendars at a system start date (the
// paper's example uses January 1, 1987) and converts between civil instants
// and no-zero ticks at every basic granularity.
//
// Internally an instant is a signed count of seconds from midnight at the
// start of the epoch day ("epoch seconds"); zero is a valid epoch second even
// though it is not a valid tick.
type Chronology struct {
	epoch     Civil
	epochRata int64 // days from 1970-01-01 to the epoch day
}

// DefaultEpoch is the system start date used throughout the paper's
// examples for 1987-anchored lists, January 1, 1987.
var DefaultEpoch = Civil{Year: 1987, Month: 1, Day: 1}

// New returns a Chronology anchored at the given epoch date.
func New(epoch Civil) (*Chronology, error) {
	if !epoch.Valid() {
		return nil, fmt.Errorf("chronology: invalid epoch date %+v", epoch)
	}
	return &Chronology{epoch: epoch, epochRata: epoch.Rata()}, nil
}

// MustNew is New for epochs known to be valid at compile time.
func MustNew(epoch Civil) *Chronology {
	c, err := New(epoch)
	if err != nil {
		panic(err)
	}
	return c
}

// Epoch returns the system start date.
func (c *Chronology) Epoch() Civil { return c.epoch }

// EpochSecondsOf returns the epoch-second of midnight on the given civil day.
func (c *Chronology) EpochSecondsOf(d Civil) int64 {
	return (d.Rata() - c.epochRata) * SecondsPerDay
}

// CivilOf returns the civil day containing the given epoch second.
func (c *Chronology) CivilOf(sec int64) Civil {
	return CivilFromRata(c.epochRata + floorDiv(sec, SecondsPerDay))
}

// rataOf returns the rata day containing the epoch second.
func (c *Chronology) rataOf(sec int64) int64 {
	return c.epochRata + floorDiv(sec, SecondsPerDay)
}

// weekStartRata returns the rata day of the Monday beginning the week that
// contains rata day z.
func weekStartRata(z int64) int64 {
	return z - int64(WeekdayOfRata(z)-Monday)
}

// UnitStart returns the first epoch-second of unit t of granularity g.
func (c *Chronology) UnitStart(g Granularity, t Tick) int64 {
	off := OffsetFromTick(t)
	switch g {
	case Second:
		return off
	case Minute:
		return off * 60
	case Hour:
		return off * 3600
	case Day:
		return off * SecondsPerDay
	case Week:
		ws := weekStartRata(c.epochRata) + off*7
		return (ws - c.epochRata) * SecondsPerDay
	case Month:
		mi := c.epochMonthIndex() + off
		y, m := int(floorDiv(mi, 12)), int(floorMod(mi, 12))+1
		return (Civil{Year: y, Month: m, Day: 1}.Rata() - c.epochRata) * SecondsPerDay
	case Year:
		y := c.epoch.Year + int(off)
		return (Civil{Year: y, Month: 1, Day: 1}.Rata() - c.epochRata) * SecondsPerDay
	case Decade:
		dy := int(floorDiv(int64(c.epoch.Year), 10)+off) * 10
		return (Civil{Year: dy, Month: 1, Day: 1}.Rata() - c.epochRata) * SecondsPerDay
	case Century:
		cy := int(floorDiv(int64(c.epoch.Year), 100)+off) * 100
		return (Civil{Year: cy, Month: 1, Day: 1}.Rata() - c.epochRata) * SecondsPerDay
	}
	panic(fmt.Sprintf("chronology: UnitStart of invalid granularity %v", g))
}

// UnitEndExcl returns the first epoch-second after unit t of granularity g
// (i.e. the start of the next unit).
func (c *Chronology) UnitEndExcl(g Granularity, t Tick) int64 {
	return c.UnitStart(g, NextTick(t))
}

// TickAt returns the tick of the unit of granularity g containing the given
// epoch second.
func (c *Chronology) TickAt(g Granularity, sec int64) Tick {
	switch g {
	case Second:
		return TickFromOffset(sec)
	case Minute:
		return TickFromOffset(floorDiv(sec, 60))
	case Hour:
		return TickFromOffset(floorDiv(sec, 3600))
	case Day:
		return TickFromOffset(floorDiv(sec, SecondsPerDay))
	case Week:
		z := c.rataOf(sec)
		return TickFromOffset(floorDiv(z-weekStartRata(c.epochRata), 7))
	case Month:
		d := c.CivilOf(sec)
		mi := int64(d.Year)*12 + int64(d.Month-1)
		return TickFromOffset(mi - c.epochMonthIndex())
	case Year:
		d := c.CivilOf(sec)
		return TickFromOffset(int64(d.Year - c.epoch.Year))
	case Decade:
		d := c.CivilOf(sec)
		return TickFromOffset(floorDiv(int64(d.Year), 10) - floorDiv(int64(c.epoch.Year), 10))
	case Century:
		d := c.CivilOf(sec)
		return TickFromOffset(floorDiv(int64(d.Year), 100) - floorDiv(int64(c.epoch.Year), 100))
	}
	panic(fmt.Sprintf("chronology: TickAt of invalid granularity %v", g))
}

func (c *Chronology) epochMonthIndex() int64 {
	return int64(c.epoch.Year)*12 + int64(c.epoch.Month-1)
}

// DayTick returns the day tick of a civil date: tick 1 is the epoch day.
func (c *Chronology) DayTick(d Civil) Tick {
	return TickFromOffset(d.Rata() - c.epochRata)
}

// CivilOfDayTick inverts DayTick.
func (c *Chronology) CivilOfDayTick(t Tick) Civil {
	return CivilFromRata(c.epochRata + OffsetFromTick(t))
}

// WeekdayOfDayTick returns the weekday of the given day tick.
func (c *Chronology) WeekdayOfDayTick(t Tick) Weekday {
	return WeekdayOfRata(c.epochRata + OffsetFromTick(t))
}

// YearTick returns the year tick of the calendar year y ("1993/YEARS" selects
// by label, not ordinal).
func (c *Chronology) YearTick(y int) Tick {
	return TickFromOffset(int64(y - c.epoch.Year))
}

// YearOfTick inverts YearTick.
func (c *Chronology) YearOfTick(t Tick) int {
	return c.epoch.Year + int(OffsetFromTick(t))
}

// Rebase converts a tick at granularity g into the tick at granularity h of
// the unit containing g's first instant. For coarser h this is containment;
// for finer h it is the first sub-unit.
func (c *Chronology) Rebase(g Granularity, t Tick, h Granularity) Tick {
	return c.TickAt(h, c.UnitStart(g, t))
}

// UnitSpanIn returns the inclusive tick range, at granularity h, covered by
// unit t of granularity g. For example the unit 1993/YEARS spans day ticks
// (2192, 2556) in the 1987-anchored chronology.
func (c *Chronology) UnitSpanIn(g Granularity, t Tick, h Granularity) (lo, hi Tick) {
	start := c.UnitStart(g, t)
	endExcl := c.UnitEndExcl(g, t)
	return c.TickAt(h, start), c.TickAt(h, endExcl-1)
}

// FormatTick renders a tick of granularity g as a human-readable instant or
// unit label (used by the shell and examples, not by the algebra itself).
func (c *Chronology) FormatTick(g Granularity, t Tick) string {
	switch g {
	case Second, Minute, Hour:
		sec := c.UnitStart(g, t)
		d := c.CivilOf(sec)
		rem := floorMod(sec, SecondsPerDay)
		return fmt.Sprintf("%s %02d:%02d:%02d", d, rem/3600, (rem%3600)/60, rem%60)
	case Day:
		return c.CivilOfDayTick(t).String()
	case Week:
		d := c.CivilOf(c.UnitStart(Week, t))
		return fmt.Sprintf("week of %s", d)
	case Month:
		d := c.CivilOf(c.UnitStart(Month, t))
		return fmt.Sprintf("%s %d", MonthName(d.Month), d.Year)
	case Year:
		return fmt.Sprintf("%d", c.YearOfTick(t))
	case Decade:
		d := c.CivilOf(c.UnitStart(Decade, t))
		return fmt.Sprintf("%ds", d.Year)
	case Century:
		d := c.CivilOf(c.UnitStart(Century, t))
		return fmt.Sprintf("century of %d", d.Year)
	}
	return fmt.Sprintf("%v#%d", g, t)
}
