// symbolic.go adapts the symbolic pattern calculus
// (internal/core/callang/symbolic) to the plan layer: whole prepared
// expressions lower to closed-form periodic patterns that the Scheduler
// answers with pure arithmetic, extending the basic-calendar exact path of
// next.go to compositions (Mondays, first days of months, unions of
// selections, …).
package plan

import (
	"calsys/internal/chronology"
	"calsys/internal/core/callang"
	"calsys/internal/core/callang/symbolic"
	"calsys/internal/core/periodic"
)

// SymbolicPattern lowers a prepared expression to the periodic pattern of its
// infinite element list, in tick offsets of gran. ok=false means the
// expression has no symbolic form (window-anchored constructs, stored
// calendars, shapes with no compact periodic cycle) and the caller must fall
// back to windowed evaluation. A nil pattern with ok=true proves the
// expression empty on every window.
//
// Names whose lifespan is bounded stay opaque, mirroring the inliner's rule
// in compile.go: their materialized value is clipped to the lifespan and is
// therefore not the periodic list the derivation alone would denote.
func SymbolicPattern(env *Env, prepped callang.Expr, gran chronology.Granularity) (*periodic.Pattern, bool) {
	opaque := func(name string) bool {
		if lc, ok := env.Cat.(LifespanCatalog); ok {
			if _, hi, found := lc.LifespanOf(name); found && hi < UnboundedDayTick {
				return true
			}
		}
		return false
	}
	return symbolic.EvalOpaque(env.Chron, env.Cat, prepped, gran, opaque)
}
