package plan

import (
	"strings"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
)

// env1993 anchors the chronology at Jan 1 1993 so tick values match the
// paper's §3.3 walkthroughs, and installs the paper's schematic HOLIDAYS and
// AM_BUS_DAYS calendars: holidays on day 31 (Jan 31) and day 90 (the last
// day of March); business days are all days except 31, 89 and 90.
func env1993(t testing.TB) (*Env, *MapCatalog) {
	t.Helper()
	cat := NewMapCatalog()
	env := &Env{Chron: chronology.MustNew(chronology.Civil{Year: 1993, Month: 1, Day: 1}), Cat: cat}

	hol, err := calendar.FromPoints(chronology.Day, []chronology.Tick{31, 90})
	if err != nil {
		t.Fatal(err)
	}
	cat.Stored["HOLIDAYS"] = hol
	cat.Kinds["HOLIDAYS"] = chronology.Day

	var bus []chronology.Tick
	for day := chronology.Tick(1); day <= 150; day++ {
		if day == 31 || day == 89 || day == 90 {
			continue
		}
		bus = append(bus, day)
	}
	busCal, err := calendar.FromPoints(chronology.Day, bus)
	if err != nil {
		t.Fatal(err)
	}
	cat.Stored["AM_BUS_DAYS"] = busCal
	cat.Kinds["AM_BUS_DAYS"] = chronology.Day
	return env, cat
}

func script(t testing.TB, src string) *callang.Script {
	t.Helper()
	s, err := callang.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The EMP-DAYS script of §3.3: "the last day of every month in the year; if
// this is a holiday, then the preceding business day". The paper's
// walkthrough yields {(30,30),(59,59),(88,88),...}.
func TestPaperEmpDaysScript(t *testing.T) {
	env, _ := env1993(t)
	s := script(t, `{LDOM = [n]/DAYS:during:MONTHS;
		LDOM_HOL = LDOM:intersects:HOLIDAYS;
		LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
		return (LDOM - LDOM_HOL + LAST_BUS_DAY);}`)
	v, err := RunScript(env, s, d(1993, 1, 1), d(1993, 4, 30))
	if err != nil {
		t.Fatal(err)
	}
	if v.IsString() {
		t.Fatalf("expected calendar, got %v", v)
	}
	want := "{(30,30),(59,59),(88,88),(120,120)}"
	if v.Cal.String() != want {
		t.Errorf("EMP-DAYS = %v, want %v", v.Cal, want)
	}
}

// The option-expiration script of §3.3: "third Friday of the expiration
// month if a business day else the preceding business day".
func TestPaperOptionExpirationScript(t *testing.T) {
	env, cat := env1993(t)
	src := `{Fridays = [5]/DAYS:during:WEEKS;
		temp1 = [3]/Fridays:overlaps:Expiration-Month;
		if (temp1:intersects:HOLIDAYS)
			return([n]/AM_BUS_DAYS:<:temp1);
		else
			return(temp1);}`
	s := script(t, src)

	// Expiration month January 1993: the 3rd Friday is Jan 15 (day 15), a
	// business day, so the script returns it unchanged.
	jan := calendar.MustFromIntervals(chronology.Day, interval.Must(1, 31))
	cat.Stored["Expiration-Month"] = jan
	cat.Kinds["Expiration-Month"] = chronology.Month
	v, err := RunScript(env, s, d(1993, 1, 1), d(1993, 6, 30))
	if err != nil {
		t.Fatal(err)
	}
	if v.Cal.String() != "{(15,15)}" {
		t.Errorf("expiration = %v, want {(15,15)} (Jan 15 1993)", v.Cal)
	}
	if w := env.Chron.WeekdayOfDayTick(15); w != chronology.Friday {
		t.Fatalf("day 15 is %v, not Friday", w)
	}

	// Now make the 3rd Friday a holiday (and, consistently, not a business
	// day): the script must return the preceding business day, Jan 14.
	hol, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{15, 31, 90})
	cat.Stored["HOLIDAYS"] = hol
	var bus []chronology.Tick
	for day := chronology.Tick(1); day <= 150; day++ {
		if day == 15 || day == 31 || day == 89 || day == 90 {
			continue
		}
		bus = append(bus, day)
	}
	busCal, err := calendar.FromPoints(chronology.Day, bus)
	if err != nil {
		t.Fatal(err)
	}
	cat.Stored["AM_BUS_DAYS"] = busCal
	v, err = RunScript(env, s, d(1993, 1, 1), d(1993, 6, 30))
	if err != nil {
		t.Fatal(err)
	}
	if v.Cal.String() != "{(14,14)}" {
		t.Errorf("holiday expiration = %v, want {(14,14)}", v.Cal)
	}
}

// The last-trading-day script of §3.3: wait until the seventh business day
// preceding the last business day of the expiration month, then alert.
func TestPaperLastTradingDayScript(t *testing.T) {
	env, cat := env1993(t)
	jan := calendar.MustFromIntervals(chronology.Day, interval.Must(1, 31))
	cat.Stored["Expiration-Month"] = jan
	cat.Kinds["Expiration-Month"] = chronology.Month

	s := script(t, `{ temp1 = [n]/AM_BUS_DAYS:during:Expiration-Month;
		temp2 = [-7]/AM_BUS_DAYS:<:temp1;
		while (today:<:temp2) ;
		return ("LAST TRADING DAY");}`)

	// Last business day of January 1993 is day 30 (31 is a holiday). The
	// paper's < is inclusive (u1 <= l2), so the business days "before" day
	// 30 are 1..30 and the 7th from the end is day 24.
	now := env.Chron.EpochSecondsOf(d(1993, 1, 18)) // day 18: must wait
	waits := 0
	env.Now = func() int64 { return now }
	env.Wait = func() error {
		waits++
		now += chronology.SecondsPerDay
		return nil
	}
	v, err := RunScript(env, s, d(1993, 1, 1), d(1993, 1, 31))
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsString() || v.Str != "LAST TRADING DAY" {
		t.Errorf("alert = %v", v)
	}
	// today:<:temp2 holds while today <= 24, so the loop waits on days
	// 18..24 — seven advances — and alerts on day 25.
	if waits != 7 {
		t.Errorf("waited %d days, want 7 (day 18 -> day 25)", waits)
	}
}

func TestScriptValueString(t *testing.T) {
	v := Value{Str: "ALERT"}
	if !v.IsString() || v.String() != `"ALERT"` {
		t.Errorf("string value = %v", v)
	}
	c, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{1})
	v = Value{Cal: c}
	if v.IsString() || v.String() != "{(1,1)}" {
		t.Errorf("calendar value = %v", v)
	}
}

func TestScriptErrors(t *testing.T) {
	env, _ := env1993(t)
	cases := map[string]string{
		"no return":       `{x = DAYS:during:MONTHS;}`,
		"unknown cal":     `{return (NOPE);}`,
		"bad assign":      `{x = NOPE; return (x);}`,
		"bad if cond":     `{if (NOPE) return (DAYS); else return (DAYS);}`,
		"bad while cond":  `{while (NOPE) ; return (DAYS);}`,
		"wait without ho": `{while (DAYS:during:MONTHS) ; return (DAYS);}`,
	}
	for name, src := range cases {
		s := script(t, src)
		if _, err := RunScript(env, s, d(1993, 1, 1), d(1993, 3, 31)); err == nil {
			t.Errorf("%s: script should fail", name)
		}
	}
}

func TestScriptWhileIterationCap(t *testing.T) {
	env, _ := env1993(t)
	env.MaxWhileIters = 10
	// Condition never changes and the body is non-empty: the cap must trip.
	s := script(t, `{while (DAYS:during:MONTHS) x = DAYS:during:MONTHS; return (x);}`)
	_, err := RunScript(env, s, d(1993, 1, 1), d(1993, 1, 31))
	if err == nil || !strings.Contains(err.Error(), "iterations") {
		t.Errorf("expected iteration-cap error, got %v", err)
	}
}

func TestScriptWhileWithBody(t *testing.T) {
	env, cat := env1993(t)
	// A while whose condition becomes false: x starts as January's days and
	// is intersected with HOLIDAYS once, after which x:<:interval(1,1) is
	// empty... use a simpler shrinking loop:
	// while (x:intersects:HOLIDAYS) x = x - HOLIDAYS;
	s := script(t, `{x = [n]/DAYS:during:MONTHS;
		while (x:intersects:HOLIDAYS) x = x - HOLIDAYS;
		return (x);}`)
	v, err := RunScript(env, s, d(1993, 1, 1), d(1993, 4, 30))
	if err != nil {
		t.Fatal(err)
	}
	// Month ends 31, 59, 90, 120 minus holidays {31, 90}.
	if v.Cal.String() != "{(59,59),(120,120)}" {
		t.Errorf("loop result = %v", v.Cal)
	}
	_ = cat
}

func TestOpaqueDerivedCalendarInExpression(t *testing.T) {
	env, cat := env1993(t)
	defineScript(t, cat, "EMP_DAYS", `{LDOM = [n]/DAYS:during:MONTHS;
		LDOM_HOL = LDOM:intersects:HOLIDAYS;
		LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
		return (LDOM - LDOM_HOL + LAST_BUS_DAY);}`, chronology.Day)
	// Use the opaque derived calendar inside another expression.
	got, err := Evaluate(env, expr(t, "EMP_DAYS:intersects:(DAYS:during:interval(1, 59))"),
		d(1993, 1, 1), d(1993, 4, 30))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "{(30,30),(59,59)}" {
		t.Errorf("EMP_DAYS restricted = %v", got)
	}
}

func TestDerivedReturningStringFails(t *testing.T) {
	env, cat := env1993(t)
	defineScript(t, cat, "ALERTER", `{x = DAYS:during:MONTHS; return ("BOOM");}`, chronology.Day)
	if _, err := Evaluate(env, expr(t, "ALERTER:intersects:HOLIDAYS"), d(1993, 1, 1), d(1993, 1, 31)); err == nil {
		t.Error("derived calendar returning a string must fail in expressions")
	}
}
