package plan

import (
	"fmt"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
)

// catalogScripts adapts a Catalog to callang.ScriptLookup, exposing only
// single-expression derivations for inlining; opaque (multi-statement)
// derivations stay as references compiled to OpDerived.
type catalogScripts struct{ cat Catalog }

func (c catalogScripts) DerivationOf(name string) (*callang.Script, bool) {
	s, ok := c.cat.DerivationOf(name)
	if !ok {
		return nil, false
	}
	if _, single := s.SingleExpr(); !single {
		return nil, false
	}
	// A derivation with a bounded lifespan must stay opaque: inlining would
	// lose the lifespan clip applied by the derived-calendar path.
	if lc, ok := c.cat.(LifespanCatalog); ok {
		if _, hi, found := lc.LifespanOf(name); found && hi < UnboundedDayTick {
			return nil, false
		}
	}
	return s, true
}

// Prepare runs the front half of the §3.4 parsing algorithm on an
// expression: inline derived calendars, factorize, and determine the
// smallest time unit. vars names script temporaries whose kinds are unknown
// statically.
func Prepare(env *Env, e callang.Expr, vars map[string]bool) (callang.Expr, chronology.Granularity, error) {
	inlined, err := callang.Inline(e, catalogScripts{env.Cat})
	if err != nil {
		return nil, 0, err
	}
	out := inlined
	if !env.DisableFactorization {
		out = callang.Factorize(inlined, env.Cat)
	}
	analysis := callang.Analyze(out, env.Cat)
	return out, analysis.TickGran, nil
}

// CivilWindow converts an inclusive civil-date range into a tick window at
// granularity g.
func CivilWindow(ch *chronology.Chronology, g chronology.Granularity, from, to chronology.Civil) (interval.Interval, error) {
	if !from.Valid() || !to.Valid() {
		return interval.Interval{}, fmt.Errorf("plan: invalid civil window %v..%v", from, to)
	}
	if to.Before(from) {
		return interval.Interval{}, fmt.Errorf("plan: reversed civil window %v..%v", from, to)
	}
	lo := ch.TickAt(g, ch.EpochSecondsOf(from))
	hi := ch.TickAt(g, ch.EpochSecondsOf(to.AddDays(1))-1)
	return interval.Interval{Lo: lo, Hi: hi}, nil
}

// CompileExpr prepares and compiles an expression against a civil-date base
// window, returning the plan and the inferred granularity.
func CompileExpr(env *Env, e callang.Expr, vars map[string]bool, from, to chronology.Civil) (*Plan, error) {
	prepped, gran, err := Prepare(env, e, vars)
	if err != nil {
		return nil, err
	}
	win, err := CivilWindow(env.Chron, gran, from, to)
	if err != nil {
		return nil, err
	}
	return Compile(env, prepped, vars, gran, win)
}

// Compile lowers a prepared expression to a Plan with concrete generation
// windows. Identical subexpressions share a register, implementing the
// paper's "mark any calendar that is encountered more than once to avoid
// generating values of the calendar unnecessarily".
func Compile(env *Env, e callang.Expr, vars map[string]bool, gran chronology.Granularity, win interval.Interval) (*Plan, error) {
	if err := win.Check(); err != nil {
		return nil, fmt.Errorf("plan: base window: %w", err)
	}
	c := &compiler{
		env:  env,
		vars: vars,
		plan: &Plan{Gran: gran, Window: win},
		cse:  map[string]Reg{},
		base: win,
	}
	r, err := c.compile(e, win)
	if err != nil {
		return nil, err
	}
	c.plan.Result = r
	return c.plan, nil
}

type compiler struct {
	env  *Env
	vars map[string]bool
	plan *Plan
	cse  map[string]Reg
	base interval.Interval
}

// emit appends an op, reusing an existing register when an identical op was
// already emitted (common-subexpression elimination — the paper's shared-
// calendar marking).
func (c *compiler) emit(op Op) Reg {
	if !c.env.DisableSharing {
		key := op.withDst(0).String()
		if r, ok := c.cse[key]; ok {
			return r
		}
		op.Dst = Reg(len(c.plan.Ops))
		c.plan.Ops = append(c.plan.Ops, op)
		c.cse[key] = op.Dst
		return op.Dst
	}
	op.Dst = Reg(len(c.plan.Ops))
	c.plan.Ops = append(c.plan.Ops, op)
	return op.Dst
}

func (op Op) withDst(d Reg) Op {
	op.Dst = d
	return op
}

// staticWin bounds where an expression's elements can lie, given the node's
// window; this is the §3.4 look-ahead that narrows generation windows.
func (c *compiler) staticWin(e callang.Expr, win interval.Interval) interval.Interval {
	switch n := e.(type) {
	case *callang.LabelSelExpr:
		if id, ok := n.X.(*callang.Ident); ok {
			if g, err := chronology.ParseGranularity(id.Name); err == nil {
				if tick, err := c.labelTick(g, n.Num); err == nil {
					lo, hi := c.env.Chron.UnitSpanIn(g, tick, c.plan.Gran)
					return interval.Interval{Lo: lo, Hi: hi}
				}
			}
		}
		return c.staticWin(n.X, win)
	case *callang.SelectExpr:
		return c.staticWin(n.X, win)
	case *callang.ForeachExpr:
		yw := c.staticWin(n.Y, win)
		switch n.Op {
		case interval.During, interval.Overlaps, interval.Meets:
			return yw
		default: // < and <=: elements may lie anywhere from the base up to Y
			return interval.Interval{Lo: c.base.Lo, Hi: yw.Hi}
		}
	case *callang.IntersectExpr:
		xw := c.staticWin(n.X, win)
		yw := c.staticWin(n.Y, win)
		if cut, ok := xw.Intersect(yw); ok {
			return cut
		}
		return xw
	case *callang.BinExpr:
		xw := c.staticWin(n.X, win)
		yw := c.staticWin(n.Y, win)
		if n.Op == '-' {
			return xw
		}
		return xw.Hull(yw)
	}
	return win
}

func (c *compiler) narrowed(e callang.Expr, win interval.Interval) interval.Interval {
	if c.env.DisableWindowInference {
		return win
	}
	sw := c.staticWin(e, win)
	if cut, ok := win.Intersect(sw); ok {
		return cut
	}
	// Disjoint: the expression's elements lie outside the node window; keep
	// the static window so foreach semantics still see them (e.g. business
	// days *before* a window-straddling holiday).
	return sw
}

// outerWin bounds the hull of an expression's possible elements given its
// generation window. Unlike staticWin (which narrows), outerWin answers "how
// far can elements reach beyond the window?": a basic calendar's first and
// last units straddle the window edges, and relaxed foreach keeps whole
// elements.
func (c *compiler) outerWin(e callang.Expr, win interval.Interval) interval.Interval {
	ch := c.env.Chron
	switch n := e.(type) {
	case *callang.Ident:
		if g, err := chronology.ParseGranularity(n.Name); err == nil && !g.Finer(c.plan.Gran) {
			return c.expandToUnits(win, g)
		}
		// Stored, derived or variable calendars: values are absolute, so
		// assume they can span the whole base window.
		return win.Hull(c.base)
	case *callang.LabelSelExpr:
		if id, ok := n.X.(*callang.Ident); ok {
			if g, err := chronology.ParseGranularity(id.Name); err == nil {
				if tick, lerr := c.labelTick(g, n.Num); lerr == nil {
					lo, hi := ch.UnitSpanIn(g, tick, c.plan.Gran)
					return interval.Interval{Lo: lo, Hi: hi}
				}
			}
		}
		return c.outerWin(n.X, win)
	case *callang.SelectExpr:
		return c.outerWin(n.X, win)
	case *callang.ForeachExpr:
		ow := c.outerWin(n.Y, c.narrowed(n.Y, win))
		switch n.Op {
		case interval.During:
			return ow // elements lie inside Y's elements
		case interval.Overlaps:
			if n.Strict {
				return ow // trimmed to the overlap
			}
			return c.expandByKind(ow, n.X)
		case interval.Meets:
			return c.expandByKind(ow, n.X)
		default: // < and <=: whole elements reaching back to the base start
			out := c.expandByKind(ow, n.X)
			if c.base.Lo < out.Lo {
				out.Lo = c.base.Lo
			}
			return out
		}
	case *callang.IntersectExpr:
		a := c.outerWin(n.X, win)
		b := c.outerWin(n.Y, win)
		if cut, ok := a.Intersect(b); ok {
			return cut
		}
		return a
	case *callang.BinExpr:
		a := c.outerWin(n.X, win)
		if n.Op == '-' {
			return a
		}
		return a.Hull(c.outerWin(n.Y, win))
	}
	return win.Hull(c.base)
}

// expandToUnits widens a window to whole units of granularity g, covering
// the straddle of the first and last generated unit.
func (c *compiler) expandToUnits(w interval.Interval, g chronology.Granularity) interval.Interval {
	ch := c.env.Chron
	if g.Finer(c.plan.Gran) {
		return w
	}
	uLo := ch.TickAt(g, ch.UnitStart(c.plan.Gran, w.Lo))
	uHi := ch.TickAt(g, ch.UnitEndExcl(c.plan.Gran, w.Hi)-1)
	lo, _ := ch.UnitSpanIn(g, uLo, c.plan.Gran)
	_, hi := ch.UnitSpanIn(g, uHi, c.plan.Gran)
	return interval.Interval{Lo: lo, Hi: hi}
}

// expandByKind widens a window to whole units of x's element kind when it is
// known, else conservatively to the base window.
func (c *compiler) expandByKind(w interval.Interval, x callang.Expr) interval.Interval {
	if g, ok := callang.ElemKind(x, c.env.Cat); ok {
		return c.expandToUnits(w, g)
	}
	return w.Hull(c.base)
}

// labelTick maps a label such as 1993 onto a tick of granularity g. Year
// labels apply to YEARS and coarser; finer granularities take the label as a
// raw tick.
func (c *compiler) labelTick(g chronology.Granularity, label int64) (chronology.Tick, error) {
	if g.Coarser(chronology.Month) {
		yearTick := c.env.Chron.YearTick(int(label))
		return c.env.Chron.Rebase(chronology.Year, yearTick, g), nil
	}
	if err := chronology.CheckTick(label); err != nil {
		return 0, fmt.Errorf("plan: label %d: %w", label, err)
	}
	return label, nil
}

func (c *compiler) compile(e callang.Expr, win interval.Interval) (Reg, error) {
	switch n := e.(type) {
	case *callang.Ident:
		return c.compileIdent(n, win)
	case *callang.Number:
		return 0, fmt.Errorf("plan: bare number %d is not a calendar expression", n.Val)
	case *callang.StringLit:
		return 0, fmt.Errorf("plan: string literal %q outside a call or return", n.Val)
	case *callang.ForeachExpr:
		yWin := c.narrowed(n.Y, win)
		b, err := c.compile(n.Y, yWin)
		if err != nil {
			return 0, err
		}
		// X must be generated over the hull of Y's possible elements
		// (including units straddling Y's window), not merely the node
		// window: the second day of a week straddling January 1st lies in
		// December.
		xWin := c.outerWin(n.Y, yWin)
		if c.env.DisableWindowInference {
			xWin = xWin.Hull(c.base)
		}
		switch n.Op {
		case interval.Before, interval.BeforeEquals:
			// Elements preceding Y may lie anywhere at or after the base
			// window's start.
			if c.base.Lo < xWin.Lo {
				xWin = interval.Interval{Lo: c.base.Lo, Hi: xWin.Hi}
			}
		}
		a, err := c.compile(n.X, xWin)
		if err != nil {
			return 0, err
		}
		return c.emit(Op{Kind: OpForeach, A: a, B: b, ListOp: n.Op, Strict: n.Strict}), nil
	case *callang.IntersectExpr:
		a, err := c.compile(n.X, win)
		if err != nil {
			return 0, err
		}
		b, err := c.compile(n.Y, win)
		if err != nil {
			return 0, err
		}
		return c.emit(Op{Kind: OpIntersect, A: a, B: b}), nil
	case *callang.BinExpr:
		a, err := c.compile(n.X, win)
		if err != nil {
			return 0, err
		}
		b, err := c.compile(n.Y, win)
		if err != nil {
			return 0, err
		}
		k := OpUnion
		if n.Op == '-' {
			k = OpDiff
		}
		return c.emit(Op{Kind: k, A: a, B: b}), nil
	case *callang.SelectExpr:
		a, err := c.compile(n.X, win)
		if err != nil {
			return 0, err
		}
		if err := n.Pred.Check(); err != nil {
			return 0, err
		}
		return c.emit(Op{Kind: OpSelect, Sel: n.Pred, A: a}), nil
	case *callang.LabelSelExpr:
		id, ok := n.X.(*callang.Ident)
		if !ok {
			return 0, fmt.Errorf("plan: label selection %d/ requires a basic calendar, got %s", n.Num, n.X)
		}
		g, err := chronology.ParseGranularity(id.Name)
		if err != nil {
			return 0, fmt.Errorf("plan: label selection %d/%s requires a basic calendar", n.Num, id.Name)
		}
		tick, err := c.labelTick(g, n.Num)
		if err != nil {
			return 0, err
		}
		return c.emit(Op{Kind: OpUnit, Of: g, Tick: tick}), nil
	case *callang.CallExpr:
		return c.compileCall(n, win)
	}
	return 0, fmt.Errorf("plan: cannot compile %T", e)
}

func (c *compiler) compileIdent(n *callang.Ident, win interval.Interval) (Reg, error) {
	name := n.Name
	if name == "today" {
		return c.emit(Op{Kind: OpToday}), nil
	}
	if c.vars[name] {
		return c.emit(Op{Kind: OpVar, Name: name}), nil
	}
	if g, err := chronology.ParseGranularity(name); err == nil {
		if g.Finer(c.plan.Gran) {
			return 0, fmt.Errorf("plan: calendar %s is finer than the plan granularity %v", name, c.plan.Gran)
		}
		return c.emit(Op{Kind: OpGenerate, Of: g, Win: win}), nil
	}
	if _, ok := c.env.Cat.StoredCalendar(name); ok {
		return c.emit(Op{Kind: OpLoad, Name: name}), nil
	}
	if _, ok := c.env.Cat.DerivationOf(name); ok {
		return c.emit(Op{Kind: OpDerived, Name: name, Win: win}), nil
	}
	return 0, fmt.Errorf("plan: unknown calendar %q", name)
}

func (c *compiler) compileCall(n *callang.CallExpr, win interval.Interval) (Reg, error) {
	switch n.Name {
	case "generate":
		if len(n.Args) != 4 {
			return 0, fmt.Errorf("plan: generate takes (cal, cal, from, to), got %d args", len(n.Args))
		}
		ofID, ok1 := n.Args[0].(*callang.Ident)
		inID, ok2 := n.Args[1].(*callang.Ident)
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("plan: generate calendar arguments must be basic calendar names")
		}
		of, err := chronology.ParseGranularity(ofID.Name)
		if err != nil {
			return 0, fmt.Errorf("plan: generate: %w", err)
		}
		in, err := chronology.ParseGranularity(inID.Name)
		if err != nil {
			return 0, fmt.Errorf("plan: generate: %w", err)
		}
		if in.Coarser(c.plan.Gran) {
			return 0, fmt.Errorf("plan: generate in %v units is coarser than plan granularity %v", in, c.plan.Gran)
		}
		from, err := callDate(n.Args[2])
		if err != nil {
			return 0, err
		}
		to, err := callDate(n.Args[3])
		if err != nil {
			return 0, err
		}
		gwin, err := CivilWindow(c.env.Chron, in, from, to)
		if err != nil {
			return 0, err
		}
		return c.emit(Op{Kind: OpGenerateCall, Of: of, In: in, Win: gwin}), nil
	case "caloperate":
		if len(n.Args) < 2 {
			return 0, fmt.Errorf("plan: caloperate takes (cal, count, ...)")
		}
		a, err := c.compile(n.Args[0], win)
		if err != nil {
			return 0, err
		}
		counts := make([]int, 0, len(n.Args)-1)
		for _, arg := range n.Args[1:] {
			num, ok := arg.(*callang.Number)
			if !ok {
				return 0, fmt.Errorf("plan: caloperate counts must be integers, got %s", arg)
			}
			counts = append(counts, int(num.Val))
		}
		return c.emit(Op{Kind: OpCaloperate, A: a, Counts: counts}), nil
	case "interval":
		args, gran, err := c.litArgs(n.Args)
		if err != nil {
			return 0, err
		}
		if len(args) != 2 {
			return 0, fmt.Errorf("plan: interval takes (lo, hi [, GRAN])")
		}
		iv, err := interval.New(args[0], args[1])
		if err != nil {
			return 0, err
		}
		lit, err := calendar.FromIntervals(gran, []interval.Interval{iv})
		if err != nil {
			return 0, err
		}
		return c.emitConst(lit)
	case "points":
		args, gran, err := c.litArgs(n.Args)
		if err != nil {
			return 0, err
		}
		if len(args) == 0 {
			return 0, fmt.Errorf("plan: points takes at least one tick")
		}
		lit, err := calendar.FromPoints(gran, args)
		if err != nil {
			return 0, err
		}
		return c.emitConst(lit)
	}
	return 0, fmt.Errorf("plan: unknown function %q", n.Name)
}

// litArgs decodes the integer arguments of interval()/points(), with an
// optional trailing granularity name declaring their tick unit (default:
// the plan granularity).
func (c *compiler) litArgs(args []callang.Expr) ([]chronology.Tick, chronology.Granularity, error) {
	gran := c.plan.Gran
	if len(args) > 0 {
		if id, ok := args[len(args)-1].(*callang.Ident); ok {
			g, err := chronology.ParseGranularity(id.Name)
			if err != nil {
				return nil, 0, fmt.Errorf("plan: literal granularity: %w", err)
			}
			gran = g
			args = args[:len(args)-1]
		}
	}
	ticks := make([]chronology.Tick, 0, len(args))
	for _, arg := range args {
		num, ok := arg.(*callang.Number)
		if !ok {
			return nil, 0, fmt.Errorf("plan: literal arguments must be integers, got %s", arg)
		}
		ticks = append(ticks, num.Val)
	}
	return ticks, gran, nil
}

// emitConst loads a literal calendar, converting its declared granularity to
// the plan granularity.
func (c *compiler) emitConst(lit *calendar.Calendar) (Reg, error) {
	conv, err := calendar.ConvertGran(c.env.Chron, lit, c.plan.Gran)
	if err != nil {
		return 0, err
	}
	return c.emit(Op{Kind: OpConst, Lit: conv}), nil
}

func callDate(e callang.Expr) (chronology.Civil, error) {
	s, ok := e.(*callang.StringLit)
	if !ok {
		return chronology.Civil{}, fmt.Errorf("plan: date argument must be a string, got %s", e)
	}
	return chronology.ParseCivil(s.Val)
}
