package plan

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
	"calsys/internal/core/matcache"
	"calsys/internal/core/periodic"
)

const (
	minI64 = math.MinInt64
	maxI64 = math.MaxInt64
)

// genExpr builds a random calendar expression over the basic calendars and
// a stored HOLIDAYS calendar, with foreach chains, selections, label
// selections and set operators — the grammar the §3.4 optimizers rewrite.
func genExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		return genLeaf(rng)
	}
	switch rng.Intn(8) {
	case 0, 1, 2: // foreach chain
		op := []string{"during", "overlaps", "meets", "<", "<="}[rng.Intn(5)]
		sep := ":"
		if rng.Intn(4) == 0 && op != "<" && op != "<=" {
			sep = "."
		}
		left := genOperand(rng, depth-1)
		right := genOperand(rng, depth-1)
		return fmt.Sprintf("%s%s%s%s%s", left, sep, op, sep, right)
	case 3: // selection
		pred := []string{"[1]", "[2]", "[n]", "[-1]", "[1,3]", "[2-4]"}[rng.Intn(6)]
		return fmt.Sprintf("%s/(%s)", pred, genExpr(rng, depth-1))
	case 4: // label selection over years
		return fmt.Sprintf("%d/YEARS", 1990+rng.Intn(6))
	case 5: // union / difference
		op := []string{"+", "-"}[rng.Intn(2)]
		// Operands must be order-1 and same granularity: use day-kind leaves.
		return fmt.Sprintf("([n]/DAYS:during:MONTHS) %s (%s)", op, dayLeaf(rng))
	case 6: // intersects
		return fmt.Sprintf("([n]/DAYS:during:MONTHS):intersects:(%s)", dayLeaf(rng))
	default:
		return genLeaf(rng)
	}
}

// genOperand wraps sub-expressions in parens so chains parse as generated.
func genOperand(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		return genLeaf(rng)
	}
	return "(" + genExpr(rng, depth) + ")"
}

func genLeaf(rng *rand.Rand) string {
	return []string{"DAYS", "WEEKS", "MONTHS", "YEARS", "HOLIDAYS",
		"interval(40, 70, DAYS)", "points(10, 20, 30, DAYS)"}[rng.Intn(7)]
}

func dayLeaf(rng *rand.Rand) string {
	return []string{"HOLIDAYS", "points(31, 59, 90, DAYS)", "[2]/DAYS:during:WEEKS"}[rng.Intn(3)]
}

// propEnv builds the environment used by the equivalence properties.
func propEnv(t testing.TB) *Env {
	t.Helper()
	env, cat := env1987(t)
	hol, err := calendar.FromPoints(chronology.Day, []chronology.Tick{31, 90, 359, 390})
	if err != nil {
		t.Fatal(err)
	}
	cat.Stored["HOLIDAYS"] = hol
	cat.Kinds["HOLIDAYS"] = chronology.Day
	return env
}

// The §3.4 factorization rewrite must preserve evaluation results on
// arbitrary expressions, not just the paper's two examples.
func TestFactorizationEquivalenceProperty(t *testing.T) {
	env := propEnv(t)
	envOff := *env
	envOff.DisableFactorization = true
	from, to := d(1990, 1, 1), d(1995, 12, 31)

	rng := rand.New(rand.NewSource(1994))
	checked := 0
	for i := 0; i < 400; i++ {
		src := genExpr(rng, 3)
		e, err := callang.ParseExpr(src)
		if err != nil {
			t.Fatalf("generated expression %q does not parse: %v", src, err)
		}
		a, errA := Evaluate(env, e, from, to)
		b, errB := Evaluate(&envOff, e, from, to)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%q: factorized err=%v, unfactorized err=%v", src, errA, errB)
		}
		if errA != nil {
			continue // type errors (granularity mixes etc.) must agree, and do
		}
		checked++
		if !a.Flatten().ToSet().Equal(b.Flatten().ToSet()) {
			t.Fatalf("%q:\n factorized  %v\n unfactorized %v", src, a.Flatten(), b.Flatten())
		}
	}
	if checked < 100 {
		t.Fatalf("only %d of 400 generated expressions evaluated; generator too error-prone", checked)
	}
}

// Window inference must also be semantics-preserving on arbitrary
// expressions: narrowed generation windows may not change results.
func TestWindowInferenceEquivalenceProperty(t *testing.T) {
	env := propEnv(t)
	envOff := *env
	envOff.DisableWindowInference = true
	from, to := d(1990, 1, 1), d(1995, 12, 31)

	rng := rand.New(rand.NewSource(42))
	checked := 0
	for i := 0; i < 400; i++ {
		src := genExpr(rng, 3)
		e, err := callang.ParseExpr(src)
		if err != nil {
			t.Fatalf("generated expression %q does not parse: %v", src, err)
		}
		a, errA := Evaluate(env, e, from, to)
		b, errB := Evaluate(&envOff, e, from, to)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%q: windowed err=%v, unwindowed err=%v", src, errA, errB)
		}
		if errA != nil {
			continue
		}
		checked++
		if !a.Flatten().ToSet().Equal(b.Flatten().ToSet()) {
			t.Fatalf("%q:\n windowed   %v\n unwindowed %v", src, a.Flatten(), b.Flatten())
		}
	}
	if checked < 100 {
		t.Fatalf("only %d of 400 generated expressions evaluated", checked)
	}
}

// Evaluation must be deterministic: two runs of the same plan agree.
func TestEvaluateDeterministicProperty(t *testing.T) {
	env := propEnv(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		src := genExpr(rng, 3)
		e, err := callang.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		a, errA := Evaluate(env, e, d(1991, 1, 1), d(1993, 12, 31))
		b, errB := Evaluate(env, e, d(1991, 1, 1), d(1993, 12, 31))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%q: nondeterministic error", src)
		}
		if errA == nil && !a.Equal(b) {
			t.Fatalf("%q: nondeterministic result", src)
		}
	}
}

// Sharing (CSE + generation cache) must not change semantics either.
func TestSharingEquivalenceProperty(t *testing.T) {
	env := propEnv(t)
	envOff := *env
	envOff.DisableSharing = true
	from, to := d(1991, 1, 1), d(1994, 12, 31)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		src := genExpr(rng, 3)
		e, err := callang.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		a, errA := Evaluate(env, e, from, to)
		b, errB := Evaluate(&envOff, e, from, to)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%q: shared err=%v, unshared err=%v", src, errA, errB)
		}
		if errA == nil && !a.Flatten().ToSet().Equal(b.Flatten().ToSet()) {
			t.Fatalf("%q: shared %v != unshared %v", src, a.Flatten(), b.Flatten())
		}
	}
}

// The compressed periodic path (pattern-backed generate ops, selection by
// index arithmetic, lazy clamped expansion) must preserve evaluation results
// on arbitrary expressions. Both environments share materializations; only
// the periodic representation differs.
func TestPeriodicEquivalenceProperty(t *testing.T) {
	env := propEnv(t)
	env.Mat = matcache.New(0)
	env.MatScope = "prop-periodic"
	envOff := *env
	envOff.Mat = matcache.New(0)
	envOff.DisablePeriodic = true
	from, to := d(1990, 1, 1), d(1995, 12, 31)

	rng := rand.New(rand.NewSource(2026))
	checked := 0
	for i := 0; i < 400; i++ {
		src := genExpr(rng, 3)
		e, err := callang.ParseExpr(src)
		if err != nil {
			t.Fatalf("generated expression %q does not parse: %v", src, err)
		}
		a, errA := Evaluate(env, e, from, to)
		b, errB := Evaluate(&envOff, e, from, to)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%q: periodic err=%v, materialized err=%v", src, errA, errB)
		}
		if errA != nil {
			continue
		}
		checked++
		if !a.Flatten().ToSet().Equal(b.Flatten().ToSet()) {
			t.Fatalf("%q:\n periodic     %v\n materialized %v", src, a.Flatten(), b.Flatten())
		}
	}
	if checked < 100 {
		t.Fatalf("only %d of 400 generated expressions evaluated", checked)
	}
	if st := env.Mat.Stats(); st.Patterns == 0 {
		t.Fatalf("periodic run stored no patterns in the shared cache: %v", st)
	}
	// Note the DisablePeriodic cache still compresses storage (Put-side
	// detection is a cache property, not a plan property); only the
	// executor's pattern-backed evaluation is ablated.
}

// selectPattern must agree with materialize-then-Select for every predicate
// shape, including negative and n-last indices, over every periodic pair.
func TestSelectPatternMatchesMaterializedSelect(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	sels := []calendar.Selection{
		calendar.SelectIndex(1), calendar.SelectIndex(3), calendar.SelectIndex(-1),
		calendar.SelectIndex(-2), calendar.SelectLast(), calendar.SelectList(1, 3, -1),
		calendar.SelectRange(2, 4), calendar.SelectRange(-3, -1), calendar.SelectIndex(99),
	}
	pairs := [][2]chronology.Granularity{
		{chronology.Day, chronology.Day},
		{chronology.Week, chronology.Day},
		{chronology.Month, chronology.Day},
		{chronology.Month, chronology.Month},
		{chronology.Year, chronology.Month},
	}
	rng := rand.New(rand.NewSource(5))
	for _, pr := range pairs {
		pat, err := periodic.ForBasicPair(ch, pr[0], pr[1])
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			lo := int64(rng.Intn(4000)) - 2000
			win := interval.Interval{
				Lo: chronology.TickFromOffset(lo),
				Hi: chronology.TickFromOffset(lo + int64(rng.Intn(900))),
			}
			v := &regVal{pat: pat, qmin: minI64, qmax: maxI64, win: win, gran: pr[1]}
			mat := calendar.ExpandPattern(pr[1], pat, win)
			for _, sel := range sels {
				got, ok := selectPattern(sel, v)
				if !ok {
					t.Fatalf("%v of %v in %v over %v: selectPattern refused", sel, pr[0], pr[1], win)
				}
				want, err := calendar.Select(sel, mat)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("%v of %v in %v over %v:\n pattern      %v\n materialized %v",
						sel, pr[0], pr[1], win, got, want)
				}
			}
			if v.cal != nil {
				t.Fatal("selectPattern materialized its operand")
			}
		}
	}
}

// Sharing reduces plan size when a calendar appears more than once.
func TestSharingReducesOps(t *testing.T) {
	env := propEnv(t)
	e, err := callang.ParseExpr("([1]/DAYS:during:WEEKS) + ([2]/DAYS:during:WEEKS)")
	if err != nil {
		t.Fatal(err)
	}
	pOn, err := CompileExpr(env, e, nil, d(1993, 1, 1), d(1993, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	envOff := *env
	envOff.DisableSharing = true
	pOff, err := CompileExpr(&envOff, e, nil, d(1993, 1, 1), d(1993, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	if len(pOn.Ops) >= len(pOff.Ops) {
		t.Errorf("shared plan has %d ops, unshared %d — sharing should shrink",
			len(pOn.Ops), len(pOff.Ops))
	}
	if pOn.GenerateCost() >= pOff.GenerateCost() {
		t.Errorf("shared cost %d should be below unshared %d", pOn.GenerateCost(), pOff.GenerateCost())
	}
}
