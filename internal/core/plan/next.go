// next.go implements the next-instant kernel: "when does this calendar fire
// next?" answered without materializing the whole lookahead window whenever
// the expression's shape allows it.
//
// Strategy, in order of preference:
//
//  1. Infinite pattern. A prepared expression that is a single basic
//     calendar maps to its exact periodic.Pattern; NextAfter answers in
//     O(log spans) arithmetic for any instant, forever.
//  2. Detected pattern / cached probe. Window-anchor-free expressions
//     (Tuesdays, third Fridays, month ends…) evaluate once over the full
//     horizon; the result is cached — compressed to a detected Pattern when
//     periodic — and subsequent queries answer by O(log n) search until
//     they near the cached window's end, where generation-edge effects
//     begin and a fresh probe re-anchors the cache.
//  3. Exponential doubling. Anchor-sensitive but end-stable expressions
//     (positive order-1 selections over stable operands) evaluate over a
//     window that starts small and doubles out to the horizon, stopping at
//     the first window that contains an instant.
//  4. Full-window fallback. Everything else — caloperate grouping,
//     end-relative selections, before/<= foreach, opaque derived calendars,
//     `today` — evaluates the full horizon window exactly like the seed
//     nextTrigger path, so genuinely aperiodic calendars keep their
//     semantics bit-for-bit.
package plan

import (
	"math"
	"sort"
	"sync"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
	"calsys/internal/core/periodic"
)

// DefaultHorizonDays bounds how far ahead a next-instant search looks when
// the caller does not configure a horizon (the rules engine's historical
// LookaheadDays default).
const DefaultHorizonDays = 730

// initialProbeDays is the first window of the exponential-doubling fallback.
const initialProbeDays = 64

// nextProfile classifies a prepared expression for the kernel.
//
// anchorFree: the expression's elements are intrinsic to the timeline — the
// materialization of a window is independent of where the window starts, so
// one probe's result can serve queries at any later instant it covers.
//
// endStable: extending the window's end only appends elements; anything
// found in a shorter window is exactly what a longer window would yield, so
// the doubling fallback is sound.
type nextProfile struct {
	anchorFree bool
	endStable  bool
}

func (a nextProfile) and(b nextProfile) nextProfile {
	return nextProfile{a.anchorFree && b.anchorFree, a.endStable && b.endStable}
}

// profileExpr classifies a prepared (inlined + factorized) expression.
// Anything unrecognized degrades to the pinned profile, which routes every
// query through the seed full-window path.
func profileExpr(cat Catalog, e callang.Expr) nextProfile {
	free := nextProfile{anchorFree: true, endStable: true}
	pinned := nextProfile{}
	switch n := e.(type) {
	case *callang.Ident:
		if n.Name == "today" {
			return pinned
		}
		if _, err := chronology.ParseGranularity(n.Name); err == nil {
			return free
		}
		if _, ok := cat.StoredCalendar(n.Name); ok {
			return free
		}
		// Opaque derived calendar (multi-statement script) or unknown name:
		// its script may read today or wait on the clock.
		return pinned
	case *callang.Number, *callang.StringLit:
		return free
	case *callang.LabelSelExpr:
		return profileExpr(cat, n.X)
	case *callang.ForeachExpr:
		switch n.Op {
		case interval.Before, interval.BeforeEquals:
			// Elements reach back to the window's start: anchored both ways.
			return pinned
		}
		return profileExpr(cat, n.X).and(profileExpr(cat, n.Y))
	case *callang.IntersectExpr:
		return profileExpr(cat, n.X).and(profileExpr(cat, n.Y))
	case *callang.BinExpr:
		return profileExpr(cat, n.X).and(profileExpr(cat, n.Y))
	case *callang.SelectExpr:
		p := profileExpr(cat, n.X)
		if exprOrder(n.X) >= 2 {
			// Per-group selection: each group is an intrinsic unit (the third
			// Friday of a month does not care where the window starts).
			return p
		}
		// An order-1 selection indexes the windowed list itself: anchored at
		// the window start, and end-stable only while no index counts from
		// the end of the list.
		if !p.endStable || selEndRelative(n.Pred) {
			return pinned
		}
		return nextProfile{endStable: true}
	case *callang.CallExpr:
		switch n.Name {
		case "interval", "points", "generate":
			return free
		case "caloperate":
			// Groups count off from the window's first element, and a partial
			// trailing group reshapes as the window end moves.
			return pinned
		}
		return pinned
	}
	return pinned
}

// exprOrder estimates the order of an expression's value — whether selection
// over it applies per sub-group (order ≥ 2) or to the windowed list itself.
func exprOrder(e callang.Expr) int {
	switch n := e.(type) {
	case *callang.ForeachExpr:
		return 2
	case *callang.SelectExpr:
		if n.Pred.Single() {
			return 1 // single selection collapses one level
		}
		return exprOrder(n.X)
	case *callang.CallExpr:
		if n.Name == "caloperate" {
			return 2
		}
	}
	return 1
}

// selEndRelative reports whether any predicate item resolves against the end
// of the list ([n], negative positions, or ranges touching either).
func selEndRelative(s calendar.Selection) bool {
	for _, it := range s.Items {
		switch {
		case it.Last:
			return true
		case it.Range:
			if it.From <= 0 || it.To <= 0 {
				return true
			}
		default:
			if it.Pos < 0 {
				return true
			}
		}
	}
	return false
}

// granSlack is the maximum width of one unit, in seconds — how far a
// window-straddling element of that granularity can reach past a window
// edge.
var granSlack = map[chronology.Granularity]int64{
	chronology.Second:  1,
	chronology.Minute:  60,
	chronology.Hour:    3600,
	chronology.Day:     chronology.SecondsPerDay,
	chronology.Week:    7 * chronology.SecondsPerDay,
	chronology.Month:   31 * chronology.SecondsPerDay,
	chronology.Year:    366 * chronology.SecondsPerDay,
	chronology.Decade:  3653 * chronology.SecondsPerDay,
	chronology.Century: 36525 * chronology.SecondsPerDay,
}

// exprSlack bounds the generation-edge effects of one windowed evaluation:
// elements within this many seconds of the window's end may differ from what
// a longer window yields (straddling units, groups cut short), so cached
// answers are only served below it.
func exprSlack(e callang.Expr) int64 {
	if id, ok := e.(*callang.Ident); ok {
		if g, err := chronology.ParseGranularity(id.Name); err == nil {
			return granSlack[g]
		}
		if id.Name == "today" {
			return 0
		}
		// Stored or derived calendars hold absolute values; allow a year of
		// straddle for their elements.
		return granSlack[chronology.Year]
	}
	var max int64
	for _, c := range e.Children() {
		if s := exprSlack(c); s > max {
			max = s
		}
	}
	return max
}

// A Scheduler answers next-instant queries for one prepared expression. It
// is safe for concurrent use; the rules engine shares one Scheduler among
// all rules over the same prepared plan (shared-plan fan-out), so the probe
// cost below is paid once per plan, not once per rule.
type Scheduler struct {
	env     *Env
	prepped callang.Expr
	gran    chronology.Granularity

	mu            sync.Mutex
	horizonDays   int64
	forceWindowed bool
	prof          nextProfile
	slack         int64
	planText      string
	probes        int64 // windowed evaluations performed

	// exact is the infinite-pattern fast path: the prepared expression is a
	// single basic calendar — or a composition the symbolic calculus lowered
	// to closed form — answered by arithmetic with no evaluation ever.
	exact *periodic.Pattern

	// dormant marks an expression the symbolic calculus proved empty on
	// every window: NextAfter answers ok=false without ever evaluating.
	dormant bool

	// Anchor-free probe cache: the materialized horizon starting at anchor,
	// compressed to a detected pattern valid on [qmin, qmax] when periodic,
	// else kept as the sorted element start ticks.
	pat        *periodic.Pattern
	qmin, qmax int64
	starts     []chronology.Tick
	anchor     int64 // epoch second the cached probe was anchored at
	safeThru   int64 // serve cached answers at or before this instant
	haveCache  bool
}

// NewScheduler builds a scheduler for a prepared expression (the output of
// Prepare). The environment's catalog must stay fixed for the scheduler's
// lifetime; the rules engine keys schedulers by catalog generation and
// rebuilds them on change.
func NewScheduler(env *Env, prepped callang.Expr, gran chronology.Granularity) *Scheduler {
	s := &Scheduler{
		env:         env,
		prepped:     prepped,
		gran:        gran,
		horizonDays: DefaultHorizonDays,
	}
	s.prof = profileExpr(env.Cat, prepped)
	s.slack = 2 * exprSlack(prepped)
	if id, ok := prepped.(*callang.Ident); ok && !env.DisablePeriodic {
		if g, err := chronology.ParseGranularity(id.Name); err == nil {
			if p, perr := periodic.ForBasicPair(env.Chron, g, gran); perr == nil {
				s.exact = p
			}
		}
	}
	if s.exact == nil && !env.DisablePeriodic && !env.DisableSymbolic {
		// Whole-expression symbolic lowering: compositions (selections over
		// groupings, unions, differences) get the same arithmetic-only path
		// as basic calendars, and provably-empty expressions never probe.
		if p, ok := SymbolicPattern(env, prepped, gran); ok {
			if p == nil {
				s.dormant = true
			} else {
				s.exact = p
			}
		}
	}
	return s
}

// Configure sets the lookahead horizon in days (≤ 0 keeps the current value)
// and the windowed-ablation switch, under which every query evaluates the
// full horizon window — the seed behavior.
func (s *Scheduler) Configure(horizonDays int64, forceWindowed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if horizonDays > 0 && horizonDays != s.horizonDays {
		s.horizonDays = horizonDays
		s.haveCache, s.pat, s.starts = false, nil, nil
	}
	s.forceWindowed = forceWindowed
}

// PlanString returns the rendering of the most recently compiled plan (set
// by the first NextAfter call) for the RULE-INFO catalog.
func (s *Scheduler) PlanString() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.planText
}

// Probes reports how many windowed evaluations the scheduler has run — the
// work the kernel amortizes away.
func (s *Scheduler) Probes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.probes
}

// NextAfter returns the first instant (epoch seconds) at which the
// expression fires strictly after `after`, searching at most the configured
// horizon ahead. ok is false when the expression is dormant over the whole
// horizon. The result is identical to evaluating the full horizon window
// and scanning for the minimum start strictly after `after` (the seed
// nextTrigger semantics); only the work differs.
func (s *Scheduler) NextAfter(after int64) (at int64, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.env.Chron
	from := ch.CivilOfDayTick(ch.TickAt(chronology.Day, after))
	to := from.AddDays(s.horizonDays)
	hwin, err := CivilWindow(ch, s.gran, from, to)
	if err != nil {
		return 0, false, err
	}
	if s.planText == "" {
		// Render the eval plan once even on pattern paths that never compile.
		p, cerr := Compile(s.env, s.prepped, nil, s.gran, hwin)
		if cerr != nil {
			return 0, false, cerr
		}
		s.planText = p.String()
	}
	if s.forceWindowed {
		return s.probeWindow(after, hwin)
	}
	if s.dormant {
		return 0, false, nil
	}
	if s.exact != nil {
		afterTick := ch.TickAt(s.gran, after)
		_, t := s.exact.NextAfter(afterTick)
		if t > hwin.Hi {
			return 0, false, nil
		}
		return ch.UnitStart(s.gran, t), true, nil
	}
	if s.prof.anchorFree {
		afterTick := ch.TickAt(s.gran, after)
		if at, ok, hit := s.cachedNext(after, afterTick); hit {
			return at, ok, nil
		}
		return s.probeWindow(after, hwin) // re-anchors the cache
	}
	if s.prof.endStable {
		return s.probeDoubling(after, from, hwin)
	}
	return s.probeWindow(after, hwin)
}

// cachedNext serves a query from the cached probe. hit=false falls through
// to a fresh probe.
func (s *Scheduler) cachedNext(after int64, afterTick chronology.Tick) (at int64, ok, hit bool) {
	if !s.haveCache || after < s.anchor {
		return 0, false, false
	}
	var t chronology.Tick
	if s.pat != nil {
		nt, found := s.pat.NextAfterBetween(afterTick, s.qmin, s.qmax)
		if !found {
			return 0, false, false
		}
		t = nt
	} else {
		i := sort.Search(len(s.starts), func(i int) bool { return s.starts[i] > afterTick })
		if i == len(s.starts) {
			return 0, false, false
		}
		t = s.starts[i]
	}
	at = s.env.Chron.UnitStart(s.gran, t)
	if at > s.safeThru {
		// Too close to the cached window's end: edge effects possible.
		return 0, false, false
	}
	return at, true, true
}

// probeWindow evaluates the expression over one window and scans for the
// minimum start strictly after `after` — the seed path. On the anchor-free
// profile the materialization is also cached for subsequent queries.
func (s *Scheduler) probeWindow(after int64, win interval.Interval) (int64, bool, error) {
	cal, err := s.eval(win)
	if err != nil {
		return 0, false, err
	}
	ch := s.env.Chron
	ivs := cal.Flatten().Intervals()
	if !s.forceWindowed && s.prof.anchorFree {
		s.fillCache(after, win, ivs)
	}
	best, ok := int64(math.MaxInt64), false
	for _, iv := range ivs {
		if at := ch.UnitStart(s.gran, iv.Lo); at > after && at < best {
			best, ok = at, true
		}
	}
	if !ok {
		return 0, false, nil
	}
	return best, true, nil
}

func (s *Scheduler) eval(win interval.Interval) (*calendar.Calendar, error) {
	s.probes++
	p, err := Compile(s.env, s.prepped, nil, s.gran, win)
	if err != nil {
		return nil, err
	}
	s.planText = p.String()
	return p.Exec(s.env, nil)
}

// fillCache stores a probe's materialization, compressed to a detected
// pattern when the element list is periodic.
func (s *Scheduler) fillCache(after int64, win interval.Interval, ivs []interval.Interval) {
	sorted := make([]interval.Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Lo != sorted[j].Lo {
			return sorted[i].Lo < sorted[j].Lo
		}
		return sorted[i].Hi < sorted[j].Hi
	})
	s.pat, s.starts, s.haveCache = nil, nil, true
	s.anchor = after
	s.safeThru = s.env.Chron.UnitStart(s.gran, win.Hi) - s.slack
	if !s.env.DisablePeriodic {
		if p, qmin, qmax, ok := periodic.Detect(sorted); ok {
			s.pat, s.qmin, s.qmax = p, qmin, qmax
			return
		}
	}
	starts := make([]chronology.Tick, len(sorted))
	for i, iv := range sorted {
		starts[i] = iv.Lo
	}
	s.starts = starts
}

// probeDoubling evaluates anchor-sensitive but end-stable expressions over
// an exponentially growing window: the window start stays pinned to the
// query (matching the seed path's anchoring) while the end doubles out to
// the horizon. End-stability means an instant found safely inside a shorter
// window is exactly what the full-horizon evaluation would return; finds
// within the edge-effect slack of a short window's end are distrusted and
// re-probed wider.
func (s *Scheduler) probeDoubling(after int64, from chronology.Civil, hwin interval.Interval) (int64, bool, error) {
	ch := s.env.Chron
	for days := int64(initialProbeDays); ; days *= 2 {
		last := days >= s.horizonDays
		win := hwin
		if !last {
			w, err := CivilWindow(ch, s.gran, from, from.AddDays(days))
			if err != nil {
				return 0, false, err
			}
			win = w
		}
		at, ok, err := s.probeWindow(after, win)
		if err != nil {
			return 0, false, err
		}
		if last || (ok && at <= ch.UnitStart(s.gran, win.Hi)-s.slack) {
			return at, ok, nil
		}
	}
}

// NextInstant answers "first instant strictly after `after`" for a prepared
// expression, searching horizonDays ahead (≤ 0 uses DefaultHorizonDays).
// ok=false means no instant within the horizon. This is the one-shot form
// of Scheduler for callers without an instance to amortize into.
func NextInstant(env *Env, prepped callang.Expr, gran chronology.Granularity, after int64, horizonDays int64) (int64, bool, error) {
	s := NewScheduler(env, prepped, gran)
	s.Configure(horizonDays, false)
	return s.NextAfter(after)
}
