package plan

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
	"calsys/internal/core/matcache"
	"calsys/internal/core/periodic"
)

// regVal is one register value: an eagerly materialized calendar, or a
// periodic pattern standing for the generation it came from. Pattern-backed
// values stay unexpanded until a consumer needs the interval list; a
// selection consumer never expands them at all, answering by index
// arithmetic on the pattern.
type regVal struct {
	cal        *calendar.Calendar
	pat        *periodic.Pattern
	qmin, qmax int64             // element-index validity range of pat
	win        interval.Interval // the inferred generation window pat stands over
	gran       chronology.Granularity
}

func eager(c *calendar.Calendar) *regVal { return &regVal{cal: c} }

// materialize expands a pattern-backed value over exactly its inferred
// generation window (no chunk padding: expansion is O(output), so there is
// nothing to amortize), memoizing the result for later consumers.
func (v *regVal) materialize() *calendar.Calendar {
	if v.cal == nil {
		v.cal = calendar.ExpandPatternBetween(v.gran, v.pat, v.win, v.qmin, v.qmax)
	}
	return v.cal
}

// execState carries per-evaluation caches shared across the plans of one
// script run, so that a calendar referenced by several statements is
// generated once (the paper's shared-calendar marking).
type execState struct {
	genCache map[string]*regVal
	depth    int
	// deriving is the stack of opaque derivations currently being evaluated,
	// used to report the full path of a reference cycle (A → B → A).
	deriving []string
}

// maxDerivedDepth bounds nested opaque-derivation evaluation.
const maxDerivedDepth = 16

func newExecState() *execState {
	return &execState{genCache: map[string]*regVal{}}
}

// Exec runs the plan and returns the result calendar. vars supplies script
// temporaries referenced by OpVar (nil when none).
func (p *Plan) Exec(env *Env, vars map[string]*calendar.Calendar) (*calendar.Calendar, error) {
	return p.exec(env, vars, newExecState())
}

func (p *Plan) exec(env *Env, vars map[string]*calendar.Calendar, st *execState) (*calendar.Calendar, error) {
	p.prefetchGenerates(env, st)
	regs := make([]*regVal, len(p.Ops))
	getVal := func(r Reg) (*regVal, error) {
		if r < 0 || int(r) >= len(regs) || regs[r] == nil {
			return nil, fmt.Errorf("plan: register %%t%d not populated", r)
		}
		return regs[r], nil
	}
	get := func(r Reg) (*calendar.Calendar, error) {
		v, err := getVal(r)
		if err != nil {
			return nil, err
		}
		return v.materialize(), nil
	}
	for i, op := range p.Ops {
		v, err := p.execVal(env, vars, st, op, getVal, get)
		if err != nil {
			return nil, fmt.Errorf("plan: %s: %w", op, err)
		}
		regs[i] = v
	}
	v, err := getVal(p.Result)
	if err != nil {
		return nil, err
	}
	return v.materialize(), nil
}

func genKey(op Op, g chronology.Granularity) string {
	return fmt.Sprintf("G|%v|%v|%v", op.Of, g, op.Win)
}

// execVal evaluates ops whose results can stay pattern-backed — OpGenerate
// (produces patterns) and OpSelect (consumes them without materializing) —
// and defers everything else to the materialized execOp path.
func (p *Plan) execVal(env *Env, vars map[string]*calendar.Calendar, st *execState, op Op, getVal func(Reg) (*regVal, error), get func(Reg) (*calendar.Calendar, error)) (*regVal, error) {
	switch op.Kind {
	case OpGenerate:
		key := genKey(op, p.Gran)
		if !env.DisableSharing {
			if v, ok := st.genCache[key]; ok {
				return v, nil
			}
		}
		if v, ok := p.patternValue(env, op); ok {
			st.genCache[key] = v
			return v, nil
		}
		c, err := p.generateShared(env, op)
		if err != nil {
			return nil, err
		}
		v := eager(c)
		st.genCache[key] = v
		return v, nil
	case OpSelect:
		v, err := getVal(op.A)
		if err != nil {
			return nil, err
		}
		if v.cal == nil && v.pat != nil {
			if c, ok := selectPattern(op.Sel, v); ok {
				return eager(c), nil
			}
		}
		c, err := calendar.Select(op.Sel, v.materialize())
		if err != nil {
			return nil, err
		}
		return eager(c), nil
	}
	c, err := p.execOp(env, vars, st, op, get)
	if err != nil {
		return nil, err
	}
	return eager(c), nil
}

// patternValue answers an OpGenerate with a periodic pattern instead of a
// materialized list, when the environment shares periodic values and the
// (of, gran) pair is exactly periodic. Patterns are stored in the shared
// cache under an all-time window, so every later window of the same pair —
// from any evaluation in the process — is a hit.
func (p *Plan) patternValue(env *Env, op Op) (*regVal, bool) {
	if env.Mat == nil || env.DisableSharing || env.DisablePeriodic {
		return nil, false
	}
	key := matcache.Key{Scope: env.MatScope, ID: "G|" + op.Of.String(), Gran: p.Gran}
	if pat, qmin, qmax, ok := env.Mat.GetPattern(key, op.Win); ok {
		return &regVal{pat: pat, qmin: qmin, qmax: qmax, win: op.Win, gran: p.Gran}, true
	}
	pat, err := periodic.ForBasicPair(env.Chron, op.Of, p.Gran)
	if err != nil {
		return nil, false
	}
	env.Mat.PutPattern(key, matcache.AllTime, pat, math.MinInt64, math.MaxInt64)
	return &regVal{pat: pat, qmin: math.MinInt64, qmax: math.MaxInt64, win: op.Win, gran: p.Gran}, true
}

// selectPattern answers a selection over a pattern-backed generation by
// index arithmetic: the cardinality of the window and each selected element
// are O(1) pattern lookups, so [k]-style predicates never materialize the
// list they select from. Returns ok=false to fall back to the materialized
// path (bad predicate, or a window too large to index with int).
func selectPattern(sel calendar.Selection, v *regVal) (*calendar.Calendar, bool) {
	if err := sel.Check(); err != nil {
		return nil, false
	}
	first, last, ok := v.pat.IndexRange(v.win)
	if !ok {
		return calendar.Empty(v.gran), true
	}
	if first < v.qmin {
		first = v.qmin
	}
	if last > v.qmax {
		last = v.qmax
	}
	if first > last {
		return calendar.Empty(v.gran), true
	}
	n := last - first + 1
	if n <= 0 || n > math.MaxInt32 {
		return nil, false
	}
	idx := sel.Indices(int(n))
	ivs := make([]interval.Interval, 0, len(idx))
	for _, i := range idx {
		ivs = append(ivs, v.pat.Interval(first+int64(i)))
	}
	c, err := calendar.FromIntervals(v.gran, ivs)
	if err != nil {
		return nil, false
	}
	return c, true
}

func (p *Plan) execOp(env *Env, vars map[string]*calendar.Calendar, st *execState, op Op, get func(Reg) (*calendar.Calendar, error)) (*calendar.Calendar, error) {
	switch op.Kind {
	case OpGenerateCall:
		c, err := calendar.Generate(env.Chron, op.Of, op.In, op.Win.Lo, op.Win.Hi)
		if err != nil {
			return nil, err
		}
		return calendar.ConvertGran(env.Chron, c, p.Gran)
	case OpUnit:
		return calendar.Unit(env.Chron, op.Of, p.Gran, op.Tick)
	case OpLoad:
		c, ok := env.Cat.StoredCalendar(op.Name)
		if !ok {
			return nil, fmt.Errorf("stored calendar %q disappeared", op.Name)
		}
		conv, err := calendar.ConvertGran(env.Chron, c, p.Gran)
		if err != nil {
			return nil, err
		}
		if ls, ok := lifespanIn(env, op.Name, p.Gran); ok {
			return calendar.ClipToInterval(conv, ls)
		}
		return conv, nil
	case OpDerived:
		for _, active := range st.deriving {
			if strings.EqualFold(active, op.Name) {
				return nil, fmt.Errorf("derivation cycle: %s",
					callang.CyclePath(append(append([]string{}, st.deriving...), op.Name)))
			}
		}
		if st.depth >= maxDerivedDepth {
			return nil, fmt.Errorf("derivation of %q nested deeper than %d: %s",
				op.Name, maxDerivedDepth, callang.CyclePath(append(append([]string{}, st.deriving...), op.Name)))
		}
		script, ok := env.Cat.DerivationOf(op.Name)
		if !ok {
			return nil, fmt.Errorf("derived calendar %q disappeared", op.Name)
		}
		win := op.Win
		if ls, ok := lifespanIn(env, op.Name, p.Gran); ok {
			cut, overlap := win.Intersect(ls)
			if !overlap {
				// The requested window lies wholly outside the calendar's
				// lifespan: it describes no time points there.
				return calendar.Empty(p.Gran), nil
			}
			win = cut
		}
		dkey, cacheable := p.derivedKey(env, op.Name)
		if cacheable {
			if c, ok := env.Mat.Get(dkey, win); ok {
				return c, nil
			}
		}
		eval := func() (*calendar.Calendar, bool, error) {
			st.depth++
			st.deriving = append(st.deriving, op.Name)
			v, err := runScript(env, script, p.Gran, win, st)
			st.deriving = st.deriving[:len(st.deriving)-1]
			st.depth--
			if err != nil {
				return nil, false, fmt.Errorf("evaluating %q: %w", op.Name, err)
			}
			if v.Cal == nil {
				return nil, false, fmt.Errorf("derived calendar %q returned an alert string, not a calendar", op.Name)
			}
			out, err := calendar.ConvertGran(env.Chron, v.Cal, p.Gran)
			if err != nil {
				return nil, false, err
			}
			// Derived materializations are served back verbatim (not
			// sliced), so prime the endpoint index now: every later foreach
			// or set op against the cached value sweeps the flat bound
			// arrays instead of re-lowering the interval list.
			out.PrimeIndex()
			return out, false, nil
		}
		if !cacheable {
			out, _, err := eval()
			return out, err
		}
		if st.depth > 0 {
			// Nested derived references evaluate inline rather than flying:
			// depth is only incremented inside a flight leader's eval, so
			// keeping nested refs out of Do means a leader never waits on
			// another flight at its own level — the wait graph stays acyclic
			// (expression → derived → generate).
			out, _, err := eval()
			if err == nil {
				env.Mat.Put(dkey, win, out, false)
			}
			return out, err
		}
		return env.Mat.Do(dkey, win, eval)
	case OpVar:
		c, ok := vars[op.Name]
		if !ok {
			return nil, fmt.Errorf("unbound variable %q", op.Name)
		}
		return calendar.ConvertGran(env.Chron, c, p.Gran)
	case OpToday:
		if env.Now == nil {
			return nil, fmt.Errorf("`today` is unavailable: no clock in environment")
		}
		tick := env.Chron.TickAt(p.Gran, env.Now())
		return calendar.FromPoints(p.Gran, []chronology.Tick{tick})
	case OpConst:
		return op.Lit, nil
	case OpForeach:
		a, err := get(op.A)
		if err != nil {
			return nil, err
		}
		b, err := get(op.B)
		if err != nil {
			return nil, err
		}
		return calendar.Foreach(a, op.ListOp, op.Strict, b)
	case OpIntersect:
		return binSet(op, get, calendar.Intersect)
	case OpUnion:
		return binSet(op, get, calendar.Union)
	case OpDiff:
		return binSet(op, get, calendar.Diff)
	case OpCaloperate:
		a, err := get(op.A)
		if err != nil {
			return nil, err
		}
		return calendar.Caloperate(a, op.Counts)
	}
	return nil, fmt.Errorf("unimplemented op kind %d", int(op.Kind))
}

// generateShared evaluates one OpGenerate, consulting the process-wide
// materialization cache when the environment carries one. Cache misses
// generate a chunk-aligned superset of the requested window and store that,
// so the shifted, overlapping windows of later evaluations are served by
// slicing; the value returned for this request is always the exact slice
// over op.Win, which for the consecutive sorted runs of a generated basic
// calendar is identical to generating op.Win directly.
func (p *Plan) generateShared(env *Env, op Op) (*calendar.Calendar, error) {
	if env.Mat == nil || env.DisableSharing {
		return calendar.GenerateFull(env.Chron, op.Of, p.Gran, op.Win.Lo, op.Win.Hi)
	}
	key := matcache.Key{Scope: env.MatScope, ID: "G|" + op.Of.String(), Gran: p.Gran}
	if c, ok := env.Mat.Get(key, op.Win); ok {
		return c, nil
	}
	// Coalesce concurrent misses on the aligned chunk: N goroutines (the
	// prefetch pool, parallel rule probes, concurrent tenants) missing on
	// one popular calendar run exactly one padded generation between them.
	padded := matcache.AlignedWindow(op.Win)
	c, err := env.Mat.Do(key, padded, func() (*calendar.Calendar, bool, error) {
		return generated(calendar.GenerateFull(env.Chron, op.Of, p.Gran, padded.Lo, padded.Hi))
	})
	if err != nil {
		// Padding pushed the window somewhere generation rejects; fall back
		// to the exact request.
		return calendar.GenerateFull(env.Chron, op.Of, p.Gran, op.Win.Lo, op.Win.Hi)
	}
	return calendar.SliceOverlapping(c, op.Win), nil
}

// generated adapts GenerateFull's result to a flight's materialize shape:
// generated basic calendars are always sliceable runs.
func generated(c *calendar.Calendar, err error) (*calendar.Calendar, bool, error) {
	return c, true, err
}

// derivedKey returns the shared-cache key for a derived calendar's
// materialization at this plan's granularity, and whether caching is sound:
// the catalog must report a generation (for invalidation) and must vouch
// that the calendar is not volatile (no `today`, no clock waits, directly or
// transitively).
func (p *Plan) derivedKey(env *Env, name string) (matcache.Key, bool) {
	if env.Mat == nil || env.DisableSharing {
		return matcache.Key{}, false
	}
	vc, ok := env.Cat.(VersionedCatalog)
	if !ok {
		return matcache.Key{}, false
	}
	volc, ok := env.Cat.(VolatilityCatalog)
	if !ok || volc.VolatileOf(name) {
		return matcache.Key{}, false
	}
	return matcache.Key{
		Scope:   env.MatScope,
		ID:      "D|" + strings.ToLower(name),
		Version: vc.CatalogGeneration(),
		Gran:    p.Gran,
	}, true
}

// prefetchGenerates evaluates the distinct generate ops of a plan on a
// bounded worker pool before the sequential pass, so independent generations
// overlap on multicore hardware. Results land in the per-run cache; workers
// swallow errors, which the sequential pass then reproduces with the proper
// op context.
func (p *Plan) prefetchGenerates(env *Env, st *execState) {
	if env.DisableSharing || env.parallelism() <= 1 {
		return
	}
	type job struct {
		key string
		op  Op
	}
	var jobs []job
	seen := map[string]bool{}
	for _, op := range p.Ops {
		if op.Kind != OpGenerate {
			continue
		}
		key := genKey(op, p.Gran)
		if seen[key] || st.genCache[key] != nil {
			continue
		}
		seen[key] = true
		// Periodic pairs need no worker: building the pattern is O(1)-ish
		// and expansion is deferred to the consumer.
		if v, ok := p.patternValue(env, op); ok {
			st.genCache[key] = v
			continue
		}
		jobs = append(jobs, job{key, op})
	}
	if len(jobs) < 2 {
		return
	}
	workers := env.parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]*calendar.Calendar, len(jobs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if c, err := p.generateShared(env, jobs[i].op); err == nil {
				results[i] = c
			}
		}(i)
	}
	wg.Wait()
	for i, j := range jobs {
		if results[i] != nil {
			st.genCache[j.key] = eager(results[i])
		}
	}
}

// lifespanIn converts a calendar's day-tick lifespan to granularity g, when
// the catalog reports one.
func lifespanIn(env *Env, name string, g chronology.Granularity) (interval.Interval, bool) {
	lc, ok := env.Cat.(LifespanCatalog)
	if !ok {
		return interval.Interval{}, false
	}
	lo, hi, ok := lc.LifespanOf(name)
	if !ok {
		return interval.Interval{}, false
	}
	return convertWindow(env.Chron, chronology.Day, interval.Interval{Lo: lo, Hi: hi}, g), true
}

func binSet(op Op, get func(Reg) (*calendar.Calendar, error), f func(a, b *calendar.Calendar) (*calendar.Calendar, error)) (*calendar.Calendar, error) {
	a, err := get(op.A)
	if err != nil {
		return nil, err
	}
	b, err := get(op.B)
	if err != nil {
		return nil, err
	}
	// The set operators require order-1 operands; foreach chains can leave
	// order-2 results whose sub-structure is no longer meaningful to a
	// point-set operation, so flatten first.
	return f(a.Flatten(), b.Flatten())
}

// ExprNode aliases the language's expression type for callers that only
// import plan.
type ExprNode = callang.Expr

// Evaluate prepares, compiles and executes a calendar expression over a
// civil-date window.
func Evaluate(env *Env, e ExprNode, from, to chronology.Civil) (*calendar.Calendar, error) {
	p, err := CompileExpr(env, e, nil, from, to)
	if err != nil {
		return nil, err
	}
	return p.Exec(env, nil)
}

// EvaluateWindow is Evaluate with an explicit tick window at an explicit
// granularity (no inference).
func EvaluateWindow(env *Env, e ExprNode, gran chronology.Granularity, win interval.Interval) (*calendar.Calendar, error) {
	prepped, _, err := Prepare(env, e, nil)
	if err != nil {
		return nil, err
	}
	p, err := Compile(env, prepped, nil, gran, win)
	if err != nil {
		return nil, err
	}
	return p.Exec(env, nil)
}
