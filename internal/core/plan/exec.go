package plan

import (
	"fmt"
	"strings"
	"sync"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
	"calsys/internal/core/matcache"
)

// execState carries per-evaluation caches shared across the plans of one
// script run, so that a calendar referenced by several statements is
// generated once (the paper's shared-calendar marking).
type execState struct {
	genCache map[string]*calendar.Calendar
	depth    int
	// deriving is the stack of opaque derivations currently being evaluated,
	// used to report the full path of a reference cycle (A → B → A).
	deriving []string
}

// maxDerivedDepth bounds nested opaque-derivation evaluation.
const maxDerivedDepth = 16

func newExecState() *execState {
	return &execState{genCache: map[string]*calendar.Calendar{}}
}

// Exec runs the plan and returns the result calendar. vars supplies script
// temporaries referenced by OpVar (nil when none).
func (p *Plan) Exec(env *Env, vars map[string]*calendar.Calendar) (*calendar.Calendar, error) {
	return p.exec(env, vars, newExecState())
}

func (p *Plan) exec(env *Env, vars map[string]*calendar.Calendar, st *execState) (*calendar.Calendar, error) {
	p.prefetchGenerates(env, st)
	regs := make([]*calendar.Calendar, len(p.Ops))
	get := func(r Reg) (*calendar.Calendar, error) {
		if r < 0 || int(r) >= len(regs) || regs[r] == nil {
			return nil, fmt.Errorf("plan: register %%t%d not populated", r)
		}
		return regs[r], nil
	}
	for i, op := range p.Ops {
		v, err := p.execOp(env, vars, st, op, get)
		if err != nil {
			return nil, fmt.Errorf("plan: %s: %w", op, err)
		}
		regs[i] = v
	}
	return get(p.Result)
}

func (p *Plan) execOp(env *Env, vars map[string]*calendar.Calendar, st *execState, op Op, get func(Reg) (*calendar.Calendar, error)) (*calendar.Calendar, error) {
	switch op.Kind {
	case OpGenerate:
		key := fmt.Sprintf("G|%v|%v|%v", op.Of, p.Gran, op.Win)
		if !env.DisableSharing {
			if c, ok := st.genCache[key]; ok {
				return c, nil
			}
		}
		c, err := p.generateShared(env, op)
		if err != nil {
			return nil, err
		}
		st.genCache[key] = c
		return c, nil
	case OpGenerateCall:
		c, err := calendar.Generate(env.Chron, op.Of, op.In, op.Win.Lo, op.Win.Hi)
		if err != nil {
			return nil, err
		}
		return calendar.ConvertGran(env.Chron, c, p.Gran)
	case OpUnit:
		return calendar.Unit(env.Chron, op.Of, p.Gran, op.Tick)
	case OpLoad:
		c, ok := env.Cat.StoredCalendar(op.Name)
		if !ok {
			return nil, fmt.Errorf("stored calendar %q disappeared", op.Name)
		}
		conv, err := calendar.ConvertGran(env.Chron, c, p.Gran)
		if err != nil {
			return nil, err
		}
		if ls, ok := lifespanIn(env, op.Name, p.Gran); ok {
			return calendar.ClipToInterval(conv, ls)
		}
		return conv, nil
	case OpDerived:
		for _, active := range st.deriving {
			if strings.EqualFold(active, op.Name) {
				return nil, fmt.Errorf("derivation cycle: %s",
					callang.CyclePath(append(append([]string{}, st.deriving...), op.Name)))
			}
		}
		if st.depth >= maxDerivedDepth {
			return nil, fmt.Errorf("derivation of %q nested deeper than %d: %s",
				op.Name, maxDerivedDepth, callang.CyclePath(append(append([]string{}, st.deriving...), op.Name)))
		}
		script, ok := env.Cat.DerivationOf(op.Name)
		if !ok {
			return nil, fmt.Errorf("derived calendar %q disappeared", op.Name)
		}
		win := op.Win
		if ls, ok := lifespanIn(env, op.Name, p.Gran); ok {
			cut, overlap := win.Intersect(ls)
			if !overlap {
				// The requested window lies wholly outside the calendar's
				// lifespan: it describes no time points there.
				return calendar.Empty(p.Gran), nil
			}
			win = cut
		}
		dkey, cacheable := p.derivedKey(env, op.Name)
		if cacheable {
			if c, ok := env.Mat.Get(dkey, win); ok {
				return c, nil
			}
		}
		st.depth++
		st.deriving = append(st.deriving, op.Name)
		v, err := runScript(env, script, p.Gran, win, st)
		st.deriving = st.deriving[:len(st.deriving)-1]
		st.depth--
		if err != nil {
			return nil, fmt.Errorf("evaluating %q: %w", op.Name, err)
		}
		if v.Cal == nil {
			return nil, fmt.Errorf("derived calendar %q returned an alert string, not a calendar", op.Name)
		}
		out, err := calendar.ConvertGran(env.Chron, v.Cal, p.Gran)
		if err == nil && cacheable {
			env.Mat.Put(dkey, win, out, false)
		}
		return out, err
	case OpVar:
		c, ok := vars[op.Name]
		if !ok {
			return nil, fmt.Errorf("unbound variable %q", op.Name)
		}
		return calendar.ConvertGran(env.Chron, c, p.Gran)
	case OpToday:
		if env.Now == nil {
			return nil, fmt.Errorf("`today` is unavailable: no clock in environment")
		}
		tick := env.Chron.TickAt(p.Gran, env.Now())
		return calendar.FromPoints(p.Gran, []chronology.Tick{tick})
	case OpConst:
		return op.Lit, nil
	case OpForeach:
		a, err := get(op.A)
		if err != nil {
			return nil, err
		}
		b, err := get(op.B)
		if err != nil {
			return nil, err
		}
		return calendar.Foreach(a, op.ListOp, op.Strict, b)
	case OpIntersect:
		return binSet(op, get, calendar.Intersect)
	case OpUnion:
		return binSet(op, get, calendar.Union)
	case OpDiff:
		return binSet(op, get, calendar.Diff)
	case OpSelect:
		a, err := get(op.A)
		if err != nil {
			return nil, err
		}
		return calendar.Select(op.Sel, a)
	case OpCaloperate:
		a, err := get(op.A)
		if err != nil {
			return nil, err
		}
		return calendar.Caloperate(a, op.Counts)
	}
	return nil, fmt.Errorf("unimplemented op kind %d", int(op.Kind))
}

// generateShared evaluates one OpGenerate, consulting the process-wide
// materialization cache when the environment carries one. Cache misses
// generate a chunk-aligned superset of the requested window and store that,
// so the shifted, overlapping windows of later evaluations are served by
// slicing; the value returned for this request is always the exact slice
// over op.Win, which for the consecutive sorted runs of a generated basic
// calendar is identical to generating op.Win directly.
func (p *Plan) generateShared(env *Env, op Op) (*calendar.Calendar, error) {
	if env.Mat == nil || env.DisableSharing {
		return calendar.GenerateFull(env.Chron, op.Of, p.Gran, op.Win.Lo, op.Win.Hi)
	}
	key := matcache.Key{Scope: env.MatScope, ID: "G|" + op.Of.String(), Gran: p.Gran}
	if c, ok := env.Mat.Get(key, op.Win); ok {
		return c, nil
	}
	padded := matcache.AlignedWindow(op.Win)
	c, err := calendar.GenerateFull(env.Chron, op.Of, p.Gran, padded.Lo, padded.Hi)
	if err != nil {
		// Padding pushed the window somewhere generation rejects; fall back
		// to the exact request.
		return calendar.GenerateFull(env.Chron, op.Of, p.Gran, op.Win.Lo, op.Win.Hi)
	}
	env.Mat.Put(key, padded, c, true)
	return calendar.SliceOverlapping(c, op.Win), nil
}

// derivedKey returns the shared-cache key for a derived calendar's
// materialization at this plan's granularity, and whether caching is sound:
// the catalog must report a generation (for invalidation) and must vouch
// that the calendar is not volatile (no `today`, no clock waits, directly or
// transitively).
func (p *Plan) derivedKey(env *Env, name string) (matcache.Key, bool) {
	if env.Mat == nil || env.DisableSharing {
		return matcache.Key{}, false
	}
	vc, ok := env.Cat.(VersionedCatalog)
	if !ok {
		return matcache.Key{}, false
	}
	volc, ok := env.Cat.(VolatilityCatalog)
	if !ok || volc.VolatileOf(name) {
		return matcache.Key{}, false
	}
	return matcache.Key{
		Scope:   env.MatScope,
		ID:      "D|" + strings.ToLower(name),
		Version: vc.CatalogGeneration(),
		Gran:    p.Gran,
	}, true
}

// prefetchGenerates evaluates the distinct generate ops of a plan on a
// bounded worker pool before the sequential pass, so independent generations
// overlap on multicore hardware. Results land in the per-run cache; workers
// swallow errors, which the sequential pass then reproduces with the proper
// op context.
func (p *Plan) prefetchGenerates(env *Env, st *execState) {
	if env.DisableSharing || env.parallelism() <= 1 {
		return
	}
	type job struct {
		key string
		op  Op
	}
	var jobs []job
	seen := map[string]bool{}
	for _, op := range p.Ops {
		if op.Kind != OpGenerate {
			continue
		}
		key := fmt.Sprintf("G|%v|%v|%v", op.Of, p.Gran, op.Win)
		if seen[key] || st.genCache[key] != nil {
			continue
		}
		seen[key] = true
		jobs = append(jobs, job{key, op})
	}
	if len(jobs) < 2 {
		return
	}
	workers := env.parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]*calendar.Calendar, len(jobs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if c, err := p.generateShared(env, jobs[i].op); err == nil {
				results[i] = c
			}
		}(i)
	}
	wg.Wait()
	for i, j := range jobs {
		if results[i] != nil {
			st.genCache[j.key] = results[i]
		}
	}
}

// lifespanIn converts a calendar's day-tick lifespan to granularity g, when
// the catalog reports one.
func lifespanIn(env *Env, name string, g chronology.Granularity) (interval.Interval, bool) {
	lc, ok := env.Cat.(LifespanCatalog)
	if !ok {
		return interval.Interval{}, false
	}
	lo, hi, ok := lc.LifespanOf(name)
	if !ok {
		return interval.Interval{}, false
	}
	return convertWindow(env.Chron, chronology.Day, interval.Interval{Lo: lo, Hi: hi}, g), true
}

func binSet(op Op, get func(Reg) (*calendar.Calendar, error), f func(a, b *calendar.Calendar) (*calendar.Calendar, error)) (*calendar.Calendar, error) {
	a, err := get(op.A)
	if err != nil {
		return nil, err
	}
	b, err := get(op.B)
	if err != nil {
		return nil, err
	}
	// The set operators require order-1 operands; foreach chains can leave
	// order-2 results whose sub-structure is no longer meaningful to a
	// point-set operation, so flatten first.
	return f(a.Flatten(), b.Flatten())
}

// ExprNode aliases the language's expression type for callers that only
// import plan.
type ExprNode = callang.Expr

// Evaluate prepares, compiles and executes a calendar expression over a
// civil-date window.
func Evaluate(env *Env, e ExprNode, from, to chronology.Civil) (*calendar.Calendar, error) {
	p, err := CompileExpr(env, e, nil, from, to)
	if err != nil {
		return nil, err
	}
	return p.Exec(env, nil)
}

// EvaluateWindow is Evaluate with an explicit tick window at an explicit
// granularity (no inference).
func EvaluateWindow(env *Env, e ExprNode, gran chronology.Granularity, win interval.Interval) (*calendar.Calendar, error) {
	prepped, _, err := Prepare(env, e, nil)
	if err != nil {
		return nil, err
	}
	p, err := Compile(env, prepped, nil, gran, win)
	if err != nil {
		return nil, err
	}
	return p.Exec(env, nil)
}
