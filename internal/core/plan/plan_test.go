package plan

import (
	"strings"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
)

func d(y, m, day int) chronology.Civil { return chronology.Civil{Year: y, Month: m, Day: day} }

// env1987 builds an environment anchored at the paper's system start date.
func env1987(t testing.TB) (*Env, *MapCatalog) {
	t.Helper()
	cat := NewMapCatalog()
	env := &Env{Chron: chronology.MustNew(chronology.DefaultEpoch), Cat: cat}
	return env, cat
}

func defineScript(t testing.TB, cat *MapCatalog, name, src string, kind chronology.Granularity) {
	t.Helper()
	s, err := callang.ParseScript(src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	cat.Scripts[name] = s
	cat.Kinds[name] = kind
}

func expr(t testing.TB, src string) callang.Expr {
	t.Helper()
	e, err := callang.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

// Figure 1: the calendar Tuesdays, derived by [2]/DAYS:during:WEEKS ("the
// 2nd day of every week"; Monday is 1). Evaluated over January 1993, the
// Tuesdays include Dec 29 1992 (the week straddling the window start).
func TestFigure1Tuesdays(t *testing.T) {
	env, _ := env1987(t)
	got, err := Evaluate(env, expr(t, "[2]/DAYS:during:WEEKS"), d(1993, 1, 1), d(1993, 1, 31))
	if err != nil {
		t.Fatal(err)
	}
	// Jan 1 1993 is day tick 2193; Tuesdays: Dec 29 (2190), Jan 5 (2197),
	// Jan 12 (2204), Jan 19 (2211), Jan 26 (2218).
	want := "{(2190,2190),(2197,2197),(2204,2204),(2211,2211),(2218,2218)}"
	if got.String() != want {
		t.Errorf("Tuesdays = %v, want %v", got, want)
	}
	// Every selected day is in fact a Tuesday.
	for _, iv := range got.Intervals() {
		if w := env.Chron.WeekdayOfDayTick(iv.Lo); w != chronology.Tuesday {
			t.Errorf("day %d is %v, not Tuesday", iv.Lo, w)
		}
	}
}

// Example 1 of §3.4 end to end: "Mondays during January 1993".
func TestExample1MondaysEndToEnd(t *testing.T) {
	env, cat := env1987(t)
	defineScript(t, cat, "Mondays", "[1]/DAYS:during:WEEKS;", chronology.Day)
	defineScript(t, cat, "Januarys", "[1]/MONTHS:during:YEARS;", chronology.Month)
	got, err := Evaluate(env, expr(t, "Mondays:during:Januarys:during:1993/YEARS"),
		d(1987, 1, 1), d(1994, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	// Mondays of January 1993: Jan 4, 11, 18, 25 = day ticks 2196..2217.
	want := "{(2196,2196),(2203,2203),(2210,2210),(2217,2217)}"
	if got.Flatten().String() != want {
		t.Errorf("Mondays during January 1993 = %v, want %v", got, want)
	}
}

// Example 2 of §3.4 end to end: "Third week in January 1993".
func TestExample2ThirdWeekEndToEnd(t *testing.T) {
	env, cat := env1987(t)
	defineScript(t, cat, "Third_Weeks", "[3]/WEEKS:overlaps:MONTHS;", chronology.Week)
	defineScript(t, cat, "Januarys", "[1]/MONTHS:during:YEARS;", chronology.Month)
	got, err := Evaluate(env, expr(t, "Third_Weeks:during:Januarys:during:1993/YEARS"),
		d(1987, 1, 1), d(1994, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	// §3.1 gives the third week of January 1993 as (11,17) in 1993-anchored
	// day ticks; in 1987-anchored ticks that is (2203,2209).
	want := "{(2203,2209)}"
	if got.Flatten().String() != want {
		t.Errorf("third week in January 1993 = %v, want %v", got, want)
	}
}

// Factorized and unfactorized plans must agree (the rewrite preserves
// semantics) while the factorized plan is smaller.
func TestFactorizationPreservesSemantics(t *testing.T) {
	env, cat := env1987(t)
	defineScript(t, cat, "Mondays", "[1]/DAYS:during:WEEKS;", chronology.Day)
	defineScript(t, cat, "Januarys", "[1]/MONTHS:during:YEARS;", chronology.Month)
	defineScript(t, cat, "Third_Weeks", "[3]/WEEKS:overlaps:MONTHS;", chronology.Week)
	for _, src := range []string{
		"Mondays:during:Januarys:during:1993/YEARS",
		"Third_Weeks:during:Januarys:during:1993/YEARS",
	} {
		fast, err := Evaluate(env, expr(t, src), d(1987, 1, 1), d(1994, 12, 31))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		envSlow := *env
		envSlow.DisableFactorization = true
		slow, err := Evaluate(&envSlow, expr(t, src), d(1987, 1, 1), d(1994, 12, 31))
		if err != nil {
			t.Fatalf("%s unfactorized: %v", src, err)
		}
		if !fast.Flatten().ToSet().Equal(slow.Flatten().ToSet()) {
			t.Errorf("%s: factorized %v != unfactorized %v", src, fast, slow)
		}
	}
}

// §3.4: "for the expressions to be evaluated, calendars need only be
// generated for the time interval 1993" — window inference must narrow every
// generation window to (a straddle of) 1993 even when the base window spans
// 1987-1994.
func TestWindowInference(t *testing.T) {
	env, cat := env1987(t)
	defineScript(t, cat, "Mondays", "[1]/DAYS:during:WEEKS;", chronology.Day)
	defineScript(t, cat, "Januarys", "[1]/MONTHS:during:YEARS;", chronology.Month)
	p, err := CompileExpr(env, expr(t, "Mondays:during:Januarys:during:1993/YEARS"),
		nil, d(1987, 1, 1), d(1994, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	// 1993 in 1987-anchored day ticks is (2193,2557); windows may straddle
	// by at most one week for week-aligned calendars.
	for _, op := range p.Ops {
		if op.Kind == OpGenerate {
			if op.Win.Lo < 2193-7 || op.Win.Hi > 2557+7 {
				t.Errorf("generation window %v not narrowed to 1993 (2193,2557):\n%s", op.Win, p)
			}
		}
	}
	// With inference disabled, windows stay at the full base range.
	envOff := *env
	envOff.DisableWindowInference = true
	pOff, err := CompileExpr(&envOff, expr(t, "Mondays:during:Januarys:during:1993/YEARS"),
		nil, d(1987, 1, 1), d(1994, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	if pOff.GenerateCost() <= p.GenerateCost() {
		t.Errorf("windowed cost %d should be below unwindowed %d",
			p.GenerateCost(), pOff.GenerateCost())
	}
	// Both plans agree on the result.
	a, err := p.Exec(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pOff.Exec(&envOff, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Flatten().ToSet().Equal(b.Flatten().ToSet()) {
		t.Errorf("windowed %v != unwindowed %v", a, b)
	}
}

// A shared sub-calendar (DAYS twice) compiles to a single register (the
// paper's "avoid generating values of the calendar unnecessarily").
func TestSharedCalendarCSE(t *testing.T) {
	env, _ := env1987(t)
	p, err := CompileExpr(env, expr(t, "([1]/DAYS:during:WEEKS) + ([2]/DAYS:during:WEEKS)"),
		nil, d(1993, 1, 1), d(1993, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	genOps := 0
	for _, op := range p.Ops {
		if op.Kind == OpGenerate {
			genOps++
		}
	}
	if genOps != 2 { // one for DAYS, one for WEEKS — not four
		t.Errorf("generate ops = %d, want 2 (shared DAYS and WEEKS):\n%s", genOps, p)
	}
}

func TestLabelSelectionGranularities(t *testing.T) {
	env, _ := env1987(t)
	// 1993/YEARS at month granularity spans month ticks (73,84).
	got, err := Evaluate(env, expr(t, "MONTHS:during:1993/YEARS"), d(1987, 1, 1), d(1995, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	flat := got.Flatten()
	if flat.Len() != 12 || flat.Interval(0) != interval.Must(73, 73) || flat.Interval(11) != interval.Must(84, 84) {
		t.Errorf("months of 1993 = %v", flat)
	}
}

func TestGenerateCallMatchesPaper(t *testing.T) {
	env, _ := env1987(t)
	got, err := Evaluate(env, expr(t, `generate(YEARS, DAYS, "Jan 1 1987", "Jan 3 1992")`),
		d(1987, 1, 1), d(1994, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	want := "{(1,365),(366,731),(732,1096),(1097,1461),(1462,1826),(1827,1829)}"
	if got.String() != want {
		t.Errorf("generate(...) = %v, want %v", got, want)
	}
}

func TestCaloperateCall(t *testing.T) {
	env, _ := env1987(t)
	got, err := Evaluate(env, expr(t, `caloperate(generate(MONTHS, DAYS, "Jan 1 1993", "Dec 31 1993"), 3)`),
		d(1993, 1, 1), d(1993, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	// Quarters of 1993 in 1987-anchored day ticks (Jan 1 1993 = 2193).
	want := "{(2193,2282),(2283,2373),(2374,2465),(2466,2557)}"
	if got.String() != want {
		t.Errorf("quarters = %v, want %v", got, want)
	}
}

func TestIntervalAndPointsCalls(t *testing.T) {
	env, _ := env1987(t)
	got, err := Evaluate(env, expr(t, "DAYS:during:interval(1, 7)"), d(1987, 1, 1), d(1987, 1, 31))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 7 {
		t.Errorf("days during (1,7) = %v", got)
	}
	got, err = Evaluate(env, expr(t, "points(1, 5, 9) + points(12)"), d(1987, 1, 1), d(1987, 1, 31))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "{(1,1),(5,5),(9,9),(12,12)}" {
		t.Errorf("points union = %v", got)
	}
}

func TestStoredCalendarLoad(t *testing.T) {
	env, cat := env1987(t)
	hol, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{31, 90})
	cat.Stored["HOLIDAYS"] = hol
	cat.Kinds["HOLIDAYS"] = chronology.Day
	got, err := Evaluate(env, expr(t, "([n]/DAYS:during:MONTHS):intersects:HOLIDAYS"),
		d(1987, 1, 1), d(1987, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	// Day 31 is the last day of January 1987; day 90 is not a month end
	// (March 31 1987 is day 90 — it is). Check against the algebra directly.
	if got.String() != "{(31,31),(90,90)}" {
		t.Errorf("month-end holidays = %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	env, cat := env1987(t)
	cases := []string{
		"NO_SUCH_CAL",
		"5",
		`"stray string"`,
		"1993/(DAYS:during:WEEKS)", // label selection needs a basic calendar
		"1993/UNKNOWN",
		"bogus(DAYS)",
		"generate(DAYS)",
		`generate(NOPE, DAYS, "Jan 1 1987", "Jan 2 1987")`,
		`generate(YEARS, DAYS, "bad date", "Jan 2 1987")`,
		`generate(YEARS, DAYS, 5, "Jan 2 1987")`,
		"caloperate(DAYS)",
		"caloperate(DAYS, WEEKS)",
		"interval(1)",
		"interval(5, 1)",
		"interval(DAYS, 5)",
		"points()",
		"points(DAYS)",
		"points(0)",
		"today", // no clock configured
	}
	for _, src := range cases {
		if _, err := Evaluate(env, expr(t, src), d(1993, 1, 1), d(1993, 12, 31)); err == nil {
			t.Errorf("Evaluate(%q) should fail", src)
		}
	}
	_ = cat
}

func TestTodayOp(t *testing.T) {
	env, _ := env1987(t)
	now := env.Chron.EpochSecondsOf(d(1993, 1, 5)) + 3600
	env.Now = func() int64 { return now }
	got, err := Evaluate(env, expr(t, "DAYS:intersects:today"), d(1993, 1, 1), d(1993, 1, 31))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "{(2197,2197)}" {
		t.Errorf("today = %v, want {(2197,2197)} (Jan 5 1993)", got)
	}
}

func TestPlanString(t *testing.T) {
	env, _ := env1987(t)
	p, err := CompileExpr(env, expr(t, "[2]/DAYS:during:WEEKS"), nil, d(1993, 1, 1), d(1993, 1, 31))
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"GENERATE DAYS", "GENERATE WEEKS", "FOREACH", "SELECT [2]", "RESULT"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, s)
		}
	}
}

func TestEvaluateWindow(t *testing.T) {
	env, _ := env1987(t)
	got, err := EvaluateWindow(env, expr(t, "WEEKS"), chronology.Day, interval.Must(1, 31))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 || got.Interval(0).Lo > 1 {
		t.Errorf("weeks of January 1987 = %v", got)
	}
}

func TestCivilWindowValidation(t *testing.T) {
	env, _ := env1987(t)
	if _, err := CivilWindow(env.Chron, chronology.Day, d(1993, 2, 30), d(1993, 3, 1)); err == nil {
		t.Error("invalid date should be rejected")
	}
	if _, err := CivilWindow(env.Chron, chronology.Day, d(1994, 1, 1), d(1993, 1, 1)); err == nil {
		t.Error("reversed window should be rejected")
	}
	w, err := CivilWindow(env.Chron, chronology.Day, d(1987, 1, 1), d(1987, 1, 1))
	if err != nil || w != interval.Must(1, 1) {
		t.Errorf("single-day window = %v, %v", w, err)
	}
}

func TestGranularityConflict(t *testing.T) {
	env, _ := env1987(t)
	// SECONDS in a DAY-granularity plan must fail (cannot express seconds in
	// coarser day ticks).
	prepped, _, err := Prepare(env, expr(t, "SECONDS:during:DAYS"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(env, prepped, nil, chronology.Day, interval.Must(1, 10)); err == nil {
		t.Error("seconds at day granularity should fail")
	}
}
