// Package plan implements evaluation plans for calendar expressions (§3.4 of
// the paper): a compiler from factorized ASTs to a procedural IR with
// generation windows inferred by selection look-ahead, an executor that
// generates each distinct calendar once, and an interpreter for calendar
// scripts (assignments, if, while, return) used by derived calendars and
// temporal rules.
package plan

import (
	"fmt"
	"runtime"
	"strings"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
	"calsys/internal/core/matcache"
)

// Catalog resolves calendar names for compilation and execution. The
// database's CALENDARS table implements this; tests use MapCatalog.
type Catalog interface {
	// DerivationOf returns the parsed derivation script of a derived
	// calendar.
	DerivationOf(name string) (*callang.Script, bool)
	// ElemKindOf returns the element kind of a named calendar (basic names
	// resolve to themselves).
	ElemKindOf(name string) (chronology.Granularity, bool)
	// StoredCalendar returns the explicitly stored values of a calendar
	// such as HOLIDAYS.
	StoredCalendar(name string) (*calendar.Calendar, bool)
}

// LifespanCatalog is an optional Catalog extension reporting the validity
// range of a named calendar in day ticks (the lifespan column of Figure 1).
// When implemented, stored values are clipped to the lifespan and derived
// calendars are only evaluated inside it.
type LifespanCatalog interface {
	LifespanOf(name string) (lo, hi chronology.Tick, ok bool)
}

// UnboundedDayTick marks an open lifespan upper bound (the ∞ of Figure 1);
// derivations bounded below it are never inlined, so the lifespan clip in
// the derived-calendar path always applies to them.
const UnboundedDayTick = 3_000_000

// MapCatalog is an in-memory Catalog.
type MapCatalog struct {
	Scripts map[string]*callang.Script
	Kinds   map[string]chronology.Granularity
	Stored  map[string]*calendar.Calendar
}

// NewMapCatalog returns an empty in-memory catalog.
func NewMapCatalog() *MapCatalog {
	return &MapCatalog{
		Scripts: map[string]*callang.Script{},
		Kinds:   map[string]chronology.Granularity{},
		Stored:  map[string]*calendar.Calendar{},
	}
}

// DerivationOf implements Catalog.
func (m *MapCatalog) DerivationOf(name string) (*callang.Script, bool) {
	s, ok := m.Scripts[name]
	return s, ok
}

// ElemKindOf implements Catalog.
func (m *MapCatalog) ElemKindOf(name string) (chronology.Granularity, bool) {
	if g, err := chronology.ParseGranularity(name); err == nil {
		return g, true
	}
	g, ok := m.Kinds[name]
	return g, ok
}

// StoredCalendar implements Catalog.
func (m *MapCatalog) StoredCalendar(name string) (*calendar.Calendar, bool) {
	c, ok := m.Stored[name]
	return c, ok
}

// VersionedCatalog is an optional Catalog extension reporting a monotonic
// generation counter bumped on every catalog mutation (Define / Replace /
// Drop). The executor keys shared materializations of catalog-dependent
// calendars by this generation, so a mutation invalidates them wholesale.
type VersionedCatalog interface {
	CatalogGeneration() uint64
}

// VolatilityCatalog is an optional Catalog extension reporting whether a
// named calendar's value can change between evaluations of the same catalog
// generation (its derivation — directly or transitively — reads `today` or
// waits on the clock). Volatile calendars are never served from the shared
// materialization cache.
type VolatilityCatalog interface {
	VolatileOf(name string) bool
}

// Env carries everything evaluation needs: the chronology, the catalog, and
// the bindings to real time used by `today` and waiting while-loops.
type Env struct {
	Chron *chronology.Chronology
	Cat   Catalog
	// Mat is the shared cross-evaluation materialization cache; nil keeps
	// evaluation self-contained (per-run sharing only).
	Mat *matcache.Cache
	// MatScope namespaces this environment's entries in the shared cache
	// (one scope per catalog manager).
	MatScope string
	// Parallelism bounds the worker pool that evaluates independent
	// generate ops of one plan concurrently: 0 means GOMAXPROCS, 1 runs
	// serially.
	Parallelism int
	// Now returns the current instant in epoch seconds; nil makes `today`
	// unavailable.
	Now func() int64
	// Wait advances time during an empty-bodied while loop whose condition
	// is still true (the paper's "do nothing" wait). nil makes such loops
	// fail instead of spinning.
	Wait func() error
	// MaxWhileIters bounds while-loop iterations (default 100000).
	MaxWhileIters int
	// DisableWindowInference turns off the selection look-ahead of §3.4 and
	// generates every calendar over the full base window; used by the
	// benchmarks that measure the optimization's effect.
	DisableWindowInference bool
	// DisableFactorization turns off the §3.4 factorization rewrite; used
	// by the Figure 2/3 benchmarks comparing initial vs factorized plans.
	DisableFactorization bool
	// DisableSharing turns off common-subexpression sharing (the paper's
	// "mark any calendar that is encountered more than once to avoid
	// generating values of the calendar unnecessarily") and the per-run
	// generation cache; used by the ablation benchmarks.
	DisableSharing bool
	// DisablePeriodic turns off the compressed periodic representation of
	// generate ops (pattern lookup in the shared cache, O(1) selection
	// arithmetic, lazy windowed expansion), forcing full materialization;
	// used by the ablation benchmarks.
	DisablePeriodic bool
	// DisableSymbolic turns off the whole-expression symbolic pattern
	// calculus in the scheduler (compositions answered by closed-form
	// arithmetic instead of windowed probes); used by the ablation
	// benchmarks.
	DisableSymbolic bool
}

func (e *Env) maxWhile() int {
	if e.MaxWhileIters > 0 {
		return e.MaxWhileIters
	}
	return 100000
}

// parallelism resolves the generate-op worker-pool bound.
func (e *Env) parallelism() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Reg identifies a plan temporary (the %t_i of the procedural statements).
type Reg int

// OpKind enumerates plan operations.
type OpKind int

// Plan operations.
const (
	OpGenerate     OpKind = iota // generate basic calendar over a window (untruncated)
	OpGenerateCall               // surface generate() call (truncating, §3.2 semantics)
	OpUnit                       // one labeled unit (1993/YEARS)
	OpLoad                       // load a stored calendar's values
	OpDerived                    // evaluate an opaque derived calendar's script
	OpVar                        // read a script variable
	OpToday                      // the current tick as a point calendar
	OpConst                      // a literal calendar (interval()/points())
	OpForeach                    // strict or relaxed foreach with a listop
	OpIntersect                  // point-set intersection
	OpUnion                      // +
	OpDiff                       // -
	OpSelect                     // selection [pred]/
	OpCaloperate                 // caloperate grouping
)

// Op is one procedural statement of an evaluation plan.
type Op struct {
	Kind   OpKind
	Dst    Reg
	Of     chronology.Granularity // Generate, GenerateCall, Unit
	In     chronology.Granularity // GenerateCall
	Win    interval.Interval      // Generate, GenerateCall, Derived
	Tick   chronology.Tick        // Unit
	Name   string                 // Load, Derived, Var
	A, B   Reg                    // operands
	ListOp interval.ListOp        // Foreach
	Strict bool                   // Foreach
	Sel    calendar.Selection     // Select
	Counts []int                  // Caloperate
	Lit    *calendar.Calendar     // Const
}

// Plan is a compiled evaluation plan: the eval-plan column of the CALENDARS
// catalog (Figure 1).
type Plan struct {
	Gran   chronology.Granularity
	Window interval.Interval
	Ops    []Op
	Result Reg
}

// String renders the plan as procedural statements.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PLAN gran=%v window=%v\n", p.Gran, p.Window)
	for _, op := range p.Ops {
		b.WriteString("  ")
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  RESULT %%t%d", p.Result)
	return b.String()
}

// String renders one plan statement.
func (op Op) String() string {
	switch op.Kind {
	case OpGenerate:
		return fmt.Sprintf("%%t%d = GENERATE %v WINDOW %v", op.Dst, op.Of, op.Win)
	case OpGenerateCall:
		return fmt.Sprintf("%%t%d = GENERATE-CALL %v IN %v WINDOW %v", op.Dst, op.Of, op.In, op.Win)
	case OpUnit:
		return fmt.Sprintf("%%t%d = UNIT %v #%d", op.Dst, op.Of, op.Tick)
	case OpLoad:
		return fmt.Sprintf("%%t%d = LOAD %s", op.Dst, op.Name)
	case OpDerived:
		return fmt.Sprintf("%%t%d = EVAL %s WINDOW %v", op.Dst, op.Name, op.Win)
	case OpVar:
		return fmt.Sprintf("%%t%d = VAR %s", op.Dst, op.Name)
	case OpToday:
		return fmt.Sprintf("%%t%d = TODAY", op.Dst)
	case OpConst:
		return fmt.Sprintf("%%t%d = CONST %v", op.Dst, op.Lit)
	case OpForeach:
		mode := "STRICT"
		if !op.Strict {
			mode = "RELAXED"
		}
		return fmt.Sprintf("%%t%d = FOREACH %%t%d %s %%t%d %s", op.Dst, op.A, op.ListOp, op.B, mode)
	case OpIntersect:
		return fmt.Sprintf("%%t%d = INTERSECT %%t%d %%t%d", op.Dst, op.A, op.B)
	case OpUnion:
		return fmt.Sprintf("%%t%d = UNION %%t%d %%t%d", op.Dst, op.A, op.B)
	case OpDiff:
		return fmt.Sprintf("%%t%d = DIFF %%t%d %%t%d", op.Dst, op.A, op.B)
	case OpSelect:
		return fmt.Sprintf("%%t%d = SELECT %s %%t%d", op.Dst, op.Sel, op.A)
	case OpCaloperate:
		return fmt.Sprintf("%%t%d = CALOPERATE %%t%d %v", op.Dst, op.A, op.Counts)
	}
	return fmt.Sprintf("%%t%d = ?op%d", op.Dst, int(op.Kind))
}

// GenerateCost sums the window widths (in ticks) of all generation ops: the
// work the §3.4 optimizations are designed to reduce.
func (p *Plan) GenerateCost() int64 {
	var total int64
	for _, op := range p.Ops {
		switch op.Kind {
		case OpGenerate, OpGenerateCall:
			total += op.Win.Length()
		}
	}
	return total
}
