package plan

import (
	"math/rand"
	"sync"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
)

// nextTestExprs covers every kernel path: exact infinite patterns (bare basic
// calendars), detected-pattern caches (order-2 selections), doubling (order-1
// positive selections), and the pinned full-window fallback (caloperate
// grouping, end-relative selections, unions, intervals, derived and stored
// calendars).
var nextTestExprs = []string{
	"DAYS",
	"WEEKS",
	"MONTHS",
	"[1]/DAYS:during:WEEKS",
	"[2]/DAYS:during:WEEKS",
	"[3]/WEEKS:overlaps:MONTHS",
	"[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS",
	"[n]/DAYS:during:MONTHS",
	"[n]/DAYS:during:caloperate(MONTHS, 3)",
	"[1,2,3,4,5]/DAYS:during:WEEKS",
	"WEEKS:during:interval(2193, 2223)",
	"([1]/DAYS:during:WEEKS) + ([2]/DAYS:during:WEEKS)",
	"(DAYS:during:WEEKS) - ([1]/DAYS:during:WEEKS)",
	"[2]/(DAYS:during:MONTHS)",
	"Mondays",
	"HOLS:during:YEARS",
}

// nextPropEnv is the catalog for the next-instant properties: one derived
// calendar the preparer inlines and one stored calendar with absolute
// elements.
func nextPropEnv(t testing.TB) *Env {
	t.Helper()
	env, cat := env1987(t)
	defineScript(t, cat, "Mondays", "[1]/DAYS:during:WEEKS;", chronology.Day)
	hol, err := calendar.FromPoints(chronology.Day, []chronology.Tick{31, 390, 1126, 2250, 2990, 3330})
	if err != nil {
		t.Fatal(err)
	}
	cat.Stored["HOLS"] = hol
	cat.Kinds["HOLS"] = chronology.Day
	return env
}

func prepFor(t testing.TB, env *Env, src string) (callang.Expr, chronology.Granularity) {
	t.Helper()
	prepped, gran, err := Prepare(env, expr(t, src), nil)
	if err != nil {
		t.Fatalf("prepare %q: %v", src, err)
	}
	return prepped, gran
}

// The central kernel property: for every expression shape, a shared Scheduler
// answering a random walk of queries must agree exactly with the seed
// full-window path (forceWindowed evaluates the whole horizon and scans for
// the minimum start strictly after the query — bit-for-bit the old
// nextTrigger), and the one-shot NextInstant must agree with both.
func TestNextAfterMatchesWindowedMinimum(t *testing.T) {
	env := nextPropEnv(t)
	ch := env.Chron
	const horizonDays = 140
	base := ch.EpochSecondsOf(d(1991, 1, 1))
	span := ch.EpochSecondsOf(d(1996, 1, 1)) - base
	rng := rand.New(rand.NewSource(2026))
	for _, src := range nextTestExprs {
		prepped, gran := prepFor(t, env, src)
		kern := NewScheduler(env, prepped, gran)
		kern.Configure(horizonDays, false)
		ref := NewScheduler(env, prepped, gran)
		ref.Configure(horizonDays, true)
		for i := 0; i < 1000; i++ {
			after := base + rng.Int63n(span)
			got, gok, err := kern.NextAfter(after)
			if err != nil {
				t.Fatalf("%q: kernel NextAfter(%d): %v", src, after, err)
			}
			want, wok, err := ref.NextAfter(after)
			if err != nil {
				t.Fatalf("%q: windowed NextAfter(%d): %v", src, after, err)
			}
			if gok != wok || (gok && got != want) {
				t.Fatalf("%q: NextAfter(%d [%v]) = %d,%v; windowed minimum = %d,%v",
					src, after, ch.CivilOf(after), got, gok, want, wok)
			}
			if gok && got <= after {
				t.Fatalf("%q: NextAfter(%d) = %d, not strictly after", src, after, got)
			}
			// Subsample the one-shot form (a fresh Scheduler per call).
			if i%97 == 0 {
				one, ook, err := NextInstant(env, prepped, gran, after, horizonDays)
				if err != nil {
					t.Fatalf("%q: NextInstant(%d): %v", src, after, err)
				}
				if ook != wok || (ook && one != want) {
					t.Fatalf("%q: NextInstant(%d) = %d,%v; windowed minimum = %d,%v",
						src, after, one, ook, want, wok)
				}
			}
		}
	}
}

// Walking forward through consecutive answers (the firing pattern DBCRON
// drives) must also match the seed path: each answer feeds the next query, so
// cache re-anchoring and the safeThru edge are crossed repeatedly.
func TestNextAfterForwardWalk(t *testing.T) {
	env := nextPropEnv(t)
	ch := env.Chron
	const horizonDays = 140
	for _, src := range nextTestExprs {
		prepped, gran := prepFor(t, env, src)
		kern := NewScheduler(env, prepped, gran)
		kern.Configure(horizonDays, false)
		ref := NewScheduler(env, prepped, gran)
		ref.Configure(horizonDays, true)
		at := ch.EpochSecondsOf(d(1992, 11, 15))
		for step := 0; step < 200; step++ {
			got, gok, err := kern.NextAfter(at)
			if err != nil {
				t.Fatalf("%q: step %d: %v", src, step, err)
			}
			want, wok, err := ref.NextAfter(at)
			if err != nil {
				t.Fatalf("%q: step %d windowed: %v", src, step, err)
			}
			if gok != wok || (gok && got != want) {
				t.Fatalf("%q: step %d after %v: kernel %d,%v windowed %d,%v",
					src, step, ch.CivilOf(at), got, gok, want, wok)
			}
			if !gok {
				break // dormant beyond the horizon
			}
			at = got
		}
	}
}

// One Scheduler is shared by every rule in a plan group, so concurrent
// queries must be race-free and still individually exact (the CI race job
// runs this package under -race).
func TestNextAfterConcurrentSharedScheduler(t *testing.T) {
	env := nextPropEnv(t)
	ch := env.Chron
	const horizonDays = 140
	base := ch.EpochSecondsOf(d(1992, 1, 1))
	span := ch.EpochSecondsOf(d(1995, 1, 1)) - base
	for _, src := range []string{"[2]/DAYS:during:WEEKS", "[n]/DAYS:during:MONTHS", "[n]/DAYS:during:caloperate(MONTHS, 3)"} {
		prepped, gran := prepFor(t, env, src)

		// Precompute reference answers sequentially.
		rng := rand.New(rand.NewSource(7))
		afters := make([]int64, 200)
		wants := make([]int64, len(afters))
		woks := make([]bool, len(afters))
		ref := NewScheduler(env, prepped, gran)
		ref.Configure(horizonDays, true)
		for i := range afters {
			afters[i] = base + rng.Int63n(span)
			w, ok, err := ref.NextAfter(afters[i])
			if err != nil {
				t.Fatal(err)
			}
			wants[i], woks[i] = w, ok
		}

		shared := NewScheduler(env, prepped, gran)
		shared.Configure(horizonDays, false)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(afters); i += 4 {
					got, ok, err := shared.NextAfter(afters[i])
					if err != nil {
						t.Errorf("%q: concurrent NextAfter(%d): %v", src, afters[i], err)
						return
					}
					if ok != woks[i] || (ok && got != wants[i]) {
						t.Errorf("%q: concurrent NextAfter(%d) = %d,%v, want %d,%v",
							src, afters[i], got, ok, wants[i], woks[i])
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
}

// The kernel must amortize: a forward walk over a periodic expression may
// probe (evaluate a window) only a handful of times, where the seed path
// probes once per query.
func TestNextAfterAmortizesProbes(t *testing.T) {
	env := nextPropEnv(t)
	ch := env.Chron
	prepped, gran := prepFor(t, env, "[2]/DAYS:during:WEEKS")
	s := NewScheduler(env, prepped, gran)
	s.Configure(DefaultHorizonDays, false)
	at := ch.EpochSecondsOf(d(1993, 1, 1))
	for i := 0; i < 52; i++ { // a year of weekly firings
		next, ok, err := s.NextAfter(at)
		if err != nil || !ok {
			t.Fatalf("step %d: next=%v ok=%v err=%v", i, next, ok, err)
		}
		at = next
	}
	if p := s.Probes(); p > 2 {
		t.Errorf("52 weekly steps cost %d probes, want <= 2", p)
	}
	// The bare basic calendar never probes at all: pure pattern arithmetic.
	preppedD, granD := prepFor(t, env, "DAYS")
	sd := NewScheduler(env, preppedD, granD)
	at = ch.EpochSecondsOf(d(1993, 1, 1))
	for i := 0; i < 100; i++ {
		next, ok, err := sd.NextAfter(at)
		if err != nil || !ok {
			t.Fatalf("daily step %d: %v %v", i, ok, err)
		}
		at = next
	}
	if p := sd.Probes(); p != 0 {
		t.Errorf("basic calendar walk ran %d probes, want 0", p)
	}
}

// Compositions the symbolic calculus can lower get the same arithmetic-only
// exact rung as basic calendars: zero probes, ever. DisableSymbolic restores
// the probing paths with identical answers — the ablation the benchmarks
// measure.
func TestSchedulerSymbolicExactAndAblation(t *testing.T) {
	env := nextPropEnv(t)
	ch := env.Chron
	prepped, gran := prepFor(t, env, "[1]/DAYS:during:WEEKS")
	s := NewScheduler(env, prepped, gran)
	if s.exact == nil {
		t.Fatal("composition did not lower to an exact pattern")
	}

	abl := &Env{Chron: env.Chron, Cat: env.Cat, DisableSymbolic: true}
	sa := NewScheduler(abl, prepped, gran)
	if sa.exact != nil {
		t.Fatal("DisableSymbolic left an exact pattern in place")
	}

	at := ch.EpochSecondsOf(d(1993, 1, 1))
	for i := 0; i < 52; i++ {
		next, ok, err := s.NextAfter(at)
		if err != nil || !ok {
			t.Fatalf("step %d: next=%v ok=%v err=%v", i, next, ok, err)
		}
		want, wok, err := sa.NextAfter(at)
		if err != nil || !wok || want != next {
			t.Fatalf("step %d: symbolic %d, ablated %d,%v err=%v", i, next, want, wok, err)
		}
		at = next
	}
	if p := s.Probes(); p != 0 {
		t.Errorf("symbolic walk ran %d probes, want 0", p)
	}
	if p := sa.Probes(); p == 0 {
		t.Error("ablated walk ran 0 probes; the knob did nothing")
	}
}

// A provably-empty expression makes the scheduler dormant: NextAfter answers
// ok=false without evaluating anything, and agrees with the seed path.
func TestSchedulerDormantEmpty(t *testing.T) {
	env := nextPropEnv(t)
	ch := env.Chron
	prepped, gran := prepFor(t, env, "DAYS - DAYS")
	s := NewScheduler(env, prepped, gran)
	if !s.dormant {
		t.Fatal("empty expression not marked dormant")
	}
	after := ch.EpochSecondsOf(d(1993, 6, 1))
	if _, ok, err := s.NextAfter(after); ok || err != nil {
		t.Fatalf("dormant NextAfter = ok=%v err=%v, want false,nil", ok, err)
	}
	if p := s.Probes(); p != 0 {
		t.Errorf("dormant scheduler ran %d probes, want 0", p)
	}
	ref := NewScheduler(env, prepped, gran)
	ref.Configure(0, true)
	if _, ok, err := ref.NextAfter(after); ok || err != nil {
		t.Fatalf("windowed reference disagrees: ok=%v err=%v", ok, err)
	}
}
