package plan

import (
	"fmt"
	"sync"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/matcache"
)

// Concurrent evaluations sharing one materialization cache must agree with a
// serial, uncached evaluation — the shared cache and the parallel generate
// fan-out may change how values are produced, never which values.
func TestConcurrentEvaluateSharedCache(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	cat := NewMapCatalog()
	mat := matcache.New(1 << 20)
	baseline := &Env{Chron: ch, Cat: cat, Parallelism: 1}
	shared := &Env{Chron: ch, Cat: cat, Mat: mat, MatScope: "test"}

	exprs := []string{
		"[1]/DAYS:during:WEEKS",
		"WEEKS + MONTHS",
		"([1]/DAYS:during:WEEKS) + ([3]/DAYS:during:WEEKS)",
		"MONTHS:during:YEARS",
	}
	type result struct {
		expr string
		yr   int
		cal  *calendar.Calendar
	}
	want := map[string]*calendar.Calendar{}
	for _, src := range exprs {
		for yr := 1990; yr < 1994; yr++ {
			e, err := callang.ParseExpr(src)
			if err != nil {
				t.Fatal(err)
			}
			from := chronology.Civil{Year: yr, Month: 1, Day: 1}
			to := chronology.Civil{Year: yr, Month: 12, Day: 31}
			c, err := Evaluate(baseline, e, from, to)
			if err != nil {
				t.Fatal(err)
			}
			want[fmt.Sprintf("%s/%d", src, yr)] = c
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	results := make(chan result, workers*len(want))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, src := range exprs {
				for yr := 1990; yr < 1994; yr++ {
					// Stagger the order per worker to mix cache hits/misses.
					y := 1990 + (yr+w+i)%4
					e, err := callang.ParseExpr(src)
					if err != nil {
						t.Error(err)
						return
					}
					from := chronology.Civil{Year: y, Month: 1, Day: 1}
					to := chronology.Civil{Year: y, Month: 12, Day: 31}
					c, err := Evaluate(shared, e, from, to)
					if err != nil {
						t.Error(err)
						return
					}
					results <- result{expr: src, yr: y, cal: c}
				}
			}
		}(w)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if !r.cal.Equal(want[fmt.Sprintf("%s/%d", r.expr, r.yr)]) {
			t.Fatalf("concurrent cached evaluation of %q over %d diverged from serial baseline", r.expr, r.yr)
		}
	}
	if st := mat.Stats(); st.Hits == 0 {
		t.Fatalf("shared cache never hit across %d evaluations: %v", workers*len(want), st)
	}
}

// The parallel fan-out must produce exactly what the serial executor does,
// including when generation fails mid-plan.
func TestParallelPrefetchMatchesSerial(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	cat := NewMapCatalog()
	e, err := callang.ParseExpr("DAYS + WEEKS + MONTHS + YEARS")
	if err != nil {
		t.Fatal(err)
	}
	from := chronology.Civil{Year: 1990, Month: 1, Day: 1}
	to := chronology.Civil{Year: 1995, Month: 12, Day: 31}
	serial, err := Evaluate(&Env{Chron: ch, Cat: cat, Parallelism: 1}, e, from, to)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Evaluate(&Env{Chron: ch, Cat: cat, Parallelism: 4}, e, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !parallel.Equal(serial) {
		t.Fatal("parallel fan-out result differs from serial execution")
	}
}
