package plan

import (
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// Sub-day granularities through the full pipeline: trading hours as an
// HOURS calendar. "[10,11,12,13,14,15,16]/HOURS:during:DAYS" is hours 10-16
// of every day; the plan granularity must infer to HOURS.
func TestSubDayGranularityPipeline(t *testing.T) {
	env, _ := env1987(t)
	e := expr(t, "[10,11,12,13,14,15,16]/HOURS:during:DAYS")
	prepped, gran, err := Prepare(env, e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gran != chronology.Hour {
		t.Fatalf("inferred granularity = %v, want HOURS", gran)
	}
	// Two days' worth of hours.
	p, err := Compile(env, prepped, nil, gran, interval.Must(1, 48))
	if err != nil {
		t.Fatal(err)
	}
	cal, err := p.Exec(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	flat := cal.Flatten()
	if flat.Len() != 14 { // 7 hours on each of 2 days
		t.Fatalf("trading hours = %v", flat)
	}
	// Day 1's trading hours are hour ticks 10..16.
	if flat.Interval(0) != interval.Must(10, 10) || flat.Interval(6) != interval.Must(16, 16) {
		t.Errorf("first day's hours = %v", flat)
	}
	// Day 2's begin at hour 34 (24+10).
	if flat.Interval(7) != interval.Must(34, 34) {
		t.Errorf("second day's first hour = %v", flat.Interval(7))
	}
}

func TestMinutesWithinHours(t *testing.T) {
	env, _ := env1987(t)
	// The first minute of every hour over three hours.
	got, err := EvaluateWindow(env, expr(t, "[1]/MINUTES:during:HOURS"),
		chronology.Minute, interval.Must(1, 180))
	if err != nil {
		t.Fatal(err)
	}
	flat := got.Flatten()
	if flat.Len() != 3 || flat.Interval(0) != interval.Must(1, 1) || flat.Interval(1) != interval.Must(61, 61) {
		t.Errorf("first minutes = %v", flat)
	}
}

// Coarse granularities: decades within the century, and year selection
// within decades.
func TestCoarseGranularityPipeline(t *testing.T) {
	env, _ := env1987(t)
	// Decades overlapping 1987-2009, in year ticks.
	got, err := Evaluate(env, expr(t, "DECADES:during:CENTURY"),
		d(1987, 1, 1), d(2009, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	// The window touches the 1900s and 2000s centuries; results are not
	// window-clipped, so every decade of both centuries appears: order 2
	// with 2 sub-calendars of 10 decades each, in decade ticks.
	if got.Order() != 2 || got.Len() != 2 {
		t.Fatalf("shape = order %d len %d", got.Order(), got.Len())
	}
	flat := got.Flatten()
	if flat.Len() != 20 {
		t.Fatalf("decades = %v", flat)
	}
	ch := env.Chron
	// The first decade of the 1900s century is decade tick -8 (the 1980s
	// decade containing the epoch is tick 1).
	if want := ch.TickAt(chronology.Decade, ch.EpochSecondsOf(d(1900, 1, 1))); flat.Interval(0).Lo != want {
		t.Errorf("first decade tick = %v, want %d", flat.Interval(0), want)
	}
	// The 3rd year of every decade in the window.
	got, err = Evaluate(env, expr(t, "[3]/YEARS:during:DECADES"),
		d(1987, 1, 1), d(2009, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	years := got.Flatten()
	for _, iv := range years.Intervals() {
		y := ch.YearOfTick(iv.Lo)
		if y%10 != 2 { // the 3rd year of the 1990s is 1992
			t.Errorf("3rd year of decade = %d", y)
		}
	}
}

// SECONDS as the finest granularity: one minute of seconds.
func TestSecondsGranularity(t *testing.T) {
	env, _ := env1987(t)
	got, err := EvaluateWindow(env, expr(t, "SECONDS:during:MINUTES"),
		chronology.Second, interval.Must(1, 120))
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != 2 || got.Len() != 2 {
		t.Fatalf("shape = order %d len %d", got.Order(), got.Len())
	}
	if got.Subs()[0].Len() != 60 {
		t.Errorf("first minute has %d seconds", got.Subs()[0].Len())
	}
}

// Mixing weeks with months forces day granularity (they do not align), and
// the result is consistent with computing in days directly.
func TestWeekMonthMixDropsToDays(t *testing.T) {
	env, _ := env1987(t)
	e := expr(t, "WEEKS:during:MONTHS")
	_, gran, err := Prepare(env, e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gran != chronology.Day {
		t.Errorf("granularity = %v, want DAYS", gran)
	}
	// Weeks alone stay at week granularity.
	_, gran, err = Prepare(env, expr(t, "[2]/WEEKS:during:WEEKS"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if gran != chronology.Week {
		t.Errorf("weeks-only granularity = %v, want WEEKS", gran)
	}
	// Months with years stay at month granularity.
	_, gran, err = Prepare(env, expr(t, "[1]/MONTHS:during:YEARS"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if gran != chronology.Month {
		t.Errorf("month/year granularity = %v, want MONTHS", gran)
	}
}

// The whole pipeline under a mid-year epoch: month boundaries are still
// civil months even though tick 1 of MONTHS starts before the epoch day.
func TestMidYearEpochPipeline(t *testing.T) {
	cat := NewMapCatalog()
	env := &Env{Chron: chronology.MustNew(chronology.Civil{Year: 1990, Month: 7, Day: 18}), Cat: cat}
	got, err := Evaluate(env, expr(t, "[n]/DAYS:during:MONTHS"),
		d(1990, 7, 18), d(1990, 9, 30))
	if err != nil {
		t.Fatal(err)
	}
	ch := env.Chron
	var ends []chronology.Civil
	for _, iv := range got.Flatten().Intervals() {
		ends = append(ends, ch.CivilOfDayTick(iv.Lo))
	}
	want := []chronology.Civil{{Year: 1990, Month: 7, Day: 31}, {Year: 1990, Month: 8, Day: 31}, {Year: 1990, Month: 9, Day: 30}}
	if len(ends) != len(want) {
		t.Fatalf("month ends = %v", ends)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Errorf("end %d = %v, want %v", i, ends[i], want[i])
		}
	}
	// Label selection by year works regardless of epoch alignment.
	cal, err := Evaluate(env, expr(t, "MONTHS:during:1991/YEARS"), d(1990, 7, 18), d(1992, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	if cal.Flatten().Len() != 12 {
		t.Errorf("months of 1991 = %v", cal.Flatten())
	}
}
