package plan

import (
	"fmt"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
)

// Value is the result of a calendar script: either a calendar or an alert
// string (the last-trading-day script of §3.3 returns "LAST TRADING DAY").
type Value struct {
	Cal *calendar.Calendar
	Str string
}

// IsString reports whether the value is an alert string.
func (v Value) IsString() bool { return v.Cal == nil }

// String renders the value.
func (v Value) String() string {
	if v.IsString() {
		return fmt.Sprintf("%q", v.Str)
	}
	return v.Cal.String()
}

// RunScript evaluates a calendar script over a civil-date window. The
// script's granularity is inferred from the calendars it references.
func RunScript(env *Env, s *callang.Script, from, to chronology.Civil) (Value, error) {
	gran := callang.AnalyzeScript(s, env.Cat).TickGran
	win, err := CivilWindow(env.Chron, gran, from, to)
	if err != nil {
		return Value{}, err
	}
	return runScriptAt(env, s, gran, win, newExecState())
}

// runScript evaluates a script on behalf of an OpDerived node: the caller's
// granularity and window are converted to the script's own (possibly finer)
// granularity.
func runScript(env *Env, s *callang.Script, callerGran chronology.Granularity, callerWin interval.Interval, st *execState) (Value, error) {
	gran := callang.AnalyzeScript(s, env.Cat).TickGran
	if callerGran.Finer(gran) {
		gran = callerGran
	}
	win := convertWindow(env.Chron, callerGran, callerWin, gran)
	return runScriptAt(env, s, gran, win, st)
}

// convertWindow re-expresses a tick window in another granularity, covering
// at least the same span.
func convertWindow(ch *chronology.Chronology, from chronology.Granularity, win interval.Interval, to chronology.Granularity) interval.Interval {
	if from == to {
		return win
	}
	lo := ch.TickAt(to, ch.UnitStart(from, win.Lo))
	hi := ch.TickAt(to, ch.UnitEndExcl(from, win.Hi)-1)
	return interval.Interval{Lo: lo, Hi: hi}
}

func runScriptAt(env *Env, s *callang.Script, gran chronology.Granularity, win interval.Interval, st *execState) (Value, error) {
	r := &runner{env: env, gran: gran, win: win, st: st, vars: map[string]*calendar.Calendar{}}
	v, returned, err := r.stmts(s.Stmts)
	if err != nil {
		return Value{}, err
	}
	if !returned {
		// A script whose final statement is a bare expression yields that
		// expression's value (the form of single-expression derivations).
		if r.lastExpr != nil {
			return Value{Cal: r.lastExpr}, nil
		}
		return Value{}, fmt.Errorf("plan: script finished without return")
	}
	return v, nil
}

type runner struct {
	env  *Env
	gran chronology.Granularity
	win  interval.Interval
	st   *execState
	vars map[string]*calendar.Calendar
	// lastExpr is the value of the most recent bare-expression statement,
	// the implicit result of return-less derivations.
	lastExpr *calendar.Calendar
}

func (r *runner) eval(e callang.Expr) (*calendar.Calendar, error) {
	varsSet := make(map[string]bool, len(r.vars))
	for k := range r.vars {
		varsSet[k] = true
	}
	prepped, _, err := Prepare(r.env, e, varsSet)
	if err != nil {
		return nil, err
	}
	p, err := Compile(r.env, prepped, varsSet, r.gran, r.win)
	if err != nil {
		return nil, err
	}
	return p.exec(r.env, r.vars, r.st)
}

// cond evaluates a condition: a null (empty) calendar is false (§3.3).
func (r *runner) cond(e callang.Expr) (bool, error) {
	c, err := r.eval(e)
	if err != nil {
		return false, err
	}
	return !c.IsEmpty(), nil
}

func (r *runner) stmts(ss []callang.Stmt) (Value, bool, error) {
	for _, st := range ss {
		v, returned, err := r.stmt(st)
		if err != nil || returned {
			return v, returned, err
		}
	}
	return Value{}, false, nil
}

func (r *runner) stmt(st callang.Stmt) (Value, bool, error) {
	switch n := st.(type) {
	case *callang.AssignStmt:
		c, err := r.eval(n.X)
		if err != nil {
			return Value{}, false, fmt.Errorf("in %s: %w", n, err)
		}
		r.vars[n.Name] = c
		return Value{}, false, nil
	case *callang.ExprStmt:
		c, err := r.eval(n.X)
		if err != nil {
			return Value{}, false, fmt.Errorf("in %s: %w", n, err)
		}
		r.lastExpr = c
		return Value{}, false, nil
	case *callang.ReturnStmt:
		if s, ok := n.X.(*callang.StringLit); ok {
			return Value{Str: s.Val}, true, nil
		}
		c, err := r.eval(n.X)
		if err != nil {
			return Value{}, false, fmt.Errorf("in %s: %w", n, err)
		}
		return Value{Cal: c}, true, nil
	case *callang.IfStmt:
		ok, err := r.cond(n.Cond)
		if err != nil {
			return Value{}, false, fmt.Errorf("in if condition: %w", err)
		}
		if ok {
			return r.stmts(n.Then)
		}
		return r.stmts(n.Else)
	case *callang.WhileStmt:
		for i := 0; ; i++ {
			if i >= r.env.maxWhile() {
				return Value{}, false, fmt.Errorf("plan: while loop exceeded %d iterations", r.env.maxWhile())
			}
			ok, err := r.cond(n.Cond)
			if err != nil {
				return Value{}, false, fmt.Errorf("in while condition: %w", err)
			}
			if !ok {
				return Value{}, false, nil
			}
			if len(n.Body) == 0 {
				// The paper's "do nothing" wait loop: time must advance
				// externally between probes.
				if r.env.Wait == nil {
					return Value{}, false, fmt.Errorf("plan: waiting while-loop needs a Wait hook in the environment")
				}
				if err := r.env.Wait(); err != nil {
					return Value{}, false, fmt.Errorf("plan: wait aborted: %w", err)
				}
				continue
			}
			v, returned, err := r.stmts(n.Body)
			if err != nil || returned {
				return v, returned, err
			}
		}
	}
	return Value{}, false, fmt.Errorf("plan: unknown statement %T", st)
}
