package calendar

import (
	"math"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
	"calsys/internal/core/periodic"
)

// ExpandPattern materializes the elements of a periodic pattern overlapping
// win as an order-1 calendar — the pattern-backed equivalent of GenerateFull
// over that window, in O(output) time.
func ExpandPattern(gran chronology.Granularity, p *periodic.Pattern, win interval.Interval) *Calendar {
	return ExpandPatternBetween(gran, p, win, math.MinInt64, math.MaxInt64)
}

// ExpandPatternBetween is ExpandPattern clamped to pattern element indices
// within [qmin, qmax]: detected patterns are valid only over the element
// range actually observed, so the materialization cache re-expands them with
// the observed bounds.
func ExpandPatternBetween(gran chronology.Granularity, p *periodic.Pattern, win interval.Interval, qmin, qmax int64) *Calendar {
	ivs := p.ExpandBetween(win, qmin, qmax)
	if p.Disjoint() {
		// A disjoint pattern's expansion is sorted disjoint by construction;
		// skip the classification scan.
		return leafDisjoint(gran, ivs)
	}
	return newLeaf(gran, ivs)
}
