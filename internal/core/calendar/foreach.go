package calendar

import (
	"fmt"

	"calsys/internal/core/interval"
)

// ForeachInterval applies the paper's foreach operator with an interval as
// the third argument:
//
//	strict : {C : Op : I} ≡ { c∩I | c ∈ C ∧ Op(c,I) } \ {ε}
//	relaxed: {C . Op . I} ≡ { c   | c ∈ C ∧ Op(c,I) } \ {ε}
//
// The result preserves C's order: for an order-n C the operator is mapped
// over the sub-calendars.
func ForeachInterval(c *Calendar, op interval.ListOp, strict bool, ival interval.Interval) (*Calendar, error) {
	if !op.Valid() {
		return nil, fmt.Errorf("calendar: invalid listop in foreach")
	}
	if err := ival.Check(); err != nil {
		return nil, fmt.Errorf("calendar: foreach interval argument: %w", err)
	}
	return foreachIntervalRec(c, op, strict, ival), nil
}

func foreachIntervalRec(c *Calendar, op interval.ListOp, strict bool, ival interval.Interval) *Calendar {
	if len(c.subs) > 0 {
		subs := make([]*Calendar, 0, len(c.subs))
		for _, s := range c.subs {
			subs = append(subs, foreachIntervalRec(s, op, strict, ival))
		}
		return &Calendar{gran: c.gran, subs: subs}
	}
	out := make([]interval.Interval, 0, len(c.ivs))
	for _, iv := range c.ivs {
		if !op.Eval(iv, ival) {
			continue
		}
		if strict {
			// Strict foreach keeps the part of c inside I. For the
			// non-overlapping listops (<, meets with disjoint spans) the
			// intersection is empty (the paper's ε) and the untrimmed
			// interval is kept instead, since the operator's point is
			// ordering rather than containment.
			if cut, ok := iv.Intersect(ival); ok {
				out = append(out, cut)
			} else {
				out = append(out, iv)
			}
		} else {
			out = append(out, iv)
		}
	}
	// Selecting (and trimming, each cut staying inside its element) preserves
	// the sorted disjoint shape.
	return &Calendar{gran: c.gran, ivs: out, sortedDisjoint: c.sortedDisjoint}
}

// Foreach applies the foreach operator with a calendar third argument. Per
// §3.1, the operator is applied once per element of arg, and the result is a
// calendar of one order higher than the per-element results — except that an
// arg holding a single interval is treated as that interval (the paper
// writes "Jan-1993 is an interval" for the one-interval calendar {(1,31)}).
//
// Both calendars must share a granularity; use Generate to convert.
func Foreach(c *Calendar, op interval.ListOp, strict bool, arg *Calendar) (*Calendar, error) {
	if c.gran != arg.gran {
		return nil, fmt.Errorf("calendar: foreach granularity mismatch: %v vs %v", c.gran, arg.gran)
	}
	if iv, ok := arg.SingleInterval(); ok {
		return ForeachInterval(c, op, strict, iv)
	}
	if arg.Order() != 1 {
		return nil, fmt.Errorf("calendar: foreach third argument must be order-1, got order %d", arg.Order())
	}
	if arg.IsEmpty() {
		return Empty(c.gran), nil
	}
	if !op.Valid() {
		return nil, fmt.Errorf("calendar: invalid listop in foreach")
	}
	// Fast path: when both calendars are disjoint and sorted (the shape
	// every generated calendar has, cached at construction), every listop
	// admits a merge sweep in the style of Piatov et al.'s sweeping-based
	// interval joins — O(n+m+output) instead of O(n·m).
	if c.Order() == 1 && c.sortedDisjoint && arg.sortedDisjoint {
		return foreachSweep(c, op, strict, arg), nil
	}
	subs := make([]*Calendar, 0, len(arg.ivs))
	for _, iv := range arg.ivs {
		sub, err := ForeachInterval(c, op, strict, iv)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}
	return FromSubs(subs)
}

// disjointSorted reports whether the intervals are sorted by lower bound
// and pairwise disjoint — the shape of generated calendars.
func disjointSorted(ivs []interval.Interval) bool {
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Lo <= ivs[i-1].Hi {
			return false
		}
	}
	return true
}

// foreachSweep evaluates foreach over two disjoint sorted interval lists.
// Both bounds of such a list strictly increase, so for each arg element y the
// matching c elements are a contiguous run whose boundaries only move forward
// as y advances — O(n + m + output) total. The work happens in the
// endpoint-index kernels of endpointidx.go: a zero-allocation merge loop over
// flat []Tick bound arrays cached on c, a fill pass that shares untrimmed
// runs, and a closed-form diagonal fast path when both operands are views
// over the same backing array.
func foreachSweep(c *Calendar, op interval.ListOp, strict bool, arg *Calendar) *Calendar {
	if sameBacking(c, arg) {
		return foreachSelfJoin(c, op, strict)
	}
	return foreachSweepEndpoint(c, op, strict, arg)
}

// foreachSweepLinear is the pre-endpoint-index sweep: the same monotone
// cursor walk, but over the 16-byte interval structs with a per-group append
// loop. Kept as the measured baseline for BenchmarkEndpointSweepVsLinear and
// as an independent oracle in the sweep property tests; Foreach never routes
// here.
//
//   - overlaps/during: the run [first Hi ≥ y.Lo, last Lo ≤ y.Hi], filtered for
//     containment when during;
//   - meets: at most one candidate (upper bounds are strictly increasing, so
//     only one element can end exactly at y.Lo);
//   - < and <=: the matching elements are a prefix of c, which is shared with
//     the result (capacity-clamped) instead of copied — strict trimming
//     affects at most the final prefix element, the only one that can reach
//     into y.
func foreachSweepLinear(c *Calendar, op interval.ListOp, strict bool, arg *Calendar) *Calendar {
	subs := make([]*Calendar, 0, len(arg.ivs))
	switch op {
	case interval.Overlaps, interval.During:
		start := 0
		for _, y := range arg.ivs {
			for start < len(c.ivs) && c.ivs[start].Hi < y.Lo {
				start++
			}
			var out []interval.Interval
			for i := start; i < len(c.ivs) && c.ivs[i].Lo <= y.Hi; i++ {
				iv := c.ivs[i]
				if op == interval.During && (iv.Lo < y.Lo || iv.Hi > y.Hi) {
					continue
				}
				if strict {
					if cut, ok := iv.Intersect(y); ok {
						iv = cut
					}
				}
				out = append(out, iv)
			}
			subs = append(subs, leafDisjoint(c.gran, out))
		}

	case interval.Meets:
		m := 0
		for _, y := range arg.ivs {
			for m < len(c.ivs) && c.ivs[m].Hi < y.Lo {
				m++
			}
			var out []interval.Interval
			if m < len(c.ivs) && c.ivs[m].Hi == y.Lo {
				iv := c.ivs[m]
				if strict {
					if cut, ok := iv.Intersect(y); ok {
						iv = cut
					}
				}
				out = []interval.Interval{iv}
			}
			subs = append(subs, leafDisjoint(c.gran, out))
		}

	case interval.Before:
		j := 0
		for _, y := range arg.ivs {
			for j < len(c.ivs) && c.ivs[j].Hi <= y.Lo {
				j++
			}
			// Every element of the prefix c.ivs[:j] satisfies Hi ≤ y.Lo. Only
			// its final element can touch y (at exactly one tick, Hi == y.Lo),
			// so strict trimming rewrites at most one interval.
			if strict && j > 0 && c.ivs[j-1].Hi == y.Lo {
				out := make([]interval.Interval, j)
				copy(out, c.ivs[:j-1])
				out[j-1] = interval.Interval{Lo: y.Lo, Hi: y.Lo}
				subs = append(subs, leafDisjoint(c.gran, out))
				continue
			}
			subs = append(subs, leafDisjoint(c.gran, c.ivs[:j:j]))
		}

	case interval.BeforeEquals:
		jlo, jhi := 0, 0
		for _, y := range arg.ivs {
			for jlo < len(c.ivs) && c.ivs[jlo].Lo <= y.Lo {
				jlo++
			}
			for jhi < len(c.ivs) && c.ivs[jhi].Hi <= y.Hi {
				jhi++
			}
			// Matching elements need Lo ≤ y.Lo and Hi ≤ y.Hi; with both
			// bounds monotone that is the prefix up to the lower boundary.
			j := jlo
			if jhi < j {
				j = jhi
			}
			// Only the final prefix element can overlap y (any earlier one
			// reaching y.Lo would overlap its successor).
			if strict && j > 0 && c.ivs[j-1].Hi >= y.Lo {
				out := make([]interval.Interval, j)
				copy(out, c.ivs[:j-1])
				out[j-1] = interval.Interval{Lo: y.Lo, Hi: c.ivs[j-1].Hi}
				subs = append(subs, leafDisjoint(c.gran, out))
				continue
			}
			subs = append(subs, leafDisjoint(c.gran, c.ivs[:j:j]))
		}
	}
	return &Calendar{gran: c.gran, subs: subs}
}
