package calendar

import (
	"fmt"

	"calsys/internal/core/interval"
)

// ForeachInterval applies the paper's foreach operator with an interval as
// the third argument:
//
//	strict : {C : Op : I} ≡ { c∩I | c ∈ C ∧ Op(c,I) } \ {ε}
//	relaxed: {C . Op . I} ≡ { c   | c ∈ C ∧ Op(c,I) } \ {ε}
//
// The result preserves C's order: for an order-n C the operator is mapped
// over the sub-calendars.
func ForeachInterval(c *Calendar, op interval.ListOp, strict bool, ival interval.Interval) (*Calendar, error) {
	if !op.Valid() {
		return nil, fmt.Errorf("calendar: invalid listop in foreach")
	}
	if err := ival.Check(); err != nil {
		return nil, fmt.Errorf("calendar: foreach interval argument: %w", err)
	}
	return foreachIntervalRec(c, op, strict, ival), nil
}

func foreachIntervalRec(c *Calendar, op interval.ListOp, strict bool, ival interval.Interval) *Calendar {
	if len(c.subs) > 0 {
		subs := make([]*Calendar, 0, len(c.subs))
		for _, s := range c.subs {
			subs = append(subs, foreachIntervalRec(s, op, strict, ival))
		}
		return &Calendar{gran: c.gran, subs: subs}
	}
	out := make([]interval.Interval, 0, len(c.ivs))
	for _, iv := range c.ivs {
		if !op.Eval(iv, ival) {
			continue
		}
		if strict {
			// Strict foreach keeps the part of c inside I. For the
			// non-overlapping listops (<, meets with disjoint spans) the
			// intersection is empty (the paper's ε) and the untrimmed
			// interval is kept instead, since the operator's point is
			// ordering rather than containment.
			if cut, ok := iv.Intersect(ival); ok {
				out = append(out, cut)
			} else {
				out = append(out, iv)
			}
		} else {
			out = append(out, iv)
		}
	}
	return &Calendar{gran: c.gran, ivs: out}
}

// Foreach applies the foreach operator with a calendar third argument. Per
// §3.1, the operator is applied once per element of arg, and the result is a
// calendar of one order higher than the per-element results — except that an
// arg holding a single interval is treated as that interval (the paper
// writes "Jan-1993 is an interval" for the one-interval calendar {(1,31)}).
//
// Both calendars must share a granularity; use Generate to convert.
func Foreach(c *Calendar, op interval.ListOp, strict bool, arg *Calendar) (*Calendar, error) {
	if c.gran != arg.gran {
		return nil, fmt.Errorf("calendar: foreach granularity mismatch: %v vs %v", c.gran, arg.gran)
	}
	if iv, ok := arg.SingleInterval(); ok {
		return ForeachInterval(c, op, strict, iv)
	}
	if arg.Order() != 1 {
		return nil, fmt.Errorf("calendar: foreach third argument must be order-1, got order %d", arg.Order())
	}
	if arg.IsEmpty() {
		return Empty(c.gran), nil
	}
	if !op.Valid() {
		return nil, fmt.Errorf("calendar: invalid listop in foreach")
	}
	// Fast path: when both calendars are disjoint and sorted (the shape
	// every generated calendar has), the containment listops admit a merge
	// sweep — O(n+m+output) instead of O(n·m).
	if c.Order() == 1 && (op == interval.During || op == interval.Overlaps) &&
		disjointSorted(c.ivs) && disjointSorted(arg.ivs) {
		return foreachSweep(c, op, strict, arg)
	}
	subs := make([]*Calendar, 0, len(arg.ivs))
	for _, iv := range arg.ivs {
		sub, err := ForeachInterval(c, op, strict, iv)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}
	return FromSubs(subs)
}

// disjointSorted reports whether the intervals are sorted by lower bound
// and pairwise disjoint — the shape of generated calendars.
func disjointSorted(ivs []interval.Interval) bool {
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Lo <= ivs[i-1].Hi {
			return false
		}
	}
	return true
}

// foreachSweep merges two disjoint sorted interval lists: for each arg
// element y, the matching c elements are a contiguous run, and the run
// start only moves forward.
func foreachSweep(c *Calendar, op interval.ListOp, strict bool, arg *Calendar) (*Calendar, error) {
	subs := make([]*Calendar, 0, len(arg.ivs))
	start := 0
	for _, y := range arg.ivs {
		// Skip c elements entirely before y.
		for start < len(c.ivs) && c.ivs[start].Hi < y.Lo {
			start++
		}
		var out []interval.Interval
		for i := start; i < len(c.ivs) && c.ivs[i].Lo <= y.Hi; i++ {
			iv := c.ivs[i]
			if !op.Eval(iv, y) {
				continue // overlaps always holds here; during may not
			}
			if strict {
				if cut, ok := iv.Intersect(y); ok {
					out = append(out, cut)
				} else {
					out = append(out, iv)
				}
			} else {
				out = append(out, iv)
			}
		}
		subs = append(subs, &Calendar{gran: c.gran, ivs: out})
	}
	return FromSubs(subs)
}
