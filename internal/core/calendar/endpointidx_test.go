package calendar

import (
	"math/rand"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// TestEndpointSweepMatchesLinearAndNaive cross-checks the three foreach
// evaluators — endpoint-index kernel, retained linear kernel, O(n·m) naive —
// over randomized sorted disjoint operands for every listop, strict and
// relaxed.
func TestEndpointSweepMatchesLinearAndNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		c, err := FromIntervals(chronology.Day, randDisjointSorted(rng, rng.Intn(14)))
		if err != nil {
			t.Fatal(err)
		}
		arg, err := FromIntervals(chronology.Day, randDisjointSorted(rng, rng.Intn(10)+1))
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range allListOps {
			for _, strict := range []bool{false, true} {
				want := naiveForeach(c, op, strict, arg)
				ep, err := ForeachSweepEndpoint(c, op, strict, arg)
				if err != nil {
					t.Fatal(err)
				}
				lin, err := ForeachSweepLinear(c, op, strict, arg)
				if err != nil {
					t.Fatal(err)
				}
				if !ep.Equal(want) {
					t.Fatalf("trial %d op %v strict %v:\nc   = %v\narg = %v\nendpoint %v\nwant     %v",
						trial, op, strict, c, arg, ep, want)
				}
				if !lin.Equal(want) {
					t.Fatalf("trial %d op %v strict %v: linear kernel diverges:\ngot  %v\nwant %v",
						trial, op, strict, lin, want)
				}
			}
		}
	}
}

// TestForeachSelfJoin checks the diagonal fast path — both when the operands
// are the same *Calendar and when they are distinct views over one backing
// array — against the naive reference.
func TestForeachSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		c, err := FromIntervals(chronology.Day, randDisjointSorted(rng, rng.Intn(12)+1))
		if err != nil {
			t.Fatal(err)
		}
		view := &Calendar{gran: c.gran, ivs: c.ivs, sortedDisjoint: true}
		if !sameBacking(c, c) || !sameBacking(c, view) {
			t.Fatal("sameBacking failed to recognize shared backing")
		}
		for _, op := range allListOps {
			for _, strict := range []bool{false, true} {
				want := naiveForeach(c, op, strict, c)
				got := foreachSweep(c, op, strict, c)
				if !got.Equal(want) {
					t.Fatalf("trial %d op %v strict %v self-join:\nc = %v\ngot  %v\nwant %v",
						trial, op, strict, c, got, want)
				}
				if gotView := foreachSweep(c, op, strict, view); !gotView.Equal(want) {
					t.Fatalf("trial %d op %v strict %v shared-backing view diverges", trial, op, strict)
				}
				// The closed form must agree with the generic endpoint kernel
				// run on the same operands without the fast path.
				if ep := foreachSweepEndpoint(c, op, strict, view); !ep.Equal(want) {
					t.Fatalf("trial %d op %v strict %v: endpoint kernel disagrees on self-join operands", trial, op, strict)
				}
			}
		}
	}
}

// TestSweepExtentsZeroAllocs pins the steady-state merge loop at exactly
// zero allocations per sweep for every listop, strict and relaxed.
func TestSweepExtentsZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c, err := FromIntervals(chronology.Day, randDisjointSorted(rng, 512))
	if err != nil {
		t.Fatal(err)
	}
	arg, err := FromIntervals(chronology.Day, randDisjointSorted(rng, 128))
	if err != nil {
		t.Fatal(err)
	}
	ix := c.epindex()
	ext := make([]runExtent, len(arg.ivs))
	for _, op := range allListOps {
		for _, strict := range []bool{false, true} {
			allocs := testing.AllocsPerRun(100, func() {
				sweepExtents(ix.lo, ix.hi, op, strict, arg.ivs, ext)
			})
			if allocs != 0 {
				t.Errorf("op %v strict %v: merge loop allocates %.1f/op, want 0", op, strict, allocs)
			}
		}
	}
}

// TestForeachSweepAllocBound pins the whole endpoint sweep (index built,
// arena warm) to its small constant allocation profile: slab + leaf block +
// sub list + result, with slack for an occasional pool refill.
func TestForeachSweepAllocBound(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	c, err := FromIntervals(chronology.Day, randDisjointSorted(rng, 1024))
	if err != nil {
		t.Fatal(err)
	}
	arg, err := FromIntervals(chronology.Day, randDisjointSorted(rng, 256))
	if err != nil {
		t.Fatal(err)
	}
	c.PrimeIndex()
	for _, op := range allListOps {
		for _, strict := range []bool{false, true} {
			foreachSweepEndpoint(c, op, strict, arg) // warm the arena pool
			allocs := testing.AllocsPerRun(50, func() {
				foreachSweepEndpoint(c, op, strict, arg)
			})
			if allocs > 5 {
				t.Errorf("op %v strict %v: endpoint sweep allocates %.1f/op, want ≤ 5", op, strict, allocs)
			}
		}
	}
	// The self-join closed form shares everything: leaf block + sub list +
	// result only.
	for _, op := range allListOps {
		allocs := testing.AllocsPerRun(50, func() {
			foreachSelfJoin(c, op, true)
		})
		if allocs > 3 {
			t.Errorf("op %v: self-join allocates %.1f/op, want ≤ 3", op, allocs)
		}
	}
}

// TestCovIndexFusesAdjacent checks that the cached coverage fuses elements
// adjacent in tick space (the WEEKS-in-day-ticks shape) into single spans,
// and that the index is built exactly once.
func TestCovIndexFusesAdjacent(t *testing.T) {
	c := MustFromIntervals(chronology.Day,
		interval.Interval{Lo: 1, Hi: 7},
		interval.Interval{Lo: 8, Hi: 14},
		interval.Interval{Lo: 15, Hi: 21},
		interval.Interval{Lo: 30, Hi: 33},
	)
	cv := c.covindex()
	if len(cv.lo) != 2 || cv.lo[0] != 1 || cv.hi[0] != 21 || cv.lo[1] != 30 || cv.hi[1] != 33 {
		t.Fatalf("fused coverage = lo %v hi %v, want [1 30] [21 33]", cv.lo, cv.hi)
	}
	if again := c.covindex(); again != cv {
		t.Fatal("covindex rebuilt on second call")
	}
	if ix := c.epindex(); c.epindex() != ix {
		t.Fatal("epindex rebuilt on second call")
	}

	// Messy (overlapping) operands fall back to the normalized point set.
	m := MustFromIntervals(chronology.Day,
		interval.Interval{Lo: 1, Hi: 5},
		interval.Interval{Lo: 3, Hi: 9},
		interval.Interval{Lo: 11, Hi: 12},
	)
	cv = m.covindex()
	if len(cv.lo) != 2 || cv.lo[0] != 1 || cv.hi[0] != 9 || cv.lo[1] != 11 || cv.hi[1] != 12 {
		t.Fatalf("messy coverage = lo %v hi %v, want [1 11] [9 12]", cv.lo, cv.hi)
	}
}

// TestSetOpsMatchLinearOnAdjacentShapes pins Diff/Intersect/Union over the
// fused cached coverage against the retained linear baselines on
// adjacent-element operands, where fusing actually changes the merge input.
func TestSetOpsMatchLinearOnAdjacentShapes(t *testing.T) {
	days := make([]interval.Interval, 0, 90)
	for d := int64(1); d <= 90; d++ {
		days = append(days, interval.Interval{Lo: d, Hi: d})
	}
	weeks := make([]interval.Interval, 0, 13)
	for w := int64(0); w < 13; w++ {
		weeks = append(weeks, interval.Interval{Lo: 1 + 7*w, Hi: 7 + 7*w})
	}
	a := MustFromIntervals(chronology.Day, days...)
	b := MustFromIntervals(chronology.Day, weeks...)
	for _, pair := range [][2]*Calendar{{a, b}, {b, a}} {
		x, y := pair[0], pair[1]
		gotD, err := Diff(x, y)
		if err != nil {
			t.Fatal(err)
		}
		wantD, err := DiffLinear(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if !gotD.Equal(wantD) {
			t.Fatalf("Diff diverges from linear: got %v want %v", gotD, wantD)
		}
		gotI, err := Intersect(x, y)
		if err != nil {
			t.Fatal(err)
		}
		wantI, err := IntersectLinear(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if !gotI.Equal(wantI) {
			t.Fatalf("Intersect diverges from linear: got %v want %v", gotI, wantI)
		}
		gotU, err := Union(x, y)
		if err != nil {
			t.Fatal(err)
		}
		wantU, err := UnionLinear(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if !gotU.Equal(wantU) {
			t.Fatalf("Union diverges from linear: got %v want %v", gotU, wantU)
		}
	}
}

// TestSliceOverlappingInheritsIndex checks that slicing a primed calendar
// (the matcache subset-window path) carries the matching sub-range of the
// endpoint index instead of dropping it, and that sweeps over the slice
// agree with a freshly built index.
func TestSliceOverlappingInheritsIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	c, err := FromIntervals(chronology.Day, randDisjointSorted(rng, 200))
	if err != nil {
		t.Fatal(err)
	}
	c.PrimeIndex()
	hull := c.ivs[40].Lo
	win := interval.Interval{Lo: hull, Hi: c.ivs[160].Hi}
	s := SliceOverlapping(c, win)
	ix := s.idx.Load()
	if ix == nil {
		t.Fatal("slice of a primed calendar lost its endpoint index")
	}
	if len(ix.lo) != len(s.ivs) {
		t.Fatalf("inherited index has %d bounds for %d elements", len(ix.lo), len(s.ivs))
	}
	for i, iv := range s.ivs {
		if ix.lo[i] != iv.Lo || ix.hi[i] != iv.Hi {
			t.Fatalf("inherited index misaligned at %d: (%d,%d) vs %v", i, ix.lo[i], ix.hi[i], iv)
		}
	}
	arg, err := FromIntervals(chronology.Day, randDisjointSorted(rng, 40))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range allListOps {
		got := foreachSweepEndpoint(s, op, true, arg)
		want := naiveForeach(s, op, true, arg)
		if !got.Equal(want) {
			t.Fatalf("op %v over inherited-index slice diverges from naive", op)
		}
	}
}

// TestEndpointIndexConcurrentBuild hammers the lazy builders from many
// goroutines; under -race this proves the benign-CAS publication is clean,
// and every caller must observe the same index.
func TestEndpointIndexConcurrentBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	c, err := FromIntervals(chronology.Day, randDisjointSorted(rng, 300))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	got := make([]*epIndex, workers)
	cov := make([]*covIndex, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			got[w] = c.epindex()
			cov[w] = c.covindex()
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatal("concurrent epindex builds published different indexes")
		}
		if cov[w] != cov[0] {
			t.Fatal("concurrent covindex builds published different coverage")
		}
	}
}
