package calendar

import (
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// fuzzDecodeIntervals turns fuzz bytes into an interval list: each byte pair
// is a (gap, width) delta. With forceDisjoint the gap is at least one tick,
// yielding the sorted disjoint shape the sweep kernels require; without it,
// zero gaps and generous widths produce the overlapping general shape the
// set operators must also handle.
func fuzzDecodeIntervals(b []byte, forceDisjoint bool) []interval.Interval {
	out := make([]interval.Interval, 0, len(b)/2)
	off := int64(-20)
	for i := 0; i+1 < len(b); i += 2 {
		gap := int64(b[i] % 4)
		width := int64(b[i+1] % 6)
		if forceDisjoint {
			gap++
			out = append(out, interval.Interval{
				Lo: chronology.TickFromOffset(off + gap),
				Hi: chronology.TickFromOffset(off + gap + width),
			})
			off += gap + width
		} else {
			// Lower bounds stay non-decreasing (the order-1 calendar
			// invariant); widths freely overlap successors.
			off += gap
			out = append(out, interval.Interval{
				Lo: chronology.TickFromOffset(off),
				Hi: chronology.TickFromOffset(off + width),
			})
		}
	}
	return out
}

// FuzzSweepVsNaive drives the endpoint-index kernels, the retained linear
// kernels, and the set operators from fuzz-shaped interval lists, checking
// all five listops in both strict and relaxed form against the naive
// references. Run by the CI fuzz-smoke job.
func FuzzSweepVsNaive(f *testing.F) {
	f.Add([]byte{}, []byte{}, false)
	f.Add([]byte{1, 2, 3, 4, 5, 6}, []byte{2, 2, 0, 5}, false)
	f.Add([]byte{0, 0, 0, 0, 3, 1}, []byte{0, 4, 0, 4, 0, 4}, true)
	f.Add([]byte{7, 5, 1, 0, 2, 2, 9, 9}, []byte{1, 1, 1, 1}, true)
	f.Fuzz(func(t *testing.T, cb, ab []byte, messy bool) {
		if len(cb) > 64 || len(ab) > 64 {
			return // keep each execution cheap; shape variety needs no scale
		}
		c, err := FromIntervals(chronology.Day, fuzzDecodeIntervals(cb, true))
		if err != nil {
			t.Fatalf("disjoint decode produced invalid calendar: %v", err)
		}
		arg, err := FromIntervals(chronology.Day, fuzzDecodeIntervals(ab, true))
		if err != nil {
			t.Fatalf("disjoint decode produced invalid calendar: %v", err)
		}
		for _, op := range allListOps {
			for _, strict := range []bool{false, true} {
				want := naiveForeach(c, op, strict, arg)
				if arg.IsEmpty() {
					want = Empty(c.Granularity())
				}
				ep, err := ForeachSweepEndpoint(c, op, strict, arg)
				if err != nil {
					t.Fatal(err)
				}
				if !ep.Equal(want) {
					t.Fatalf("op %v strict %v: endpoint kernel diverges\nc   = %v\narg = %v\ngot  %v\nwant %v",
						op, strict, c, arg, ep, want)
				}
				lin, err := ForeachSweepLinear(c, op, strict, arg)
				if err != nil {
					t.Fatal(err)
				}
				if !lin.Equal(want) {
					t.Fatalf("op %v strict %v: linear kernel diverges", op, strict)
				}
			}
		}

		// Set operators: optionally re-decode b without the disjoint
		// constraint so the fused-coverage fallback (ToSet) is exercised.
		b := arg
		if messy {
			b, err = FromIntervals(chronology.Day, fuzzDecodeIntervals(ab, false))
			if err != nil {
				t.Fatalf("messy decode produced invalid calendar: %v", err)
			}
		}
		gotD, err := Diff(c, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveSetOp(c, b, true); !gotD.Equal(want) {
			t.Fatalf("Diff(%v, %v) = %v, want %v", c, b, gotD, want)
		}
		gotI, err := Intersect(c, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveSetOp(c, b, false); !gotI.Equal(want) {
			t.Fatalf("Intersect(%v, %v) = %v, want %v", c, b, gotI, want)
		}
		gotU, err := Union(c, b)
		if err != nil {
			t.Fatal(err)
		}
		wantU, err := UnionLinear(c, b)
		if err != nil {
			t.Fatal(err)
		}
		if !gotU.Equal(wantU) {
			t.Fatalf("Union(%v, %v) = %v, want %v", c, b, gotU, wantU)
		}
	})
}
