package calendar

import (
	"math/rand"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

var allListOps = []interval.ListOp{
	interval.Overlaps, interval.During, interval.Meets, interval.Before, interval.BeforeEquals,
}

// randDisjointSorted builds a random sorted disjoint interval list with small
// gaps and widths, so boundary coincidences (meets, shared endpoints) occur
// often.
func randDisjointSorted(rng *rand.Rand, n int) []interval.Interval {
	out := make([]interval.Interval, 0, n)
	off := int64(rng.Intn(40)) - 20
	for i := 0; i < n; i++ {
		off += int64(rng.Intn(4)) + 1 // gap ≥ 1: disjoint
		lo := off
		off += int64(rng.Intn(5))
		out = append(out, interval.Interval{
			Lo: chronology.TickFromOffset(lo),
			Hi: chronology.TickFromOffset(off),
		})
	}
	return out
}

// naiveForeach is the O(n·m) reference evaluator: the generic per-element
// path applied literally, with no sweep shortcuts.
func naiveForeach(c *Calendar, op interval.ListOp, strict bool, arg *Calendar) *Calendar {
	subs := make([]*Calendar, 0, len(arg.ivs))
	for _, y := range arg.ivs {
		var out []interval.Interval
		for _, iv := range c.ivs {
			if !op.Eval(iv, y) {
				continue
			}
			if strict {
				if cut, ok := iv.Intersect(y); ok {
					out = append(out, cut)
					continue
				}
			}
			out = append(out, iv)
		}
		subs = append(subs, &Calendar{gran: c.gran, ivs: out})
	}
	return &Calendar{gran: c.gran, subs: subs}
}

// TestForeachSweepMatchesNaive checks every sweep kernel, strict and relaxed,
// against the naive reference over randomized disjoint sorted operands, and
// that Foreach actually routes such operands through the sweep.
func TestForeachSweepMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		c, err := FromIntervals(chronology.Day, randDisjointSorted(rng, rng.Intn(12)))
		if err != nil {
			t.Fatal(err)
		}
		arg, err := FromIntervals(chronology.Day, randDisjointSorted(rng, rng.Intn(10)+2))
		if err != nil {
			t.Fatal(err)
		}
		if !c.sortedDisjoint || !arg.sortedDisjoint {
			t.Fatal("random operands not classified sorted disjoint")
		}
		for _, op := range allListOps {
			for _, strict := range []bool{false, true} {
				got := foreachSweep(c, op, strict, arg)
				want := naiveForeach(c, op, strict, arg)
				if !got.Equal(want) {
					t.Fatalf("trial %d op %v strict %v:\nc   = %v\narg = %v\ngot  %v\nwant %v",
						trial, op, strict, c, arg, got, want)
				}
				// The public entry point must agree too (and routes through
				// the sweep, since both flags are set).
				pub, err := Foreach(c, op, strict, arg)
				if err != nil {
					t.Fatal(err)
				}
				if !pub.Equal(want) {
					t.Fatalf("trial %d op %v strict %v: Foreach diverges from reference", trial, op, strict)
				}
			}
		}
	}
}

// TestForeachSweepSharedPrefixIsolated checks that the prefix-sharing <, <=
// kernels never alias their output against later appends to the result
// calendars.
func TestForeachSweepSharedPrefixIsolated(t *testing.T) {
	c := MustFromIntervals(chronology.Day,
		interval.Interval{Lo: 1, Hi: 2},
		interval.Interval{Lo: 4, Hi: 5},
		interval.Interval{Lo: 7, Hi: 8},
	)
	arg := MustFromIntervals(chronology.Day,
		interval.Interval{Lo: 3, Hi: 3},
		interval.Interval{Lo: 6, Hi: 6},
		interval.Interval{Lo: 9, Hi: 10},
	)
	got := foreachSweep(c, interval.Before, false, arg)
	// Appending to a sub-calendar's intervals slice must not clobber c.
	for _, sub := range got.Subs() {
		_ = append(sub.Intervals(), interval.Interval{Lo: 99, Hi: 99}) //nolint:staticcheck
	}
	want := MustFromIntervals(chronology.Day,
		interval.Interval{Lo: 1, Hi: 2},
		interval.Interval{Lo: 4, Hi: 5},
		interval.Interval{Lo: 7, Hi: 8},
	)
	if !c.Equal(want) {
		t.Fatalf("prefix sharing corrupted the source calendar: %v", c)
	}
}

// naiveSetOp is the reference for Diff/Intersect: per-element point-set
// arithmetic, exactly the pre-sweep implementation.
func naiveSetOp(a, b *Calendar, diff bool) *Calendar {
	bset := b.ToSet()
	var out []interval.Interval
	for _, iv := range a.ivs {
		if diff {
			out = append(out, interval.NewSet(iv).Diff(bset).Intervals()...)
		} else {
			out = append(out, interval.NewSet(iv).Intersect(bset).Intervals()...)
		}
	}
	return &Calendar{gran: a.gran, ivs: out}
}

// randSortedByLo builds a random list sorted by lower bound only — elements
// may overlap, the general order-1 calendar shape.
func randSortedByLo(rng *rand.Rand, n int) []interval.Interval {
	out := make([]interval.Interval, 0, n)
	lo := int64(rng.Intn(40)) - 20
	for i := 0; i < n; i++ {
		lo += int64(rng.Intn(4))
		width := int64(rng.Intn(8))
		out = append(out, interval.Interval{
			Lo: chronology.TickFromOffset(lo),
			Hi: chronology.TickFromOffset(lo + width),
		})
	}
	return out
}

// TestLinearSetOpsMatchNaive checks the linear-merge Diff and Intersect
// against per-element point-set arithmetic for overlapping, adjacent and
// disjoint operand shapes.
func TestLinearSetOpsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 400; trial++ {
		var aIvs, bIvs []interval.Interval
		if rng.Intn(2) == 0 {
			aIvs = randDisjointSorted(rng, rng.Intn(12))
		} else {
			aIvs = randSortedByLo(rng, rng.Intn(12))
		}
		if rng.Intn(2) == 0 {
			bIvs = randDisjointSorted(rng, rng.Intn(12))
		} else {
			bIvs = randSortedByLo(rng, rng.Intn(12))
		}
		a, err := FromIntervals(chronology.Day, aIvs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FromIntervals(chronology.Day, bIvs)
		if err != nil {
			t.Fatal(err)
		}
		gotDiff, err := Diff(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveSetOp(a, b, true); !gotDiff.Equal(want) {
			t.Fatalf("trial %d: Diff(%v, %v) = %v, want %v", trial, a, b, gotDiff, want)
		}
		gotInt, err := Intersect(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveSetOp(a, b, false); !gotInt.Equal(want) {
			t.Fatalf("trial %d: Intersect(%v, %v) = %v, want %v", trial, a, b, gotInt, want)
		}
	}
}
