package calendar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

func TestParseBasics(t *testing.T) {
	cases := []string{
		"{}",
		"{(1,1)}",
		"{(1,31),(32,59),(60,90)}",
		"{(-4,3),(4,10)}",
		"{{(4,10),(11,17)},{(32,38)}}",
		"{{{(1,1)},{(2,2)}},{{(3,3)}}}",
	}
	for _, src := range cases {
		c, err := Parse(chronology.Day, src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if c.String() != src {
			t.Errorf("Parse(%q).String() = %q", src, c.String())
		}
	}
	// Whitespace tolerated.
	c, err := Parse(chronology.Day, " { (1, 2) , (3, 4) } ")
	if err != nil || c.String() != "{(1,2),(3,4)}" {
		t.Errorf("whitespace parse = %v, %v", c, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(1,2)",
		"{(1,2)",
		"{(1,2)} trailing",
		"{(2,1)}",     // reversed
		"{(0,3)}",     // zero endpoint
		"{(1,2),(x)}", // junk
		"{(1)}",
		"{{(1,2)},(3,4)}", // mixed orders
		"{,}",
		"{(1,2),}",
	}
	for _, src := range bad {
		if _, err := Parse(chronology.Day, src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// Property: String/Parse round-trips random calendars of orders 1-3.
func TestParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCalendar(rng, rng.Intn(3)+1)
		got, err := Parse(c.Granularity(), c.String())
		return err == nil && got.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomCalendar builds a valid random calendar of the given order.
func randomCalendar(rng *rand.Rand, order int) *Calendar {
	gran := chronology.Granularity(rng.Intn(9))
	if order == 1 {
		n := rng.Intn(5) + 1
		ivs := make([]interval.Interval, 0, n)
		lo := int64(rng.Intn(40) - 20)
		if lo == 0 {
			lo = 1
		}
		for i := 0; i < n; i++ {
			hi := chronology.AddTicks(lo, int64(rng.Intn(5)))
			ivs = append(ivs, interval.Interval{Lo: lo, Hi: hi})
			lo = chronology.AddTicks(hi, int64(rng.Intn(3)+1))
		}
		c, err := FromIntervals(gran, ivs)
		if err != nil {
			panic(err)
		}
		return c
	}
	n := rng.Intn(3) + 1
	subs := make([]*Calendar, 0, n)
	// Sub-calendars must share granularity and order: generate then force.
	first := randomCalendar(rng, order-1)
	subs = append(subs, first)
	for i := 1; i < n; i++ {
		s := randomCalendar(rng, order-1)
		subs = append(subs, forceGran(s, first.Granularity()))
	}
	c, err := FromSubs(subs)
	if err != nil {
		panic(err)
	}
	return c
}

func forceGran(c *Calendar, g chronology.Granularity) *Calendar {
	out := &Calendar{gran: g, ivs: c.ivs}
	for _, s := range c.subs {
		out.subs = append(out.subs, forceGran(s, g))
	}
	return out
}
