package calendar

import (
	"fmt"
	"strings"

	"calsys/internal/core/interval"
)

// A SelItem is one term of a selection predicate: a single position, or an
// inclusive range of positions. Positions are 1-based; negative positions
// count from the end of the list (-1 is the last element); Last selects the
// final element (the paper's "n").
type SelItem struct {
	Last  bool // the paper's [n]
	Pos   int  // used when !Last and !IsRange
	Range bool
	From  int // range endpoints when Range (both may be negative / Last-less)
	To    int
}

// A Selection is the paper's selection predicate [x]/C, where x may be an
// integer, a list of integers, or an integer range; n selects the last
// element and a minus sign selects from the end (§3.1).
type Selection struct {
	Items []SelItem
}

// SelectIndex returns the predicate [k].
func SelectIndex(k int) Selection { return Selection{Items: []SelItem{{Pos: k}}} }

// SelectLast returns the predicate [n].
func SelectLast() Selection { return Selection{Items: []SelItem{{Last: true}}} }

// SelectList returns the predicate [k1,k2,...].
func SelectList(ks ...int) Selection {
	items := make([]SelItem, len(ks))
	for i, k := range ks {
		items[i] = SelItem{Pos: k}
	}
	return Selection{Items: items}
}

// SelectRange returns the predicate [from-to] (inclusive).
func SelectRange(from, to int) Selection {
	return Selection{Items: []SelItem{{Range: true, From: from, To: to}}}
}

// String renders the predicate in surface syntax, e.g. "[3]", "[n]",
// "[1,3,-2]", "[2-5]".
func (s Selection) String() string {
	var parts []string
	for _, it := range s.Items {
		switch {
		case it.Last:
			parts = append(parts, "n")
		case it.Range:
			parts = append(parts, fmt.Sprintf("%d-%d", it.From, it.To))
		default:
			parts = append(parts, fmt.Sprintf("%d", it.Pos))
		}
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Check validates the predicate.
func (s Selection) Check() error {
	if len(s.Items) == 0 {
		return fmt.Errorf("calendar: empty selection predicate")
	}
	for _, it := range s.Items {
		if it.Last {
			continue
		}
		if it.Range {
			if it.From == 0 || it.To == 0 {
				return fmt.Errorf("calendar: selection range endpoint 0 is invalid (positions are 1-based)")
			}
			continue
		}
		if it.Pos == 0 {
			return fmt.Errorf("calendar: selection position 0 is invalid (positions are 1-based)")
		}
	}
	return nil
}

// resolve maps a signed 1-based position onto a 0-based index in a list of
// length ln, returning ok=false when out of range.
func resolvePos(pos, ln int) (int, bool) {
	if pos > 0 {
		if pos > ln {
			return 0, false
		}
		return pos - 1, true
	}
	if pos < 0 {
		if -pos > ln {
			return 0, false
		}
		return ln + pos, true
	}
	return 0, false
}

// indices expands the predicate against a list of length ln. Out-of-range
// positions select nothing (the paper's examples silently drop months with
// fewer weeks, e.g. the missing 4-week February entry in §3.1).
func (s Selection) indices(ln int) []int {
	var out []int
	for _, it := range s.Items {
		switch {
		case it.Last:
			if ln > 0 {
				out = append(out, ln-1)
			}
		case it.Range:
			from, ok1 := resolvePos(it.From, ln)
			to, ok2 := resolvePos(it.To, ln)
			if !ok1 && it.From > 0 {
				continue // starts past the end
			}
			if !ok1 {
				from = 0
			}
			if !ok2 && it.To > 0 {
				to = ln - 1 // clamp open-ended ranges
				ok2 = true
			}
			if !ok2 {
				continue
			}
			for i := from; i <= to && i < ln; i++ {
				if i >= 0 {
					out = append(out, i)
				}
			}
		default:
			if i, ok := resolvePos(it.Pos, ln); ok {
				out = append(out, i)
			}
		}
	}
	return out
}

// Indices expands the predicate against a list of length ln, returning the
// selected 0-based indices in predicate order. Plan execution uses this to
// answer selections over pattern-backed values by index arithmetic, without
// materializing the list being selected from.
func (s Selection) Indices(ln int) []int { return s.indices(ln) }

// Single reports whether the predicate selects at most one element (a single
// index or [n]); in that case selection on an order-n calendar reduces the
// order by one, per the paper's [3]/WEEKS:overlaps:Year-1993 example.
func (s Selection) Single() bool {
	return len(s.Items) == 1 && !s.Items[0].Range
}

// Select applies the selection predicate to a calendar (the paper's [x]/C).
//
// Order 1: the selected intervals form a new order-1 calendar.
// Order n>1: the predicate is applied to each order n-1 element. If the
// predicate selects a single element, the chosen intervals collapse into a
// calendar of order n-1; otherwise each element is replaced by its selection
// and the order is preserved.
func Select(s Selection, c *Calendar) (*Calendar, error) {
	if err := s.Check(); err != nil {
		return nil, err
	}
	return selectRec(s, c), nil
}

func selectRec(s Selection, c *Calendar) *Calendar {
	if c.Order() == 1 {
		idx := s.indices(len(c.ivs))
		out := make([]interval.Interval, 0, len(idx))
		for _, i := range idx {
			out = append(out, c.ivs[i])
		}
		return newLeaf(c.gran, out)
	}
	if c.Order() == 2 && s.Single() {
		// Collapse: pick one interval from each sub-calendar.
		var out []interval.Interval
		for _, sub := range c.subs {
			idx := s.indices(len(sub.ivs))
			for _, i := range idx {
				out = append(out, sub.ivs[i])
			}
		}
		return newLeaf(c.gran, out)
	}
	subs := make([]*Calendar, 0, len(c.subs))
	for _, sub := range c.subs {
		subs = append(subs, selectRec(s, sub))
	}
	return &Calendar{gran: c.gran, subs: subs}
}
