package calendar

import (
	"fmt"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// Generate implements the paper's generate(cal1, cal2, [ts,te]) function
// (§3.2): it returns the order-1 calendar whose elements are the units of
// granularity `of` overlapping the window [ts,te], each expressed as an
// inclusive tick interval of granularity `in`.
//
// Following the paper's examples, a unit straddling the start of the window
// keeps its true lower bound (the 1993 WEEKS calendar begins (-4,3)), while
// te is a hard horizon: the final unit is truncated at te, as in
// generate(YEARS, DAYS, [Jan 1 1987, Jan 3 1992]) ending with (1827,1829).
func Generate(ch *chronology.Chronology, of, in chronology.Granularity, ts, te chronology.Tick) (*Calendar, error) {
	if !of.Valid() || !in.Valid() {
		return nil, fmt.Errorf("calendar: generate with invalid granularity")
	}
	if of.Finer(in) {
		return nil, fmt.Errorf("calendar: generate cannot express %v in coarser %v units", of, in)
	}
	if err := chronology.CheckTick(ts); err != nil {
		return nil, fmt.Errorf("calendar: generate window start: %w", err)
	}
	if err := chronology.CheckTick(te); err != nil {
		return nil, fmt.Errorf("calendar: generate window end: %w", err)
	}
	if ts > te {
		return nil, fmt.Errorf("calendar: generate window (%d,%d) is reversed", ts, te)
	}

	firstUnit := ch.TickAt(of, ch.UnitStart(in, ts))
	lastUnit := ch.TickAt(of, ch.UnitEndExcl(in, te)-1)

	n := chronology.TickDiff(firstUnit, lastUnit) + 1
	ivs := make([]interval.Interval, 0, n)
	for u := firstUnit; ; u = chronology.NextTick(u) {
		lo, hi := ch.UnitSpanIn(of, u, in)
		if hi > te {
			hi = te
		}
		if lo <= hi {
			ivs = append(ivs, interval.Interval{Lo: lo, Hi: hi})
		}
		if u == lastUnit {
			break
		}
	}
	return newLeaf(in, ivs), nil
}

// GenerateCivil is Generate with a civil-date window. The end date is
// inclusive: for sub-day granularities the window extends to the last tick
// of the end day.
func GenerateCivil(ch *chronology.Chronology, of, in chronology.Granularity, from, to chronology.Civil) (*Calendar, error) {
	if !from.Valid() || !to.Valid() {
		return nil, fmt.Errorf("calendar: generate with invalid civil date")
	}
	if to.Before(from) {
		return nil, fmt.Errorf("calendar: generate window %v..%v is reversed", from, to)
	}
	ts := ch.TickAt(in, ch.EpochSecondsOf(from))
	te := ch.TickAt(in, ch.EpochSecondsOf(to.AddDays(1))-1)
	return Generate(ch, of, in, ts, te)
}

// Caloperate implements the paper's caloperate(C, Te; (x1;...;xn)) function
// (§3.2) with an unbounded end time (the paper's "*"): the i-th element of
// the result is the union (hull) of the next x_{i mod n} consecutive
// elements of C. A final partial group is kept.
func Caloperate(c *Calendar, counts []int) (*Calendar, error) {
	return caloperate(c, counts, 0, false)
}

// CaloperateUntil is Caloperate with an end time Te: elements starting after
// te are dropped and the final element is truncated at te.
func CaloperateUntil(c *Calendar, counts []int, te chronology.Tick) (*Calendar, error) {
	if err := chronology.CheckTick(te); err != nil {
		return nil, fmt.Errorf("calendar: caloperate end time: %w", err)
	}
	return caloperate(c, counts, te, true)
}

func caloperate(c *Calendar, counts []int, te chronology.Tick, bounded bool) (*Calendar, error) {
	if c.Order() != 1 {
		return nil, fmt.Errorf("calendar: caloperate requires an order-1 calendar, got order %d", c.Order())
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("calendar: caloperate needs at least one group count")
	}
	for _, x := range counts {
		if x <= 0 {
			return nil, fmt.Errorf("calendar: caloperate group count %d must be positive", x)
		}
	}
	var out []interval.Interval
	i, g := 0, 0
	for i < len(c.ivs) {
		take := counts[g%len(counts)]
		g++
		j := i + take
		if j > len(c.ivs) {
			j = len(c.ivs)
		}
		iv := interval.Interval{Lo: c.ivs[i].Lo, Hi: c.ivs[j-1].Hi}
		for _, member := range c.ivs[i:j] {
			if member.Lo < iv.Lo {
				iv.Lo = member.Lo
			}
			if member.Hi > iv.Hi {
				iv.Hi = member.Hi
			}
		}
		if bounded {
			if iv.Lo > te {
				break
			}
			if iv.Hi > te {
				iv.Hi = te
			}
		}
		out = append(out, iv)
		i = j
	}
	return newLeaf(c.gran, out), nil
}
