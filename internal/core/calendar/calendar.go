// Package calendar implements the calendar algebra of Chandra, Segev and
// Stonebraker (ICDE 1994): calendars as structured (order-n) collections of
// intervals, the strict and relaxed foreach operators (dicing), the selection
// operator (slicing), calendar set operators, and the generate / caloperate
// functions that relate the basic calendars.
package calendar

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// A Calendar is a structured collection of intervals (§3.1). An order-1
// calendar is a list of intervals; an order-n calendar is a list of order
// n-1 calendars. All intervals are expressed in ticks of one granularity.
//
// Calendars are immutable once built; operators return new calendars.
type Calendar struct {
	gran chronology.Granularity
	ivs  []interval.Interval // populated iff order == 1
	subs []*Calendar         // populated iff order > 1

	// sortedDisjoint caches whether ivs is sorted by lower bound and
	// pairwise disjoint — the shape of every generated calendar, and the
	// precondition for the foreach merge-sweep kernels. Computed once at
	// construction so per-call operators never re-scan; conservative (true
	// implies the property, false only means it was not established).
	sortedDisjoint bool

	// idx lazily caches the flat endpoint index (and, inside it, the fused
	// point-set coverage) the sweep kernels run over; see endpointidx.go.
	// Built at most once per calendar — cached materializations keep it for
	// as long as they live, so repeated queries never re-lower the list.
	idx atomic.Pointer[epIndex]
}

// newLeaf builds an order-1 calendar around ivs (not copied), classifying its
// shape once at construction.
func newLeaf(gran chronology.Granularity, ivs []interval.Interval) *Calendar {
	return &Calendar{gran: gran, ivs: ivs, sortedDisjoint: disjointSorted(ivs)}
}

// leafDisjoint builds an order-1 calendar around ivs (not copied) that the
// caller knows to be sorted disjoint — e.g. a prefix of a sorted disjoint
// list — skipping the classification scan.
func leafDisjoint(gran chronology.Granularity, ivs []interval.Interval) *Calendar {
	return &Calendar{gran: gran, ivs: ivs, sortedDisjoint: true}
}

// FromIntervals builds an order-1 calendar. Intervals must individually be
// valid and be listed in non-decreasing order of lower bound (a calendar is
// an ordered collection; it need not be disjoint).
func FromIntervals(gran chronology.Granularity, ivs []interval.Interval) (*Calendar, error) {
	if !gran.Valid() {
		return nil, fmt.Errorf("calendar: invalid granularity %v", gran)
	}
	sd := true
	for i, iv := range ivs {
		if err := iv.Check(); err != nil {
			return nil, fmt.Errorf("calendar: element %d: %w", i, err)
		}
		if i > 0 && ivs[i-1].Lo > iv.Lo {
			return nil, fmt.Errorf("calendar: elements out of order at %d: %v after %v", i, iv, ivs[i-1])
		}
		if i > 0 && ivs[i-1].Hi >= iv.Lo {
			sd = false
		}
	}
	cp := make([]interval.Interval, len(ivs))
	copy(cp, ivs)
	return &Calendar{gran: gran, ivs: cp, sortedDisjoint: sd}, nil
}

// MustFromIntervals is FromIntervals for inputs known valid; it panics on
// error and is intended for tests and examples.
func MustFromIntervals(gran chronology.Granularity, ivs ...interval.Interval) *Calendar {
	c, err := FromIntervals(gran, ivs)
	if err != nil {
		panic(err)
	}
	return c
}

// FromPoints builds an order-1 calendar of point intervals (t,t) — the shape
// of explicitly stored calendars such as HOLIDAYS. Ticks are sorted and
// deduplicated, so callers may list them in any order.
func FromPoints(gran chronology.Granularity, ticks []chronology.Tick) (*Calendar, error) {
	sorted := make([]chronology.Tick, len(ticks))
	copy(sorted, ticks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ivs := make([]interval.Interval, 0, len(sorted))
	for i, t := range sorted {
		if i > 0 && t == sorted[i-1] {
			continue
		}
		iv, err := interval.New(t, t)
		if err != nil {
			return nil, err
		}
		ivs = append(ivs, iv)
	}
	return FromIntervals(gran, ivs)
}

// FromSet builds an order-1 calendar from a normalized interval set.
func FromSet(gran chronology.Granularity, s interval.Set) (*Calendar, error) {
	return FromIntervals(gran, s.Intervals())
}

// FromSubs builds an order n+1 calendar from order-n sub-calendars, which
// must all share a granularity and order.
func FromSubs(subs []*Calendar) (*Calendar, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("calendar: order>1 calendar needs at least one sub-calendar")
	}
	g := subs[0].gran
	ord := subs[0].Order()
	for i, s := range subs {
		if s == nil {
			return nil, fmt.Errorf("calendar: nil sub-calendar at %d", i)
		}
		if s.gran != g {
			return nil, fmt.Errorf("calendar: sub-calendar %d has granularity %v, want %v", i, s.gran, g)
		}
		if s.Order() != ord {
			return nil, fmt.Errorf("calendar: sub-calendar %d has order %d, want %d", i, s.Order(), ord)
		}
	}
	cp := make([]*Calendar, len(subs))
	copy(cp, subs)
	return &Calendar{gran: g, subs: cp}, nil
}

// Empty returns an empty order-1 calendar of the given granularity.
func Empty(gran chronology.Granularity) *Calendar {
	return &Calendar{gran: gran, sortedDisjoint: true}
}

// Granularity returns the tick unit of the calendar's intervals.
func (c *Calendar) Granularity() chronology.Granularity { return c.gran }

// Order returns the depth of the collection: 1 for a list of intervals, n+1
// for a list of order-n calendars.
func (c *Calendar) Order() int {
	if len(c.subs) == 0 {
		return 1
	}
	return 1 + c.subs[0].Order()
}

// Len returns the number of top-level elements (intervals or sub-calendars).
func (c *Calendar) Len() int {
	if len(c.subs) > 0 {
		return len(c.subs)
	}
	return len(c.ivs)
}

// IsEmpty reports whether the calendar has no elements. An order-1 calendar
// with zero intervals is the null calendar; conditions in the expression
// language treat it as false.
func (c *Calendar) IsEmpty() bool { return len(c.ivs) == 0 && len(c.subs) == 0 }

// Intervals returns the intervals of an order-1 calendar. It panics on
// higher-order calendars; use Subs or Flatten first.
func (c *Calendar) Intervals() []interval.Interval {
	if c.Order() != 1 {
		panic(fmt.Sprintf("calendar: Intervals on order-%d calendar", c.Order()))
	}
	return c.ivs
}

// Subs returns the sub-calendars of an order>1 calendar (nil for order 1).
func (c *Calendar) Subs() []*Calendar { return c.subs }

// Interval returns the i-th (0-based) interval of an order-1 calendar.
func (c *Calendar) Interval(i int) interval.Interval { return c.Intervals()[i] }

// Flatten concatenates all leaf intervals into a single order-1 calendar,
// preserving order.
func (c *Calendar) Flatten() *Calendar {
	if c.Order() == 1 {
		return c
	}
	var ivs []interval.Interval
	c.appendLeaves(&ivs)
	return newLeaf(c.gran, ivs)
}

func (c *Calendar) appendLeaves(out *[]interval.Interval) {
	if len(c.subs) == 0 {
		*out = append(*out, c.ivs...)
		return
	}
	for _, s := range c.subs {
		s.appendLeaves(out)
	}
}

// ToSet returns the normalized point set covered by the calendar's leaves.
func (c *Calendar) ToSet() interval.Set {
	var ivs []interval.Interval
	c.appendLeaves(&ivs)
	return interval.NewSet(ivs...)
}

// Hull returns the smallest interval covering every leaf.
func (c *Calendar) Hull() (interval.Interval, bool) {
	return c.ToSet().Hull()
}

// Cardinality returns the total number of leaf intervals.
func (c *Calendar) Cardinality() int {
	if len(c.subs) == 0 {
		return len(c.ivs)
	}
	n := 0
	for _, s := range c.subs {
		n += s.Cardinality()
	}
	return n
}

// Equal reports structural equality: same granularity, order, and elements.
func (c *Calendar) Equal(d *Calendar) bool {
	if c == nil || d == nil {
		return c == d
	}
	if c.gran != d.gran || len(c.ivs) != len(d.ivs) || len(c.subs) != len(d.subs) {
		return false
	}
	for i := range c.ivs {
		if c.ivs[i] != d.ivs[i] {
			return false
		}
	}
	for i := range c.subs {
		if !c.subs[i].Equal(d.subs[i]) {
			return false
		}
	}
	return true
}

// String renders the calendar in the paper's nested-brace notation, e.g.
// {(1,31),(32,59)} or {{(4,10),(11,17)},{(32,38)}}.
func (c *Calendar) String() string {
	var b strings.Builder
	c.render(&b)
	return b.String()
}

func (c *Calendar) render(b *strings.Builder) {
	b.WriteByte('{')
	if len(c.subs) > 0 {
		for i, s := range c.subs {
			if i > 0 {
				b.WriteByte(',')
			}
			s.render(b)
		}
	} else {
		for i, iv := range c.ivs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(iv.String())
		}
	}
	b.WriteByte('}')
}

// SingleInterval reports whether c is an order-1 calendar containing exactly
// one interval, in which case the paper treats it interchangeably with that
// interval (e.g. Jan-1993 ≡ {(1,31)}).
func (c *Calendar) SingleInterval() (interval.Interval, bool) {
	if c.Order() == 1 && len(c.ivs) == 1 {
		return c.ivs[0], true
	}
	return interval.Interval{}, false
}
