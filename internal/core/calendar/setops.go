package calendar

import (
	"fmt"
	"sort"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// The calendar set operators are element-wise: a calendar is an ordered
// collection of intervals (LMF86), so union keeps the elements of both
// operands, and difference/intersection trim or split each element of the
// left operand against the right operand's point coverage — adjacent
// elements are never merged. The paper's AM_BUS_DAYS stays a list of
// single-day elements after "WD - HOLIDAYS", exactly as §3.3 displays it.

// checkSetOperands validates the operands of the set operators (+, -,
// intersects), which the paper applies to order-1 calendars of a common
// granularity.
func checkSetOperands(opName string, a, b *Calendar) error {
	if a.gran != b.gran {
		return fmt.Errorf("calendar: %s granularity mismatch: %v vs %v", opName, a.gran, b.gran)
	}
	if a.Order() != 1 || b.Order() != 1 {
		return fmt.Errorf("calendar: %s requires order-1 operands (got order %d and %d)", opName, a.Order(), b.Order())
	}
	return nil
}

// Union implements the calendar "+" operator: the merged, ordered element
// list of both calendars, with exact duplicates kept once (see the EMP-DAYS
// script of §3.3).
func Union(a, b *Calendar) (*Calendar, error) {
	if err := checkSetOperands("+", a, b); err != nil {
		return nil, err
	}
	out := make([]interval.Interval, 0, len(a.ivs)+len(b.ivs))
	i, j := 0, 0
	for i < len(a.ivs) || j < len(b.ivs) {
		switch {
		case i >= len(a.ivs):
			out = appendUnlessDup(out, b.ivs[j])
			j++
		case j >= len(b.ivs):
			out = appendUnlessDup(out, a.ivs[i])
			i++
		case a.ivs[i] == b.ivs[j]:
			out = appendUnlessDup(out, a.ivs[i])
			i++
			j++
		case less(a.ivs[i], b.ivs[j]):
			out = appendUnlessDup(out, a.ivs[i])
			i++
		default:
			out = appendUnlessDup(out, b.ivs[j])
			j++
		}
	}
	return newLeaf(a.gran, out), nil
}

func less(x, y interval.Interval) bool {
	if x.Lo != y.Lo {
		return x.Lo < y.Lo
	}
	return x.Hi < y.Hi
}

func appendUnlessDup(out []interval.Interval, iv interval.Interval) []interval.Interval {
	if n := len(out); n > 0 && out[n-1] == iv {
		return out
	}
	return append(out, iv)
}

// coverage returns b's covered ticks as a sorted disjoint interval list.
// When b already has that shape its element list serves directly (adjacent
// elements stay unmerged — callers that need point-set normalization merge
// adjacency on the fly); otherwise the normalized point set is built once.
func coverage(b *Calendar) []interval.Interval {
	if b.sortedDisjoint {
		return b.ivs
	}
	return b.ToSet().Intervals()
}

// Diff implements the calendar "-" operator: each element of a has b's
// covered ticks removed, splitting where necessary; surviving pieces stay
// separate elements. One linear merge over b's coverage: a's elements have
// non-decreasing lower bounds, so the first coverage interval that can cut an
// element only moves forward.
func Diff(a, b *Calendar) (*Calendar, error) {
	if err := checkSetOperands("-", a, b); err != nil {
		return nil, err
	}
	cov := coverage(b)
	out := make([]interval.Interval, 0, len(a.ivs))
	j := 0
	for _, iv := range a.ivs {
		for j < len(cov) && cov[j].Hi < iv.Lo {
			j++
		}
		lo, dead := iv.Lo, false
		for k := j; k < len(cov) && cov[k].Lo <= iv.Hi; k++ {
			if cov[k].Lo > lo {
				out = append(out, interval.Interval{Lo: lo, Hi: chronology.PrevTick(cov[k].Lo)})
			}
			if cov[k].Hi >= iv.Hi {
				dead = true
				break
			}
			lo = chronology.NextTick(cov[k].Hi)
		}
		if !dead && lo <= iv.Hi {
			out = append(out, interval.Interval{Lo: lo, Hi: iv.Hi})
		}
	}
	return newLeaf(a.gran, out), nil
}

// Intersect implements the "intersects" operator of the calendar scripts:
// the pieces of each element of a covered by b, via the same linear merge as
// Diff. Note this is distinct from the overlaps listop —
// {LDOM:intersects:HOLIDAYS} in §3.3 yields the order-1 calendar of days
// that are both. Coverage pieces adjacent in tick space fuse (the operator
// has point-set semantics), so cuts of one element merge when they touch.
func Intersect(a, b *Calendar) (*Calendar, error) {
	if err := checkSetOperands("intersects", a, b); err != nil {
		return nil, err
	}
	cov := coverage(b)
	var out []interval.Interval
	j := 0
	for _, iv := range a.ivs {
		for j < len(cov) && cov[j].Hi < iv.Lo {
			j++
		}
		mark := len(out)
		for k := j; k < len(cov) && cov[k].Lo <= iv.Hi; k++ {
			cut, ok := iv.Intersect(cov[k])
			if !ok {
				continue
			}
			if n := len(out); n > mark && chronology.NextTick(out[n-1].Hi) == cut.Lo {
				out[n-1].Hi = cut.Hi
				continue
			}
			out = append(out, cut)
		}
	}
	return newLeaf(a.gran, out), nil
}

// ClipToInterval restricts an order-1 calendar to the parts of its elements
// inside iv, dropping elements that fall entirely outside. Evaluation plans
// use this to honor generation windows and lifespans.
func ClipToInterval(c *Calendar, iv interval.Interval) (*Calendar, error) {
	if err := iv.Check(); err != nil {
		return nil, err
	}
	return ForeachInterval(c, interval.Overlaps, true, iv)
}

// SliceOverlapping returns the order-1 sub-calendar of c whose elements
// overlap win, untruncated. When c's intervals are sorted with
// non-decreasing upper bounds — the shape of every generated calendar, whose
// units partition time — the result is exactly what generating c's calendar
// over win directly would produce, which is what lets the materialization
// cache serve subset windows from a superset materialization by slicing.
// The backing array is shared; calendars are immutable.
func SliceOverlapping(c *Calendar, win interval.Interval) *Calendar {
	ivs := c.Intervals()
	lo := sort.Search(len(ivs), func(i int) bool { return ivs[i].Hi >= win.Lo })
	hi := sort.Search(len(ivs), func(i int) bool { return ivs[i].Lo > win.Hi })
	if hi < lo {
		hi = lo
	}
	return &Calendar{gran: c.gran, ivs: ivs[lo:hi], sortedDisjoint: c.sortedDisjoint}
}
