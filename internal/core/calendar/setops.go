package calendar

import (
	"fmt"
	"sort"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// The calendar set operators are element-wise: a calendar is an ordered
// collection of intervals (LMF86), so union keeps the elements of both
// operands, and difference/intersection trim or split each element of the
// left operand against the right operand's point coverage — adjacent
// elements are never merged. The paper's AM_BUS_DAYS stays a list of
// single-day elements after "WD - HOLIDAYS", exactly as §3.3 displays it.

// checkSetOperands validates the operands of the set operators (+, -,
// intersects), which the paper applies to order-1 calendars of a common
// granularity.
func checkSetOperands(opName string, a, b *Calendar) error {
	if a.gran != b.gran {
		return fmt.Errorf("calendar: %s granularity mismatch: %v vs %v", opName, a.gran, b.gran)
	}
	if a.Order() != 1 || b.Order() != 1 {
		return fmt.Errorf("calendar: %s requires order-1 operands (got order %d and %d)", opName, a.Order(), b.Order())
	}
	return nil
}

// Union implements the calendar "+" operator: the merged, ordered element
// list of both calendars, with exact duplicates kept once (see the EMP-DAYS
// script of §3.3). When both operands are sorted disjoint — the common case
// for generated calendars — duplicates can only meet head-to-head, so the
// merge needs no look-back dup check and classifies the result's shape as it
// goes instead of rescanning.
func Union(a, b *Calendar) (*Calendar, error) {
	if err := checkSetOperands("+", a, b); err != nil {
		return nil, err
	}
	if a.sortedDisjoint && b.sortedDisjoint {
		return unionDisjoint(a, b), nil
	}
	return UnionLinear(a, b)
}

func unionDisjoint(a, b *Calendar) *Calendar {
	out := make([]interval.Interval, 0, len(a.ivs)+len(b.ivs))
	i, j := 0, 0
	sd := true
	var prevHi chronology.Tick
	for i < len(a.ivs) || j < len(b.ivs) {
		var iv interval.Interval
		switch {
		case i >= len(a.ivs):
			iv = b.ivs[j]
			j++
		case j >= len(b.ivs):
			iv = a.ivs[i]
			i++
		case a.ivs[i] == b.ivs[j]:
			iv = a.ivs[i]
			i++
			j++
		case less(a.ivs[i], b.ivs[j]):
			iv = a.ivs[i]
			i++
		default:
			iv = b.ivs[j]
			j++
		}
		if len(out) > 0 && iv.Lo <= prevHi {
			sd = false
		}
		prevHi = iv.Hi
		out = append(out, iv)
	}
	return &Calendar{gran: a.gran, ivs: out, sortedDisjoint: sd}
}

// UnionLinear is the general element merge with the look-back duplicate
// check, used when either operand lacks the sorted disjoint shape. Exported
// so BenchmarkEndpointSweepVsLinear can hold it against the specialized
// merge.
func UnionLinear(a, b *Calendar) (*Calendar, error) {
	if err := checkSetOperands("+", a, b); err != nil {
		return nil, err
	}
	out := make([]interval.Interval, 0, len(a.ivs)+len(b.ivs))
	i, j := 0, 0
	for i < len(a.ivs) || j < len(b.ivs) {
		switch {
		case i >= len(a.ivs):
			out = appendUnlessDup(out, b.ivs[j])
			j++
		case j >= len(b.ivs):
			out = appendUnlessDup(out, a.ivs[i])
			i++
		case a.ivs[i] == b.ivs[j]:
			out = appendUnlessDup(out, a.ivs[i])
			i++
			j++
		case less(a.ivs[i], b.ivs[j]):
			out = appendUnlessDup(out, a.ivs[i])
			i++
		default:
			out = appendUnlessDup(out, b.ivs[j])
			j++
		}
	}
	return newLeaf(a.gran, out), nil
}

func less(x, y interval.Interval) bool {
	if x.Lo != y.Lo {
		return x.Lo < y.Lo
	}
	return x.Hi < y.Hi
}

func appendUnlessDup(out []interval.Interval, iv interval.Interval) []interval.Interval {
	if n := len(out); n > 0 && out[n-1] == iv {
		return out
	}
	return append(out, iv)
}

// coverageLinear is the pre-index coverage: b's covered ticks as a sorted
// disjoint interval list, rebuilt (and, for messy operands, reallocated) on
// every call. The production operators instead read the fused coverage
// cached on b's endpoint index (covindex, endpointidx.go), which is built at
// most once per calendar and collapses adjacent elements — a WEEKS operand
// in day ticks becomes a single span. Kept only under the *Linear baselines.
func coverageLinear(b *Calendar) []interval.Interval {
	if b.sortedDisjoint {
		return b.ivs
	}
	return b.ToSet().Intervals()
}

// Diff implements the calendar "-" operator: each element of a has b's
// covered ticks removed, splitting where necessary; surviving pieces stay
// separate elements. One linear merge of a's elements (non-decreasing lower
// bounds, so the first coverage span that can cut an element only moves
// forward) against b's cached fused coverage.
func Diff(a, b *Calendar) (*Calendar, error) {
	if err := checkSetOperands("-", a, b); err != nil {
		return nil, err
	}
	cv := b.covindex()
	covLo, covHi := cv.lo, cv.hi
	out := make([]interval.Interval, 0, len(a.ivs))
	j := 0
	for _, iv := range a.ivs {
		for j < len(covLo) && covHi[j] < iv.Lo {
			j++
		}
		lo, dead := iv.Lo, false
		for k := j; k < len(covLo) && covLo[k] <= iv.Hi; k++ {
			if covLo[k] > lo {
				out = append(out, interval.Interval{Lo: lo, Hi: chronology.PrevTick(covLo[k])})
			}
			if covHi[k] >= iv.Hi {
				dead = true
				break
			}
			lo = chronology.NextTick(covHi[k])
		}
		if !dead && lo <= iv.Hi {
			out = append(out, interval.Interval{Lo: lo, Hi: iv.Hi})
		}
	}
	return newLeaf(a.gran, out), nil
}

// DiffLinear is Diff over the per-call coverageLinear scan, retained as the
// baseline arm of BenchmarkEndpointSweepVsLinear and as a property-test
// oracle.
func DiffLinear(a, b *Calendar) (*Calendar, error) {
	if err := checkSetOperands("-", a, b); err != nil {
		return nil, err
	}
	cov := coverageLinear(b)
	out := make([]interval.Interval, 0, len(a.ivs))
	j := 0
	for _, iv := range a.ivs {
		for j < len(cov) && cov[j].Hi < iv.Lo {
			j++
		}
		lo, dead := iv.Lo, false
		for k := j; k < len(cov) && cov[k].Lo <= iv.Hi; k++ {
			if cov[k].Lo > lo {
				out = append(out, interval.Interval{Lo: lo, Hi: chronology.PrevTick(cov[k].Lo)})
			}
			if cov[k].Hi >= iv.Hi {
				dead = true
				break
			}
			lo = chronology.NextTick(cov[k].Hi)
		}
		if !dead && lo <= iv.Hi {
			out = append(out, interval.Interval{Lo: lo, Hi: iv.Hi})
		}
	}
	return newLeaf(a.gran, out), nil
}

// Intersect implements the "intersects" operator of the calendar scripts:
// the pieces of each element of a covered by b, via the same merge as Diff
// against b's cached fused coverage. Note this is distinct from the overlaps
// listop — {LDOM:intersects:HOLIDAYS} in §3.3 yields the order-1 calendar of
// days that are both. The operator has point-set semantics, so cuts of one
// element that touch must merge; with the coverage already fused, distinct
// spans are separated by uncovered ticks and cuts can never touch, so no
// fuse check is needed in the loop (the same invariant periodic.SetIntersect
// relies on).
func Intersect(a, b *Calendar) (*Calendar, error) {
	if err := checkSetOperands("intersects", a, b); err != nil {
		return nil, err
	}
	cv := b.covindex()
	covLo, covHi := cv.lo, cv.hi
	out := make([]interval.Interval, 0, len(a.ivs))
	j := 0
	for _, iv := range a.ivs {
		for j < len(covLo) && covHi[j] < iv.Lo {
			j++
		}
		for k := j; k < len(covLo) && covLo[k] <= iv.Hi; k++ {
			cut := iv
			if covLo[k] > cut.Lo {
				cut.Lo = covLo[k]
			}
			if covHi[k] < cut.Hi {
				cut.Hi = covHi[k]
			}
			if cut.Lo <= cut.Hi {
				out = append(out, cut)
			}
		}
	}
	return newLeaf(a.gran, out), nil
}

// IntersectLinear is Intersect over the per-call coverageLinear scan with
// the on-the-fly adjacent-cut fuse the unfused coverage requires; the
// baseline arm of BenchmarkEndpointSweepVsLinear and a property-test oracle.
func IntersectLinear(a, b *Calendar) (*Calendar, error) {
	if err := checkSetOperands("intersects", a, b); err != nil {
		return nil, err
	}
	cov := coverageLinear(b)
	var out []interval.Interval
	j := 0
	for _, iv := range a.ivs {
		for j < len(cov) && cov[j].Hi < iv.Lo {
			j++
		}
		mark := len(out)
		for k := j; k < len(cov) && cov[k].Lo <= iv.Hi; k++ {
			cut, ok := iv.Intersect(cov[k])
			if !ok {
				continue
			}
			if n := len(out); n > mark && chronology.NextTick(out[n-1].Hi) == cut.Lo {
				out[n-1].Hi = cut.Hi
				continue
			}
			out = append(out, cut)
		}
	}
	return newLeaf(a.gran, out), nil
}

// ClipToInterval restricts an order-1 calendar to the parts of its elements
// inside iv, dropping elements that fall entirely outside. Evaluation plans
// use this to honor generation windows and lifespans.
func ClipToInterval(c *Calendar, iv interval.Interval) (*Calendar, error) {
	if err := iv.Check(); err != nil {
		return nil, err
	}
	return ForeachInterval(c, interval.Overlaps, true, iv)
}

// SliceOverlapping returns the order-1 sub-calendar of c whose elements
// overlap win, untruncated. When c's intervals are sorted with
// non-decreasing upper bounds — the shape of every generated calendar, whose
// units partition time — the result is exactly what generating c's calendar
// over win directly would produce, which is what lets the materialization
// cache serve subset windows from a superset materialization by slicing.
// The backing array is shared; calendars are immutable.
func SliceOverlapping(c *Calendar, win interval.Interval) *Calendar {
	ivs := c.Intervals()
	lo := sort.Search(len(ivs), func(i int) bool { return ivs[i].Hi >= win.Lo })
	hi := sort.Search(len(ivs), func(i int) bool { return ivs[i].Lo > win.Hi })
	if hi < lo {
		hi = lo
	}
	out := &Calendar{gran: c.gran, ivs: ivs[lo:hi], sortedDisjoint: c.sortedDisjoint}
	// A cached materialization keeps its endpoint index (matcache primes it
	// at Put time); the sliced view inherits the matching sub-range of the
	// flat bound arrays so subset-window hits never re-lower the list. The
	// fused coverage is not sliceable (spans fuse across the cut points) and
	// is left to rebuild lazily if a set op needs it.
	if ix := c.idx.Load(); ix != nil && ix.lo != nil && hi > lo {
		out.idx.Store(&epIndex{lo: ix.lo[lo:hi:hi], hi: ix.hi[lo:hi:hi]})
	}
	return out
}
