package calendar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// randOrder1 builds a random order-1 day calendar with n elements.
func randOrder1(rng *rand.Rand, n int) *Calendar {
	ivs := make([]interval.Interval, 0, n)
	lo := int64(rng.Intn(30) - 15)
	if lo == 0 {
		lo = 1
	}
	for i := 0; i < n; i++ {
		hi := chronology.AddTicks(lo, int64(rng.Intn(6)))
		ivs = append(ivs, interval.Interval{Lo: lo, Hi: hi})
		// Advance at least one tick so elements stay disjoint (calendars may
		// legally overlap, but the set-law properties assume element lists).
		lo = chronology.AddTicks(hi, int64(rng.Intn(4))+1)
	}
	c, err := FromIntervals(chronology.Day, ivs)
	if err != nil {
		panic(err)
	}
	return c
}

func randIval(rng *rand.Rand) interval.Interval {
	lo := int64(rng.Intn(40) - 20)
	if lo == 0 {
		lo = 1
	}
	return interval.Interval{Lo: lo, Hi: chronology.AddTicks(lo, int64(rng.Intn(15)))}
}

// Identity: every strict-during survivor also survives strict overlaps, and
// every strict-overlaps element is contained in the corresponding relaxed
// element set.
func TestForeachContainmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randOrder1(rng, rng.Intn(8)+1)
		iv := randIval(rng)
		during, err := ForeachInterval(c, interval.During, true, iv)
		if err != nil {
			return false
		}
		strictOv, err := ForeachInterval(c, interval.Overlaps, true, iv)
		if err != nil {
			return false
		}
		relaxedOv, err := ForeachInterval(c, interval.Overlaps, false, iv)
		if err != nil {
			return false
		}
		// during ⊆ strict overlaps (as point sets).
		if !during.ToSet().Diff(strictOv.ToSet()).Empty() {
			return false
		}
		// strict overlaps ⊆ relaxed overlaps (trimming only removes points).
		if !strictOv.ToSet().Diff(relaxedOv.ToSet()).Empty() {
			return false
		}
		// Same survivor count for strict and relaxed overlaps.
		return strictOv.Len() == relaxedOv.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Identity: strict overlaps equals relaxed overlaps intersected with the
// argument interval.
func TestStrictIsRelaxedClippedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randOrder1(rng, rng.Intn(8)+1)
		iv := randIval(rng)
		strict, err := ForeachInterval(c, interval.Overlaps, true, iv)
		if err != nil {
			return false
		}
		relaxed, err := ForeachInterval(c, interval.Overlaps, false, iv)
		if err != nil {
			return false
		}
		clipped := relaxed.ToSet().Intersect(interval.NewSet(iv))
		return strict.ToSet().Equal(clipped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Selection laws: [k] twice is [k] then [1]; [n] equals [-1]; selection
// never invents elements.
func TestSelectionLawsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randOrder1(rng, rng.Intn(9)+1)
		k := rng.Intn(9) + 1
		sel, err := Select(SelectIndex(k), c)
		if err != nil {
			return false
		}
		// Idempotence via [1]: selecting again yields the same element.
		again, err := Select(SelectIndex(1), sel)
		if err != nil {
			return false
		}
		if !again.Equal(sel) {
			return false
		}
		last, err := Select(SelectLast(), c)
		if err != nil {
			return false
		}
		negOne, err := Select(SelectIndex(-1), c)
		if err != nil {
			return false
		}
		if !last.Equal(negOne) {
			return false
		}
		// Subset: selected points are points of c.
		return sel.ToSet().Diff(c.ToSet()).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Set-operator laws at the calendar level: A - B, A:intersects:B and B
// partition A∪B's points correctly.
func TestCalendarSetLawsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randOrder1(rng, rng.Intn(6)+1)
		b := randOrder1(rng, rng.Intn(6)+1)
		u, err := Union(a, b)
		if err != nil {
			return false
		}
		d, err := Diff(a, b)
		if err != nil {
			return false
		}
		x, err := Intersect(a, b)
		if err != nil {
			return false
		}
		// Point-set semantics: union covers both; diff+intersect = a.
		if !u.ToSet().Equal(a.ToSet().Union(b.ToSet())) {
			return false
		}
		if !d.ToSet().Union(x.ToSet()).Equal(a.ToSet()) {
			return false
		}
		if !d.ToSet().Intersect(b.ToSet()).Empty() {
			return false
		}
		// Element atomicity: difference never merges adjacent elements.
		for i := 1; i < d.Len(); i++ {
			if d.Interval(i-1).Hi >= d.Interval(i).Lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Caloperate conservation: grouping preserves the element hull and the
// element count matches ceil division for uniform counts.
func TestCaloperateConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		c := randOrder1(rng, n)
		k := rng.Intn(5) + 1
		g, err := Caloperate(c, []int{k})
		if err != nil {
			return false
		}
		want := (n + k - 1) / k
		if g.Len() != want {
			return false
		}
		h1, ok1 := c.Hull()
		h2, ok2 := g.Hull()
		return ok1 && ok2 && h1 == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Flatten preserves the point set and leaf count for foreach results.
func TestFlattenInvariantProperty(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	f := func(spanRaw uint8) bool {
		span := int64(spanRaw)%300 + 40
		weeks, err := GenerateFull(ch, chronology.Week, chronology.Day, 1, span)
		if err != nil {
			return false
		}
		days, err := GenerateFull(ch, chronology.Day, chronology.Day, 1, span)
		if err != nil {
			return false
		}
		o2, err := Foreach(days, interval.During, true, weeks)
		if err != nil {
			return false
		}
		flat := o2.Flatten()
		if flat.Order() != 1 {
			return false
		}
		if flat.Len() != o2.Cardinality() {
			return false
		}
		return flat.ToSet().Equal(o2.ToSet())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The merge-sweep fast path must agree with the per-element definition for
// every listop and strictness, on generated (disjoint sorted) calendars and
// on random possibly-overlapping ones.
func TestForeachSweepEquivalenceProperty(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	naive := func(c *Calendar, op interval.ListOp, strict bool, arg *Calendar) *Calendar {
		subs := make([]*Calendar, 0, arg.Len())
		for _, iv := range arg.Intervals() {
			sub, err := ForeachInterval(c, op, strict, iv)
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, sub)
		}
		out, err := FromSubs(subs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c, arg *Calendar
		if rng.Intn(2) == 0 {
			span := int64(rng.Intn(400) + 60)
			var err error
			c, err = GenerateFull(ch, chronology.Week, chronology.Day, 1, span)
			if err != nil {
				return false
			}
			arg, err = GenerateFull(ch, chronology.Month, chronology.Day, 1, span)
			if err != nil {
				return false
			}
		} else {
			c = randOrder1(rng, rng.Intn(8)+2)
			arg = randOrder1(rng, rng.Intn(4)+2)
		}
		for _, op := range []interval.ListOp{interval.During, interval.Overlaps} {
			for _, strict := range []bool{true, false} {
				got, err := Foreach(c, op, strict, arg)
				if err != nil {
					return false
				}
				want := naive(c, op, strict, arg)
				if !got.Equal(want) {
					t.Logf("op=%v strict=%v\n got %v\nwant %v", op, strict, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
