package calendar

import (
	"strings"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

func iv(lo, hi int64) interval.Interval { return interval.Must(lo, hi) }

func chron1993(t testing.TB) *chronology.Chronology {
	t.Helper()
	return chronology.MustNew(chronology.Civil{Year: 1993, Month: 1, Day: 1})
}

func chron1987(t testing.TB) *chronology.Chronology {
	t.Helper()
	return chronology.MustNew(chronology.DefaultEpoch)
}

// weeks1993 returns the paper's WEEKS calendar for 1993 in day ticks:
// {(-4,3),(4,10),(11,17),...}.
func weeks1993(t testing.TB, ch *chronology.Chronology) *Calendar {
	t.Helper()
	c, err := Generate(ch, chronology.Week, chronology.Day, 1, 365)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// months1993 returns the paper's Year-1993 calendar of months in day ticks:
// {(1,31),(32,59),(60,90),...}.
func months1993(t testing.TB, ch *chronology.Chronology) *Calendar {
	t.Helper()
	c, err := Generate(ch, chronology.Month, chronology.Day, 1, 365)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFromIntervalsValidation(t *testing.T) {
	if _, err := FromIntervals(chronology.Day, []interval.Interval{iv(1, 5), iv(3, 9)}); err != nil {
		t.Errorf("overlapping but ordered intervals are allowed: %v", err)
	}
	if _, err := FromIntervals(chronology.Day, []interval.Interval{iv(5, 9), iv(1, 3)}); err == nil {
		t.Error("out-of-order intervals should be rejected")
	}
	if _, err := FromIntervals(chronology.Day, []interval.Interval{{Lo: 0, Hi: 3}}); err == nil {
		t.Error("zero endpoint should be rejected")
	}
	if _, err := FromIntervals(chronology.Granularity(99), nil); err == nil {
		t.Error("invalid granularity should be rejected")
	}
}

func TestOrderAndShape(t *testing.T) {
	c1 := MustFromIntervals(chronology.Day, iv(1, 3), iv(5, 9))
	if c1.Order() != 1 || c1.Len() != 2 || c1.IsEmpty() {
		t.Error("order-1 shape wrong")
	}
	c2, err := FromSubs([]*Calendar{c1, MustFromIntervals(chronology.Day, iv(20, 25))})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Order() != 2 || c2.Len() != 2 {
		t.Error("order-2 shape wrong")
	}
	if c2.Cardinality() != 3 {
		t.Errorf("Cardinality = %d", c2.Cardinality())
	}
	flat := c2.Flatten()
	if flat.Order() != 1 || flat.Len() != 3 {
		t.Errorf("Flatten = %v", flat)
	}
	if got := c2.String(); got != "{{(1,3),(5,9)},{(20,25)}}" {
		t.Errorf("String = %q", got)
	}
}

func TestFromSubsValidation(t *testing.T) {
	day := MustFromIntervals(chronology.Day, iv(1, 3))
	week := MustFromIntervals(chronology.Week, iv(1, 3))
	if _, err := FromSubs(nil); err == nil {
		t.Error("empty subs should be rejected")
	}
	if _, err := FromSubs([]*Calendar{day, week}); err == nil {
		t.Error("mixed granularity subs should be rejected")
	}
	if _, err := FromSubs([]*Calendar{day, nil}); err == nil {
		t.Error("nil sub should be rejected")
	}
	two, _ := FromSubs([]*Calendar{day})
	if _, err := FromSubs([]*Calendar{day, two}); err == nil {
		t.Error("mixed order subs should be rejected")
	}
}

func TestFromPoints(t *testing.T) {
	hol, err := FromPoints(chronology.Day, []chronology.Tick{31, 90})
	if err != nil {
		t.Fatal(err)
	}
	if hol.String() != "{(31,31),(90,90)}" {
		t.Errorf("holidays = %v", hol)
	}
	if _, err := FromPoints(chronology.Day, []chronology.Tick{0}); err == nil {
		t.Error("tick 0 point should be rejected")
	}
}

func TestIntervalsPanicsOnHighOrder(t *testing.T) {
	c2, _ := FromSubs([]*Calendar{MustFromIntervals(chronology.Day, iv(1, 2))})
	defer func() {
		if recover() == nil {
			t.Error("Intervals on order-2 should panic")
		}
	}()
	c2.Intervals()
}

// §3.1: WEEKS : during : Jan-1993 ≡ {(4,10),(11,17),(18,24),(25,31)}.
func TestPaperStrictForeachDuring(t *testing.T) {
	ch := chron1993(t)
	weeks := weeks1993(t, ch)
	got, err := ForeachInterval(weeks, interval.During, true, iv(1, 31))
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromIntervals(chronology.Day, iv(4, 10), iv(11, 17), iv(18, 24), iv(25, 31))
	if !got.Equal(want) {
		t.Errorf("WEEKS:during:Jan-1993 = %v, want %v", got, want)
	}
}

// §3.1: WEEKS : overlaps : Jan-1993 ≡ {(1,3),(4,10),(11,17),(18,24),(25,31)}.
func TestPaperStrictForeachOverlaps(t *testing.T) {
	ch := chron1993(t)
	weeks := weeks1993(t, ch)
	got, err := ForeachInterval(weeks, interval.Overlaps, true, iv(1, 31))
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromIntervals(chronology.Day, iv(1, 3), iv(4, 10), iv(11, 17), iv(18, 24), iv(25, 31))
	if !got.Equal(want) {
		t.Errorf("WEEKS:overlaps:Jan-1993 = %v, want %v", got, want)
	}
}

// §3.1: WEEKS . overlaps . Jan-1993 ≡ {(-4,3),(4,10),(11,17),(18,24),(25,31)}.
func TestPaperRelaxedForeachOverlaps(t *testing.T) {
	ch := chron1993(t)
	weeks := weeks1993(t, ch)
	got, err := ForeachInterval(weeks, interval.Overlaps, false, iv(1, 31))
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromIntervals(chronology.Day, iv(-4, 3), iv(4, 10), iv(11, 17), iv(18, 24), iv(25, 31))
	if !got.Equal(want) {
		t.Errorf("WEEKS.overlaps.Jan-1993 = %v, want %v", got, want)
	}
}

// §3.1: WEEKS : during : Year-1993 is an order-2 calendar of the weeks
// completely contained in every month of 1993.
func TestPaperForeachCalendarArg(t *testing.T) {
	ch := chron1993(t)
	weeks := weeks1993(t, ch)
	months := months1993(t, ch)
	got, err := Foreach(weeks, interval.During, true, months)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != 2 || got.Len() != 12 {
		t.Fatalf("order %d len %d", got.Order(), got.Len())
	}
	wantPrefix := "{{(4,10),(11,17),(18,24),(25,31)}," +
		"{(32,38),(39,45),(46,52),(53,59)}," +
		"{(60,66),(67,73),(74,80),(81,87)}," +
		"{(95,101),(102,108),(109,115)}"
	if !strings.HasPrefix(got.String(), wantPrefix) {
		t.Errorf("WEEKS:during:Year-1993 = %v\nwant prefix %v", got, wantPrefix)
	}
}

// §3.1: a single-interval calendar third argument behaves as an interval:
// WEEKS : during : {(1,31)} is order-1.
func TestForeachSingleIntervalCalendarArg(t *testing.T) {
	ch := chron1993(t)
	weeks := weeks1993(t, ch)
	jan := MustFromIntervals(chronology.Day, iv(1, 31))
	got, err := Foreach(weeks, interval.During, true, jan)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != 1 {
		t.Fatalf("order = %d, want 1", got.Order())
	}
	want := MustFromIntervals(chronology.Day, iv(4, 10), iv(11, 17), iv(18, 24), iv(25, 31))
	if !got.Equal(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestForeachValidation(t *testing.T) {
	ch := chron1993(t)
	weeks := weeks1993(t, ch)
	weekGran := MustFromIntervals(chronology.Week, iv(1, 4))
	if _, err := Foreach(weeks, interval.During, true, weekGran); err == nil {
		t.Error("granularity mismatch should be rejected")
	}
	o2, _ := FromSubs([]*Calendar{MustFromIntervals(chronology.Day, iv(1, 2), iv(3, 4))})
	if _, err := Foreach(weeks, interval.During, true, o2); err == nil {
		t.Error("order-2 third argument should be rejected")
	}
	if _, err := ForeachInterval(weeks, interval.ListOp(99), true, iv(1, 31)); err == nil {
		t.Error("invalid listop should be rejected")
	}
	if _, err := ForeachInterval(weeks, interval.During, true, interval.Interval{Lo: 3, Hi: 1}); err == nil {
		t.Error("invalid interval should be rejected")
	}
	got, err := Foreach(weeks, interval.During, true, Empty(chronology.Day))
	if err != nil || !got.IsEmpty() {
		t.Error("empty third argument should give empty result")
	}
}

// §3.1: [3]/WEEKS:overlaps:Jan-1993 ≡ {(11,17)}.
func TestPaperSelectionSingle(t *testing.T) {
	ch := chron1993(t)
	weeks := weeks1993(t, ch)
	overlap, err := ForeachInterval(weeks, interval.Overlaps, true, iv(1, 31))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Select(SelectIndex(3), overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(MustFromIntervals(chronology.Day, iv(11, 17))) {
		t.Errorf("[3]/... = %v", got)
	}
}

// §3.1: [3]/WEEKS:overlaps:Year-1993 ≡ {(11,17),(46,52),(74,80),(102,108),...}
// — selection on an order-2 calendar picks the 3rd week of each month and
// collapses to order 1.
func TestPaperSelectionOrder2(t *testing.T) {
	ch := chron1993(t)
	weeks := weeks1993(t, ch)
	months := months1993(t, ch)
	o2, err := Foreach(weeks, interval.Overlaps, true, months)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Select(SelectIndex(3), o2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != 1 {
		t.Fatalf("order = %d, want 1", got.Order())
	}
	wantPrefix := "{(11,17),(46,52),(74,80),(102,108)"
	if !strings.HasPrefix(got.String(), wantPrefix) {
		t.Errorf("[3]/WEEKS:overlaps:Year-1993 = %v, want prefix %v", got, wantPrefix)
	}
}

func TestSelectionForms(t *testing.T) {
	c := MustFromIntervals(chronology.Day, iv(1, 1), iv(2, 2), iv(3, 3), iv(4, 4), iv(5, 5))
	cases := []struct {
		sel  Selection
		want string
	}{
		{SelectIndex(1), "{(1,1)}"},
		{SelectIndex(-2), "{(4,4)}"},
		{SelectLast(), "{(5,5)}"},
		{SelectList(1, 3, 5), "{(1,1),(3,3),(5,5)}"},
		{SelectRange(2, 4), "{(2,2),(3,3),(4,4)}"},
		{SelectRange(4, 99), "{(4,4),(5,5)}"}, // clamped
		{SelectIndex(9), "{}"},                // out of range selects nothing
		{SelectIndex(-9), "{}"},
	}
	for _, tc := range cases {
		got, err := Select(tc.sel, c)
		if err != nil {
			t.Errorf("%v: %v", tc.sel, err)
			continue
		}
		if got.String() != tc.want {
			t.Errorf("%v/C = %v, want %v", tc.sel, got, tc.want)
		}
	}
}

func TestSelectionValidation(t *testing.T) {
	c := MustFromIntervals(chronology.Day, iv(1, 1))
	if _, err := Select(Selection{}, c); err == nil {
		t.Error("empty predicate should be rejected")
	}
	if _, err := Select(SelectIndex(0), c); err == nil {
		t.Error("position 0 should be rejected")
	}
	if _, err := Select(SelectRange(0, 3), c); err == nil {
		t.Error("range endpoint 0 should be rejected")
	}
}

func TestSelectionStringAndSingle(t *testing.T) {
	if s := SelectLast().String(); s != "[n]" {
		t.Errorf("String = %q", s)
	}
	if s := SelectList(1, -2).String(); s != "[1,-2]" {
		t.Errorf("String = %q", s)
	}
	if s := SelectRange(2, 5).String(); s != "[2-5]" {
		t.Errorf("String = %q", s)
	}
	if !SelectLast().Single() || !SelectIndex(-1).Single() || SelectList(1, 2).Single() || SelectRange(1, 2).Single() {
		t.Error("Single wrong")
	}
}

// Multi-element selection on an order-2 calendar preserves order 2.
func TestSelectionMultiKeepsOrder(t *testing.T) {
	ch := chron1993(t)
	weeks := weeks1993(t, ch)
	months := months1993(t, ch)
	o2, err := Foreach(weeks, interval.During, true, months)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Select(SelectList(1, 2), o2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != 2 {
		t.Fatalf("order = %d, want 2", got.Order())
	}
	if got.Subs()[0].String() != "{(4,10),(11,17)}" {
		t.Errorf("first month = %v", got.Subs()[0])
	}
}
