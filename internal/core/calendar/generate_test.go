package calendar

import (
	"testing"
	"testing/quick"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// §3.2: generate(YEARS, DAYS, [Jan 1 1987, Jan 3 1992]) ≡
// {(1,365),(366,731),(732,1096),(1097,1461),(1462,1826),(1827,1829)}.
func TestPaperGenerate(t *testing.T) {
	ch := chron1987(t)
	got, err := GenerateCivil(ch, chronology.Year, chronology.Day,
		chronology.Civil{Year: 1987, Month: 1, Day: 1},
		chronology.Civil{Year: 1992, Month: 1, Day: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromIntervals(chronology.Day,
		iv(1, 365), iv(366, 731), iv(732, 1096), iv(1097, 1461), iv(1462, 1826), iv(1827, 1829))
	if !got.Equal(want) {
		t.Errorf("generate(YEARS,DAYS,...) = %v\nwant %v", got, want)
	}
}

// §3.1: the 1993 WEEKS calendar begins {(-4,3),(4,10),...}: the unit
// straddling the window start keeps its true lower bound.
func TestGenerateKeepsStraddlingStart(t *testing.T) {
	ch := chron1993(t)
	weeks := weeks1993(t, ch)
	if weeks.Interval(0) != iv(-4, 3) {
		t.Errorf("first week = %v, want (-4,3)", weeks.Interval(0))
	}
	if weeks.Interval(1) != iv(4, 10) {
		t.Errorf("second week = %v, want (4,10)", weeks.Interval(1))
	}
}

func TestGenerateMonthsAndQuarters(t *testing.T) {
	ch := chron1993(t)
	months := months1993(t, ch)
	want := "{(1,31),(32,59),(60,90),(91,120),(121,151),(152,181),(182,212),(213,243),(244,273),(274,304),(305,334),(335,365)}"
	if months.String() != want {
		t.Errorf("months 1993 = %v", months)
	}
	// §3.2: QUARTERS = caloperate(MONTHS, *; 3) ≡ {(1,90),(91,181),...}.
	q, err := Caloperate(months, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "{(1,90),(91,181),(182,273),(274,365)}" {
		t.Errorf("quarters = %v", q)
	}
}

// §3.2: caloperate(days-of-year, *; 7) ≡ {(1,7),(8,14),(15,21),...}.
func TestPaperCaloperateWeeks(t *testing.T) {
	ch := chron1987(t)
	days, err := Generate(ch, chronology.Day, chronology.Day, 1, 365)
	if err != nil {
		t.Fatal(err)
	}
	weeks, err := Caloperate(days, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if weeks.Interval(0) != iv(1, 7) || weeks.Interval(1) != iv(8, 14) || weeks.Interval(2) != iv(15, 21) {
		t.Errorf("caloperate weeks = %v", weeks)
	}
	// 365 = 52*7 + 1: a final partial group is kept.
	if weeks.Len() != 53 || weeks.Interval(52) != iv(365, 365) {
		t.Errorf("last partial group wrong: len=%d last=%v", weeks.Len(), weeks.Interval(weeks.Len()-1))
	}
}

func TestCaloperateCircularCounts(t *testing.T) {
	c := MustFromIntervals(chronology.Day,
		iv(1, 1), iv(2, 2), iv(3, 3), iv(4, 4), iv(5, 5), iv(6, 6), iv(7, 7))
	// Alternating groups of 2 and 1: (1,2),(3,3),(4,5),(6,6),(7,7).
	got, err := Caloperate(c, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "{(1,2),(3,3),(4,5),(6,6),(7,7)}" {
		t.Errorf("caloperate(2,1) = %v", got)
	}
}

func TestCaloperateUntil(t *testing.T) {
	c := MustFromIntervals(chronology.Day,
		iv(1, 10), iv(11, 20), iv(21, 30), iv(31, 40))
	got, err := CaloperateUntil(c, []int{2}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "{(1,20),(21,25)}" {
		t.Errorf("CaloperateUntil = %v", got)
	}
	if _, err := CaloperateUntil(c, []int{2}, 0); err == nil {
		t.Error("tick-0 end time should be rejected")
	}
}

func TestCaloperateValidation(t *testing.T) {
	c := MustFromIntervals(chronology.Day, iv(1, 1))
	if _, err := Caloperate(c, nil); err == nil {
		t.Error("empty counts should be rejected")
	}
	if _, err := Caloperate(c, []int{0}); err == nil {
		t.Error("zero count should be rejected")
	}
	if _, err := Caloperate(c, []int{-2}); err == nil {
		t.Error("negative count should be rejected")
	}
	o2, _ := FromSubs([]*Calendar{c})
	if _, err := Caloperate(o2, []int{1}); err == nil {
		t.Error("order-2 input should be rejected")
	}
}

func TestGenerateValidation(t *testing.T) {
	ch := chron1987(t)
	if _, err := Generate(ch, chronology.Day, chronology.Year, 1, 2); err == nil {
		t.Error("expressing DAYS in YEARS units should be rejected")
	}
	if _, err := Generate(ch, chronology.Year, chronology.Day, 0, 10); err == nil {
		t.Error("tick-0 window start should be rejected")
	}
	if _, err := Generate(ch, chronology.Year, chronology.Day, 10, 1); err == nil {
		t.Error("reversed window should be rejected")
	}
	if _, err := Generate(ch, chronology.Granularity(99), chronology.Day, 1, 10); err == nil {
		t.Error("invalid granularity should be rejected")
	}
	if _, err := GenerateCivil(ch, chronology.Year, chronology.Day,
		chronology.Civil{Year: 1993, Month: 2, Day: 30}, chronology.Civil{Year: 1993, Month: 3, Day: 1}); err == nil {
		t.Error("invalid civil date should be rejected")
	}
	if _, err := GenerateCivil(ch, chronology.Year, chronology.Day,
		chronology.Civil{Year: 1994, Month: 1, Day: 1}, chronology.Civil{Year: 1993, Month: 1, Day: 1}); err == nil {
		t.Error("reversed civil window should be rejected")
	}
}

func TestGenerateIdentityGranularity(t *testing.T) {
	ch := chron1987(t)
	days, err := Generate(ch, chronology.Day, chronology.Day, -3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if days.String() != "{(-3,-3),(-2,-2),(-1,-1),(1,1),(2,2),(3,3)}" {
		t.Errorf("days = %v", days)
	}
}

func TestGenerateNegativeWindow(t *testing.T) {
	ch := chron1987(t)
	// The year before the epoch is year tick -1 (1986).
	years, err := Generate(ch, chronology.Year, chronology.Day, -365, -1)
	if err != nil {
		t.Fatal(err)
	}
	if years.Len() != 1 || years.Interval(0) != iv(-365, -1) {
		t.Errorf("1986 = %v", years)
	}
}

// Property: every day tick in the window is covered by exactly one generated
// unit, and units are sorted and non-overlapping for calendar-partition
// granularities.
func TestGeneratePartitionProperty(t *testing.T) {
	ch := chron1987(t)
	grans := []chronology.Granularity{chronology.Week, chronology.Month, chronology.Year}
	f := func(startOff int16, span uint8) bool {
		ts := chronology.TickFromOffset(int64(startOff))
		te := chronology.AddTicks(ts, int64(span))
		for _, g := range grans {
			c, err := Generate(ch, g, chronology.Day, ts, te)
			if err != nil {
				return false
			}
			ivs := c.Intervals()
			for i, ivl := range ivs {
				if ivl.Check() != nil {
					return false
				}
				if i > 0 && chronology.NextTick(ivs[i-1].Hi) != ivl.Lo {
					return false // units must tile contiguously
				}
			}
			// Window coverage: first unit reaches ts, last ends exactly at te.
			if len(ivs) == 0 || ivs[0].Lo > ts || ivs[len(ivs)-1].Hi != te {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: caloperate with count 1 is the identity on contiguous calendars.
func TestCaloperateIdentityProperty(t *testing.T) {
	ch := chron1987(t)
	f := func(startOff int16, span uint8) bool {
		ts := chronology.TickFromOffset(int64(startOff))
		te := chronology.AddTicks(ts, int64(span))
		c, err := Generate(ch, chronology.Day, chronology.Day, ts, te)
		if err != nil {
			return false
		}
		got, err := Caloperate(c, []int{1})
		if err != nil {
			return false
		}
		return got.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetOpsOnCalendars(t *testing.T) {
	ldom := MustFromIntervals(chronology.Day, iv(31, 31), iv(59, 59), iv(90, 90))
	hol := MustFromIntervals(chronology.Day, iv(31, 31), iv(90, 90))
	lastBus := MustFromIntervals(chronology.Day, iv(30, 30), iv(88, 88))

	ldomHol, err := Intersect(ldom, hol)
	if err != nil {
		t.Fatal(err)
	}
	if ldomHol.String() != "{(31,31),(90,90)}" {
		t.Errorf("intersects = %v", ldomHol)
	}
	d, err := Diff(ldom, ldomHol)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Union(d, lastBus)
	if err != nil {
		t.Fatal(err)
	}
	// §3.3 EMP-DAYS: {(30,30),(59,59),(88,88)}.
	if got.String() != "{(30,30),(59,59),(88,88)}" {
		t.Errorf("EMP-DAYS = %v", got)
	}
}

func TestSetOpsValidation(t *testing.T) {
	d := MustFromIntervals(chronology.Day, iv(1, 5))
	w := MustFromIntervals(chronology.Week, iv(1, 5))
	o2, _ := FromSubs([]*Calendar{d})
	if _, err := Union(d, w); err == nil {
		t.Error("granularity mismatch should be rejected")
	}
	if _, err := Diff(o2, d); err == nil {
		t.Error("order-2 operand should be rejected")
	}
	if _, err := Intersect(d, o2); err == nil {
		t.Error("order-2 operand should be rejected")
	}
}

func TestClipToInterval(t *testing.T) {
	c := MustFromIntervals(chronology.Day, iv(-4, 3), iv(4, 10), iv(40, 50))
	got, err := ClipToInterval(c, iv(1, 31))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "{(1,3),(4,10)}" {
		t.Errorf("clip = %v", got)
	}
	if _, err := ClipToInterval(c, interval.Interval{Lo: 5, Hi: 1}); err == nil {
		t.Error("invalid clip interval should be rejected")
	}
}

func TestHullAndToSet(t *testing.T) {
	c := MustFromIntervals(chronology.Day, iv(1, 5), iv(3, 9), iv(20, 22))
	h, ok := c.Hull()
	if !ok || h != iv(1, 22) {
		t.Errorf("Hull = %v,%v", h, ok)
	}
	s := c.ToSet()
	if s.String() != "{(1,9),(20,22)}" {
		t.Errorf("ToSet = %v", s)
	}
	if _, ok := Empty(chronology.Day).Hull(); ok {
		t.Error("empty hull should report false")
	}
}

func TestEqualEdgeCases(t *testing.T) {
	a := MustFromIntervals(chronology.Day, iv(1, 5))
	if !a.Equal(a) {
		t.Error("self equality")
	}
	if a.Equal(nil) {
		t.Error("nil inequality")
	}
	var nilCal *Calendar
	if !nilCal.Equal(nil) {
		t.Error("nil == nil")
	}
	b := MustFromIntervals(chronology.Week, iv(1, 5))
	if a.Equal(b) {
		t.Error("granularity must distinguish")
	}
	o2a, _ := FromSubs([]*Calendar{a})
	o2b, _ := FromSubs([]*Calendar{MustFromIntervals(chronology.Day, iv(1, 6))})
	if o2a.Equal(o2b) {
		t.Error("different subs must differ")
	}
}
