package calendar

import (
	"fmt"
	"strconv"
	"strings"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// Parse reads a calendar from the paper's brace notation produced by
// String: "{(1,31),(32,59)}" for order 1, "{{(4,10)},{(32,38)}}" for higher
// orders. It is the inverse of String and is used by the store's snapshot
// format.
func Parse(gran chronology.Granularity, s string) (*Calendar, error) {
	p := &calParser{src: s}
	c, err := p.parse(gran)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.i != len(p.src) {
		return nil, fmt.Errorf("calendar: trailing input %q", p.src[p.i:])
	}
	return c, nil
}

type calParser struct {
	src string
	i   int
}

func (p *calParser) skipSpace() {
	for p.i < len(p.src) && (p.src[p.i] == ' ' || p.src[p.i] == '\t' || p.src[p.i] == '\n') {
		p.i++
	}
}

func (p *calParser) peek() byte {
	if p.i >= len(p.src) {
		return 0
	}
	return p.src[p.i]
}

func (p *calParser) expect(b byte) error {
	p.skipSpace()
	if p.peek() != b {
		return fmt.Errorf("calendar: expected %q at offset %d of %q", string(b), p.i, p.src)
	}
	p.i++
	return nil
}

func (p *calParser) parse(gran chronology.Granularity) (*Calendar, error) {
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	p.skipSpace()
	switch p.peek() {
	case '}':
		p.i++
		return Empty(gran), nil
	case '{':
		var subs []*Calendar
		for {
			sub, err := p.parse(gran)
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
			p.skipSpace()
			if p.peek() == ',' {
				p.i++
				continue
			}
			break
		}
		if err := p.expect('}'); err != nil {
			return nil, err
		}
		return FromSubs(subs)
	case '(':
		var ivs []interval.Interval
		for {
			iv, err := p.parseInterval()
			if err != nil {
				return nil, err
			}
			ivs = append(ivs, iv)
			p.skipSpace()
			if p.peek() == ',' {
				p.i++
				continue
			}
			break
		}
		if err := p.expect('}'); err != nil {
			return nil, err
		}
		return FromIntervals(gran, ivs)
	}
	return nil, fmt.Errorf("calendar: expected '(' or '{' at offset %d of %q", p.i, p.src)
}

func (p *calParser) parseInterval() (interval.Interval, error) {
	if err := p.expect('('); err != nil {
		return interval.Interval{}, err
	}
	lo, err := p.parseInt()
	if err != nil {
		return interval.Interval{}, err
	}
	if err := p.expect(','); err != nil {
		return interval.Interval{}, err
	}
	hi, err := p.parseInt()
	if err != nil {
		return interval.Interval{}, err
	}
	if err := p.expect(')'); err != nil {
		return interval.Interval{}, err
	}
	return interval.New(lo, hi)
}

func (p *calParser) parseInt() (int64, error) {
	p.skipSpace()
	j := p.i
	if j < len(p.src) && (p.src[j] == '-' || p.src[j] == '+') {
		j++
	}
	for j < len(p.src) && p.src[j] >= '0' && p.src[j] <= '9' {
		j++
	}
	if j == p.i {
		return 0, fmt.Errorf("calendar: expected integer at offset %d of %q", p.i, p.src)
	}
	v, err := strconv.ParseInt(strings.TrimPrefix(p.src[p.i:j], "+"), 10, 64)
	if err != nil {
		return 0, err
	}
	p.i = j
	return v, nil
}
