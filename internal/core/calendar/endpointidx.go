package calendar

import (
	"errors"
	"sync"
	"sync/atomic"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

var (
	errInvalidListOp = errors.New("calendar: invalid listop in foreach")
	errSweepGran     = errors.New("calendar: sweep kernel granularity mismatch")
	errSweepShape    = errors.New("calendar: sweep kernels need order-1 sorted disjoint operands")
)

// This file holds the endpoint-index sweep kernels: the hot path under every
// windowed foreach and set operation once both operands have the sorted
// disjoint shape of generated calendars.
//
// Following Piatov, Helmer, Dignös and Persia ("Cache-Efficient
// Sweeping-Based Interval Joins for Extended Allen Relation Predicates"),
// the interval list is lowered once into two flat gapless []Tick arrays —
// all lower bounds, then all upper bounds, carved from a single backing
// allocation. A cursor advancing over one bound array touches 8 bytes per
// element instead of the 16-byte Interval struct, halving memory traffic,
// and the arrays are reused across every subsequent sweep because the index
// is cached on the Calendar (calendars are immutable). The kernels
// themselves are two-pass: a merge loop over the endpoint arrays that only
// advances monotone cursors and records per-group extents into a pooled
// arena (zero allocations), then a fill pass that shares sub-slices of the
// original interval list wherever the group is an untrimmed contiguous run
// and bulk-copies into one exact-size slab otherwise.

// epIndex is the flat endpoint index of an order-1 calendar.
type epIndex struct {
	// lo and hi hold the interval bounds as two flat arrays carved from one
	// backing allocation; both strictly increase. They are nil unless the
	// calendar is sortedDisjoint (the shape the sweep kernels require).
	lo, hi []chronology.Tick

	// cov lazily caches the fused point-set coverage (see covIndex); built
	// on the first Diff/Intersect against this calendar as operand b.
	cov atomic.Pointer[covIndex]
}

// covIndex is a calendar's covered ticks as flat sorted bound arrays with
// adjacent-in-tick-space spans fused — the point-set normal form the set
// operators merge against. For a calendar of adjacent units (WEEKS in day
// ticks) this collapses to a single span, so a Diff/Intersect against it is
// O(len(a)) instead of O(len(a)+len(b)).
type covIndex struct {
	lo, hi []chronology.Tick
}

// epindex returns the calendar's endpoint index, building and caching it on
// first use. The double-build race is benign: both goroutines construct
// identical immutable indexes and CompareAndSwap keeps exactly one.
func (c *Calendar) epindex() *epIndex {
	if p := c.idx.Load(); p != nil {
		return p
	}
	ix := buildEpIndex(c)
	if !c.idx.CompareAndSwap(nil, ix) {
		ix = c.idx.Load()
	}
	return ix
}

// PrimeIndex eagerly builds the endpoint index of an order-1 calendar so
// later sweeps over it never pay the lowering pass. The materialization
// cache primes entries at Put time: a cached calendar keeps its index
// alongside the interval slice for as long as it lives.
func (c *Calendar) PrimeIndex() {
	if c != nil && len(c.subs) == 0 {
		c.epindex()
	}
}

func buildEpIndex(c *Calendar) *epIndex {
	ix := &epIndex{}
	if c.sortedDisjoint && len(c.ivs) > 0 {
		n := len(c.ivs)
		buf := make([]chronology.Tick, 2*n)
		lo, hi := buf[:n:n], buf[n:]
		for i, iv := range c.ivs {
			lo[i] = iv.Lo
			hi[i] = iv.Hi
		}
		ix.lo, ix.hi = lo, hi
	}
	return ix
}

// covindex returns the calendar's fused coverage, building and caching it on
// first use (same benign race as epindex).
func (c *Calendar) covindex() *covIndex {
	ix := c.epindex()
	if cv := ix.cov.Load(); cv != nil {
		return cv
	}
	cv := buildCovIndex(c)
	if !ix.cov.CompareAndSwap(nil, cv) {
		cv = ix.cov.Load()
	}
	return cv
}

func buildCovIndex(c *Calendar) *covIndex {
	ivs := c.ivs
	if !c.sortedDisjoint {
		ivs = c.ToSet().Intervals()
	}
	// Count fused spans, then fill two flat arrays from one allocation.
	// (The ToSet path is already fused; the loop is then a straight copy.)
	spans := 0
	for i := range ivs {
		if i == 0 || ivs[i].Lo != chronology.NextTick(ivs[i-1].Hi) {
			spans++
		}
	}
	cv := &covIndex{}
	if spans > 0 {
		buf := make([]chronology.Tick, 2*spans)
		lo, hi := buf[:spans:spans], buf[spans:]
		k := -1
		for i, iv := range ivs {
			if i == 0 || iv.Lo != chronology.NextTick(ivs[i-1].Hi) {
				k++
				lo[k] = iv.Lo
			}
			hi[k] = iv.Hi
		}
		cv.lo, cv.hi = lo, hi
	}
	return cv
}

// runExtent records one arg element's matching run in c: the run starts at
// index first and spans n elements; trim is set when strict foreach must
// rewrite a boundary element, which forces the fill pass to copy the run
// instead of sharing it.
type runExtent struct {
	first, n int
	trim     bool
}

// sweepArena is the pooled scratch for the extent pass, reused across calls
// so the steady-state merge loop performs no allocation at all.
type sweepArena struct {
	ext []runExtent
}

var sweepArenas = sync.Pool{New: func() any { return new(sweepArena) }}

func (a *sweepArena) extents(n int) []runExtent {
	if cap(a.ext) < n {
		a.ext = make([]runExtent, n)
	}
	return a.ext[:n]
}

// sweepExtents is the merge loop: one pass over the flat endpoint arrays
// computing, for each arg element ys[k], the extent of its matching run in
// c under op. Every cursor only moves forward (both bound arrays strictly
// increase, and ys is sorted disjoint, so run boundaries are monotone in k);
// the loop reads two flat []Tick arrays and writes ext in place — zero
// allocations. It returns the total number of intervals the fill pass must
// copy (trimmed runs only; untrimmed runs are shared, not copied).
func sweepExtents(lo, hi []chronology.Tick, op interval.ListOp, strict bool, ys []interval.Interval, ext []runExtent) int {
	n := len(lo)
	slab := 0
	switch op {
	case interval.Overlaps:
		s, e := 0, 0
		for k := range ys {
			y := ys[k]
			for s < n && hi[s] < y.Lo {
				s++
			}
			if e < s {
				e = s
			}
			for e < n && lo[e] <= y.Hi {
				e++
			}
			ext[k] = runExtent{first: s, n: e - s}
			// Only the first run element can start before y and only the
			// last can end after it (their neighbors would otherwise
			// overlap), so strict trimming touches at most the boundaries.
			if strict && e > s && (lo[s] < y.Lo || hi[e-1] > y.Hi) {
				ext[k].trim = true
				slab += e - s
			}
		}

	case interval.During:
		// during needs no per-element filter at all: the matches are
		// exactly the indices with lo ≥ y.Lo and hi ≤ y.Hi, an index-range
		// intersection of two monotone cursors. Strict trimming is the
		// identity (every match is inside y), so runs are always shared.
		s, e := 0, 0
		for k := range ys {
			y := ys[k]
			for s < n && lo[s] < y.Lo {
				s++
			}
			for e < n && hi[e] <= y.Hi {
				e++
			}
			if e > s {
				ext[k] = runExtent{first: s, n: e - s}
			} else {
				ext[k] = runExtent{first: s}
			}
		}

	case interval.Meets:
		// Upper bounds strictly increase, so at most one element can end
		// exactly at y.Lo.
		m := 0
		for k := range ys {
			y := ys[k]
			for m < n && hi[m] < y.Lo {
				m++
			}
			if m < n && hi[m] == y.Lo {
				ext[k] = runExtent{first: m, n: 1}
				// Strict keeps x∩y = (y.Lo, y.Lo); a copy is needed unless
				// x already is that point.
				if strict && lo[m] < y.Lo {
					ext[k].trim = true
					slab++
				}
			} else {
				ext[k] = runExtent{first: m}
			}
		}

	case interval.Before:
		j := 0
		for k := range ys {
			y := ys[k]
			for j < n && hi[j] <= y.Lo {
				j++
			}
			ext[k] = runExtent{n: j}
			// The prefix's final element is the only one that can touch y
			// (at exactly the tick y.Lo); strict rewrites it to that point.
			if strict && j > 0 && hi[j-1] == y.Lo {
				ext[k].trim = true
				slab += j
			}
		}

	case interval.BeforeEquals:
		jlo, jhi := 0, 0
		for k := range ys {
			y := ys[k]
			for jlo < n && lo[jlo] <= y.Lo {
				jlo++
			}
			for jhi < n && hi[jhi] <= y.Hi {
				jhi++
			}
			j := jlo
			if jhi < j {
				j = jhi
			}
			ext[k] = runExtent{n: j}
			// Only the final prefix element can reach into y.
			if strict && j > 0 && hi[j-1] >= y.Lo {
				ext[k].trim = true
				slab += j
			}
		}
	}
	return slab
}

// foreachSweepEndpoint evaluates foreach over two sorted disjoint interval
// lists on c's endpoint index. Allocation profile per call (steady state,
// index built): one interval slab sized exactly to the trimmed runs, one
// []Calendar leaf block, one []*Calendar sub list, and the result — the
// merge loop itself allocates nothing (see sweepExtents).
func foreachSweepEndpoint(c *Calendar, op interval.ListOp, strict bool, arg *Calendar) *Calendar {
	ix := c.epindex()
	ys := arg.ivs
	arena := sweepArenas.Get().(*sweepArena)
	ext := arena.extents(len(ys))
	slabNeed := sweepExtents(ix.lo, ix.hi, op, strict, ys, ext)

	var slab []interval.Interval
	if slabNeed > 0 {
		slab = make([]interval.Interval, 0, slabNeed)
	}
	leaves := make([]Calendar, len(ys))
	subs := make([]*Calendar, len(ys))
	prefix := op == interval.Before || op == interval.BeforeEquals
	for k := range ys {
		e := ext[k]
		var run []interval.Interval
		switch {
		case !e.trim:
			// Untrimmed groups share c's backing array (capacity-clamped);
			// for the before operators that is the paper's shared prefix.
			run = c.ivs[e.first : e.first+e.n : e.first+e.n]
		case prefix:
			// Strict before/<=: copy the prefix, rewriting its final
			// element exactly as the linear kernel does.
			y := ys[k]
			mark := len(slab)
			slab = append(slab, c.ivs[:e.n]...)
			last := &slab[mark+e.n-1]
			if op == interval.Before {
				*last = interval.Interval{Lo: y.Lo, Hi: y.Lo}
			} else {
				last.Lo = y.Lo
			}
			run = slab[mark:len(slab):len(slab)]
		default:
			// Strict overlaps/meets with a boundary reaching outside y:
			// copy the run and clamp the first and last elements to y.
			y := ys[k]
			mark := len(slab)
			slab = append(slab, c.ivs[e.first:e.first+e.n]...)
			if head := &slab[mark]; head.Lo < y.Lo {
				head.Lo = y.Lo
			}
			if tail := &slab[mark+e.n-1]; tail.Hi > y.Hi {
				tail.Hi = y.Hi
			}
			run = slab[mark:len(slab):len(slab)]
		}
		leaves[k] = Calendar{gran: c.gran, ivs: run, sortedDisjoint: true}
		subs[k] = &leaves[k]
	}
	sweepArenas.Put(arena)
	return &Calendar{gran: c.gran, subs: subs}
}

// foreachSelfJoin is the self-join fast path: both operands are the same
// interval list (common when a grouping derives both sides from one cached
// calendar). Under disjointness every group has a closed form on the
// diagonal — no merge loop and no interval copies at all:
//
//   - overlaps/during: element i matches only itself;
//   - meets: element i matches itself iff it is a point (hi == lo);
//   - <: the prefix before i, plus i itself iff it is a point;
//   - <=: the prefix through i.
//
// Strict trimming is the identity in every case (each match is inside, or
// touches, its own group interval), so all groups share c's backing array.
func foreachSelfJoin(c *Calendar, op interval.ListOp, strict bool) *Calendar {
	ivs := c.ivs
	leaves := make([]Calendar, len(ivs))
	subs := make([]*Calendar, len(ivs))
	for i := range ivs {
		var run []interval.Interval
		switch op {
		case interval.Overlaps, interval.During:
			run = ivs[i : i+1 : i+1]
		case interval.Meets:
			if ivs[i].Lo == ivs[i].Hi {
				run = ivs[i : i+1 : i+1]
			}
		case interval.Before:
			j := i
			if ivs[i].Lo == ivs[i].Hi {
				j = i + 1
			}
			run = ivs[:j:j]
		case interval.BeforeEquals:
			run = ivs[: i+1 : i+1]
		}
		leaves[i] = Calendar{gran: c.gran, ivs: run, sortedDisjoint: true}
		subs[i] = &leaves[i]
	}
	return &Calendar{gran: c.gran, subs: subs}
}

// sameBacking reports whether c and arg are the same calendar or order-1
// views over the same backing interval array — the shapes the plan layer
// produces when both foreach operands resolve to one cached materialization.
func sameBacking(c, arg *Calendar) bool {
	if c == arg {
		return true
	}
	return len(c.ivs) > 0 && len(c.ivs) == len(arg.ivs) && &c.ivs[0] == &arg.ivs[0]
}

// ForeachSweepEndpoint runs the endpoint-index sweep kernel directly. It is
// exported for benchmarks and property tests (BenchmarkEndpointSweepVsLinear
// and the sweep≡naive suite); production callers use Foreach, which routes
// here whenever both operands are sorted disjoint.
func ForeachSweepEndpoint(c *Calendar, op interval.ListOp, strict bool, arg *Calendar) (*Calendar, error) {
	if err := checkSweepOperands(c, op, arg); err != nil {
		return nil, err
	}
	if arg.IsEmpty() {
		return Empty(c.gran), nil
	}
	return foreachSweep(c, op, strict, arg), nil
}

// ForeachSweepLinear runs the pre-index linear merge kernel (one cursor over
// the interval structs, per-group append). Retained as the measured baseline
// for BenchmarkEndpointSweepVsLinear and as an independent oracle in the
// property tests; no production path calls it.
func ForeachSweepLinear(c *Calendar, op interval.ListOp, strict bool, arg *Calendar) (*Calendar, error) {
	if err := checkSweepOperands(c, op, arg); err != nil {
		return nil, err
	}
	if arg.IsEmpty() {
		return Empty(c.gran), nil
	}
	return foreachSweepLinear(c, op, strict, arg), nil
}

func checkSweepOperands(c *Calendar, op interval.ListOp, arg *Calendar) error {
	if !op.Valid() {
		return errInvalidListOp
	}
	if c.gran != arg.gran {
		return errSweepGran
	}
	if c.Order() != 1 || arg.Order() != 1 || !c.sortedDisjoint || !arg.sortedDisjoint {
		return errSweepShape
	}
	return nil
}
