package calendar

import (
	"fmt"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// GenerateFull is Generate without the end-time truncation of the surface
// generate() function: every unit overlapping the window keeps its true
// bounds. Evaluation plans use this form, because for them the window is a
// working range over conceptually infinite basic calendars, not a hard
// horizon — truncating would corrupt relaxed-foreach results at the window
// edge.
func GenerateFull(ch *chronology.Chronology, of, in chronology.Granularity, ts, te chronology.Tick) (*Calendar, error) {
	if !of.Valid() || !in.Valid() {
		return nil, fmt.Errorf("calendar: generate with invalid granularity")
	}
	if of.Finer(in) {
		return nil, fmt.Errorf("calendar: generate cannot express %v in coarser %v units", of, in)
	}
	if err := chronology.CheckTick(ts); err != nil {
		return nil, err
	}
	if err := chronology.CheckTick(te); err != nil {
		return nil, err
	}
	if ts > te {
		return nil, fmt.Errorf("calendar: generate window (%d,%d) is reversed", ts, te)
	}
	firstUnit := ch.TickAt(of, ch.UnitStart(in, ts))
	lastUnit := ch.TickAt(of, ch.UnitEndExcl(in, te)-1)
	n := chronology.TickDiff(firstUnit, lastUnit) + 1
	ivs := make([]interval.Interval, 0, n)
	for u := firstUnit; ; u = chronology.NextTick(u) {
		lo, hi := ch.UnitSpanIn(of, u, in)
		ivs = append(ivs, interval.Interval{Lo: lo, Hi: hi})
		if u == lastUnit {
			break
		}
	}
	return newLeaf(in, ivs), nil
}

// Unit returns the order-1 calendar holding the single unit t of granularity
// of, expressed in ticks of granularity in (label selection: 1993/YEARS).
func Unit(ch *chronology.Chronology, of, in chronology.Granularity, t chronology.Tick) (*Calendar, error) {
	if err := chronology.CheckTick(t); err != nil {
		return nil, err
	}
	if of.Finer(in) {
		return nil, fmt.Errorf("calendar: cannot express %v unit in coarser %v units", of, in)
	}
	lo, hi := ch.UnitSpanIn(of, t, in)
	return FromIntervals(in, []interval.Interval{{Lo: lo, Hi: hi}})
}

// ConvertGran re-expresses a calendar's ticks in a finer (or equal)
// granularity: each interval (a,b) of units of c's granularity becomes the
// tick span from the start of unit a to the end of unit b.
func ConvertGran(ch *chronology.Chronology, c *Calendar, to chronology.Granularity) (*Calendar, error) {
	if !to.Valid() {
		return nil, fmt.Errorf("calendar: convert to invalid granularity %v", to)
	}
	if c.gran == to {
		return c, nil
	}
	if c.gran.Finer(to) {
		return nil, fmt.Errorf("calendar: cannot convert %v ticks to coarser %v units", c.gran, to)
	}
	return convertRec(ch, c, to), nil
}

func convertRec(ch *chronology.Chronology, c *Calendar, to chronology.Granularity) *Calendar {
	if len(c.subs) > 0 {
		subs := make([]*Calendar, 0, len(c.subs))
		for _, s := range c.subs {
			subs = append(subs, convertRec(ch, s, to))
		}
		return &Calendar{gran: to, subs: subs}
	}
	ivs := make([]interval.Interval, 0, len(c.ivs))
	for _, iv := range c.ivs {
		lo, _ := ch.UnitSpanIn(c.gran, iv.Lo, to)
		_, hi := ch.UnitSpanIn(c.gran, iv.Hi, to)
		ivs = append(ivs, interval.Interval{Lo: lo, Hi: hi})
	}
	return newLeaf(to, ivs)
}
