package matcache

import (
	"container/list"
	"sync"

	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
	"calsys/internal/core/periodic"
)

// LockedCache is the pre-sharding cache: one global mutex serializing every
// operation, MoveToFront on every Get, and expansion/slicing inside the
// critical section. It is kept verbatim as the ablation arm of
// BenchmarkCacheParallelGet — the baseline the sharded Cache is measured
// against — and is not used by any production path.
type LockedCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	buckets map[Key][]*entry
	lru     *list.List // front = most recently used; values are *entry

	hits, misses, puts, rejected, evictions, coalesced, compressed int64
	patterns                                                       int
}

// NewLocked returns an empty single-mutex cache with the given byte budget
// (<= 0 means DefaultBudget).
func NewLocked(budget int64) *LockedCache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &LockedCache{budget: budget, buckets: map[Key][]*entry{}, lru: list.New()}
}

// Get returns the calendar materialized for key over exactly win, served
// from any cached window that covers it.
func (c *LockedCache) Get(k Key, win interval.Interval) (*calendar.Calendar, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.buckets[k] {
		if e.covers(win) {
			c.lru.MoveToFront(e.elem)
			c.hits++
			if e.pat != nil {
				return calendar.ExpandPatternBetween(k.Gran, e.pat, win, e.qmin, e.qmax), true
			}
			if e.win == win {
				return e.cal, true
			}
			return calendar.SliceOverlapping(e.cal, win), true
		}
	}
	c.misses++
	return nil, false
}

// GetPattern returns a cached pattern valid over win.
func (c *LockedCache) GetPattern(k Key, win interval.Interval) (*periodic.Pattern, int64, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.buckets[k] {
		if e.pat != nil && e.covers(win) {
			c.lru.MoveToFront(e.elem)
			c.hits++
			return e.pat, e.qmin, e.qmax, true
		}
	}
	return nil, 0, 0, false
}

// Put records a materialization of key over win (see Cache.Put).
func (c *LockedCache) Put(k Key, win interval.Interval, cal *calendar.Calendar, sliceable bool) {
	if cal == nil {
		return
	}
	if sliceable && cal.Order() != 1 {
		sliceable = false
	}
	size := SizeOf(cal)
	if sliceable {
		if ivs := cal.Intervals(); len(ivs) >= compressMinLen {
			if pat, qmin, qmax, ok := periodic.Detect(ivs); ok && pat.SizeBytes()*2 <= size {
				c.putPattern(k, win, pat, qmin, qmax, true)
				return
			}
		}
		cal.PrimeIndex()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		c.rejected++
		return
	}
	bucket := c.buckets[k]
	for _, e := range bucket {
		if e.covers(win) {
			return
		}
	}
	kept := bucket[:0]
	for _, e := range bucket {
		if sliceable && e.pat == nil && e.win.Lo >= win.Lo && e.win.Hi <= win.Hi {
			c.removeLocked(e)
			c.coalesced++
			continue
		}
		kept = append(kept, e)
	}
	e := &entry{key: k, win: win, cal: cal, sliceable: sliceable, bytes: size}
	c.insertLocked(kept, e)
}

// PutPattern records a periodic pattern for key (see Cache.PutPattern).
func (c *LockedCache) PutPattern(k Key, win interval.Interval, pat *periodic.Pattern, qmin, qmax int64) {
	if pat == nil {
		return
	}
	c.putPattern(k, win, pat, qmin, qmax, false)
}

func (c *LockedCache) putPattern(k Key, win interval.Interval, pat *periodic.Pattern, qmin, qmax int64, compressed bool) {
	size := pat.SizeBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if compressed {
		c.compressed++
	}
	if size > c.budget {
		c.rejected++
		return
	}
	bucket := c.buckets[k]
	for _, e := range bucket {
		if e.pat != nil && e.covers(win) {
			return
		}
	}
	kept := bucket[:0]
	for _, e := range bucket {
		if e.win.Lo >= win.Lo && e.win.Hi <= win.Hi {
			c.removeLocked(e)
			c.coalesced++
			continue
		}
		kept = append(kept, e)
	}
	e := &entry{key: k, win: win, pat: pat, qmin: qmin, qmax: qmax, sliceable: true, bytes: size}
	c.insertLocked(kept, e)
}

func (c *LockedCache) insertLocked(kept []*entry, e *entry) {
	e.elem = c.lru.PushFront(e)
	c.buckets[e.key] = append(kept, e)
	c.bytes += e.bytes
	c.puts++
	if e.pat != nil {
		c.patterns++
	}
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		c.removeLocked(victim)
		c.dropFromBucket(victim)
		c.evictions++
	}
}

func (c *LockedCache) removeLocked(e *entry) {
	c.lru.Remove(e.elem)
	c.bytes -= e.bytes
	if e.pat != nil {
		c.patterns--
	}
}

func (c *LockedCache) dropFromBucket(e *entry) {
	bucket := c.buckets[e.key]
	for i, x := range bucket {
		if x == e {
			c.buckets[e.key] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(c.buckets[e.key]) == 0 {
		delete(c.buckets, e.key)
	}
}

// Reset empties the cache, keeping the budget and counters.
func (c *LockedCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buckets = map[Key][]*entry{}
	c.lru.Init()
	c.bytes = 0
	c.patterns = 0
}

// Stats snapshots the counters.
func (c *LockedCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Puts: c.puts, Rejected: c.rejected,
		Evictions: c.evictions, Coalesced: c.coalesced, Compressed: c.compressed,
		Patterns: c.patterns, Entries: c.lru.Len(), Bytes: c.bytes, Budget: c.budget,
		Shards: 1,
	}
}
