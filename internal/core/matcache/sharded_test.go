package matcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

func TestShardCount(t *testing.T) {
	cases := []struct {
		budget int64
		want   int
	}{
		{100, 1},
		{5000, 1},
		{minShardBudget, 1},
		{2 * minShardBudget, 2},
		{16 * minShardBudget, 16},
		{DefaultBudget, 16},
	}
	for _, tc := range cases {
		if got := shardCount(tc.budget); got != tc.want {
			t.Errorf("shardCount(%d) = %d, want %d", tc.budget, got, tc.want)
		}
		if got := New(tc.budget).Stats().Shards; got != tc.want {
			t.Errorf("New(%d).Stats().Shards = %d, want %d", tc.budget, got, tc.want)
		}
	}
}

// keysInShard returns n distinct keys that all hash to the same stripe as
// anchor — the adversarial access pattern for budget-fairness tests.
func keysInShard(c *Cache, anchor Key, n int) []Key {
	target := c.shardOf(anchor)
	keys := []Key{anchor}
	for i := 0; len(keys) < n; i++ {
		k := Key{Scope: anchor.Scope, ID: fmt.Sprintf("%s-%d", anchor.ID, i), Gran: anchor.Gran}
		if c.shardOf(k) == target {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestShardBudgetFairness: a workload that hammers one stripe must evict
// within that stripe's sub-budget — it cannot grow the stripe to the whole
// global budget and starve the others.
func TestShardBudgetFairness(t *testing.T) {
	budget := int64(8 * minShardBudget) // 4 shards of 2*minShardBudget each
	c := New(budget)
	if len(c.shards) < 2 {
		t.Fatalf("want a multi-shard cache, got %d shards", len(c.shards))
	}
	perShard := budget / int64(len(c.shards))

	cal := aperiodic(t, 3, 1000) // ~16 KiB, uncompressible
	hull, _ := cal.Hull()
	anchor := Key{Scope: "t", ID: "G|hot", Gran: chronology.Day}
	target := c.shardOf(anchor)
	// Enough hot-shard entries to overflow the sub-budget several times.
	n := int(3*perShard/SizeOf(cal)) + 2
	for _, k := range keysInShard(c, anchor, n) {
		c.Put(k, hull, cal, true)
	}

	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("hot shard saw no evictions: %v", st)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("resident bytes %d exceed global budget %d", st.Bytes, st.Budget)
	}
	for i, ss := range c.ShardStats() {
		if ss.Budget != perShard {
			t.Fatalf("shard %d budget = %d, want %d", i, ss.Budget, perShard)
		}
		if ss.Bytes > ss.Budget {
			t.Fatalf("shard %d holds %d bytes over its %d sub-budget", i, ss.Bytes, ss.Budget)
		}
		if &c.shards[i] != target && ss.Entries != 0 {
			t.Fatalf("cold shard %d holds %d entries from a single-shard workload", i, ss.Entries)
		}
	}
}

// TestDeferredPromotionSurvivesEviction: a read does not MoveToFront, but
// its access stamp must count — under eviction pressure the re-read entry is
// promoted (second chance) and an unread peer placed after it is evicted
// instead.
func TestDeferredPromotionSurvivesEviction(t *testing.T) {
	c := New(5000) // single shard, fits ~3 of the ~1.7 KiB entries below
	if len(c.shards) != 1 {
		t.Fatalf("want a single-shard cache, got %d shards", len(c.shards))
	}
	cal := aperiodic(t, 7, 100)
	hull, _ := cal.Hull()
	mk := func(id string) Key { return Key{Scope: "t", ID: id, Gran: chronology.Day} }
	c.Put(mk("a"), hull, cal, true)
	c.Put(mk("b"), hull, cal, true)
	c.Put(mk("c"), hull, cal, true)
	// Read "a" — the LRU back — then storm the shard with new entries.
	if _, ok := c.Get(mk("a"), hull); !ok {
		t.Fatal("entry a missing before the storm")
	}
	c.Put(mk("d"), hull, cal, true)
	c.Put(mk("e"), hull, cal, true)
	if c.Stats().Evictions == 0 {
		t.Fatal("storm caused no evictions")
	}
	if _, ok := c.Get(mk("a"), hull); !ok {
		t.Fatal("re-read entry a was evicted despite its access stamp")
	}
	if _, ok := c.Get(mk("b"), hull); ok {
		t.Fatal("unread entry b survived while the shard evicted")
	}
}

// TestGetImmutableUnderPutResetStorm is the immutability-contract hammer:
// exact-window Gets return the cached *Calendar with no copy, so while
// eviction, coalescing and Reset detach entries concurrently, the returned
// value must stay equal to what was inserted (and -race must stay quiet).
func TestGetImmutableUnderPutResetStorm(t *testing.T) {
	c := New(5000) // tiny budget: every Put evicts
	k := Key{Scope: "t", ID: "E|hot", Gran: chronology.Day}
	cal := aperiodic(t, 11, 100)
	hull, _ := cal.Hull()
	c.Put(k, hull, cal, false) // unsliceable: exact-window hits alias the cached value

	churn := make([]*calendar.Calendar, 8)
	for i := range churn {
		churn[i] = aperiodic(t, 100+int64(i), 100)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ev := churn[(w+i)%len(churn)]
				h, _ := ev.Hull()
				c.Put(Key{Scope: "t", ID: fmt.Sprintf("E|churn%d-%d", w, i%16), Gran: chronology.Day}, h, ev, false)
				if i%64 == 0 {
					c.Reset()
				}
				c.Put(k, hull, cal, false)
			}
		}(w)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	reads := 0
	for time.Now().Before(deadline) {
		got, ok := c.Get(k, hull)
		if !ok {
			continue // detached mid-churn; a writer will re-Put it
		}
		reads++
		if !got.Equal(cal) {
			close(stop)
			wg.Wait()
			t.Fatalf("cached calendar mutated under concurrent Put/Reset (read %d)", reads)
		}
	}
	close(stop)
	wg.Wait()
	if reads == 0 {
		t.Fatal("hammer never observed a hit")
	}
}

func TestSingleflightDedup(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	c := New(0)
	k := Key{Scope: "t", ID: "G|weeks", Gran: chronology.Day}
	win := interval.Interval{Lo: 1, Hi: 3650}
	want := gen(t, ch, chronology.Week, chronology.Day, win.Lo, win.Hi)
	fresh := gen(t, ch, chronology.Week, chronology.Day, win.Lo, win.Hi)

	var calls atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, 64)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got, err := c.Do(k, win, func() (*calendar.Calendar, bool, error) {
				calls.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open so the herd piles up
				return fresh, true, nil
			})
			if err != nil {
				errs <- err
				return
			}
			if !got.Equal(want) {
				errs <- fmt.Errorf("flight result differs from direct generation")
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("64 concurrent misses ran materialize %d times, want exactly 1", n)
	}
	st := c.Stats()
	if st.Flights != 1 {
		t.Fatalf("flights = %d, want 1", st.Flights)
	}
	if st.FlightWaits == 0 {
		t.Fatal("no goroutine ever waited on the flight")
	}
	// The leader's Put means later misses on the same window hit the cache
	// proper without flying at all.
	if _, ok := c.Get(k, win); !ok {
		t.Fatal("flight result was not cached")
	}
}

func TestSingleflightErrorPropagates(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	c := New(0)
	k := Key{Scope: "t", ID: "G|bad", Gran: chronology.Day}
	win := interval.Interval{Lo: 1, Hi: 100}
	boom := errors.New("boom")

	var calls atomic.Int64
	var wg sync.WaitGroup
	var wrongErr atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Do(k, win, func() (*calendar.Calendar, bool, error) {
				calls.Add(1)
				time.Sleep(10 * time.Millisecond)
				return nil, false, boom
			})
			if !errors.Is(err, boom) {
				wrongErr.Add(1)
			}
		}()
	}
	wg.Wait()
	if wrongErr.Load() != 0 {
		t.Fatalf("%d callers got the wrong error", wrongErr.Load())
	}
	if calls.Load() == 0 {
		t.Fatal("materialize never ran")
	}
	// Failures are not cached: the next Do must materialize again.
	before := calls.Load()
	if _, err := c.Do(k, win, func() (*calendar.Calendar, bool, error) {
		calls.Add(1)
		return gen(t, ch, chronology.Week, chronology.Day, win.Lo, win.Hi), true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before+1 {
		t.Fatal("failed flight left a cached result")
	}
	if _, ok := c.Get(k, win); !ok {
		t.Fatal("successful retry was not cached")
	}
}
