package matcache

import (
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

// flightKey identifies one coalescable materialization: a cache key plus the
// exact (usually chunk-aligned) window being generated. Distinct windows of
// one key fly separately — they produce different results.
type flightKey struct {
	k   Key
	win interval.Interval
}

// flight is one in-progress materialization. The leader closes done after
// publishing cal/sliceable/err; waiters block on done and read the fields
// afterwards (the close is the happens-before edge).
type flight struct {
	done      chan struct{}
	cal       *calendar.Calendar
	sliceable bool
	err       error
}

// Do coalesces concurrent misses: when N goroutines ask for the same
// (key, win) at once, exactly one — the leader — runs materialize; the rest
// block until it finishes and share its result. This is the cache-stampede
// control for cold starts and generation-bump storms, where every client of
// a popular calendar misses at the same instant and would otherwise each run
// the same expensive generation.
//
// The leader re-checks the cache before materializing (a previous flight may
// have landed between this caller's miss and its flight acquisition), and on
// success inserts the result via Put so later requests hit the cache proper.
// materialize returns the calendar plus the sliceable flag Put needs
// (whether subset windows may be sliced out of it). Errors are returned to
// the leader and every waiter of that flight, and nothing is cached.
//
// Do must not be called from inside a materialize closure with a flightKey
// that other goroutines could concurrently lead while waiting on this one —
// callers keep the wait graph acyclic by only flying at distinct
// materialization levels (expression → derived → generate).
func (c *Cache) Do(k Key, win interval.Interval, materialize func() (*calendar.Calendar, bool, error)) (*calendar.Calendar, error) {
	fk := flightKey{k: k, win: win}
	c.flightMu.Lock()
	if f, ok := c.inflight[fk]; ok {
		c.flightMu.Unlock()
		c.flightWaits.Add(1)
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		return f.cal, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[fk] = f
	c.flightMu.Unlock()

	// Leader. The cache re-check catches the race where another flight for
	// this (key, win) completed between this goroutine's miss and its
	// flight acquisition.
	if cal, ok := c.Get(k, win); ok {
		f.cal = cal
		c.settle(fk, f)
		return cal, nil
	}
	c.flights.Add(1)
	f.cal, f.sliceable, f.err = materialize()
	if f.err == nil && f.cal != nil {
		c.Put(k, win, f.cal, f.sliceable)
	}
	c.settle(fk, f)
	return f.cal, f.err
}

// settle unregisters the flight and releases its waiters.
func (c *Cache) settle(fk flightKey, f *flight) {
	c.flightMu.Lock()
	delete(c.inflight, fk)
	c.flightMu.Unlock()
	close(f.done)
}
