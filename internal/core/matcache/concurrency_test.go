package matcache

import (
	"fmt"
	"sync"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

// Hammer the cache from many goroutines mixing gets, puts, version bumps,
// stats and resets; run under -race this pins down the locking discipline.
func TestConcurrentGetPut(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	c := New(1 << 20)
	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("G|cal%d", i%5)
				k := Key{Scope: "t", ID: id, Version: uint64(i % 3), Gran: chronology.Day}
				lo := chronology.Tick(1 + (i%7)*50)
				win := interval.Interval{Lo: lo, Hi: lo + 199}
				if got, ok := c.Get(k, win); ok {
					if got.Granularity() != chronology.Day {
						t.Errorf("wrong granularity from cache")
						return
					}
					continue
				}
				padded := AlignedWindow(win)
				cal, err := calendar.GenerateFull(ch, chronology.Week, chronology.Day, padded.Lo, padded.Hi)
				if err != nil {
					t.Error(err)
					return
				}
				c.Put(k, padded, cal, true)
				if i%50 == 0 {
					_ = c.Stats()
				}
				if w == 0 && i == iters/2 {
					c.Reset()
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.Budget {
		t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, st.Budget)
	}
	if st.Bytes < 0 {
		t.Fatalf("negative resident bytes %d", st.Bytes)
	}
}

// Concurrent readers of one cached superset must all see correct slices.
func TestConcurrentSubsetReads(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	c := New(0)
	k := Key{Scope: "t", ID: "G|months", Gran: chronology.Day}
	super := interval.Interval{Lo: 1, Hi: 36500}
	cal, err := calendar.GenerateFull(ch, chronology.Month, chronology.Day, super.Lo, super.Hi)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(k, super, cal, true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lo := chronology.Tick(1 + (w*211+i*97)%30000)
				win := interval.Interval{Lo: lo, Hi: lo + 364}
				got, ok := c.Get(k, win)
				if !ok {
					t.Errorf("superset stopped serving %v", win)
					return
				}
				want, err := calendar.GenerateFull(ch, chronology.Month, chronology.Day, win.Lo, win.Hi)
				if err != nil {
					t.Error(err)
					return
				}
				if !got.Equal(want) {
					t.Errorf("slice mismatch over %v", win)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
