package matcache

import (
	"math"
	"math/rand"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
	"calsys/internal/core/periodic"
)

const (
	minInt64 = math.MinInt64
	maxInt64 = math.MaxInt64
)

// periodicForTest builds the MONTHS-in-DAYS pattern.
func periodicForTest(ch *chronology.Chronology) (*periodic.Pattern, error) {
	return periodic.ForBasicPair(ch, chronology.Month, chronology.Day)
}

func gen(t testing.TB, ch *chronology.Chronology, of, in chronology.Granularity, lo, hi chronology.Tick) *calendar.Calendar {
	t.Helper()
	c, err := calendar.GenerateFull(ch, of, in, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// aperiodic builds an n-element sorted disjoint calendar with irregular gaps
// and widths, so Put cannot compress it to a pattern. Tests of the byte
// budget machinery use it to stay on the materialized path.
func aperiodic(t testing.TB, seed int64, n int) *calendar.Calendar {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ivs := make([]interval.Interval, 0, n)
	off := int64(1)
	for i := 0; i < n; i++ {
		lo := off
		off += int64(rng.Intn(5))
		ivs = append(ivs, interval.Interval{
			Lo: chronology.TickFromOffset(lo), Hi: chronology.TickFromOffset(off)})
		off += int64(rng.Intn(6)) + 1
	}
	c, err := calendar.FromIntervals(chronology.Day, ivs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSubsetServedFromSupersetWindow(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	c := New(0)
	k := Key{Scope: "t", ID: "G|weeks", Gran: chronology.Day}
	super := interval.Interval{Lo: 1, Hi: 3650}
	c.Put(k, super, gen(t, ch, chronology.Week, chronology.Day, super.Lo, super.Hi), true)

	sub := interval.Interval{Lo: 100, Hi: 400}
	got, ok := c.Get(k, sub)
	if !ok {
		t.Fatalf("subset window %v not served from cached superset %v", sub, super)
	}
	want := gen(t, ch, chronology.Week, chronology.Day, sub.Lo, sub.Hi)
	if !got.Equal(want) {
		t.Fatalf("sliced subset differs from direct generation:\n got %v\nwant %v", got, want)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %v, want 1 hit 0 misses", st)
	}
}

func TestExactMatchOnlyForUnsliceable(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	c := New(0)
	k := Key{Scope: "t", ID: "E|expr", Gran: chronology.Day}
	win := interval.Interval{Lo: 1, Hi: 100}
	c.Put(k, win, gen(t, ch, chronology.Week, chronology.Day, 1, 100), false)
	if _, ok := c.Get(k, interval.Interval{Lo: 10, Hi: 50}); ok {
		t.Fatal("unsliceable entry served a subset window")
	}
	if _, ok := c.Get(k, win); !ok {
		t.Fatal("unsliceable entry did not serve its exact window")
	}
}

func TestVersionMiss(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	c := New(0)
	win := interval.Interval{Lo: 1, Hi: 100}
	cal := gen(t, ch, chronology.Week, chronology.Day, 1, 100)
	c.Put(Key{Scope: "t", ID: "D|paydays", Version: 1, Gran: chronology.Day}, win, cal, false)
	if _, ok := c.Get(Key{Scope: "t", ID: "D|paydays", Version: 2, Gran: chronology.Day}, win); ok {
		t.Fatal("entry served across a version bump")
	}
	if _, ok := c.Get(Key{Scope: "other", ID: "D|paydays", Version: 1, Gran: chronology.Day}, win); ok {
		t.Fatal("entry served across scopes")
	}
}

func TestCoalescingDropsSubsumedWindows(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	c := New(0)
	k := Key{Scope: "t", ID: "G|days", Gran: chronology.Day}
	for _, w := range []interval.Interval{{Lo: 1, Hi: 100}, {Lo: 200, Hi: 300}} {
		c.Put(k, w, gen(t, ch, chronology.Day, chronology.Day, w.Lo, w.Hi), true)
	}
	// A window subsuming both replaces them.
	big := interval.Interval{Lo: 1, Hi: 400}
	c.Put(k, big, gen(t, ch, chronology.Day, chronology.Day, big.Lo, big.Hi), true)
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d after coalescing, want 1", st.Entries)
	}
	if st.Coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2", st.Coalesced)
	}
	// Re-putting a covered window is a no-op.
	c.Put(k, interval.Interval{Lo: 50, Hi: 60}, gen(t, ch, chronology.Day, chronology.Day, 50, 60), true)
	if got := c.Stats().Entries; got != 1 {
		t.Fatalf("entries = %d after covered put, want 1", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// Each 100-element aperiodic materialization is ~64 + 16*100 bytes
	// (uncompressible, so it stays materialized); budget fits ~3.
	c := New(5000)
	mk := func(id string) Key { return Key{Scope: "t", ID: id, Gran: chronology.Day} }
	cal := aperiodic(t, 7, 100)
	hull, _ := cal.Hull()
	win := hull
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		c.Put(mk(id), win, cal, true)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under byte pressure: %v", st)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, st.Budget)
	}
	// The most recently inserted entry must survive.
	if _, ok := c.Get(mk("e"), win); !ok {
		t.Fatal("most recent entry was evicted")
	}
	// The oldest must be gone.
	if _, ok := c.Get(mk("a"), win); ok {
		t.Fatal("oldest entry survived eviction")
	}
}

func TestOversizeRejected(t *testing.T) {
	c := New(100)
	k := Key{Scope: "t", ID: "E|expr", Gran: chronology.Day}
	cal := aperiodic(t, 9, 1000)
	hull, _ := cal.Hull()
	c.Put(k, hull, cal, true)
	st := c.Stats()
	if st.Rejected != 1 || st.Entries != 0 {
		t.Fatalf("oversize entry not rejected: %v", st)
	}
}

func TestPutCompressesPeriodicMaterializations(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	c := New(0)
	k := Key{Scope: "t", ID: "G|weeks", Gran: chronology.Day}
	win := interval.Interval{Lo: 1, Hi: 3650}
	cal := gen(t, ch, chronology.Week, chronology.Day, win.Lo, win.Hi)
	c.Put(k, win, cal, true)
	st := c.Stats()
	if st.Compressed != 1 || st.Patterns != 1 {
		t.Fatalf("periodic materialization not compressed: %v", st)
	}
	if st.Bytes >= SizeOf(cal)/10 {
		t.Fatalf("compressed entry costs %d bytes, materialized was %d — want ≥10× drop", st.Bytes, SizeOf(cal))
	}
	// Any sub-window is a hit and re-expansion matches direct generation.
	for _, sub := range []interval.Interval{{Lo: 100, Hi: 400}, {Lo: 1, Hi: 3650}, {Lo: 2000, Hi: 2001}} {
		got, ok := c.Get(k, sub)
		if !ok {
			t.Fatalf("sub-window %v missed after compression", sub)
		}
		if want := gen(t, ch, chronology.Week, chronology.Day, sub.Lo, sub.Hi); !got.Equal(want) {
			t.Fatalf("window %v: compressed expansion %v != direct %v", sub, got, want)
		}
	}
	// Windows past the observed element range miss (the clamp refuses to
	// extrapolate a detected cycle).
	if got, ok := c.Get(k, interval.Interval{Lo: 4000, Hi: 4100}); ok && !got.IsEmpty() {
		t.Fatalf("detected pattern extrapolated beyond its observed range: %v", got)
	}
}

func TestPutPatternServesEveryWindow(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	c := New(0)
	k := Key{Scope: "t", ID: "G|months", Gran: chronology.Day}
	pat, err := periodicForTest(ch)
	if err != nil {
		t.Fatal(err)
	}
	c.PutPattern(k, AllTime, pat, minInt64, maxInt64)
	for _, win := range []interval.Interval{{Lo: 1, Hi: 365}, {Lo: -40000, Hi: -36000}, {Lo: 100000, Hi: 100400}} {
		got, ok := c.Get(k, win)
		if !ok {
			t.Fatalf("window %v missed on an all-time pattern entry", win)
		}
		if want := gen(t, ch, chronology.Month, chronology.Day, win.Lo, win.Hi); !got.Equal(want) {
			t.Fatalf("window %v: pattern expansion != direct generation", win)
		}
	}
	if p, _, _, ok := c.GetPattern(k, interval.Interval{Lo: 5, Hi: 50}); !ok || p != pat {
		t.Fatal("GetPattern did not return the stored pattern")
	}
	if st := c.Stats(); st.Patterns != 1 || st.Bytes != pat.SizeBytes() {
		t.Fatalf("pattern entry accounting off: %v", st)
	}
}

func TestAlignedWindowCoversAndAligns(t *testing.T) {
	cases := []interval.Interval{
		{Lo: 1, Hi: 10},
		{Lo: 100, Hi: 500},
		{Lo: -300, Hi: 200},
		{Lo: -5, Hi: -1},
		{Lo: 1, Hi: 3_000_000},
	}
	for _, win := range cases {
		a := AlignedWindow(win)
		if a.Lo > win.Lo || a.Hi < win.Hi {
			t.Fatalf("AlignedWindow(%v) = %v does not cover the request", win, a)
		}
		if err := a.Check(); err != nil {
			t.Fatalf("AlignedWindow(%v) = %v invalid: %v", win, a, err)
		}
		n := win.Length()
		if got := a.Length(); got > 4*n+2*maxChunk {
			t.Fatalf("AlignedWindow(%v) = %v over-pads: %d ticks for a %d-tick request", win, a, got, n)
		}
		// Stability: any subwindow of the request aligns inside a.
		subAligned := AlignedWindow(interval.Interval{Lo: win.Lo, Hi: win.Lo})
		if subAligned.Lo < a.Lo-maxChunk {
			t.Fatalf("alignment grid unstable: %v vs %v", subAligned, a)
		}
	}
}

func TestSliceOverlappingMatchesDirectGeneration(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	for _, of := range []chronology.Granularity{chronology.Week, chronology.Month, chronology.Year} {
		super := gen(t, ch, of, chronology.Day, -700, 3650)
		for _, win := range []interval.Interval{{Lo: 1, Hi: 365}, {Lo: -100, Hi: 40}, {Lo: 500, Hi: 501}} {
			direct := gen(t, ch, of, chronology.Day, win.Lo, win.Hi)
			sliced := calendar.SliceOverlapping(super, win)
			if !sliced.Equal(direct) {
				t.Fatalf("%v over %v: slice %v != direct %v", of, win, sliced, direct)
			}
		}
	}
}
