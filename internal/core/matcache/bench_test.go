package matcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

// getPutter is the surface shared by the sharded Cache and the preserved
// single-mutex LockedCache, so both arms run the identical benchmark body.
type getPutter interface {
	Get(Key, interval.Interval) (*calendar.Calendar, bool)
	Put(Key, interval.Interval, *calendar.Calendar, bool)
}

// BenchmarkCacheParallelGet measures the read path under concurrency: every
// goroutine cycles exact-window Gets over a pre-warmed key set (the
// steady-state shape of calserved's expansion traffic). Run with -cpu=1,4,8
// to see the scaling: the sharded arm stripes onto per-shard RLocks and
// never mutates on a hit, the locked arm funnels every Get through one
// exclusive mutex and a MoveToFront.
func BenchmarkCacheParallelGet(b *testing.B) {
	arms := []struct {
		name string
		c    getPutter
	}{
		{"sharded", New(0)},
		{"locked", NewLocked(0)},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			cal := aperiodic(b, 5, 64)
			hull, _ := cal.Hull()
			const nkeys = 64
			keys := make([]Key, nkeys)
			for i := range keys {
				keys[i] = Key{Scope: "b", ID: fmt.Sprintf("E|k%d", i), Gran: chronology.Day}
				arm.c.Put(keys[i], hull, cal, false)
			}
			var missed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, ok := arm.c.Get(keys[i%nkeys], hull); !ok {
						missed.Add(1)
					}
					i++
				}
			})
			b.StopTimer()
			if missed.Load() != 0 {
				b.Fatalf("%d misses on a fully warmed cache", missed.Load())
			}
		})
	}
}

// BenchmarkCacheStampede measures a cold-start thundering herd: per
// iteration, 64 goroutines miss on one (key, window) simultaneously and Do
// must collapse them to exactly one generation — the count is pinned after
// the timer stops, so a duplicated generation fails the benchmark rather
// than just slowing it.
func BenchmarkCacheStampede(b *testing.B) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	win := interval.Interval{Lo: 1, Hi: 3650}
	var gens atomic.Int64
	var failures atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(0) // cold cache every iteration: the herd always misses
		k := Key{Scope: "b", ID: "G|weeks", Gran: chronology.Day}
		var wg sync.WaitGroup
		for g := 0; g < 64; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := c.Do(k, win, func() (*calendar.Calendar, bool, error) {
					gens.Add(1)
					cc, err := calendar.GenerateFull(ch, chronology.Week, chronology.Day, win.Lo, win.Hi)
					return cc, true, err
				})
				if err != nil {
					failures.Add(1)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	if failures.Load() != 0 {
		b.Fatalf("%d flight errors", failures.Load())
	}
	if gens.Load() != int64(b.N) {
		b.Fatalf("%d generations over %d stampedes — singleflight must pin exactly 1 per (key, window)", gens.Load(), b.N)
	}
}
