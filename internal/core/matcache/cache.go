// Package matcache implements a process-wide materialized-calendar cache:
// the cross-evaluation form of the paper's "mark any calendar that is
// encountered more than once to avoid generating values of the calendar
// unnecessarily" (§3.4). The per-evaluation generation cache of the plan
// executor dedupes work within one query; this cache dedupes it across
// queries, rule firings and timeseries probes, which overwhelmingly re-ask
// for the same periodic calendars over overlapping windows.
//
// Entries are keyed by (scope, calendar identity, version, granularity) and
// hold one or more materialized windows. Window coalescing means a cached
// superset window serves any subset request by slicing: generated basic
// calendars are consecutive sorted interval runs, so the slice of a larger
// materialization over a smaller window is byte-for-byte what generating the
// smaller window would produce. Versions implement invalidation: the catalog
// bumps its generation on Define/Replace/Drop, so stale entries stop being
// addressable and age out of the LRU.
//
// Periodic calendars are stored as patterns rather than materialized lists:
// a pattern entry costs a few dozen bytes regardless of how many centuries of
// windows it can serve, any covered window is a hit (expanded on demand in
// O(output)), and under LRU pressure basic calendars effectively never evict.
// Pattern entries arrive explicitly via PutPattern (the generate fast path
// knows its calendar is periodic) or implicitly: Put runs periodic.Detect
// over sliceable materializations and keeps the compressed form when a true
// cycle is found, clamped to the element range actually observed.
//
// The cache is bounded by a byte budget with LRU eviction and exposes
// expvar-style counters via Stats.
package matcache

import (
	"container/list"
	"fmt"
	"math"
	"sync"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
	"calsys/internal/core/periodic"
)

// Key identifies one cached calendar materialization line (all windows of
// one calendar identity at one granularity).
type Key struct {
	// Scope namespaces keys by owner (one catalog manager, including its
	// epoch), so unrelated databases in one process never cross-serve.
	Scope string
	// ID is the calendar identity: "G|<basic>" for generated basic
	// calendars, "D|<name>" for derived catalog entries, "E|<expr>" for
	// whole-expression materializations.
	ID string
	// Version is the catalog version the materialization was computed
	// against; basic calendars, which depend only on the chronology, use 0.
	Version uint64
	// Gran is the tick granularity the values are expressed in.
	Gran chronology.Granularity
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s@v%d/%v", k.Scope, k.ID, k.Version, k.Gran)
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits       int64 // requests served from a cached window
	Misses     int64 // requests that found no covering window
	Puts       int64 // materializations inserted
	Rejected   int64 // materializations too large for the budget
	Evictions  int64 // entries evicted by LRU pressure
	Coalesced  int64 // entries dropped because a superset window subsumed them
	Compressed int64 // materializations stored as detected patterns instead
	Patterns   int   // resident pattern entries
	Entries    int   // resident (key, window) entries
	Bytes      int64 // resident bytes (estimated)
	Budget     int64 // configured byte budget
}

// String renders the counters in expvar style.
func (s Stats) String() string {
	return fmt.Sprintf(`{"hits": %d, "misses": %d, "puts": %d, "rejected": %d, "evictions": %d, "coalesced": %d, "compressed": %d, "patterns": %d, "entries": %d, "bytes": %d, "budget": %d}`,
		s.Hits, s.Misses, s.Puts, s.Rejected, s.Evictions, s.Coalesced, s.Compressed, s.Patterns, s.Entries, s.Bytes, s.Budget)
}

// AllTime is the validity window of pattern entries that hold for every
// window — the truly periodic basic calendars, whose pattern serves any
// request.
var AllTime = interval.Interval{Lo: math.MinInt64, Hi: math.MaxInt64}

// entry is one materialized window of one key: either a materialized
// calendar (cal) or a periodic pattern (pat) with the element-index range it
// is valid over. Pattern entries serve any sub-window of win by expansion.
type entry struct {
	key        Key
	win        interval.Interval
	cal        *calendar.Calendar
	pat        *periodic.Pattern
	qmin, qmax int64
	sliceable  bool
	bytes      int64
	elem       *list.Element
}

// covers reports whether the entry can serve the requested window.
func (e *entry) covers(win interval.Interval) bool {
	if e.win == win {
		return true
	}
	return (e.sliceable || e.pat != nil) && e.win.Lo <= win.Lo && win.Hi <= e.win.Hi
}

// Cache is a byte-bounded LRU of materialized calendars. It is safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	buckets map[Key][]*entry
	lru     *list.List // front = most recently used; values are *entry

	hits, misses, puts, rejected, evictions, coalesced, compressed int64
	patterns                                                       int
}

// DefaultBudget is the byte budget of the shared process-wide cache.
const DefaultBudget = 64 << 20

// New returns an empty cache with the given byte budget (<= 0 means
// DefaultBudget).
func New(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Cache{budget: budget, buckets: map[Key][]*entry{}, lru: list.New()}
}

var (
	sharedOnce sync.Once
	shared     *Cache
)

// Shared returns the process-wide cache every catalog manager plugs into.
func Shared() *Cache {
	sharedOnce.Do(func() { shared = New(DefaultBudget) })
	return shared
}

// Get returns the calendar materialized for key over exactly win, served
// from any cached window that covers it. Sliceable entries (sorted
// consecutive interval runs, the shape of every generated calendar) serve
// subset windows by slicing; other entries serve exact window matches only.
func (c *Cache) Get(k Key, win interval.Interval) (*calendar.Calendar, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.buckets[k] {
		if e.covers(win) {
			c.lru.MoveToFront(e.elem)
			c.hits++
			if e.pat != nil {
				return calendar.ExpandPatternBetween(k.Gran, e.pat, win, e.qmin, e.qmax), true
			}
			if e.win == win {
				return e.cal, true
			}
			return calendar.SliceOverlapping(e.cal, win), true
		}
	}
	c.misses++
	return nil, false
}

// GetPattern returns a cached pattern valid over win, with the element-index
// range to clamp expansions to. The plan executor uses this to answer
// cardinality and selection over periodic values in O(log spans) arithmetic,
// never materializing at all. Unlike Get, a miss here is not counted — the
// caller falls through to Get, which settles the hit/miss accounting.
func (c *Cache) GetPattern(k Key, win interval.Interval) (*periodic.Pattern, int64, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.buckets[k] {
		if e.pat != nil && e.covers(win) {
			c.lru.MoveToFront(e.elem)
			c.hits++
			return e.pat, e.qmin, e.qmax, true
		}
	}
	return nil, 0, 0, false
}

// Put records a materialization of key over win. sliceable promises that cal
// is an order-1 calendar whose intervals are sorted with non-decreasing
// upper bounds (generated runs), so subset windows may later be sliced out
// of it; it is ignored for higher-order calendars. Entries whose windows the
// new one subsumes are coalesced away; if a cached sliceable window already
// covers win, the insert is a no-op.
func (c *Cache) Put(k Key, win interval.Interval, cal *calendar.Calendar, sliceable bool) {
	if cal == nil {
		return
	}
	if sliceable && cal.Order() != 1 {
		sliceable = false
	}
	size := SizeOf(cal)
	// Detection runs outside the lock (it is pure): a sliceable
	// materialization with a true cycle is stored as its pattern — a fraction
	// of the bytes, and any covered window stays servable via ExpandBetween
	// clamped to the observed element range.
	if sliceable {
		if ivs := cal.Intervals(); len(ivs) >= compressMinLen {
			if pat, qmin, qmax, ok := periodic.Detect(ivs); ok && pat.SizeBytes()*2 <= size {
				c.putPattern(k, win, pat, qmin, qmax, true)
				return
			}
		}
		// Lower the endpoint index once at insert time (outside the lock —
		// the build is pure): a cached calendar keeps its flat bound arrays
		// alongside the interval slice for as long as it lives, and
		// SliceOverlapping hands subset windows an index view, so no query
		// against this entry ever re-lowers the list.
		cal.PrimeIndex()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		c.rejected++
		return
	}
	bucket := c.buckets[k]
	for _, e := range bucket {
		if e.covers(win) {
			// Already covered by an equal or wider materialization.
			return
		}
	}
	kept := bucket[:0]
	for _, e := range bucket {
		if sliceable && e.pat == nil && e.win.Lo >= win.Lo && e.win.Hi <= win.Hi {
			// The new window subsumes this one: coalesce. Pattern entries are
			// kept — they are smaller than any materialization that covers
			// them.
			c.removeLocked(e)
			c.coalesced++
			continue
		}
		kept = append(kept, e)
	}
	e := &entry{key: k, win: win, cal: cal, sliceable: sliceable, bytes: size}
	c.insertLocked(kept, e)
}

// compressMinLen is the smallest materialization Put tries to compress:
// below it the detection scan outweighs the byte savings.
const compressMinLen = 32

// PutPattern records a periodic pattern for key, valid over any sub-window
// of win (pass AllTime for truly periodic calendars) and clamped to pattern
// element indices [qmin, qmax] (pass math.MinInt64, math.MaxInt64 when
// unbounded). Materialized entries whose windows the pattern covers are
// coalesced away — the pattern serves them in O(output) at a fraction of the
// bytes.
func (c *Cache) PutPattern(k Key, win interval.Interval, pat *periodic.Pattern, qmin, qmax int64) {
	if pat == nil {
		return
	}
	c.putPattern(k, win, pat, qmin, qmax, false)
}

func (c *Cache) putPattern(k Key, win interval.Interval, pat *periodic.Pattern, qmin, qmax int64, compressed bool) {
	size := pat.SizeBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if compressed {
		c.compressed++
	}
	if size > c.budget {
		c.rejected++
		return
	}
	bucket := c.buckets[k]
	for _, e := range bucket {
		if e.pat != nil && e.covers(win) {
			return // an equal-or-wider pattern already serves this
		}
	}
	kept := bucket[:0]
	for _, e := range bucket {
		if e.win.Lo >= win.Lo && e.win.Hi <= win.Hi {
			c.removeLocked(e)
			c.coalesced++
			continue
		}
		kept = append(kept, e)
	}
	e := &entry{key: k, win: win, pat: pat, qmin: qmin, qmax: qmax, sliceable: true, bytes: size}
	c.insertLocked(kept, e)
}

// insertLocked adds e to its bucket and the LRU, then enforces the budget.
func (c *Cache) insertLocked(kept []*entry, e *entry) {
	e.elem = c.lru.PushFront(e)
	c.buckets[e.key] = append(kept, e)
	c.bytes += e.bytes
	c.puts++
	if e.pat != nil {
		c.patterns++
	}
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		c.removeLocked(victim)
		c.dropFromBucket(victim)
		c.evictions++
	}
}

// removeLocked detaches e from the LRU and byte accounting (not the bucket).
func (c *Cache) removeLocked(e *entry) {
	c.lru.Remove(e.elem)
	c.bytes -= e.bytes
	if e.pat != nil {
		c.patterns--
	}
}

// dropFromBucket removes e from its bucket slice.
func (c *Cache) dropFromBucket(e *entry) {
	bucket := c.buckets[e.key]
	for i, x := range bucket {
		if x == e {
			c.buckets[e.key] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(c.buckets[e.key]) == 0 {
		delete(c.buckets, e.key)
	}
}

// Reset empties the cache, keeping the budget and counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buckets = map[Key][]*entry{}
	c.lru.Init()
	c.bytes = 0
	c.patterns = 0
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Puts: c.puts, Rejected: c.rejected,
		Evictions: c.evictions, Coalesced: c.coalesced, Compressed: c.compressed,
		Patterns: c.patterns, Entries: c.lru.Len(), Bytes: c.bytes, Budget: c.budget,
	}
}

// SizeOf estimates a calendar's resident bytes: 16 per leaf interval plus a
// fixed overhead per calendar node.
func SizeOf(c *calendar.Calendar) int64 {
	const nodeOverhead = 64
	if c.Order() == 1 {
		return nodeOverhead + 16*int64(len(c.Intervals()))
	}
	size := int64(nodeOverhead)
	for _, s := range c.Subs() {
		size += SizeOf(s)
	}
	return size
}

// minChunk and maxChunk bound the window-alignment grid (in ticks).
const (
	minChunk = 1 << 6
	maxChunk = 1 << 22
)

// AlignedWindow pads a requested generation window outward to a power-of-two
// chunk grid, so that the shifted, overlapping windows of successive queries
// (a rule's advancing lookahead, a series' growing horizon) land on the same
// materialization instead of each missing by a few ticks. The chunk is the
// smallest power of two covering the request, clamped to [minChunk,
// maxChunk], so a cold padded generation costs at most a small constant
// factor over the request itself.
func AlignedWindow(win interval.Interval) interval.Interval {
	lo := chronology.OffsetFromTick(win.Lo)
	hi := chronology.OffsetFromTick(win.Hi)
	n := hi - lo + 1
	chunk := int64(minChunk)
	for chunk < n && chunk < maxChunk {
		chunk <<= 1
	}
	alo := floorDiv(lo, chunk) * chunk
	ahi := (floorDiv(hi, chunk)+1)*chunk - 1
	return interval.Interval{Lo: chronology.TickFromOffset(alo), Hi: chronology.TickFromOffset(ahi)}
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
