// Package matcache implements a process-wide materialized-calendar cache:
// the cross-evaluation form of the paper's "mark any calendar that is
// encountered more than once to avoid generating values of the calendar
// unnecessarily" (§3.4). The per-evaluation generation cache of the plan
// executor dedupes work within one query; this cache dedupes it across
// queries, rule firings and timeseries probes, which overwhelmingly re-ask
// for the same periodic calendars over overlapping windows.
//
// Entries are keyed by (scope, calendar identity, version, granularity) and
// hold one or more materialized windows. Window coalescing means a cached
// superset window serves any subset request by slicing: generated basic
// calendars are consecutive sorted interval runs, so the slice of a larger
// materialization over a smaller window is byte-for-byte what generating the
// smaller window would produce. Versions implement invalidation: the catalog
// bumps its generation on Define/Replace/Drop, so stale entries stop being
// addressable and age out of the LRU.
//
// The cache is bounded by a byte budget with LRU eviction and exposes
// expvar-style counters via Stats.
package matcache

import (
	"container/list"
	"fmt"
	"sync"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

// Key identifies one cached calendar materialization line (all windows of
// one calendar identity at one granularity).
type Key struct {
	// Scope namespaces keys by owner (one catalog manager, including its
	// epoch), so unrelated databases in one process never cross-serve.
	Scope string
	// ID is the calendar identity: "G|<basic>" for generated basic
	// calendars, "D|<name>" for derived catalog entries, "E|<expr>" for
	// whole-expression materializations.
	ID string
	// Version is the catalog version the materialization was computed
	// against; basic calendars, which depend only on the chronology, use 0.
	Version uint64
	// Gran is the tick granularity the values are expressed in.
	Gran chronology.Granularity
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s@v%d/%v", k.Scope, k.ID, k.Version, k.Gran)
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits      int64 // requests served from a cached window
	Misses    int64 // requests that found no covering window
	Puts      int64 // materializations inserted
	Rejected  int64 // materializations too large for the budget
	Evictions int64 // entries evicted by LRU pressure
	Coalesced int64 // entries dropped because a superset window subsumed them
	Entries   int   // resident (key, window) entries
	Bytes     int64 // resident bytes (estimated)
	Budget    int64 // configured byte budget
}

// String renders the counters in expvar style.
func (s Stats) String() string {
	return fmt.Sprintf(`{"hits": %d, "misses": %d, "puts": %d, "rejected": %d, "evictions": %d, "coalesced": %d, "entries": %d, "bytes": %d, "budget": %d}`,
		s.Hits, s.Misses, s.Puts, s.Rejected, s.Evictions, s.Coalesced, s.Entries, s.Bytes, s.Budget)
}

// entry is one materialized window of one key.
type entry struct {
	key       Key
	win       interval.Interval
	cal       *calendar.Calendar
	sliceable bool
	bytes     int64
	elem      *list.Element
}

// Cache is a byte-bounded LRU of materialized calendars. It is safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	buckets map[Key][]*entry
	lru     *list.List // front = most recently used; values are *entry

	hits, misses, puts, rejected, evictions, coalesced int64
}

// DefaultBudget is the byte budget of the shared process-wide cache.
const DefaultBudget = 64 << 20

// New returns an empty cache with the given byte budget (<= 0 means
// DefaultBudget).
func New(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Cache{budget: budget, buckets: map[Key][]*entry{}, lru: list.New()}
}

var (
	sharedOnce sync.Once
	shared     *Cache
)

// Shared returns the process-wide cache every catalog manager plugs into.
func Shared() *Cache {
	sharedOnce.Do(func() { shared = New(DefaultBudget) })
	return shared
}

// Get returns the calendar materialized for key over exactly win, served
// from any cached window that covers it. Sliceable entries (sorted
// consecutive interval runs, the shape of every generated calendar) serve
// subset windows by slicing; other entries serve exact window matches only.
func (c *Cache) Get(k Key, win interval.Interval) (*calendar.Calendar, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.buckets[k] {
		if e.win == win || (e.sliceable && e.win.Lo <= win.Lo && win.Hi <= e.win.Hi) {
			c.lru.MoveToFront(e.elem)
			c.hits++
			if e.win == win {
				return e.cal, true
			}
			return calendar.SliceOverlapping(e.cal, win), true
		}
	}
	c.misses++
	return nil, false
}

// Put records a materialization of key over win. sliceable promises that cal
// is an order-1 calendar whose intervals are sorted with non-decreasing
// upper bounds (generated runs), so subset windows may later be sliced out
// of it; it is ignored for higher-order calendars. Entries whose windows the
// new one subsumes are coalesced away; if a cached sliceable window already
// covers win, the insert is a no-op.
func (c *Cache) Put(k Key, win interval.Interval, cal *calendar.Calendar, sliceable bool) {
	if cal == nil {
		return
	}
	if sliceable && cal.Order() != 1 {
		sliceable = false
	}
	size := SizeOf(cal)
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		c.rejected++
		return
	}
	bucket := c.buckets[k]
	for _, e := range bucket {
		if e.win == win || (e.sliceable && e.win.Lo <= win.Lo && win.Hi <= e.win.Hi) {
			// Already covered by an equal or wider materialization.
			return
		}
	}
	kept := bucket[:0]
	for _, e := range bucket {
		if sliceable && e.win.Lo >= win.Lo && e.win.Hi <= win.Hi {
			// The new window subsumes this one: coalesce.
			c.removeLocked(e)
			c.coalesced++
			continue
		}
		kept = append(kept, e)
	}
	e := &entry{key: k, win: win, cal: cal, sliceable: sliceable, bytes: size}
	e.elem = c.lru.PushFront(e)
	c.buckets[k] = append(kept, e)
	c.bytes += size
	c.puts++
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		c.removeLocked(victim)
		c.dropFromBucket(victim)
		c.evictions++
	}
}

// removeLocked detaches e from the LRU and byte accounting (not the bucket).
func (c *Cache) removeLocked(e *entry) {
	c.lru.Remove(e.elem)
	c.bytes -= e.bytes
}

// dropFromBucket removes e from its bucket slice.
func (c *Cache) dropFromBucket(e *entry) {
	bucket := c.buckets[e.key]
	for i, x := range bucket {
		if x == e {
			c.buckets[e.key] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(c.buckets[e.key]) == 0 {
		delete(c.buckets, e.key)
	}
}

// Reset empties the cache, keeping the budget and counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buckets = map[Key][]*entry{}
	c.lru.Init()
	c.bytes = 0
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Puts: c.puts, Rejected: c.rejected,
		Evictions: c.evictions, Coalesced: c.coalesced,
		Entries: c.lru.Len(), Bytes: c.bytes, Budget: c.budget,
	}
}

// SizeOf estimates a calendar's resident bytes: 16 per leaf interval plus a
// fixed overhead per calendar node.
func SizeOf(c *calendar.Calendar) int64 {
	const nodeOverhead = 64
	if c.Order() == 1 {
		return nodeOverhead + 16*int64(len(c.Intervals()))
	}
	size := int64(nodeOverhead)
	for _, s := range c.Subs() {
		size += SizeOf(s)
	}
	return size
}

// minChunk and maxChunk bound the window-alignment grid (in ticks).
const (
	minChunk = 1 << 6
	maxChunk = 1 << 22
)

// AlignedWindow pads a requested generation window outward to a power-of-two
// chunk grid, so that the shifted, overlapping windows of successive queries
// (a rule's advancing lookahead, a series' growing horizon) land on the same
// materialization instead of each missing by a few ticks. The chunk is the
// smallest power of two covering the request, clamped to [minChunk,
// maxChunk], so a cold padded generation costs at most a small constant
// factor over the request itself.
func AlignedWindow(win interval.Interval) interval.Interval {
	lo := chronology.OffsetFromTick(win.Lo)
	hi := chronology.OffsetFromTick(win.Hi)
	n := hi - lo + 1
	chunk := int64(minChunk)
	for chunk < n && chunk < maxChunk {
		chunk <<= 1
	}
	alo := floorDiv(lo, chunk) * chunk
	ahi := (floorDiv(hi, chunk)+1)*chunk - 1
	return interval.Interval{Lo: chronology.TickFromOffset(alo), Hi: chronology.TickFromOffset(ahi)}
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
