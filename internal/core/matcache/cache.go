// Package matcache implements a process-wide materialized-calendar cache:
// the cross-evaluation form of the paper's "mark any calendar that is
// encountered more than once to avoid generating values of the calendar
// unnecessarily" (§3.4). The per-evaluation generation cache of the plan
// executor dedupes work within one query; this cache dedupes it across
// queries, rule firings and timeseries probes, which overwhelmingly re-ask
// for the same periodic calendars over overlapping windows.
//
// Entries are keyed by (scope, calendar identity, version, granularity) and
// hold one or more materialized windows. Window coalescing means a cached
// superset window serves any subset request by slicing: generated basic
// calendars are consecutive sorted interval runs, so the slice of a larger
// materialization over a smaller window is byte-for-byte what generating the
// smaller window would produce. Versions implement invalidation: the catalog
// bumps its generation on Define/Replace/Drop, so stale entries stop being
// addressable and age out of the LRU.
//
// Periodic calendars are stored as patterns rather than materialized lists:
// a pattern entry costs a few dozen bytes regardless of how many centuries of
// windows it can serve, any covered window is a hit (expanded on demand in
// O(output)), and under LRU pressure basic calendars effectively never evict.
// Pattern entries arrive explicitly via PutPattern (the generate fast path
// knows its calendar is periodic) or implicitly: Put runs periodic.Detect
// over sliceable materializations and keeps the compressed form when a true
// cycle is found, clamped to the element range actually observed.
//
// # Concurrency
//
// The cache is sharded: keys hash (FNV-1a, the rules.ShardOf idiom) into a
// power-of-two array of shards, each with its own RWMutex, bucket map, LRU
// list and byte sub-budget, so readers of different keys never contend and
// readers of one key share an RLock. The read path never takes an exclusive
// lock: Get/GetPattern find the covering entry under RLock, capture its
// immutable payload, release, and run all expansion/slicing outside any
// lock. LRU recency is tracked by a per-entry atomic access stamp; the list
// position is only reconciled lazily on the next write-side operation
// (second-chance promotion at eviction time), so a read costs two atomic
// adds beyond the RLock. All counters are atomics, so Stats never blocks
// the data path.
//
// Entry payloads (the *Calendar / *Pattern and their window bounds) are
// immutable from the moment an entry is published: eviction and Reset only
// detach entries, they never mutate them, so a pointer handed out by Get
// stays valid — and exact-window hits return the cached calendar itself
// with no copy. Callers must treat cached calendars as read-only.
//
// Miss coalescing is layered on top: Do runs one materialization per
// (key, window) no matter how many goroutines miss concurrently, and shares
// the result (the cache-stampede control for cold starts and
// generation-bump storms; see flight.go).
//
// The cache is bounded by a byte budget with LRU eviction and exposes
// expvar-style counters via Stats. LockedCache (locked.go) preserves the
// pre-sharding single-mutex implementation as the benchmark ablation arm.
package matcache

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
	"calsys/internal/core/periodic"
)

// Key identifies one cached calendar materialization line (all windows of
// one calendar identity at one granularity).
type Key struct {
	// Scope namespaces keys by owner (one catalog manager, including its
	// epoch), so unrelated databases in one process never cross-serve.
	Scope string
	// ID is the calendar identity: "G|<basic>" for generated basic
	// calendars, "D|<name>" for derived catalog entries, "E|<expr>" for
	// whole-expression materializations.
	ID string
	// Version is the catalog version the materialization was computed
	// against; basic calendars, which depend only on the chronology, use 0.
	Version uint64
	// Gran is the tick granularity the values are expressed in.
	Gran chronology.Granularity
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s@v%d/%v", k.Scope, k.ID, k.Version, k.Gran)
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits        int64 `json:"hits"`         // requests served from a cached window
	Misses      int64 `json:"misses"`       // requests that found no covering window
	Puts        int64 `json:"puts"`         // materializations inserted
	Rejected    int64 `json:"rejected"`     // materializations too large for the budget
	Evictions   int64 `json:"evictions"`    // entries evicted by LRU pressure
	Coalesced   int64 `json:"coalesced"`    // entries dropped because a superset window subsumed them
	Compressed  int64 `json:"compressed"`   // materializations stored as detected patterns instead
	Flights     int64 `json:"flights"`      // coalesced materializations run by Do leaders
	FlightWaits int64 `json:"flight_waits"` // Do callers that waited on another goroutine's flight
	Patterns    int   `json:"patterns"`     // resident pattern entries
	Entries     int   `json:"entries"`      // resident (key, window) entries
	Bytes       int64 `json:"bytes"`        // resident bytes (estimated)
	Budget      int64 `json:"budget"`       // configured byte budget
	Shards      int   `json:"shards"`       // lock stripes the budget is split across
}

// String renders the counters in expvar style.
func (s Stats) String() string {
	return fmt.Sprintf(`{"hits": %d, "misses": %d, "puts": %d, "rejected": %d, "evictions": %d, "coalesced": %d, "compressed": %d, "flights": %d, "flightWaits": %d, "patterns": %d, "entries": %d, "bytes": %d, "budget": %d, "shards": %d}`,
		s.Hits, s.Misses, s.Puts, s.Rejected, s.Evictions, s.Coalesced, s.Compressed, s.Flights, s.FlightWaits, s.Patterns, s.Entries, s.Bytes, s.Budget, s.Shards)
}

// ShardStat is one shard's resident footprint (per-shard counters would
// double the atomic traffic for no operational signal; the aggregate
// counters live in Stats).
type ShardStat struct {
	Entries  int   `json:"entries"`
	Patterns int   `json:"patterns"`
	Bytes    int64 `json:"bytes"`
	Budget   int64 `json:"budget"`
}

// AllTime is the validity window of pattern entries that hold for every
// window — the truly periodic basic calendars, whose pattern serves any
// request.
var AllTime = interval.Interval{Lo: math.MinInt64, Hi: math.MaxInt64}

// entry is one materialized window of one key: either a materialized
// calendar (cal) or a periodic pattern (pat) with the element-index range it
// is valid over. Pattern entries serve any sub-window of win by expansion.
//
// All payload fields are written once, before the entry is published into a
// bucket under the shard's write lock, and never mutated after — the
// immutability contract that lets the read path use them outside the lock.
// accessed/placed implement deferred LRU promotion: reads bump accessed (an
// atomic clock stamp); placed is the stamp at the entry's current list
// position, reconciled under the write lock at eviction time.
type entry struct {
	key        Key
	win        interval.Interval
	cal        *calendar.Calendar
	pat        *periodic.Pattern
	qmin, qmax int64
	sliceable  bool
	bytes      int64
	elem       *list.Element
	accessed   atomic.Int64
	placed     int64
}

// covers reports whether the entry can serve the requested window.
func (e *entry) covers(win interval.Interval) bool {
	if e.win == win {
		return true
	}
	return (e.sliceable || e.pat != nil) && e.win.Lo <= win.Lo && win.Hi <= e.win.Hi
}

// shard is one lock stripe: a private bucket map, LRU list, byte sub-budget
// and read-path counters. Hit/miss counters live here rather than on Cache
// so the read fast path never touches a cache line shared by all stripes —
// on many cores a single global hit counter would bounce between sockets on
// every Get and cap the scaling the striping buys. The blank pad keeps
// neighboring shards off one cache line.
type shard struct {
	mu           sync.RWMutex
	budget       int64
	bytes        int64
	buckets      map[Key][]*entry
	lru          *list.List // front = most recently placed; values are *entry
	hits, misses atomic.Int64
	_            [64]byte
}

// Cache is a byte-bounded, sharded LRU of materialized calendars. It is safe
// for concurrent use; see the package comment for the locking discipline.
type Cache struct {
	budget int64
	mask   uint32
	shards []shard

	// clock is the logical access clock behind deferred LRU promotion. Only
	// write-side operations advance it; reads just load it, so the hot read
	// path never contends on this cache line.
	clock atomic.Int64

	puts, rejected, evictions, coalesced, compressed atomic.Int64
	flights, flightWaits                             atomic.Int64
	patterns                                         atomic.Int64

	flightMu sync.Mutex
	inflight map[flightKey]*flight
}

// DefaultBudget is the byte budget of the shared process-wide cache.
const DefaultBudget = 64 << 20

// maxShards caps the stripe count; minShardBudget is the smallest byte
// sub-budget a stripe is allowed (halving below it stops the doubling), so
// tiny test budgets degenerate to one stripe with exactly the classic LRU
// semantics, while the default budget gets the full fan-out.
const (
	maxShards      = 16
	minShardBudget = 64 << 10
)

// shardCount picks the largest power of two ≤ maxShards whose per-shard
// budget stays ≥ minShardBudget.
func shardCount(budget int64) int {
	n := 1
	for n < maxShards && budget/int64(n)/2 >= minShardBudget {
		n *= 2
	}
	return n
}

// New returns an empty cache with the given byte budget (<= 0 means
// DefaultBudget).
func New(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	n := shardCount(budget)
	c := &Cache{
		budget:   budget,
		mask:     uint32(n - 1),
		shards:   make([]shard, n),
		inflight: map[flightKey]*flight{},
	}
	for i := range c.shards {
		c.shards[i].budget = budget / int64(n)
		c.shards[i].buckets = map[Key][]*entry{}
		c.shards[i].lru = list.New()
	}
	return c
}

var (
	sharedOnce sync.Once
	shared     *Cache
)

// Shared returns the process-wide cache every catalog manager plugs into.
func Shared() *Cache {
	sharedOnce.Do(func() { shared = New(DefaultBudget) })
	return shared
}

// shardOf hashes a key (FNV-1a over every field, the rules.ShardOf idiom)
// onto its stripe.
func (c *Cache) shardOf(k Key) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(k.Scope); i++ {
		h ^= uint32(k.Scope[i])
		h *= prime32
	}
	h ^= 0xff // field separator: ("ab","c") must not collide with ("a","bc")
	h *= prime32
	for i := 0; i < len(k.ID); i++ {
		h ^= uint32(k.ID[i])
		h *= prime32
	}
	v := k.Version
	for i := 0; i < 8; i++ {
		h ^= uint32(v & 0xff)
		h *= prime32
		v >>= 8
	}
	h ^= uint32(k.Gran)
	h *= prime32
	return &c.shards[h&c.mask]
}

// touch stamps an entry as read since it was last placed. The LRU list is
// not moved — that would need the exclusive lock — the stamp is reconciled
// at eviction time. The stamp is clock.Load()+1, not clock.Add(1): the
// second-chance check only needs the binary signal accessed > placed, and a
// read-only load keeps the hot path off the clock's cache line. Any
// promotion or insert advances the clock, so a promoted entry's next read
// stamps strictly above its new placement.
func (c *Cache) touch(e *entry) {
	e.accessed.Store(c.clock.Load() + 1)
}

// Get returns the calendar materialized for key over exactly win, served
// from any cached window that covers it. Sliceable entries (sorted
// consecutive interval runs, the shape of every generated calendar) serve
// subset windows by slicing; other entries serve exact window matches only.
//
// Exact-window hits return the cached *calendar.Calendar itself (no copy).
// Cached calendars are immutable: concurrent Put/Reset/eviction can detach
// the entry but never mutates the calendar, so the returned value stays
// coherent; callers must not modify it.
func (c *Cache) Get(k Key, win interval.Interval) (*calendar.Calendar, bool) {
	sh := c.shardOf(k)
	sh.mu.RLock()
	var found *entry
	for _, e := range sh.buckets[k] {
		if e.covers(win) {
			found = e
			break
		}
	}
	sh.mu.RUnlock()
	if found == nil {
		sh.misses.Add(1)
		return nil, false
	}
	c.touch(found)
	sh.hits.Add(1)
	// Expansion and slicing run outside any lock: the payload fields are
	// immutable once the entry is published, so concurrent eviction cannot
	// invalidate them.
	if found.pat != nil {
		return calendar.ExpandPatternBetween(k.Gran, found.pat, win, found.qmin, found.qmax), true
	}
	if found.win == win {
		return found.cal, true
	}
	return calendar.SliceOverlapping(found.cal, win), true
}

// GetPattern returns a cached pattern valid over win, with the element-index
// range to clamp expansions to. The plan executor uses this to answer
// cardinality and selection over periodic values in O(log spans) arithmetic,
// never materializing at all. Unlike Get, a miss here is not counted — the
// caller falls through to Get, which settles the hit/miss accounting.
func (c *Cache) GetPattern(k Key, win interval.Interval) (*periodic.Pattern, int64, int64, bool) {
	sh := c.shardOf(k)
	sh.mu.RLock()
	var found *entry
	for _, e := range sh.buckets[k] {
		if e.pat != nil && e.covers(win) {
			found = e
			break
		}
	}
	sh.mu.RUnlock()
	if found == nil {
		return nil, 0, 0, false
	}
	c.touch(found)
	sh.hits.Add(1)
	return found.pat, found.qmin, found.qmax, true
}

// Put records a materialization of key over win. sliceable promises that cal
// is an order-1 calendar whose intervals are sorted with non-decreasing
// upper bounds (generated runs), so subset windows may later be sliced out
// of it; it is ignored for higher-order calendars. Entries whose windows the
// new one subsumes are coalesced away; if a cached sliceable window already
// covers win, the insert is a no-op. The calendar becomes shared the moment
// it is inserted and must not be mutated afterwards.
func (c *Cache) Put(k Key, win interval.Interval, cal *calendar.Calendar, sliceable bool) {
	if cal == nil {
		return
	}
	if sliceable && cal.Order() != 1 {
		sliceable = false
	}
	size := SizeOf(cal)
	// Detection runs outside the lock (it is pure): a sliceable
	// materialization with a true cycle is stored as its pattern — a fraction
	// of the bytes, and any covered window stays servable via ExpandBetween
	// clamped to the observed element range.
	if sliceable {
		if ivs := cal.Intervals(); len(ivs) >= compressMinLen {
			if pat, qmin, qmax, ok := periodic.Detect(ivs); ok && pat.SizeBytes()*2 <= size {
				c.putPattern(k, win, pat, qmin, qmax, true)
				return
			}
		}
		// Lower the endpoint index once at insert time (outside the lock —
		// the build is pure): a cached calendar keeps its flat bound arrays
		// alongside the interval slice for as long as it lives, and
		// SliceOverlapping hands subset windows an index view, so no query
		// against this entry ever re-lowers the list.
		cal.PrimeIndex()
	}
	sh := c.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if size > sh.budget {
		c.rejected.Add(1)
		return
	}
	bucket := sh.buckets[k]
	for _, e := range bucket {
		if e.covers(win) {
			// Already covered by an equal or wider materialization.
			return
		}
	}
	kept := bucket[:0]
	for _, e := range bucket {
		if sliceable && e.pat == nil && e.win.Lo >= win.Lo && e.win.Hi <= win.Hi {
			// The new window subsumes this one: coalesce. Pattern entries are
			// kept — they are smaller than any materialization that covers
			// them.
			sh.removeLocked(c, e)
			c.coalesced.Add(1)
			continue
		}
		kept = append(kept, e)
	}
	e := &entry{key: k, win: win, cal: cal, sliceable: sliceable, bytes: size}
	c.insertLocked(sh, kept, e)
}

// compressMinLen is the smallest materialization Put tries to compress:
// below it the detection scan outweighs the byte savings.
const compressMinLen = 32

// PutPattern records a periodic pattern for key, valid over any sub-window
// of win (pass AllTime for truly periodic calendars) and clamped to pattern
// element indices [qmin, qmax] (pass math.MinInt64, math.MaxInt64 when
// unbounded). Materialized entries whose windows the pattern covers are
// coalesced away — the pattern serves them in O(output) at a fraction of the
// bytes.
func (c *Cache) PutPattern(k Key, win interval.Interval, pat *periodic.Pattern, qmin, qmax int64) {
	if pat == nil {
		return
	}
	c.putPattern(k, win, pat, qmin, qmax, false)
}

func (c *Cache) putPattern(k Key, win interval.Interval, pat *periodic.Pattern, qmin, qmax int64, compressed bool) {
	size := pat.SizeBytes()
	if compressed {
		c.compressed.Add(1)
	}
	sh := c.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if size > sh.budget {
		c.rejected.Add(1)
		return
	}
	bucket := sh.buckets[k]
	for _, e := range bucket {
		if e.pat != nil && e.covers(win) {
			return // an equal-or-wider pattern already serves this
		}
	}
	kept := bucket[:0]
	for _, e := range bucket {
		if e.win.Lo >= win.Lo && e.win.Hi <= win.Hi {
			sh.removeLocked(c, e)
			c.coalesced.Add(1)
			continue
		}
		kept = append(kept, e)
	}
	e := &entry{key: k, win: win, pat: pat, qmin: qmin, qmax: qmax, sliceable: true, bytes: size}
	c.insertLocked(sh, kept, e)
}

// insertLocked adds e to its bucket and the shard LRU, then enforces the
// shard's byte sub-budget with second-chance eviction: a back-of-list entry
// whose atomic access stamp moved since it was last placed has been read
// since — it is promoted (deferred promotion applied here, the next
// write-side operation) instead of evicted. Each entry gets at most one
// chance per pass, so an eviction storm still terminates.
func (c *Cache) insertLocked(sh *shard, kept []*entry, e *entry) {
	e.placed = c.clock.Add(1)
	e.elem = sh.lru.PushFront(e)
	sh.buckets[e.key] = append(kept, e)
	sh.bytes += e.bytes
	c.puts.Add(1)
	if e.pat != nil {
		c.patterns.Add(1)
	}
	chances := sh.lru.Len()
	for sh.bytes > sh.budget {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		if a := victim.accessed.Load(); a > victim.placed && chances > 0 {
			chances--
			victim.placed = a
			sh.lru.MoveToFront(back)
			continue
		}
		sh.removeLocked(c, victim)
		sh.dropFromBucket(victim)
		c.evictions.Add(1)
	}
}

// removeLocked detaches e from the LRU and byte accounting (not the bucket).
func (sh *shard) removeLocked(c *Cache, e *entry) {
	sh.lru.Remove(e.elem)
	sh.bytes -= e.bytes
	if e.pat != nil {
		c.patterns.Add(-1)
	}
}

// dropFromBucket removes e from its bucket slice by swap-remove: bucket
// order carries no meaning (covers scans the whole bucket), so the O(n)
// shift the old append-based removal paid is pure waste.
func (sh *shard) dropFromBucket(e *entry) {
	bucket := sh.buckets[e.key]
	for i, x := range bucket {
		if x == e {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			bucket[last] = nil
			bucket = bucket[:last]
			break
		}
	}
	if len(bucket) == 0 {
		delete(sh.buckets, e.key)
	} else {
		sh.buckets[e.key] = bucket
	}
}

// Reset empties the cache, keeping the budget and counters.
func (c *Cache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.buckets = map[Key][]*entry{}
		sh.lru.Init()
		sh.bytes = 0
		sh.mu.Unlock()
	}
	c.patterns.Store(0)
}

// Stats snapshots the counters. The monotone counters are lock-free atomics;
// only the resident entry/byte census takes each shard's read lock briefly.
func (c *Cache) Stats() Stats {
	st := Stats{
		Puts:     c.puts.Load(),
		Rejected: c.rejected.Load(), Evictions: c.evictions.Load(),
		Coalesced: c.coalesced.Load(), Compressed: c.compressed.Load(),
		Flights: c.flights.Load(), FlightWaits: c.flightWaits.Load(),
		Patterns: int(c.patterns.Load()),
		Budget:   c.budget, Shards: len(c.shards),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
		sh.mu.RLock()
		st.Entries += sh.lru.Len()
		st.Bytes += sh.bytes
		sh.mu.RUnlock()
	}
	return st
}

// ShardStats snapshots each shard's resident footprint, for the
// /debug/cachestats endpoint and stripe-balance checks.
func (c *Cache) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		pats := 0
		for e := sh.lru.Front(); e != nil; e = e.Next() {
			if e.Value.(*entry).pat != nil {
				pats++
			}
		}
		out[i] = ShardStat{Entries: sh.lru.Len(), Patterns: pats, Bytes: sh.bytes, Budget: sh.budget}
		sh.mu.RUnlock()
	}
	return out
}

// SizeOf estimates a calendar's resident bytes: 16 per leaf interval plus a
// fixed overhead per calendar node.
func SizeOf(c *calendar.Calendar) int64 {
	const nodeOverhead = 64
	if c.Order() == 1 {
		return nodeOverhead + 16*int64(len(c.Intervals()))
	}
	size := int64(nodeOverhead)
	for _, s := range c.Subs() {
		size += SizeOf(s)
	}
	return size
}

// minChunk and maxChunk bound the window-alignment grid (in ticks).
const (
	minChunk = 1 << 6
	maxChunk = 1 << 22
)

// AlignedWindow pads a requested generation window outward to a power-of-two
// chunk grid, so that the shifted, overlapping windows of successive queries
// (a rule's advancing lookahead, a series' growing horizon) land on the same
// materialization instead of each missing by a few ticks. The chunk is the
// smallest power of two covering the request, clamped to [minChunk,
// maxChunk], so a cold padded generation costs at most a small constant
// factor over the request itself.
func AlignedWindow(win interval.Interval) interval.Interval {
	lo := chronology.OffsetFromTick(win.Lo)
	hi := chronology.OffsetFromTick(win.Hi)
	n := hi - lo + 1
	chunk := int64(minChunk)
	for chunk < n && chunk < maxChunk {
		chunk <<= 1
	}
	alo := floorDiv(lo, chunk) * chunk
	ahi := (floorDiv(hi, chunk)+1)*chunk - 1
	return interval.Interval{Lo: chronology.TickFromOffset(alo), Hi: chronology.TickFromOffset(ahi)}
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
