package periodic

import (
	"sort"
)

// Pattern set operations merge two patterns over the least common multiple
// of their periods: the result repeats with period lcm(p, q), and one lcm
// cycle holds p.spans·(L/p.period) + q.spans·(L/q.period) candidate spans.
// Operations fail (ok = false) — and callers fall back to materialized
// lists — when the lcm cycle would be unreasonably large, or when an
// operand's spans reach past its cycle end (overlapping boundary elements
// have no clean single-cycle normal form).
// setopMaxSpans bounds the candidate spans enumerated over one common cycle.
// It is an intermediate budget: results are canonicalized and re-checked
// against the smaller resultMaxSpans, so a Gregorian-cycle operand (146097
// days) fits here while composed results stay compact.
const setopMaxSpans = 1 << 18

// setopCycle computes the common cycle length for a set operation, or
// ok = false when the operands have no compact common cycle.
func setopCycle(p, q *Pattern) (int64, bool) {
	if !p.cycleContained() || !q.cycleContained() {
		return 0, false
	}
	L := lcm(p.period, q.period, 1<<40)
	if L == 0 {
		return 0, false
	}
	if L/p.period*int64(len(p.spans))+L/q.period*int64(len(q.spans)) > setopMaxSpans {
		return 0, false
	}
	return L, true
}

// cycleContained reports whether every span ends inside its own cycle, the
// precondition for re-phasing a pattern onto another anchor.
func (p *Pattern) cycleContained() bool {
	return p.spans[len(p.spans)-1].Hi < p.period
}

// lcm returns the least common multiple, or 0 when it exceeds limit.
func lcm(a, b, limit int64) int64 {
	g := gcd(a, b)
	l := a / g
	if l > limit/b {
		return 0
	}
	return l * b
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// rephased lists p's spans over one cycle of length L anchored at absolute
// offset anchor, sorted by (Lo, Hi). L must be a multiple of p.period and p
// cycle-contained. A span that straddles the anchored cycle's end is split
// into a tail piece and a wrapped head piece — sound for point-set coverage
// (Diff) but not for element lists (Union), whose anchors are chosen via
// straddles so no split ever occurs.
func (p *Pattern) rephased(anchor, L int64) []Span {
	reps := L / p.period
	base := floorMod(p.phase-anchor, p.period)
	out := make([]Span, 0, int(reps)*len(p.spans)+1)
	for r := int64(0); r < reps; r++ {
		shift := base + r*p.period
		for _, s := range p.spans {
			lo, hi := shift+s.Lo, shift+s.Hi
			switch {
			case hi < L:
				out = append(out, Span{Lo: lo, Hi: hi})
			case lo < L:
				out = append(out, Span{Lo: lo, Hi: L - 1}, Span{Lo: 0, Hi: hi - L})
			default:
				out = append(out, Span{Lo: lo - L, Hi: hi - L})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lo != out[j].Lo {
			return out[i].Lo < out[j].Lo
		}
		return out[i].Hi < out[j].Hi
	})
	return out
}

// Union returns the pattern denoting the calendar "+" of the two patterns'
// element lists: the merged, ordered elements of both, exact duplicates
// kept once — matching calendar.Union on any common expansion window. ok is
// false when the patterns cannot be merged compactly, an element of each
// phase-alignment candidate would straddle the merged cycle boundary, or the
// merged list is not expressible as a pattern (upper bounds must stay
// monotone across the merged cycle).
func (p *Pattern) Union(q *Pattern) (*Pattern, bool) {
	L, ok := setopCycle(p, q)
	if !ok {
		return nil, false
	}
	anchor, ok := unionAnchor(p, q, L)
	if !ok {
		return nil, false
	}
	a := p.rephased(anchor, L)
	b := q.rephased(anchor, L)
	merged := make([]Span, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var s Span
		switch {
		case i >= len(a):
			s, j = b[j], j+1
		case j >= len(b):
			s, i = a[i], i+1
		case a[i] == b[j]:
			s, i, j = a[i], i+1, j+1
		case a[i].Lo < b[j].Lo || (a[i].Lo == b[j].Lo && a[i].Hi < b[j].Hi):
			s, i = a[i], i+1
		default:
			s, j = b[j], j+1
		}
		if n := len(merged); n > 0 && merged[n-1] == s {
			continue
		}
		merged = append(merged, s)
	}
	u, err := New(L, anchor, merged)
	if err != nil {
		return nil, false
	}
	return u, true
}

// unionAnchor finds an anchor at which no element of either operand straddles
// the merged cycle boundary (straddling elements would have to be split, which
// is unsound for element lists). Candidates are every element start of both
// patterns plus the point just past every element end — one of these works
// whenever any anchor does, because a boundary that no element straddles is
// either uncovered (so some element end precedes it) or sits exactly at an
// element start.
func unionAnchor(p, q *Pattern, L int64) (int64, bool) {
	var cands []int64
	for _, s := range p.spans {
		cands = append(cands, p.phase+s.Lo, p.phase+s.Hi+1)
	}
	for _, s := range q.spans {
		cands = append(cands, q.phase+s.Lo, q.phase+s.Hi+1)
	}
	for _, a := range cands {
		if !straddles(p, a) && !straddles(q, a) {
			return a, true
		}
	}
	return 0, false
}

// straddles reports whether some element of p contains both offsets a-1 and a
// — i.e. crosses the cycle boundary of a merged cycle anchored at a. (Element
// copies repeat with p's period, which divides any merged cycle length, so
// the check is independent of L.)
func straddles(p *Pattern, a int64) bool {
	for _, s := range p.spans {
		if r := floorMod(a-p.phase-s.Lo, p.period); r >= 1 && r <= s.Hi-s.Lo {
			return true
		}
	}
	return false
}

// Diff returns the pattern denoting the calendar "-" of the two patterns:
// each element of p with q's covered points removed, split where necessary.
// Because the subtraction uses q's full periodic coverage, it matches
// calendar.Diff on materialized operands only when q's materialization
// window covers every q element near p's — true when both expand over a
// common window and p's elements stay inside it. ok is false when the
// patterns cannot be merged compactly or the difference is empty (the null
// calendar has no periodic form).
func (p *Pattern) Diff(q *Pattern) (*Pattern, bool) {
	out, L, ok := diffCycle(p, q)
	if !ok || len(out) == 0 {
		return nil, false
	}
	d, err := New(L, p.phase, out)
	if err != nil {
		return nil, false
	}
	return d, true
}

// normalizeSpans sorts and merges overlapping or adjacent spans in place.
func normalizeSpans(spans []Span) []Span {
	if len(spans) == 0 {
		return spans
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo < spans[j].Lo })
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.Lo <= last.Hi+1 {
			if s.Hi > last.Hi {
				last.Hi = s.Hi
			}
			continue
		}
		out = append(out, s)
	}
	return out
}
