// algebra.go is the symbolic pattern calculus: calendar operators evaluated
// directly on Patterns, with no materialized interval list anywhere.
//
// Following Bettini & Mascetti, every operator of the calendar language that
// is window-independent — union, difference, point-set intersection, and the
// during/overlaps/meets foreach groupings with their per-group selections —
// maps periodic element lists to periodic element lists, computable over one
// lcm cycle of the operands. The functions here replicate the exact
// element-list semantics of the materialized operators in
// internal/core/calendar (duplicates, trimming, ordering), so that expanding
// the symbolic result over any window equals materializing the expression
// over that window, away from generation-edge effects.
//
// Empty sets. A Pattern cannot represent the empty list (New requires a
// span), so the calculus widens the domain: a nil *Pattern is the provably
// empty element list. Every function accepts and may return nil. The second
// return value reports whether the operands were symbolically combinable at
// all — ok=false means "fall back to materialization", never "empty".
//
// Canonical form. Canonical reduces a pattern to the unique minimal
// representation of its element list (smallest period and span count, anchor
// at the least valid rotation, phase reduced into [0, period)), so that
// structural Equal on canonical forms decides semantic list equality — the
// foundation of the CV011/CV013 equivalence diagnostics and fleet-wide rule
// dedup.
package periodic

import (
	"calsys/internal/core/interval"
)

// resultMaxSpans bounds the spans of any pattern the calculus returns, after
// canonicalization; larger element lists fall back to materialization so
// composed operations stay cheap.
const resultMaxSpans = 1 << 16

// compacted canonicalizes a calculus result and enforces the result budget.
// Canonicalization is what makes cycle-heavy compositions viable: the
// flattened "DAYS during MONTHS" enumerates 146097 spans over one Gregorian
// cycle but canonicalizes to the single-span DAYS pattern.
func compacted(p *Pattern, ok bool) (*Pattern, bool) {
	if !ok || p == nil {
		return p, ok
	}
	c := p.Canonical()
	if int64(len(c.spans)) > resultMaxSpans {
		return nil, false
	}
	return c, true
}

// firstWithLoGE returns the smallest element index whose lower offset is ≥ x.
func (p *Pattern) firstWithLoGE(x int64) int64 { return p.lastWithLoLE(x-1) + 1 }

// lastWithHiLE returns the largest element index whose upper offset is ≤ x.
func (p *Pattern) lastWithHiLE(x int64) int64 { return p.firstWithHiGE(x+1) - 1 }

// SetUnion is the calendar "+" over possibly-empty symbolic element lists:
// the merged ordered elements of both, exact duplicates kept once. ok=false
// means the operands have no compact common cycle and the caller must fall
// back to materialization.
func SetUnion(p, q *Pattern) (*Pattern, bool) {
	if p == nil {
		return q, true
	}
	if q == nil {
		return p, true
	}
	return compacted(p.Union(q))
}

// SetDiff is the calendar "-" over symbolic element lists: each element of p
// with q's covered points removed, split where necessary, surviving pieces
// staying separate elements. A nil result with ok=true is a proof that the
// difference is empty everywhere on the timeline.
func SetDiff(p, q *Pattern) (*Pattern, bool) {
	if p == nil {
		return nil, true
	}
	if q == nil {
		return p, true
	}
	out, L, ok := diffCycle(p, q)
	if !ok {
		return nil, false
	}
	if len(out) == 0 {
		return nil, true // provably empty: q covers every element of p
	}
	d, err := New(L, p.phase, out)
	if err != nil {
		return nil, false
	}
	return compacted(d, true)
}

// SetIntersect is the calendar "intersects" operator over symbolic element
// lists: the pieces of each element of p covered by q's point set, adjacent
// cuts of one element fusing — exactly calendar.Intersect. A nil result with
// ok=true proves the intersection empty.
func SetIntersect(p, q *Pattern) (*Pattern, bool) {
	if p == nil || q == nil {
		return nil, true
	}
	L, ok := setopCycle(p, q)
	if !ok {
		return nil, false
	}
	a := p.rephased(p.phase, L) // anchored at its own phase: no splits
	cov := normalizeSpans(q.rephased(p.phase, L))
	var out []Span
	j := 0
	for _, iv := range a {
		for j < len(cov) && cov[j].Hi < iv.Lo {
			j++
		}
		for k := j; k < len(cov) && cov[k].Lo <= iv.Hi; k++ {
			lo, hi := iv.Lo, iv.Hi
			if cov[k].Lo > lo {
				lo = cov[k].Lo
			}
			if cov[k].Hi < hi {
				hi = cov[k].Hi
			}
			if lo <= hi {
				// Normalized coverage intervals are separated by uncovered
				// gaps, so cuts of one element are never adjacent and the
				// materialized operator's fuse step has nothing to do.
				out = append(out, Span{Lo: lo, Hi: hi})
			}
		}
	}
	if len(out) == 0 {
		return nil, true
	}
	r, err := New(L, p.phase, out)
	if err != nil {
		return nil, false
	}
	return compacted(r, true)
}

// diffCycle computes the span list of p − q over one common cycle anchored at
// p's phase. ok=false means no compact common cycle; an empty span list with
// ok=true means the difference is provably empty.
func diffCycle(p, q *Pattern) (out []Span, L int64, ok bool) {
	L, ok = setopCycle(p, q)
	if !ok {
		return nil, 0, false
	}
	a := p.rephased(p.phase, L) // anchored at its own phase: no splits
	cov := normalizeSpans(q.rephased(p.phase, L))
	j := 0
	for _, iv := range a {
		for j < len(cov) && cov[j].Hi < iv.Lo {
			j++
		}
		lo, dead := iv.Lo, false
		for k := j; k < len(cov) && cov[k].Lo <= iv.Hi; k++ {
			if cov[k].Lo > lo {
				out = append(out, Span{Lo: lo, Hi: cov[k].Lo - 1})
			}
			if cov[k].Hi >= iv.Hi {
				dead = true
				break
			}
			lo = cov[k].Hi + 1
		}
		if !dead && lo <= iv.Hi {
			out = append(out, Span{Lo: lo, Hi: iv.Hi})
		}
	}
	return out, L, true
}

// A groupRun is one group of the symbolic order-2 foreach value: the
// y-element [a, b] (absolute offsets) and the contiguous x-element index run
// [first, last] related to it under the listop (last < first means an empty
// group). The run is exact because both span bounds are monotone in the
// element index, so each listop's member set is an index interval — the same
// contiguous run the materialized sweep kernels visit.
type groupRun struct {
	a, b        int64
	first, last int64
}

func (r groupRun) size() int64 {
	if r.last < r.first {
		return 0
	}
	return r.last - r.first + 1
}

// member returns the i-th member of the group (trimmed to the group's
// element when strict, exactly as the materialized strict foreach trims).
// Every qualifying element intersects [a, b] — during is contained, meets
// touches at a — so the trim is never empty.
func (r groupRun) member(x *Pattern, i int64, strict bool) Span {
	lo, hi := x.element(r.first + i)
	if strict {
		if lo < r.a {
			lo = r.a
		}
		if hi > r.b {
			hi = r.b
		}
	}
	return Span{Lo: lo, Hi: hi}
}

// foreachRuns computes, for each element of y over one common cycle, the run
// of x elements related to it under op — the symbolic form of the order-2
// foreach value, holding index arithmetic instead of materialized members.
// Only the window-independent listops (during, overlaps, meets) qualify;
// `<` and `<=` collect a prefix of the whole window and have no symbolic
// form.
func foreachRuns(x, y *Pattern, op interval.ListOp) (runs []groupRun, L int64, ok bool) {
	switch op {
	case interval.During, interval.Overlaps, interval.Meets:
	default:
		return nil, 0, false
	}
	L = lcm(x.period, y.period, 1<<40)
	if L == 0 {
		return nil, 0, false
	}
	nY := L / y.period * int64(len(y.spans))
	if nY > setopMaxSpans {
		return nil, 0, false
	}
	runs = make([]groupRun, 0, nY)
	for qy := int64(0); qy < nY; qy++ {
		a, b := y.element(qy)
		r := groupRun{a: a, b: b}
		switch op {
		case interval.During:
			r.first, r.last = x.firstWithLoGE(a), x.lastWithHiLE(b)
		case interval.Overlaps:
			r.first, r.last = x.firstWithHiGE(a), x.lastWithLoLE(b)
		case interval.Meets:
			r.first, r.last = x.firstWithHiGE(a), x.firstWithHiGE(a+1)-1
		}
		runs = append(runs, r)
	}
	return runs, L, true
}

// patternFromCycle builds the pattern denoting the infinite periodic list
// whose cycle-c elements are the given absolute spans shifted by c·L. When
// the listed cycle stretches a hair past one period — a relaxed overlaps
// grouping repeats its boundary-straddling member in the last group of one
// cycle and the first group of the next — the anchor is rotated forward so
// the cycle fits, which relabels members across the cycle seam without
// changing the list. ok=false when no rotation yields a valid pattern; nil
// with ok=true when the list is empty.
func patternFromCycle(spans []Span, L int64) (*Pattern, bool) {
	if len(spans) == 0 {
		return nil, true
	}
	n := len(spans)
	k := 0
	for k < n && spans[n-1].Lo >= spans[k].Lo+L {
		k++
	}
	if k == n {
		return nil, false
	}
	rot := spans
	if k > 0 {
		rot = make([]Span, 0, n)
		rot = append(rot, spans[k:]...)
		for _, s := range spans[:k] {
			rot = append(rot, Span{Lo: s.Lo + L, Hi: s.Hi + L})
		}
	}
	anchor := rot[0].Lo
	rel := make([]Span, n)
	for i, s := range rot {
		rel[i] = Span{Lo: s.Lo - anchor, Hi: s.Hi - anchor}
	}
	p, err := New(L, anchor, rel)
	if err != nil {
		return nil, false
	}
	return p, true
}

// ForeachFlat is the flattened value of the foreach grouping {x : op : y}
// (or relaxed {x . op . y}): the concatenated per-group member lists, in
// group order — what the executor's Flatten produces from the order-2 value.
// Elements related to two groups (overlaps straddlers) appear once per group,
// exactly as in the materialized flatten.
func ForeachFlat(x, y *Pattern, op interval.ListOp, strict bool) (*Pattern, bool) {
	if x == nil || y == nil {
		return nil, true
	}
	runs, L, ok := foreachRuns(x, y, op)
	if !ok {
		return nil, false
	}
	total := int64(0)
	for _, r := range runs {
		if total += r.size(); total > setopMaxSpans {
			return nil, false
		}
	}
	all := make([]Span, 0, total)
	for _, r := range runs {
		for i := int64(0); i < r.size(); i++ {
			all = append(all, r.member(x, i, strict))
		}
	}
	return compacted(patternFromCycle(all, L))
}

// ForeachSelect is the flattened value of a per-group selection
// [pred]/(x : op : y): pick maps each group's member count to the selected
// 0-based member indices, in predicate order (calendar.Selection.Indices).
// Empty groups select nothing, matching the paper's silent drop of groups
// with too few elements.
func ForeachSelect(x, y *Pattern, op interval.ListOp, strict bool, pick func(n int) []int) (*Pattern, bool) {
	if x == nil || y == nil {
		return nil, true
	}
	runs, L, ok := foreachRuns(x, y, op)
	if !ok {
		return nil, false
	}
	var all []Span
	for _, r := range runs {
		n := r.size()
		if n > setopMaxSpans {
			return nil, false
		}
		for _, i := range pick(int(n)) {
			if i >= 0 && int64(i) < n {
				all = append(all, r.member(x, int64(i), strict))
			}
			if int64(len(all)) > setopMaxSpans {
				return nil, false
			}
		}
	}
	return compacted(patternFromCycle(all, L))
}

// ForeachSelectEnd is the flattened value of an end-relative selection over
// a before/before-equals grouping, [ends]/(x :<: y): ends lists negative
// member offsets in predicate order (−1 the group's last member, −2 the one
// before it, …). Unlike during/overlaps/meets, the `<` and `<=` groupings
// collect an unbounded prefix of x — their flattened value is anchored to
// the evaluation window and has no symbolic form — but counting from the END
// of a group is window-independent: the k-th-from-last element before y is
// fixed index arithmetic on x's bi-infinite element sequence. The group's
// last member index is
//
//	<:  lastWithHiLE(y.Lo)                                (x.Hi ≤ y.Lo)
//	<=: min(lastWithLoLE(y.Lo), lastWithHiLE(y.Hi))       (x.Lo ≤ y.Lo ∧ x.Hi ≤ y.Hi)
//
// exact for any pattern because both bound sequences are monotone in the
// element index. Strict trims clamp each selected member to its y exactly as
// the materialized kernels do (keeping the member untrimmed when it does not
// intersect y). Selections whose members come out unordered — e.g. [-1,-2],
// or offsets interleaving across adjacent groups — fail pattern construction
// and report ok=false, falling back to materialization.
func ForeachSelectEnd(x, y *Pattern, op interval.ListOp, strict bool, ends []int) (*Pattern, bool) {
	if op != interval.Before && op != interval.BeforeEquals {
		return nil, false
	}
	for _, o := range ends {
		if o >= 0 {
			return nil, false
		}
	}
	if x == nil || y == nil || len(ends) == 0 {
		return nil, true
	}
	L := lcm(x.period, y.period, 1<<40)
	if L == 0 {
		return nil, false
	}
	nY := L / y.period * int64(len(y.spans))
	if nY > setopMaxSpans || nY*int64(len(ends)) > setopMaxSpans {
		return nil, false
	}
	all := make([]Span, 0, nY*int64(len(ends)))
	for qy := int64(0); qy < nY; qy++ {
		a, b := y.element(qy)
		var last int64
		if op == interval.Before {
			last = x.lastWithHiLE(a)
		} else {
			last = x.lastWithLoLE(a)
			if lhi := x.lastWithHiLE(b); lhi < last {
				last = lhi
			}
		}
		for _, o := range ends {
			lo, hi := x.element(last + 1 + int64(o))
			if strict {
				clo, chi := lo, hi
				if clo < a {
					clo = a
				}
				if chi > b {
					chi = b
				}
				if clo <= chi {
					lo, hi = clo, chi
				}
			}
			all = append(all, Span{Lo: lo, Hi: hi})
		}
	}
	return compacted(patternFromCycle(all, L))
}

// ForeachCards returns the exact minimum and maximum group cardinality of the
// foreach grouping {x : op : y} across one full common cycle — every group
// the infinite grouping ever produces. A selection index beyond max can
// provably never select anything.
func ForeachCards(x, y *Pattern, op interval.ListOp) (min, max int, ok bool) {
	if x == nil || y == nil {
		return 0, 0, false
	}
	runs, _, ok := foreachRuns(x, y, op)
	if !ok || len(runs) == 0 {
		return 0, 0, false
	}
	min, max = int(runs[0].size()), int(runs[0].size())
	for _, r := range runs[1:] {
		if n := int(r.size()); n < min {
			min = n
		} else if n > max {
			max = n
		}
	}
	return min, max, true
}

// Starts returns the point pattern of the element start offsets, duplicate
// starts kept once — the instants at which a rule over this calendar fires.
func (p *Pattern) Starts() *Pattern {
	if p == nil {
		return nil
	}
	pts := make([]Span, 0, len(p.spans))
	for _, s := range p.spans {
		pt := Span{Lo: s.Lo, Hi: s.Lo}
		if n := len(pts); n > 0 && pts[n-1] == pt {
			continue
		}
		pts = append(pts, pt)
	}
	q, err := New(p.period, p.phase, pts)
	if err != nil {
		// Point spans at sorted starts within [0, period) always validate.
		panic("periodic: Starts produced an invalid pattern: " + err.Error())
	}
	return q
}

// Canonical returns the unique minimal representation of the pattern's
// element list: the smallest period and spans-per-cycle, the anchor rotated
// to the least valid candidate, and the phase reduced into [0, period).
// Canonical preserves the element list exactly, so Equal on canonical forms
// implies semantic list equality; the converse holds except for the rare
// cycles whose minimal rotation is not expressible under New's invariants,
// where a sound non-minimal form is returned. Canonical of nil is nil.
func (p *Pattern) Canonical() *Pattern {
	if p == nil {
		return nil
	}
	// Re-anchor so the first span starts the cycle, absorbing the shift into
	// the phase. This is list-preserving: element q is unchanged.
	period := p.period
	phase := p.phase + p.spans[0].Lo
	spans := make([]Span, len(p.spans))
	for i, s := range p.spans {
		spans[i] = Span{Lo: s.Lo - p.spans[0].Lo, Hi: s.Hi - p.spans[0].Lo}
	}
	// Minimal period: the self-maps of an infinite periodic list form a cyclic
	// group, so the minimal representation's span count divides ours and its
	// period is the matching fraction. Take the smallest divisor under which
	// the cycle is self-similar (and still a valid pattern).
	c := len(spans)
	for cp := 1; cp < c; cp++ {
		if c%cp != 0 || period*int64(cp)%int64(c) != 0 {
			continue
		}
		shift := period * int64(cp) / int64(c)
		similar := true
		for i := 0; i+cp < c; i++ {
			if spans[i+cp].Lo != spans[i].Lo+shift || spans[i+cp].Hi != spans[i].Hi+shift {
				similar = false
				break
			}
		}
		if !similar {
			continue
		}
		if _, err := New(shift, phase, spans[:cp]); err != nil {
			continue
		}
		spans, period = spans[:cp:cp], shift
		break
	}
	// Least rotation: every span start is a candidate cycle anchor; among the
	// valid rotations pick the least (reduced phase, then span sequence) —
	// a deterministic function of the element list alone. The scan is
	// quadratic in the span count, so huge cycles keep the (still sound,
	// possibly non-minimal) unrotated form.
	best, _ := New(period, floorMod(phase, period), spans)
	if len(spans) > maxRotationSpans {
		return best
	}
	for r := 1; r < len(spans); r++ {
		rot := make([]Span, len(spans))
		for i := range spans {
			j := r + i
			wrap := int64(0)
			if j >= len(spans) {
				j -= len(spans)
				wrap = period
			}
			rot[i] = Span{Lo: spans[j].Lo + wrap - spans[r].Lo, Hi: spans[j].Hi + wrap - spans[r].Lo}
		}
		cand, err := New(period, floorMod(phase+spans[r].Lo, period), rot)
		if err != nil {
			continue
		}
		if candLess(cand, best) {
			best = cand
		}
	}
	return best
}

// maxRotationSpans bounds Canonical's quadratic least-rotation scan.
const maxRotationSpans = 1 << 12

// candLess orders canonicalization candidates by (phase, span sequence).
func candLess(a, b *Pattern) bool {
	if a.phase != b.phase {
		return a.phase < b.phase
	}
	for i := range a.spans {
		if a.spans[i].Lo != b.spans[i].Lo {
			return a.spans[i].Lo < b.spans[i].Lo
		}
		if a.spans[i].Hi != b.spans[i].Hi {
			return a.spans[i].Hi < b.spans[i].Hi
		}
	}
	return false
}

// SameList reports whether two possibly-empty symbolic element lists are
// semantically equal — they expand to the same elements over every window.
func SameList(p, q *Pattern) bool {
	if p == nil || q == nil {
		return p == nil && q == nil
	}
	return p.Canonical().Equal(q.Canonical())
}
