package periodic_test

import (
	"math/rand"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
	"calsys/internal/core/periodic"
)

// approxTicks is a rough unit length in seconds per granularity, used only to
// scale random test windows so that every pair sees both multi-element and
// sub-element windows.
var approxTicks = map[chronology.Granularity]int64{
	chronology.Second:  1,
	chronology.Minute:  60,
	chronology.Hour:    3600,
	chronology.Day:     86400,
	chronology.Week:    7 * 86400,
	chronology.Month:   2629746,
	chronology.Year:    31556952,
	chronology.Decade:  315569520,
	chronology.Century: 3155695200,
}

var testEpochs = []chronology.Civil{
	chronology.DefaultEpoch,
	{Year: 1987, Month: 3, Day: 15}, // mid-month, mid-week epoch
	{Year: 2000, Month: 2, Day: 29}, // leap-day epoch
}

// validPairs enumerates every (of, in) basic pair that Generate accepts.
func validPairs() [][2]chronology.Granularity {
	var out [][2]chronology.Granularity
	for _, of := range chronology.Granularities() {
		for _, in := range chronology.Granularities() {
			if !of.Finer(in) {
				out = append(out, [2]chronology.Granularity{of, in})
			}
		}
	}
	return out
}

// randWindow picks a random tick window in `in` ticks scaled so that it spans
// roughly 0–4 units of `of`, centered anywhere within ±10 units of the epoch.
func randWindow(rng *rand.Rand, of, in chronology.Granularity) interval.Interval {
	ratio := approxTicks[of] / approxTicks[in]
	if ratio < 1 {
		ratio = 1
	}
	lo := rng.Int63n(20*ratio+1) - 10*ratio
	hi := lo + rng.Int63n(4*ratio+2)
	return interval.Interval{Lo: chronology.TickFromOffset(lo), Hi: chronology.TickFromOffset(hi)}
}

func sameIntervals(t *testing.T, got, want []interval.Interval, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d intervals, want %d\ngot:  %v\nwant: %v", ctx, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: interval %d: got %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

// TestForBasicPairMatchesGenerateFull is the central property test of the
// package: for every valid basic granularity pair, under several epochs, the
// pattern's windowed expansion must equal the materialized GenerateFull list
// exactly, over randomized windows on both sides of the epoch.
func TestForBasicPairMatchesGenerateFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, epoch := range testEpochs {
		ch := chronology.MustNew(epoch)
		for _, pair := range validPairs() {
			of, in := pair[0], pair[1]
			pat, err := periodic.ForBasicPair(ch, of, in)
			if err != nil {
				t.Fatalf("epoch %v: ForBasicPair(%v,%v): %v", epoch, of, in, err)
			}
			for trial := 0; trial < 40; trial++ {
				win := randWindow(rng, of, in)
				want, err := calendar.GenerateFull(ch, of, in, win.Lo, win.Hi)
				if err != nil {
					t.Fatalf("GenerateFull(%v,%v,%v): %v", of, in, win, err)
				}
				got := pat.Expand(win)
				sameIntervals(t, got, want.Intervals(),
					of.String()+" in "+in.String()+" epoch "+epoch.String())
			}
		}
	}
}

// TestCardSelectMatchExpansion checks the O(1) cardinality and selection
// arithmetic against the materialized list, including negative (from-the-end)
// indices and the no-zero convention that index 0 selects nothing.
func TestCardSelectMatchExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ch := chronology.MustNew(chronology.DefaultEpoch)
	for _, pair := range validPairs() {
		of, in := pair[0], pair[1]
		pat, err := periodic.ForBasicPair(ch, of, in)
		if err != nil {
			t.Fatalf("ForBasicPair(%v,%v): %v", of, in, err)
		}
		for trial := 0; trial < 30; trial++ {
			win := randWindow(rng, of, in)
			ivs := pat.Expand(win)
			if got := pat.Card(win); got != int64(len(ivs)) {
				t.Fatalf("%v in %v win %v: Card = %d, expansion has %d", of, in, win, got, len(ivs))
			}
			n := len(ivs)
			for k := -n - 1; k <= n+1; k++ {
				got, ok := pat.Select(win, k)
				switch {
				case k == 0 || k > n || -k > n:
					if ok {
						t.Fatalf("%v in %v win %v: Select(%d) = %v, want none (n=%d)", of, in, win, k, got, n)
					}
				case k > 0:
					if !ok || got != ivs[k-1] {
						t.Fatalf("%v in %v win %v: Select(%d) = %v,%v, want %v", of, in, win, k, got, ok, ivs[k-1])
					}
				default:
					if !ok || got != ivs[n+k] {
						t.Fatalf("%v in %v win %v: Select(%d) = %v,%v, want %v", of, in, win, k, got, ok, ivs[n+k])
					}
				}
			}
			if n > 0 {
				last, ok := pat.SelectLast(win)
				if !ok || last != ivs[n-1] {
					t.Fatalf("%v in %v win %v: SelectLast = %v,%v, want %v", of, in, win, last, ok, ivs[n-1])
				}
			}
		}
	}
}

// TestDetectRoundTrip materializes basic calendars, detects their pattern, and
// checks that windowed re-expansion reproduces exactly the slice of the
// original list overlapping any sub-window.
func TestDetectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ch := chronology.MustNew(chronology.DefaultEpoch)
	pairs := [][2]chronology.Granularity{
		{chronology.Day, chronology.Day},
		{chronology.Week, chronology.Day},
		{chronology.Hour, chronology.Minute},
		{chronology.Month, chronology.Day},
		{chronology.Year, chronology.Month},
	}
	for _, pair := range pairs {
		of, in := pair[0], pair[1]
		base, err := calendar.GenerateFull(ch, of, in,
			chronology.TickFromOffset(-400), chronology.TickFromOffset(3000))
		if err != nil {
			t.Fatal(err)
		}
		ivs := base.Intervals()
		pat, qmin, qmax, ok := periodic.Detect(ivs)
		// Note MONTHS in DAYS is detected too: over a window inside one
		// century the 4-year leap cycle is a true local period, and the
		// [qmin, qmax] clamp keeps re-expansion honest at the edges.
		if !ok {
			t.Fatalf("Detect(%v in %v): not detected (%d intervals)", of, in, len(ivs))
		}
		if got := pat.ExpandBetween(interval.Interval{Lo: ivs[0].Lo, Hi: ivs[len(ivs)-1].Hi}, qmin, qmax); len(got) != len(ivs) {
			t.Fatalf("Detect(%v in %v): full re-expansion has %d intervals, want %d", of, in, len(got), len(ivs))
		}
		for trial := 0; trial < 50; trial++ {
			lo := rng.Int63n(3600) - 500
			hi := lo + rng.Int63n(800)
			win := interval.Interval{Lo: chronology.TickFromOffset(lo), Hi: chronology.TickFromOffset(hi)}
			got := pat.ExpandBetween(win, qmin, qmax)
			var want []interval.Interval
			for _, iv := range ivs {
				if iv.Hi >= win.Lo && iv.Lo <= win.Hi {
					want = append(want, iv)
				}
			}
			sameIntervals(t, got, want, of.String()+" in "+in.String())
		}
	}
}

// TestDetectRefusesCenturyBreak checks honest fallback: months in days across
// the non-leap year 2100 have no local period, so detection must refuse.
func TestDetectRefusesCenturyBreak(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	ts := ch.DayTick(chronology.Civil{Year: 2096, Month: 1, Day: 1})
	te := ch.DayTick(chronology.Civil{Year: 2104, Month: 1, Day: 1})
	cal, err := calendar.GenerateFull(ch, chronology.Month, chronology.Day, ts, te)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := periodic.Detect(cal.Intervals()); ok {
		t.Fatal("Detect accepted months-in-days across the 2100 leap break")
	}
}

// TestDetectRejectsNoise checks that near-periodic lists are not mistaken for
// periodic ones.
func TestDetectRejectsNoise(t *testing.T) {
	// Periodic except for one perturbed width in the middle.
	var ivs []interval.Interval
	for i := int64(0); i < 60; i++ {
		lo := i * 7
		hi := lo + 6
		if i == 31 {
			hi = lo + 5
		}
		ivs = append(ivs, interval.Interval{
			Lo: chronology.TickFromOffset(lo), Hi: chronology.TickFromOffset(hi)})
	}
	if _, _, _, ok := periodic.Detect(ivs); ok {
		t.Fatal("Detect accepted a perturbed list")
	}
	// Too short.
	if _, _, _, ok := periodic.Detect(ivs[:8]); ok {
		t.Fatal("Detect accepted a too-short list")
	}
	// Unsorted.
	bad := []interval.Interval{}
	for i := int64(20); i > 0; i-- {
		bad = append(bad, interval.Interval{
			Lo: chronology.TickFromOffset(i * 7), Hi: chronology.TickFromOffset(i*7 + 6)})
	}
	if _, _, _, ok := periodic.Detect(bad); ok {
		t.Fatal("Detect accepted an unsorted list")
	}
}

// mustPattern builds a pattern or fails the test.
func mustPattern(t *testing.T, period, phase int64, spans []periodic.Span) *periodic.Pattern {
	t.Helper()
	p, err := periodic.New(period, phase, spans)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestUnionMatchesCalendarUnion checks pattern-level union against the
// materialized calendar Union over shared expansion windows.
func TestUnionMatchesCalendarUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []struct{ p, q *periodic.Pattern }{
		// Weekly patterns, different phases.
		{mustPattern(t, 7, 0, []periodic.Span{{Lo: 0, Hi: 0}}),
			mustPattern(t, 7, 3, []periodic.Span{{Lo: 0, Hi: 1}})},
		// Different periods: every 3 days vs every 5 days.
		{mustPattern(t, 3, 1, []periodic.Span{{Lo: 0, Hi: 0}}),
			mustPattern(t, 5, 0, []periodic.Span{{Lo: 0, Hi: 0}})},
		// Multi-span cycles.
		{mustPattern(t, 10, 2, []periodic.Span{{Lo: 0, Hi: 1}, {Lo: 4, Hi: 5}}),
			mustPattern(t, 15, -4, []periodic.Span{{Lo: 0, Hi: 2}, {Lo: 7, Hi: 8}})},
		// Identical patterns: union keeps duplicates once.
		{mustPattern(t, 6, 0, []periodic.Span{{Lo: 1, Hi: 2}}),
			mustPattern(t, 6, 0, []periodic.Span{{Lo: 1, Hi: 2}})},
	}
	for i, tc := range cases {
		u, ok := tc.p.Union(tc.q)
		if !ok {
			t.Fatalf("case %d: Union not ok", i)
		}
		for trial := 0; trial < 40; trial++ {
			lo := rng.Int63n(200) - 100
			win := interval.Interval{
				Lo: chronology.TickFromOffset(lo),
				Hi: chronology.TickFromOffset(lo + rng.Int63n(120)),
			}
			a, err := calendar.FromIntervals(chronology.Day, tc.p.Expand(win))
			if err != nil {
				t.Fatal(err)
			}
			b, err := calendar.FromIntervals(chronology.Day, tc.q.Expand(win))
			if err != nil {
				t.Fatal(err)
			}
			want, err := calendar.Union(a, b)
			if err != nil {
				t.Fatal(err)
			}
			// The union pattern may include elements whose window overlap
			// comes only from the partner: compare on the intersection of
			// both operand element lists' index coverage — i.e. only inside
			// the window, which both expansions respected.
			got := u.Expand(win)
			sameIntervals(t, got, want.Intervals(), "case "+string(rune('a'+i)))
		}
	}
}

// TestUnionRefusesNonPattern checks that Union declines when the merged list
// cannot satisfy the Pattern invariant (upper bounds must be monotone): a
// point every 3 days against a 3-wide span every 5 days interleaves into a
// list where a wide element is followed by a point inside it.
func TestUnionRefusesNonPattern(t *testing.T) {
	p := mustPattern(t, 3, 1, []periodic.Span{{Lo: 0, Hi: 0}})
	q := mustPattern(t, 5, 0, []periodic.Span{{Lo: 0, Hi: 2}})
	if _, ok := p.Union(q); ok {
		t.Fatal("Union accepted a merge with non-monotone upper bounds")
	}
}

// TestDiffMatchesCalendarDiff checks pattern-level difference against the
// materialized calendar Diff. The comparison window must be interior to the
// operands' shared expansion window (pattern Diff subtracts q's full periodic
// coverage; materialized Diff only what was expanded), so both are expanded
// with a margin of one full lcm cycle.
func TestDiffMatchesCalendarDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ p, q *periodic.Pattern }{
		// Every day minus weekends (two spans per week).
		{mustPattern(t, 1, 0, []periodic.Span{{Lo: 0, Hi: 0}}),
			mustPattern(t, 7, 5, []periodic.Span{{Lo: 0, Hi: 1}})},
		// Weeks minus one day a week: splits each element.
		{mustPattern(t, 7, 0, []periodic.Span{{Lo: 0, Hi: 6}}),
			mustPattern(t, 7, 3, []periodic.Span{{Lo: 0, Hi: 0}})},
		// Different periods.
		{mustPattern(t, 4, 0, []periodic.Span{{Lo: 0, Hi: 2}}),
			mustPattern(t, 6, 1, []periodic.Span{{Lo: 0, Hi: 1}})},
	}
	for i, tc := range cases {
		d, ok := tc.p.Diff(tc.q)
		if !ok {
			t.Fatalf("case %d: Diff not ok", i)
		}
		margin := d.Period()
		for trial := 0; trial < 40; trial++ {
			lo := rng.Int63n(200) - 100
			ln := rng.Int63n(100)
			win := interval.Interval{
				Lo: chronology.TickFromOffset(lo),
				Hi: chronology.TickFromOffset(lo + ln),
			}
			wide := interval.Interval{
				Lo: chronology.TickFromOffset(lo - margin),
				Hi: chronology.TickFromOffset(lo + ln + margin),
			}
			a, err := calendar.FromIntervals(chronology.Day, tc.p.Expand(win))
			if err != nil {
				t.Fatal(err)
			}
			b, err := calendar.FromIntervals(chronology.Day, tc.q.Expand(wide))
			if err != nil {
				t.Fatal(err)
			}
			want, err := calendar.Diff(a, b)
			if err != nil {
				t.Fatal(err)
			}
			// Materialized a holds the full extent of edge elements, so its
			// diff can include pieces entirely outside win that the windowed
			// pattern expansion rightly omits; compare the win-overlapping
			// pieces of both.
			overlapping := func(ivs []interval.Interval) []interval.Interval {
				var out []interval.Interval
				for _, iv := range ivs {
					if iv.Hi >= win.Lo && iv.Lo <= win.Hi {
						out = append(out, iv)
					}
				}
				return out
			}
			sameIntervals(t, overlapping(d.Expand(win)), overlapping(want.Intervals()), "diff case")
		}
	}
}

// TestNewValidation exercises Pattern invariant enforcement.
func TestNewValidation(t *testing.T) {
	bad := []struct {
		period, phase int64
		spans         []periodic.Span
	}{
		{0, 0, []periodic.Span{{Lo: 0, Hi: 0}}},                 // period < 1
		{5, 0, nil},                                             // no spans
		{5, 0, []periodic.Span{{Lo: -1, Hi: 0}}},                // Lo < 0
		{5, 0, []periodic.Span{{Lo: 5, Hi: 6}}},                 // Lo >= period
		{5, 0, []periodic.Span{{Lo: 2, Hi: 1}}},                 // reversed
		{5, 0, []periodic.Span{{Lo: 2, Hi: 3}, {Lo: 1, Hi: 4}}}, // Lo not sorted
		{5, 0, []periodic.Span{{Lo: 1, Hi: 4}, {Lo: 2, Hi: 3}}}, // Hi not sorted
		{5, 0, []periodic.Span{{Lo: 0, Hi: 1}, {Lo: 4, Hi: 7}}}, // Hi > first.Hi+period
	}
	for i, tc := range bad {
		if _, err := periodic.New(tc.period, tc.phase, tc.spans); err == nil {
			t.Fatalf("case %d: New(%d,%d,%v) accepted invalid pattern", i, tc.period, tc.phase, tc.spans)
		}
	}
	if _, err := periodic.New(5, -3, []periodic.Span{{Lo: 0, Hi: 1}, {Lo: 3, Hi: 5}}); err != nil {
		t.Fatalf("valid pattern rejected: %v", err)
	}
}

// TestDisjoint checks the disjointness classifier used by sweep-path gating.
func TestDisjoint(t *testing.T) {
	if !mustPattern(t, 7, 0, []periodic.Span{{Lo: 0, Hi: 2}, {Lo: 4, Hi: 5}}).Disjoint() {
		t.Fatal("disjoint pattern classified overlapping")
	}
	if mustPattern(t, 7, 0, []periodic.Span{{Lo: 0, Hi: 3}, {Lo: 3, Hi: 5}}).Disjoint() {
		t.Fatal("overlapping spans classified disjoint")
	}
	// Cross-cycle overlap: last span reaches into the next cycle's first.
	if mustPattern(t, 7, 0, []periodic.Span{{Lo: 0, Hi: 1}, {Lo: 5, Hi: 8}}).Disjoint() {
		t.Fatal("cycle-straddling overlap classified disjoint")
	}
}

// TestNoZeroTicks checks that expansions never produce an interval bound at
// tick zero, the invariant the whole system rests on.
func TestNoZeroTicks(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	pat, err := periodic.ForBasicPair(ch, chronology.Day, chronology.Hour)
	if err != nil {
		t.Fatal(err)
	}
	win := interval.Interval{Lo: chronology.TickFromOffset(-100), Hi: chronology.TickFromOffset(100)}
	for _, iv := range pat.Expand(win) {
		if iv.Lo == 0 || iv.Hi == 0 {
			t.Fatalf("expansion produced tick zero: %v", iv)
		}
	}
}

// TestNextAfterMatchesExpansion checks the O(log spans) next-element query
// against the windowed expansion: NextAfter(t) must return exactly the first
// expanded element start strictly after t, for arbitrary patterns and query
// points on both sides of the phase.
func TestNextAfterMatchesExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pats := []*periodic.Pattern{
		mustPattern(t, 1, 0, []periodic.Span{{Lo: 0, Hi: 0}}),
		mustPattern(t, 7, 0, []periodic.Span{{Lo: 0, Hi: 6}}),
		mustPattern(t, 7, 3, []periodic.Span{{Lo: 0, Hi: 0}}),
		mustPattern(t, 10, 2, []periodic.Span{{Lo: 0, Hi: 1}, {Lo: 4, Hi: 5}}),
		mustPattern(t, 15, -4, []periodic.Span{{Lo: 0, Hi: 2}, {Lo: 7, Hi: 8}, {Lo: 12, Hi: 16}}),
		mustPattern(t, 31, 11, []periodic.Span{{Lo: 0, Hi: 0}, {Lo: 1, Hi: 4}, {Lo: 9, Hi: 9}, {Lo: 30, Hi: 31}}),
	}
	for pi, pat := range pats {
		period := pat.Period()
		for trial := 0; trial < 300; trial++ {
			x := rng.Int63n(40*period+1) - 20*period
			tk := chronology.TickFromOffset(x)
			_, start := pat.NextAfter(tk)
			got := chronology.OffsetFromTick(start)
			if got <= x {
				t.Fatalf("pattern %d: NextAfter(%d) = %d, not strictly after", pi, x, got)
			}
			win := interval.Interval{
				Lo: chronology.TickFromOffset(x - 2*period),
				Hi: chronology.TickFromOffset(x + 3*period),
			}
			var want chronology.Tick
			found := false
			for _, iv := range pat.Expand(win) {
				if chronology.OffsetFromTick(iv.Lo) > x {
					want, found = iv.Lo, true
					break
				}
			}
			if !found {
				t.Fatalf("pattern %d: no expanded start after %d in %v", pi, x, win)
			}
			if start != want {
				t.Fatalf("pattern %d: NextAfter(%d) = tick %d, expansion says %d", pi, x, start, want)
			}
		}
	}
}

// TestNextAfterBetweenClamps checks the [qmin, qmax] restriction used with
// detected patterns: queries before the observed range clamp up to element
// qmin, queries at or past element qmax's start report no next element.
func TestNextAfterBetweenClamps(t *testing.T) {
	pat := mustPattern(t, 10, 2, []periodic.Span{{Lo: 0, Hi: 1}, {Lo: 4, Hi: 5}})
	const qmin, qmax = -3, 5
	period := pat.Period()
	wide := interval.Interval{
		Lo: chronology.TickFromOffset((qmin - 2) * period),
		Hi: chronology.TickFromOffset((qmax + 2) * period),
	}
	elems := pat.ExpandBetween(wide, qmin, qmax)
	if len(elems) != int(qmax-qmin+1) {
		t.Fatalf("setup: ExpandBetween yielded %d elements, want %d", len(elems), qmax-qmin+1)
	}
	first, last := elems[0].Lo, elems[len(elems)-1].Lo
	for x := chronology.OffsetFromTick(first) - 2*period; x <= chronology.OffsetFromTick(last)+period; x++ {
		tk := chronology.TickFromOffset(x)
		start, ok := pat.NextAfterBetween(tk, qmin, qmax)
		var want chronology.Tick
		wantOK := false
		for _, iv := range elems {
			if chronology.OffsetFromTick(iv.Lo) > x {
				want, wantOK = iv.Lo, true
				break
			}
		}
		// Below the range the answer clamps to element qmin even though
		// NextAfter alone would name an earlier (unobserved) element.
		if x < chronology.OffsetFromTick(first) {
			want, wantOK = first, true
		}
		if ok != wantOK || (ok && start != want) {
			t.Fatalf("NextAfterBetween(%d) = %d,%v, want %d,%v", x, start, ok, want, wantOK)
		}
	}
}

// TestNextAfterBasicPairs spot-checks the infinite patterns the scheduler
// fast path relies on: the next week/month/year start after random instants
// must match a GenerateFull scan.
func TestNextAfterBasicPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ch := chronology.MustNew(chronology.DefaultEpoch)
	pairs := [][2]chronology.Granularity{
		{chronology.Week, chronology.Day},
		{chronology.Month, chronology.Day},
		{chronology.Year, chronology.Month},
	}
	for _, pair := range pairs {
		of, in := pair[0], pair[1]
		pat, err := periodic.ForBasicPair(ch, of, in)
		if err != nil {
			t.Fatal(err)
		}
		ratio := approxTicks[of] / approxTicks[in]
		full, err := calendar.GenerateFull(ch, of, in,
			chronology.TickFromOffset(-25*ratio), chronology.TickFromOffset(25*ratio))
		if err != nil {
			t.Fatal(err)
		}
		ivs := full.Intervals()
		for trial := 0; trial < 100; trial++ {
			x := rng.Int63n(40*ratio+1) - 20*ratio
			_, start := pat.NextAfter(chronology.TickFromOffset(x))
			var want chronology.Tick
			found := false
			for _, iv := range ivs {
				if chronology.OffsetFromTick(iv.Lo) > x {
					want, found = iv.Lo, true
					break
				}
			}
			if !found {
				t.Fatalf("%v in %v: no generated start after %d", of, in, x)
			}
			if start != want {
				t.Fatalf("%v in %v: NextAfter(%d) = tick %d, GenerateFull says %d", of, in, x, start, want)
			}
		}
	}
}
