// Package periodic implements compact periodic representations of calendars.
//
// Every basic calendar of the paper (SECONDS … CENTURY, §4.1) — and many
// derived ones, such as weekly or monthly schedules — is periodic: its
// interval list is a finite set of offset spans repeated with a fixed period.
// Following Bettini & Mascetti ("Supporting Temporal Reasoning by Mapping
// Calendar Expressions to Minimal Periodic Sets"), such a calendar is stored
// as a Pattern — {period, phase, offset spans} — of constant size, from which
// any window expands in O(output) time and cardinality/selection queries
// answer in O(log spans) integer arithmetic, with no materialized list at
// all.
//
// All Pattern arithmetic runs in offset space (a plain zero-based signed
// count of granularity units); conversion to and from the paper's no-zero
// ticks happens only at the package boundary, via chronology.TickFromOffset
// and chronology.OffsetFromTick.
package periodic

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// A Span is one interval of a pattern's cycle, in offsets relative to the
// cycle start: element i of cycle k covers absolute offsets
// [phase + k·period + Lo, phase + k·period + Hi].
type Span struct {
	Lo, Hi int64
}

// A Pattern is an infinite, bi-directionally periodic interval list: the
// spans repeated at every integer multiple of the period around the phase.
// Element q (any integer) of the list is span (q mod s) of cycle (q div s),
// where s is the span count. Patterns are immutable and safe to share.
//
// Invariants, established by New:
//
//	period ≥ 1, at least one span
//	0 ≤ span.Lo < period and span.Lo ≤ span.Hi
//	spans sorted: Lo and Hi both non-decreasing
//	last.Hi ≤ first.Hi + period (so Hi stays monotone across cycles)
//
// A span's Hi may reach past the cycle end (Hi ≥ period): the months of the
// Gregorian cycle expressed in weeks overlap at shared boundary weeks, so
// consecutive elements — and cycles — are not necessarily disjoint, exactly
// as in the materialized lists they replace.
type Pattern struct {
	period int64
	phase  int64
	spans  []Span
	// disjoint caches the pairwise-disjointness of the elements, computed
	// once at construction so expansion never rescans the cycle.
	disjoint bool
}

// New validates and builds a pattern. The span slice is copied.
func New(period, phase int64, spans []Span) (*Pattern, error) {
	if period < 1 {
		return nil, fmt.Errorf("periodic: period %d must be positive", period)
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("periodic: pattern needs at least one span")
	}
	for i, s := range spans {
		if s.Lo < 0 || s.Lo >= period {
			return nil, fmt.Errorf("periodic: span %d lower offset %d outside cycle [0,%d)", i, s.Lo, period)
		}
		if s.Hi < s.Lo {
			return nil, fmt.Errorf("periodic: span %d reversed: (%d,%d)", i, s.Lo, s.Hi)
		}
		if i > 0 && (spans[i-1].Lo > s.Lo || spans[i-1].Hi > s.Hi) {
			return nil, fmt.Errorf("periodic: spans out of order at %d: (%d,%d) after (%d,%d)",
				i, s.Lo, s.Hi, spans[i-1].Lo, spans[i-1].Hi)
		}
	}
	if last := spans[len(spans)-1]; last.Hi > spans[0].Hi+period {
		return nil, fmt.Errorf("periodic: span upper bounds not monotone across cycles: last (%d,%d) vs first (%d,%d)+%d",
			last.Lo, last.Hi, spans[0].Lo, spans[0].Hi, period)
	}
	cp := make([]Span, len(spans))
	copy(cp, spans)
	p := &Pattern{period: period, phase: phase, spans: cp}
	p.disjoint = p.computeDisjoint()
	return p, nil
}

// Period returns the cycle length in offset units.
func (p *Pattern) Period() int64 { return p.period }

// Phase returns the absolute offset of the start of cycle 0.
func (p *Pattern) Phase() int64 { return p.phase }

// NumSpans returns the number of elements per cycle.
func (p *Pattern) NumSpans() int { return len(p.spans) }

// Spans returns the cycle's spans. The slice is shared; do not modify it.
func (p *Pattern) Spans() []Span { return p.spans }

// String renders the pattern in full; ParsePattern inverts it, so canonical
// forms can be asserted as literals in table-driven tests and used as
// equivalence-class keys.
func (p *Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "period=%d phase=%d spans=%d{", p.period, p.phase, len(p.spans))
	for i, s := range p.spans {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "(%d,%d)", s.Lo, s.Hi)
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports structural equality.
func (p *Pattern) Equal(q *Pattern) bool {
	if p == nil || q == nil {
		return p == q
	}
	if p.period != q.period || p.phase != q.phase || len(p.spans) != len(q.spans) {
		return false
	}
	for i := range p.spans {
		if p.spans[i] != q.spans[i] {
			return false
		}
	}
	return true
}

// element returns the absolute offset span of element q.
func (p *Pattern) element(q int64) (lo, hi int64) {
	s := int64(len(p.spans))
	k, i := floorDiv(q, s), floorMod(q, s)
	base := p.phase + k*p.period
	return base + p.spans[i].Lo, base + p.spans[i].Hi
}

// Interval returns element q as a no-zero tick interval.
func (p *Pattern) Interval(q int64) interval.Interval {
	lo, hi := p.element(q)
	return interval.Interval{Lo: chronology.TickFromOffset(lo), Hi: chronology.TickFromOffset(hi)}
}

// firstWithHiGE returns the smallest element index whose upper offset is ≥ x.
// Upper bounds are non-decreasing in the element index (a New invariant), so
// the answer is a clean lower bound.
func (p *Pattern) firstWithHiGE(x int64) int64 {
	s := int64(len(p.spans))
	// Cycle k contains a qualifying span iff its largest Hi ≥ x.
	k := ceilDiv(x-p.phase-p.spans[s-1].Hi, p.period)
	rel := x - p.phase - k*p.period
	i := sort.Search(len(p.spans), func(i int) bool { return p.spans[i].Hi >= rel })
	if i == len(p.spans) {
		// Guard against boundary rounding: fall to the next cycle's first span.
		k, i = k+1, 0
	}
	return k*s + int64(i)
}

// lastWithLoLE returns the largest element index whose lower offset is ≤ x.
func (p *Pattern) lastWithLoLE(x int64) int64 {
	s := int64(len(p.spans))
	// Cycle k contains a qualifying span iff its smallest Lo ≤ x.
	k := floorDiv(x-p.phase-p.spans[0].Lo, p.period)
	rel := x - p.phase - k*p.period
	i := sort.Search(len(p.spans), func(i int) bool { return p.spans[i].Lo > rel })
	if i == 0 {
		// Guard against boundary rounding: fall to the previous cycle's last.
		return (k-1)*s + s - 1
	}
	return k*s + int64(i-1)
}

// IndexRange returns the inclusive range of element indices overlapping the
// tick window, in O(log spans) arithmetic. ok is false when no element
// overlaps. Because Lo and Hi are both monotone in the element index, the
// range [first, last] is exactly the elements intersecting the window — the
// same contiguous run a generated materialization of the window would hold.
func (p *Pattern) IndexRange(win interval.Interval) (first, last int64, ok bool) {
	lo := chronology.OffsetFromTick(win.Lo)
	hi := chronology.OffsetFromTick(win.Hi)
	first = p.firstWithHiGE(lo)
	last = p.lastWithLoLE(hi)
	return first, last, first <= last
}

// Card returns the number of elements overlapping the tick window in
// O(log spans) arithmetic — the cardinality of the calendar a windowed
// expansion would materialize, without materializing it.
func (p *Pattern) Card(win interval.Interval) int64 {
	first, last, ok := p.IndexRange(win)
	if !ok {
		return 0
	}
	return last - first + 1
}

// Select returns element k (1-based, per the paper's selection predicate) of
// the window's expansion in O(log spans) arithmetic: negative k counts from
// the end (-1 is the last element) and honors the no-zero convention — k = 0
// selects nothing. ok is false when k is out of range.
func (p *Pattern) Select(win interval.Interval, k int) (interval.Interval, bool) {
	first, last, ok := p.IndexRange(win)
	if !ok {
		return interval.Interval{}, false
	}
	n := last - first + 1
	var q int64
	switch {
	case k > 0:
		if int64(k) > n {
			return interval.Interval{}, false
		}
		q = first + int64(k) - 1
	case k < 0:
		if int64(-k) > n {
			return interval.Interval{}, false
		}
		q = last + int64(k) + 1
	default:
		return interval.Interval{}, false
	}
	return p.Interval(q), true
}

// SelectLast returns the window's final element (the paper's [n]) in
// O(log spans) arithmetic.
func (p *Pattern) SelectLast(win interval.Interval) (interval.Interval, bool) {
	return p.Select(win, -1)
}

// NextAfter returns the index and start tick of the first element whose
// start lies strictly after tick t, in O(log spans) arithmetic. This is the
// next-instant kernel: "when does this calendar fire next?" answered without
// materializing any window. The tick honors the no-zero convention.
func (p *Pattern) NextAfter(t chronology.Tick) (q int64, start chronology.Tick) {
	x := chronology.OffsetFromTick(t)
	// Element starts are non-decreasing in the index (a New invariant), and
	// strictly increase across ties, so the first start > x is the element
	// right after the last with Lo ≤ x.
	q = p.lastWithLoLE(x) + 1
	lo, _ := p.element(q)
	return q, chronology.TickFromOffset(lo)
}

// NextAfterBetween is NextAfter restricted to element indices within
// [qmin, qmax] — the validity range of a detected pattern, mirroring
// ExpandBetween. ok is false when the next element lies past qmax; an index
// below qmin clamps up to qmin (the earliest observed element).
func (p *Pattern) NextAfterBetween(t chronology.Tick, qmin, qmax int64) (start chronology.Tick, ok bool) {
	q, start := p.NextAfter(t)
	if q < qmin {
		q = qmin
		lo, _ := p.element(q)
		start = chronology.TickFromOffset(lo)
	}
	if q > qmax {
		return 0, false
	}
	return start, true
}

// Expand materializes the elements overlapping the tick window, in order, in
// O(output) time — the pattern-backed equivalent of generating the window.
func (p *Pattern) Expand(win interval.Interval) []interval.Interval {
	return p.ExpandBetween(win, math.MinInt64, math.MaxInt64)
}

// ExpandBetween is Expand restricted to element indices within [qmin, qmax]:
// detected patterns are only valid over the element range actually observed,
// so their windowed expansions clamp to it. Pass the full int64 range for
// truly infinite patterns.
func (p *Pattern) ExpandBetween(win interval.Interval, qmin, qmax int64) []interval.Interval {
	first, last, ok := p.IndexRange(win)
	if !ok {
		return nil
	}
	if first < qmin {
		first = qmin
	}
	if last > qmax {
		last = qmax
	}
	if first > last {
		return nil
	}
	out := make([]interval.Interval, last-first+1)
	if len(p.spans) == 1 {
		// Single-span cycles (every fixed-ratio granularity pair) reduce to a
		// stride: no span indexing, no cycle wrap test.
		lo0, hi0 := p.spans[0].Lo, p.spans[0].Hi
		base := p.phase + first*p.period
		for j := range out {
			out[j] = interval.Interval{
				Lo: chronology.TickFromOffset(base + lo0),
				Hi: chronology.TickFromOffset(base + hi0),
			}
			base += p.period
		}
		return out
	}
	s := int64(len(p.spans))
	k, i := floorDiv(first, s), int(floorMod(first, s))
	base := p.phase + k*p.period
	for j := range out {
		out[j] = interval.Interval{
			Lo: chronology.TickFromOffset(base + p.spans[i].Lo),
			Hi: chronology.TickFromOffset(base + p.spans[i].Hi),
		}
		if i++; i == len(p.spans) {
			i, base = 0, base+p.period
		}
	}
	return out
}

// Disjoint reports whether the pattern's elements are pairwise disjoint —
// within the cycle and across the cycle boundary. Expansions of a disjoint
// pattern are sorted disjoint interval lists, the shape the foreach sweep
// kernels require. The answer is cached at construction.
func (p *Pattern) Disjoint() bool { return p.disjoint }

func (p *Pattern) computeDisjoint() bool {
	for i := 1; i < len(p.spans); i++ {
		if p.spans[i].Lo <= p.spans[i-1].Hi {
			return false
		}
	}
	return p.spans[len(p.spans)-1].Hi < p.spans[0].Lo+p.period
}

// SizeBytes estimates the pattern's resident bytes: the constant-size header
// plus 16 bytes per cycle span. This is the matcache entry cost of a
// pattern-backed calendar — for a basic calendar, a few dozen bytes
// regardless of how many centuries of windows it serves.
func (p *Pattern) SizeBytes() int64 {
	const header = 48
	return header + 16*int64(len(p.spans))
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// floorMod is the non-negative remainder matching floorDiv.
func floorMod(a, b int64) int64 {
	return a - floorDiv(a, b)*b
}

// ceilDiv is integer division rounding toward positive infinity.
func ceilDiv(a, b int64) int64 {
	return -floorDiv(-a, b)
}
