package periodic

import (
	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// Detection thresholds: lists shorter than detectMinLen aren't worth
// compressing, a detected cycle must repeat at least twice to be trusted,
// and cycles longer than detectMaxSpans save too little to bother.
const (
	detectMinLen   = 16
	detectMaxSpans = 4096
)

// Detect recognizes a materialized interval list as the windowed expansion
// of a pattern. The list must be sorted with non-decreasing bounds (the
// shape of every generated calendar). On success it returns the pattern and
// the inclusive element-index range [qmin, qmax] the list occupies, so that
// ExpandBetween(win, qmin, qmax) over any sub-window reproduces exactly the
// slice of the original list overlapping that window.
//
// Detection runs in O(n) via the KMP failure function over the sequence of
// (gap, width) pairs: a list is a truncated periodic expansion with cycle
// length c exactly when that sequence equals itself shifted by c. Lists that
// are too short, aperiodic, observed for less than two full cycles, or whose
// cycle exceeds detectMaxSpans fall back to staying materialized (ok =
// false).
func Detect(ivs []interval.Interval) (p *Pattern, qmin, qmax int64, ok bool) {
	n := len(ivs)
	if n < detectMinLen {
		return nil, 0, 0, false
	}
	// Offsets once, up front; also verify sortedness (Lo and Hi).
	lo := make([]int64, n)
	hi := make([]int64, n)
	for i, iv := range ivs {
		lo[i] = chronology.OffsetFromTick(iv.Lo)
		hi[i] = chronology.OffsetFromTick(iv.Hi)
		if i > 0 && (lo[i] < lo[i-1] || hi[i] < hi[i-1]) {
			return nil, 0, 0, false
		}
	}
	// The structural sequence: s[i] = (lo[i+1]-lo[i], hi[i]-lo[i]) for
	// i < n-1. Its smallest period c = (n-1) - fail(n-1).
	type pair struct{ gap, width int64 }
	seq := make([]pair, n-1)
	for i := 0; i < n-1; i++ {
		seq[i] = pair{gap: lo[i+1] - lo[i], width: hi[i] - lo[i]}
	}
	fail := make([]int, len(seq))
	for i := 1; i < len(seq); i++ {
		j := fail[i-1]
		for j > 0 && seq[i] != seq[j] {
			j = fail[j-1]
		}
		if seq[i] == seq[j] {
			j++
		}
		fail[i] = j
	}
	c := len(seq) - fail[len(seq)-1]
	if c > detectMaxSpans || n < 2*c {
		return nil, 0, 0, false
	}
	// The final element's width is not covered by seq; it must match its
	// cycle position.
	if hi[n-1]-lo[n-1] != hi[(n-1)%c]-lo[(n-1)%c] {
		return nil, 0, 0, false
	}
	period := lo[c] - lo[0]
	if period < 1 {
		return nil, 0, 0, false
	}
	spans := make([]Span, c)
	for i := 0; i < c; i++ {
		spans[i] = Span{Lo: lo[i] - lo[0], Hi: hi[i] - lo[0]}
	}
	pat, err := New(period, lo[0], spans)
	if err != nil {
		return nil, 0, 0, false
	}
	return pat, 0, int64(n - 1), true
}
