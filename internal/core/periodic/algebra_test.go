package periodic_test

import (
	"math/rand"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
	"calsys/internal/core/periodic"
)

// randomPattern draws a valid pattern with small period and a few spans.
func randomPattern(rng *rand.Rand) *periodic.Pattern {
	for {
		period := int64(1 + rng.Intn(40))
		n := 1 + rng.Intn(4)
		spans := make([]periodic.Span, 0, n)
		lo := int64(0)
		for i := 0; i < n; i++ {
			if lo >= period {
				break
			}
			s := periodic.Span{Lo: lo, Hi: lo + int64(rng.Intn(5))}
			spans = append(spans, s)
			lo += 1 + int64(rng.Intn(6))
		}
		if len(spans) == 0 {
			continue
		}
		phase := int64(rng.Intn(200)) - 100
		if p, err := periodic.New(period, phase, spans); err == nil {
			return p
		}
	}
}

func TestParsePatternRoundTrip(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	pats := []*periodic.Pattern{
		mustPattern(t, 1, 0, []periodic.Span{{Lo: 0, Hi: 0}}),
		mustPattern(t, 7, -3, []periodic.Span{{Lo: 0, Hi: 0}, {Lo: 2, Hi: 4}, {Lo: 5, Hi: 7}}),
	}
	// Long cycles exercised what the old String elided: months expressed in
	// days carry 4800 spans per Gregorian cycle.
	for _, g := range []chronology.Granularity{chronology.Month, chronology.Year} {
		p, err := periodic.ForBasicPair(ch, g, chronology.Day)
		if err != nil {
			t.Fatalf("ForBasicPair(%v, day): %v", g, err)
		}
		pats = append(pats, p)
	}
	for _, p := range pats {
		got, err := periodic.ParsePattern(p.String())
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", p.String(), err)
		}
		if !got.Equal(p) {
			t.Fatalf("round trip changed pattern:\n in  %v\n out %v", p, got)
		}
	}
	for _, bad := range []string{
		"",
		"period=7 phase=0 spans=2{(0,1)}",      // count mismatch
		"period=7 phase=0 spans=1{(0,1)",       // unterminated
		"period=0 phase=0 spans=1{(0,0)}",      // invalid period
		"period=7 phase=x spans=1{(0,0)}",      // bad integer
		"period=7 phase=0 spans=1{(0,1)(2,3)}", // missing comma
	} {
		if _, err := periodic.ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q) unexpectedly succeeded", bad)
		}
	}
}

// unroll re-represents p with its cycle repeated k times (a non-minimal but
// equivalent form).
func unroll(t *testing.T, p *periodic.Pattern, k int) *periodic.Pattern {
	t.Helper()
	var spans []periodic.Span
	for r := 0; r < k; r++ {
		shift := int64(r) * p.Period()
		for _, s := range p.Spans() {
			spans = append(spans, periodic.Span{Lo: s.Lo + shift, Hi: s.Hi + shift})
		}
	}
	return mustPattern(t, p.Period()*int64(k), p.Phase(), spans)
}

// rotate re-anchors p at its r-th span (an equivalent form with shifted
// phase), skipping rotations that violate the pattern invariants.
func rotate(t *testing.T, p *periodic.Pattern, r int) (*periodic.Pattern, bool) {
	t.Helper()
	spans := p.Spans()
	rot := make([]periodic.Span, len(spans))
	for i := range spans {
		j, wrap := r+i, int64(0)
		if j >= len(spans) {
			j -= len(spans)
			wrap = p.Period()
		}
		rot[i] = periodic.Span{Lo: spans[j].Lo + wrap - spans[r].Lo, Hi: spans[j].Hi + wrap - spans[r].Lo}
	}
	q, err := periodic.New(p.Period(), p.Phase()+spans[r].Lo, rot)
	return q, err == nil
}

func TestCanonicalIdentifiesEquivalentForms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	win := interval.Interval{Lo: chronology.TickFromOffset(-300), Hi: chronology.TickFromOffset(300)}
	for trial := 0; trial < 300; trial++ {
		p := randomPattern(rng)
		canon := p.Canonical()
		// Canonicalization preserves the element list.
		sameIntervals(t, canon.Expand(win), p.Expand(win), "canonical expansion")
		// Every equivalent re-representation canonicalizes identically.
		variants := []*periodic.Pattern{
			unroll(t, p, 1+rng.Intn(3)),
			mustPattern(t, p.Period(), p.Phase()+p.Period()*int64(1+rng.Intn(4)), p.Spans()),
		}
		if r := rng.Intn(p.NumSpans()); r > 0 {
			if q, ok := rotate(t, p, r); ok {
				variants = append(variants, q)
			}
		}
		for _, v := range variants {
			if vc := v.Canonical(); !vc.Equal(canon) {
				t.Fatalf("equivalent forms canonicalize differently:\n p      %v\n v      %v\n canon  %v\n vcanon %v",
					p, v, canon, vc)
			}
		}
	}
}

func TestCanonicalMinimalForm(t *testing.T) {
	// A week pattern written as a fortnight must reduce back to the week.
	week := mustPattern(t, 7, 3, []periodic.Span{{Lo: 0, Hi: 0}, {Lo: 2, Hi: 4}})
	fortnight := unroll(t, week, 2)
	if got, want := fortnight.Canonical(), week.Canonical(); !got.Equal(want) {
		t.Fatalf("unrolled cycle did not minimize: got %v want %v", got, want)
	}
	if got := week.Canonical(); got.Period() != 7 || got.NumSpans() != 2 {
		t.Fatalf("canonical form not minimal: %v", got)
	}
	// The canonical phase is reduced into [0, period).
	if ph := week.Canonical().Phase(); ph < 0 || ph >= 7 {
		t.Fatalf("canonical phase %d outside [0, 7)", ph)
	}
}

// granWin builds a tick window of the given offset range.
func offWin(lo, hi int64) interval.Interval {
	return interval.Interval{Lo: chronology.TickFromOffset(lo), Hi: chronology.TickFromOffset(hi)}
}

// filterOverlapping keeps the intervals overlapping win, preserving order and
// duplicates.
func filterOverlapping(ivs []interval.Interval, win interval.Interval) []interval.Interval {
	var out []interval.Interval
	for _, iv := range ivs {
		if iv.Hi >= win.Lo && iv.Lo <= win.Hi {
			out = append(out, iv)
		}
	}
	return out
}

// expandSym expands a possibly-empty symbolic result.
func expandSym(p *periodic.Pattern, win interval.Interval) []interval.Interval {
	if p == nil {
		return nil
	}
	return p.Expand(win)
}

// setOpCase runs one symbolic set operation against its materialized oracle.
func setOpCase(t *testing.T, name string, p, q *periodic.Pattern,
	sym func(p, q *periodic.Pattern) (*periodic.Pattern, bool),
	mat func(a, b *calendar.Calendar) (*calendar.Calendar, error)) bool {
	t.Helper()
	r, ok := sym(p, q)
	if !ok {
		// Fallback is a legal answer (boundary-straddling operands, lists
		// with no pattern form); the caller asserts it stays the minority.
		return false
	}
	// The right operand's coverage must be complete around the window, so it
	// expands over a padded window.
	win := offWin(-200, 500)
	pad := q.Period() * 3
	if pad < 100 {
		pad = 100
	}
	qwin := offWin(-200-pad, 500+pad)
	a, err := calendar.FromIntervals(chronology.Day, p.Expand(win))
	if err != nil {
		t.Fatalf("%s: left operand: %v", name, err)
	}
	b, err := calendar.FromIntervals(chronology.Day, q.Expand(qwin))
	if err != nil {
		t.Fatalf("%s: right operand: %v", name, err)
	}
	oracle, err := mat(a, b)
	if err != nil {
		t.Fatalf("%s: materialized op: %v", name, err)
	}
	inner := offWin(-150, 450)
	want := filterOverlapping(oracle.Intervals(), inner)
	got := filterOverlapping(expandSym(r, inner), inner)
	sameIntervals(t, got, want, name)
	return true
}

func TestSetOpsMatchMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	done, tried := 0, 0
	for trial := 0; trial < 200; trial++ {
		p, q := randomPattern(rng), randomPattern(rng)
		tried += 3
		if setOpCase(t, "union", p, q, periodic.SetUnion, calendar.Union) {
			done++
		}
		if setOpCase(t, "diff", p, q, periodic.SetDiff, calendar.Diff) {
			done++
		}
		if setOpCase(t, "intersect", p, q, periodic.SetIntersect, calendar.Intersect) {
			done++
		}
	}
	if done*2 < tried {
		t.Fatalf("symbolic set ops fell back too often: %d of %d succeeded", done, tried)
	}
}

func TestSetOpsProveEmptiness(t *testing.T) {
	day := mustPattern(t, 1, 0, []periodic.Span{{Lo: 0, Hi: 0}})
	evens := mustPattern(t, 2, 0, []periodic.Span{{Lo: 0, Hi: 0}})
	odds := mustPattern(t, 2, 1, []periodic.Span{{Lo: 0, Hi: 0}})
	if r, ok := periodic.SetDiff(day, day); !ok || r != nil {
		t.Fatalf("DAYS - DAYS: got (%v, %v), want provably empty", r, ok)
	}
	if r, ok := periodic.SetIntersect(evens, odds); !ok || r != nil {
		t.Fatalf("evens ∩ odds: got (%v, %v), want provably empty", r, ok)
	}
	// Empty operands propagate without fallback.
	if r, ok := periodic.SetUnion(nil, day); !ok || !periodic.SameList(r, day) {
		t.Fatalf("∅ + DAYS: got (%v, %v)", r, ok)
	}
	if r, ok := periodic.SetDiff(nil, day); !ok || r != nil {
		t.Fatalf("∅ - DAYS: got (%v, %v)", r, ok)
	}
	if r, ok := periodic.SetIntersect(day, nil); !ok || r != nil {
		t.Fatalf("DAYS ∩ ∅: got (%v, %v)", r, ok)
	}
}

// foreachOracle materializes {x : op : y} (strict or relaxed) and returns the
// flattened element list: one sub-list per y element.
func foreachOracle(t *testing.T, x, y *periodic.Pattern, op interval.ListOp, strict bool, xwin, ywin interval.Interval) *calendar.Calendar {
	t.Helper()
	xc, err := calendar.FromIntervals(chronology.Day, x.Expand(xwin))
	if err != nil {
		t.Fatalf("foreach left operand: %v", err)
	}
	yc, err := calendar.FromIntervals(chronology.Day, y.Expand(ywin))
	if err != nil {
		t.Fatalf("foreach right operand: %v", err)
	}
	out, err := calendar.Foreach(xc, op, strict, yc)
	if err != nil {
		t.Fatalf("materialized foreach: %v", err)
	}
	return out
}

func TestForeachFlatMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ops := []interval.ListOp{interval.During, interval.Overlaps, interval.Meets}
	done, tried := 0, 0
	for trial := 0; trial < 200; trial++ {
		x, y := randomPattern(rng), randomPattern(rng)
		op := ops[rng.Intn(len(ops))]
		strict := rng.Intn(2) == 0
		tried++
		r, ok := periodic.ForeachFlat(x, y, op, strict)
		if !ok {
			continue // overlapping operands may have no pattern-form flatten
		}
		done++
		// x expands wide enough to cover members of every group whose
		// y-element overlaps the y window; the comparison happens on an
		// interior window clear of both edges.
		oracle := foreachOracle(t, x, y, op, strict, offWin(-400, 700), offWin(-200, 500))
		inner := offWin(-100, 400)
		want := filterOverlapping(oracle.Flatten().Intervals(), inner)
		got := filterOverlapping(expandSym(r, inner), inner)
		sameIntervals(t, got, want, "foreach "+op.String())
	}
	if done*2 < tried {
		t.Fatalf("ForeachFlat fell back too often: %d of %d succeeded", done, tried)
	}
}

func TestForeachSelectMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ops := []interval.ListOp{interval.During, interval.Overlaps, interval.Meets}
	preds := []calendar.Selection{
		calendar.SelectIndex(1),
		calendar.SelectIndex(2),
		calendar.SelectIndex(-1),
		calendar.SelectLast(),
		calendar.SelectList(1, 3),
		calendar.SelectRange(2, 3),
	}
	done, tried := 0, 0
	for trial := 0; trial < 200; trial++ {
		x, y := randomPattern(rng), randomPattern(rng)
		op := ops[rng.Intn(len(ops))]
		strict := rng.Intn(2) == 0
		sel := preds[rng.Intn(len(preds))]
		tried++
		r, ok := periodic.ForeachSelect(x, y, op, strict, sel.Indices)
		if !ok {
			continue // selected lists need not have a pattern form
		}
		done++
		oracle := foreachOracle(t, x, y, op, strict, offWin(-400, 700), offWin(-200, 500))
		sc, err := calendar.Select(sel, oracle)
		if err != nil {
			t.Fatalf("materialized select: %v", err)
		}
		inner := offWin(-100, 400)
		want := filterOverlapping(sc.Flatten().Intervals(), inner)
		got := filterOverlapping(expandSym(r, inner), inner)
		sameIntervals(t, got, want, "select "+sel.String()+" over foreach "+op.String())
	}
	if done*2 < tried {
		t.Fatalf("ForeachSelect fell back too often: %d of %d succeeded", done, tried)
	}
}

func TestForeachCardsExact(t *testing.T) {
	ch := chronology.MustNew(chronology.DefaultEpoch)
	days, err := periodic.ForBasicPair(ch, chronology.Day, chronology.Day)
	if err != nil {
		t.Fatal(err)
	}
	weeks, err := periodic.ForBasicPair(ch, chronology.Week, chronology.Day)
	if err != nil {
		t.Fatal(err)
	}
	months, err := periodic.ForBasicPair(ch, chronology.Month, chronology.Day)
	if err != nil {
		t.Fatal(err)
	}
	if min, max, ok := periodic.ForeachCards(days, weeks, interval.During); !ok || min != 7 || max != 7 {
		t.Fatalf("days per week: got (%d, %d, %v), want exactly 7", min, max, ok)
	}
	if min, max, ok := periodic.ForeachCards(days, months, interval.During); !ok || min != 28 || max != 31 {
		t.Fatalf("days per month: got (%d, %d, %v), want 28..31", min, max, ok)
	}
	// A 28-day February aligned to week boundaries holds exactly 4 weeks.
	if min, max, ok := periodic.ForeachCards(weeks, months, interval.Overlaps); !ok || min != 4 || max != 6 {
		t.Fatalf("weeks overlapping a month: got (%d, %d, %v), want 4..6", min, max, ok)
	}
}

func TestStarts(t *testing.T) {
	p := mustPattern(t, 10, 4, []periodic.Span{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 5}, {Lo: 7, Hi: 8}})
	s := p.Starts()
	// Duplicate starts collapse to one firing point.
	if s.NumSpans() != 2 {
		t.Fatalf("Starts kept duplicate points: %v", s)
	}
	win := offWin(0, 40)
	var want []interval.Interval
	seen := map[int64]bool{}
	for _, iv := range p.Expand(win) {
		lo := chronology.OffsetFromTick(iv.Lo)
		if !seen[lo] {
			seen[lo] = true
			want = append(want, interval.Interval{Lo: iv.Lo, Hi: iv.Lo})
		}
	}
	sameIntervals(t, s.Expand(win), want, "starts expansion")
	if (*periodic.Pattern)(nil).Starts() != nil {
		t.Fatal("Starts of nil must be nil")
	}
}
