package periodic

import (
	"fmt"

	"calsys/internal/chronology"
)

// Every basic calendar of the paper is (eventually) periodic when expressed
// in a finer basic granularity, in one of three ways:
//
//   - Fixed-ratio pairs. SECONDS…WEEKS all have a constant length in
//     seconds, and MONTHS…CENTURY all have a constant length in months, so
//     any pair inside one group repeats a single span with the length ratio
//     as its period (a week is always 7 days; a century always 10 decades).
//
//   - Gregorian-cycle pairs. A coarse Gregorian unit (MONTHS…CENTURY)
//     expressed in a fine one (SECONDS…WEEKS) is not fixed-length, but the
//     proleptic Gregorian calendar repeats exactly every 400 years — 146097
//     days from any starting year, which is also a whole number of weeks —
//     so one 400-year cycle of unit spans (4800 months, 400 years, 40
//     decades or 4 centuries) is the pattern.
//
//   - The identity pair: any granularity in itself is the unit pattern.
//
// secondsPer gives the fine group's unit lengths; monthsPer the coarse
// group's, in months.
var secondsPer = map[chronology.Granularity]int64{
	chronology.Second: 1,
	chronology.Minute: 60,
	chronology.Hour:   3600,
	chronology.Day:    chronology.SecondsPerDay,
	chronology.Week:   7 * chronology.SecondsPerDay,
}

var monthsPer = map[chronology.Granularity]int64{
	chronology.Month:   1,
	chronology.Year:    12,
	chronology.Decade:  120,
	chronology.Century: 1200,
}

// Gregorian 400-year cycle constants.
const (
	cycleYears = 400
	cycleDays  = 146097 // exactly divisible by 7: 20871 weeks
)

// unitsPerCycle returns how many units of the coarse granularity one
// Gregorian cycle holds.
func unitsPerCycle(g chronology.Granularity) int64 {
	return cycleYears * 12 / monthsPer[g]
}

// ForBasicPair builds the pattern whose windowed expansion equals
// calendar.GenerateFull(ch, of, in, …) for every window: the basic calendar
// `of` expressed in ticks of granularity `in`. It errors only on invalid
// pairs (of finer than in); every valid basic pair is periodic.
func ForBasicPair(ch *chronology.Chronology, of, in chronology.Granularity) (*Pattern, error) {
	if !of.Valid() || !in.Valid() {
		return nil, fmt.Errorf("periodic: invalid granularity pair %v/%v", of, in)
	}
	if of.Finer(in) {
		return nil, fmt.Errorf("periodic: cannot express %v in coarser %v units", of, in)
	}
	if of == in {
		// Unit t of a granularity is the single tick t of itself.
		return New(1, 0, []Span{{Lo: 0, Hi: 0}})
	}
	secOf, fineOf := secondsPer[of]
	secIn, fineIn := secondsPer[in]
	switch {
	case fineOf && fineIn:
		// Fixed ratio in seconds. Unit 0 of `of` starts at a whole number of
		// `in` units from the epoch (weeks start at midnight; every finer
		// unit divides the day).
		r := secOf / secIn
		start := ch.UnitStart(of, chronology.TickFromOffset(0))
		return New(r, start/secIn, []Span{{Lo: 0, Hi: r - 1}})
	case !fineOf && !fineIn:
		// Fixed ratio in months; the phase is wherever the epoch-containing
		// coarse unit starts relative to the epoch's `in` unit (a decade
		// anchored at 1987 starts 7 year units before the epoch year).
		r := monthsPer[of] / monthsPer[in]
		start := offsetAt(ch, in, ch.UnitStart(of, chronology.TickFromOffset(0)))
		return New(r, start, []Span{{Lo: 0, Hi: r - 1}})
	default:
		return gregorianCycle(ch, of, in, secIn)
	}
}

// gregorianCycle walks one 400-year cycle of coarse units and records their
// spans in fine units, relative to the start of the epoch-containing unit.
// The spans tile the cycle for sub-week granularities; expressed in WEEKS
// they may overlap at shared boundary weeks, exactly as materialized
// generation does.
func gregorianCycle(ch *chronology.Chronology, of, in chronology.Granularity, secIn int64) (*Pattern, error) {
	var period int64
	if in == chronology.Week {
		period = cycleDays / 7
	} else {
		period = cycleDays * (chronology.SecondsPerDay / secIn)
	}
	n := unitsPerCycle(of)
	phase := offsetAt(ch, in, ch.UnitStart(of, chronology.TickFromOffset(0)))
	spans := make([]Span, 0, n)
	u := chronology.TickFromOffset(0)
	for j := int64(0); j < n; j++ {
		lo, hi := ch.UnitSpanIn(of, u, in)
		spans = append(spans, Span{
			Lo: chronology.OffsetFromTick(lo) - phase,
			Hi: chronology.OffsetFromTick(hi) - phase,
		})
		u = chronology.NextTick(u)
	}
	return New(period, phase, spans)
}

// offsetAt returns the `g`-unit offset of the unit containing the given
// epoch second.
func offsetAt(ch *chronology.Chronology, g chronology.Granularity, sec int64) int64 {
	return chronology.OffsetFromTick(ch.TickAt(g, sec))
}

// InSeconds re-expresses the pattern — whose offsets count ticks of
// granularity g — as the pattern over epoch-second offsets covering the same
// instants, so patterns of different granularities become directly comparable
// (the cross-granularity equivalence key behind CV011 and fleet-wide rule
// dedup). Fine granularities (seconds…weeks) scale affinely; the month family
// maps each element's tick span to its day span via the 400-year Gregorian
// cycle first. nil (the empty list) stays nil; ok=false means the conversion
// would overflow the span or cycle budget.
func (p *Pattern) InSeconds(ch *chronology.Chronology, g chronology.Granularity) (*Pattern, bool) {
	if p == nil {
		return nil, true
	}
	if s, ok := secondsPer[g]; ok {
		return p.scaled(s, ch.UnitStart(g, chronology.TickFromOffset(0)))
	}
	if _, ok := monthsPer[g]; !ok {
		return nil, false
	}
	dayp, err := ForBasicPair(ch, g, chronology.Day)
	if err != nil {
		return nil, false
	}
	U := unitsPerCycle(g)
	L := lcm(p.period, U, 1<<40)
	if L == 0 {
		return nil, false
	}
	n := L / p.period * int64(len(p.spans))
	if n > setopMaxSpans {
		return nil, false
	}
	days := make([]Span, 0, n)
	for q := int64(0); q < n; q++ {
		lo, hi := p.element(q)
		dlo, _ := dayp.element(lo)
		_, dhi := dayp.element(hi)
		days = append(days, Span{Lo: dlo, Hi: dhi})
	}
	dp, ok := patternFromCycle(days, L/U*cycleDays)
	if !ok || dp == nil {
		return nil, false
	}
	return dp.scaled(chronology.SecondsPerDay, ch.UnitStart(chronology.Day, chronology.TickFromOffset(0)))
}

// scaled maps a pattern over unit ticks of length s seconds to epoch-second
// offsets: tick offset o becomes the second span [base+o·s, base+(o+1)·s−1],
// where base is the epoch second at which tick offset 0 starts.
func (p *Pattern) scaled(s, base int64) (*Pattern, bool) {
	if p.period > (1<<40)/s {
		return nil, false
	}
	spans := make([]Span, len(p.spans))
	for i, sp := range p.spans {
		spans[i] = Span{Lo: sp.Lo * s, Hi: sp.Hi*s + s - 1}
	}
	q, err := New(p.period*s, base+p.phase*s, spans)
	if err != nil {
		// Affine scaling preserves every New invariant.
		panic("periodic: scaled produced an invalid pattern: " + err.Error())
	}
	return q, true
}
