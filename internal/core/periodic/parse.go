package periodic

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePattern inverts Pattern.String: it parses
//
//	period=P phase=F spans=N{(lo,hi),(lo,hi),…}
//
// back into a validated Pattern. The declared span count must match the span
// list; the result passes through New, so every invariant is re-checked.
func ParsePattern(s string) (*Pattern, error) {
	fail := func(why string) (*Pattern, error) {
		return nil, fmt.Errorf("periodic: cannot parse pattern %q: %s", s, why)
	}
	rest := strings.TrimSpace(s)
	period, rest, err := parseField(rest, "period=")
	if err != nil {
		return fail(err.Error())
	}
	phase, rest, err := parseField(rest, "phase=")
	if err != nil {
		return fail(err.Error())
	}
	count, rest, err := parseField(rest, "spans=")
	if err != nil {
		return fail(err.Error())
	}
	if !strings.HasPrefix(rest, "{") || !strings.HasSuffix(rest, "}") {
		return fail("span list must be brace-enclosed")
	}
	body := rest[1 : len(rest)-1]
	var spans []Span
	for body != "" {
		if !strings.HasPrefix(body, "(") {
			return fail("span must start with '('")
		}
		close := strings.IndexByte(body, ')')
		if close < 0 {
			return fail("unterminated span")
		}
		lo, hi, ok := parseSpanBody(body[1:close])
		if !ok {
			return fail("span must be (lo,hi) with integer bounds")
		}
		spans = append(spans, Span{Lo: lo, Hi: hi})
		body = body[close+1:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if body != "" {
			return fail("spans must be comma-separated")
		}
	}
	if int64(len(spans)) != count {
		return fail(fmt.Sprintf("declared %d spans but listed %d", count, len(spans)))
	}
	return New(period, phase, spans)
}

// MustParsePattern is ParsePattern for test tables; it panics on error.
func MustParsePattern(s string) *Pattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// parseField consumes "key=<int>" plus one trailing space-or-nothing from the
// front of s.
func parseField(s, key string) (int64, string, error) {
	if !strings.HasPrefix(s, key) {
		return 0, "", fmt.Errorf("expected %q", key)
	}
	s = s[len(key):]
	end := strings.IndexAny(s, " {")
	if end < 0 {
		end = len(s)
	}
	v, err := strconv.ParseInt(s[:end], 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("bad %s value", strings.TrimSuffix(key, "="))
	}
	return v, strings.TrimPrefix(s[end:], " "), nil
}

func parseSpanBody(s string) (lo, hi int64, ok bool) {
	comma := strings.IndexByte(s, ',')
	if comma < 0 {
		return 0, 0, false
	}
	lo, err1 := strconv.ParseInt(s[:comma], 10, 64)
	hi, err2 := strconv.ParseInt(s[comma+1:], 10, 64)
	return lo, hi, err1 == nil && err2 == nil
}
