package interval

import "fmt"

// A ListOp is one of the paper's interval relationship operators (§3.1),
// used as the middle argument of the foreach operators:
//
//	int1 overlaps int2 := int1 ∩ int2 ≠ ∅
//	int1 during   int2 := l1 >= l2 ∧ u2 >= u1
//	int1 meets    int2 := u1 = l2
//	int1 <        int2 := u1 <= l2
//	int1 <=       int2 := l1 <= l2 ∧ u2 >= u1
type ListOp int

// The five listops, exactly as defined in §3.1 of the paper.
const (
	Overlaps ListOp = iota
	During
	Meets
	Before       // the paper's "<"
	BeforeEquals // the paper's "<="
)

var listOpNames = [...]string{
	Overlaps:     "overlaps",
	During:       "during",
	Meets:        "meets",
	Before:       "<",
	BeforeEquals: "<=",
}

// String returns the operator's surface syntax in the calendar language.
func (op ListOp) String() string {
	if op < 0 || int(op) >= len(listOpNames) {
		return fmt.Sprintf("ListOp(%d)", int(op))
	}
	return listOpNames[op]
}

// Valid reports whether op is one of the five listops.
func (op ListOp) Valid() bool { return op >= Overlaps && op <= BeforeEquals }

// ParseListOp resolves surface syntax to a ListOp.
func ParseListOp(s string) (ListOp, error) {
	for op, name := range listOpNames {
		if s == name {
			return ListOp(op), nil
		}
	}
	return 0, fmt.Errorf("interval: unknown listop %q", s)
}

// Eval applies the operator to (int1, int2) per the paper's definitions.
func (op ListOp) Eval(int1, int2 Interval) bool {
	switch op {
	case Overlaps:
		_, ok := int1.Intersect(int2)
		return ok
	case During:
		return int1.Lo >= int2.Lo && int2.Hi >= int1.Hi
	case Meets:
		return int1.Hi == int2.Lo
	case Before:
		return int1.Hi <= int2.Lo
	case BeforeEquals:
		return int1.Lo <= int2.Lo && int2.Hi >= int1.Hi
	}
	panic(fmt.Sprintf("interval: Eval of invalid listop %d", int(op)))
}
