package interval

import (
	"sort"
	"strings"

	"calsys/internal/chronology"
)

// A Set is a normalized list of intervals: sorted by lower bound, pairwise
// disjoint and non-adjacent (adjacent intervals are coalesced). Sets give the
// calendar operators +, - and intersects their point-set semantics.
type Set struct {
	ivs []Interval
}

// NewSet builds a normalized set from arbitrary intervals.
func NewSet(ivs ...Interval) Set {
	s := Set{ivs: normalize(ivs)}
	return s
}

// normalize sorts, merges overlapping and adjacent intervals, and returns a
// fresh slice.
func normalize(in []Interval) []Interval {
	if len(in) == 0 {
		return nil
	}
	ivs := make([]Interval, len(in))
	copy(ivs, in)
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return ivs[i].Hi < ivs[j].Hi
	})
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi || chronology.NextTick(last.Hi) == iv.Lo {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Intervals returns the set's intervals in order. The slice is shared; do
// not modify it.
func (s Set) Intervals() []Interval { return s.ivs }

// Empty reports whether the set covers no ticks.
func (s Set) Empty() bool { return len(s.ivs) == 0 }

// Len returns the number of maximal intervals in the set.
func (s Set) Len() int { return len(s.ivs) }

// Cardinality returns the number of ticks covered.
func (s Set) Cardinality() int64 {
	var n int64
	for _, iv := range s.ivs {
		n += iv.Length()
	}
	return n
}

// Contains reports whether tick t is covered by the set.
func (s Set) Contains(t chronology.Tick) bool {
	if t == 0 {
		return false
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= t })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// Union returns the point-set union (the calendar "+" operator).
func (s Set) Union(other Set) Set {
	merged := make([]Interval, 0, len(s.ivs)+len(other.ivs))
	merged = append(merged, s.ivs...)
	merged = append(merged, other.ivs...)
	return Set{ivs: normalize(merged)}
}

// Intersect returns the point-set intersection (the calendar "intersects"
// operator).
func (s Set) Intersect(other Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(other.ivs) {
		if iv, ok := s.ivs[i].Intersect(other.ivs[j]); ok {
			out = append(out, iv)
		}
		if s.ivs[i].Hi < other.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return Set{ivs: out}
}

// Diff returns the point-set difference s minus other (the calendar "-"
// operator).
func (s Set) Diff(other Set) Set {
	var out []Interval
	j := 0
	for _, iv := range s.ivs {
		lo := iv.Lo
		for j < len(other.ivs) && other.ivs[j].Hi < lo {
			j++
		}
		k := j
		for k < len(other.ivs) && other.ivs[k].Lo <= iv.Hi {
			cut := other.ivs[k]
			if cut.Lo > lo {
				out = append(out, Interval{Lo: lo, Hi: chronology.PrevTick(cut.Lo)})
			}
			if cut.Hi >= iv.Hi {
				lo = 0 // fully consumed
				break
			}
			lo = chronology.NextTick(cut.Hi)
			k++
		}
		if lo != 0 && lo <= iv.Hi {
			out = append(out, Interval{Lo: lo, Hi: iv.Hi})
		}
	}
	return Set{ivs: out}
}

// Equal reports whether two sets cover exactly the same ticks.
func (s Set) Equal(other Set) bool {
	if len(s.ivs) != len(other.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != other.ivs[i] {
			return false
		}
	}
	return true
}

// Hull returns the smallest single interval covering the set.
func (s Set) Hull() (Interval, bool) {
	if s.Empty() {
		return Interval{}, false
	}
	return Interval{Lo: s.ivs[0].Lo, Hi: s.ivs[len(s.ivs)-1].Hi}, true
}

// String renders the set in the paper's {(l,u),...} notation.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range s.ivs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}
