package interval

import "fmt"

// Relation is one of Allen's thirteen qualitative relations between two
// intervals (Allen 1985, the paper's [All85]). The paper's five listops are
// coarsenings of these; the full set is provided because user-defined
// operators registered with the database may use any of them.
type Relation int

// Allen's thirteen interval relations.
const (
	RelBefore Relation = iota
	RelMeets
	RelOverlaps
	RelStarts
	RelDuring
	RelFinishes
	RelEquals
	RelFinishedBy
	RelContains
	RelStartedBy
	RelOverlappedBy
	RelMetBy
	RelAfter
)

var relationNames = [...]string{
	RelBefore:       "before",
	RelMeets:        "meets",
	RelOverlaps:     "overlaps",
	RelStarts:       "starts",
	RelDuring:       "during",
	RelFinishes:     "finishes",
	RelEquals:       "equals",
	RelFinishedBy:   "finished-by",
	RelContains:     "contains",
	RelStartedBy:    "started-by",
	RelOverlappedBy: "overlapped-by",
	RelMetBy:        "met-by",
	RelAfter:        "after",
}

// String returns the conventional name of the relation.
func (r Relation) String() string {
	if r < 0 || int(r) >= len(relationNames) {
		return fmt.Sprintf("Relation(%d)", int(r))
	}
	return relationNames[r]
}

// Inverse returns the converse relation: if Relate(a,b) = r then
// Relate(b,a) = r.Inverse().
func (r Relation) Inverse() Relation { return RelAfter - r }

// Relate classifies the exact Allen relation between a and b.
//
// Because intervals are closed spans of discrete ticks, "meets" here means
// a.Hi+1 = b.Lo would leave no gap; following the paper's definition
// (u1 = l2), meeting intervals share their boundary tick.
func Relate(a, b Interval) Relation {
	switch {
	case a.Hi < b.Lo:
		return RelBefore
	case a.Lo > b.Hi:
		return RelAfter
	case a.Lo == b.Lo && a.Hi == b.Hi:
		return RelEquals
	case a.Hi == b.Lo:
		return RelMeets
	case b.Hi == a.Lo:
		return RelMetBy
	case a.Lo == b.Lo && a.Hi < b.Hi:
		return RelStarts
	case a.Lo == b.Lo && a.Hi > b.Hi:
		return RelStartedBy
	case a.Hi == b.Hi && a.Lo > b.Lo:
		return RelFinishes
	case a.Hi == b.Hi && a.Lo < b.Lo:
		return RelFinishedBy
	case a.Lo > b.Lo && a.Hi < b.Hi:
		return RelDuring
	case a.Lo < b.Lo && a.Hi > b.Hi:
		return RelContains
	case a.Lo < b.Lo:
		return RelOverlaps
	default:
		return RelOverlappedBy
	}
}
