// Package interval implements the temporal-interval primitive of the calendar
// algebra: closed integer-tick intervals under the no-zero convention, the
// relationship operators of Allen (1985) used by the paper, and normalized
// interval sets used for calendar union, difference and intersection.
package interval

import (
	"fmt"

	"calsys/internal/chronology"
)

// An Interval is a closed span of ticks [Lo, Hi] at some granularity, with
// Lo <= Hi and neither endpoint equal to 0 (the paper's no-zero convention).
// The paper writes intervals as (lo, hi); both endpoints are inclusive.
type Interval struct {
	Lo, Hi chronology.Tick
}

// New constructs a validated interval.
func New(lo, hi chronology.Tick) (Interval, error) {
	iv := Interval{Lo: lo, Hi: hi}
	if err := iv.Check(); err != nil {
		return Interval{}, err
	}
	return iv, nil
}

// Must constructs an interval known to be valid, panicking otherwise. It is
// intended for literals in tests and examples.
func Must(lo, hi chronology.Tick) Interval {
	iv, err := New(lo, hi)
	if err != nil {
		panic(err)
	}
	return iv
}

// Check validates the no-zero convention and endpoint ordering.
func (iv Interval) Check() error {
	if iv.Lo == 0 || iv.Hi == 0 {
		return fmt.Errorf("interval (%d,%d): endpoints may not be 0 (no-zero convention)", iv.Lo, iv.Hi)
	}
	if iv.Lo > iv.Hi {
		return fmt.Errorf("interval (%d,%d): lower bound exceeds upper bound", iv.Lo, iv.Hi)
	}
	return nil
}

// String renders the interval in the paper's (lo,hi) notation.
func (iv Interval) String() string { return fmt.Sprintf("(%d,%d)", iv.Lo, iv.Hi) }

// Length returns the number of ticks contained in the interval, accounting
// for the skipped tick 0.
func (iv Interval) Length() int64 {
	return chronology.OffsetFromTick(iv.Hi) - chronology.OffsetFromTick(iv.Lo) + 1
}

// Contains reports whether tick t lies within the interval. Tick 0 is never
// contained.
func (iv Interval) Contains(t chronology.Tick) bool {
	return t != 0 && iv.Lo <= t && t <= iv.Hi
}

// Point reports whether the interval covers exactly one tick.
func (iv Interval) Point() bool { return iv.Lo == iv.Hi }

// Intersect returns the common span of two intervals, if any.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	lo := max64(iv.Lo, other.Lo)
	hi := min64(iv.Hi, other.Hi)
	if lo > hi {
		return Interval{}, false
	}
	return Interval{Lo: lo, Hi: hi}, true
}

// Hull returns the smallest interval containing both arguments.
func (iv Interval) Hull(other Interval) Interval {
	return Interval{Lo: min64(iv.Lo, other.Lo), Hi: max64(iv.Hi, other.Hi)}
}

// Adjacent reports whether the two intervals abut with no tick between them
// (so their union is a single interval even though they do not overlap).
func (iv Interval) Adjacent(other Interval) bool {
	return chronology.NextTick(iv.Hi) == other.Lo || chronology.NextTick(other.Hi) == iv.Lo
}

// Equal reports endpoint equality.
func (iv Interval) Equal(other Interval) bool { return iv == other }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
