package interval

import (
	"testing"
	"testing/quick"

	"calsys/internal/chronology"
)

func TestNewSetNormalizes(t *testing.T) {
	s := NewSet(Must(5, 9), Must(1, 3), Must(4, 4), Must(20, 25))
	// (1,3),(4,4),(5,9) coalesce into (1,9).
	want := []Interval{Must(1, 9), Must(20, 25)}
	got := s.Intervals()
	if len(got) != len(want) {
		t.Fatalf("got %v", s)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSetCoalescesAcrossZero(t *testing.T) {
	s := NewSet(Must(-3, -1), Must(1, 4))
	if s.Len() != 1 || s.Intervals()[0] != Must(-3, 4) {
		t.Errorf("(-3,-1)+(1,4) should coalesce to (-3,4), got %v", s)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(Must(1, 5), Must(10, 12))
	if s.Empty() || s.Len() != 2 {
		t.Error("set shape wrong")
	}
	if s.Cardinality() != 8 {
		t.Errorf("Cardinality = %d, want 8", s.Cardinality())
	}
	if !s.Contains(3) || !s.Contains(10) || s.Contains(7) || s.Contains(0) {
		t.Error("Contains wrong")
	}
	if h, ok := s.Hull(); !ok || h != Must(1, 12) {
		t.Errorf("Hull = %v,%v", h, ok)
	}
	if _, ok := NewSet().Hull(); ok {
		t.Error("empty hull should report false")
	}
	if s.String() != "{(1,5),(10,12)}" {
		t.Errorf("String = %q", s.String())
	}
}

// The EMP-DAYS walkthrough in §3.3 of the paper:
//
//	LDOM - LDOM_HOL + LAST_BUS_DAY
//	  = {(31,31),(59,59),(90,90)} - {(31,31),(90,90)} + {(30,30),(88,88)}
//	  = {(30,30),(59,59),(88,88)}
func TestPaperEmpDaysSetAlgebra(t *testing.T) {
	ldom := NewSet(Must(31, 31), Must(59, 59), Must(90, 90))
	ldomHol := NewSet(Must(31, 31), Must(90, 90))
	lastBus := NewSet(Must(30, 30), Must(88, 88))
	got := ldom.Diff(ldomHol).Union(lastBus)
	want := NewSet(Must(30, 30), Must(59, 59), Must(88, 88))
	if !got.Equal(want) {
		t.Errorf("EMP-DAYS = %v, want %v", got, want)
	}
}

func TestIntersectSets(t *testing.T) {
	a := NewSet(Must(1, 10), Must(20, 30))
	b := NewSet(Must(5, 25))
	got := a.Intersect(b)
	want := NewSet(Must(5, 10), Must(20, 25))
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersect(NewSet()).Empty() {
		t.Error("intersect with empty must be empty")
	}
}

func TestDiffSets(t *testing.T) {
	a := NewSet(Must(1, 10))
	cases := []struct {
		b, want Set
	}{
		{NewSet(Must(3, 5)), NewSet(Must(1, 2), Must(6, 10))},
		{NewSet(Must(1, 10)), NewSet()},
		{NewSet(Must(-5, -1)), NewSet(Must(1, 10))},
		{NewSet(Must(8, 20)), NewSet(Must(1, 7))},
		{NewSet(Must(1, 3), Must(9, 10)), NewSet(Must(4, 8))},
	}
	for _, tc := range cases {
		if got := a.Diff(tc.b); !got.Equal(tc.want) {
			t.Errorf("(1,10) - %v = %v, want %v", tc.b, got, tc.want)
		}
	}
}

func TestDiffAcrossZero(t *testing.T) {
	a := NewSet(Must(-4, 3))
	got := a.Diff(NewSet(Must(-1, 1)))
	want := NewSet(Must(-4, -2), Must(2, 3))
	if !got.Equal(want) {
		t.Errorf("(-4,3) - (-1,1) = %v, want %v", got, want)
	}
}

func randSet(xs []int8) Set {
	ivs := make([]Interval, 0, len(xs)/2)
	for i := 0; i+1 < len(xs); i += 2 {
		ivs = append(ivs, mkIval(xs[i], xs[i+1]))
	}
	return NewSet(ivs...)
}

func TestSetAlgebraProperties(t *testing.T) {
	f := func(xs, ys []int8) bool {
		a, b := randSet(xs), randSet(ys)
		u := a.Union(b)
		i := a.Intersect(b)
		d := a.Diff(b)
		for tick := int64(-140); tick <= 140; tick++ {
			if tick == 0 {
				continue
			}
			ina, inb := a.Contains(tick), b.Contains(tick)
			if u.Contains(tick) != (ina || inb) {
				return false
			}
			if i.Contains(tick) != (ina && inb) {
				return false
			}
			if d.Contains(tick) != (ina && !inb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetNormalizationInvariantProperty(t *testing.T) {
	f := func(xs []int8) bool {
		s := randSet(xs)
		ivs := s.Intervals()
		for k, iv := range ivs {
			if iv.Check() != nil {
				return false
			}
			if k > 0 {
				prev := ivs[k-1]
				// Sorted, disjoint, and non-adjacent.
				if prev.Hi >= iv.Lo || chronology.NextTick(prev.Hi) == iv.Lo {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSetEqual(t *testing.T) {
	a := NewSet(Must(1, 5))
	b := NewSet(Must(1, 3), Must(4, 5))
	if !a.Equal(b) {
		t.Error("normalization should make these equal")
	}
	if a.Equal(NewSet(Must(1, 6))) {
		t.Error("different sets must not be equal")
	}
	if a.Equal(NewSet(Must(1, 5), Must(9, 9))) {
		t.Error("different lengths must not be equal")
	}
}
