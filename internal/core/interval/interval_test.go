package interval

import (
	"testing"
	"testing/quick"

	"calsys/internal/chronology"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 5); err != nil {
		t.Errorf("New(1,5): %v", err)
	}
	if _, err := New(-4, 3); err != nil {
		t.Errorf("New(-4,3): %v (paper's first 1993 week)", err)
	}
	for _, bad := range [][2]int64{{0, 5}, {1, 0}, {0, 0}, {5, 1}, {-1, -3}} {
		if _, err := New(bad[0], bad[1]); err == nil {
			t.Errorf("New(%d,%d) should fail", bad[0], bad[1])
		}
	}
}

func TestMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Must(0,1) should panic")
		}
	}()
	Must(0, 1)
}

func TestLengthSkipsZero(t *testing.T) {
	cases := []struct {
		iv   Interval
		want int64
	}{
		{Must(1, 1), 1},
		{Must(1, 31), 31},
		{Must(-4, 3), 7}, // -4..-1 and 1..3: a full week
		{Must(-1, 1), 2},
		{Must(-7, -1), 7},
	}
	for _, tc := range cases {
		if got := tc.iv.Length(); got != tc.want {
			t.Errorf("%v.Length() = %d, want %d", tc.iv, got, tc.want)
		}
	}
}

func TestContains(t *testing.T) {
	iv := Must(-4, 3)
	for _, in := range []int64{-4, -1, 1, 3} {
		if !iv.Contains(in) {
			t.Errorf("%v should contain %d", iv, in)
		}
	}
	for _, out := range []int64{-5, 0, 4} {
		if iv.Contains(out) {
			t.Errorf("%v should not contain %d", iv, out)
		}
	}
}

func TestIntersectHullAdjacent(t *testing.T) {
	a, b := Must(1, 10), Must(5, 20)
	got, ok := a.Intersect(b)
	if !ok || got != Must(5, 10) {
		t.Errorf("Intersect = %v,%v", got, ok)
	}
	if _, ok := Must(1, 3).Intersect(Must(5, 9)); ok {
		t.Error("disjoint intervals should not intersect")
	}
	if h := a.Hull(b); h != Must(1, 20) {
		t.Errorf("Hull = %v", h)
	}
	if !Must(1, 3).Adjacent(Must(4, 9)) || Must(1, 3).Adjacent(Must(5, 9)) {
		t.Error("Adjacent wrong")
	}
	if !Must(-3, -1).Adjacent(Must(1, 5)) {
		t.Error("(-3,-1) and (1,5) are adjacent across the zero skip")
	}
}

func TestListOps(t *testing.T) {
	// Examples from §3.1 of the paper.
	jan := Must(1, 31)
	w0 := Must(-4, 3)
	w1 := Must(4, 10)
	w5 := Must(25, 31)
	w6 := Must(32, 38)
	if !Overlaps.Eval(w0, jan) || !Overlaps.Eval(w1, jan) || !Overlaps.Eval(w6, jan) == false {
		// w6 (32,38) does not overlap January (1,31)
	}
	if Overlaps.Eval(w6, jan) {
		t.Error("(32,38) must not overlap (1,31)")
	}
	if !Overlaps.Eval(w0, jan) {
		t.Error("(-4,3) overlaps (1,31)")
	}
	if During.Eval(w0, jan) {
		t.Error("(-4,3) is not during (1,31)")
	}
	if !During.Eval(w1, jan) || !During.Eval(w5, jan) {
		t.Error("(4,10) and (25,31) are during (1,31)")
	}
	if !Meets.Eval(Must(1, 5), Must(5, 9)) || Meets.Eval(Must(1, 5), Must(6, 9)) {
		t.Error("meets requires u1 = l2")
	}
	if !Before.Eval(Must(1, 5), Must(5, 9)) || !Before.Eval(Must(1, 4), Must(5, 9)) || Before.Eval(Must(1, 6), Must(5, 9)) {
		t.Error("< requires u1 <= l2")
	}
	if !BeforeEquals.Eval(Must(1, 5), Must(1, 9)) || BeforeEquals.Eval(Must(2, 5), Must(1, 9)) {
		t.Error("<= requires l1 <= l2 and u2 >= u1")
	}
}

func TestParseListOp(t *testing.T) {
	for _, name := range []string{"overlaps", "during", "meets", "<", "<="} {
		op, err := ParseListOp(name)
		if err != nil {
			t.Errorf("ParseListOp(%q): %v", name, err)
			continue
		}
		if op.String() != name {
			t.Errorf("round trip %q -> %q", name, op.String())
		}
		if !op.Valid() {
			t.Errorf("%q should be valid", name)
		}
	}
	if _, err := ParseListOp("near"); err == nil {
		t.Error("ParseListOp(near) should fail")
	}
}

func TestAllenRelations(t *testing.T) {
	cases := []struct {
		a, b Interval
		want Relation
	}{
		{Must(1, 2), Must(4, 6), RelBefore},
		{Must(1, 4), Must(4, 6), RelMeets},
		{Must(1, 5), Must(4, 8), RelOverlaps},
		{Must(4, 5), Must(4, 8), RelStarts},
		{Must(5, 6), Must(4, 8), RelDuring},
		{Must(6, 8), Must(4, 8), RelFinishes},
		{Must(4, 8), Must(4, 8), RelEquals},
		{Must(4, 8), Must(6, 8), RelFinishedBy},
		{Must(4, 8), Must(5, 6), RelContains},
		{Must(4, 8), Must(4, 5), RelStartedBy},
		{Must(4, 8), Must(1, 5), RelOverlappedBy},
		{Must(4, 6), Must(1, 4), RelMetBy},
		{Must(4, 6), Must(1, 2), RelAfter},
	}
	for _, tc := range cases {
		if got := Relate(tc.a, tc.b); got != tc.want {
			t.Errorf("Relate(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAllenInverseProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		a := mkIval(a1, a2)
		b := mkIval(b1, b2)
		return Relate(a, b).Inverse() == Relate(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestAllenExhaustiveProperty(t *testing.T) {
	// Exactly one of Allen's 13 relations holds for any pair; Relate always
	// returns a valid relation and is consistent with the listops.
	f := func(a1, a2, b1, b2 int8) bool {
		a := mkIval(a1, a2)
		b := mkIval(b1, b2)
		r := Relate(a, b)
		if r < RelBefore || r > RelAfter {
			return false
		}
		_, intersects := a.Intersect(b)
		if Overlaps.Eval(a, b) != intersects {
			return false
		}
		if During.Eval(a, b) != (r == RelDuring || r == RelEquals || r == RelStarts || r == RelFinishes) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// mkIval builds a valid no-zero interval from arbitrary bytes.
func mkIval(x, y int8) Interval {
	lo, hi := int64(x), int64(y)
	if lo == 0 {
		lo = 1
	}
	if hi == 0 {
		hi = 1
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{Lo: lo, Hi: hi}
}

func TestRelationNames(t *testing.T) {
	if RelBefore.String() != "before" || RelAfter.String() != "after" || RelEquals.String() != "equals" {
		t.Error("relation names wrong")
	}
	if Relation(99).String() == "before" {
		t.Error("out-of-range relation must not alias")
	}
	if chronology.Tick(0) != 0 {
		t.Error("sanity")
	}
}
