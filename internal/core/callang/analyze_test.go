package callang

import (
	"reflect"
	"testing"

	"calsys/internal/chronology"
)

func mustParseScript(t *testing.T, src string) *Script {
	t.Helper()
	s, err := ParseDerivation(src)
	if err != nil {
		t.Fatalf("ParseDerivation(%q): %v", src, err)
	}
	return s
}

// Negative selection indices select from the end of each group; they must
// not perturb the analysis (kinds, tick granularity, reference counts).
func TestAnalyzeScriptNegativeSelectionIndices(t *testing.T) {
	a := AnalyzeScript(mustParseScript(t, "{x = [-1]/DAYS:during:WEEKS; return (x);}"), KindMap{})
	if a.TickGran != chronology.Day {
		t.Errorf("TickGran = %v, want DAYS", a.TickGran)
	}
	if !a.Kinds[chronology.Day] || !a.Kinds[chronology.Week] {
		t.Errorf("Kinds = %v, want day+week", a.Kinds)
	}
	if len(a.Unknown) != 0 {
		t.Errorf("temporaries should not be unknown refs: %v", a.Unknown)
	}
	if a.Refs["DAYS"] != 1 || a.Refs["WEEKS"] != 1 {
		t.Errorf("Refs = %v", a.Refs)
	}
}

// The paper's [n] (last) index: analysis of the EMP-DAYS-style script with
// temporaries referenced across statements.
func TestAnalyzeScriptLastIndexAndShared(t *testing.T) {
	src := `{LDOM = [n]/DAYS:during:MONTHS;
	return (LDOM:intersects:LDOM);}`
	a := AnalyzeScript(mustParseScript(t, src), KindMap{})
	if a.TickGran != chronology.Day {
		t.Errorf("TickGran = %v, want DAYS", a.TickGran)
	}
	// LDOM is a temporary: deleted from Refs, never shared or unknown.
	if _, ok := a.Refs["LDOM"]; ok {
		t.Errorf("temporary LDOM should be removed from Refs: %v", a.Refs)
	}
	if len(a.Shared) != 0 || len(a.Unknown) != 0 {
		t.Errorf("Shared = %v, Unknown = %v; want none", a.Shared, a.Unknown)
	}
}

// Mixed week/month foreach operands: weeks do not nest in months, so the
// common tick granularity falls back to days.
func TestAnalyzeScriptMixedGranularityForeach(t *testing.T) {
	a := AnalyzeScript(mustParseScript(t, "{return (WEEKS.overlaps.MONTHS);}"), KindMap{})
	if a.TickGran != chronology.Day {
		t.Errorf("weeks×months TickGran = %v, want DAYS fallback", a.TickGran)
	}
	if !reflect.DeepEqual(a.Kinds, map[chronology.Granularity]bool{
		chronology.Week: true, chronology.Month: true,
	}) {
		t.Errorf("Kinds = %v", a.Kinds)
	}

	// Month-family units nest: months during years stays in months.
	a = AnalyzeScript(mustParseScript(t, "{return (MONTHS:during:YEARS);}"), KindMap{})
	if a.TickGran != chronology.Month {
		t.Errorf("months×years TickGran = %v, want MONTHS", a.TickGran)
	}
}

// Shared references across if/while branches are counted once per
// occurrence and reported in sorted order; unresolvable names land in
// Unknown.
func TestAnalyzeScriptBranchesAndUnknowns(t *testing.T) {
	src := `{if (HOL:during:MONTHS) { x = HOL; } else { x = MYSTERY; }
	while (x:<:HOL) ;
	return (x);}`
	a := AnalyzeScript(mustParseScript(t, src), KindMap{"HOL": chronology.Day})
	if a.Refs["HOL"] != 3 {
		t.Errorf("HOL counted %d times, want 3", a.Refs["HOL"])
	}
	if !reflect.DeepEqual(a.Shared, []string{"HOL"}) {
		t.Errorf("Shared = %v", a.Shared)
	}
	if !reflect.DeepEqual(a.Unknown, []string{"MYSTERY"}) {
		t.Errorf("Unknown = %v", a.Unknown)
	}
}
