package callang

import (
	"sort"

	"calsys/internal/chronology"
)

// Analysis carries the results of the static passes the parsing algorithm of
// §3.4 performs after factorization: the smallest time unit in which all
// calendars of the expression can be expressed, and the calendars that occur
// more than once (whose values the evaluator generates only once).
type Analysis struct {
	// TickGran is the smallest time unit in which every referenced calendar
	// is exactly expressible; every calendar in the plan is generated in
	// these units. Weeks do not align with months and coarser units, so a
	// mixed week/month expression is expressed in days.
	TickGran chronology.Granularity
	// Kinds is the set of element kinds referenced.
	Kinds map[chronology.Granularity]bool
	// Shared lists the names of calendars referenced more than once, in
	// sorted order.
	Shared []string
	// Refs counts references per calendar name.
	Refs map[string]int
	// Unknown lists referenced names whose kind the resolver could not
	// supply (script temporaries bound at evaluation time).
	Unknown []string
}

// GranFor returns the smallest time unit in which every kind in the set is
// exactly expressible. Month-family units (months, years, decades, the
// century) nest in one another and weeks nest only in days and finer, so a
// set mixing weeks with coarser units falls back to days.
func GranFor(kinds map[chronology.Granularity]bool) chronology.Granularity {
	if len(kinds) == 0 {
		return chronology.Day
	}
	finest := chronology.Century
	coarserThanWeek := false
	for g := range kinds {
		if g.Finer(finest) {
			finest = g
		}
		if g.Coarser(chronology.Week) {
			coarserThanWeek = true
		}
	}
	if finest == chronology.Week && coarserThanWeek {
		return chronology.Day
	}
	return finest
}

// Analyze computes the Analysis of an expression.
func Analyze(e Expr, kinds KindResolver) Analysis {
	a := Analysis{Refs: map[string]int{}, Kinds: map[chronology.Granularity]bool{}}
	walk(e, func(x Expr) {
		switch n := x.(type) {
		case *Ident:
			a.Refs[n.Name]++
			if g, ok := kinds.ElemKindOf(n.Name); ok {
				a.Kinds[g] = true
			} else if a.Refs[n.Name] == 1 {
				a.Unknown = append(a.Unknown, n.Name)
			}
		case *CallExpr:
			// generate(OF, IN, ...) expresses OF in IN units; interval and
			// points literals may declare their tick unit as a trailing
			// argument: interval(lo, hi, DAYS).
			if n.Name == "generate" && len(n.Args) >= 2 {
				if id, ok := n.Args[1].(*Ident); ok {
					if g, err := chronology.ParseGranularity(id.Name); err == nil {
						a.Kinds[g] = true
					}
				}
			}
			if (n.Name == "interval" || n.Name == "points") && len(n.Args) > 0 {
				if id, ok := n.Args[len(n.Args)-1].(*Ident); ok {
					if g, err := chronology.ParseGranularity(id.Name); err == nil {
						a.Kinds[g] = true
					}
				}
			}
		}
	})
	a.TickGran = GranFor(a.Kinds)
	for name, n := range a.Refs {
		if n > 1 {
			a.Shared = append(a.Shared, name)
		}
	}
	sort.Strings(a.Shared)
	sort.Strings(a.Unknown)
	return a
}

// AnalyzeScript runs Analyze over every expression of a script and merges
// the results.
func AnalyzeScript(s *Script, kinds KindResolver) Analysis {
	merged := Analysis{Refs: map[string]int{}, Kinds: map[chronology.Granularity]bool{}}
	var visitStmts func(ss []Stmt)
	visit := func(e Expr) {
		sub := Analyze(e, kinds)
		for g := range sub.Kinds {
			merged.Kinds[g] = true
		}
		for k, v := range sub.Refs {
			merged.Refs[k] += v
		}
	}
	visitStmts = func(ss []Stmt) {
		for _, st := range ss {
			switch n := st.(type) {
			case *AssignStmt:
				visit(n.X)
			case *ReturnStmt:
				visit(n.X)
			case *ExprStmt:
				visit(n.X)
			case *IfStmt:
				visit(n.Cond)
				visitStmts(n.Then)
				visitStmts(n.Else)
			case *WhileStmt:
				visit(n.Cond)
				visitStmts(n.Body)
			}
		}
	}
	visitStmts(s.Stmts)
	merged.TickGran = GranFor(merged.Kinds)
	// Temporaries assigned anywhere in the script (including if/while
	// branches) are not external references.
	var stripAssigned func(ss []Stmt)
	stripAssigned = func(ss []Stmt) {
		for _, st := range ss {
			switch n := st.(type) {
			case *AssignStmt:
				delete(merged.Refs, n.Name)
			case *IfStmt:
				stripAssigned(n.Then)
				stripAssigned(n.Else)
			case *WhileStmt:
				stripAssigned(n.Body)
			}
		}
	}
	stripAssigned(s.Stmts)
	for name, n := range merged.Refs {
		if n > 1 {
			merged.Shared = append(merged.Shared, name)
		}
	}
	sort.Strings(merged.Shared)
	for name := range merged.Refs {
		if _, ok := kinds.ElemKindOf(name); !ok {
			merged.Unknown = append(merged.Unknown, name)
		}
	}
	sort.Strings(merged.Unknown)
	return merged
}

// walk visits e and all descendants in preorder.
func walk(e Expr, fn func(Expr)) {
	fn(e)
	for _, c := range e.Children() {
		walk(c, fn)
	}
}
