package callang

import (
	"strings"
	"testing"

	"calsys/internal/chronology"
)

func parseScriptMap(t *testing.T, defs map[string]string) ScriptMap {
	t.Helper()
	m := ScriptMap{}
	for name, src := range defs {
		m[name] = mustScript(t, src)
	}
	return m
}

// Example 1 of §3.4: "Mondays during January 1993".
//
//	{Mondays : during : Januarys : during : 1993/YEARS}
//
// inlines to
//
//	{([1]/DAYS:during:WEEKS) : during : ([1]/MONTHS:during:YEARS) : during : 1993/YEARS}
//
// and factorizes to
//
//	{([1]/DAYS:during:WEEKS) : during : [1]/MONTHS : during : 1993/YEARS}
func TestFigure2Factorization(t *testing.T) {
	scripts := parseScriptMap(t, map[string]string{
		"Mondays":  "[1]/DAYS:during:WEEKS;",
		"Januarys": "[1]/MONTHS:during:YEARS;",
	})
	e := mustExpr(t, "Mondays:during:Januarys:during:1993/YEARS")
	inlined, err := Inline(e, scripts)
	if err != nil {
		t.Fatal(err)
	}
	wantInitial := "([1]/(DAYS:during:WEEKS)):during:(([1]/(MONTHS:during:YEARS)):during:(1993/YEARS))"
	if inlined.String() != wantInitial {
		t.Errorf("inlined = %s\nwant      %s", inlined, wantInitial)
	}
	if NodeCount(inlined) != 12 {
		t.Errorf("initial node count = %d", NodeCount(inlined))
	}

	factored := Factorize(inlined, KindMap{})
	wantFactored := "([1]/(DAYS:during:WEEKS)):during:([1]/(MONTHS:during:(1993/YEARS)))"
	if factored.String() != wantFactored {
		t.Errorf("factored = %s\nwant       %s", factored, wantFactored)
	}
	if NodeCount(factored) >= NodeCount(inlined) {
		t.Errorf("factorization should shrink the tree: %d -> %d",
			NodeCount(inlined), NodeCount(factored))
	}
}

// Example 2 of §3.4: "Third week in January 1993".
//
//	{Third_Weeks : during : Januarys : during : 1993/YEARS}
//
// with Third_Weeks = [3]/WEEKS:overlaps:MONTHS factorizes in two steps to
//
//	{[3]/WEEKS : overlaps : [1]/MONTHS : during : 1993/YEARS}
func TestFigure3Factorization(t *testing.T) {
	scripts := parseScriptMap(t, map[string]string{
		"Third_Weeks": "[3]/WEEKS:overlaps:MONTHS;",
		"Januarys":    "[1]/MONTHS:during:YEARS;",
	})
	e := mustExpr(t, "Third_Weeks:during:Januarys:during:1993/YEARS")
	inlined, err := Inline(e, scripts)
	if err != nil {
		t.Fatal(err)
	}
	factored := Factorize(inlined, KindMap{})
	want := "[3]/(WEEKS:overlaps:([1]/(MONTHS:during:(1993/YEARS))))"
	if factored.String() != want {
		t.Errorf("factored = %s\nwant       %s", factored, want)
	}
	// The selection wrapper [3]/ survived the rewrite at the outer level.
	if _, ok := factored.(*SelectExpr); !ok {
		t.Errorf("root = %T, want selection", factored)
	}
}

func TestFactorizeRequiresMatchingGranularity(t *testing.T) {
	// gran(WEEKS) != gran([1]/MONTHS:during:1993/YEARS): no rewrite.
	e := mustExpr(t, "([1]/DAYS:during:WEEKS):during:([1]/MONTHS:during:1993/YEARS)")
	factored := Factorize(e, KindMap{})
	if factored.String() != e.String() {
		t.Errorf("expression should not factorize further: %s -> %s", e, factored)
	}
}

func TestFactorizeRequiresSubset(t *testing.T) {
	// Z = OTHER_YEARS has the right granularity but is not derived from
	// YEARS, so Z ∈ Y fails and no rewrite happens.
	kinds := KindMap{"OTHER_YEARS": chronology.Year}
	e := mustExpr(t, "(MONTHS:during:YEARS):during:OTHER_YEARS")
	factored := Factorize(e, kinds)
	if factored.String() != e.String() {
		t.Errorf("unexpected rewrite: %s -> %s", e, factored)
	}
}

func TestFactorizeSubsetThroughOperators(t *testing.T) {
	// Z derived from Y by selection, label selection, during-foreach and
	// intersects all satisfy Z ∈ Y.
	cases := []string{
		"(MONTHS:during:YEARS):during:([2]/YEARS)",
		"(MONTHS:during:YEARS):during:(1993/YEARS)",
		"(MONTHS:during:YEARS):during:(YEARS:during:DECADES)",
		"(MONTHS:during:YEARS):during:(YEARS:intersects:YEARS)",
		"(MONTHS:during:YEARS):during:(YEARS.overlaps.DECADES)",
	}
	for _, src := range cases {
		e := mustExpr(t, src)
		factored := Factorize(e, KindMap{})
		if strings.Contains(factored.String(), ":during:YEARS)") {
			t.Errorf("%q did not factorize: %s", src, factored)
		}
	}
	// Strict overlaps trims elements, so it does not preserve membership.
	e := mustExpr(t, "(MONTHS:during:YEARS):during:(YEARS:overlaps:DECADES)")
	if got := Factorize(e, KindMap{}); got.String() != e.String() {
		t.Errorf("strict overlaps should not satisfy subset: %s", got)
	}
}

func TestFactorizeBeforeEqualsException(t *testing.T) {
	// The paper: "except when Op1 is <= and Op2 is <=. In the latter case,
	// the expression is reduced to {X : Op2 : Z}".
	e := mustExpr(t, "(DAYS:<=:YEARS):<=:(1993/YEARS)")
	factored := Factorize(e, KindMap{})
	want := "DAYS:<=:(1993/YEARS)"
	if factored.String() != want {
		t.Errorf("factored = %s, want %s", factored, want)
	}
}

func TestFactorizeNestedUnderSetOps(t *testing.T) {
	e := mustExpr(t, "((MONTHS:during:YEARS):during:(1993/YEARS)) + ((MONTHS:during:YEARS):during:(1994/YEARS))")
	factored := Factorize(e, KindMap{})
	want := "(MONTHS:during:(1993/YEARS)) + (MONTHS:during:(1994/YEARS))"
	if factored.String() != want {
		t.Errorf("factored = %s\nwant       %s", factored, want)
	}
}

func TestInlineOpaqueAndMissing(t *testing.T) {
	scripts := parseScriptMap(t, map[string]string{
		"EMP_DAYS": "{x = [n]/DAYS:during:MONTHS; return (x);}", // multi-stmt: opaque
	})
	e := mustExpr(t, "EMP_DAYS:during:1993/YEARS")
	inlined, err := Inline(e, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if inlined.String() != e.String() {
		t.Errorf("opaque derivation should not inline: %s", inlined)
	}
}

func TestInlineDetectsRecursion(t *testing.T) {
	scripts := parseScriptMap(t, map[string]string{
		"A": "B:during:YEARS;",
		"B": "A:during:YEARS;",
	})
	if _, err := Inline(mustExpr(t, "A"), scripts); err == nil {
		t.Error("mutually recursive derivations should fail")
	}
	self := parseScriptMap(t, map[string]string{"S": "S:during:YEARS;"})
	if _, err := Inline(mustExpr(t, "S"), self); err == nil {
		t.Error("self-recursive derivation should fail")
	}
}

func TestInlineWalksAllNodes(t *testing.T) {
	scripts := parseScriptMap(t, map[string]string{"Zq": "[1]/MONTHS;"})
	srcs := []string{
		"Zq + Zq",
		"Zq - Zq",
		"Zq:intersects:Zq",
		"[2]/Zq",
		"1993/Zq",
		"caloperate(Zq, 3)",
	}
	for _, src := range srcs {
		inlined, err := Inline(mustExpr(t, src), scripts)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if strings.Contains(inlined.String(), "Zq") {
			t.Errorf("%q: Zq not inlined: %s", src, inlined)
		}
	}
}

func TestElemKind(t *testing.T) {
	kinds := KindMap{"HOLIDAYS": chronology.Day, "Expiration-Month": chronology.Month}
	cases := map[string]chronology.Granularity{
		"WEEKS":                        chronology.Week,
		"[3]/WEEKS:overlaps:MONTHS":    chronology.Week,
		"1993/YEARS":                   chronology.Year,
		"HOLIDAYS":                     chronology.Day,
		"HOLIDAYS + HOLIDAYS":          chronology.Day,
		"HOLIDAYS:intersects:HOLIDAYS": chronology.Day,
		"generate(YEARS, DAYS, A, B)":  chronology.Year,
		"[1]/MONTHS:during:1993/YEARS": chronology.Month,
	}
	for src, want := range cases {
		g, ok := ElemKind(mustExpr(t, src), kinds)
		if !ok || g != want {
			t.Errorf("ElemKind(%q) = %v,%v, want %v", src, g, ok, want)
		}
	}
	if _, ok := ElemKind(mustExpr(t, "mystery"), kinds); ok {
		t.Error("unknown ident should have no kind")
	}
	if _, ok := ElemKind(mustExpr(t, "caloperate(MONTHS, 3)"), kinds); ok {
		t.Error("caloperate result kind is unknown")
	}
}

func TestAnalyze(t *testing.T) {
	kinds := KindMap{"HOLIDAYS": chronology.Day}
	e := mustExpr(t, "([1]/DAYS:during:WEEKS):during:([1]/MONTHS:during:(1993/YEARS)) - HOLIDAYS")
	a := Analyze(e, kinds)
	if a.TickGran != chronology.Day {
		t.Errorf("TickGran = %v", a.TickGran)
	}
	if len(a.Shared) != 0 {
		t.Errorf("Shared = %v", a.Shared)
	}
	e = mustExpr(t, "(DAYS:during:MONTHS) + (DAYS:during:WEEKS)")
	a = Analyze(e, kinds)
	if len(a.Shared) != 1 || a.Shared[0] != "DAYS" {
		t.Errorf("Shared = %v (DAYS occurs twice)", a.Shared)
	}
	e = mustExpr(t, "mystery:during:WEEKS")
	a = Analyze(e, kinds)
	if len(a.Unknown) != 1 || a.Unknown[0] != "mystery" {
		t.Errorf("Unknown = %v", a.Unknown)
	}
}

func TestAnalyzeScript(t *testing.T) {
	kinds := KindMap{"HOLIDAYS": chronology.Day, "AM_BUS_DAYS": chronology.Day}
	s := mustScript(t, `{LDOM = [n]/DAYS:during:MONTHS;
		LDOM_HOL = LDOM:intersects:HOLIDAYS;
		LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
		return (LDOM - LDOM_HOL + LAST_BUS_DAY);}`)
	a := AnalyzeScript(s, kinds)
	if a.TickGran != chronology.Day {
		t.Errorf("TickGran = %v", a.TickGran)
	}
	// LDOM and LDOM_HOL are script temporaries, not external references.
	for _, name := range []string{"LDOM", "LDOM_HOL", "LAST_BUS_DAY"} {
		if _, ok := a.Refs[name]; ok {
			t.Errorf("temporary %s counted as external reference", name)
		}
	}
	if a.Refs["DAYS"] != 1 || a.Refs["HOLIDAYS"] != 1 || a.Refs["AM_BUS_DAYS"] != 1 {
		t.Errorf("Refs = %v", a.Refs)
	}
}

func TestAnalyzeDefaultsToDays(t *testing.T) {
	a := Analyze(mustExpr(t, "mystery"), KindMap{})
	if a.TickGran != chronology.Day {
		t.Errorf("default TickGran = %v, want DAYS", a.TickGran)
	}
}
