// Package callang implements the calendar expression language of §3.3 of the
// paper: a lexer, a recursive-descent parser producing printable parse trees
// (Figures 2 and 3), the derived-calendar inliner, and the factorization
// optimizer of §3.4.
package callang

import "fmt"

// Kind classifies lexical tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	STRING
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	LPAREN   // (
	RPAREN   // )
	COLON    // :
	DOT      // .
	SLASH    // /
	PLUS     // +
	MINUS    // -
	ASSIGN   // =
	SEMI     // ;
	COMMA    // ,
	LT       // <
	LE       // <=
	KWIF     // if
	KWELSE   // else
	KWWHILE  // while
	KWRETURN // return
)

var kindNames = map[Kind]string{
	EOF: "end of input", IDENT: "identifier", INT: "integer", STRING: "string",
	LBRACE: "'{'", RBRACE: "'}'", LBRACKET: "'['", RBRACKET: "']'",
	LPAREN: "'('", RPAREN: "')'", COLON: "':'", DOT: "'.'", SLASH: "'/'",
	PLUS: "'+'", MINUS: "'-'", ASSIGN: "'='", SEMI: "';'", COMMA: "','",
	LT: "'<'", LE: "'<='", KWIF: "'if'", KWELSE: "'else'",
	KWWHILE: "'while'", KWRETURN: "'return'",
}

// String names the token kind for error messages.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a 1-based line/column source position.
type Pos struct {
	Line, Col int
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string // identifier name, integer literal, or string contents
	Num  int64  // value when Kind == INT
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return t.Text
	case STRING:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}
