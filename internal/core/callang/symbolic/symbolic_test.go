package symbolic_test

import (
	"math/rand"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/callang"
	"calsys/internal/core/callang/symbolic"
	"calsys/internal/core/interval"
	"calsys/internal/core/periodic"
	"calsys/internal/core/plan"
)

func testEnv(t *testing.T) (*plan.Env, *plan.MapCatalog) {
	t.Helper()
	ch := chronology.MustNew(chronology.DefaultEpoch)
	cat := plan.NewMapCatalog()
	return &plan.Env{Chron: ch, Cat: cat}, cat
}

func define(t *testing.T, cat *plan.MapCatalog, name, src string, g chronology.Granularity) {
	t.Helper()
	s, err := callang.ParseScript(src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	cat.Scripts[name] = s
	cat.Kinds[name] = g
}

func expr(t *testing.T, src string) callang.Expr {
	t.Helper()
	e, err := callang.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func offWin(lo, hi int64) interval.Interval {
	return interval.Interval{Lo: chronology.TickFromOffset(lo), Hi: chronology.TickFromOffset(hi)}
}

// filterOverlapping keeps the intervals overlapping win, preserving order
// and duplicates.
func filterOverlapping(ivs []interval.Interval, win interval.Interval) []interval.Interval {
	var out []interval.Interval
	for _, iv := range ivs {
		if iv.Hi >= win.Lo && iv.Lo <= win.Hi {
			out = append(out, iv)
		}
	}
	return out
}

func sameIntervals(t *testing.T, got, want []interval.Interval, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d intervals, want %d\ngot:  %v\nwant: %v", ctx, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: interval %d: got %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

// The property suite: for every expression shape, the symbolically lowered
// pattern expands to exactly what full plan evaluation materializes, on the
// interior of every random window (a margin absorbs generation-edge effects:
// groups straddling the window's edge are incomplete in the materialized
// oracle but not in the infinite symbolic list).
func TestSymbolicMatchesMaterialized(t *testing.T) {
	shapes := []string{
		"DAYS",
		"WEEKS",
		"MONTHS",
		"DAYS:during:WEEKS",
		"DAYS:during:MONTHS",
		"DAYS:meets:WEEKS",
		"WEEKS:overlaps:MONTHS",
		"WEEKS.overlaps.MONTHS",
		"[1]/DAYS:during:WEEKS",
		"[2]/DAYS:during:WEEKS",
		"[n]/DAYS:during:MONTHS",
		"[-1]/DAYS:during:MONTHS",
		"[1,3,5]/DAYS:during:WEEKS",
		"[2-4]/DAYS:during:WEEKS",
		"[1]/WEEKS:overlaps:MONTHS",
		"[1]/WEEKS.overlaps.MONTHS",
		"([1]/DAYS:during:WEEKS) + ([3]/DAYS:during:WEEKS)",
		"(DAYS:during:WEEKS) - ([1]/DAYS:during:WEEKS)",
		"([1]/DAYS:during:WEEKS):intersects:([1,2]/DAYS:during:WEEKS)",
		"[1]/MONTHS:during:YEARS",
		"Tuesdays",
		"[1]/Workweek",
		// End-relative selections over before/before-equals groupings:
		// counting from the end of the unbounded prefix is
		// window-independent (ForeachSelectEnd), unlike the flattened
		// groupings themselves. The paper's [n]/X:<:Y idiom.
		"[n]/DAYS:<:WEEKS",
		"[n]/DAYS:<=:WEEKS",
		"[-1]/DAYS:<:MONTHS",
		"[-2]/DAYS:<=:MONTHS",
		"[n]/DAYS.<.WEEKS",
		"[n]/WEEKS:<:MONTHS",
		"[n]/WEEKS:<=:MONTHS",
		"[n]/Tuesdays:<:MONTHS",
		"[n]/(([1]/DAYS:during:WEEKS):<=:MONTHS)",
	}
	env, cat := testEnv(t)
	define(t, cat, "Tuesdays", "[2]/DAYS:during:WEEKS;", chronology.Day)
	define(t, cat, "Workweek", "DAYS:during:WEEKS;", chronology.Day)
	rng := rand.New(rand.NewSource(59))
	const margin = 64
	for _, src := range shapes {
		e := expr(t, src)
		prepped, gran, err := plan.Prepare(env, e, nil)
		if err != nil {
			t.Fatalf("prepare %q: %v", src, err)
		}
		pat, ok := symbolic.Eval(env.Chron, cat, e, gran)
		if !ok {
			t.Fatalf("%q: no symbolic form", src)
		}
		// The raw and the prepared (inlined, factorized) forms must lower to
		// the same element list — vet analyzes one, the scheduler the other.
		ppat, pok := symbolic.Eval(env.Chron, cat, prepped, gran)
		if !pok || !periodic.SameList(pat, ppat) {
			t.Fatalf("%q: prepared form lowers differently (ok=%v)", src, pok)
		}
		for trial := 0; trial < 12; trial++ {
			lo := int64(rng.Intn(20000) - 5000)
			win := offWin(lo, lo+300+int64(rng.Intn(1500)))
			inner := offWin(lo+margin, chronology.OffsetFromTick(win.Hi)-margin)
			oracle, err := plan.EvaluateWindow(env, e, gran, win)
			if err != nil {
				t.Fatalf("evaluate %q: %v", src, err)
			}
			want := filterOverlapping(oracle.Flatten().Intervals(), inner)
			var got []interval.Interval
			if pat != nil {
				got = filterOverlapping(pat.Expand(inner), inner)
			}
			sameIntervals(t, got, want, src+" over "+win.String())
		}
	}
}

// Provable emptiness: the calculus returns nil with ok=true, and the
// materialized evaluation agrees on every window.
func TestSymbolicProvesEmptiness(t *testing.T) {
	empties := []string{
		"DAYS - DAYS",
		"MONTHS - DAYS",
		"(DAYS - DAYS):intersects:WEEKS",
		"WEEKS:intersects:(DAYS - DAYS)",
		"(DAYS - DAYS):during:WEEKS",
		"[1]/(DAYS - DAYS):during:WEEKS",
	}
	env, cat := testEnv(t)
	for _, src := range empties {
		e := expr(t, src)
		_, gran, err := plan.Prepare(env, e, nil)
		if err != nil {
			t.Fatalf("prepare %q: %v", src, err)
		}
		pat, ok := symbolic.Eval(env.Chron, cat, e, gran)
		if !ok {
			t.Fatalf("%q: no symbolic form", src)
		}
		if pat != nil {
			t.Fatalf("%q: not proven empty: %v", src, pat)
		}
		oracle, err := plan.EvaluateWindow(env, e, gran, offWin(0, 600))
		if err != nil {
			t.Fatalf("evaluate %q: %v", src, err)
		}
		// Away from the window's edges (where the materialized subtrahend is
		// incomplete) the oracle must agree the value is empty.
		if got := filterOverlapping(oracle.Flatten().Intervals(), offWin(64, 536)); len(got) != 0 {
			t.Fatalf("%q: oracle disagrees, got %v", src, got)
		}
	}
}

// Window-anchored and non-symbolic constructs must fall back, never
// misreport.
func TestSymbolicFallsBack(t *testing.T) {
	env, cat := testEnv(t)
	define(t, cat, "Boot", "x = DAYS; return (x);", chronology.Day)
	for _, src := range []string{
		"[2]/DAYS",                    // order-1 selection counts from the window edge
		"today",                       // runtime binding
		"today + DAYS",                // contaminated composition
		"1993/YEARS",                  // label selection: one finite unit
		"Boot",                        // multi-statement derivation
		"HOLIDAYS",                    // stored calendar (not in catalog scripts)
		"interval(1, 7)",              // literal calendar
		"generate(DAYS, WEEKS, 1, 4)", // truncating surface call
		"DAYS:<:WEEKS",                // flattened before grouping: window-anchored prefix
		"DAYS.<=.MONTHS",              // same, relaxed
		"[1]/DAYS:<:WEEKS",            // front-anchored selection over an unbounded prefix
		"[2-4]/DAYS:<=:WEEKS",         // range with positive endpoints: front-anchored
	} {
		e := expr(t, src)
		if _, ok := symbolic.Eval(env.Chron, cat, e, chronology.Day); ok {
			t.Fatalf("%q: expected fallback", src)
		}
	}
}

// Cross-granularity equivalence keys: expressions denoting the same element
// list key identically, whatever granularity they are written at.
func TestKeys(t *testing.T) {
	env, cat := testEnv(t)
	ch := env.Chron
	keyOf := func(src string) string {
		t.Helper()
		e := expr(t, src)
		_, gran, err := plan.Prepare(env, e, nil)
		if err != nil {
			t.Fatalf("prepare %q: %v", src, err)
		}
		k, ok := symbolic.ListKey(ch, cat, e, gran)
		if !ok {
			t.Fatalf("%q: no list key", src)
		}
		return k
	}
	if a, b := keyOf("DAYS"), keyOf("DAYS:during:WEEKS"); a != b {
		t.Errorf("DAYS vs DAYS:during:WEEKS keys differ:\n%s\n%s", a, b)
	}
	if a, b := keyOf("DAYS"), keyOf("[1]/DAYS:during:WEEKS"); a == b {
		t.Errorf("DAYS vs Mondays keys should differ, both %s", a)
	}
	if k := keyOf("DAYS - DAYS"); k != symbolic.EmptyKey {
		t.Errorf("empty list key = %q, want %q", k, symbolic.EmptyKey)
	}

	fkeyOf := func(src string) string {
		t.Helper()
		e := expr(t, src)
		_, gran, err := plan.Prepare(env, e, nil)
		if err != nil {
			t.Fatalf("prepare %q: %v", src, err)
		}
		k, ok := symbolic.FiringKey(ch, cat, e, gran)
		if !ok {
			t.Fatalf("%q: no firing key", src)
		}
		return k
	}
	// A daily rule and a first-hour-of-day rule fire at the same instants.
	if a, b := fkeyOf("DAYS"), fkeyOf("[1]/HOURS:during:DAYS"); a != b {
		t.Errorf("daily vs first-hour firing keys differ:\n%s\n%s", a, b)
	}
	if a, b := fkeyOf("DAYS"), fkeyOf("[2]/HOURS:during:DAYS"); a == b {
		t.Errorf("daily vs second-hour firing keys should differ, both %s", a)
	}
}

// GroupCards must agree with the materialized group sizes.
func TestGroupCards(t *testing.T) {
	env, cat := testEnv(t)
	fe, ok := expr(t, "DAYS:during:MONTHS").(*callang.ForeachExpr)
	if !ok {
		t.Fatal("not a foreach")
	}
	min, max, ok := symbolic.GroupCards(env.Chron, cat, fe, chronology.Day)
	if !ok || min != 28 || max != 31 {
		t.Fatalf("days during months: got (%d, %d, %v), want (28, 31, true)", min, max, ok)
	}
}
