// Package symbolic lowers calendar expressions to periodic patterns at
// compile time: the symbolic pattern calculus of the calvet CV010–CV013
// diagnostics and the scheduler's exact fast path.
//
// Eval walks an expression bottom-up, composing periodic.Pattern values
// through the window-independent operators — basic-calendar generation,
// union, difference, point-set intersection, during/overlaps/meets foreach
// groupings and their per-group selections — without materializing a single
// interval list. The result is the expression's infinite element list in
// closed form: expanding it over any window equals evaluating the expression
// over that window (away from generation-edge effects), which makes
// emptiness, equivalence, and selection-cardinality questions decidable
// before any evaluation runs.
//
// The calculus is deliberately partial. Window-anchored constructs (`today`,
// order-1 selections, flattened before/before-equals groupings, label
// selections, stored calendars, multi-statement derivations) have no
// window-independent element list, and some compositions have no compact
// periodic form; Eval reports ok=false for these and callers fall back to
// materialization. A nil pattern with ok=true is a proof that the expression
// is empty everywhere. End-relative selections over before/before-equals
// groupings ([n]/(X:<:Y), negative positions, all-negative ranges) are the
// exception: counting from the end of an unbounded prefix is
// window-independent, so they lower (ForeachSelectEnd).
package symbolic

import (
	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
	"calsys/internal/core/periodic"
)

// Catalog resolves calendar names during lowering. Both the database manager
// and the vet analyzer's catalogs satisfy it.
type Catalog interface {
	// DerivationOf returns the parsed derivation script of a derived
	// calendar.
	DerivationOf(name string) (*callang.Script, bool)
	// ElemKindOf returns the element kind of a named calendar.
	ElemKindOf(name string) (chronology.Granularity, bool)
}

// maxDepth bounds derivation-chain recursion (cyclic catalogs would
// otherwise loop forever).
const maxDepth = 32

// Eval lowers e — an expression whose evaluation ticks have granularity
// gran — to the symbolic pattern of its flattened element list, in tick
// offsets of gran. ok=false means the expression has no symbolic form and
// the caller must materialize; a nil pattern with ok=true proves the
// expression empty on every window.
func Eval(ch *chronology.Chronology, cat Catalog, e callang.Expr, gran chronology.Granularity) (*periodic.Pattern, bool) {
	return EvalOpaque(ch, cat, e, gran, nil)
}

// EvalOpaque is Eval with an opacity predicate: names for which opaque
// returns true are never symbolically inlined even when their derivation is
// a single expression (the plan layer passes lifespan-bounded calendars,
// whose materialized value is clipped and therefore not periodic).
func EvalOpaque(ch *chronology.Chronology, cat Catalog, e callang.Expr, gran chronology.Granularity, opaque func(name string) bool) (*periodic.Pattern, bool) {
	l := &lowerer{ch: ch, cat: cat, gran: gran, opaque: opaque}
	return l.lower(e, 0)
}

type lowerer struct {
	ch     *chronology.Chronology
	cat    Catalog
	gran   chronology.Granularity
	opaque func(name string) bool
}

func (l *lowerer) lower(e callang.Expr, depth int) (*periodic.Pattern, bool) {
	if depth > maxDepth {
		return nil, false
	}
	switch n := e.(type) {
	case *callang.Ident:
		if g, err := chronology.ParseGranularity(n.Name); err == nil {
			p, err := periodic.ForBasicPair(l.ch, g, l.gran)
			if err != nil {
				return nil, false
			}
			return p, true
		}
		inner, ok := l.inlined(n.Name)
		if !ok {
			return nil, false
		}
		return l.lower(inner, depth+1)
	case *callang.ForeachExpr:
		x, ok := l.lower(n.X, depth+1)
		if !ok {
			return nil, false
		}
		y, ok := l.lower(n.Y, depth+1)
		if !ok {
			return nil, false
		}
		return periodic.ForeachFlat(x, y, n.Op, n.Strict)
	case *callang.IntersectExpr:
		x, ok := l.lower(n.X, depth+1)
		if !ok {
			return nil, false
		}
		y, ok := l.lower(n.Y, depth+1)
		if !ok {
			return nil, false
		}
		return periodic.SetIntersect(x, y)
	case *callang.BinExpr:
		x, ok := l.lower(n.X, depth+1)
		if !ok {
			return nil, false
		}
		y, ok := l.lower(n.Y, depth+1)
		if !ok {
			return nil, false
		}
		switch n.Op {
		case '+':
			return periodic.SetUnion(x, y)
		case '-':
			return periodic.SetDiff(x, y)
		}
		return nil, false
	case *callang.SelectExpr:
		// Only per-group selection over a foreach grouping is
		// window-independent; [k]/DAYS counts from the evaluation window's
		// edge and has no symbolic form. Peel derived-calendar names the same
		// way the plan inliner would, so [2]/WORKWEEK sees the grouping.
		fe, ok := l.resolveForeach(n.X, depth+1)
		if !ok {
			return nil, false
		}
		if n.Pred.Check() != nil {
			return nil, false
		}
		x, ok := l.lower(fe.X, depth+1)
		if !ok {
			return nil, false
		}
		y, ok := l.lower(fe.Y, depth+1)
		if !ok {
			return nil, false
		}
		if fe.Op == interval.Before || fe.Op == interval.BeforeEquals {
			// A before/before-equals grouping collects an unbounded prefix —
			// its flattened value is window-anchored — but a selection that
			// counts only from the end of each group ([n], negative
			// positions, all-negative ranges) is window-independent: the
			// k-th-from-last element before each y is fixed index arithmetic
			// on x. The paper's [n]/AM_BUS_DAYS:<:LDOM_HOL idiom lands here.
			ends, ok := endOffsets(n.Pred)
			if !ok {
				return nil, false
			}
			return periodic.ForeachSelectEnd(x, y, fe.Op, fe.Strict, ends)
		}
		return periodic.ForeachSelect(x, y, fe.Op, fe.Strict, n.Pred.Indices)
	}
	// today, numbers, strings, label selections, generate()/caloperate()
	// calls: window-anchored or non-calendar — no symbolic form.
	return nil, false
}

// endOffsets translates a selection predicate into negative end-relative
// member offsets (−1 the last member, −2 the one before it, …) when every
// term counts from the end of the group: [n] → −1, a negative position → the
// position, an all-negative range → its offsets in ascending order. Any term
// anchored to the front of the group — a positive position or a range with a
// positive endpoint — reports ok=false: over an unbounded-prefix grouping
// such a selection is window-anchored and must materialize.
func endOffsets(s calendar.Selection) ([]int, bool) {
	out := make([]int, 0, len(s.Items))
	for _, it := range s.Items {
		switch {
		case it.Last:
			out = append(out, -1)
		case it.Range:
			if it.From >= 0 || it.To >= 0 {
				return nil, false
			}
			for o := it.From; o <= it.To; o++ {
				out = append(out, o)
			}
		case it.Pos < 0:
			out = append(out, it.Pos)
		default:
			return nil, false
		}
	}
	return out, true
}

// resolveForeach peels single-expression derivation names off e until a
// foreach grouping (or anything else) surfaces.
func (l *lowerer) resolveForeach(e callang.Expr, depth int) (*callang.ForeachExpr, bool) {
	for d := depth; d <= maxDepth; d++ {
		switch n := e.(type) {
		case *callang.ForeachExpr:
			return n, true
		case *callang.Ident:
			inner, ok := l.inlined(n.Name)
			if !ok {
				return nil, false
			}
			e = inner
		default:
			return nil, false
		}
	}
	return nil, false
}

// inlined returns the single-expression derivation body of a non-opaque
// derived calendar, mirroring the plan inliner's eligibility rules.
func (l *lowerer) inlined(name string) (callang.Expr, bool) {
	if l.cat == nil {
		return nil, false
	}
	if l.opaque != nil && l.opaque(name) {
		return nil, false
	}
	script, ok := l.cat.DerivationOf(name)
	if !ok {
		return nil, false
	}
	return script.SingleExpr()
}

// GroupCards returns the exact minimum and maximum group cardinality the
// foreach grouping fe ever produces, when both operands lower symbolically.
// A selection position beyond max provably never selects anything (CV012);
// positions within [1, min] always do.
func GroupCards(ch *chronology.Chronology, cat Catalog, fe *callang.ForeachExpr, gran chronology.Granularity) (min, max int, ok bool) {
	l := &lowerer{ch: ch, cat: cat, gran: gran}
	x, ok := l.lower(fe.X, 0)
	if !ok {
		return 0, 0, false
	}
	y, ok := l.lower(fe.Y, 0)
	if !ok {
		return 0, 0, false
	}
	return periodic.ForeachCards(x, y, fe.Op)
}

// EmptyKey is the equivalence key of the provably empty element list.
const EmptyKey = "empty"

// ListKey returns a cross-granularity equivalence key for the expression's
// element list: the canonical string of the list re-expressed in epoch
// seconds. Two expressions with equal keys cover the same elements on every
// window, whatever granularities they were written in. ok=false means the
// expression (or the seconds conversion) has no symbolic form.
func ListKey(ch *chronology.Chronology, cat Catalog, e callang.Expr, gran chronology.Granularity) (string, bool) {
	p, ok := Eval(ch, cat, e, gran)
	if !ok {
		return "", false
	}
	return secondsKey(ch, p, gran, false)
}

// FiringKey returns a cross-granularity key for the instants at which a
// temporal rule over the expression fires: the canonical seconds pattern of
// the element starts. Rules with equal firing keys fire at identical
// instants and can be merged.
func FiringKey(ch *chronology.Chronology, cat Catalog, e callang.Expr, gran chronology.Granularity) (string, bool) {
	p, ok := Eval(ch, cat, e, gran)
	if !ok {
		return "", false
	}
	return secondsKey(ch, p, gran, true)
}

func secondsKey(ch *chronology.Chronology, p *periodic.Pattern, gran chronology.Granularity, starts bool) (string, bool) {
	sp, ok := p.InSeconds(ch, gran)
	if !ok {
		return "", false
	}
	if sp == nil {
		return EmptyKey, true
	}
	if starts {
		// Starts after the seconds conversion, so a daily rule and an
		// hourly rule that both fire at midnight get the same key.
		sp = sp.Starts()
	}
	return sp.Canonical().String(), true
}
