package callang

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("[2]/DAYS:during:WEEKS")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{LBRACKET, INT, RBRACKET, SLASH, IDENT, COLON, IDENT, COLON, IDENT, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[1].Num != 2 || toks[4].Text != "DAYS" {
		t.Error("token payloads wrong")
	}
}

func TestLexListOpsAndKeywords(t *testing.T) {
	toks, err := LexAll("if (a:<=:b) return (x); else while (c:<:d) ;")
	if err != nil {
		t.Fatal(err)
	}
	var sawLE, sawLT bool
	for _, tok := range toks {
		switch tok.Kind {
		case LE:
			sawLE = true
		case LT:
			sawLT = true
		}
	}
	if !sawLE || !sawLT {
		t.Error("listops < and <= not lexed")
	}
	if toks[0].Kind != KWIF {
		t.Error("if keyword not recognized")
	}
}

func TestLexHyphenGluing(t *testing.T) {
	// Glued hyphens continue identifiers; spaced hyphens are operators.
	toks, err := LexAll("Expiration-Month Jan-1993 LDOM - LDOM_HOL + LAST_BUS_DAY")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "Expiration-Month" || toks[1].Text != "Jan-1993" {
		t.Errorf("glued identifiers wrong: %v %v", toks[0], toks[1])
	}
	want := []Kind{IDENT, IDENT, IDENT, MINUS, IDENT, PLUS, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", got, want)
		}
	}
}

func TestLexNegativeSelection(t *testing.T) {
	toks, err := LexAll("[-7]/AM_BUS_DAYS")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{LBRACKET, MINUS, INT, RBRACKET, SLASH, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", got, want)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll("a /* commentary\nwith newline */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("comment not skipped: %v", toks)
	}
	if _, err := LexAll("a /* unterminated"); err == nil {
		t.Error("unterminated comment should fail")
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := LexAll(`return ("LAST TRADING DAY");`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != STRING || toks[2].Text != "LAST TRADING DAY" {
		t.Errorf("string token = %v", toks[2])
	}
	if _, err := LexAll(`"unterminated`); err == nil {
		t.Error("unterminated string should fail")
	}
	toks, err = LexAll(`"esc\"aped"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != `esc"aped` {
		t.Errorf("escape wrong: %q", toks[0].Text)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := LexAll("a ? b"); err == nil {
		t.Error("unexpected character should fail")
	}
	if _, err := LexAll("123abc"); err == nil {
		t.Error("malformed number should fail")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("positions = %v, %v", toks[0].Pos, toks[1].Pos)
	}
	if toks[1].Pos.String() != "2:3" {
		t.Errorf("Pos.String = %q", toks[1].Pos.String())
	}
}
