package callang

import (
	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

// KindResolver reports the element kind of a named calendar: the basic
// granularity its elements are units of (WEEKS elements are weeks even when
// their ticks are expressed in days). Basic calendar names resolve to
// themselves; the catalog supplies kinds for stored and derived calendars.
type KindResolver interface {
	ElemKindOf(name string) (chronology.Granularity, bool)
}

// KindMap is a KindResolver over a map. Basic calendar names are always
// resolved, even with an empty map.
type KindMap map[string]chronology.Granularity

// ElemKindOf implements KindResolver.
func (m KindMap) ElemKindOf(name string) (chronology.Granularity, bool) {
	if g, err := chronology.ParseGranularity(name); err == nil {
		return g, true
	}
	g, ok := m[name]
	return g, ok
}

// ElemKind computes the element kind of an expression, per the factorization
// rule's granularity comparison ("if the granularity of Y and Z are the
// same"). Selection and foreach preserve the kind of their subject calendar.
func ElemKind(e Expr, kinds KindResolver) (chronology.Granularity, bool) {
	switch n := e.(type) {
	case *Ident:
		return kinds.ElemKindOf(n.Name)
	case *SelectExpr:
		return ElemKind(n.X, kinds)
	case *LabelSelExpr:
		return ElemKind(n.X, kinds)
	case *ForeachExpr:
		return ElemKind(n.X, kinds)
	case *IntersectExpr:
		return ElemKind(n.X, kinds)
	case *BinExpr:
		return ElemKind(n.X, kinds)
	case *CallExpr:
		if n.Name == "generate" && len(n.Args) >= 1 {
			return ElemKind(n.Args[0], kinds)
		}
		return 0, false
	}
	return 0, false
}

// equalExpr compares expressions structurally via their canonical rendering.
func equalExpr(a, b Expr) bool { return a.String() == b.String() }

// SubsetOf conservatively decides the rule's "Z ∈ Y" condition: every
// element of Z is an element of Y. It holds when Z is Y itself, a selection
// over something subset of Y, a during-foreach over something subset of Y
// (during keeps elements whole), any relaxed foreach over a subset of Y, or
// an intersection with one side subset of Y.
func SubsetOf(z, y Expr) bool {
	if equalExpr(z, y) {
		return true
	}
	switch n := z.(type) {
	case *SelectExpr:
		return SubsetOf(n.X, y)
	case *LabelSelExpr:
		return SubsetOf(n.X, y)
	case *ForeachExpr:
		if n.Op == interval.During || !n.Strict {
			return SubsetOf(n.X, y)
		}
		return false
	case *IntersectExpr:
		return SubsetOf(n.X, y) || SubsetOf(n.Y, y)
	}
	return false
}

// Factorize applies the rewrite rule of the parsing algorithm (§3.4) until a
// fixpoint:
//
//	{(X : Op1 : Y) : Op2 : Z}  →  {X : Op1 : Z}
//
// when gran(Y) = gran(Z) and Z ∈ Y — "except when Op1 is ≤ and Op2 is ≤; in
// the latter case the expression is reduced to {X : Op2 : Z}". The rule also
// fires through selection wrappers, as in the paper's Example 2 where X is
// [3]/WEEKS.
func Factorize(e Expr, kinds KindResolver) Expr {
	for {
		out, changed := factorizeOnce(e, kinds)
		if !changed {
			return out
		}
		e = out
	}
}

func factorizeOnce(e Expr, kinds KindResolver) (Expr, bool) {
	switch n := e.(type) {
	case *Ident, *Number, *StringLit:
		return e, false
	case *SelectExpr:
		x, ch := factorizeOnce(n.X, kinds)
		if ch {
			return &SelectExpr{Pred: n.Pred, X: x, Pos: n.Pos}, true
		}
		return n, false
	case *LabelSelExpr:
		x, ch := factorizeOnce(n.X, kinds)
		if ch {
			return &LabelSelExpr{Num: n.Num, X: x, Pos: n.Pos}, true
		}
		return n, false
	case *IntersectExpr:
		x, chx := factorizeOnce(n.X, kinds)
		y, chy := factorizeOnce(n.Y, kinds)
		if chx || chy {
			return &IntersectExpr{X: x, Y: y, Pos: n.Pos}, true
		}
		return n, false
	case *BinExpr:
		x, chx := factorizeOnce(n.X, kinds)
		y, chy := factorizeOnce(n.Y, kinds)
		if chx || chy {
			return &BinExpr{Op: n.Op, X: x, Y: y, Pos: n.Pos}, true
		}
		return n, false
	case *CallExpr:
		changed := false
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			fa, ch := factorizeOnce(a, kinds)
			args[i] = fa
			changed = changed || ch
		}
		if changed {
			return &CallExpr{Name: n.Name, Args: args, Pos: n.Pos}, true
		}
		return n, false
	case *ForeachExpr:
		if out, ok := applyRule(n, kinds); ok {
			return out, true
		}
		x, chx := factorizeOnce(n.X, kinds)
		y, chy := factorizeOnce(n.Y, kinds)
		if chx || chy {
			return &ForeachExpr{X: x, Op: n.Op, Strict: n.Strict, Y: y, Pos: n.Pos}, true
		}
		return n, false
	}
	return e, false
}

// peelWrappers strips selection wrappers off an expression, returning the
// wrapped core and the wrappers outermost-first.
func peelWrappers(e Expr) (Expr, []Expr) {
	var wrappers []Expr
	cur := e
	for {
		switch w := cur.(type) {
		case *SelectExpr:
			wrappers = append(wrappers, w)
			cur = w.X
		case *LabelSelExpr:
			wrappers = append(wrappers, w)
			cur = w.X
		default:
			return cur, wrappers
		}
	}
}

// isBeforeOp reports whether op is one of the paper's ordering operators <
// and <=, the ops named by the §3.4 exception.
func isBeforeOp(op interval.ListOp) bool {
	return op == interval.Before || op == interval.BeforeEquals
}

// RuleMatch reports whether the §3.4 factorization preconditions hold at the
// root of outer: outer.X is (possibly selection-wrapped) an inner foreach
// {X : Op1 : Y}, gran(Y) = gran(Z), and Z ∈ Y. It returns the inner foreach
// when they do.
func RuleMatch(outer *ForeachExpr, kinds KindResolver) (*ForeachExpr, bool) {
	cur, _ := peelWrappers(outer.X)
	inner, ok := cur.(*ForeachExpr)
	if !ok {
		return nil, false
	}
	y, z := inner.Y, outer.Y
	gy, oky := ElemKind(y, kinds)
	gz, okz := ElemKind(z, kinds)
	if !oky || !okz || gy != gz {
		return nil, false
	}
	if !SubsetOf(z, y) {
		return nil, false
	}
	return inner, true
}

// BlockedByBeforeException reports whether the §3.4 rewrite at the root of
// outer matches the rule's preconditions but is withheld because of the
// paper's `<`/`<=` exception: when both operators order elements (`<` or
// `<=`) the only combination the paper sanctions is ≤/≤ (reduced to
// {X : Op2 : Z}); any other mix of ordering operators is left untouched, as
// the rewrite would change which elements precede which.
func BlockedByBeforeException(outer *ForeachExpr, kinds KindResolver) bool {
	inner, ok := RuleMatch(outer, kinds)
	if !ok {
		return false
	}
	if !isBeforeOp(inner.Op) || !isBeforeOp(outer.Op) {
		return false
	}
	return !(inner.Op == interval.BeforeEquals && outer.Op == interval.BeforeEquals)
}

// applyRule attempts the factorization rewrite at the root of outer, peeling
// selection wrappers off the left operand to expose the inner foreach.
func applyRule(outer *ForeachExpr, kinds KindResolver) (Expr, bool) {
	inner, ok := RuleMatch(outer, kinds)
	if !ok {
		return nil, false
	}
	if BlockedByBeforeException(outer, kinds) {
		return nil, false
	}
	_, wrappers := peelWrappers(outer.X)
	z := outer.Y
	op := inner.Op
	if inner.Op == interval.BeforeEquals && outer.Op == interval.BeforeEquals {
		// The paper's stated exception: reduce to {X : Op2 : Z}.
		op = outer.Op
	}
	rewritten := Expr(&ForeachExpr{X: inner.X, Op: op, Strict: inner.Strict, Y: z, Pos: inner.Pos})
	// Re-apply the peeled selection wrappers innermost-first.
	for i := len(wrappers) - 1; i >= 0; i-- {
		switch w := wrappers[i].(type) {
		case *SelectExpr:
			rewritten = &SelectExpr{Pred: w.Pred, X: rewritten, Pos: w.Pos}
		case *LabelSelExpr:
			rewritten = &LabelSelExpr{Num: w.Num, X: rewritten, Pos: w.Pos}
		}
	}
	return rewritten, true
}
