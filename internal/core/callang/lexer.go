package callang

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer splits calendar-language source into tokens. Identifiers may contain
// hyphens when written without surrounding spaces (the paper writes
// Expiration-Month and Jan-1993); a '-' with whitespace on either side is the
// calendar difference operator. Comments are /* ... */.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

var keywords = map[string]Kind{
	"if":     KWIF,
	"else":   KWELSE,
	"while":  KWWHILE,
	"return": KWRETURN,
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekByteAt(k int) byte {
	if lx.off+k >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+k]
}

func (lx *Lexer) advance() byte {
	b := lx.src[lx.off]
	lx.off++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }
func isDigit(b byte) bool { return b >= '0' && b <= '9' }
func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}
func isIdentPart(b byte) bool { return isIdentStart(b) || isDigit(b) }

// skipTrivia consumes whitespace and comments.
func (lx *Lexer) skipTrivia() error {
	for lx.off < len(lx.src) {
		b := lx.peekByte()
		switch {
		case isSpace(b):
			lx.advance()
		case b == '/' && lx.peekByteAt(1) == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return fmt.Errorf("callang: %v: unterminated comment", start)
				}
				if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipTrivia(); err != nil {
		return Token{}, err
	}
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	b := lx.peekByte()
	switch {
	case isIdentStart(b):
		return lx.lexIdent(p), nil
	case isDigit(b):
		return lx.lexInt(p)
	case b == '"':
		return lx.lexString(p)
	}
	lx.advance()
	single := map[byte]Kind{
		'{': LBRACE, '}': RBRACE, '[': LBRACKET, ']': RBRACKET,
		'(': LPAREN, ')': RPAREN, ':': COLON, '.': DOT, '/': SLASH,
		'+': PLUS, '-': MINUS, '=': ASSIGN, ';': SEMI, ',': COMMA,
	}
	if b == '<' {
		if lx.peekByte() == '=' {
			lx.advance()
			return Token{Kind: LE, Text: "<=", Pos: p}, nil
		}
		return Token{Kind: LT, Text: "<", Pos: p}, nil
	}
	if k, ok := single[b]; ok {
		return Token{Kind: k, Text: string(b), Pos: p}, nil
	}
	return Token{}, fmt.Errorf("callang: %v: unexpected character %q", p, string(b))
}

func (lx *Lexer) lexIdent(p Pos) Token {
	var sb strings.Builder
	for lx.off < len(lx.src) {
		b := lx.peekByte()
		if isIdentPart(b) {
			sb.WriteByte(lx.advance())
			continue
		}
		// A hyphen glued between identifier characters or digits continues
		// the identifier ("Expiration-Month", "Jan-1993"); "A - B" is the
		// difference operator.
		if b == '-' && (isIdentPart(lx.peekByteAt(1))) {
			sb.WriteByte(lx.advance())
			continue
		}
		break
	}
	text := sb.String()
	if kk, ok := keywords[text]; ok {
		return Token{Kind: kk, Text: text, Pos: p}
	}
	return Token{Kind: IDENT, Text: text, Pos: p}
}

func (lx *Lexer) lexInt(p Pos) (Token, error) {
	var sb strings.Builder
	for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
		sb.WriteByte(lx.advance())
	}
	// "1993-01-02" style date fragments are not integers; the parser never
	// needs them, so a digit run followed by an identifier char is an error.
	if lx.off < len(lx.src) && isIdentStart(lx.peekByte()) {
		return Token{}, fmt.Errorf("callang: %v: malformed number %q", p, sb.String()+string(lx.peekByte()))
	}
	n, err := strconv.ParseInt(sb.String(), 10, 64)
	if err != nil {
		return Token{}, fmt.Errorf("callang: %v: integer %q out of range", p, sb.String())
	}
	return Token{Kind: INT, Text: sb.String(), Num: n, Pos: p}, nil
}

func (lx *Lexer) lexString(p Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, fmt.Errorf("callang: %v: unterminated string", p)
		}
		b := lx.advance()
		if b == '"' {
			return Token{Kind: STRING, Text: sb.String(), Pos: p}, nil
		}
		if b == '\\' && lx.off < len(lx.src) {
			sb.WriteByte(lx.advance())
			continue
		}
		sb.WriteByte(b)
	}
}

// LexAll tokenizes the whole input (testing convenience).
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
