package callang

import (
	"fmt"
	"strings"
)

// ScriptLookup resolves a derived calendar's derivation script. The database
// catalog (table CALENDARS) implements this; tests use maps.
type ScriptLookup interface {
	// DerivationOf returns the parsed derivation script of a derived
	// calendar, or ok=false if name is not a derived calendar (it may then
	// be a basic calendar, a stored calendar, or a script temporary).
	DerivationOf(name string) (*Script, bool)
}

// ScriptMap is a ScriptLookup over a map (testing convenience).
type ScriptMap map[string]*Script

// DerivationOf implements ScriptLookup.
func (m ScriptMap) DerivationOf(name string) (*Script, bool) {
	s, ok := m[name]
	return s, ok
}

// maxInlineDepth bounds derivation chains to catch mutually recursive
// calendar definitions.
const maxInlineDepth = 32

// Inline implements the first step of the parsing algorithm of §3.4: "When a
// derived calendar is encountered, replace it by its derivation script."
// Only derivations consisting of a single expression are inlined; calendars
// derived by multi-statement scripts (with if/while) stay opaque references
// evaluated through their own plans.
func Inline(e Expr, lookup ScriptLookup) (Expr, error) {
	return inlineRec(e, lookup, nil, 0)
}

// CyclePath renders a derivation cycle like "A → B → A" for error messages
// and diagnostics: the chain of calendar names, closed with the repeated
// name.
func CyclePath(path []string) string { return strings.Join(path, " → ") }

// onPath reports whether name is already on the in-progress derivation
// chain.
func onPath(path []string, name string) bool {
	for _, p := range path {
		if p == name {
			return true
		}
	}
	return false
}

func inlineRec(e Expr, lookup ScriptLookup, path []string, depth int) (Expr, error) {
	if depth > maxInlineDepth {
		return nil, fmt.Errorf("callang: derivation chain deeper than %d (recursive calendar definition?): %s",
			maxInlineDepth, CyclePath(path))
	}
	switch n := e.(type) {
	case *Ident:
		script, ok := lookup.DerivationOf(n.Name)
		if !ok {
			return n, nil
		}
		body, single := script.SingleExpr()
		if !single {
			return n, nil
		}
		if onPath(path, n.Name) {
			return nil, fmt.Errorf("callang: calendar %q is defined in terms of itself: %s",
				n.Name, CyclePath(append(path, n.Name)))
		}
		return inlineRec(body, lookup, append(path, n.Name), depth+1)
	case *Number, *StringLit:
		return e, nil
	case *ForeachExpr:
		x, err := inlineRec(n.X, lookup, path, depth+1)
		if err != nil {
			return nil, err
		}
		y, err := inlineRec(n.Y, lookup, path, depth+1)
		if err != nil {
			return nil, err
		}
		return &ForeachExpr{X: x, Op: n.Op, Strict: n.Strict, Y: y, Pos: n.Pos}, nil
	case *IntersectExpr:
		x, err := inlineRec(n.X, lookup, path, depth+1)
		if err != nil {
			return nil, err
		}
		y, err := inlineRec(n.Y, lookup, path, depth+1)
		if err != nil {
			return nil, err
		}
		return &IntersectExpr{X: x, Y: y, Pos: n.Pos}, nil
	case *SelectExpr:
		x, err := inlineRec(n.X, lookup, path, depth+1)
		if err != nil {
			return nil, err
		}
		return &SelectExpr{Pred: n.Pred, X: x, Pos: n.Pos}, nil
	case *LabelSelExpr:
		x, err := inlineRec(n.X, lookup, path, depth+1)
		if err != nil {
			return nil, err
		}
		return &LabelSelExpr{Num: n.Num, X: x, Pos: n.Pos}, nil
	case *BinExpr:
		x, err := inlineRec(n.X, lookup, path, depth+1)
		if err != nil {
			return nil, err
		}
		y, err := inlineRec(n.Y, lookup, path, depth+1)
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: n.Op, X: x, Y: y, Pos: n.Pos}, nil
	case *CallExpr:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			ia, err := inlineRec(a, lookup, path, depth+1)
			if err != nil {
				return nil, err
			}
			args[i] = ia
		}
		return &CallExpr{Name: n.Name, Args: args, Pos: n.Pos}, nil
	}
	return nil, fmt.Errorf("callang: inline: unknown expression node %T", e)
}
