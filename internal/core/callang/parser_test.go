package callang

import (
	"strings"
	"testing"

	"calsys/internal/core/interval"
)

func mustExpr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func mustScript(t *testing.T, src string) *Script {
	t.Helper()
	s, err := ParseScript(src)
	if err != nil {
		t.Fatalf("ParseScript(%q): %v", src, err)
	}
	return s
}

func TestParseForeachRightAssociative(t *testing.T) {
	e := mustExpr(t, "Mondays:during:Januarys:during:Year1993")
	// Right-associative: Mondays : during : (Januarys : during : Year1993).
	outer, ok := e.(*ForeachExpr)
	if !ok {
		t.Fatalf("root = %T", e)
	}
	if outer.X.(*Ident).Name != "Mondays" {
		t.Error("left operand wrong")
	}
	inner, ok := outer.Y.(*ForeachExpr)
	if !ok {
		t.Fatalf("right operand = %T, want nested foreach", outer.Y)
	}
	if inner.X.(*Ident).Name != "Januarys" || inner.Y.(*Ident).Name != "Year1993" {
		t.Error("inner operands wrong")
	}
	if !outer.Strict || !inner.Strict {
		t.Error("':' chains are strict")
	}
}

func TestParseRelaxedForeach(t *testing.T) {
	e := mustExpr(t, "WEEKS.overlaps.Jan-1993")
	f, ok := e.(*ForeachExpr)
	if !ok || f.Strict || f.Op != interval.Overlaps {
		t.Fatalf("got %#v", e)
	}
	if _, err := ParseExpr("WEEKS.overlaps:Jan-1993"); err == nil {
		t.Error("mismatched separators should fail")
	}
}

func TestParseSelectionBindsLoosely(t *testing.T) {
	// [2]/DAYS:during:WEEKS = [2]/(DAYS:during:WEEKS): Figure 1's Tuesdays.
	e := mustExpr(t, "[2]/DAYS:during:WEEKS")
	sel, ok := e.(*SelectExpr)
	if !ok {
		t.Fatalf("root = %T", e)
	}
	if _, ok := sel.X.(*ForeachExpr); !ok {
		t.Fatalf("selection subject = %T, want foreach", sel.X)
	}
	if sel.Pred.String() != "[2]" {
		t.Errorf("pred = %v", sel.Pred)
	}
}

func TestParseSelectionForms(t *testing.T) {
	cases := map[string]string{
		"[n]/C":     "[n]",
		"[-7]/C":    "[-7]",
		"[1,3,5]/C": "[1,3,5]",
		"[2-5]/C":   "[2-5]",
		"[1,n]/C":   "[1,n]",
		"[-3--1]/C": "[-3--1]",
	}
	for src, want := range cases {
		e := mustExpr(t, src)
		sel, ok := e.(*SelectExpr)
		if !ok {
			t.Errorf("%q: root = %T", src, e)
			continue
		}
		if sel.Pred.String() != want {
			t.Errorf("%q: pred = %v, want %v", src, sel.Pred, want)
		}
	}
}

func TestParseLabelSelection(t *testing.T) {
	e := mustExpr(t, "1993/YEARS")
	l, ok := e.(*LabelSelExpr)
	if !ok || l.Num != 1993 || l.X.(*Ident).Name != "YEARS" {
		t.Fatalf("got %#v", e)
	}
	// Nested inside a chain.
	e = mustExpr(t, "Mondays:during:1993/YEARS")
	f := e.(*ForeachExpr)
	if _, ok := f.Y.(*LabelSelExpr); !ok {
		t.Errorf("chain right operand = %T", f.Y)
	}
}

func TestParseIntersectsAndSetOps(t *testing.T) {
	e := mustExpr(t, "LDOM:intersects:HOLIDAYS")
	if _, ok := e.(*IntersectExpr); !ok {
		t.Fatalf("got %T", e)
	}
	e = mustExpr(t, "LDOM - LDOM_HOL + LAST_BUS_DAY")
	// Left-associative additive: (LDOM - LDOM_HOL) + LAST_BUS_DAY.
	add, ok := e.(*BinExpr)
	if !ok || add.Op != '+' {
		t.Fatalf("got %#v", e)
	}
	sub, ok := add.X.(*BinExpr)
	if !ok || sub.Op != '-' {
		t.Fatalf("left = %#v", add.X)
	}
	if _, err := ParseExpr("A:intersects.B"); err == nil {
		t.Error("mismatched intersects separators should fail")
	}
	if _, err := ParseExpr("A.intersects.B"); err == nil {
		t.Error("relaxed intersects should fail")
	}
}

func TestParseCalls(t *testing.T) {
	e := mustExpr(t, `generate(YEARS, DAYS, "Jan 1 1987", "Jan 3 1992")`)
	c, ok := e.(*CallExpr)
	if !ok || c.Name != "generate" || len(c.Args) != 4 {
		t.Fatalf("got %#v", e)
	}
	if c.Args[2].(*StringLit).Val != "Jan 1 1987" {
		t.Error("string arg wrong")
	}
	e = mustExpr(t, "caloperate(MONTHS, 3)")
	c = e.(*CallExpr)
	if c.Args[1].(*Number).Val != 3 {
		t.Error("int arg wrong")
	}
	e = mustExpr(t, "interval(-4, 3)")
	c = e.(*CallExpr)
	if c.Args[0].(*Number).Val != -4 {
		t.Error("negative int arg wrong")
	}
}

// The EMP-DAYS script of §3.3 parses into three assignments and a return.
func TestParsePaperEmpDaysScript(t *testing.T) {
	src := `{LDOM = [n]/DAYS:during:MONTHS;
	LDOM_HOL = LDOM:intersects:HOLIDAYS;
	LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
	return (LDOM - LDOM_HOL + LAST_BUS_DAY);}`
	s := mustScript(t, src)
	if len(s.Stmts) != 4 {
		t.Fatalf("stmt count = %d", len(s.Stmts))
	}
	if a, ok := s.Stmts[0].(*AssignStmt); !ok || a.Name != "LDOM" {
		t.Errorf("stmt 0 = %v", s.Stmts[0])
	}
	if _, ok := s.Stmts[3].(*ReturnStmt); !ok {
		t.Errorf("stmt 3 = %v", s.Stmts[3])
	}
	lb := s.Stmts[2].(*AssignStmt)
	f := lb.X.(*SelectExpr).X.(*ForeachExpr)
	if f.Op != interval.Before {
		t.Errorf("LAST_BUS_DAY op = %v", f.Op)
	}
}

// The option-expiration script of §3.3 (if/else with comments).
func TestParsePaperOptionScript(t *testing.T) {
	src := `{Fridays = [5]/DAYS:during:WEEKS;
	temp1 = [3]/Fridays:overlaps:Expiration-Month;
	/* 3rd Friday of the expiration month */
	if (temp1:intersects:HOLIDAYS) /* if holiday */
		return([n]/AM_BUS_DAYS:<:temp1);
	else
		return(temp1);}`
	s := mustScript(t, src)
	if len(s.Stmts) != 3 {
		t.Fatalf("stmt count = %d", len(s.Stmts))
	}
	ifs, ok := s.Stmts[2].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 2 = %T", s.Stmts[2])
	}
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Error("if branches wrong")
	}
	if _, ok := ifs.Cond.(*IntersectExpr); !ok {
		t.Errorf("cond = %T", ifs.Cond)
	}
}

// The last-trading-day script of §3.3 (while with empty body).
func TestParsePaperWhileScript(t *testing.T) {
	src := `{ temp1 = [n]/AM_BUS_DAYS:during:Expiration-Month;
	temp2 = [-7]/AM_BUS_DAYS:<:temp1;
	while (today:<:temp2) ; /* do nothing */
	return ("LAST TRADING DAY");}`
	s := mustScript(t, src)
	if len(s.Stmts) != 4 {
		t.Fatalf("stmt count = %d", len(s.Stmts))
	}
	w, ok := s.Stmts[2].(*WhileStmt)
	if !ok {
		t.Fatalf("stmt 2 = %T", s.Stmts[2])
	}
	if len(w.Body) != 0 {
		t.Error("while body should be empty")
	}
	r := s.Stmts[3].(*ReturnStmt)
	if r.X.(*StringLit).Val != "LAST TRADING DAY" {
		t.Error("alert string wrong")
	}
}

func TestParseIfWithBlocks(t *testing.T) {
	s := mustScript(t, `{if (A) { x = B; y = C; } else { z = D; }}`)
	ifs := s.Stmts[0].(*IfStmt)
	if len(ifs.Then) != 2 || len(ifs.Else) != 1 {
		t.Errorf("block sizes: then=%d else=%d", len(ifs.Then), len(ifs.Else))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                    // empty
		"{}",                  // empty script
		"[0]/C",               // selection position 0
		"[1",                  // unterminated predicate
		"A:during",            // missing right operand and separator
		"A:bogus:B",           // unknown listop
		"A::B",                // missing op
		"x = ;",               // missing expression
		"return A;",           // return needs parentheses
		"if A return(B);",     // if needs parentheses
		"A:during:B",          // expression is not a script statement without ';' -- wait, scripts need ';'
		"{x = A}",             // missing semicolon
		"while (A) { x = B; ", // unterminated block
		"A + ;",               // dangling operator
		"(A",                  // unterminated paren
		"f(A, ",               // unterminated call
	}
	for _, src := range bad {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("ParseScript(%q) should fail", src)
		}
	}
	if _, err := ParseExpr("A B"); err == nil {
		t.Error("trailing tokens after expression should fail")
	}
	if _, err := ParseExpr("A ? B"); err == nil {
		t.Error("lexical errors should surface through ParseExpr")
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	srcs := []string{
		"[2]/DAYS:during:WEEKS",
		"[3]/WEEKS:overlaps:MONTHS",
		"Mondays:during:Januarys:during:1993/YEARS",
		"WEEKS.overlaps.Jan-1993",
		"LDOM - LDOM_HOL + LAST_BUS_DAY",
		"LDOM:intersects:HOLIDAYS",
		"[n]/AM_BUS_DAYS:<:temp1",
		"[-7]/AM_BUS_DAYS:<=:temp1",
		`generate(YEARS, DAYS, "Jan 1 1987", "Jan 3 1992")`,
	}
	for _, src := range srcs {
		e := mustExpr(t, src)
		again := mustExpr(t, e.String())
		if e.String() != again.String() {
			t.Errorf("%q: render %q re-parses as %q", src, e.String(), again.String())
		}
	}
}

func TestScriptStringRoundTrip(t *testing.T) {
	src := `{LDOM = [n]/DAYS:during:MONTHS;
	if (LDOM:intersects:HOLIDAYS) return (A); else return (B);}`
	s := mustScript(t, src)
	again := mustScript(t, s.String())
	if s.String() != again.String() {
		t.Errorf("render %q re-parses as %q", s.String(), again.String())
	}
}

func TestTreeString(t *testing.T) {
	e := mustExpr(t, "[3]/WEEKS:overlaps:MONTHS")
	tree := TreeString(e)
	for _, want := range []string{"select [3]", "foreach overlaps (strict)", "WEEKS", "MONTHS"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	if NodeCount(e) != 4 {
		t.Errorf("NodeCount = %d, want 4", NodeCount(e))
	}
}

func TestSingleExpr(t *testing.T) {
	s := mustScript(t, "[2]/DAYS:during:WEEKS;")
	if _, ok := s.SingleExpr(); !ok {
		t.Error("bare expression script is single-expr")
	}
	s = mustScript(t, "return ([2]/DAYS:during:WEEKS);")
	if _, ok := s.SingleExpr(); !ok {
		t.Error("single return script is single-expr")
	}
	s = mustScript(t, "{x = A; return (x);}")
	if _, ok := s.SingleExpr(); ok {
		t.Error("multi-statement script is not single-expr")
	}
}
