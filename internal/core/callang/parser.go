package callang

import (
	"fmt"

	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

// Parser builds ASTs for calendar expressions and scripts.
//
// Grammar (selection binds loosely, foreach chains are right-associative):
//
//	script  = '{' stmt* '}' | stmt*
//	stmt    = ';'
//	        | 'return' '(' expr ')' ';'
//	        | 'if' '(' expr ')' action ['else' action]
//	        | 'while' '(' expr ')' action
//	        | IDENT '=' expr ';'
//	        | expr ';'
//	action  = stmt | '{' stmt* '}'
//	expr    = chain (('+'|'-') chain)*
//	chain   = '[' selpred ']' '/' chain
//	        | INT '/' chain
//	        | primary [(':' op ':' | '.' op '.') chain]
//	op      = 'overlaps' | 'during' | 'meets' | '<' | '<=' | 'intersects'
//	primary = IDENT ['(' expr (',' expr)* ')'] | '(' expr ')' | INT | STRING
//	selpred = selitem (',' selitem)*
//	selitem = 'n' | ['-'] INT ['-' ['-'] INT]
type Parser struct {
	toks []Token
	i    int
}

// NewParser tokenizes src and prepares a parser, reporting lexical errors.
func NewParser(src string) (*Parser, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// ParseExpr parses src as a single calendar expression.
func ParseExpr(src string) (Expr, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != EOF {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

// ParseDerivation parses a derivation script, also accepting a bare
// calendar expression without a trailing semicolon ("[2]/DAYS:during:WEEKS"
// is a valid derivation on its own).
func ParseDerivation(src string) (*Script, error) {
	s, serr := ParseScript(src)
	if serr == nil {
		return s, nil
	}
	e, eerr := ParseExpr(src)
	if eerr != nil {
		return nil, serr
	}
	return &Script{Stmts: []Stmt{&ExprStmt{X: e}}}, nil
}

// ParseScript parses src as a calendar script (the derivation-script of a
// calendar or the body of a temporal rule).
func ParseScript(src string) (*Script, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	braced := false
	if p.cur().Kind == LBRACE {
		p.next()
		braced = true
	}
	var stmts []Stmt
	for p.cur().Kind != EOF && p.cur().Kind != RBRACE {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			stmts = append(stmts, s)
		}
	}
	if braced {
		if p.cur().Kind != RBRACE {
			return nil, p.errf("expected '}' to close script, got %s", p.cur())
		}
		p.next()
	}
	if p.cur().Kind != EOF {
		return nil, p.errf("unexpected %s after script", p.cur())
	}
	if len(stmts) == 0 {
		return nil, p.errf("empty script")
	}
	return &Script{Stmts: stmts}, nil
}

func (p *Parser) cur() Token { return p.toks[p.i] }

func (p *Parser) peek() Token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errf("expected %s, got %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("callang: %v: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

// --- statements -------------------------------------------------------

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case SEMI:
		p.next()
		return nil, nil
	case KWRETURN:
		pos := p.next().Pos
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x, Pos: pos}, nil
	case KWIF:
		return p.parseIf()
	case KWWHILE:
		return p.parseWhile()
	case IDENT:
		if p.peek().Kind == ASSIGN {
			tok := p.next()
			p.next() // '='
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
			return &AssignStmt{Name: tok.Text, X: x, Pos: tok.Pos}, nil
		}
	}
	pos := p.cur().Pos
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x, Pos: pos}, nil
}

// parseAction parses the action of an if/while: one statement or a braced
// block. An immediate ';' is the empty action.
func (p *Parser) parseAction() ([]Stmt, error) {
	if p.cur().Kind == SEMI {
		p.next()
		return nil, nil
	}
	if p.cur().Kind == LBRACE {
		p.next()
		var stmts []Stmt
		for p.cur().Kind != RBRACE {
			if p.cur().Kind == EOF {
				return nil, p.errf("unterminated block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				stmts = append(stmts, s)
			}
		}
		p.next()
		return stmts, nil
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []Stmt{s}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.parseAction()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.cur().Kind == KWELSE {
		p.next()
		els, err = p.parseAction()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	pos := p.next().Pos // while
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseAction()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil
}

// --- expressions ------------------------------------------------------

func (p *Parser) parseExpr() (Expr, error) {
	x, err := p.parseChain()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == PLUS || p.cur().Kind == MINUS {
		op := byte('+')
		if p.cur().Kind == MINUS {
			op = '-'
		}
		opPos := p.next().Pos
		y, err := p.parseChain()
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: op, X: x, Y: y, Pos: opPos}
	}
	return x, nil
}

func (p *Parser) parseChain() (Expr, error) {
	switch {
	case p.cur().Kind == LBRACKET:
		predPos := p.cur().Pos
		pred, err := p.parseSelPred()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SLASH); err != nil {
			return nil, err
		}
		x, err := p.parseChain()
		if err != nil {
			return nil, err
		}
		return &SelectExpr{Pred: pred, X: x, Pos: predPos}, nil
	case p.cur().Kind == INT && p.peek().Kind == SLASH:
		tok := p.next()
		p.next() // '/'
		x, err := p.parseChain()
		if err != nil {
			return nil, err
		}
		return &LabelSelExpr{Num: tok.Num, X: x, Pos: tok.Pos}, nil
	}
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	sep := p.cur().Kind
	if sep != COLON && sep != DOT {
		return x, nil
	}
	p.next()
	opTok := p.next()
	var opName string
	switch opTok.Kind {
	case IDENT:
		opName = opTok.Text
	case LT:
		opName = "<"
	case LE:
		opName = "<="
	default:
		return nil, fmt.Errorf("callang: %v: expected listop, got %s", opTok.Pos, opTok)
	}
	if p.cur().Kind != sep {
		return nil, p.errf("foreach separators must match (use A:op:B or A.op.B)")
	}
	p.next()
	y, err := p.parseChain()
	if err != nil {
		return nil, err
	}
	if opName == "intersects" {
		if sep == DOT {
			return nil, fmt.Errorf("callang: %v: intersects takes ':' separators", opTok.Pos)
		}
		return &IntersectExpr{X: x, Y: y, Pos: opTok.Pos}, nil
	}
	op, err := interval.ParseListOp(opName)
	if err != nil {
		return nil, fmt.Errorf("callang: %v: %w", opTok.Pos, err)
	}
	return &ForeachExpr{X: x, Op: op, Strict: sep == COLON, Y: y, Pos: opTok.Pos}, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case IDENT:
		tok := p.next()
		if p.cur().Kind == LPAREN {
			p.next()
			var args []Expr
			if p.cur().Kind != RPAREN {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.cur().Kind != COMMA {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return &CallExpr{Name: tok.Text, Args: args, Pos: tok.Pos}, nil
		}
		return &Ident{Name: tok.Text, Pos: tok.Pos}, nil
	case LPAREN:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	case INT:
		tok := p.next()
		return &Number{Val: tok.Num, Pos: tok.Pos}, nil
	case MINUS:
		if p.peek().Kind == INT {
			pos := p.next().Pos
			return &Number{Val: -p.next().Num, Pos: pos}, nil
		}
		return nil, p.errf("unexpected '-'")
	case STRING:
		tok := p.next()
		return &StringLit{Val: tok.Text, Pos: tok.Pos}, nil
	}
	return nil, p.errf("unexpected %s in expression", p.cur())
}

func (p *Parser) parseSelPred() (calendar.Selection, error) {
	open, err := p.expect(LBRACKET)
	if err != nil {
		return calendar.Selection{}, err
	}
	var sel calendar.Selection
	for {
		item, err := p.parseSelItem()
		if err != nil {
			return calendar.Selection{}, err
		}
		sel.Items = append(sel.Items, item)
		if p.cur().Kind != COMMA {
			break
		}
		p.next()
	}
	if _, err := p.expect(RBRACKET); err != nil {
		return calendar.Selection{}, err
	}
	if err := sel.Check(); err != nil {
		return calendar.Selection{}, fmt.Errorf("callang: %v: %w", open.Pos, err)
	}
	return sel, nil
}

func (p *Parser) parseSelItem() (calendar.SelItem, error) {
	if p.cur().Kind == IDENT && p.cur().Text == "n" {
		p.next()
		return calendar.SelItem{Last: true}, nil
	}
	signedInt := func() (int, error) {
		neg := false
		if p.cur().Kind == MINUS {
			neg = true
			p.next()
		}
		t, err := p.expect(INT)
		if err != nil {
			return 0, err
		}
		v := int(t.Num)
		if neg {
			v = -v
		}
		return v, nil
	}
	from, err := signedInt()
	if err != nil {
		return calendar.SelItem{}, err
	}
	if p.cur().Kind == MINUS && (p.peek().Kind == INT || p.peek().Kind == MINUS) {
		p.next()
		to, err := signedInt()
		if err != nil {
			return calendar.SelItem{}, err
		}
		return calendar.SelItem{Range: true, From: from, To: to}, nil
	}
	return calendar.SelItem{Pos: from}, nil
}
