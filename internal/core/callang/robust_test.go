package callang

import (
	"math/rand"
	"strings"
	"testing"
)

// The parser must never panic: random byte soup, random token soup, and
// mutated valid expressions all either parse or return an error.
func TestParserNeverPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	rng := rand.New(rand.NewSource(1994))

	// Random bytes.
	alphabet := []byte("abzDAYS019[](){}/:.<=+-;,\"' \t\nduringoverlapsmeetsifwhilereturn")
	for i := 0; i < 3000; i++ {
		n := rng.Intn(60)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		src := string(buf)
		_, _ = ParseExpr(src)
		_, _ = ParseScript(src)
		_, _ = ParseDerivation(src)
	}

	// Mutations of valid inputs.
	seeds := []string{
		"[2]/DAYS:during:WEEKS",
		"Mondays:during:Januarys:during:1993/YEARS",
		"{LDOM = [n]/DAYS:during:MONTHS; return (LDOM - HOLIDAYS);}",
		`{if (A:intersects:B) return([n]/C:<:D); else return(E);}`,
		`{while (today:<:temp2) ; return ("LAST TRADING DAY");}`,
		`generate(YEARS, DAYS, "Jan 1 1987", "Jan 3 1992")`,
	}
	for _, seed := range seeds {
		for i := 0; i < 500; i++ {
			b := []byte(seed)
			for k := 0; k < rng.Intn(4)+1; k++ {
				switch rng.Intn(3) {
				case 0: // flip a byte
					if len(b) > 0 {
						b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
					}
				case 1: // delete a byte
					if len(b) > 1 {
						p := rng.Intn(len(b))
						b = append(b[:p], b[p+1:]...)
					}
				case 2: // duplicate a byte
					if len(b) > 0 {
						p := rng.Intn(len(b))
						b = append(b[:p+1], b[p:]...)
					}
				}
			}
			src := string(b)
			_, _ = ParseExpr(src)
			_, _ = ParseScript(src)
		}
	}
}

// Everything that parses renders to a string that re-parses to the same
// rendering (printer/parser agreement on arbitrary accepted inputs).
func TestPrinterParserAgreementOnRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("ABxy12[]()/:.<=+-; during overlaps")
	agreed := 0
	for i := 0; i < 5000; i++ {
		n := rng.Intn(40) + 1
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		src := string(buf)
		e, err := ParseExpr(src)
		if err != nil {
			continue
		}
		rendered := e.String()
		e2, err := ParseExpr(rendered)
		if err != nil {
			t.Fatalf("rendering %q of accepted input %q does not re-parse: %v", rendered, src, err)
		}
		if e2.String() != rendered {
			t.Fatalf("unstable rendering: %q -> %q", rendered, e2.String())
		}
		agreed++
	}
	if agreed == 0 {
		t.Error("no random inputs parsed; generator too hostile to be useful")
	}
}

// Deeply nested expressions neither crash nor hang.
func TestDeepNesting(t *testing.T) {
	deep := strings.Repeat("(", 2000) + "DAYS" + strings.Repeat(")", 2000)
	if _, err := ParseExpr(deep); err != nil {
		t.Errorf("deep parens should parse: %v", err)
	}
	chain := "DAYS" + strings.Repeat(":during:DAYS", 500)
	e, err := ParseExpr(chain)
	if err != nil {
		t.Fatalf("long chain: %v", err)
	}
	if NodeCount(e) != 1001 {
		t.Errorf("chain nodes = %d", NodeCount(e))
	}
	unclosed := strings.Repeat("(", 5000)
	if _, err := ParseExpr(unclosed); err == nil {
		t.Error("unclosed parens should fail")
	}
}
