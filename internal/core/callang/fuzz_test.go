package callang_test

import (
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/callang"
	calvet "calsys/internal/core/callang/vet"
)

// FuzzParseAndVet asserts the whole front end is panic-free: arbitrary
// input either fails to parse with an error or parses into a script the
// static analyzer handles without crashing. CI runs a short fuzz smoke
// (`make fuzz-smoke`) on every push; `go test -fuzz=FuzzParseAndVet` digs
// deeper locally.
func FuzzParseAndVet(f *testing.F) {
	for _, seed := range []string{
		"[2]/DAYS:during:WEEKS",
		"{LDOM = [n]/DAYS:during:MONTHS; return (LDOM);}",
		"{while (today:<:temp2) ; return (temp2);}",
		"(DAYS:<:WEEKS):<=:[1]/WEEKS",
		"WEEKS.overlaps.Jan-1993",
		"generate(DAYS, WEEKS, \"1993-01-04\", \"1993-01-04\")",
		"1993/YEARS",
		"0/DAYS:during:MONTHS",
		"[5-2,-3,n]/DAYS:during:MONTHS",
		"A + B - C:intersects:D",
		"{if (A) { x = B; } else { x = C; } return (x);}",
		"caloperate(interval(1, 30, DAYS))",
		"((((((((((DAYS))))))))))",
		"{return (X); Y = Z;}",
		"-- comment\nDAYS",
	} {
		f.Add(seed)
	}
	cat := &calvet.MapCatalog{
		Scripts: map[string]*callang.Script{},
		Kinds:   map[string]chronology.Granularity{"HOL": chronology.Day},
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, err := callang.ParseDerivation(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		diags := calvet.AnalyzeScript(script, cat, calvet.Options{SelfName: "FUZZ"})
		// Rendering must also be total.
		_ = diags.String()
		_ = script.String()
	})
}
