package callang

import (
	"fmt"
	"strings"

	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

// Expr is a calendar expression node.
type Expr interface {
	exprNode()
	// String renders canonical surface syntax.
	String() string
	// Children returns sub-expressions for tree walks and rendering.
	Children() []Expr
	// Label is the node's own caption in a parse tree (Figures 2-3).
	Label() string
}

// Ident references a calendar by name: a basic calendar (DAYS), a derived
// calendar (Tuesdays), a stored calendar (HOLIDAYS), a script temporary, or
// the runtime binding `today`.
type Ident struct {
	Name string
	Pos  Pos
}

// Number is an integer literal (selection labels, call arguments).
type Number struct {
	Val int64
	Pos Pos
}

// StringLit is a string literal (dates in calls, alert messages).
type StringLit struct {
	Val string
	Pos Pos
}

// ForeachExpr is the foreach operator {X : Op : Y} (strict) or {X . Op . Y}
// (relaxed). Pos is the position of the operator token.
type ForeachExpr struct {
	X      Expr
	Op     interval.ListOp
	Strict bool
	Y      Expr
	Pos    Pos
}

// IntersectExpr is {X : intersects : Y}: point-set intersection of two
// order-1 calendars (see the EMP-DAYS script of §3.3).
type IntersectExpr struct {
	X, Y Expr
	Pos  Pos
}

// SelectExpr is the selection operator [pred]/X. Pos is the position of the
// opening bracket.
type SelectExpr struct {
	Pred calendar.Selection
	X    Expr
	Pos  Pos
}

// LabelSelExpr is label-based selection such as 1993/YEARS, which selects
// the unit labeled 1993 rather than the 1993rd element.
type LabelSelExpr struct {
	Num int64
	X   Expr
	Pos Pos
}

// BinExpr is calendar union (+) or difference (-). Pos is the position of
// the operator token.
type BinExpr struct {
	Op   byte // '+' or '-'
	X, Y Expr
	Pos  Pos
}

// CallExpr invokes a built-in function: generate, caloperate, interval,
// points.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*Ident) exprNode()         {}
func (*Number) exprNode()        {}
func (*StringLit) exprNode()     {}
func (*ForeachExpr) exprNode()   {}
func (*IntersectExpr) exprNode() {}
func (*SelectExpr) exprNode()    {}
func (*LabelSelExpr) exprNode()  {}
func (*BinExpr) exprNode()       {}
func (*CallExpr) exprNode()      {}

func (e *Ident) String() string     { return e.Name }
func (e *Number) String() string    { return fmt.Sprintf("%d", e.Val) }
func (e *StringLit) String() string { return fmt.Sprintf("%q", e.Val) }

func (e *ForeachExpr) String() string {
	sep := ":"
	if !e.Strict {
		sep = "."
	}
	return fmt.Sprintf("%s%s%s%s%s", paren(e.X), sep, e.Op, sep, paren(e.Y))
}

func (e *IntersectExpr) String() string {
	return fmt.Sprintf("%s:intersects:%s", paren(e.X), paren(e.Y))
}

func (e *SelectExpr) String() string {
	return fmt.Sprintf("%s/%s", e.Pred, paren(e.X))
}

func (e *LabelSelExpr) String() string {
	return fmt.Sprintf("%d/%s", e.Num, paren(e.X))
}

func (e *BinExpr) String() string {
	return fmt.Sprintf("%s %c %s", paren(e.X), e.Op, paren(e.Y))
}

func (e *CallExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}

// paren wraps composite operands so rendered syntax re-parses with the same
// shape.
func paren(e Expr) string {
	switch e.(type) {
	case *Ident, *Number, *StringLit, *CallExpr:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// ExprPos returns the best-known source position of an expression: the
// node's own position when the parser recorded one, else the first recorded
// position among its descendants. Synthetic nodes (built by the inliner or
// the factorizer) may have no position at all, in which case the zero Pos is
// returned.
func ExprPos(e Expr) Pos {
	var p Pos
	switch n := e.(type) {
	case *Ident:
		p = n.Pos
	case *Number:
		p = n.Pos
	case *StringLit:
		p = n.Pos
	case *ForeachExpr:
		p = n.Pos
	case *IntersectExpr:
		p = n.Pos
	case *SelectExpr:
		p = n.Pos
	case *LabelSelExpr:
		p = n.Pos
	case *BinExpr:
		p = n.Pos
	case *CallExpr:
		p = n.Pos
	}
	if p != (Pos{}) {
		return p
	}
	for _, c := range e.Children() {
		if cp := ExprPos(c); cp != (Pos{}) {
			return cp
		}
	}
	return Pos{}
}

func (e *Ident) Children() []Expr         { return nil }
func (e *Number) Children() []Expr        { return nil }
func (e *StringLit) Children() []Expr     { return nil }
func (e *ForeachExpr) Children() []Expr   { return []Expr{e.X, e.Y} }
func (e *IntersectExpr) Children() []Expr { return []Expr{e.X, e.Y} }
func (e *SelectExpr) Children() []Expr    { return []Expr{e.X} }
func (e *LabelSelExpr) Children() []Expr  { return []Expr{e.X} }
func (e *BinExpr) Children() []Expr       { return []Expr{e.X, e.Y} }
func (e *CallExpr) Children() []Expr      { return e.Args }

func (e *Ident) Label() string     { return e.Name }
func (e *Number) Label() string    { return fmt.Sprintf("%d", e.Val) }
func (e *StringLit) Label() string { return fmt.Sprintf("%q", e.Val) }
func (e *ForeachExpr) Label() string {
	mode := "strict"
	if !e.Strict {
		mode = "relaxed"
	}
	return fmt.Sprintf("foreach %s (%s)", e.Op, mode)
}
func (e *IntersectExpr) Label() string { return "intersects" }
func (e *SelectExpr) Label() string    { return "select " + e.Pred.String() }
func (e *LabelSelExpr) Label() string  { return fmt.Sprintf("select label %d", e.Num) }
func (e *BinExpr) Label() string       { return string(e.Op) }
func (e *CallExpr) Label() string      { return e.Name + "()" }

// NodeCount returns the number of nodes in the expression tree; the paper's
// factorization claim (Figures 2-3) is that it shrinks this count.
func NodeCount(e Expr) int {
	n := 1
	for _, c := range e.Children() {
		n += NodeCount(c)
	}
	return n
}

// TreeString renders the parse tree in the style of Figures 2 and 3.
func TreeString(e Expr) string {
	var b strings.Builder
	renderTree(&b, e, "", true, true)
	return b.String()
}

func renderTree(b *strings.Builder, e Expr, prefix string, isLast, isRoot bool) {
	if isRoot {
		b.WriteString(e.Label())
		b.WriteByte('\n')
	} else {
		b.WriteString(prefix)
		if isLast {
			b.WriteString("└── ")
			prefix += "    "
		} else {
			b.WriteString("├── ")
			prefix += "│   "
		}
		b.WriteString(e.Label())
		b.WriteByte('\n')
	}
	kids := e.Children()
	for i, k := range kids {
		childPrefix := prefix
		if isRoot {
			childPrefix = ""
		}
		renderTree(b, k, childPrefix, i == len(kids)-1, false)
	}
}

// --- Statements -------------------------------------------------------

// Stmt is a calendar-script statement.
type Stmt interface {
	stmtNode()
	String() string
}

// AssignStmt binds a temporary calendar variable: name = expr;
type AssignStmt struct {
	Name string
	X    Expr
	Pos  Pos
}

// IfStmt is if (cond) action [else action]; a null (empty) calendar
// condition is false.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// WhileStmt is while (cond) action; the body may be empty (the paper's
// "do nothing" wait loop).
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Pos  Pos
}

// ReturnStmt yields the script's result: a calendar or an alert string.
type ReturnStmt struct {
	X   Expr
	Pos Pos
}

// ExprStmt evaluates an expression for effect (rare; kept for completeness).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// StmtPos returns the best-known source position of a statement, falling
// back to its expressions when the statement itself carries none.
func StmtPos(s Stmt) Pos {
	var p Pos
	var x Expr
	switch n := s.(type) {
	case *AssignStmt:
		p, x = n.Pos, n.X
	case *IfStmt:
		p, x = n.Pos, n.Cond
	case *WhileStmt:
		p, x = n.Pos, n.Cond
	case *ReturnStmt:
		p, x = n.Pos, n.X
	case *ExprStmt:
		p, x = n.Pos, n.X
	}
	if p != (Pos{}) || x == nil {
		return p
	}
	return ExprPos(x)
}

func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}

func (s *AssignStmt) String() string { return fmt.Sprintf("%s = %s;", s.Name, s.X) }
func (s *ReturnStmt) String() string { return fmt.Sprintf("return (%s);", s.X) }
func (s *ExprStmt) String() string   { return s.X.String() + ";" }

func (s *IfStmt) String() string {
	out := fmt.Sprintf("if (%s) %s", s.Cond, blockString(s.Then))
	if len(s.Else) > 0 {
		out += " else " + blockString(s.Else)
	}
	return out
}

func (s *WhileStmt) String() string {
	if len(s.Body) == 0 {
		return fmt.Sprintf("while (%s) ;", s.Cond)
	}
	return fmt.Sprintf("while (%s) %s", s.Cond, blockString(s.Body))
}

func blockString(ss []Stmt) string {
	if len(ss) == 1 {
		return ss[0].String()
	}
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = s.String()
	}
	return "{ " + strings.Join(parts, " ") + " }"
}

// Script is a parsed calendar script: the derivation-script column of the
// CALENDARS catalog.
type Script struct {
	Stmts []Stmt
}

// String renders the script in canonical surface syntax.
func (s *Script) String() string {
	parts := make([]string, len(s.Stmts))
	for i, st := range s.Stmts {
		parts[i] = st.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// SingleExpr reports whether the script consists of exactly one expression
// (optionally a single return), in which case derived-calendar references to
// it can be inlined for factorization.
func (s *Script) SingleExpr() (Expr, bool) {
	if len(s.Stmts) != 1 {
		return nil, false
	}
	switch st := s.Stmts[0].(type) {
	case *ReturnStmt:
		return st.X, true
	case *ExprStmt:
		return st.X, true
	}
	return nil, false
}
