// symbolic.go is the symbolic-calculus pass of calvet: CV010–CV013 plus the
// fleet-level catalog equivalence analysis. Where the passes of calvet.go
// reason syntactically, this pass lowers expressions to periodic patterns
// (internal/core/callang/symbolic) and decides emptiness, equivalence,
// subsumption, and exact group cardinalities on the patterns themselves —
// every verdict it reports is a proof about the infinite element list, not a
// heuristic about one window.
package calvet

import (
	"fmt"
	"sort"
	"strings"

	"calsys/internal/chronology"
	"calsys/internal/core/callang"
	"calsys/internal/core/callang/symbolic"
	"calsys/internal/core/periodic"
)

// defaultChron anchors symbolic analysis when Options.Chron is nil.
var defaultChron = chronology.MustNew(chronology.DefaultEpoch)

func (v *vetter) chron() *chronology.Chronology {
	if v.opts.Chron != nil {
		return v.opts.Chron
	}
	return defaultChron
}

// granOf picks the tick granularity at which to lower an expression — the
// same finest-unit rule the plan compiler uses. The choice only affects the
// lowering, not the verdicts: emptiness, cardinalities and the seconds-based
// equivalence keys are granularity-invariant.
func (v *vetter) granOf(e callang.Expr) chronology.Granularity {
	return callang.Analyze(e, v.cat).TickGran
}

// checkSymbolic runs the whole-script symbolic checks: CV010 (provably empty
// value) and CV011 (equivalent to an existing catalog definition) on
// single-expression scripts, and CV013 (subsumed union arm) on every union
// node of every statement.
func (v *vetter) checkSymbolic(s *callang.Script) {
	for _, st := range s.Stmts {
		v.walkUnions(st)
	}
	e, ok := s.SingleExpr()
	if !ok {
		return
	}
	pat, ok := symbolic.Eval(v.chron(), v.cat, e, v.granOf(e))
	if !ok {
		return
	}
	if pat == nil {
		v.report(callang.ExprPos(e), Warning, CodeEmptyCalendar,
			"calendar expression is provably empty on every window")
		return
	}
	v.checkEquivalent(e, pat)
}

// walkUnions visits every expression of a statement and checks its "+" nodes.
func (v *vetter) walkUnions(st callang.Stmt) {
	var exprs []callang.Expr
	switch n := st.(type) {
	case *callang.AssignStmt:
		exprs = []callang.Expr{n.X}
	case *callang.ReturnStmt:
		exprs = []callang.Expr{n.X}
	case *callang.ExprStmt:
		exprs = []callang.Expr{n.X}
	case *callang.IfStmt:
		exprs = []callang.Expr{n.Cond}
		for _, s := range append(append([]callang.Stmt{}, n.Then...), n.Else...) {
			v.walkUnions(s)
		}
	case *callang.WhileStmt:
		exprs = []callang.Expr{n.Cond}
		for _, s := range n.Body {
			v.walkUnions(s)
		}
	}
	for _, e := range exprs {
		walkExpr(e, func(x callang.Expr) {
			if b, ok := x.(*callang.BinExpr); ok && b.Op == '+' {
				v.checkUnionArms(b)
			}
		})
	}
}

func walkExpr(e callang.Expr, fn func(callang.Expr)) {
	fn(e)
	for _, c := range e.Children() {
		walkExpr(c, fn)
	}
}

// checkUnionArms is CV013: when both arms of a "+" lower symbolically and
// one arm's elements are all present in the other, the union adds nothing.
func (v *vetter) checkUnionArms(n *callang.BinExpr) {
	ch, gran := v.chron(), v.granOf(n)
	x, okx := symbolic.Eval(ch, v.cat, n.X, gran)
	if !okx {
		return
	}
	y, oky := symbolic.Eval(ch, v.cat, n.Y, gran)
	if !oky {
		return
	}
	u, ok := periodic.SetUnion(x, y)
	if !ok {
		return
	}
	sameX, sameY := periodic.SameList(u, x), periodic.SameList(u, y)
	switch {
	case sameX && sameY:
		v.report(n.Pos, Warning, CodeSubsumedArm,
			"both arms of \"+\" denote the same calendar; drop either arm")
	case sameX:
		v.report(n.Pos, Warning, CodeSubsumedArm,
			"right arm of \"+\" is subsumed: every element of %s is already in %s", n.Y, n.X)
	case sameY:
		v.report(n.Pos, Warning, CodeSubsumedArm,
			"left arm of \"+\" is subsumed: every element of %s is already in %s", n.X, n.Y)
	}
}

// NameLister is the optional Catalog extension CV011 and AnalyzeCatalog need:
// the full list of defined calendar names. caldb.Manager implements it.
type NameLister interface {
	Names() []string
}

// Names implements NameLister for the in-memory catalog.
func (m *MapCatalog) Names() []string {
	seen := map[string]bool{}
	var out []string
	for name := range m.Scripts {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for name := range m.Kinds {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// checkEquivalent is CV011: the definition under vet denotes exactly the
// same element list as one or more calendars already in the catalog.
func (v *vetter) checkEquivalent(e callang.Expr, pat *periodic.Pattern) {
	lister, ok := v.cat.(NameLister)
	if !ok || v.opts.SelfName == "" {
		return
	}
	key, ok := pat.InSeconds(v.chron(), v.granOf(e))
	if !ok || key == nil {
		return
	}
	selfKey := key.Canonical().String()
	var same []string
	for _, name := range lister.Names() {
		if strings.EqualFold(name, v.opts.SelfName) {
			continue
		}
		if k, ok := v.nameKey(name); ok && k == selfKey {
			same = append(same, name)
		}
	}
	if len(same) == 0 {
		return
	}
	sort.Strings(same)
	v.report(callang.ExprPos(e), Warning, CodeEquivalentDef,
		"expression is equivalent to the existing calendar %s; consider referencing it instead of redefining the set",
		strings.Join(same, ", "))
}

// nameKey is the catalog entry's seconds-canonical list key, when its
// derivation lowers symbolically.
func (v *vetter) nameKey(name string) (string, bool) {
	if _, isDerived := v.cat.DerivationOf(name); !isDerived {
		return "", false
	}
	ident := &callang.Ident{Name: name}
	k, ok := symbolic.ListKey(v.chron(), v.cat, ident, v.granOf(ident))
	return k, ok && k != symbolic.EmptyKey
}

// exactCards returns the exact group-cardinality range of a selection
// subject, when it is a foreach grouping whose operands lower symbolically.
func (v *vetter) exactCards(x callang.Expr) (min, max int, ok bool) {
	fe, isFe := x.(*callang.ForeachExpr)
	if !isFe {
		return 0, 0, false
	}
	return symbolic.GroupCards(v.chron(), v.cat, fe, v.granOf(fe))
}

// --- fleet-level analysis ------------------------------------------------

// EquivClass is one group of catalog definitions denoting the same element
// list: candidates for merging into aliases of a single calendar.
type EquivClass struct {
	// Key is the shared seconds-canonical pattern key.
	Key string
	// Names are the member calendars, sorted.
	Names []string
}

// AnalyzeCatalog canonicalizes every symbolically-lowerable definition of the
// catalog and groups equivalent ones — the fleet-wide dedup diagnostic
// behind `calvet -fleet` and `rules.VetFleet`. The catalog must implement
// NameLister; each definition's key is computed once, so the pass is linear
// in the catalog size. Classes are sorted by their first member name.
func AnalyzeCatalog(cat Catalog, opts Options) []EquivClass {
	lister, ok := cat.(NameLister)
	if !ok {
		return nil
	}
	v := &vetter{cat: cat, opts: opts}
	byKey := map[string][]string{}
	for _, name := range lister.Names() {
		if k, ok := v.nameKey(name); ok {
			byKey[k] = append(byKey[k], name)
		}
	}
	var out []EquivClass
	for k, names := range byKey {
		if len(names) < 2 {
			continue
		}
		sort.Strings(names)
		out = append(out, EquivClass{Key: k, Names: names})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Names[0] < out[j].Names[0] })
	return out
}

// String renders the class as the merge suggestion the fleet analyzer
// prints.
func (c EquivClass) String() string {
	return fmt.Sprintf("%s denote identical calendars; keep one and alias the rest",
		strings.Join(c.Names, ", "))
}
