package calvet

import (
	"strings"

	"calsys/internal/chronology"
	"calsys/internal/core/callang"
)

// refNames collects the identifier names referenced by an expression.
func refNames(e callang.Expr) map[string]bool {
	out := map[string]bool{}
	collectRefs(e, out)
	return out
}

func collectRefs(e callang.Expr, out map[string]bool) {
	switch n := e.(type) {
	case *callang.Ident:
		out[n.Name] = true
	case *callang.ForeachExpr:
		collectRefs(n.X, out)
		collectRefs(n.Y, out)
	case *callang.IntersectExpr:
		collectRefs(n.X, out)
		collectRefs(n.Y, out)
	case *callang.SelectExpr:
		collectRefs(n.X, out)
	case *callang.LabelSelExpr:
		collectRefs(n.X, out)
	case *callang.BinExpr:
		collectRefs(n.X, out)
		collectRefs(n.Y, out)
	case *callang.CallExpr:
		for _, a := range n.Args {
			collectRefs(a, out)
		}
	}
}

// scriptRef is one external calendar reference of a script, with the
// position of its first occurrence.
type scriptRef struct {
	name string
	pos  callang.Pos
}

// externalRefs lists the calendar names a script references outside its own
// temporaries, `today`, and the basic calendars, ordered by first
// occurrence.
func externalRefs(s *callang.Script) []scriptRef {
	temps := assignedNames(s.Stmts)
	var refs []scriptRef
	seen := map[string]bool{}
	add := func(n *callang.Ident) {
		if temps[n.Name] || strings.EqualFold(n.Name, "today") {
			return
		}
		if _, err := chronology.ParseGranularity(n.Name); err == nil {
			return
		}
		key := strings.ToLower(n.Name)
		if seen[key] {
			return
		}
		seen[key] = true
		refs = append(refs, scriptRef{name: n.Name, pos: n.Pos})
	}
	var walkExpr func(callang.Expr)
	walkExpr = func(e callang.Expr) {
		switch n := e.(type) {
		case *callang.Ident:
			add(n)
		case *callang.ForeachExpr:
			walkExpr(n.X)
			walkExpr(n.Y)
		case *callang.IntersectExpr:
			walkExpr(n.X)
			walkExpr(n.Y)
		case *callang.SelectExpr:
			walkExpr(n.X)
		case *callang.LabelSelExpr:
			walkExpr(n.X)
		case *callang.BinExpr:
			walkExpr(n.X)
			walkExpr(n.Y)
		case *callang.CallExpr:
			for _, a := range n.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmts func([]callang.Stmt)
	walkStmts = func(ss []callang.Stmt) {
		for _, st := range ss {
			switch n := st.(type) {
			case *callang.AssignStmt:
				walkExpr(n.X)
			case *callang.ReturnStmt:
				walkExpr(n.X)
			case *callang.ExprStmt:
				walkExpr(n.X)
			case *callang.IfStmt:
				walkExpr(n.Cond)
				walkStmts(n.Then)
				walkStmts(n.Else)
			case *callang.WhileStmt:
				walkExpr(n.Cond)
				walkStmts(n.Body)
			}
		}
	}
	walkStmts(s.Stmts)
	return refs
}

// maxCycleDepth bounds the CV002 walk through the catalog.
const maxCycleDepth = 64

// checkCycles is CV002: follow every catalog reference of the script being
// vetted and report any chain that leads back to a calendar already on the
// chain — in particular back to the name being defined. The diagnostic
// carries the position of the reference in the vetted script that enters
// the cycle, and its message carries the full path (A → B → A).
func (v *vetter) checkCycles(s *callang.Script) {
	root := v.opts.SelfName
	if root == "" {
		root = "script"
	}
	reported := map[string]bool{}
	// acyclic memoizes names whose whole reachable graph is cycle-free, so
	// shared diamonds are walked once.
	acyclic := map[string]bool{}

	var walk func(script *callang.Script, path []string, entryPos callang.Pos, topLevel bool)
	walk = func(script *callang.Script, path []string, entryPos callang.Pos, topLevel bool) {
		if len(path) > maxCycleDepth {
			return
		}
		for _, r := range externalRefs(script) {
			key := strings.ToLower(r.name)
			pos := entryPos
			if topLevel {
				pos = r.pos
			}
			if v.opts.SelfName != "" && strings.EqualFold(r.name, v.opts.SelfName) {
				v.reportCycle(pos, append(append([]string{}, path...), v.opts.SelfName), reported)
				continue
			}
			if idx := indexFold(path, r.name); idx >= 0 {
				v.reportCycle(pos, append(append([]string{}, path[idx:]...), r.name), reported)
				continue
			}
			if acyclic[key] {
				continue
			}
			next, ok := v.cat.DerivationOf(r.name)
			if !ok {
				continue
			}
			before := len(v.diags)
			walk(next, append(path, r.name), pos, false)
			if len(v.diags) == before {
				acyclic[key] = true
			}
		}
	}
	walk(s, []string{root}, callang.Pos{}, true)
}

func (v *vetter) reportCycle(pos callang.Pos, cycle []string, reported map[string]bool) {
	msg := callang.CyclePath(cycle)
	if reported[msg] {
		return
	}
	reported[msg] = true
	v.report(pos, Error, CodeCycle, "circular derivation: %s", msg)
}

func indexFold(path []string, name string) int {
	for i, p := range path {
		if strings.EqualFold(p, name) {
			return i
		}
	}
	return -1
}

// checkVolatile is CV008: a derivation that reads `today` (directly, or
// through a volatile catalog calendar, or via a clock-wait while-loop) is
// re-evaluated on every use and bypasses the materialization cache.
func (v *vetter) checkVolatile(s *callang.Script) {
	pos, volatile := v.scriptVolatile(s, map[string]bool{})
	if !volatile {
		return
	}
	v.report(pos, Warning, CodeVolatile,
		"derivation reads the clock (`today` or a volatile calendar): results bypass the materialization cache and change from day to day")
}

// scriptVolatile reports whether a script reads the clock, and the position
// of the first clock read found in the vetted source (zero for reads inside
// catalog scripts).
func (v *vetter) scriptVolatile(s *callang.Script, visiting map[string]bool) (callang.Pos, bool) {
	var found *callang.Pos
	var exprVol func(e callang.Expr) bool
	exprVol = func(e callang.Expr) bool {
		switch n := e.(type) {
		case *callang.Ident:
			if strings.EqualFold(n.Name, "today") {
				if found == nil {
					p := n.Pos
					found = &p
				}
				return true
			}
			if v.nameVolatile(n.Name, visiting) {
				if found == nil {
					p := n.Pos
					found = &p
				}
				return true
			}
			return false
		case *callang.ForeachExpr:
			return exprVol(n.X) || exprVol(n.Y)
		case *callang.IntersectExpr:
			return exprVol(n.X) || exprVol(n.Y)
		case *callang.SelectExpr:
			return exprVol(n.X)
		case *callang.LabelSelExpr:
			return exprVol(n.X)
		case *callang.BinExpr:
			return exprVol(n.X) || exprVol(n.Y)
		case *callang.CallExpr:
			vol := false
			for _, a := range n.Args {
				vol = exprVol(a) || vol
			}
			return vol
		}
		return false
	}
	vol := false
	var walkStmts func(ss []callang.Stmt)
	walkStmts = func(ss []callang.Stmt) {
		for _, st := range ss {
			switch n := st.(type) {
			case *callang.AssignStmt:
				vol = exprVol(n.X) || vol
			case *callang.ReturnStmt:
				vol = exprVol(n.X) || vol
			case *callang.ExprStmt:
				vol = exprVol(n.X) || vol
			case *callang.IfStmt:
				vol = exprVol(n.Cond) || vol
				walkStmts(n.Then)
				walkStmts(n.Else)
			case *callang.WhileStmt:
				// The paper's wait loop: an empty while body spins until the
				// clock satisfies the condition, so the result depends on
				// evaluation time.
				if len(n.Body) == 0 {
					if found == nil {
						p := n.Pos
						found = &p
					}
					vol = true
				}
				vol = exprVol(n.Cond) || vol
				walkStmts(n.Body)
			}
		}
	}
	walkStmts(s.Stmts)
	if found != nil {
		return *found, vol
	}
	return callang.Pos{}, vol
}

// exprVolatile reports whether a single expression reads the clock.
func (v *vetter) exprVolatile(e callang.Expr, visiting map[string]bool) bool {
	_, vol := v.scriptVolatile(&callang.Script{Stmts: []callang.Stmt{&callang.ExprStmt{X: e}}}, visiting)
	return vol
}

// nameVolatile reports whether a catalog calendar is volatile, preferring
// the catalog's own memoized answer when it offers one.
func (v *vetter) nameVolatile(name string, visiting map[string]bool) bool {
	if vc, ok := v.cat.(volatilityCatalog); ok {
		return vc.VolatileOf(name)
	}
	key := strings.ToLower(name)
	if visiting[key] {
		return false // cycle: CV002's problem, not CV008's
	}
	script, ok := v.cat.DerivationOf(name)
	if !ok {
		return false
	}
	visiting[key] = true
	defer delete(visiting, key)
	_, vol := v.scriptVolatile(script, visiting)
	return vol
}
