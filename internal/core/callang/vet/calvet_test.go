package calvet_test

import (
	"strings"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	calvet "calsys/internal/core/callang/vet"
	"calsys/internal/core/interval"
)

func mustScript(t *testing.T, src string) *callang.Script {
	t.Helper()
	s, err := callang.ParseDerivation(src)
	if err != nil {
		t.Fatalf("ParseDerivation(%q): %v", src, err)
	}
	return s
}

func vet(t *testing.T, src string, cat calvet.Catalog, opts calvet.Options) calvet.Diags {
	t.Helper()
	if cat == nil {
		cat = &calvet.MapCatalog{}
	}
	return calvet.AnalyzeScript(mustScript(t, src), cat, opts)
}

// codes collects the diagnostic codes in order.
func codes(ds calvet.Diags) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Code
	}
	return out
}

func wantCode(t *testing.T, ds calvet.Diags, code string) calvet.Diag {
	t.Helper()
	for _, d := range ds {
		if d.Code == code {
			return d
		}
	}
	t.Fatalf("no %s diagnostic in:\n%s", code, ds)
	return calvet.Diag{}
}

func wantNoCode(t *testing.T, ds calvet.Diags, code string) {
	t.Helper()
	for _, d := range ds {
		if d.Code == code {
			t.Fatalf("unexpected %s diagnostic: %s", code, d)
		}
	}
}

func TestUndefinedReference(t *testing.T) {
	ds := vet(t, "NOPE:during:MONTHS", nil, calvet.Options{})
	d := wantCode(t, ds, calvet.CodeUndefinedRef)
	if d.Severity != calvet.Error {
		t.Errorf("severity = %v, want error", d.Severity)
	}
	if !strings.Contains(d.Msg, `"NOPE"`) {
		t.Errorf("message should name the reference: %s", d.Msg)
	}
	if d.Pos.Line != 1 || d.Pos.Col != 1 {
		t.Errorf("pos = %v, want 1:1", d.Pos)
	}
	if !ds.HasErrors() || ds.Err() == nil {
		t.Error("undefined reference must be an error")
	}
}

func TestKnownReferences(t *testing.T) {
	cat := &calvet.MapCatalog{Kinds: map[string]chronology.Granularity{"Mondays": chronology.Day}}
	for _, src := range []string{
		"DAYS:during:WEEKS",
		"Mondays:during:MONTHS",
		"{x = [2]/DAYS:during:WEEKS; return (x);}",
		`generate(DAYS, WEEKS, "1993-01-04", "1993-01-04")`,
	} {
		if ds := vet(t, src, cat, calvet.Options{}); ds.HasErrors() {
			t.Errorf("%s: unexpected errors:\n%s", src, ds.Errors())
		}
	}
}

func TestUnknownFunction(t *testing.T) {
	ds := vet(t, "frobnicate(DAYS)", nil, calvet.Options{})
	d := wantCode(t, ds, calvet.CodeUndefinedRef)
	if !strings.Contains(d.Msg, "frobnicate") {
		t.Errorf("message should name the function: %s", d.Msg)
	}
}

func TestSelfCycle(t *testing.T) {
	ds := vet(t, "PAYDAYS:during:MONTHS", nil, calvet.Options{SelfName: "PAYDAYS"})
	d := wantCode(t, ds, calvet.CodeCycle)
	if d.Severity != calvet.Error {
		t.Errorf("severity = %v, want error", d.Severity)
	}
	if !strings.Contains(d.Msg, "PAYDAYS → PAYDAYS") {
		t.Errorf("cycle message should show the path: %s", d.Msg)
	}
	// The self reference must not double-report as undefined.
	wantNoCode(t, ds, calvet.CodeUndefinedRef)
}

func TestCatalogCycle(t *testing.T) {
	cat := &calvet.MapCatalog{
		Scripts: map[string]*callang.Script{
			"B": mustScript(t, "C:during:MONTHS"),
			"C": mustScript(t, "A:during:YEARS"),
		},
		Kinds: map[string]chronology.Granularity{
			"B": chronology.Day, "C": chronology.Day, "A": chronology.Day,
		},
	}
	ds := vet(t, "B:during:WEEKS", cat, calvet.Options{SelfName: "A"})
	d := wantCode(t, ds, calvet.CodeCycle)
	if !strings.Contains(d.Msg, "A → B → C → A") {
		t.Errorf("cycle message should carry the full path, got: %s", d.Msg)
	}
	if d.Pos.Line != 1 || d.Pos.Col != 1 {
		t.Errorf("cycle should anchor at the reference entering it, got %v", d.Pos)
	}
}

func TestCatalogCycleAmongExisting(t *testing.T) {
	// A cycle wholly inside the catalog (not through SelfName) still
	// surfaces when the vetted script reaches it.
	cat := &calvet.MapCatalog{
		Scripts: map[string]*callang.Script{
			"X": mustScript(t, "Y:during:MONTHS"),
			"Y": mustScript(t, "X:during:YEARS"),
		},
		Kinds: map[string]chronology.Granularity{
			"X": chronology.Day, "Y": chronology.Day,
		},
	}
	ds := vet(t, "X:during:WEEKS", cat, calvet.Options{SelfName: "NEW"})
	d := wantCode(t, ds, calvet.CodeCycle)
	if !strings.Contains(d.Msg, "X → Y → X") {
		t.Errorf("cycle path = %s", d.Msg)
	}
}

func TestZeroLabelSelection(t *testing.T) {
	// 0/DAYS addresses raw tick 0, which the no-zero convention excludes.
	ds := vet(t, "0/DAYS:during:MONTHS", nil, calvet.Options{})
	d := wantCode(t, ds, calvet.CodeZeroIndex)
	if d.Severity != calvet.Error {
		t.Errorf("severity = %v, want error", d.Severity)
	}
	// 0/YEARS is a label (year 0 is debatable but not a tick); month-or-
	// coarser labels are not raw ticks, so no CV004.
	wantNoCode(t, vet(t, "1993/YEARS", nil, calvet.Options{}), calvet.CodeZeroIndex)
}

func TestZeroSelectionIndexProgrammatic(t *testing.T) {
	// The parser rejects [0] at parse time; scripts built programmatically
	// (or a future front end) still get the Define-time diagnostic.
	e := &callang.SelectExpr{
		Pred: calendar.SelectIndex(0),
		X: &callang.ForeachExpr{
			X:      &callang.Ident{Name: "DAYS"},
			Op:     interval.During,
			Strict: true,
			Y:      &callang.Ident{Name: "WEEKS"},
		},
		Pos: callang.Pos{Line: 1, Col: 1},
	}
	ds := calvet.AnalyzeExpr(e, &calvet.MapCatalog{}, calvet.Options{})
	d := wantCode(t, ds, calvet.CodeZeroIndex)
	if d.Severity != calvet.Error {
		t.Errorf("severity = %v, want error", d.Severity)
	}

	rng := &callang.SelectExpr{
		Pred: calendar.SelectRange(0, 3),
		X:    &callang.Ident{Name: "DAYS"},
	}
	wantCode(t, calvet.AnalyzeExpr(rng, &calvet.MapCatalog{}, calvet.Options{}), calvet.CodeZeroIndex)

	empty := &callang.SelectExpr{Pred: calendar.Selection{}, X: &callang.Ident{Name: "DAYS"}}
	d = wantCode(t, calvet.AnalyzeExpr(empty, &calvet.MapCatalog{}, calvet.Options{}), calvet.CodeBadSelection)
	if d.Severity != calvet.Error {
		t.Errorf("empty selection severity = %v, want error", d.Severity)
	}
}

func TestZeroTickInCalls(t *testing.T) {
	wantCode(t, vet(t, "interval(0, 5, DAYS)", nil, calvet.Options{}), calvet.CodeZeroIndex)
	wantCode(t, vet(t, "points(0)", nil, calvet.Options{}), calvet.CodeZeroIndex)
	wantNoCode(t, vet(t, "interval(-5, 5, DAYS)", nil, calvet.Options{}), calvet.CodeZeroIndex)
}

func TestSelectionOutOfRange(t *testing.T) {
	// A week holds at most 7 days: [8] can never select anything. The
	// symbolic calculus proves the bound exactly, so the diagnostic is the
	// CV012 proof rather than the CV005 heuristic.
	d := wantCode(t, vet(t, "[8]/DAYS:during:WEEKS", nil, calvet.Options{}), calvet.CodeSelectCard)
	if d.Severity != calvet.Warning {
		t.Errorf("severity = %v, want warning", d.Severity)
	}
	wantCode(t, vet(t, "[-8]/DAYS:during:WEEKS", nil, calvet.Options{}), calvet.CodeSelectCard)
	wantCode(t, vet(t, "[8-9]/DAYS:during:WEEKS", nil, calvet.Options{}), calvet.CodeSelectCard)
	wantCode(t, vet(t, "[32]/DAYS:during:MONTHS", nil, calvet.Options{}), calvet.CodeSelectCard)

	// In-range, negative and n-indices are fine.
	for _, src := range []string{
		"[7]/DAYS:during:WEEKS",
		"[-1]/DAYS:during:WEEKS",
		"[n]/DAYS:during:MONTHS",
		"[31]/DAYS:during:MONTHS",
		"[2]/DAYS:during:WEEKS",
	} {
		diags := vet(t, src, nil, calvet.Options{})
		wantNoCode(t, diags, calvet.CodeBadSelection)
		wantNoCode(t, diags, calvet.CodeSelectCard)
	}

	// Overlaps admits straddling units: a month overlaps up to 6 weeks,
	// and ordering operators have no per-group bound at all.
	wantNoCode(t, vet(t, "[6]/WEEKS:overlaps:MONTHS", nil, calvet.Options{}), calvet.CodeBadSelection)
	wantNoCode(t, vet(t, "[6]/WEEKS:overlaps:MONTHS", nil, calvet.Options{}), calvet.CodeSelectCard)
	wantNoCode(t, vet(t, "[50]/DAYS:<:MONTHS", nil, calvet.Options{}), calvet.CodeBadSelection)
	wantNoCode(t, vet(t, "[50]/DAYS:<:MONTHS", nil, calvet.Options{}), calvet.CodeSelectCard)
}

func TestSelectionStaticallyEmptyRange(t *testing.T) {
	d := wantCode(t, vet(t, "[5-2]/DAYS:during:WEEKS", nil, calvet.Options{}), calvet.CodeBadSelection)
	if !strings.Contains(d.Msg, "statically empty") {
		t.Errorf("msg = %s", d.Msg)
	}
	// -5 - -2 resolves to an ascending index range; not empty.
	wantNoCode(t, vet(t, "[-5--2]/DAYS:during:WEEKS", nil, calvet.Options{}), calvet.CodeBadSelection)
}

func TestGranularityMismatch(t *testing.T) {
	d := wantCode(t, vet(t, "WEEKS + MONTHS", nil, calvet.Options{}), calvet.CodeGranMismatch)
	if d.Severity != calvet.Warning {
		t.Errorf("severity = %v, want warning", d.Severity)
	}
	wantCode(t, vet(t, "DAYS:intersects:WEEKS", nil, calvet.Options{}), calvet.CodeGranMismatch)
	wantNoCode(t, vet(t, "WEEKS + WEEKS", nil, calvet.Options{}), calvet.CodeGranMismatch)

	// A during-foreach with a coarser left side is always empty.
	wantCode(t, vet(t, "MONTHS:during:DAYS", nil, calvet.Options{}), calvet.CodeGranMismatch)
	// Finer-left during and mixed-granularity relaxed foreach are the
	// paper's bread and butter: no diagnostic.
	wantNoCode(t, vet(t, "WEEKS:during:MONTHS", nil, calvet.Options{}), calvet.CodeGranMismatch)
	wantNoCode(t, vet(t, "WEEKS.overlaps.MONTHS", nil, calvet.Options{}), calvet.CodeGranMismatch)
}

func TestDeadCode(t *testing.T) {
	ds := vet(t, "{x = DAYS:during:WEEKS; return (WEEKS);}", nil, calvet.Options{})
	d := wantCode(t, ds, calvet.CodeDeadCode)
	if !strings.Contains(d.Msg, `"x"`) {
		t.Errorf("msg should name the temp: %s", d.Msg)
	}

	ds = vet(t, "{return (DAYS); y = WEEKS;}", nil, calvet.Options{})
	found := 0
	for _, d := range ds {
		if d.Code == calvet.CodeDeadCode {
			found++
		}
	}
	if found != 2 { // unreachable statement + unused y
		t.Errorf("want 2 CV006 diagnostics (unreachable + unused), got %d:\n%s", found, ds)
	}

	wantNoCode(t, vet(t, "{x = DAYS:during:WEEKS; return (x);}", nil, calvet.Options{}), calvet.CodeDeadCode)
}

func TestWhileNoProgress(t *testing.T) {
	// Body never assigns the condition's temporary.
	src := "{x = [1]/DAYS:during:WEEKS; while (x:intersects:MONTHS) { y = x; } return (x);}"
	wantCode(t, vet(t, src, nil, calvet.Options{}), calvet.CodeLoopNoProgress)

	// Condition references no temporaries and no clock.
	wantCode(t, vet(t, "{while (DAYS:during:MONTHS) ; return (DAYS);}", nil, calvet.Options{}),
		calvet.CodeLoopNoProgress)

	// The paper's wait loop: `today` drives progress — no CV007.
	wait := "{temp = 24/DAYS:during:MONTHS; while (today:<:temp) ; return (temp);}"
	wantNoCode(t, vet(t, wait, nil, calvet.Options{}), calvet.CodeLoopNoProgress)

	// Body reassigns the condition's temporary — progress is possible.
	ok := "{x = [1]/DAYS:during:WEEKS; while (x:intersects:MONTHS) { x = [2]/DAYS:during:WEEKS; } return (x);}"
	wantNoCode(t, vet(t, ok, nil, calvet.Options{}), calvet.CodeLoopNoProgress)
}

func TestVolatile(t *testing.T) {
	d := wantCode(t, vet(t, "{return (today:during:MONTHS);}", nil, calvet.Options{}), calvet.CodeVolatile)
	if d.Severity != calvet.Warning {
		t.Errorf("severity = %v, want warning", d.Severity)
	}

	// Volatility is transitive through the catalog.
	cat := &calvet.MapCatalog{
		Scripts: map[string]*callang.Script{"NOW": mustScript(t, "today:during:DAYS")},
		Kinds:   map[string]chronology.Granularity{"NOW": chronology.Day},
	}
	wantCode(t, vet(t, "NOW:during:MONTHS", cat, calvet.Options{}), calvet.CodeVolatile)

	wantNoCode(t, vet(t, "DAYS:during:MONTHS", nil, calvet.Options{}), calvet.CodeVolatile)
}

func TestFactorizationBlocked(t *testing.T) {
	// (DAYS:<:WEEKS):<=:[1]/WEEKS matches the §3.4 rule's preconditions but
	// mixes `<` with `<=`: the rewrite is withheld and CV009 flags it.
	ds := vet(t, "(DAYS:<:WEEKS):<=:[1]/WEEKS", nil, calvet.Options{})
	wantCode(t, ds, calvet.CodeFactorBlocked)

	// ≤/≤ is the sanctioned reduction — no diagnostic.
	wantNoCode(t, vet(t, "(DAYS:<=:WEEKS):<=:[1]/WEEKS", nil, calvet.Options{}), calvet.CodeFactorBlocked)
	// Non-ordering operators factorize normally — no diagnostic.
	wantNoCode(t, vet(t, "([2]/(DAYS:during:WEEKS)):during:[1]/WEEKS", nil, calvet.Options{}), calvet.CodeFactorBlocked)
}

func TestDiagnosticOrderingAndRendering(t *testing.T) {
	src := "{x = NOPE:during:MONTHS;\nreturn (ALSO_NOPE:during:WEEKS);}"
	ds := vet(t, src, nil, calvet.Options{})
	if len(ds) < 2 {
		t.Fatalf("want ≥2 diagnostics, got:\n%s", ds)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Pos.Line > ds[i].Pos.Line {
			t.Errorf("diagnostics not sorted by position:\n%s", ds)
		}
	}
	rendered := wantCode(t, ds, calvet.CodeUndefinedRef).String()
	if !strings.Contains(rendered, "error CV001:") || !strings.Contains(rendered, "1:") {
		t.Errorf("rendered diag = %q", rendered)
	}
	if got := len(ds.Errors()) + len(ds.Warnings()); got != len(ds) {
		t.Errorf("Errors+Warnings = %d, want %d", got, len(ds))
	}
}

func TestParseAndAnalyze(t *testing.T) {
	ds := calvet.ParseAndAnalyze("NOPE:during:", &calvet.MapCatalog{}, calvet.Options{})
	if !ds.HasErrors() {
		t.Fatal("parse failure should surface as an error diagnostic")
	}
	ds = calvet.ParseAndAnalyze("[2]/DAYS:during:WEEKS", &calvet.MapCatalog{}, calvet.Options{})
	if ds.HasErrors() {
		t.Fatalf("unexpected errors:\n%s", ds)
	}
}

func TestCodesAreStable(t *testing.T) {
	got := map[string]string{
		calvet.CodeUndefinedRef:   "CV001",
		calvet.CodeCycle:          "CV002",
		calvet.CodeGranMismatch:   "CV003",
		calvet.CodeZeroIndex:      "CV004",
		calvet.CodeBadSelection:   "CV005",
		calvet.CodeDeadCode:       "CV006",
		calvet.CodeLoopNoProgress: "CV007",
		calvet.CodeVolatile:       "CV008",
		calvet.CodeFactorBlocked:  "CV009",
	}
	for c, want := range got {
		if c != want {
			t.Errorf("code %s drifted from %s", c, want)
		}
	}
	_ = codes // silence unused helper when tests above change
}
