package calvet_test

import (
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/callang"
	calvet "calsys/internal/core/callang/vet"
)

// The golden suite pins the exact rendering — position, severity, code,
// message — of every symbolic-calculus diagnostic, so wire formats and CLI
// output stay stable.
func TestSymbolicDiagnosticsGolden(t *testing.T) {
	cat := &calvet.MapCatalog{
		Scripts: map[string]*callang.Script{
			"Mondays":  mustScript(t, "[1]/DAYS:during:WEEKS;"),
			"Weekdays": mustScript(t, "[1-5]/DAYS:during:WEEKS;"),
		},
		Kinds: map[string]chronology.Granularity{
			"Mondays":  chronology.Day,
			"Weekdays": chronology.Day,
		},
	}
	cases := []struct {
		name string
		src  string
		self string
		want string
	}{
		{
			name: "CV010 empty difference",
			src:  "DAYS - DAYS;",
			want: "1:6: warning CV010: calendar expression is provably empty on every window",
		},
		{
			name: "CV010 coarse minus covering fine",
			src:  "MONTHS - DAYS;",
			want: "1:8: warning CV010: calendar expression is provably empty on every window",
		},
		{
			name: "CV011 equivalent definition",
			src:  "[1]/DAYS.during.WEEKS;",
			self: "WeekStarts",
			want: "1:1: warning CV011: expression is equivalent to the existing calendar Mondays; consider referencing it instead of redefining the set",
		},
		{
			name: "CV012 index beyond exact cardinality",
			src:  "[8]/DAYS:during:WEEKS;",
			want: "1:1: warning CV012: selection index 8 provably never selects: groups of the subject hold between 7 and 7 elements on every window",
		},
		{
			name: "CV012 range beyond exact cardinality",
			src:  "[32-35]/DAYS:during:MONTHS;",
			want: "1:1: warning CV012: selection range 32-35 provably never selects: groups of the subject hold between 28 and 31 elements on every window",
		},
		{
			name: "CV013 identical arms",
			src:  "([1]/DAYS:during:WEEKS) + ([1]/DAYS:during:WEEKS);",
			want: "1:25: warning CV013: both arms of \"+\" denote the same calendar; drop either arm",
		},
		{
			name: "CV013 right arm subsumed",
			src:  "(DAYS:during:WEEKS) + ([2]/DAYS:during:WEEKS);",
			want: "1:21: warning CV013: right arm of \"+\" is subsumed: every element of [2]/(DAYS:during:WEEKS) is already in DAYS:during:WEEKS",
		},
		{
			name: "CV013 left arm subsumed",
			src:  "([2]/DAYS:during:WEEKS) + (DAYS:during:WEEKS);",
			want: "1:25: warning CV013: left arm of \"+\" is subsumed: every element of [2]/(DAYS:during:WEEKS) is already in DAYS:during:WEEKS",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := vet(t, tc.src, cat, calvet.Options{SelfName: tc.self})
			for _, d := range ds {
				if d.String() == tc.want {
					return
				}
			}
			t.Fatalf("missing diagnostic.\nwant: %s\ngot:\n%s", tc.want, ds)
		})
	}
}

// The calculus must never flag live definitions: CV010–CV013 are proofs, so
// any false positive is a bug, not a tuning matter.
func TestSymbolicDiagnosticsNoFalsePositives(t *testing.T) {
	cat := &calvet.MapCatalog{
		Scripts: map[string]*callang.Script{
			"Mondays": mustScript(t, "[1]/DAYS:during:WEEKS;"),
		},
		Kinds: map[string]chronology.Granularity{"Mondays": chronology.Day},
	}
	for _, src := range []string{
		"DAYS;",
		"DAYS - Mondays;",
		"([1]/DAYS:during:WEEKS) + ([2]/DAYS:during:WEEKS);",
		"[7]/DAYS:during:WEEKS;",
		"[28]/DAYS:during:MONTHS;",
		"[2]/DAYS.during.WEEKS;", // Tuesdays ≠ Mondays
		"Mondays + ([2]/DAYS:during:WEEKS);",
		"WEEKS:overlaps:MONTHS;",
	} {
		ds := vet(t, src, cat, calvet.Options{SelfName: "Probe"})
		for _, code := range []string{
			calvet.CodeEmptyCalendar, calvet.CodeEquivalentDef,
			calvet.CodeSelectCard, calvet.CodeSubsumedArm,
		} {
			wantNoCode(t, ds, code)
		}
	}
}

// CV011 must be granularity-blind: a definition written over hours that
// covers exactly the Mondays day set keys identically.
func TestEquivalenceAcrossGranularities(t *testing.T) {
	cat := &calvet.MapCatalog{
		Scripts: map[string]*callang.Script{
			"Mondays": mustScript(t, "[1]/DAYS:during:WEEKS;"),
			"AllDays": mustScript(t, "DAYS:during:WEEKS;"),
		},
		Kinds: map[string]chronology.Granularity{
			"Mondays": chronology.Day,
			"AllDays": chronology.Day,
		},
	}
	d := wantCode(t, vet(t, "DAYS;", cat, calvet.Options{SelfName: "Everyday"}), calvet.CodeEquivalentDef)
	if d.Msg != "expression is equivalent to the existing calendar AllDays; consider referencing it instead of redefining the set" {
		t.Errorf("unexpected CV011 message: %s", d.Msg)
	}
}

func TestAnalyzeCatalog(t *testing.T) {
	cat := &calvet.MapCatalog{
		Scripts: map[string]*callang.Script{
			"Mondays":    mustScript(t, "[1]/DAYS:during:WEEKS;"),
			"WeekStarts": mustScript(t, "[1]/DAYS.during.WEEKS;"),
			"Tuesdays":   mustScript(t, "[2]/DAYS:during:WEEKS;"),
			"AllDays":    mustScript(t, "DAYS:during:WEEKS;"),
			"Everyday":   mustScript(t, "DAYS;"),
			"Opaque":     mustScript(t, "x = DAYS; return (x);"),
		},
		Kinds: map[string]chronology.Granularity{
			"Mondays": chronology.Day, "WeekStarts": chronology.Day,
			"Tuesdays": chronology.Day, "AllDays": chronology.Day,
			"Everyday": chronology.Day, "Opaque": chronology.Day,
		},
	}
	classes := calvet.AnalyzeCatalog(cat, calvet.Options{})
	if len(classes) != 2 {
		t.Fatalf("got %d classes, want 2: %v", len(classes), classes)
	}
	wantNames := [][]string{
		{"AllDays", "Everyday"},
		{"Mondays", "WeekStarts"},
	}
	for i, c := range classes {
		if len(c.Names) != len(wantNames[i]) {
			t.Fatalf("class %d = %v, want %v", i, c.Names, wantNames[i])
		}
		for j, n := range c.Names {
			if n != wantNames[i][j] {
				t.Fatalf("class %d = %v, want %v", i, c.Names, wantNames[i])
			}
		}
	}
}
