// Package calvet is a static semantic analyzer for the calendar expression
// language of §3.3: a multi-pass checker over parsed scripts and expressions
// that reports positioned diagnostics with stable codes before any
// evaluation plan is compiled or run.
//
// The paper's §3.4 parsing algorithm already performs ad-hoc static work
// (derivation inlining, granularity inference, factorization-safety
// conditions); calvet turns the remaining error classes — the ones that
// today only surface deep inside plan.Compile or RunScript — into upfront,
// per-position diagnostics:
//
//	CV001  undefined calendar reference (or unknown built-in function)
//	CV002  circular derivation, with the full cycle path (A → B → A)
//	CV003  granularity mismatch across a binary list operator
//	CV004  zero selection index / zero tick (violates the no-zero convention)
//	CV005  statically out-of-range or empty selection list
//	CV006  assignment never used, or unreachable statements after return
//	CV007  while-loop with no state change in its body (non-termination)
//	CV008  volatile derivation (reads `today`/clock) — bypasses the matcache
//	CV009  factorization blocked by the §3.4 `<`/`<=` exception
//
// Errors (CV001, CV002, CV004 and empty selections from CV005) make a
// definition rejectable; the remaining codes are warnings that the catalog
// stores alongside the definition.
package calvet

import (
	"fmt"
	"sort"
	"strings"

	"calsys/internal/chronology"
	"calsys/internal/core/callang"
	"calsys/internal/core/interval"
)

// Severity grades a diagnostic.
type Severity int

// Diagnostic severities.
const (
	Warning Severity = iota
	Error
)

// String names the severity for rendering.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Stable diagnostic codes. Codes are append-only: a code's meaning never
// changes once released, so scripts and CI pipelines can filter on them.
const (
	CodeUndefinedRef   = "CV001"
	CodeCycle          = "CV002"
	CodeGranMismatch   = "CV003"
	CodeZeroIndex      = "CV004"
	CodeBadSelection   = "CV005"
	CodeDeadCode       = "CV006"
	CodeLoopNoProgress = "CV007"
	CodeVolatile       = "CV008"
	CodeFactorBlocked  = "CV009"
	CodeEmptyCalendar  = "CV010"
	CodeEquivalentDef  = "CV011"
	CodeSelectCard     = "CV012"
	CodeSubsumedArm    = "CV013"
)

// Diag is one positioned diagnostic.
type Diag struct {
	Pos      callang.Pos
	Severity Severity
	Code     string
	Msg      string
}

// String renders the diagnostic as "line:col: severity CODE: message"; the
// position is omitted when unknown (synthetic nodes).
func (d Diag) String() string {
	if d.Pos == (callang.Pos{}) {
		return fmt.Sprintf("%v %s: %s", d.Severity, d.Code, d.Msg)
	}
	return fmt.Sprintf("%v: %v %s: %s", d.Pos, d.Severity, d.Code, d.Msg)
}

// Diags is a list of diagnostics, ordered by position then code.
type Diags []Diag

// String renders one diagnostic per line.
func (ds Diags) String() string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\n")
}

// HasErrors reports whether any diagnostic is an error.
func (ds Diags) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors returns the error diagnostics.
func (ds Diags) Errors() Diags { return ds.filter(Error) }

// Warnings returns the warning diagnostics.
func (ds Diags) Warnings() Diags { return ds.filter(Warning) }

func (ds Diags) filter(sev Severity) Diags {
	var out Diags
	for _, d := range ds {
		if d.Severity == sev {
			out = append(out, d)
		}
	}
	return out
}

// Err returns nil when the list holds no errors, else an error rendering
// every error diagnostic (one per line).
func (ds Diags) Err() error {
	errs := ds.Errors()
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("%s", errs.String())
}

func (ds Diags) sorted() Diags {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
	return ds
}

// Catalog resolves already-defined calendars during analysis. The CALENDARS
// catalog (caldb.Manager) implements it; tests use plan.MapCatalog or the
// local MapCatalog.
type Catalog interface {
	// DerivationOf returns the parsed derivation script of a derived
	// calendar.
	DerivationOf(name string) (*callang.Script, bool)
	// ElemKindOf returns the element kind of a named calendar (basic
	// granularity names resolve to themselves).
	ElemKindOf(name string) (chronology.Granularity, bool)
}

// volatilityCatalog is the optional fast path for CV008: catalogs that
// already memoize per-name volatility (caldb.Manager) expose it here.
type volatilityCatalog interface {
	VolatileOf(name string) bool
}

// MapCatalog is an in-memory Catalog for tests and the calvet CLI.
type MapCatalog struct {
	Scripts map[string]*callang.Script
	Kinds   map[string]chronology.Granularity
}

// DerivationOf implements Catalog.
func (m *MapCatalog) DerivationOf(name string) (*callang.Script, bool) {
	s, ok := m.Scripts[name]
	return s, ok
}

// ElemKindOf implements Catalog. Basic calendar names always resolve.
func (m *MapCatalog) ElemKindOf(name string) (chronology.Granularity, bool) {
	if g, err := chronology.ParseGranularity(name); err == nil {
		return g, true
	}
	g, ok := m.Kinds[name]
	return g, ok
}

// Options tune an analysis run.
type Options struct {
	// SelfName is the calendar name the script is being defined under, when
	// vetting a definition: references back to it (directly or through the
	// catalog) are reported as CV002 cycles instead of CV001 undefined
	// references.
	SelfName string
	// Chron anchors the symbolic pattern calculus (CV010–CV013); nil uses
	// the paper's default epoch.
	Chron *chronology.Chronology
}

// builtins are the callable functions of the language (§3.2-§3.3).
var builtins = map[string]bool{
	"generate":   true,
	"caloperate": true,
	"interval":   true,
	"points":     true,
}

// AnalyzeExpr vets a single calendar expression.
func AnalyzeExpr(e callang.Expr, cat Catalog, opts Options) Diags {
	return AnalyzeScript(&callang.Script{Stmts: []callang.Stmt{&callang.ExprStmt{X: e}}}, cat, opts)
}

// AnalyzeScript runs every pass over a calendar script and returns the
// diagnostics sorted by position.
func AnalyzeScript(s *callang.Script, cat Catalog, opts Options) Diags {
	v := &vetter{cat: cat, opts: opts, used: map[string]bool{}}
	v.temps = assignedNames(s.Stmts)
	v.vetStmts(s.Stmts)
	v.checkUnused(s.Stmts)
	v.checkCycles(s)
	v.checkVolatile(s)
	v.checkSymbolic(s)
	return v.diags.sorted()
}

// ParseAndAnalyze parses src as a derivation (script or bare expression) and
// vets it; parse and lex failures are converted into a single Error diag so
// callers have one diagnostics pipeline.
func ParseAndAnalyze(src string, cat Catalog, opts Options) Diags {
	script, err := callang.ParseDerivation(src)
	if err != nil {
		return Diags{{Severity: Error, Code: "PARSE", Msg: err.Error()}}
	}
	return AnalyzeScript(script, cat, opts)
}

// vetter carries one analysis run.
type vetter struct {
	cat   Catalog
	opts  Options
	diags Diags
	temps map[string]bool // names assigned anywhere in the script
	used  map[string]bool // names referenced in any expression
}

func (v *vetter) report(pos callang.Pos, sev Severity, code, format string, args ...any) {
	v.diags = append(v.diags, Diag{Pos: pos, Severity: sev, Code: code, Msg: fmt.Sprintf(format, args...)})
}

// assignedNames collects every temporary assigned anywhere in a statement
// tree. The analyzer treats all of them as defined for CV001, which never
// false-positives on use-before-assignment orderings the interpreter
// accepts.
func assignedNames(ss []callang.Stmt) map[string]bool {
	out := map[string]bool{}
	var walk func([]callang.Stmt)
	walk = func(ss []callang.Stmt) {
		for _, st := range ss {
			switch n := st.(type) {
			case *callang.AssignStmt:
				out[n.Name] = true
			case *callang.IfStmt:
				walk(n.Then)
				walk(n.Else)
			case *callang.WhileStmt:
				walk(n.Body)
			}
		}
	}
	walk(ss)
	return out
}

// --- statement pass (CV006, CV007, expression checks) -------------------

func (v *vetter) vetStmts(ss []callang.Stmt) {
	for i, st := range ss {
		switch n := st.(type) {
		case *callang.AssignStmt:
			v.vetExpr(n.X)
		case *callang.ReturnStmt:
			v.vetExpr(n.X)
			if i < len(ss)-1 {
				v.report(callang.StmtPos(ss[i+1]), Warning, CodeDeadCode,
					"unreachable statements after return")
			}
		case *callang.ExprStmt:
			v.vetExpr(n.X)
		case *callang.IfStmt:
			v.vetExpr(n.Cond)
			v.vetStmts(n.Then)
			v.vetStmts(n.Else)
		case *callang.WhileStmt:
			v.vetExpr(n.Cond)
			v.vetStmts(n.Body)
			v.checkWhile(n)
		}
	}
}

// checkWhile is the CV007 non-termination heuristic: a loop whose condition
// is not clock-driven and whose body cannot change the condition's value
// never makes progress.
func (v *vetter) checkWhile(n *callang.WhileStmt) {
	if v.exprVolatile(n.Cond, map[string]bool{}) {
		// The paper's wait loops: the condition reads `today` (directly or
		// through a volatile derivation), so the clock drives progress.
		return
	}
	condVars := map[string]bool{}
	for name := range refNames(n.Cond) {
		if v.temps[name] {
			condVars[name] = true
		}
	}
	if len(n.Body) == 0 {
		v.report(n.Pos, Warning, CodeLoopNoProgress,
			"while-loop with an empty body and a non-volatile condition never terminates")
		return
	}
	if len(condVars) == 0 {
		v.report(n.Pos, Warning, CodeLoopNoProgress,
			"while-loop condition never changes (no temporaries, no clock reads)")
		return
	}
	for name := range assignedNames(n.Body) {
		if condVars[name] {
			return
		}
	}
	v.report(n.Pos, Warning, CodeLoopNoProgress,
		"while-loop body never assigns a temporary referenced by its condition")
}

// checkUnused reports CV006 for top-level and nested assignments whose name
// is never read by any expression of the script.
func (v *vetter) checkUnused(ss []callang.Stmt) {
	var walk func([]callang.Stmt)
	walk = func(ss []callang.Stmt) {
		for _, st := range ss {
			switch n := st.(type) {
			case *callang.AssignStmt:
				if !v.used[n.Name] {
					v.report(n.Pos, Warning, CodeDeadCode,
						"calendar %q is assigned but never used", n.Name)
				}
			case *callang.IfStmt:
				walk(n.Then)
				walk(n.Else)
			case *callang.WhileStmt:
				walk(n.Body)
			}
		}
	}
	walk(ss)
}

// --- expression pass (CV001, CV003, CV004, CV005, CV009) ----------------

func (v *vetter) vetExpr(e callang.Expr) {
	switch n := e.(type) {
	case *callang.Ident:
		v.used[n.Name] = true
		v.checkRef(n)
	case *callang.Number, *callang.StringLit:
	case *callang.ForeachExpr:
		v.checkForeach(n)
		v.vetExpr(n.X)
		v.vetExpr(n.Y)
	case *callang.IntersectExpr:
		v.checkBinaryKinds(n.Pos, "intersects", n.X, n.Y)
		v.vetExpr(n.X)
		v.vetExpr(n.Y)
	case *callang.SelectExpr:
		v.checkSelection(n)
		v.vetExpr(n.X)
	case *callang.LabelSelExpr:
		v.checkLabel(n)
		v.vetExpr(n.X)
	case *callang.BinExpr:
		v.checkBinaryKinds(n.Pos, string(n.Op), n.X, n.Y)
		v.vetExpr(n.X)
		v.vetExpr(n.Y)
	case *callang.CallExpr:
		v.checkCall(n)
	}
}

// checkRef is CV001: every identifier must resolve to a temporary, `today`,
// a basic calendar, a catalog calendar, or the name being defined (whose
// cycles CV002 reports separately).
func (v *vetter) checkRef(n *callang.Ident) {
	if v.temps[n.Name] || strings.EqualFold(n.Name, "today") {
		return
	}
	if _, ok := v.cat.ElemKindOf(n.Name); ok {
		return
	}
	if v.opts.SelfName != "" && strings.EqualFold(n.Name, v.opts.SelfName) {
		return
	}
	v.report(n.Pos, Error, CodeUndefinedRef, "undefined calendar reference %q", n.Name)
}

// checkBinaryKinds is CV003 for union, difference and intersects: both
// operands should collect elements of the same kind.
func (v *vetter) checkBinaryKinds(pos callang.Pos, op string, x, y callang.Expr) {
	gx, okx := callang.ElemKind(x, v.cat)
	gy, oky := callang.ElemKind(y, v.cat)
	if okx && oky && gx != gy {
		v.report(pos, Warning, CodeGranMismatch,
			"granularity mismatch across %q: %v vs %v", op, gx, gy)
	}
}

// checkForeach covers the foreach-specific parts of CV003 (a during-foreach
// whose left side is coarser than its right side is always empty) and CV009
// (the §3.4 `<`/`<=` factorization exception).
func (v *vetter) checkForeach(n *callang.ForeachExpr) {
	gx, okx := callang.ElemKind(n.X, v.cat)
	gy, oky := callang.ElemKind(n.Y, v.cat)
	if okx && oky && n.Op == interval.During && gx.Coarser(gy) {
		v.report(n.Pos, Warning, CodeGranMismatch,
			"foreach %v is always empty: %v elements cannot lie during %v elements", n.Op, gx, gy)
	}
	if callang.BlockedByBeforeException(n, v.cat) {
		v.report(n.Pos, Warning, CodeFactorBlocked,
			"nested foreach is not factorized: the §3.4 exception blocks the rewrite when both operators are `<`/`<=` (other than ≤/≤); the inner calendar keeps a wide generation window")
	}
}

// checkSelection covers CV004 (zero indices) and CV005 (statically empty or
// out-of-range selection lists) for [pred]/X.
func (v *vetter) checkSelection(n *callang.SelectExpr) {
	if len(n.Pred.Items) == 0 {
		v.report(n.Pos, Error, CodeBadSelection, "empty selection predicate")
		return
	}
	maxN, boundKnown := v.maxSelectable(n.X)
	// The symbolic calculus upgrades the heuristic bound to the exact
	// cardinality range when the subject's operands lower to patterns:
	// out-of-range positions then become provable (CV012 instead of CV005).
	exMin, exMax, exact := v.exactCards(n.X)
	if exact {
		maxN, boundKnown = exMax, true
	}
	outOfRange := func(pos callang.Pos, what string, hi int) {
		if exact {
			v.report(pos, Warning, CodeSelectCard,
				"%s provably never selects: groups of the subject hold between %d and %d elements on every window", what, exMin, exMax)
			return
		}
		v.report(pos, Warning, CodeBadSelection,
			"%s is out of range: the subject holds at most %d elements per group", what, hi)
	}
	for _, it := range n.Pred.Items {
		switch {
		case it.Last:
		case it.Range:
			if it.From == 0 || it.To == 0 {
				v.report(n.Pos, Error, CodeZeroIndex,
					"zero selection index in range %d-%d (positions are 1-based; the no-zero convention has no tick 0)", it.From, it.To)
				continue
			}
			if sameSign(it.From, it.To) && it.From > it.To {
				v.report(n.Pos, Warning, CodeBadSelection,
					"selection range %d-%d is statically empty", it.From, it.To)
			}
			if boundKnown && sameSign(it.From, it.To) && abs(it.From) > maxN && abs(it.To) > maxN {
				outOfRange(n.Pos, fmt.Sprintf("selection range %d-%d", it.From, it.To), maxN)
			}
		default:
			if it.Pos == 0 {
				v.report(n.Pos, Error, CodeZeroIndex,
					"zero selection index (positions are 1-based; the no-zero convention has no tick 0)")
				continue
			}
			if boundKnown && abs(it.Pos) > maxN {
				outOfRange(n.Pos, fmt.Sprintf("selection index %d", it.Pos), maxN)
			}
		}
	}
}

// checkLabel is CV004 for label selection: for sub-month basic calendars the
// label is a raw tick, and tick 0 does not exist.
func (v *vetter) checkLabel(n *callang.LabelSelExpr) {
	if n.Num != 0 {
		return
	}
	if g, ok := callang.ElemKind(n.X, v.cat); ok && g.Finer(chronology.Month) {
		v.report(n.Pos, Error, CodeZeroIndex,
			"label selection 0/%v addresses tick 0, which the no-zero convention excludes", g)
	}
}

// checkCall covers CV001 for unknown functions and CV004 for literal zero
// ticks handed to interval() / points().
func (v *vetter) checkCall(n *callang.CallExpr) {
	if !builtins[n.Name] {
		v.report(n.Pos, Error, CodeUndefinedRef, "unknown function %q", n.Name)
	}
	args := n.Args
	if n.Name == "interval" || n.Name == "points" {
		// A trailing identifier declares the tick unit, not a tick.
		if len(args) > 0 {
			if _, isIdent := args[len(args)-1].(*callang.Ident); isIdent {
				args = args[:len(args)-1]
			}
		}
		for _, a := range args {
			if num, ok := a.(*callang.Number); ok && num.Val == 0 {
				v.report(num.Pos, Error, CodeZeroIndex,
					"tick 0 in %s() violates the no-zero convention (the tick before 1 is -1)", n.Name)
			}
		}
	}
	for _, a := range n.Args {
		v.vetExpr(a)
	}
}

// maxSelectable bounds how many elements each group of a selection subject
// can hold, when the subject is a foreach grouping of basic-kind calendars:
// [8]/(DAYS:during:WEEKS) can never select anything, a week holding at most
// 7 days.
func (v *vetter) maxSelectable(x callang.Expr) (int, bool) {
	fe, ok := x.(*callang.ForeachExpr)
	if !ok {
		return 0, false
	}
	switch fe.Op {
	case interval.During, interval.Overlaps, interval.Meets:
	default:
		// `<` and `<=` collect elements across the whole window; no static
		// per-group bound exists.
		return 0, false
	}
	gx, okx := callang.ElemKind(fe.X, v.cat)
	gy, oky := callang.ElemKind(fe.Y, v.cat)
	if !okx || !oky || !gx.Finer(gy) {
		return 0, false
	}
	n := maxUnitsPer(gx, gy)
	if n == 0 {
		return 0, false
	}
	if fe.Op != interval.During {
		// overlaps / meets may pick up one straddling unit on each side.
		n += 2
	}
	return n, true
}

// maxSeconds is the longest span of one unit of g, in seconds.
func maxSeconds(g chronology.Granularity) int64 {
	switch g {
	case chronology.Second:
		return 1
	case chronology.Minute:
		return 60
	case chronology.Hour:
		return 3600
	case chronology.Day:
		return 86400
	case chronology.Week:
		return 7 * 86400
	case chronology.Month:
		return 31 * 86400
	case chronology.Year:
		return 366 * 86400
	case chronology.Decade:
		return 3653 * 86400
	case chronology.Century:
		return 36525 * 86400
	}
	return 0
}

// minSeconds is the shortest span of one unit of g, in seconds.
func minSeconds(g chronology.Granularity) int64 {
	switch g {
	case chronology.Month:
		return 28 * 86400
	case chronology.Year:
		return 365 * 86400
	case chronology.Decade:
		return 3652 * 86400
	case chronology.Century:
		return 36524 * 86400
	}
	return maxSeconds(g)
}

// maxUnitsPer bounds how many units of fine can lie during one unit of
// coarse (generous: longest coarse unit, shortest fine unit).
func maxUnitsPer(fine, coarse chronology.Granularity) int {
	fs, cs := minSeconds(fine), maxSeconds(coarse)
	if fs == 0 || cs == 0 {
		return 0
	}
	return int(cs / fs)
}

func sameSign(a, b int) bool { return (a > 0) == (b > 0) }

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
