package rules

import (
	"errors"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"calsys/internal/chronology"
	"calsys/internal/faultinject"
	"calsys/internal/rules/journal"
	"calsys/internal/store"
)

func openJournal(t *testing.T, opts ...journal.Option) *journal.Journal {
	t.Helper()
	j, err := journal.Open(filepath.Join(t.TempDir(), "firing.journal"),
		append([]journal.Option{journal.WithSync(false)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// A durable daemon retries a flaky action with backoff instead of dropping
// the firing, and the firing commits exactly once.
func TestRetryBackoffThenSuccess(t *testing.T) {
	eng, cal := newEngine(t)
	start := cal.Chron().EpochSecondsOf(d(1993, 1, 1))
	calls := 0
	flaky := FuncAction{Name: "flaky", Fn: func(*store.Txn, *store.Event, int64) error {
		calls++
		if calls <= 2 {
			return errStub
		}
		return nil
	}}
	if err := eng.DefineTemporalRule("flaky", "DAYS", flaky, start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCronWith(eng, chronology.SecondsPerDay, start, CronOptions{
		Journal: openJournal(t),
		Retry:   RetryPolicy{MaxAttempts: 5, BaseDelay: 2, MaxDelay: 60},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First trigger is start+1d; two failures back off 2s then 4s.
	at := start + chronology.SecondsPerDay
	fired, err := cron.AdvanceTo(at)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 || calls != 1 {
		t.Fatalf("after first attempt: fired=%v calls=%d", fired, calls)
	}
	if wake := cron.NextWakeup(); wake <= at || wake > at+10 {
		t.Errorf("retry not backed off: wake=%d at=%d", wake, at)
	}
	// Walk time forward second by second so each retry runs at its backed-
	// off instant (2s after attempt 1, 4s after attempt 2).
	var total []Firing
	for now := at; now <= at+10; now++ {
		fired, err = cron.AdvanceTo(now)
		if err != nil {
			t.Fatal(err)
		}
		total = append(total, fired...)
	}
	if len(total) != 1 || calls != 3 {
		t.Fatalf("after retries: fired=%v calls=%d", total, calls)
	}
	st := cron.FullStats()
	if st.Fired != 1 || st.Retries != 2 || st.Dead != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// A permanently failing action lands in RULE-DEADLETTER once the retry
// budget is exhausted — and never blocks other rules or its own later
// triggers.
func TestDeadLetterAfterBudget(t *testing.T) {
	eng, cal := newEngine(t)
	start := cal.Chron().EpochSecondsOf(d(1993, 1, 1))
	var badCalls, goodHits []int64
	bad := FuncAction{Name: "bad", Fn: func(_ *store.Txn, _ *store.Event, at int64) error {
		badCalls = append(badCalls, at)
		if at == start+chronology.SecondsPerDay {
			return errors.New("disk on fire")
		}
		return nil
	}}
	if err := eng.DefineTemporalRule("sick", "DAYS", bad, start); err != nil {
		t.Fatal(err)
	}
	if err := eng.DefineTemporalRule("healthy", "DAYS", countingAction("good", &goodHits), start); err != nil {
		t.Fatal(err)
	}
	j := openJournal(t)
	cron, err := NewDBCronWith(eng, chronology.SecondsPerDay, start, CronOptions{
		Journal: j,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: 1, MaxDelay: 2},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	end := start + 4*chronology.SecondsPerDay
	for now := start; now <= end; now += 600 {
		if _, err := cron.AdvanceTo(now); err != nil {
			t.Fatal(err)
		}
	}
	dls, err := eng.DeadLetters()
	if err != nil {
		t.Fatal(err)
	}
	if len(dls) != 1 {
		t.Fatalf("dead letters = %+v", dls)
	}
	dl := dls[0]
	if dl.Rule != "sick" || dl.At != start+chronology.SecondsPerDay || dl.Attempts != 3 ||
		!strings.Contains(dl.LastError, "disk on fire") {
		t.Errorf("dead letter = %+v", dl)
	}
	// The healthy rule fired every day, and the sick rule's LATER triggers
	// fired too — the dead instant did not wedge the schedule.
	if len(goodHits) != 4 {
		t.Errorf("healthy rule fired %d times, want 4", len(goodHits))
	}
	var laterOK int
	for _, at := range badCalls {
		if at > start+chronology.SecondsPerDay {
			laterOK++
		}
	}
	if laterOK != 3 {
		t.Errorf("sick rule's later triggers fired %d times, want 3 (calls=%v)", laterOK, badCalls)
	}
	if st := cron.FullStats(); st.Dead != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The journal closed the firing out as dead.
	if len(j.Pending()) != 0 {
		t.Errorf("journal pending = %+v", j.Pending())
	}
}

// A panicking action is isolated: converted to an error, retried, and
// dead-lettered like any other failure — the daemon survives.
func TestPanicIsolation(t *testing.T) {
	eng, cal := newEngine(t)
	start := cal.Chron().EpochSecondsOf(d(1993, 1, 1))
	boom := FuncAction{Name: "boom", Fn: func(*store.Txn, *store.Event, int64) error {
		panic("kaboom")
	}}
	if err := eng.DefineTemporalRule("panicky", "DAYS", boom, start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCronWith(eng, chronology.SecondsPerDay, start, CronOptions{
		Journal: openJournal(t),
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: 1, MaxDelay: 1},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for now := start; now <= start+2*chronology.SecondsPerDay; now += 600 {
		if _, err := cron.AdvanceTo(now); err != nil {
			t.Fatal(err)
		}
	}
	dls, _ := eng.DeadLetters()
	if len(dls) == 0 || !strings.Contains(dls[0].LastError, "panicked") {
		t.Fatalf("dead letters = %+v", dls)
	}
}

// A stuck action trips the per-action deadline; when the straggler
// eventually commits, the retry's dedup check sees the advanced RULE-TIME
// and does not execute the action a second time.
func TestActionDeadline(t *testing.T) {
	eng, cal := newEngine(t)
	start := cal.Chron().EpochSecondsOf(d(1993, 1, 1))
	var calls atomic.Int64
	slow := FuncAction{Name: "slow", Fn: func(*store.Txn, *store.Event, int64) error {
		calls.Add(1)
		time.Sleep(100 * time.Millisecond)
		return nil
	}}
	if err := eng.DefineTemporalRule("slow", "DAYS", slow, start); err != nil {
		t.Fatal(err)
	}
	at := start + chronology.SecondsPerDay
	if err := eng.fireChecked("slow", at, 10*time.Millisecond, nil); !errors.Is(err, ErrActionTimeout) {
		t.Fatalf("err = %v, want deadline", err)
	}
	// Let the straggler commit, then retry: it must dedup, not re-execute.
	time.Sleep(200 * time.Millisecond)
	if err := eng.fireChecked("slow", at, 10*time.Millisecond, nil); err != nil {
		t.Fatalf("retry after straggler commit: %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("action executed %d times, want 1", n)
	}
}

// Regression for the stale scheduled-set bug: dropping (or redefining) a
// rule while it sits in the probe window must not suppress the successor's
// firings, and the dropped rule's heap entries must go with it.
func TestScheduledBookkeepingOnDropAndRedefine(t *testing.T) {
	eng, cal := newEngine(t)
	start := cal.Chron().EpochSecondsOf(d(1993, 1, 1))
	var oldHits, newHits []int64
	if err := eng.DefineTemporalRule("daily", "DAYS", countingAction("old", &oldHits), start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCron(eng, 7*chronology.SecondsPerDay, start)
	if err != nil {
		t.Fatal(err)
	}
	// Probe happens; the rule is now scheduled inside the 7-day window.
	if _, err := cron.AdvanceTo(start + 3600); err != nil {
		t.Fatal(err)
	}
	if n := cron.queue.size(); n != 1 {
		t.Fatalf("pending = %d, want the daily rule scheduled", n)
	}
	// Drop and redefine before the firing instant.
	if err := eng.DropRule("daily"); err != nil {
		t.Fatal(err)
	}
	if got := cron.FullStats().Pending; got != 0 {
		t.Fatalf("heap not purged on drop: %d entries", got)
	}
	if err := eng.DefineTemporalRule("DAILY", "DAYS", countingAction("new", &newHits), start+3600); err != nil {
		t.Fatal(err)
	}
	for nowd := int64(1); nowd <= 7; nowd++ {
		if _, err := cron.AdvanceTo(start + nowd*chronology.SecondsPerDay); err != nil {
			t.Fatal(err)
		}
	}
	if len(oldHits) != 0 {
		t.Errorf("dropped rule fired: %v", oldHits)
	}
	// Without the fix the stale scheduled entry suppresses every firing
	// until the next window rollover.
	if len(newHits) != 7 {
		t.Errorf("redefined rule fired %d times in 7 days, want 7", len(newHits))
	}
}

// Satellite: the seed heap container rebuilds the scheduled set by scanning
// the heap each window, so entries cannot leak across rollovers. (The
// timing-wheel container instead maintains the set incrementally at every
// queue boundary — covered by TestScheduledBookkeepingOnDropAndRedefine and
// the wheel property tests.)
func TestScheduledSetRebuiltOnRollover(t *testing.T) {
	eng, cal := newEngine(t)
	start := cal.Chron().EpochSecondsOf(d(1993, 1, 1))
	var hits []int64
	if err := eng.DefineTemporalRule("daily", "DAYS", countingAction("n", &hits), start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCronWith(eng, chronology.SecondsPerDay, start, CronOptions{DisableWheel: true})
	if err != nil {
		t.Fatal(err)
	}
	// Inject a stale entry directly (models any bookkeeping leak).
	cron.mu.Lock()
	cron.scheduled["daily"] = true
	cron.mu.Unlock()
	if _, err := cron.AdvanceTo(start + 2*chronology.SecondsPerDay); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Errorf("fired %d times with stale scheduled entry, want 2", len(hits))
	}
}

// Satellite: DefineTemporalRule is atomic — a failure after the RULE-INFO
// write must leave no partial catalog rows behind, and the name stays
// definable.
func TestDefineTemporalRuleAtomicUnderFault(t *testing.T) {
	eng, cal := newEngine(t)
	start := cal.Chron().EpochSecondsOf(d(1993, 1, 1))
	inj := faultinject.New(1)
	inj.FailAt(SiteDefineRuleTime, 1)
	eng.SetFaults(inj)
	var hits []int64
	if err := eng.DefineTemporalRule("daily", "DAYS", countingAction("n", &hits), start); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	for _, table := range []string{RuleInfoTable, RuleTimeTable} {
		tab, _ := eng.db.Table(table)
		if tab.Len() != 0 {
			t.Errorf("%s has %d rows after failed define", table, tab.Len())
		}
	}
	// The fault is spent; the same name defines cleanly now.
	if err := eng.DefineTemporalRule("daily", "DAYS", countingAction("n", &hits), start); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DueWithin(start, 2*chronology.SecondsPerDay); err != nil {
		t.Fatal(err)
	}
}

// Satellite: a clean shutdown drains the pending heap — everything already
// due fires before Run returns, and the stats agree with the firings.
func TestRunDrainsOnShutdown(t *testing.T) {
	eng, cal := newEngine(t)
	start := cal.Chron().EpochSecondsOf(d(1993, 1, 1))
	var hits []int64
	if err := eng.DefineTemporalRule("daily", "DAYS", countingAction("n", &hits), start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCronWith(eng, chronology.SecondsPerDay, start, CronOptions{
		Journal: openJournal(t),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Anchor the clock 3 model-days past start and stop immediately: the
	// drain pass must still fire all three due triggers.
	clock := SystemClock{Anchor: time.Now().Add(-time.Duration(start+3*chronology.SecondsPerDay) * time.Second)}
	stop := make(chan struct{})
	close(stop)
	errs := make(chan error, 4)
	cron.Run(clock, stop, errs)
	if len(hits) != 3 {
		t.Fatalf("drain fired %d times, want 3", len(hits))
	}
	st := cron.FullStats()
	if st.Fired != 3 {
		t.Errorf("stats after drain = %+v", st)
	}
	// Nothing DUE may remain; a future trigger scheduled in-window is fine.
	if wake := cron.NextWakeup(); wake <= clock.Now() {
		t.Errorf("due work left behind: wake=%d now=%d", wake, clock.Now())
	}
	if st.LateSum < 0 {
		t.Errorf("negative lateness %d", st.LateSum)
	}
}

// CatchUpPolicy round-trips through its string form.
func TestCatchUpPolicyParse(t *testing.T) {
	for _, p := range []CatchUpPolicy{FireAll, FireLast, SkipMissed} {
		got, err := ParseCatchUpPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round-trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParseCatchUpPolicy("yolo"); err == nil {
		t.Error("bad policy accepted")
	}
}

// Backoff grows exponentially, caps at MaxDelay, and stays deterministic
// for a fixed seed.
func TestBackoffShape(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 9, BaseDelay: 2, MaxDelay: 30}
	var prev int64
	for attempt := 1; attempt <= 8; attempt++ {
		got := p.backoff(attempt, nil)
		if got < prev {
			t.Errorf("backoff shrank at attempt %d: %d < %d", attempt, got, prev)
		}
		if got > 30 {
			t.Errorf("backoff over cap at attempt %d: %d", attempt, got)
		}
		prev = got
	}
	if p.backoff(1, nil) != 2 || p.backoff(2, nil) != 4 || p.backoff(8, nil) != 30 {
		t.Errorf("backoff schedule: %d %d %d", p.backoff(1, nil), p.backoff(2, nil), p.backoff(8, nil))
	}
}
