package rules

import (
	"fmt"
	"strings"
	"sync"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/core/callang"
	"calsys/internal/core/plan"
	"calsys/internal/store"
)

// Catalog table names (Figure 4).
const (
	RuleInfoTable = "RULE_INFO"
	RuleTimeTable = "RULE_TIME"
)

// Action is what a rule does when it triggers. The Postquel package supplies
// an implementation that runs query-language commands; tests and examples
// use Go callbacks.
type Action interface {
	// Execute runs the action inside the firing transaction. ev is non-nil
	// for event rules; firedAt is the trigger instant (epoch seconds) for
	// temporal rules.
	Execute(tx *store.Txn, ev *store.Event, firedAt int64) error
	// Describe renders the action for the RULE-INFO catalog.
	Describe() string
}

// FuncAction wraps a Go callback as an Action (the paper's "do Proc_X").
type FuncAction struct {
	Name string
	Fn   func(tx *store.Txn, ev *store.Event, firedAt int64) error
}

// Execute implements Action.
func (a FuncAction) Execute(tx *store.Txn, ev *store.Event, firedAt int64) error {
	return a.Fn(tx, ev, firedAt)
}

// Describe implements Action.
func (a FuncAction) Describe() string { return a.Name }

// Condition guards an event rule (the where clause); nil means always.
type Condition func(tx *store.Txn, ev store.Event) (bool, error)

// temporalRule is the in-memory form of one temporal rule.
type temporalRule struct {
	name   string
	src    string
	expr   callang.Expr
	action Action
	// prepped is the inlined+factorized expression with its inferred
	// granularity, so each firing only recompiles the window-dependent plan.
	// prepGen records the calendar-catalog generation it was prepared at;
	// next-trigger computation re-prepares when the catalog has changed, so
	// redefined calendars are picked up on the next firing.
	prepped callang.Expr
	gran    chronology.Granularity
	prepGen uint64
	// next trigger in epoch seconds; noTrigger when dormant.
	next int64
}

// eventRule is the in-memory form of one event rule.
type eventRule struct {
	name   string
	op     store.EventOp
	table  string
	cond   Condition
	action Action
}

// noTrigger marks a dormant temporal rule (no upcoming instant in the
// lookahead horizon).
const noTrigger = int64(1) << 62

// Engine owns both rule catalogs and dispatches event rules; DBCron drives
// its temporal rules.
type Engine struct {
	cal *caldb.Manager
	db  *store.DB

	// LookaheadDays bounds how far ahead next-trigger computation searches
	// (default 730 days).
	LookaheadDays int64

	mu       sync.Mutex
	temporal map[string]*temporalRule
	events   map[string]*eventRule
	// orphans are rule names found in RULE-INFO at startup (e.g. after a
	// snapshot restore) whose actions — which are code — have not been
	// re-attached yet. Redefining an orphaned rule replaces its catalog
	// rows instead of failing as a duplicate.
	orphans map[string]bool
}

// NewEngine creates the rule catalogs and registers the event dispatcher.
func NewEngine(cal *caldb.Manager) (*Engine, error) {
	e := &Engine{
		cal:           cal,
		db:            cal.DB(),
		LookaheadDays: 730,
		temporal:      map[string]*temporalRule{},
		events:        map[string]*eventRule{},
		orphans:       map[string]bool{},
	}
	if _, ok := e.db.Table(RuleInfoTable); !ok {
		schema, err := store.NewSchema(
			store.Column{Name: "name", Type: store.TText},
			store.Column{Name: "kind", Type: store.TText}, // temporal | event
			store.Column{Name: "event", Type: store.TText},
			store.Column{Name: "tab", Type: store.TText},
			store.Column{Name: "calendar_expr", Type: store.TText},
			store.Column{Name: "eval_plan", Type: store.TText},
			store.Column{Name: "action", Type: store.TText},
		)
		if err != nil {
			return nil, err
		}
		if err := e.db.CreateTable(RuleInfoTable, schema); err != nil {
			return nil, err
		}
		if err := e.db.CreateIndex(RuleInfoTable, "name"); err != nil {
			return nil, err
		}
	}
	if _, ok := e.db.Table(RuleTimeTable); !ok {
		schema, err := store.NewSchema(
			store.Column{Name: "name", Type: store.TText},
			store.Column{Name: "next_trigger", Type: store.TInt}, // epoch seconds
		)
		if err != nil {
			return nil, err
		}
		if err := e.db.CreateTable(RuleTimeTable, schema); err != nil {
			return nil, err
		}
		if err := e.db.CreateIndex(RuleTimeTable, "next_trigger"); err != nil {
			return nil, err
		}
	}
	// Rules restored from a snapshot have catalog rows but no attached
	// actions (actions are code); record them so redefinition reattaches.
	if tab, ok := e.db.Table(RuleInfoTable); ok {
		tab.Scan(func(_ int64, row store.Row) bool {
			e.orphans[strings.ToLower(row[0].S)] = true
			return true
		})
	}
	e.db.AddListener(e.dispatch)
	return e, nil
}

// Orphans lists rules present in RULE-INFO whose actions must be reattached
// by redefining them (after a snapshot restore).
func (e *Engine) Orphans() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.orphans))
	for name := range e.orphans {
		out = append(out, name)
	}
	return out
}

// reattachIfOrphan clears the stale catalog rows of an orphaned rule so a
// fresh definition can replace them. It reports whether name was orphaned.
func (e *Engine) reattachIfOrphan(name string) (bool, error) {
	key := strings.ToLower(name)
	e.mu.Lock()
	orphan := e.orphans[key]
	if orphan {
		delete(e.orphans, key)
	}
	e.mu.Unlock()
	if !orphan {
		return false, nil
	}
	err := e.db.RunTxn(func(tx *store.Txn) error {
		for _, table := range []string{RuleInfoTable, RuleTimeTable} {
			tab, _ := e.db.Table(table)
			rids, err := tab.LookupEq("name", store.NewText(name))
			if err != nil {
				return err
			}
			for _, rid := range rids {
				if err := tx.Delete(table, rid); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return true, err
}

// Cal exposes the calendar catalog.
func (e *Engine) Cal() *caldb.Manager { return e.cal }

// DefineTemporalRule declares a rule "On <calendar expression> do <action>".
// The expression is parsed, its plan stored in RULE-INFO, and the rule's
// first trigger strictly after `now` recorded in RULE-TIME.
func (e *Engine) DefineTemporalRule(name, calExpr string, action Action, now int64) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("rules: empty rule name")
	}
	if action == nil {
		return fmt.Errorf("rules: rule %q needs an action", name)
	}
	e.mu.Lock()
	_, dupT := e.temporal[strings.ToLower(name)]
	_, dupE := e.events[strings.ToLower(name)]
	e.mu.Unlock()
	if dupT || dupE {
		return fmt.Errorf("rules: rule %q already defined", name)
	}
	if _, err := e.reattachIfOrphan(name); err != nil {
		return err
	}
	expr, err := callang.ParseExpr(calExpr)
	if err != nil {
		return err
	}
	r := &temporalRule{name: name, src: calExpr, expr: expr, action: action}
	next, planText, err := e.nextTrigger(r, now)
	if err != nil {
		return err
	}
	r.next = next

	if err := e.db.RunTxn(func(tx *store.Txn) error {
		if _, err := tx.Append(RuleInfoTable, store.Row{
			store.NewText(name), store.NewText("temporal"), store.NewText(""), store.NewText(""),
			store.NewText(calExpr), store.NewText(planText), store.NewText(action.Describe()),
		}); err != nil {
			return err
		}
		_, err := tx.Append(RuleTimeTable, store.Row{store.NewText(name), store.NewInt(next)})
		return err
	}); err != nil {
		return err
	}
	e.mu.Lock()
	e.temporal[strings.ToLower(name)] = r
	e.mu.Unlock()
	return nil
}

// DefineEventRule declares "On <event> to <table> [where cond] do <action>".
func (e *Engine) DefineEventRule(name string, op store.EventOp, table string, cond Condition, action Action) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("rules: empty rule name")
	}
	if action == nil {
		return fmt.Errorf("rules: rule %q needs an action", name)
	}
	if _, ok := e.db.Table(table); !ok {
		return fmt.Errorf("rules: no table %q", table)
	}
	e.mu.Lock()
	_, dupT := e.temporal[strings.ToLower(name)]
	_, dupE := e.events[strings.ToLower(name)]
	e.mu.Unlock()
	if dupT || dupE {
		return fmt.Errorf("rules: rule %q already defined", name)
	}
	if _, err := e.reattachIfOrphan(name); err != nil {
		return err
	}
	if err := e.db.RunTxn(func(tx *store.Txn) error {
		_, err := tx.Append(RuleInfoTable, store.Row{
			store.NewText(name), store.NewText("event"), store.NewText(op.String()), store.NewText(table),
			store.NewText(""), store.NewText(""), store.NewText(action.Describe()),
		})
		return err
	}); err != nil {
		return err
	}
	e.mu.Lock()
	e.events[strings.ToLower(name)] = &eventRule{name: name, op: op, table: table, cond: cond, action: action}
	e.mu.Unlock()
	return nil
}

// DropRule removes a rule of either kind.
func (e *Engine) DropRule(name string) error {
	key := strings.ToLower(name)
	e.mu.Lock()
	_, isT := e.temporal[key]
	_, isE := e.events[key]
	delete(e.temporal, key)
	delete(e.events, key)
	e.mu.Unlock()
	if !isT && !isE {
		return fmt.Errorf("rules: no rule %q", name)
	}
	return e.db.RunTxn(func(tx *store.Txn) error {
		for _, table := range []string{RuleInfoTable, RuleTimeTable} {
			tab, _ := e.db.Table(table)
			rids, err := tab.LookupEq("name", store.NewText(name))
			if err != nil {
				return err
			}
			for _, rid := range rids {
				if err := tx.Delete(table, rid); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// RuleNames lists rules of both kinds.
func (e *Engine) RuleNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, r := range e.temporal {
		out = append(out, r.name)
	}
	for _, r := range e.events {
		out = append(out, r.name)
	}
	return out
}

// dispatch is the store listener delivering events to event rules.
func (e *Engine) dispatch(tx *store.Txn, ev store.Event) error {
	// Never dispatch on the rule catalogs themselves.
	if ev.Table == RuleInfoTable || ev.Table == RuleTimeTable {
		return nil
	}
	e.mu.Lock()
	matching := make([]*eventRule, 0, 2)
	for _, r := range e.events {
		if r.op == ev.Op && strings.EqualFold(r.table, ev.Table) {
			matching = append(matching, r)
		}
	}
	e.mu.Unlock()
	for _, r := range matching {
		if r.cond != nil {
			ok, err := r.cond(tx, ev)
			if err != nil {
				return fmt.Errorf("rules: rule %s condition: %w", r.name, err)
			}
			if !ok {
				continue
			}
		}
		if err := r.action.Execute(tx, &ev, 0); err != nil {
			return fmt.Errorf("rules: rule %s action: %w", r.name, err)
		}
	}
	return nil
}

// nextTrigger evaluates a temporal rule's calendar expression over the
// lookahead horizon and returns the first trigger instant strictly after
// now, plus the compiled plan's rendering for RULE-INFO.
func (e *Engine) nextTrigger(r *temporalRule, now int64) (int64, string, error) {
	ch := e.cal.Chron()
	env := e.cal.Env()
	fromDay := ch.TickAt(chronology.Day, now)
	from := ch.CivilOfDayTick(fromDay)
	to := from.AddDays(e.LookaheadDays)

	gen := e.cal.CatalogGeneration()
	e.mu.Lock()
	prepped, gran := r.prepped, r.gran
	if r.prepGen != gen {
		prepped = nil
	}
	e.mu.Unlock()
	if prepped == nil {
		var err error
		prepped, gran, err = plan.Prepare(env, r.expr, nil)
		if err != nil {
			return 0, "", err
		}
		e.mu.Lock()
		r.prepped, r.gran, r.prepGen = prepped, gran, gen
		e.mu.Unlock()
	}
	win, err := plan.CivilWindow(ch, gran, from, to)
	if err != nil {
		return 0, "", err
	}
	p, err := plan.Compile(env, prepped, nil, gran, win)
	if err != nil {
		return 0, "", err
	}
	cal, err := p.Exec(env, nil)
	if err != nil {
		return 0, "", err
	}
	next := int64(noTrigger)
	for _, iv := range cal.Flatten().Intervals() {
		at := ch.UnitStart(gran, iv.Lo)
		if at > now && at < next {
			next = at
		}
	}
	return next, p.String(), nil
}

// updateRuleTime persists a rule's recomputed next trigger.
func (e *Engine) updateRuleTime(name string, next int64) error {
	tab, _ := e.db.Table(RuleTimeTable)
	rids, err := tab.LookupEq("name", store.NewText(name))
	if err != nil || len(rids) == 0 {
		return fmt.Errorf("rules: RULE_TIME row for %q missing", name)
	}
	return e.db.RunTxn(func(tx *store.Txn) error {
		return tx.Replace(RuleTimeTable, rids[0], store.Row{store.NewText(name), store.NewInt(next)})
	})
}

// DueWithin returns the temporal rules with next trigger at or before
// now+T from RULE-TIME — DBCRON's probe. Overdue rules (trigger <= now) are
// included so a busy or restarted daemon never loses a firing.
func (e *Engine) DueWithin(now, T int64) ([]Firing, error) {
	tab, ok := e.db.Table(RuleTimeTable)
	if !ok {
		return nil, fmt.Errorf("rules: RULE_TIME missing")
	}
	hi := store.NewInt(now + T)
	rids, err := tab.LookupRange("next_trigger", nil, &hi)
	if err != nil {
		return nil, err
	}
	out := make([]Firing, 0, len(rids))
	for _, rid := range rids {
		row, ok := tab.Get(rid)
		if !ok {
			continue
		}
		out = append(out, Firing{Rule: row[0].S, At: row[1].I})
	}
	return out, nil
}

// Firing is one scheduled rule activation.
type Firing struct {
	Rule string
	At   int64 // epoch seconds
}

// fire executes a temporal rule's action and recomputes its next trigger.
func (e *Engine) fire(name string, at int64) error {
	e.mu.Lock()
	r, ok := e.temporal[strings.ToLower(name)]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("rules: temporal rule %q disappeared", name)
	}
	if err := e.db.RunTxn(func(tx *store.Txn) error {
		return r.action.Execute(tx, nil, at)
	}); err != nil {
		return fmt.Errorf("rules: rule %s action: %w", name, err)
	}
	next, _, err := e.nextTrigger(r, at)
	if err != nil {
		return err
	}
	e.mu.Lock()
	r.next = next
	e.mu.Unlock()
	return e.updateRuleTime(name, next)
}

// nextOf reports a temporal rule's cached next trigger (noTrigger when
// dormant or unknown).
func (e *Engine) nextOf(name string) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.temporal[strings.ToLower(name)]; ok {
		return r.next
	}
	return noTrigger
}

// RuleInfoRow renders a rule's RULE-INFO tuple.
func (e *Engine) RuleInfoRow(name string) (string, error) {
	tab, _ := e.db.Table(RuleInfoTable)
	rids, err := tab.LookupEq("name", store.NewText(name))
	if err != nil || len(rids) == 0 {
		return "", fmt.Errorf("rules: no rule %q", name)
	}
	row, _ := tab.Get(rids[0])
	var b strings.Builder
	fmt.Fprintf(&b, "Name     | %s\n", row[0].S)
	fmt.Fprintf(&b, "Kind     | %s\n", row[1].S)
	if row[1].S == "event" {
		fmt.Fprintf(&b, "Event    | %s on %s\n", row[2].S, row[3].S)
	} else {
		fmt.Fprintf(&b, "Calendar | %s\n", row[4].S)
		fmt.Fprintf(&b, "Plan     | %s\n", strings.ReplaceAll(row[5].S, "\n", " ; "))
	}
	fmt.Fprintf(&b, "Action   | %s\n", row[6].S)
	return b.String(), nil
}
