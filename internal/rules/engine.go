package rules

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"calsys/internal/caldb"
	"calsys/internal/core/callang"
	"calsys/internal/core/plan"
	"calsys/internal/faultinject"
	"calsys/internal/store"
)

// Catalog table names (Figure 4), plus the dead-letter table for firings
// that exhausted their retry budget.
const (
	RuleInfoTable   = "RULE_INFO"
	RuleTimeTable   = "RULE_TIME"
	DeadLetterTable = "RULE_DEADLETTER"
)

// Fault-injection sites in the engine.
const (
	// SiteFire is hit inside the firing transaction, before the action
	// executes: a crash here rolls the firing back (crash-before-commit).
	SiteFire = "engine.fire"
	// SiteDefineRuleTime is hit between the RULE-INFO and RULE-TIME appends
	// of a definition, exercising mid-definition atomicity.
	SiteDefineRuleTime = "engine.define.ruletime"
)

// ErrActionTimeout reports an action that exceeded its per-firing deadline.
// The attempt counts as failed for retry purposes; if the straggler commits
// later anyway, the retry detects it via RULE-TIME and does not re-execute.
var ErrActionTimeout = errors.New("action deadline exceeded")

// errAlreadyFired is returned inside the firing transaction when RULE-TIME
// shows the firing already committed (a crashed or timed-out earlier attempt
// that made it through) — the caller treats it as success without
// re-executing, giving exactly-once over a journal replay.
var errAlreadyFired = errors.New("rules: firing already committed")

// Action is what a rule does when it triggers. The Postquel package supplies
// an implementation that runs query-language commands; tests and examples
// use Go callbacks.
type Action interface {
	// Execute runs the action inside the firing transaction. ev is non-nil
	// for event rules; firedAt is the trigger instant (epoch seconds) for
	// temporal rules.
	Execute(tx *store.Txn, ev *store.Event, firedAt int64) error
	// Describe renders the action for the RULE-INFO catalog.
	Describe() string
}

// FuncAction wraps a Go callback as an Action (the paper's "do Proc_X").
type FuncAction struct {
	Name string
	Fn   func(tx *store.Txn, ev *store.Event, firedAt int64) error
}

// Execute implements Action.
func (a FuncAction) Execute(tx *store.Txn, ev *store.Event, firedAt int64) error {
	return a.Fn(tx, ev, firedAt)
}

// Describe implements Action.
func (a FuncAction) Describe() string { return a.Name }

// Condition guards an event rule (the where clause); nil means always.
type Condition func(tx *store.Txn, ev store.Event) (bool, error)

// temporalRule is the in-memory form of one temporal rule.
type temporalRule struct {
	name   string
	src    string
	expr   callang.Expr
	action Action
	// group is the shared plan group the rule was last resolved into, with
	// the calendar-catalog generation it belongs to; next-trigger computation
	// re-resolves when the catalog has changed, so redefined calendars are
	// picked up on the next firing.
	group    *planGroup
	groupGen uint64
	// next trigger in epoch seconds; noTrigger when dormant.
	next int64
}

// planGroup is one shared prepared plan: every temporal rule whose
// expression prepares (inlines + factorizes) to the same canonical plan text
// at the same catalog generation shares one Scheduler, so N rules over the
// same calendar expression pay for one plan and one next-instant computation
// per instant — the shared-plan fan-out.
type planGroup struct {
	key   string
	gen   uint64
	sched *plan.Scheduler
}

// eventRule is the in-memory form of one event rule.
type eventRule struct {
	name   string
	op     store.EventOp
	table  string
	cond   Condition
	action Action
}

// noTrigger marks a dormant temporal rule (no upcoming instant in the
// lookahead horizon).
const noTrigger = int64(1) << 62

// Engine owns both rule catalogs and dispatches event rules; DBCron drives
// its temporal rules.
type Engine struct {
	cal *caldb.Manager
	db  *store.DB

	// LookaheadDays bounds how far ahead next-trigger computation searches
	// (default 730 days).
	LookaheadDays int64
	// DisableNextKernel forces the seed windowed next-trigger path (every
	// computation evaluates the full lookahead window); the ablation switch
	// the kernel benchmarks compare against.
	DisableNextKernel bool

	mu       sync.Mutex
	temporal map[string]*temporalRule
	events   map[string]*eventRule
	// groups shares one plan.Scheduler among all rules over the same
	// prepared plan; groupsGen is the catalog generation the map was built
	// at (a mismatch discards the whole map).
	groups    map[string]*planGroup
	groupsGen uint64
	// orphans are rule names found in RULE-INFO at startup (e.g. after a
	// snapshot restore) whose actions — which are code — have not been
	// re-attached yet. Redefining an orphaned rule replaces its catalog
	// rows instead of failing as a duplicate; ReattachAction re-binds the
	// action while preserving the persisted trigger state.
	orphans map[string]bool
	// onDrop listeners let daemons discard in-memory schedule state for a
	// dropped rule (lower-cased name). Keyed by registration id so a
	// per-shard daemon can unhook itself on handoff (DBCron.Close).
	onDrop     map[int]func(name string)
	nextDropID int
	// faults is the optional fault-injection harness (nil in production).
	faults *faultinject.Injector
}

// SetFaults threads a fault injector through the engine's injection sites
// (tests only; nil disables).
func (e *Engine) SetFaults(in *faultinject.Injector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.faults = in
}

func (e *Engine) injector() *faultinject.Injector {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.faults
}

// addDropListener registers a callback invoked (outside the engine lock)
// after a rule is dropped, and returns an id for removeDropListener.
func (e *Engine) addDropListener(fn func(name string)) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.onDrop == nil {
		e.onDrop = map[int]func(name string){}
	}
	id := e.nextDropID
	e.nextDropID++
	e.onDrop[id] = fn
	return id
}

// removeDropListener unhooks a listener registered with addDropListener.
func (e *Engine) removeDropListener(id int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.onDrop, id)
}

// NewEngine creates the rule catalogs and registers the event dispatcher.
func NewEngine(cal *caldb.Manager) (*Engine, error) {
	e := &Engine{
		cal:           cal,
		db:            cal.DB(),
		LookaheadDays: 730,
		temporal:      map[string]*temporalRule{},
		events:        map[string]*eventRule{},
		groups:        map[string]*planGroup{},
		orphans:       map[string]bool{},
	}
	if _, ok := e.db.Table(RuleInfoTable); !ok {
		schema, err := store.NewSchema(
			store.Column{Name: "name", Type: store.TText},
			store.Column{Name: "kind", Type: store.TText}, // temporal | event
			store.Column{Name: "event", Type: store.TText},
			store.Column{Name: "tab", Type: store.TText},
			store.Column{Name: "calendar_expr", Type: store.TText},
			store.Column{Name: "eval_plan", Type: store.TText},
			store.Column{Name: "action", Type: store.TText},
		)
		if err != nil {
			return nil, err
		}
		if err := e.db.CreateTable(RuleInfoTable, schema); err != nil {
			return nil, err
		}
		if err := e.db.CreateIndex(RuleInfoTable, "name"); err != nil {
			return nil, err
		}
	}
	if _, ok := e.db.Table(RuleTimeTable); !ok {
		schema, err := store.NewSchema(
			store.Column{Name: "name", Type: store.TText},
			store.Column{Name: "next_trigger", Type: store.TInt}, // epoch seconds
		)
		if err != nil {
			return nil, err
		}
		if err := e.db.CreateTable(RuleTimeTable, schema); err != nil {
			return nil, err
		}
		if err := e.db.CreateIndex(RuleTimeTable, "next_trigger"); err != nil {
			return nil, err
		}
	}
	// Every firing resolves its RULE-TIME row by name inside the firing
	// transaction; without this index that lookup is a full scan and the
	// daemon degrades to O(rules) per firing at fleet scale. Built outside
	// the create block so databases restored from older snapshots (which
	// carry the table but not the index) are upgraded on open.
	if tab, ok := e.db.Table(RuleTimeTable); ok && !tab.HasIndex("name") {
		if err := e.db.CreateIndex(RuleTimeTable, "name"); err != nil {
			return nil, err
		}
	}
	if _, ok := e.db.Table(DeadLetterTable); !ok {
		schema, err := store.NewSchema(
			store.Column{Name: "name", Type: store.TText},
			store.Column{Name: "fired_at", Type: store.TInt}, // trigger instant, epoch seconds
			store.Column{Name: "attempts", Type: store.TInt},
			store.Column{Name: "last_error", Type: store.TText},
			store.Column{Name: "dead_at", Type: store.TInt}, // when it was given up on
		)
		if err != nil {
			return nil, err
		}
		if err := e.db.CreateTable(DeadLetterTable, schema); err != nil {
			return nil, err
		}
		if err := e.db.CreateIndex(DeadLetterTable, "name"); err != nil {
			return nil, err
		}
	}
	// Rules restored from a snapshot have catalog rows but no attached
	// actions (actions are code); record them so redefinition reattaches.
	if tab, ok := e.db.Table(RuleInfoTable); ok {
		tab.Scan(func(_ int64, row store.Row) bool {
			e.orphans[strings.ToLower(row[0].S)] = true
			return true
		})
	}
	e.db.AddListener(e.dispatch)
	return e, nil
}

// Orphans lists rules present in RULE-INFO whose actions must be reattached
// by redefining them (after a snapshot restore).
func (e *Engine) Orphans() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.orphans))
	for name := range e.orphans {
		out = append(out, name)
	}
	return out
}

// takeOrphan claims an orphaned rule name for redefinition, reporting
// whether it was orphaned. If the definition then fails, restoreOrphan puts
// the claim back so the catalog rows stay reattachable.
func (e *Engine) takeOrphan(name string) bool {
	key := strings.ToLower(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.orphans[key] {
		return false
	}
	delete(e.orphans, key)
	return true
}

func (e *Engine) restoreOrphan(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.orphans[strings.ToLower(name)] = true
}

// deleteCatalogRows removes a rule's RULE-INFO and RULE-TIME rows inside tx.
func (e *Engine) deleteCatalogRows(tx *store.Txn, name string) error {
	for _, table := range []string{RuleInfoTable, RuleTimeTable} {
		tab, _ := e.db.Table(table)
		rids, err := tab.LookupEq("name", store.NewText(name))
		if err != nil {
			return err
		}
		for _, rid := range rids {
			if err := tx.Delete(table, rid); err != nil {
				return err
			}
		}
	}
	return nil
}

// Cal exposes the calendar catalog.
func (e *Engine) Cal() *caldb.Manager { return e.cal }

// DefineTemporalRule declares a rule "On <calendar expression> do <action>".
// The expression is parsed, its plan stored in RULE-INFO, and the rule's
// first trigger strictly after `now` recorded in RULE-TIME.
//
// The definition is atomic: parsing and next-trigger computation happen
// before any catalog mutation, and the orphan cleanup plus both catalog
// appends run in one transaction, so a mid-definition failure leaves no
// partial rows and an orphaned rule stays reattachable.
func (e *Engine) DefineTemporalRule(name, calExpr string, action Action, now int64) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("rules: empty rule name")
	}
	if action == nil {
		return fmt.Errorf("rules: rule %q needs an action", name)
	}
	e.mu.Lock()
	_, dupT := e.temporal[strings.ToLower(name)]
	_, dupE := e.events[strings.ToLower(name)]
	e.mu.Unlock()
	if dupT || dupE {
		return fmt.Errorf("rules: rule %q already defined", name)
	}
	expr, err := callang.ParseExpr(calExpr)
	if err != nil {
		return err
	}
	r := &temporalRule{name: name, src: calExpr, expr: expr, action: action}
	next, planText, err := e.nextTrigger(r, now)
	if err != nil {
		return err
	}
	r.next = next

	wasOrphan := e.takeOrphan(name)
	if err := e.db.RunTxn(func(tx *store.Txn) error {
		if wasOrphan {
			if err := e.deleteCatalogRows(tx, name); err != nil {
				return err
			}
		}
		if _, err := tx.Append(RuleInfoTable, store.Row{
			store.NewText(name), store.NewText("temporal"), store.NewText(""), store.NewText(""),
			store.NewText(calExpr), store.NewText(planText), store.NewText(action.Describe()),
		}); err != nil {
			return err
		}
		if err := faultinject.Hit(e.injector(), SiteDefineRuleTime); err != nil {
			return err
		}
		_, err := tx.Append(RuleTimeTable, store.Row{store.NewText(name), store.NewInt(next)})
		return err
	}); err != nil {
		if wasOrphan {
			e.restoreOrphan(name)
		}
		return err
	}
	e.mu.Lock()
	e.temporal[strings.ToLower(name)] = r
	e.mu.Unlock()
	return nil
}

// TemporalRuleDef is one rule of a DefineTemporalRules batch.
type TemporalRuleDef struct {
	Name    string
	CalExpr string
	Action  Action
}

// DefineTemporalRules defines a batch of temporal rules in one transaction.
// Parsing, plan preparation and first-trigger computation happen up front:
// rules sharing a calendar expression resolve to one shared plan group, and
// the distinct groups are computed on a worker pool — so defining N rules
// over K distinct expressions costs K next-instant computations plus one
// RULE-INFO and one RULE-TIME append per rule, all in a single transaction.
// A failure anywhere leaves no partial rows.
func (e *Engine) DefineTemporalRules(now int64, defs []TemporalRuleDef) error {
	if len(defs) == 0 {
		return nil
	}
	rules := make([]*temporalRule, len(defs))
	seen := make(map[string]bool, len(defs))
	e.mu.Lock()
	for i, d := range defs {
		key := strings.ToLower(d.Name)
		if strings.TrimSpace(d.Name) == "" {
			e.mu.Unlock()
			return fmt.Errorf("rules: empty rule name in batch entry %d", i)
		}
		if d.Action == nil {
			e.mu.Unlock()
			return fmt.Errorf("rules: rule %q needs an action", d.Name)
		}
		_, dupT := e.temporal[key]
		_, dupE := e.events[key]
		if dupT || dupE || seen[key] {
			e.mu.Unlock()
			return fmt.Errorf("rules: rule %q already defined", d.Name)
		}
		seen[key] = true
	}
	e.mu.Unlock()
	for i, d := range defs {
		expr, err := callang.ParseExpr(d.CalExpr)
		if err != nil {
			return fmt.Errorf("rules: rule %q: %w", d.Name, err)
		}
		rules[i] = &temporalRule{name: d.Name, src: d.CalExpr, expr: expr, action: d.Action}
	}

	// One representative rule per distinct raw expression; the worker pool
	// computes each representative's trigger, then the result fans out.
	byExpr := make(map[string][]*temporalRule)
	var exprs []string
	for _, r := range rules {
		if _, ok := byExpr[r.src]; !ok {
			exprs = append(exprs, r.src)
		}
		byExpr[r.src] = append(byExpr[r.src], r)
	}
	plans := make([]string, len(exprs))
	err := parallelDo(len(exprs), func(i int) error {
		peers := byExpr[exprs[i]]
		rep := peers[0]
		next, planText, err := e.nextTrigger(rep, now)
		if err != nil {
			return fmt.Errorf("rules: rule %q: %w", rep.name, err)
		}
		plans[i] = planText
		for _, r := range peers {
			r.next = next
			r.group, r.groupGen = rep.group, rep.groupGen
		}
		return nil
	})
	if err != nil {
		return err
	}
	planOf := make(map[string]string, len(exprs))
	for i, src := range exprs {
		planOf[src] = plans[i]
	}

	orphaned := make([]string, 0, len(rules))
	for _, r := range rules {
		if e.takeOrphan(r.name) {
			orphaned = append(orphaned, r.name)
		}
	}
	if err := e.db.RunTxn(func(tx *store.Txn) error {
		for _, name := range orphaned {
			if err := e.deleteCatalogRows(tx, name); err != nil {
				return err
			}
		}
		for _, r := range rules {
			if _, err := tx.Append(RuleInfoTable, store.Row{
				store.NewText(r.name), store.NewText("temporal"), store.NewText(""), store.NewText(""),
				store.NewText(r.src), store.NewText(planOf[r.src]), store.NewText(r.action.Describe()),
			}); err != nil {
				return err
			}
			if err := faultinject.Hit(e.injector(), SiteDefineRuleTime); err != nil {
				return err
			}
			if _, err := tx.Append(RuleTimeTable, store.Row{store.NewText(r.name), store.NewInt(r.next)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		for _, name := range orphaned {
			e.restoreOrphan(name)
		}
		return err
	}
	e.mu.Lock()
	for _, r := range rules {
		e.temporal[strings.ToLower(r.name)] = r
	}
	e.mu.Unlock()
	return nil
}

// RecomputeAll recomputes the next trigger of every live temporal rule
// strictly after `now` and persists the changed rows in one RULE-TIME
// transaction — the mass path DBCRON runs after a calendar-catalog change.
// Rules sharing a plan group share one next-instant computation; distinct
// groups run on a worker pool. A rule whose stored trigger is already due
// (<= now) keeps it, so pending catch-up firings are not skipped; and a
// recomputation never postpones a pending trigger — an armed instant still
// fires (matching fireChecked, which resolves the following trigger with the
// current catalog at fire time), so only earlier-moving triggers are
// rewritten here. Returns how many RULE-TIME rows changed.
func (e *Engine) RecomputeAll(now int64) (int, error) {
	e.mu.Lock()
	rules := make([]*temporalRule, 0, len(e.temporal))
	for _, r := range e.temporal {
		rules = append(rules, r)
	}
	e.mu.Unlock()
	if len(rules) == 0 {
		return 0, nil
	}
	nexts := make([]int64, len(rules))
	if err := parallelDo(len(rules), func(i int) error {
		next, _, err := e.nextTrigger(rules[i], now)
		if err != nil {
			return fmt.Errorf("rules: rule %q: %w", rules[i].name, err)
		}
		nexts[i] = next
		return nil
	}); err != nil {
		return 0, err
	}
	changed := 0
	applied := make([]bool, len(rules))
	if err := e.db.RunTxn(func(tx *store.Txn) error {
		tab, ok := e.db.Table(RuleTimeTable)
		if !ok {
			return fmt.Errorf("rules: RULE_TIME missing")
		}
		for i, r := range rules {
			rids, err := tab.LookupEq("name", store.NewText(r.name))
			if err != nil || len(rids) == 0 {
				continue // dropped meanwhile
			}
			row, ok := tab.Get(rids[0])
			if !ok || row[1].I <= now || nexts[i] >= row[1].I {
				continue
			}
			if err := tx.Replace(RuleTimeTable, rids[0],
				store.Row{store.NewText(r.name), store.NewInt(nexts[i])}); err != nil {
				return err
			}
			applied[i] = true
			changed++
		}
		return nil
	}); err != nil {
		return 0, err
	}
	e.mu.Lock()
	for i, r := range rules {
		if applied[i] {
			r.next = nexts[i]
		}
	}
	e.mu.Unlock()
	return changed, nil
}

// parallelDo runs f(0..n-1) on a bounded worker pool, returning the first
// error.
func parallelDo(n int, f func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		idx      int64
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&idx, 1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// DefineEventRule declares "On <event> to <table> [where cond] do <action>".
func (e *Engine) DefineEventRule(name string, op store.EventOp, table string, cond Condition, action Action) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("rules: empty rule name")
	}
	if action == nil {
		return fmt.Errorf("rules: rule %q needs an action", name)
	}
	if _, ok := e.db.Table(table); !ok {
		return fmt.Errorf("rules: no table %q", table)
	}
	e.mu.Lock()
	_, dupT := e.temporal[strings.ToLower(name)]
	_, dupE := e.events[strings.ToLower(name)]
	e.mu.Unlock()
	if dupT || dupE {
		return fmt.Errorf("rules: rule %q already defined", name)
	}
	wasOrphan := e.takeOrphan(name)
	if err := e.db.RunTxn(func(tx *store.Txn) error {
		if wasOrphan {
			if err := e.deleteCatalogRows(tx, name); err != nil {
				return err
			}
		}
		_, err := tx.Append(RuleInfoTable, store.Row{
			store.NewText(name), store.NewText("event"), store.NewText(op.String()), store.NewText(table),
			store.NewText(""), store.NewText(""), store.NewText(action.Describe()),
		})
		return err
	}); err != nil {
		if wasOrphan {
			e.restoreOrphan(name)
		}
		return err
	}
	e.mu.Lock()
	e.events[strings.ToLower(name)] = &eventRule{name: name, op: op, table: table, cond: cond, action: action}
	e.mu.Unlock()
	return nil
}

// DropRule removes a rule of either kind and tells registered daemons to
// discard any in-memory schedule state for it.
func (e *Engine) DropRule(name string) error {
	key := strings.ToLower(name)
	e.mu.Lock()
	_, isT := e.temporal[key]
	_, isE := e.events[key]
	delete(e.temporal, key)
	delete(e.events, key)
	listeners := make([]func(string), 0, len(e.onDrop))
	for _, fn := range e.onDrop {
		listeners = append(listeners, fn)
	}
	e.mu.Unlock()
	if !isT && !isE {
		return fmt.Errorf("rules: no rule %q", name)
	}
	if err := e.db.RunTxn(func(tx *store.Txn) error {
		return e.deleteCatalogRows(tx, name)
	}); err != nil {
		return err
	}
	for _, fn := range listeners {
		fn(key)
	}
	return nil
}

// RuleNames lists rules of both kinds.
func (e *Engine) RuleNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, r := range e.temporal {
		out = append(out, r.name)
	}
	for _, r := range e.events {
		out = append(out, r.name)
	}
	return out
}

// dispatch is the store listener delivering events to event rules.
func (e *Engine) dispatch(tx *store.Txn, ev store.Event) error {
	// Never dispatch on the rule catalogs themselves.
	if ev.Table == RuleInfoTable || ev.Table == RuleTimeTable {
		return nil
	}
	e.mu.Lock()
	matching := make([]*eventRule, 0, 2)
	for _, r := range e.events {
		if r.op == ev.Op && strings.EqualFold(r.table, ev.Table) {
			matching = append(matching, r)
		}
	}
	e.mu.Unlock()
	for _, r := range matching {
		if r.cond != nil {
			ok, err := r.cond(tx, ev)
			if err != nil {
				return fmt.Errorf("rules: rule %s condition: %w", r.name, err)
			}
			if !ok {
				continue
			}
		}
		if err := r.action.Execute(tx, &ev, 0); err != nil {
			return fmt.Errorf("rules: rule %s action: %w", r.name, err)
		}
	}
	return nil
}

// groupFor resolves the shared plan group for a rule at the current catalog
// generation, preparing the expression and creating the group on first use.
func (e *Engine) groupFor(r *temporalRule) (*planGroup, error) {
	gen := e.cal.CatalogGeneration()
	e.mu.Lock()
	if e.groupsGen != gen {
		e.groups = map[string]*planGroup{}
		e.groupsGen = gen
	}
	if r.group != nil && r.groupGen == gen {
		g := r.group
		e.mu.Unlock()
		return g, nil
	}
	expr := r.expr
	e.mu.Unlock()

	// Prepare outside the engine lock: inlining consults the catalog.
	env := e.cal.Env()
	prepped, gran, err := plan.Prepare(env, expr, nil)
	if err != nil {
		return nil, err
	}
	key := gran.String() + "|" + prepped.String()

	e.mu.Lock()
	defer e.mu.Unlock()
	g := e.groups[key]
	if g == nil || g.gen != gen {
		g = &planGroup{key: key, gen: gen, sched: plan.NewScheduler(env, prepped, gran)}
		e.groups[key] = g
	}
	r.group, r.groupGen = g, gen
	return g, nil
}

// PlanGroupStats reports the shared-plan fan-out state: how many distinct
// plan groups are live at the current catalog generation, and the total
// windowed evaluations (probes) their schedulers have run — the work the
// kernel and the sharing amortize away.
func (e *Engine) PlanGroupStats() (groups int, probes int64) {
	e.mu.Lock()
	gs := make([]*planGroup, 0, len(e.groups))
	for _, g := range e.groups {
		gs = append(gs, g)
	}
	e.mu.Unlock()
	for _, g := range gs {
		probes += g.sched.Probes()
	}
	return len(gs), probes
}

// nextTrigger returns a temporal rule's first trigger instant strictly after
// now, plus the compiled plan's rendering for RULE-INFO. The computation
// goes through the rule's shared plan group: periodic expressions answer by
// pattern arithmetic, anchor-free ones from the group's probe cache, and
// only genuinely aperiodic ones evaluate a lookahead window (see plan/next.go).
func (e *Engine) nextTrigger(r *temporalRule, now int64) (int64, string, error) {
	g, err := e.groupFor(r)
	if err != nil {
		return 0, "", err
	}
	g.sched.Configure(e.LookaheadDays, e.DisableNextKernel)
	next, ok, err := g.sched.NextAfter(now)
	if err != nil {
		return 0, "", err
	}
	if !ok {
		next = noTrigger
	}
	return next, g.sched.PlanString(), nil
}

// updateRuleTime persists a rule's recomputed next trigger. The rid lookup
// runs inside the same transaction as the replace, so a concurrent
// drop-and-redefine cannot slip between them and resurrect a stale rid.
func (e *Engine) updateRuleTime(name string, next int64) error {
	return e.db.RunTxn(func(tx *store.Txn) error {
		tab, ok := e.db.Table(RuleTimeTable)
		if !ok {
			return fmt.Errorf("rules: RULE_TIME missing")
		}
		rids, err := tab.LookupEq("name", store.NewText(name))
		if err != nil || len(rids) == 0 {
			return fmt.Errorf("rules: RULE_TIME row for %q missing", name)
		}
		return tx.Replace(RuleTimeTable, rids[0], store.Row{store.NewText(name), store.NewInt(next)})
	})
}

// DueWithin returns the temporal rules with next trigger at or before
// now+T from RULE-TIME — DBCRON's probe. The boundary is inclusive (a
// trigger exactly at now+T is due) and overdue rules (trigger <= now) are
// included so a busy or restarted daemon never loses a firing. Dormant
// rules — the noTrigger sentinel — are never scheduled, whatever T is.
func (e *Engine) DueWithin(now, T int64) ([]Firing, error) {
	tab, ok := e.db.Table(RuleTimeTable)
	if !ok {
		return nil, fmt.Errorf("rules: RULE_TIME missing")
	}
	hi := store.NewInt(now + T)
	rids, err := tab.LookupRange("next_trigger", nil, &hi)
	if err != nil {
		return nil, err
	}
	out := make([]Firing, 0, len(rids))
	for _, rid := range rids {
		row, ok := tab.Get(rid)
		if !ok || row[1].I >= noTrigger {
			continue
		}
		out = append(out, Firing{Rule: row[0].S, At: row[1].I})
	}
	return out, nil
}

// Firing is one scheduled rule activation.
type Firing struct {
	Rule string
	At   int64 // epoch seconds
}

// fire executes a temporal rule's action and advances its next trigger.
func (e *Engine) fire(name string, at int64) error {
	return e.fireChecked(name, at, 0, nil)
}

// safeExecute runs an action with panic isolation: a panicking action is
// converted into an error so one bad rule cannot take down the daemon.
func safeExecute(a Action, tx *store.Txn, ev *store.Event, at int64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("action panicked: %v", p)
		}
	}()
	return a.Execute(tx, ev, at)
}

// fireChecked is the atomic firing path: the action and the RULE-TIME
// advance commit in one transaction, so a crash either loses the whole
// firing (the journal re-drives it) or none of it. Inside the transaction
// it first checks whether RULE-TIME already advanced past `at` — the mark
// of an earlier attempt that committed before a crash or after a timeout —
// and in that case reports success without re-executing (exactly-once).
// A positive timeout bounds the attempt; see ErrActionTimeout.
//
// A non-nil fence is evaluated inside the transaction before any effect: a
// daemon whose shard lease was stolen aborts here (ErrFenced) instead of
// committing a stale firing — the epoch-fencing invariant of the sharded
// fleet.
func (e *Engine) fireChecked(name string, at int64, timeout time.Duration, fence func() error) error {
	e.mu.Lock()
	r, ok := e.temporal[strings.ToLower(name)]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("rules: temporal rule %q disappeared", name)
	}
	next, _, err := e.nextTrigger(r, at)
	if err != nil {
		return err
	}
	run := func() error {
		return e.db.RunTxn(func(tx *store.Txn) error {
			if fence != nil {
				if err := fence(); err != nil {
					return err
				}
			}
			tab, ok := e.db.Table(RuleTimeTable)
			if !ok {
				return fmt.Errorf("rules: RULE_TIME missing")
			}
			rids, err := tab.LookupEq("name", store.NewText(r.name))
			if err != nil || len(rids) == 0 {
				return fmt.Errorf("rules: RULE_TIME row for %q missing", r.name)
			}
			row, _ := tab.Get(rids[0])
			if row[1].I > at {
				return errAlreadyFired
			}
			if err := faultinject.Hit(e.injector(), SiteFire); err != nil {
				return err
			}
			if err := safeExecute(r.action, tx, nil, at); err != nil {
				return fmt.Errorf("rules: rule %s action: %w", r.name, err)
			}
			return tx.Replace(RuleTimeTable, rids[0], store.Row{store.NewText(r.name), store.NewInt(next)})
		})
	}
	if timeout <= 0 {
		err = run()
	} else {
		done := make(chan error, 1)
		go func() { done <- run() }()
		select {
		case err = <-done:
		case <-time.After(timeout):
			// The straggler goroutine keeps the transaction lock until it
			// finishes; if it eventually commits, the retry's already-fired
			// check sees the advanced RULE-TIME and does not double-execute.
			return fmt.Errorf("rules: rule %s: %w", name, ErrActionTimeout)
		}
	}
	if errors.Is(err, errAlreadyFired) {
		err = nil
	}
	if err != nil {
		return err
	}
	e.mu.Lock()
	r.next = next
	e.mu.Unlock()
	return nil
}

// deadLetter records a permanently failed firing in RULE-DEADLETTER and, in
// the same transaction, advances the rule's RULE-TIME past the failed
// instant so the dead firing stops being probed while later triggers and
// other rules proceed unimpeded.
func (e *Engine) deadLetter(name string, at int64, attempts int, lastErr string, now int64) error {
	e.mu.Lock()
	r, ok := e.temporal[strings.ToLower(name)]
	e.mu.Unlock()
	next := int64(noTrigger)
	if ok {
		n, _, err := e.nextTrigger(r, at)
		if err == nil {
			next = n
		}
	}
	if err := e.db.RunTxn(func(tx *store.Txn) error {
		if _, err := tx.Append(DeadLetterTable, store.Row{
			store.NewText(name), store.NewInt(at), store.NewInt(int64(attempts)),
			store.NewText(lastErr), store.NewInt(now),
		}); err != nil {
			return err
		}
		tab, okT := e.db.Table(RuleTimeTable)
		if !okT {
			return nil
		}
		rids, err := tab.LookupEq("name", store.NewText(name))
		if err != nil || len(rids) == 0 {
			return nil // rule dropped meanwhile; the dead-letter row still lands
		}
		row, _ := tab.Get(rids[0])
		if row[1].I > at {
			return nil // already advanced
		}
		return tx.Replace(RuleTimeTable, rids[0], store.Row{store.NewText(row[0].S), store.NewInt(next)})
	}); err != nil {
		return err
	}
	if ok {
		e.mu.Lock()
		r.next = next
		e.mu.Unlock()
	}
	return nil
}

// DeadLetter is one permanently failed firing from RULE-DEADLETTER.
type DeadLetter struct {
	Rule      string
	At        int64 // the trigger instant that kept failing
	Attempts  int
	LastError string
	DeadAt    int64 // when the retry budget ran out
}

// DeadLetters lists the dead-letter table in insertion order.
func (e *Engine) DeadLetters() ([]DeadLetter, error) {
	tab, ok := e.db.Table(DeadLetterTable)
	if !ok {
		return nil, fmt.Errorf("rules: %s missing", DeadLetterTable)
	}
	var out []DeadLetter
	tab.Scan(func(_ int64, row store.Row) bool {
		out = append(out, DeadLetter{
			Rule: row[0].S, At: row[1].I, Attempts: int(row[2].I),
			LastError: row[3].S, DeadAt: row[4].I,
		})
		return true
	})
	return out, nil
}

// ReattachAction re-binds a Go action to an orphaned temporal rule (one
// restored from a snapshot), preserving its persisted RULE-TIME trigger.
// Unlike redefinition — which recomputes the first trigger from "now" — a
// reattach keeps an overdue trigger overdue, so crash recovery can catch up
// the firings missed while the daemon was down. Event rules carry no trigger
// state and conditions are code; redefine those instead.
func (e *Engine) ReattachAction(name string, action Action) error {
	if action == nil {
		return fmt.Errorf("rules: rule %q needs an action", name)
	}
	key := strings.ToLower(name)
	e.mu.Lock()
	orphan := e.orphans[key]
	e.mu.Unlock()
	if !orphan {
		return fmt.Errorf("rules: rule %q is not awaiting reattachment", name)
	}
	tab, _ := e.db.Table(RuleInfoTable)
	rids, err := tab.LookupEq("name", store.NewText(name))
	if err != nil || len(rids) == 0 {
		return fmt.Errorf("rules: no RULE_INFO row for %q", name)
	}
	row, _ := tab.Get(rids[0])
	if row[1].S != "temporal" {
		return fmt.Errorf("rules: %q is an event rule; redefine it to reattach", name)
	}
	src := row[4].S
	expr, err := callang.ParseExpr(src)
	if err != nil {
		return fmt.Errorf("rules: reattaching %q: %w", name, err)
	}
	next := int64(noTrigger)
	if stored, ok := e.storedNext(name); ok {
		next = stored
	}
	r := &temporalRule{name: row[0].S, src: src, expr: expr, action: action, next: next}
	e.mu.Lock()
	delete(e.orphans, key)
	e.temporal[key] = r
	e.mu.Unlock()
	return nil
}

// storedNext reads a rule's persisted next trigger from RULE-TIME.
func (e *Engine) storedNext(name string) (int64, bool) {
	tab, ok := e.db.Table(RuleTimeTable)
	if !ok {
		return 0, false
	}
	rids, err := tab.LookupEq("name", store.NewText(name))
	if err != nil || len(rids) == 0 {
		return 0, false
	}
	row, ok := tab.Get(rids[0])
	if !ok {
		return 0, false
	}
	return row[1].I, true
}

// missedInstants enumerates a rule's trigger instants from its persisted
// next trigger through `now` (inclusive), capped at max entries (0 = no
// cap). It performs no firing and no catalog writes.
func (e *Engine) missedInstants(name string, now int64, max int) ([]int64, error) {
	e.mu.Lock()
	r, ok := e.temporal[strings.ToLower(name)]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rules: temporal rule %q disappeared", name)
	}
	t, ok := e.storedNext(name)
	if !ok {
		return nil, fmt.Errorf("rules: RULE_TIME row for %q missing", name)
	}
	var out []int64
	for t <= now && t < noTrigger {
		out = append(out, t)
		if max > 0 && len(out) >= max {
			break
		}
		nt, _, err := e.nextTrigger(r, t)
		if err != nil {
			return out, err
		}
		t = nt
	}
	return out, nil
}

// skipPast recomputes a rule's next trigger strictly after `now` and
// persists it without firing — the Skip catch-up policy, and the fast-
// forward under FireLast.
func (e *Engine) skipPast(name string, now int64) (int64, error) {
	e.mu.Lock()
	r, ok := e.temporal[strings.ToLower(name)]
	e.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("rules: temporal rule %q disappeared", name)
	}
	next, _, err := e.nextTrigger(r, now)
	if err != nil {
		return 0, err
	}
	if err := e.updateRuleTime(r.name, next); err != nil {
		return 0, err
	}
	e.mu.Lock()
	r.next = next
	e.mu.Unlock()
	return next, nil
}

// hasTemporal reports whether a live (action-attached) temporal rule with
// this name exists.
func (e *Engine) hasTemporal(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.temporal[strings.ToLower(name)]
	return ok
}

// canonicalName resolves a rule's defined (original-case) name from any
// casing — journal high-water keys are lower-cased, RULE-TIME stores the
// defined casing.
func (e *Engine) canonicalName(name string) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.temporal[strings.ToLower(name)]
	if !ok {
		return "", false
	}
	return r.name, true
}

// temporalNames lists the live temporal rules (sorted, original casing).
func (e *Engine) temporalNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.temporal))
	for _, r := range e.temporal {
		names = append(names, r.name)
	}
	sort.Strings(names)
	return names
}

// nextOf reports a temporal rule's cached next trigger (noTrigger when
// dormant or unknown).
func (e *Engine) nextOf(name string) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.temporal[strings.ToLower(name)]; ok {
		return r.next
	}
	return noTrigger
}

// RuleInfoRow renders a rule's RULE-INFO tuple.
func (e *Engine) RuleInfoRow(name string) (string, error) {
	tab, _ := e.db.Table(RuleInfoTable)
	rids, err := tab.LookupEq("name", store.NewText(name))
	if err != nil || len(rids) == 0 {
		return "", fmt.Errorf("rules: no rule %q", name)
	}
	row, _ := tab.Get(rids[0])
	var b strings.Builder
	fmt.Fprintf(&b, "Name     | %s\n", row[0].S)
	fmt.Fprintf(&b, "Kind     | %s\n", row[1].S)
	if row[1].S == "event" {
		fmt.Fprintf(&b, "Event    | %s on %s\n", row[2].S, row[3].S)
	} else {
		fmt.Fprintf(&b, "Calendar | %s\n", row[4].S)
		fmt.Fprintf(&b, "Plan     | %s\n", strings.ReplaceAll(row[5].S, "\n", " ; "))
	}
	fmt.Fprintf(&b, "Action   | %s\n", row[6].S)
	return b.String(), nil
}
