package rules

import (
	"strings"
	"sync"
	"testing"
	"time"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/store"
)

func d(y, m, day int) chronology.Civil { return chronology.Civil{Year: y, Month: m, Day: day} }

func newEngine(t testing.TB) (*Engine, *caldb.Manager) {
	t.Helper()
	db := store.NewDB()
	cal, err := caldb.New(db, chronology.MustNew(chronology.DefaultEpoch))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(cal)
	if err != nil {
		t.Fatal(err)
	}
	return eng, cal
}

func countingAction(name string, hits *[]int64) Action {
	return FuncAction{Name: name, Fn: func(tx *store.Txn, ev *store.Event, at int64) error {
		*hits = append(*hits, at)
		return nil
	}}
}

// Figure 4 end to end: "On Every Tuesday do Proc_X" — the rule is parsed,
// stored in RULE-INFO, its next trigger in RULE-TIME, and DBCRON fires it on
// each Tuesday of January 1993 under a virtual clock.
func TestFigure4TemporalRulePipeline(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1)) // Friday Jan 1 1993

	var hits []int64
	if err := eng.DefineTemporalRule("every_tuesday", "[2]/DAYS:during:WEEKS",
		countingAction("Proc_X", &hits), start); err != nil {
		t.Fatal(err)
	}

	// RULE-INFO carries the expression and plan; RULE-TIME the next trigger.
	info, err := eng.RuleInfoRow("every_tuesday")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"every_tuesday", "temporal", "[2]/DAYS:during:WEEKS", "GENERATE", "Proc_X"} {
		if !strings.Contains(info, want) {
			t.Errorf("RULE-INFO missing %q:\n%s", want, info)
		}
	}
	due, err := eng.DueWithin(start, 14*chronology.SecondsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	if len(due) != 1 {
		t.Fatalf("due = %v", due)
	}
	wantFirst := ch.EpochSecondsOf(d(1993, 1, 5)) // Tuesday Jan 5
	if due[0].At != wantFirst {
		t.Errorf("next trigger = %d, want %d (Jan 5 1993)", due[0].At, wantFirst)
	}

	// Drive DBCRON with probe period T = 1 day over five weeks.
	cron, err := NewDBCron(eng, chronology.SecondsPerDay, start)
	if err != nil {
		t.Fatal(err)
	}
	clock := NewVirtualClock(start)
	for i := 0; i < 35; i++ {
		if _, err := cron.AdvanceTo(clock.Advance(chronology.SecondsPerDay)); err != nil {
			t.Fatal(err)
		}
	}
	// Tuesdays hit: Jan 5, 12, 19, 26, Feb 2 1993 (and none other).
	want := []chronology.Civil{d(1993, 1, 5), d(1993, 1, 12), d(1993, 1, 19), d(1993, 1, 26), d(1993, 2, 2)}
	if len(hits) != len(want) {
		t.Fatalf("fired %d times (%v), want %d", len(hits), hits, len(want))
	}
	for i, at := range hits {
		day := ch.CivilOf(at)
		if day != want[i] {
			t.Errorf("firing %d on %v, want %v", i, day, want[i])
		}
		if day.Weekday() != chronology.Tuesday {
			t.Errorf("firing %d not a Tuesday: %v", i, day)
		}
	}
	fired, late := cron.Stats()
	if fired != 5 {
		t.Errorf("Stats fired = %d", fired)
	}
	if late < 0 {
		t.Errorf("negative lateness %d", late)
	}
}

// A daily rule with a weekly probe period exercises re-arming inside the
// probe window: no firing may be lost.
func TestDailyRuleWeeklyProbe(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	var hits []int64
	if err := eng.DefineTemporalRule("daily", "DAYS", countingAction("daily", &hits), start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCron(eng, 7*chronology.SecondsPerDay, start)
	if err != nil {
		t.Fatal(err)
	}
	clock := NewVirtualClock(start)
	for i := 0; i < 28; i++ {
		if _, err := cron.AdvanceTo(clock.Advance(chronology.SecondsPerDay)); err != nil {
			t.Fatal(err)
		}
	}
	if len(hits) != 28 {
		t.Fatalf("daily rule fired %d times in 28 days", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i]-hits[i-1] != chronology.SecondsPerDay {
			t.Errorf("gap between firings %d and %d: %d sec", i-1, i, hits[i]-hits[i-1])
		}
	}
}

// A daemon that falls behind (large clock jump) must fire overdue rules
// rather than lose them.
func TestOverdueFiringsNotLost(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	var hits []int64
	if err := eng.DefineTemporalRule("daily", "DAYS", countingAction("daily", &hits), start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCron(eng, chronology.SecondsPerDay, start)
	if err != nil {
		t.Fatal(err)
	}
	// Jump ten days in one step.
	if _, err := cron.AdvanceTo(start + 10*chronology.SecondsPerDay); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 10 {
		t.Errorf("fired %d times after 10-day jump, want 10", len(hits))
	}
}

func TestEventRules(t *testing.T) {
	eng, cal := newEngine(t)
	db := cal.DB()
	schema, _ := store.NewSchema(store.Column{Name: "sym", Type: store.TText}, store.Column{Name: "px", Type: store.TFloat})
	if err := db.CreateTable("trades", schema); err != nil {
		t.Fatal(err)
	}
	var seen []string
	action := FuncAction{Name: "log", Fn: func(tx *store.Txn, ev *store.Event, _ int64) error {
		seen = append(seen, ev.Op.String()+":"+ev.New[0].S)
		return nil
	}}
	cond := func(tx *store.Txn, ev store.Event) (bool, error) { return ev.New[1].F > 100, nil }
	if err := eng.DefineEventRule("big_trades", store.EvAppend, "trades", cond, action); err != nil {
		t.Fatal(err)
	}
	err := db.RunTxn(func(tx *store.Txn) error {
		if _, err := tx.Append("trades", store.Row{store.NewText("IBM"), store.NewFloat(50)}); err != nil {
			return err
		}
		_, err := tx.Append("trades", store.Row{store.NewText("AAPL"), store.NewFloat(150)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "append:AAPL" {
		t.Errorf("event rule fired: %v", seen)
	}
	info, err := eng.RuleInfoRow("big_trades")
	if err != nil || !strings.Contains(info, "append on trades") {
		t.Errorf("info = %q, %v", info, err)
	}
}

func TestRuleValidationAndDrop(t *testing.T) {
	eng, cal := newEngine(t)
	start := cal.Chron().EpochSecondsOf(d(1993, 1, 1))
	noop := FuncAction{Name: "noop", Fn: func(*store.Txn, *store.Event, int64) error { return nil }}
	if err := eng.DefineTemporalRule("", "DAYS", noop, start); err == nil {
		t.Error("empty name should fail")
	}
	if err := eng.DefineTemporalRule("r", "DAYS", nil, start); err == nil {
		t.Error("nil action should fail")
	}
	if err := eng.DefineTemporalRule("r", "][", noop, start); err == nil {
		t.Error("bad expression should fail")
	}
	if err := eng.DefineTemporalRule("r", "NO_SUCH_CAL", noop, start); err == nil {
		t.Error("unknown calendar should fail")
	}
	if err := eng.DefineTemporalRule("r", "DAYS", noop, start); err != nil {
		t.Fatal(err)
	}
	if err := eng.DefineTemporalRule("R", "DAYS", noop, start); err == nil {
		t.Error("duplicate (case-insensitive) should fail")
	}
	if err := eng.DefineEventRule("r", store.EvAppend, "CALENDARS", nil, noop); err == nil {
		t.Error("name clash with temporal rule should fail")
	}
	if err := eng.DefineEventRule("e", store.EvAppend, "nope", nil, noop); err == nil {
		t.Error("missing table should fail")
	}
	if len(eng.RuleNames()) != 1 {
		t.Errorf("RuleNames = %v", eng.RuleNames())
	}
	if err := eng.DropRule("r"); err != nil {
		t.Fatal(err)
	}
	if err := eng.DropRule("r"); err == nil {
		t.Error("double drop should fail")
	}
	if _, err := eng.RuleInfoRow("r"); err == nil {
		t.Error("dropped rule should have no catalog row")
	}
	// RULE_TIME row removed too: nothing due.
	due, err := eng.DueWithin(start, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(due) != 0 {
		t.Errorf("due after drop = %v", due)
	}
}

func TestFailingActionSurfacesAndRetains(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	calls := 0
	bad := FuncAction{Name: "bad", Fn: func(*store.Txn, *store.Event, int64) error {
		calls++
		if calls == 1 {
			return errStub
		}
		return nil
	}}
	if err := eng.DefineTemporalRule("flaky", "DAYS", bad, start); err != nil {
		t.Fatal(err)
	}
	cron, _ := NewDBCron(eng, chronology.SecondsPerDay, start)
	if _, err := cron.AdvanceTo(start + chronology.SecondsPerDay); err == nil {
		t.Fatal("expected action error")
	}
	// The engine did not advance RULE-TIME past the failed firing... the
	// firing was popped; a later advance re-probes and the rule fires again
	// at its (unchanged) trigger.
	if _, err := cron.AdvanceTo(start + 2*chronology.SecondsPerDay); err != nil {
		t.Fatal(err)
	}
	if calls < 2 {
		t.Errorf("action called %d times, want retry", calls)
	}
}

var errStub = &stubErr{}

type stubErr struct{}

func (*stubErr) Error() string { return "stub failure" }

func TestDBCronValidation(t *testing.T) {
	eng, _ := newEngine(t)
	if _, err := NewDBCron(eng, 0, 0); err == nil {
		t.Error("zero probe period should fail")
	}
	if _, err := NewDBCron(eng, -5, 0); err == nil {
		t.Error("negative probe period should fail")
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(100)
	if c.Now() != 100 {
		t.Error("start")
	}
	if c.Advance(50) != 150 || c.Now() != 150 {
		t.Error("advance")
	}
	c.Set(120) // never backwards
	if c.Now() != 150 {
		t.Error("Set must not go backwards")
	}
	c.Set(200)
	if c.Now() != 200 {
		t.Error("Set forward")
	}
}

// Temporal rules evaluated through the calendar catalog: EMP-DAYS as a rule.
func TestTemporalRuleWithDerivedCalendar(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	ls := caldb.Lifespan{Lo: 1, Hi: caldb.MaxDayTick}
	if err := cal.DefineDerived("MonthEnds", "[n]/DAYS:during:MONTHS;", ls, caldb.GranAuto); err != nil {
		t.Fatal(err)
	}
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	var hits []int64
	if err := eng.DefineTemporalRule("month_end", "MonthEnds", countingAction("alert", &hits), start); err != nil {
		t.Fatal(err)
	}
	cron, _ := NewDBCron(eng, chronology.SecondsPerDay, start)
	clock := NewVirtualClock(start)
	for i := 0; i < 92; i++ {
		if _, err := cron.AdvanceTo(clock.Advance(chronology.SecondsPerDay)); err != nil {
			t.Fatal(err)
		}
	}
	want := []chronology.Civil{d(1993, 1, 31), d(1993, 2, 28), d(1993, 3, 31)}
	if len(hits) != len(want) {
		t.Fatalf("fired %d times, want %d", len(hits), len(want))
	}
	for i, at := range hits {
		if got := ch.CivilOf(at); got != want[i] {
			t.Errorf("firing %d on %v, want %v", i, got, want[i])
		}
	}
}

// Run drives DBCron against a real clock in a goroutine; use a SystemClock
// with a close anchor so model seconds pass quickly enough to observe a
// probe, then stop it.
func TestDBCronRunLoop(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	var mu sync.Mutex
	var hits []int64
	action := FuncAction{Name: "hit", Fn: func(tx *store.Txn, ev *store.Event, at int64) error {
		mu.Lock()
		hits = append(hits, at)
		mu.Unlock()
		return nil
	}}
	if err := eng.DefineTemporalRule("daily", "DAYS", action, start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCron(eng, chronology.SecondsPerDay, start)
	if err != nil {
		t.Fatal(err)
	}
	// A clock anchored 3 model-days in the past: the first AdvanceTo fires
	// the overdue triggers immediately.
	clock := SystemClock{Anchor: time.Now().Add(-time.Duration(start+3*chronology.SecondsPerDay) * time.Second)}
	stop := make(chan struct{})
	errs := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		cron.Run(clock, stop, errs)
		close(done)
	}()
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(hits)
		mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case err := <-errs:
			t.Fatal(err)
		case <-deadline:
			t.Fatalf("run loop fired %d times within deadline", n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stop)
	<-done
	if next := cron.NextWakeup(); next <= start {
		t.Errorf("NextWakeup = %d", next)
	}
}

// Run must keep going after an action error, delivering it on errs.
func TestDBCronRunSurfacesErrors(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	bad := FuncAction{Name: "bad", Fn: func(*store.Txn, *store.Event, int64) error { return errStub }}
	if err := eng.DefineTemporalRule("bad", "DAYS", bad, start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCron(eng, chronology.SecondsPerDay, start)
	if err != nil {
		t.Fatal(err)
	}
	clock := SystemClock{Anchor: time.Now().Add(-time.Duration(start+2*chronology.SecondsPerDay) * time.Second)}
	stop := make(chan struct{})
	errs := make(chan error, 4)
	done := make(chan struct{})
	go func() {
		cron.Run(clock, stop, errs)
		close(done)
	}()
	select {
	case err := <-errs:
		if err == nil {
			t.Error("nil error delivered")
		}
	case <-time.After(5 * time.Second):
		t.Error("no error delivered")
	}
	close(stop)
	<-done
}

func TestEngineAccessors(t *testing.T) {
	eng, cal := newEngine(t)
	if eng.Cal() != cal {
		t.Error("Cal accessor")
	}
	if len(eng.Orphans()) != 0 {
		t.Error("fresh engine has no orphans")
	}
}
