package rules

import (
	"container/heap"
	"math/bits"
	"strings"
)

// firingQueue is the container of armed firing attempts inside DBCron. Two
// implementations exist: the seed min-heap (heapQueue, kept as the
// DisableWheel ablation and benchmark oracle) and the hierarchical timing
// wheel (timingWheel), which makes a probe tick O(due) instead of
// O(pending·log pending) at million-rule scale.
type firingQueue interface {
	// add arms one attempt.
	add(pf pendingFiring)
	// popDue removes and returns the earliest attempt with runAt <= limit.
	popDue(limit int64) (pendingFiring, bool)
	// next returns a lower bound on the earliest armed runAt (noTrigger when
	// empty). The bound is exact for the heap; the wheel may return the start
	// of an occupied slot, which is never later than the true next instant —
	// waking early is safe, the wake just re-derives a tighter bound.
	next() int64
	// removeRule unarms every attempt of the rule (lower-cased key) and
	// returns the removed entries so the caller can journal skips.
	removeRule(key string) []pendingFiring
	// each visits every armed attempt in unspecified order.
	each(fn func(pendingFiring))
	// size is the number of armed attempts.
	size() int
}

// heapQueue is the seed container: a binary min-heap ordered by runAt.
type heapQueue struct {
	h firingHeap
}

func (q *heapQueue) add(pf pendingFiring) { heap.Push(&q.h, pf) }

func (q *heapQueue) popDue(limit int64) (pendingFiring, bool) {
	if len(q.h) == 0 || q.h[0].runAt > limit {
		return pendingFiring{}, false
	}
	return heap.Pop(&q.h).(pendingFiring), true
}

func (q *heapQueue) next() int64 {
	if len(q.h) == 0 {
		return noTrigger
	}
	return q.h[0].runAt
}

func (q *heapQueue) removeRule(key string) []pendingFiring {
	var removed []pendingFiring
	kept := q.h[:0]
	for _, pf := range q.h {
		if strings.ToLower(pf.Rule) == key {
			removed = append(removed, pf)
			continue
		}
		kept = append(kept, pf)
	}
	q.h = kept
	heap.Init(&q.h)
	return removed
}

func (q *heapQueue) each(fn func(pendingFiring)) {
	for _, pf := range q.h {
		fn(pf)
	}
}

func (q *heapQueue) size() int { return len(q.h) }

// Timing-wheel geometry: 64 slots per level, 6 bits of the instant per
// level. Level l buckets instants by runAt >> (6·l); eleven levels cover the
// full 2^62 instant space (noTrigger is never armed).
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 11
)

type wheelLevel struct {
	// occ has bit i set iff slot[i] is non-empty; next-slot scans are a
	// rotate plus TrailingZeros64 instead of a walk.
	occ  uint64
	slot [wheelSlots][]pendingFiring
}

// timingWheel is a hierarchical timing wheel over armed firing attempts,
// after the classic kernel-timer design: an entry lives at the lowest level
// whose 64-slot window around the current base covers its instant, and is
// cascaded toward level 0 as the base advances. add is O(1); advancing the
// base by any distance moves each entry at most wheelLevels times over its
// whole residence, so a probe tick costs O(due), not O(pending).
//
// Entries at or before the base live in a small exact min-heap (due): the
// wheel only ever bounds *future* instants, while overdue work (retry
// backlog, catch-up) needs exact pop ordering.
type timingWheel struct {
	base  int64 // every wheel-resident entry has runAt > base
	count int
	due   firingHeap
	level [wheelLevels]wheelLevel
	// scratch is the cascade's reusable move buffer.
	scratch []pendingFiring
}

// duePush and duePop are container/heap push/pop specialized to firingHeap's
// runAt ordering: going through heap.Interface boxes every pendingFiring in
// an any, which at million-entry scale is an allocation per armed firing.
func duePush(h *firingHeap, pf pendingFiring) {
	*h = append(*h, pf)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].runAt <= s[i].runAt {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func duePop(h *firingHeap) pendingFiring {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = pendingFiring{}
	s = s[:n]
	*h = s
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s[c+1].runAt < s[c].runAt {
			c++
		}
		if s[i].runAt <= s[c].runAt {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

func newTimingWheel(base int64) *timingWheel {
	return &timingWheel{base: base}
}

func (w *timingWheel) add(pf pendingFiring) {
	w.count++
	if pf.runAt <= w.base {
		duePush(&w.due, pf)
		return
	}
	l := w.levelFor(pf.runAt)
	shift := uint(wheelBits * l)
	i := (pf.runAt >> shift) & wheelMask
	w.level[l].slot[i] = append(w.level[l].slot[i], pf)
	w.level[l].occ |= 1 << uint(i)
}

// levelFor picks the lowest level whose window around base covers runAt
// (precondition: runAt > base). The top level's window spans the whole
// instant space, so the scan always terminates.
func (w *timingWheel) levelFor(runAt int64) int {
	for l := 0; l < wheelLevels-1; l++ {
		shift := uint(wheelBits * l)
		if (runAt>>shift)-(w.base>>shift) < wheelSlots {
			return l
		}
	}
	return wheelLevels - 1
}

// cascade advances the base to limit, draining every slot whose window the
// base crossed: entries now due join the exact heap, the rest re-bucket at a
// finer level relative to the new base.
func (w *timingWheel) cascade(limit int64) {
	if limit <= w.base {
		return
	}
	old := w.base
	w.base = limit
	moved := w.scratch[:0]
	for l := 0; l < wheelLevels; l++ {
		lv := &w.level[l]
		if lv.occ == 0 {
			continue
		}
		shift := uint(wheelBits * l)
		startSlot := old >> shift
		endSlot := limit >> shift
		var mask uint64
		if endSlot-startSlot >= wheelSlots-1 {
			mask = ^uint64(0)
		} else {
			a := uint(startSlot) & wheelMask
			b := uint(endSlot) & wheelMask
			if b >= a {
				mask = (^uint64(0) >> (63 - b)) & (^uint64(0) << a)
			} else {
				mask = (^uint64(0) << a) | (^uint64(0) >> (63 - b))
			}
		}
		hits := lv.occ & mask
		for hits != 0 {
			i := bits.TrailingZeros64(hits)
			hits &^= 1 << uint(i)
			// append copies the entries out, so resetting the slot's length
			// while keeping its capacity is safe — and saves reallocating
			// the slot every time the circular window comes around again.
			moved = append(moved, lv.slot[i]...)
			lv.slot[i] = lv.slot[i][:0]
			lv.occ &^= 1 << uint(i)
		}
	}
	for _, pf := range moved {
		w.count--
		w.add(pf)
	}
	w.scratch = moved[:0]
}

func (w *timingWheel) popDue(limit int64) (pendingFiring, bool) {
	w.cascade(limit)
	if len(w.due) > 0 && w.due[0].runAt <= limit {
		w.count--
		return duePop(&w.due), true
	}
	return pendingFiring{}, false
}

func (w *timingWheel) next() int64 {
	if len(w.due) > 0 {
		return w.due[0].runAt
	}
	// Each level's earliest occupied slot starts at or before every entry in
	// that level, so the minimum of the per-level slot starts bounds the
	// global minimum from below. (A single-level scan is not enough: an
	// entry placed at level l when the base was far away may keep its slot
	// as the base closes in, ending up earlier than fresher level-0
	// entries.) Entries are strictly after base, so clamp to base+1.
	best := int64(noTrigger)
	for l := 0; l < wheelLevels; l++ {
		lv := &w.level[l]
		if lv.occ == 0 {
			continue
		}
		shift := uint(wheelBits * l)
		baseSlot := w.base >> shift
		rot := bits.RotateLeft64(lv.occ, -int(uint(baseSlot)&wheelMask))
		at := (baseSlot + int64(bits.TrailingZeros64(rot))) << shift
		if at <= w.base {
			at = w.base + 1
		}
		if at < best {
			best = at
		}
	}
	return best
}

func (w *timingWheel) removeRule(key string) []pendingFiring {
	var removed []pendingFiring
	kept := w.due[:0]
	for _, pf := range w.due {
		if strings.ToLower(pf.Rule) == key {
			removed = append(removed, pf)
			continue
		}
		kept = append(kept, pf)
	}
	w.due = kept
	heap.Init(&w.due)
	for l := range w.level {
		lv := &w.level[l]
		occ := lv.occ
		for occ != 0 {
			i := bits.TrailingZeros64(occ)
			occ &^= 1 << uint(i)
			s := lv.slot[i]
			keep := s[:0]
			for _, pf := range s {
				if strings.ToLower(pf.Rule) == key {
					removed = append(removed, pf)
					continue
				}
				keep = append(keep, pf)
			}
			if len(keep) == 0 {
				lv.slot[i] = nil
				lv.occ &^= 1 << uint(i)
			} else {
				lv.slot[i] = keep
			}
		}
	}
	w.count -= len(removed)
	return removed
}

func (w *timingWheel) each(fn func(pendingFiring)) {
	for _, pf := range w.due {
		fn(pf)
	}
	for l := range w.level {
		lv := &w.level[l]
		occ := lv.occ
		for occ != 0 {
			i := bits.TrailingZeros64(occ)
			occ &^= 1 << uint(i)
			for _, pf := range lv.slot[i] {
				fn(pf)
			}
		}
	}
}

func (w *timingWheel) size() int { return w.count }
