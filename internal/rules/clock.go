// Package rules implements the time-based rule system of §4 of the paper:
// rules of the form "On Calendar-Expression do Action" stored in the
// RULE-INFO catalog, their next trigger times in RULE-TIME, and the DBCRON
// daemon that probes RULE-TIME every T time units, keeps an in-memory
// schedule of imminent firings, and triggers rule actions (Figure 4).
// Classical event rules (On Event where Condition do Action) are supported
// through the store's event listeners.
package rules

import (
	"sync"
	"time"
)

// Clock supplies the current instant in epoch seconds (seconds from midnight
// of the chronology's system start date). DBCRON takes a Clock so tests and
// benchmarks can run years of firings in virtual time.
type Clock interface {
	Now() int64
}

// VirtualClock is a manually advanced clock for deterministic tests and
// benchmarks.
type VirtualClock struct {
	mu  sync.Mutex
	now int64
}

// NewVirtualClock starts a virtual clock at the given epoch second.
func NewVirtualClock(start int64) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d seconds and returns the new time.
func (c *VirtualClock) Advance(d int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Set jumps the clock to a specific epoch second (never backwards).
func (c *VirtualClock) Set(now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now > c.now {
		c.now = now
	}
}

// SystemClock reads the operating-system time relative to a wall-clock
// anchor: construct it with the time.Time corresponding to epoch second 0.
type SystemClock struct {
	Anchor time.Time
}

// Now implements Clock.
func (c SystemClock) Now() int64 {
	return int64(time.Since(c.Anchor) / time.Second)
}
