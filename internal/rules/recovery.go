package rules

import (
	"fmt"
	"strings"

	"calsys/internal/rules/journal"
)

// RecoveryReport summarizes what Recover did with the journal and the
// catalog after a crash.
type RecoveryReport struct {
	// ReplayedPending counts in-flight firings found in the journal.
	ReplayedPending int
	// Refired counts replayed firings that were (re-)executed.
	Refired int
	// Deduped counts replayed firings whose transaction had already
	// committed (RULE-TIME past the instant) — acked without re-execution.
	Deduped int
	// CaughtUp counts missed trigger instants fired by the catch-up pass.
	CaughtUp int
	// Skipped counts missed instants dropped per the catch-up policy.
	Skipped int
	// Orphaned counts journal entries for rules that no longer exist (or
	// moved out of the daemon's shard after a resharding).
	Orphaned int
}

func (r RecoveryReport) String() string {
	return fmt.Sprintf("replayed=%d refired=%d deduped=%d caughtup=%d skipped=%d orphaned=%d",
		r.ReplayedPending, r.Refired, r.Deduped, r.CaughtUp, r.Skipped, r.Orphaned)
}

// ackedHigh pairs a rule (original casing) with a journal acked-through
// high-water instant.
type ackedHigh struct {
	name string
	hi   int64
}

// recoverySrc abstracts where recovery's journal evidence comes from and how
// resolved in-flight firings are recorded. Recover reads the daemon's own
// journal and resolves against the original sequence numbers; AdoptState
// reads the merged state of a prior owner's journals and re-journals into
// the daemon's fresh epoch journal.
type recoverySrc struct {
	highs   []ackedHigh
	pending []journal.PendingFiring
	// skip drops an intent (orphaned rule or SkipMissed policy).
	skip func(p journal.PendingFiring) error
	// dedup records that the intent's transaction had already committed.
	dedup func(p journal.PendingFiring) error
	// entry builds the schedule entry (with the right journal seq) for an
	// intent that must be re-queued or re-executed.
	entry func(p journal.PendingFiring) (pendingFiring, error)
}

// Recover brings a durable daemon back to a consistent state after a crash:
//
//  1. RULE-TIME rows older than the journal's acked-through high-water are
//     fast-forwarded — they came from a snapshot taken before firings that
//     the journal proves committed.
//  2. In-flight firings from the journal are resolved: already-committed
//     ones are acked without re-execution (the RULE-TIME dedup), the rest
//     are re-executed (FireAll/FireLast) or skipped (SkipMissed).
//  3. Triggers that came due while the daemon was down are caught up per
//     the policy: FireAll fires every missed instant in order, FireLast
//     only the latest, SkipMissed none.
//  4. Probing resumes at `now`.
//
// Together with the firing transaction (action + RULE-TIME advance commit
// atomically) this gives exactly-once execution per trigger instant under
// FireAll, and at-most-once under SkipMissed.
func (c *DBCron) Recover(now int64) (RecoveryReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.durable {
		return RecoveryReport{}, fmt.Errorf("rules: Recover requires a durable daemon (NewDBCronWith)")
	}
	j := c.opts.Journal
	src := recoverySrc{
		skip:  func(p journal.PendingFiring) error { return j.Skip(p.Seq) },
		dedup: func(p journal.PendingFiring) error { return j.Ack(p.Seq) },
		entry: func(p journal.PendingFiring) (pendingFiring, error) {
			return pendingFiring{Firing: Firing{Rule: p.Rule, At: p.At}, runAt: p.At, attempt: p.Attempts, seq: p.Seq}, nil
		},
	}
	if j != nil {
		src.pending = j.Pending()
		for _, name := range c.eng.temporalNames() {
			if hi := j.AckedThrough(name); hi > 0 {
				src.highs = append(src.highs, ackedHigh{name, hi})
			}
		}
	}
	rep, err := c.recoverLocked(now, src)
	c.poke()
	return rep, err
}

// AdoptState performs recovery over the merged journal state of a shard's
// previous owner(s) — the shard-handoff path. The daemon's own journal must
// be a fresh epoch file: high-waters are seeded as T records and surviving
// intents are re-journaled under new sequence numbers, so once AdoptState
// returns the prior epochs' files are fully superseded and can be deleted.
func (c *DBCron) AdoptState(now int64, st *journal.State) (RecoveryReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.durable || c.opts.Journal == nil {
		return RecoveryReport{}, fmt.Errorf("rules: AdoptState requires a journaled daemon")
	}
	j := c.opts.Journal
	src := recoverySrc{
		// The intent lives in a superseded epoch file; nothing to write.
		skip: func(p journal.PendingFiring) error { return nil },
		// The instant committed under a prior epoch: carry the evidence
		// into the new journal so later recoveries keep the stale-snapshot
		// protection after the old files are gone.
		dedup: func(p journal.PendingFiring) error { return j.HighWater(p.Rule, p.At) },
		// Re-journal the intent under a fresh sequence number.
		entry: func(p journal.PendingFiring) (pendingFiring, error) {
			pf, err := c.newPending(p.Rule, p.At)
			if err != nil {
				return pf, err
			}
			pf.attempt = p.Attempts
			return pf, nil
		},
	}
	if st != nil {
		src.pending = st.Pending
		for key, hi := range st.AckedThrough {
			name, ok := c.eng.canonicalName(key)
			if !ok {
				continue
			}
			if err := j.HighWater(name, hi); err != nil {
				return RecoveryReport{}, err
			}
			src.highs = append(src.highs, ackedHigh{name, hi})
		}
		if err := j.Sync(); err != nil {
			return RecoveryReport{}, err
		}
	}
	rep, err := c.recoverLocked(now, src)
	c.poke()
	return rep, err
}

// recoverLocked is the four-phase recovery core shared by Recover and
// AdoptState (c.mu held).
func (c *DBCron) recoverLocked(now int64, src recoverySrc) (RecoveryReport, error) {
	var rep RecoveryReport
	c.recovering = true
	defer func() { c.recovering = false }()

	// Phase 1: stale-snapshot protection. A restored RULE-TIME row may
	// predate firings the journal acked; trust the journal's high-water.
	for _, h := range src.highs {
		if !c.inShard(h.name) {
			continue
		}
		if next, ok := c.eng.storedNext(h.name); ok && next <= h.hi {
			if _, err := c.eng.skipPast(h.name, h.hi); err != nil {
				return rep, err
			}
		}
	}

	// Phase 2: resolve in-flight firings recorded in the journal.
	for _, p := range src.pending {
		rep.ReplayedPending++
		if !c.eng.hasTemporal(p.Rule) || !c.inShard(p.Rule) {
			rep.Orphaned++
			if err := src.skip(p); err != nil {
				return rep, err
			}
			continue
		}
		if c.opts.CatchUp == SkipMissed {
			rep.Skipped++
			if err := src.skip(p); err != nil {
				return rep, err
			}
			continue
		}
		if next, ok := c.eng.storedNext(p.Rule); ok && next > p.At {
			// The firing's transaction committed before the crash; only
			// its ack was lost.
			rep.Deduped++
			if err := src.dedup(p); err != nil {
				return rep, err
			}
			continue
		}
		pf, err := src.entry(p)
		if err != nil {
			return rep, err
		}
		if p.At > now {
			// Scheduled in a probe window that had not elapsed yet —
			// re-queue it for its due time instead of firing early.
			key := strings.ToLower(p.Rule)
			if !c.scheduled[key] {
				c.scheduled[key] = true
				c.queue.add(pf)
			}
			continue
		}
		ok, err := c.execute(&pf, now)
		if err != nil {
			return rep, err
		}
		if ok {
			rep.Refired++
		}
	}

	// Phase 3: catch up triggers missed while down. DueWithin(now, 0)
	// returns every overdue rule; entries already re-queued by phase 2
	// retries are left to the queue.
	due, err := c.eng.DueWithin(now, 0)
	if err != nil {
		return rep, err
	}
	for _, f := range due {
		if !c.inShard(f.Rule) {
			continue
		}
		key := strings.ToLower(f.Rule)
		if c.scheduled[key] {
			continue
		}
		missed, err := c.eng.missedInstants(f.Rule, now, c.opts.MaxCatchUp)
		if err != nil {
			return rep, err
		}
		if len(missed) == 0 {
			continue
		}
		switch c.opts.CatchUp {
		case FireAll:
			for _, at := range missed {
				pf, err := c.newPending(f.Rule, at)
				if err != nil {
					return rep, err
				}
				ok, err := c.execute(&pf, now)
				if err != nil {
					return rep, err
				}
				if !ok {
					// The failed instant is queued for retry (or dead-
					// lettered); firing later instants now would advance
					// RULE-TIME past it and turn the retry into a no-op.
					// Later instants stay overdue and are picked up by the
					// retry's success path and subsequent probes.
					break
				}
				rep.CaughtUp++
			}
		case FireLast:
			last := missed[len(missed)-1]
			rep.Skipped += len(missed) - 1
			pf, err := c.newPending(f.Rule, last)
			if err != nil {
				return rep, err
			}
			ok, err := c.execute(&pf, now)
			if err != nil {
				return rep, err
			}
			if ok {
				rep.CaughtUp++
			}
		case SkipMissed:
			rep.Skipped += len(missed)
			if _, err := c.eng.skipPast(f.Rule, now); err != nil {
				return rep, err
			}
		}
	}

	// Phase 4: resume probing immediately.
	c.nextProbe = now
	return rep, nil
}
