package rules

import (
	"container/heap"
	"fmt"
	"strings"
)

// RecoveryReport summarizes what Recover did with the journal and the
// catalog after a crash.
type RecoveryReport struct {
	// ReplayedPending counts in-flight firings found in the journal.
	ReplayedPending int
	// Refired counts replayed firings that were (re-)executed.
	Refired int
	// Deduped counts replayed firings whose transaction had already
	// committed (RULE-TIME past the instant) — acked without re-execution.
	Deduped int
	// CaughtUp counts missed trigger instants fired by the catch-up pass.
	CaughtUp int
	// Skipped counts missed instants dropped per the catch-up policy.
	Skipped int
	// Orphaned counts journal entries for rules that no longer exist.
	Orphaned int
}

func (r RecoveryReport) String() string {
	return fmt.Sprintf("replayed=%d refired=%d deduped=%d caughtup=%d skipped=%d orphaned=%d",
		r.ReplayedPending, r.Refired, r.Deduped, r.CaughtUp, r.Skipped, r.Orphaned)
}

// Recover brings a durable daemon back to a consistent state after a crash:
//
//  1. RULE-TIME rows older than the journal's acked-through high-water are
//     fast-forwarded — they came from a snapshot taken before firings that
//     the journal proves committed.
//  2. In-flight firings from the journal are resolved: already-committed
//     ones are acked without re-execution (the RULE-TIME dedup), the rest
//     are re-executed (FireAll/FireLast) or skipped (SkipMissed).
//  3. Triggers that came due while the daemon was down are caught up per
//     the policy: FireAll fires every missed instant in order, FireLast
//     only the latest, SkipMissed none.
//  4. Probing resumes at `now`.
//
// Together with the firing transaction (action + RULE-TIME advance commit
// atomically) this gives exactly-once execution per trigger instant under
// FireAll, and at-most-once under SkipMissed.
func (c *DBCron) Recover(now int64) (RecoveryReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep RecoveryReport
	if !c.durable {
		return rep, fmt.Errorf("rules: Recover requires a durable daemon (NewDBCronWith)")
	}
	c.recovering = true
	defer func() { c.recovering = false }()
	j := c.opts.Journal

	// Phase 1: stale-snapshot protection. A restored RULE-TIME row may
	// predate firings the journal acked; trust the journal's high-water.
	if j != nil {
		for _, name := range c.eng.temporalNames() {
			hi := j.AckedThrough(name)
			if hi == 0 {
				continue
			}
			if next, ok := c.eng.storedNext(name); ok && next <= hi {
				if _, err := c.eng.skipPast(name, hi); err != nil {
					return rep, err
				}
			}
		}
	}

	// Phase 2: resolve in-flight firings recorded in the journal.
	if j != nil {
		for _, p := range j.Pending() {
			rep.ReplayedPending++
			if !c.eng.hasTemporal(p.Rule) {
				rep.Orphaned++
				if err := j.Skip(p.Seq); err != nil {
					return rep, err
				}
				continue
			}
			if c.opts.CatchUp == SkipMissed {
				rep.Skipped++
				if err := j.Skip(p.Seq); err != nil {
					return rep, err
				}
				continue
			}
			if next, ok := c.eng.storedNext(p.Rule); ok && next > p.At {
				// The firing's transaction committed before the crash; only
				// its ack was lost.
				rep.Deduped++
				if err := j.Ack(p.Seq); err != nil {
					return rep, err
				}
				continue
			}
			pf := pendingFiring{Firing: Firing{Rule: p.Rule, At: p.At}, runAt: p.At, attempt: p.Attempts, seq: p.Seq}
			if p.At > now {
				// Scheduled in a probe window that had not elapsed yet —
				// re-queue it for its due time instead of firing early.
				key := strings.ToLower(p.Rule)
				if !c.scheduled[key] {
					c.scheduled[key] = true
					heap.Push(&c.pending, pf)
				}
				continue
			}
			ok, err := c.execute(&pf, now)
			if err != nil {
				return rep, err
			}
			if ok {
				rep.Refired++
			}
		}
	}

	// Phase 3: catch up triggers missed while down. DueWithin(now, 0)
	// returns every overdue rule; entries already re-queued by phase 2
	// retries are left to the heap.
	due, err := c.eng.DueWithin(now, 0)
	if err != nil {
		return rep, err
	}
	for _, f := range due {
		key := strings.ToLower(f.Rule)
		if c.scheduled[key] {
			continue
		}
		missed, err := c.eng.missedInstants(f.Rule, now, c.opts.MaxCatchUp)
		if err != nil {
			return rep, err
		}
		if len(missed) == 0 {
			continue
		}
		switch c.opts.CatchUp {
		case FireAll:
			for _, at := range missed {
				pf, err := c.newPending(f.Rule, at)
				if err != nil {
					return rep, err
				}
				ok, err := c.execute(&pf, now)
				if err != nil {
					return rep, err
				}
				if !ok {
					// The failed instant is queued for retry (or dead-
					// lettered); firing later instants now would advance
					// RULE-TIME past it and turn the retry into a no-op.
					// Later instants stay overdue and are picked up by the
					// retry's success path and subsequent probes.
					break
				}
				rep.CaughtUp++
			}
		case FireLast:
			last := missed[len(missed)-1]
			rep.Skipped += len(missed) - 1
			pf, err := c.newPending(f.Rule, last)
			if err != nil {
				return rep, err
			}
			ok, err := c.execute(&pf, now)
			if err != nil {
				return rep, err
			}
			if ok {
				rep.CaughtUp++
			}
		case SkipMissed:
			rep.Skipped += len(missed)
			if _, err := c.eng.skipPast(f.Rule, now); err != nil {
				return rep, err
			}
		}
	}

	// Phase 4: resume probing immediately.
	c.nextProbe = now
	heap.Init(&c.pending)
	return rep, nil
}
