package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calsys/internal/faultinject"
)

func open(t *testing.T, path string, opts ...Option) *Journal {
	t.Helper()
	j, err := Open(path, append([]Option{WithSync(false)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestLifecycleAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "firing.journal")
	j := open(t, path)

	s1, err := j.Scheduled("daily", 100)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := j.Scheduled("weekly", 200)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("sequence numbers must be distinct")
	}
	if err := j.Begin(s1, 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Ack(s1); err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(s2, 1); err != nil {
		t.Fatal(err)
	}
	// crash before ack of s2
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := open(t, path)
	defer j2.Close()
	pend := j2.Pending()
	if len(pend) != 1 || pend[0].Rule != "weekly" || pend[0].At != 200 || pend[0].Attempts != 1 {
		t.Fatalf("pending = %+v", pend)
	}
	if got := j2.AckedThrough("daily"); got != 100 {
		t.Errorf("AckedThrough(daily) = %d", got)
	}
	if got := j2.AckedThrough("weekly"); got != 0 {
		t.Errorf("AckedThrough(weekly) = %d", got)
	}
	// new sequence numbers continue after the replayed ones
	s3, err := j2.Scheduled("daily", 300)
	if err != nil {
		t.Fatal(err)
	}
	if s3 <= s2 {
		t.Errorf("seq did not advance: %d after %d", s3, s2)
	}
}

func TestDeadAndSkipComplete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path)
	s1, _ := j.Scheduled("a", 10)
	s2, _ := j.Scheduled("b", 20)
	if err := j.Dead(s1, 5, "gave up: boom"); err != nil {
		t.Fatal(err)
	}
	if err := j.Skip(s2); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := open(t, path)
	defer j2.Close()
	if p := j2.Pending(); len(p) != 0 {
		t.Fatalf("pending = %+v", p)
	}
	if j2.AckedThrough("a") != 10 || j2.AckedThrough("b") != 20 {
		t.Errorf("acked-through: a=%d b=%d", j2.AckedThrough("a"), j2.AckedThrough("b"))
	}
}

func TestTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path)
	s1, _ := j.Scheduled("a", 10)
	if err := j.Ack(s1); err != nil {
		t.Fatal(err)
	}
	s2, _ := j.Scheduled("b", 20)
	_ = s2
	j.Close()

	// Simulate a torn final write: chop the file mid-record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := open(t, path)
	st := j2.State()
	if !st.Truncated {
		t.Error("torn tail not flagged")
	}
	if len(st.Pending) != 0 {
		t.Errorf("pending after torn S = %+v", st.Pending)
	}
	if j2.AckedThrough("a") != 10 {
		t.Errorf("acked-through lost: %d", j2.AckedThrough("a"))
	}
	// Appending after recovery must yield a clean journal again.
	s3, err := j2.Scheduled("c", 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Ack(s3); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := open(t, path)
	defer j3.Close()
	if st := j3.State(); st.Truncated || j3.AckedThrough("c") != 30 {
		t.Errorf("post-recovery journal unhealthy: %+v", st)
	}
}

func TestGarbageTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path)
	s1, _ := j.Scheduled("a", 10)
	j.Ack(s1)
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("X@@ total garbage\n")
	f.Close()

	j2 := open(t, path)
	defer j2.Close()
	if st := j2.State(); !st.Truncated || j2.AckedThrough("a") != 10 {
		t.Errorf("garbage tail: %+v", st)
	}
}

func TestRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	if err := os.WriteFile(path, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("err = %v", err)
	}
}

func TestQuotedRuleNamesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path)
	name := `we"ird rule \n name`
	s, err := j.Scheduled(name, 42)
	if err != nil {
		t.Fatal(err)
	}
	_ = s
	j.Close()
	j2 := open(t, path)
	defer j2.Close()
	p := j2.Pending()
	if len(p) != 1 || p[0].Rule != name {
		t.Fatalf("pending = %+v", p)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path)
	for i := 0; i < 50; i++ {
		s, _ := j.Scheduled("daily", int64(100+i))
		j.Begin(s, 1)
		j.Ack(s)
	}
	sPend, _ := j.Scheduled("daily", 999)
	j.Begin(sPend, 2)
	big, _ := os.Stat(path)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	small, _ := os.Stat(path)
	if small.Size() >= big.Size() {
		t.Errorf("compact did not shrink: %d -> %d", big.Size(), small.Size())
	}
	// State preserved across compact + reopen.
	s2, err := j.Scheduled("daily", 1000)
	if err != nil {
		t.Fatal(err)
	}
	j.Ack(s2)
	j.Close()
	j2 := open(t, path)
	defer j2.Close()
	if got := j2.AckedThrough("daily"); got != 1000 {
		t.Errorf("acked-through after compact = %d", got)
	}
	p := j2.Pending()
	if len(p) != 1 || p[0].At != 999 || p[0].Attempts != 2 {
		t.Fatalf("pending after compact = %+v", p)
	}
}

func TestInjectedAppendFailureSurfaces(t *testing.T) {
	inj := faultinject.New(1)
	path := filepath.Join(t.TempDir(), "j")
	j := open(t, path, WithFaults(inj))
	defer j.Close()
	inj.CrashAt(SiteAppend, inj.Count(SiteAppend)+1)
	if _, err := j.Scheduled("a", 1); !faultinject.IsCrash(err) {
		t.Fatalf("err = %v, want injected crash", err)
	}
	// After the crash point passes, the journal keeps working.
	if _, err := j.Scheduled("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil && !errors.Is(err, faultinject.ErrInjected) {
		t.Fatal(err)
	}
}
