// Package journal is the write-ahead firing journal of the rules engine: an
// append-only, line-oriented log of scheduled → fired → acked transitions for
// every temporal-rule firing, fsynced on commit, replayed at startup to
// recover firings a crashed daemon had accepted but not completed.
//
// Format (text, one record per line; names and reasons strconv-quoted):
//
//	calsys-journal 1
//	S <seq> <at> <rule>             firing accepted into the schedule
//	B <seq> <attempt>               execution attempt begins
//	A <seq>                         firing committed (acked)
//	D <seq> <attempts> <reason>     firing dead-lettered after retry budget
//	K <seq>                         firing skipped by the catch-up policy
//	T <at> <rule>                   acked high-water mark (written by Compact)
//
// A firing is pending iff it has an S record and no A/D/K. Replay tolerates
// a torn final line (a crash mid-write): the tail is dropped and Open
// truncates the file back to the last whole record.
package journal

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"calsys/internal/faultinject"
)

const magic = "calsys-journal 1"

// Fault-injection sites in the journal I/O path.
const (
	SiteAppend = "journal.append"
	SiteSync   = "journal.sync"
)

// PendingFiring is a firing the journal accepted but never saw completed.
type PendingFiring struct {
	Seq      uint64
	Rule     string
	At       int64 // trigger instant, epoch seconds
	Attempts int   // B records seen (execution may have begun before the crash)
}

// State is what replaying a journal yields.
type State struct {
	Pending []PendingFiring // S without A/D/K, in seq order
	// AckedThrough maps each rule to the latest trigger instant the journal
	// saw completed (acked, dead-lettered or skipped). Recovery uses it to
	// avoid re-firing instants whose RULE-TIME update was lost with an old
	// snapshot.
	AckedThrough map[string]int64
	NextSeq      uint64
	Records      int
	Truncated    bool  // a torn/corrupt tail was dropped
	ValidBytes   int64 // offset of the last whole record
}

// Journal is an open firing journal. Methods are safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	path   string
	seq    uint64
	sync   bool
	faults *faultinject.Injector
	state  State
}

// Option configures Open.
type Option func(*Journal)

// WithSync controls fsync-on-commit (default true). Tests disable it for
// speed; production keeps it on.
func WithSync(on bool) Option { return func(j *Journal) { j.sync = on } }

// WithFaults threads a fault injector through the journal's I/O sites.
func WithFaults(in *faultinject.Injector) Option { return func(j *Journal) { j.faults = in } }

// Open opens (or creates) the journal at path, replays any existing records,
// truncates a torn tail, and positions for appending. The replayed state is
// available via State / Pending.
func Open(path string, opts ...Option) (*Journal, error) {
	j := &Journal{path: path, sync: true}
	for _, fn := range opts {
		fn(j)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	st, err := Replay(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Truncated {
		if err := f.Truncate(st.ValidBytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(st.ValidBytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.seq = st.NextSeq
	j.state = *st
	if st.Records == 0 && st.ValidBytes == 0 {
		if err := j.appendLine(magic, true); err != nil {
			f.Close()
			return nil, err
		}
		j.state.ValidBytes = int64(len(magic)) + 1
	}
	return j, nil
}

// Replay parses a journal image from f (which may be any *os.File opened for
// reading) and derives its state. A torn or corrupt suffix is tolerated:
// parsing stops at the first bad line and Truncated is set.
func Replay(f *os.File) (*State, error) {
	if _, err := f.Seek(0, 0); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	st := &State{AckedThrough: map[string]int64{}, NextSeq: 1}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	type sched struct {
		pf   PendingFiring
		done bool
	}
	byseq := map[uint64]*sched{}
	var order []uint64
	var offset int64

	first := true
	for sc.Scan() {
		line := sc.Text()
		lineLen := int64(len(sc.Bytes())) + 1
		if first {
			if line != magic {
				if line == "" {
					break
				}
				return nil, fmt.Errorf("journal: not a firing journal (bad magic %q)", line)
			}
			first = false
			offset += lineLen
			continue
		}
		rec, ok := parseRecord(line)
		if !ok {
			st.Truncated = true
			break
		}
		switch rec.kind {
		case 'S':
			s := &sched{pf: PendingFiring{Seq: rec.seq, Rule: rec.rule, At: rec.at}}
			byseq[rec.seq] = s
			order = append(order, rec.seq)
			if rec.seq >= st.NextSeq {
				st.NextSeq = rec.seq + 1
			}
		case 'B':
			if s, ok := byseq[rec.seq]; ok {
				s.pf.Attempts = rec.attempt
			}
		case 'A', 'D', 'K':
			if s, ok := byseq[rec.seq]; ok {
				s.done = true
				key := strings.ToLower(s.pf.Rule)
				if s.pf.At > st.AckedThrough[key] {
					st.AckedThrough[key] = s.pf.At
				}
			}
		case 'T':
			key := strings.ToLower(rec.rule)
			if rec.at > st.AckedThrough[key] {
				st.AckedThrough[key] = rec.at
			}
		}
		st.Records++
		offset += lineLen
	}
	if err := sc.Err(); err != nil {
		// An overlong or unreadable tail is treated like a torn write.
		st.Truncated = true
	}
	st.ValidBytes = offset
	for _, seq := range order {
		if s := byseq[seq]; !s.done {
			st.Pending = append(st.Pending, s.pf)
		}
	}
	return st, nil
}

type record struct {
	kind    byte
	seq     uint64
	at      int64
	attempt int
	rule    string
}

func parseRecord(line string) (record, bool) {
	if line == "" {
		return record{}, false
	}
	var r record
	r.kind = line[0]
	rest := strings.TrimPrefix(line[1:], " ")
	switch r.kind {
	case 'S':
		parts := strings.SplitN(rest, " ", 3)
		if len(parts) != 3 {
			return record{}, false
		}
		seq, err1 := strconv.ParseUint(parts[0], 10, 64)
		at, err2 := strconv.ParseInt(parts[1], 10, 64)
		rule, err3 := strconv.Unquote(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return record{}, false
		}
		r.seq, r.at, r.rule = seq, at, rule
	case 'B':
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			return record{}, false
		}
		seq, err1 := strconv.ParseUint(parts[0], 10, 64)
		n, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return record{}, false
		}
		r.seq, r.attempt = seq, n
	case 'A', 'K':
		seq, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return record{}, false
		}
		r.seq = seq
	case 'D':
		parts := strings.SplitN(rest, " ", 3)
		if len(parts) != 3 {
			return record{}, false
		}
		seq, err1 := strconv.ParseUint(parts[0], 10, 64)
		n, err2 := strconv.Atoi(parts[1])
		if _, err3 := strconv.Unquote(parts[2]); err1 != nil || err2 != nil || err3 != nil {
			return record{}, false
		}
		r.seq, r.attempt = seq, n
	case 'T':
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			return record{}, false
		}
		at, err1 := strconv.ParseInt(parts[0], 10, 64)
		rule, err2 := strconv.Unquote(parts[1])
		if err1 != nil || err2 != nil {
			return record{}, false
		}
		r.at, r.rule = at, rule
	default:
		return record{}, false
	}
	return r, true
}

// State returns the state replayed when the journal was opened.
func (j *Journal) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Pending returns the firings replayed as accepted-but-incomplete at Open.
func (j *Journal) Pending() []PendingFiring {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]PendingFiring(nil), j.state.Pending...)
}

// AckedThrough returns the latest completed trigger instant the journal has
// seen for rule (0 when none).
func (j *Journal) AckedThrough(rule string) int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.AckedThrough[strings.ToLower(rule)]
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

func (j *Journal) appendLine(line string, sync bool) error {
	if err := faultinject.Hit(j.faults, SiteAppend); err != nil {
		return err
	}
	if _, err := j.w.WriteString(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if sync && j.sync {
		if err := faultinject.Hit(j.faults, SiteSync); err != nil {
			return err
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	return nil
}

// Scheduled records a firing entering the schedule and returns its sequence
// number. The record is written but not synced; call Sync after a batch (the
// probe writes one batch per window).
func (j *Journal) Scheduled(rule string, at int64) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	seq := j.seq
	j.seq++
	err := j.appendLine(fmt.Sprintf("S %d %d %s", seq, at, strconv.Quote(rule)), false)
	return seq, err
}

// Begin records the start of execution attempt n (1-based) for seq.
func (j *Journal) Begin(seq uint64, attempt int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLine(fmt.Sprintf("B %d %d", seq, attempt), false)
}

// Ack records seq as committed and fsyncs.
func (j *Journal) Ack(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLine(fmt.Sprintf("A %d", seq), true)
}

// Dead records seq as dead-lettered after attempts tries and fsyncs.
func (j *Journal) Dead(seq uint64, attempts int, reason string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLine(fmt.Sprintf("D %d %d %s", seq, attempts, strconv.Quote(reason)), true)
}

// Skip records seq as skipped by the catch-up policy and fsyncs.
func (j *Journal) Skip(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLine(fmt.Sprintf("K %d", seq), true)
}

// HighWater records an acked high-water mark for a rule (a T record, the
// same form Compact writes) without syncing; call Sync after a batch. A new
// per-shard epoch journal is seeded with the merged high-waters of the
// prior epochs' files before those are deleted (shard handoff).
func (j *Journal) HighWater(rule string, at int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	key := strings.ToLower(rule)
	if at > j.state.AckedThrough[key] {
		j.state.AckedThrough[key] = at
	}
	return j.appendLine(fmt.Sprintf("T %d %s", at, strconv.Quote(rule)), false)
}

// Sync flushes and fsyncs the journal.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := faultinject.Hit(j.faults, SiteSync); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if !j.sync {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return nil
}

// Compact rewrites the journal to its minimal replay form: the magic line,
// one T high-water record per rule, and S/B records for still-pending
// firings. Call it on clean shutdown or periodically to bound growth.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	st, err := Replay(j.f)
	if err != nil {
		return err
	}
	tmp := j.path + ".compact"
	nf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	bw := bufio.NewWriter(nf)
	fmt.Fprintln(bw, magic)
	for _, rule := range sortedKeys(st.AckedThrough) {
		fmt.Fprintf(bw, "T %d %s\n", st.AckedThrough[rule], strconv.Quote(rule))
	}
	for _, p := range st.Pending {
		fmt.Fprintf(bw, "S %d %d %s\n", p.Seq, p.At, strconv.Quote(p.Rule))
		if p.Attempts > 0 {
			fmt.Fprintf(bw, "B %d %d\n", p.Seq, p.Attempts)
		}
	}
	if err := bw.Flush(); err != nil {
		nf.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := nf.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	old := j.f
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopening after compact: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	old.Close()
	j.f = f
	j.w = bufio.NewWriter(f)
	j.state = *st
	return nil
}

func lowerKey(rule string) string { return strings.ToLower(rule) }

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for p := i; p > 0 && out[p] < out[p-1]; p-- {
			out[p], out[p-1] = out[p-1], out[p]
		}
	}
	return out
}

// Close flushes, fsyncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	flushErr := j.w.Flush()
	if j.sync {
		if err := j.f.Sync(); err != nil && flushErr == nil {
			flushErr = err
		}
	}
	closeErr := j.f.Close()
	j.f = nil
	if flushErr != nil {
		return fmt.Errorf("journal: %w", flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("journal: %w", closeErr)
	}
	return nil
}
