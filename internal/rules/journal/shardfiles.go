// This file: per-shard, per-epoch journal files. A sharded fleet gives every
// shard its own journal, and every lease grant (epoch) a fresh file: a
// zombie worker that lost the lease may still hold its old epoch's file
// open, so the new owner never appends to a predecessor's file. Instead it
// replays and merges every file the shard has accumulated, seeds a new epoch
// file with the merged high-waters, recovers, and deletes the old files.

package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ShardFile returns the journal path for a shard owned under an epoch.
func ShardFile(dir string, shard int, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d-e%d.journal", shard, epoch))
}

// ShardFiles lists every epoch journal present for a shard, sorted by name.
// Multiple files mean prior owners died (or raced a Compact) before their
// epoch was fully superseded.
func ShardFiles(dir string, shard int) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%04d-e*.journal", shard)))
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	sort.Strings(matches)
	return matches, nil
}

// ReplayFile replays a journal image from disk without opening it for
// appending. Missing files yield an empty state: a crash can interleave
// with file deletion during handoff.
func ReplayFile(path string) (*State, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &State{AckedThrough: map[string]int64{}, NextSeq: 1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	return Replay(f)
}

// MergeStates folds the replayed states of a shard's epoch files into one:
// acked high-waters take the per-rule maximum, and pending intents are
// deduplicated by (rule, at) keeping the highest attempt count, dropping
// intents whose instant the merged high-water already proves committed.
// Sequence numbers are meaningless across files; the adopter re-journals.
func MergeStates(states ...*State) *State {
	out := &State{AckedThrough: map[string]int64{}, NextSeq: 1}
	type key struct {
		rule string
		at   int64
	}
	seen := map[key]int{} // -> index into out.Pending
	for _, st := range states {
		if st == nil {
			continue
		}
		for rule, hi := range st.AckedThrough {
			if hi > out.AckedThrough[rule] {
				out.AckedThrough[rule] = hi
			}
		}
		for _, p := range st.Pending {
			k := key{lowerKey(p.Rule), p.At}
			if i, ok := seen[k]; ok {
				if p.Attempts > out.Pending[i].Attempts {
					out.Pending[i].Attempts = p.Attempts
				}
				continue
			}
			seen[k] = len(out.Pending)
			out.Pending = append(out.Pending, p)
		}
		out.Records += st.Records
	}
	kept := out.Pending[:0]
	for _, p := range out.Pending {
		if p.At <= out.AckedThrough[lowerKey(p.Rule)] {
			continue
		}
		kept = append(kept, p)
	}
	out.Pending = kept
	// Deterministic replay order: by instant, then rule.
	sort.SliceStable(out.Pending, func(i, j int) bool {
		if out.Pending[i].At != out.Pending[j].At {
			return out.Pending[i].At < out.Pending[j].At
		}
		return lowerKey(out.Pending[i].Rule) < lowerKey(out.Pending[j].Rule)
	})
	return out
}
