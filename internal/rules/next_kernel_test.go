package rules

import (
	"fmt"
	"reflect"
	"testing"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/store"
)

// DueWithin's boundary is inclusive: a trigger exactly at now+T is due, one
// second past it is not.
func TestDueWithinBoundaryInclusive(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1)) // Friday
	var hits []int64
	if err := eng.DefineTemporalRule("tue", "[2]/DAYS:during:WEEKS", countingAction("tue", &hits), start); err != nil {
		t.Fatal(err)
	}
	delta := ch.EpochSecondsOf(d(1993, 1, 5)) - start // next trigger: Tuesday Jan 5
	due, err := eng.DueWithin(start, delta)
	if err != nil {
		t.Fatal(err)
	}
	if len(due) != 1 || due[0].Rule != "tue" {
		t.Fatalf("DueWithin(start, exactly to the trigger) = %v, want the rule due", due)
	}
	due, err = eng.DueWithin(start, delta-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(due) != 0 {
		t.Fatalf("DueWithin(start, one second short) = %v, want empty", due)
	}
}

// A rule whose expression has no instant within the lookahead horizon parks
// on the noTrigger sentinel, and no probe window — however large — may ever
// schedule it.
func TestDormantRuleNeverScheduled(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	var hits []int64
	// Day ticks 10–20 fall in January 1987, six years before `start`.
	if err := eng.DefineTemporalRule("past", "DAYS:during:interval(10, 20)", countingAction("past", &hits), start); err != nil {
		t.Fatal(err)
	}
	if got := eng.nextOf("past"); got != noTrigger {
		t.Fatalf("nextOf = %d, want the noTrigger sentinel", got)
	}
	if stored, ok := eng.storedNext("past"); !ok || stored != noTrigger {
		t.Fatalf("RULE_TIME = %d,%v, want the persisted sentinel", stored, ok)
	}
	// Even a probe window reaching past the sentinel value must skip it.
	due, err := eng.DueWithin(start, noTrigger)
	if err != nil {
		t.Fatal(err)
	}
	if len(due) != 0 {
		t.Fatalf("DueWithin(start, huge T) = %v, want empty", due)
	}
	cron, err := NewDBCron(eng, 365*chronology.SecondsPerDay, start)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cron.AdvanceTo(start + 3*365*chronology.SecondsPerDay); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("dormant rule fired %d times", len(hits))
	}
}

// A rule that re-arms inside the current probe window fires at its instant
// without waiting for the next probe: one AdvanceTo spanning a whole weekly
// window executes every daily firing in it, driven by a single probe.
func TestReArmInsideWindowFiresWithoutProbe(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	var hits []int64
	if err := eng.DefineTemporalRule("daily", "DAYS", countingAction("daily", &hits), start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCron(eng, 7*chronology.SecondsPerDay, start)
	if err != nil {
		t.Fatal(err)
	}
	// One step to mid-window: the only probe so far is the one at start,
	// whose window held only the Jan 2 firing; Jan 3–6 exist solely because
	// each firing re-armed its successor into the live window.
	if _, err := cron.AdvanceTo(start + 6*chronology.SecondsPerDay); err != nil {
		t.Fatal(err)
	}
	want := []chronology.Civil{d(1993, 1, 2), d(1993, 1, 3), d(1993, 1, 4), d(1993, 1, 5), d(1993, 1, 6), d(1993, 1, 7)}
	if len(hits) != len(want) {
		days := make([]chronology.Civil, len(hits))
		for i, at := range hits {
			days[i] = ch.CivilOf(at)
		}
		t.Fatalf("fired on %v, want %v", days, want)
	}
	for i, at := range hits {
		if day := ch.CivilOf(at); day != want[i] {
			t.Errorf("firing %d on %v, want %v", i, day, want[i])
		}
	}
}

// Shared-plan fan-out: many rules over few distinct expressions collapse to
// one plan group per expression, the whole fleet's next-instant work runs a
// handful of windowed probes, and peer rules fire on identical instants.
func TestSharedPlanFanOut(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	exprs := []string{"[1]/DAYS:during:WEEKS", "[3]/DAYS:during:WEEKS", "[n]/DAYS:during:MONTHS"}
	hits := make([]map[string][]int64, len(exprs))
	var defs []TemporalRuleDef
	for e := range exprs {
		hits[e] = map[string][]int64{}
		for i := 0; i < 34; i++ {
			name := fmt.Sprintf("r%d_%d", e, i)
			eIdx, nm := e, name
			defs = append(defs, TemporalRuleDef{Name: name, CalExpr: exprs[e],
				Action: FuncAction{Name: "count", Fn: func(_ *store.Txn, _ *store.Event, at int64) error {
					hits[eIdx][nm] = append(hits[eIdx][nm], at)
					return nil
				}}})
		}
	}
	if err := eng.DefineTemporalRules(start, defs); err != nil {
		t.Fatal(err)
	}
	groups, _ := eng.PlanGroupStats()
	if groups != len(exprs) {
		t.Fatalf("%d rules resolved into %d plan groups, want %d", len(defs), groups, len(exprs))
	}
	cron, err := NewDBCron(eng, chronology.SecondsPerDay, start)
	if err != nil {
		t.Fatal(err)
	}
	clock := NewVirtualClock(start)
	for i := 0; i < 60; i++ {
		if _, err := cron.AdvanceTo(clock.Advance(chronology.SecondsPerDay)); err != nil {
			t.Fatal(err)
		}
	}
	for e := range exprs {
		var ref []int64
		for name, got := range hits[e] {
			if len(got) == 0 {
				t.Fatalf("rule %s never fired", name)
			}
			if ref == nil {
				ref = got
				continue
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("peer rules of %q disagree: %v vs %v", exprs[e], got, ref)
			}
		}
	}
	groups, probes := eng.PlanGroupStats()
	if groups != len(exprs) {
		t.Fatalf("after 60 days: %d plan groups, want %d", groups, len(exprs))
	}
	// 102 rules × ~20 firings each, all served by a few probes (one per
	// group plus cache re-anchors); the seed path would have run one
	// 730-day evaluation per firing.
	if probes > 10 {
		t.Errorf("fleet cost %d windowed probes, want <= 10", probes)
	}
}

// Batch definition must be observationally identical to defining the same
// rules one by one: same RULE-TIME triggers, same plan text, same firings.
func TestBatchDefineMatchesIndividual(t *testing.T) {
	type ruleSpec struct{ name, expr string }
	specs := []ruleSpec{
		{"a1", "[2]/DAYS:during:WEEKS"},
		{"a2", "[2]/DAYS:during:WEEKS"},
		{"b1", "[n]/DAYS:during:MONTHS"},
		{"b2", "[n]/DAYS:during:MONTHS"},
		{"c1", "DAYS"},
		{"d1", "[3]/WEEKS:overlaps:MONTHS"},
	}
	run := func(batch bool) (map[string][]int64, map[string]int64, map[string]string) {
		eng, cal := newEngine(t)
		ch := cal.Chron()
		start := ch.EpochSecondsOf(d(1993, 1, 1))
		fired := map[string][]int64{}
		action := func(name string) Action {
			return FuncAction{Name: "count", Fn: func(_ *store.Txn, _ *store.Event, at int64) error {
				fired[name] = append(fired[name], at)
				return nil
			}}
		}
		if batch {
			var defs []TemporalRuleDef
			for _, s := range specs {
				defs = append(defs, TemporalRuleDef{Name: s.name, CalExpr: s.expr, Action: action(s.name)})
			}
			if err := eng.DefineTemporalRules(start, defs); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, s := range specs {
				if err := eng.DefineTemporalRule(s.name, s.expr, action(s.name), start); err != nil {
					t.Fatal(err)
				}
			}
		}
		nexts := map[string]int64{}
		plans := map[string]string{}
		for _, s := range specs {
			n, ok := eng.storedNext(s.name)
			if !ok {
				t.Fatalf("no RULE_TIME row for %s", s.name)
			}
			nexts[s.name] = n
			info, err := eng.RuleInfoRow(s.name)
			if err != nil {
				t.Fatal(err)
			}
			plans[s.name] = info
		}
		cron, err := NewDBCron(eng, chronology.SecondsPerDay, start)
		if err != nil {
			t.Fatal(err)
		}
		clock := NewVirtualClock(start)
		for i := 0; i < 60; i++ {
			if _, err := cron.AdvanceTo(clock.Advance(chronology.SecondsPerDay)); err != nil {
				t.Fatal(err)
			}
		}
		return fired, nexts, plans
	}
	bFired, bNexts, bPlans := run(true)
	iFired, iNexts, iPlans := run(false)
	if !reflect.DeepEqual(bNexts, iNexts) {
		t.Errorf("first triggers differ:\n batch      %v\n individual %v", bNexts, iNexts)
	}
	if !reflect.DeepEqual(bPlans, iPlans) {
		t.Errorf("RULE-INFO rows differ:\n batch      %v\n individual %v", bPlans, iPlans)
	}
	if !reflect.DeepEqual(bFired, iFired) {
		t.Errorf("firing sequences differ:\n batch      %v\n individual %v", bFired, iFired)
	}
}

// RecomputeAll after a catalog change pulls triggers earlier when the new
// definition fires sooner, never postpones an armed trigger, and is
// idempotent.
func TestRecomputeAllPullsTriggersEarlier(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	ls := caldb.Lifespan{Lo: 1, Hi: caldb.MaxDayTick}
	if err := cal.DefineDerived("PAY", "{[5]/DAYS:during:WEEKS;}", ls, caldb.GranAuto); err != nil {
		t.Fatal(err)
	}
	start := ch.EpochSecondsOf(d(1993, 1, 1)) // Friday
	var hits []int64
	if err := eng.DefineTemporalRule("payday", "PAY", countingAction("pay", &hits), start); err != nil {
		t.Fatal(err)
	}
	wantFri := ch.EpochSecondsOf(d(1993, 1, 8))
	if n, _ := eng.storedNext("payday"); n != wantFri {
		t.Fatalf("armed at %v, want Friday Jan 8", ch.CivilOf(n))
	}
	// Paydays move to Tuesdays: the recompute must pull the armed Friday
	// Jan 8 trigger back to Tuesday Jan 5.
	if err := cal.Drop("PAY"); err != nil {
		t.Fatal(err)
	}
	if err := cal.DefineDerived("PAY", "{[2]/DAYS:during:WEEKS;}", ls, caldb.GranAuto); err != nil {
		t.Fatal(err)
	}
	now := ch.EpochSecondsOf(d(1993, 1, 3))
	changed, err := eng.RecomputeAll(now)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Fatalf("RecomputeAll changed %d rows, want 1", changed)
	}
	wantTue := ch.EpochSecondsOf(d(1993, 1, 5))
	if n, _ := eng.storedNext("payday"); n != wantTue {
		t.Fatalf("recomputed trigger %v, want Tuesday Jan 5", ch.CivilOf(n))
	}
	// Idempotent: nothing left to move.
	if changed, err = eng.RecomputeAll(now); err != nil || changed != 0 {
		t.Fatalf("second RecomputeAll = %d,%v, want 0 changes", changed, err)
	}
	// And the full daemon path: the probe after the change fires Tuesday.
	cron, err := NewDBCron(eng, chronology.SecondsPerDay, now)
	if err != nil {
		t.Fatal(err)
	}
	clock := NewVirtualClock(now)
	for i := 0; i < 4; i++ { // through Jan 7
		if _, err := cron.AdvanceTo(clock.Advance(chronology.SecondsPerDay)); err != nil {
			t.Fatal(err)
		}
	}
	if len(hits) != 1 || ch.CivilOf(hits[0]) != d(1993, 1, 5) {
		days := make([]chronology.Civil, len(hits))
		for i, at := range hits {
			days[i] = ch.CivilOf(at)
		}
		t.Fatalf("fired on %v, want exactly [1993-01-05]", days)
	}
}

// The kernel is an optimization, not a semantics change: an engine on the
// next-instant kernel and one forced onto the seed windowed path must drive
// identical firing sequences across every expression class.
func TestKernelMatchesWindowedEngine(t *testing.T) {
	exprs := []string{
		"DAYS",
		"[2]/DAYS:during:WEEKS",
		"[n]/DAYS:during:MONTHS",
		"[n]/DAYS:during:caloperate(MONTHS, 3)",
		"[1,3,5]/DAYS:during:WEEKS",
		"[3]/WEEKS:overlaps:MONTHS",
	}
	run := func(disableKernel bool) map[string][]int64 {
		eng, cal := newEngine(t)
		eng.DisableNextKernel = disableKernel
		ch := cal.Chron()
		start := ch.EpochSecondsOf(d(1993, 1, 1))
		fired := map[string][]int64{}
		for i, src := range exprs {
			name := fmt.Sprintf("r%d", i)
			nm := name
			if err := eng.DefineTemporalRule(name, src,
				FuncAction{Name: "count", Fn: func(_ *store.Txn, _ *store.Event, at int64) error {
					fired[nm] = append(fired[nm], at)
					return nil
				}}, start); err != nil {
				t.Fatal(err)
			}
		}
		cron, err := NewDBCron(eng, chronology.SecondsPerDay, start)
		if err != nil {
			t.Fatal(err)
		}
		clock := NewVirtualClock(start)
		for i := 0; i < 150; i++ {
			if _, err := cron.AdvanceTo(clock.Advance(chronology.SecondsPerDay)); err != nil {
				t.Fatal(err)
			}
		}
		return fired
	}
	kernel := run(false)
	windowed := run(true)
	if !reflect.DeepEqual(kernel, windowed) {
		t.Fatalf("firing sequences diverge:\n kernel   %v\n windowed %v", kernel, windowed)
	}
	for i, src := range exprs {
		if len(kernel[fmt.Sprintf("r%d", i)]) == 0 {
			t.Errorf("expression %q never fired in 150 days", src)
		}
	}
}
