package rules

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkTimingWheelVsHeap drives one simulated week of daemon queue
// traffic — 100k armed firings popped through hourly probe ticks — through
// each firingQueue arm. The heap arm pays what the seed daemon pays per
// probe: the O(pending) scan that rebuilds the scheduled set (see
// DisableWheel in probe). The wheel arm's bookkeeping is incremental, so a
// probe tick costs O(entries due in that tick), not O(all pending).
func BenchmarkTimingWheelVsHeap(b *testing.B) {
	b.Run("wheel", func(b *testing.B) { benchFiringQueue(b, false) })
	b.Run("heap", func(b *testing.B) { benchFiringQueue(b, true) })
}

func benchFiringQueue(b *testing.B, seedArm bool) {
	const (
		entries = 100_000
		window  = int64(7 * 86400)
		tick    = int64(3600)
	)
	base := int64(725846400)
	rng := rand.New(rand.NewSource(42))
	pfs := make([]pendingFiring, entries)
	for i := range pfs {
		at := base + rng.Int63n(window)
		pfs[i] = pendingFiring{
			Firing: Firing{Rule: fmt.Sprintf("rule-%04d", i&1023), At: at},
			runAt:  at,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var q firingQueue
		if seedArm {
			q = &heapQueue{}
		} else {
			q = newTimingWheel(base)
		}
		for i := range pfs {
			q.add(pfs[i])
		}
		popped := 0
		for now := base; now <= base+window; now += tick {
			if seedArm {
				// The seed probe rescans every pending entry to rebuild
				// the scheduled map each window.
				sched := 0
				q.each(func(pf pendingFiring) { sched++ })
				_ = sched
			}
			q.next()
			for {
				if _, ok := q.popDue(now); !ok {
					break
				}
				popped++
			}
		}
		if popped != entries {
			b.Fatalf("popped %d of %d", popped, entries)
		}
	}
}
