package rules

import (
	"fmt"
	"math/rand"
	"testing"
)

// drain pops everything due at limit and returns the popped entries.
func drain(q firingQueue, limit int64) []pendingFiring {
	var out []pendingFiring
	for {
		pf, ok := q.popDue(limit)
		if !ok {
			return out
		}
		out = append(out, pf)
	}
}

// TestWheelMatchesHeapOracle drives the timing wheel and the seed heap with
// the same randomized add/pop script and requires identical results: the
// same entries popped at every limit, in the same nondecreasing runAt order.
func TestWheelMatchesHeapOracle(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := int64(725846400) // 1993-01-01
		w := firingQueue(newTimingWheel(base))
		h := firingQueue(&heapQueue{})
		now := base
		n := 0
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0, 1: // add a batch, spread from overdue to ~3 years out
				for i := rng.Intn(8); i >= 0; i-- {
					off := rng.Int63n(3 * 365 * 86400)
					if rng.Intn(4) == 0 {
						off = -rng.Int63n(3600) // overdue (retry backlog)
					}
					pf := pendingFiring{
						Firing: Firing{Rule: fmt.Sprintf("r%d", n%7), At: now + off},
						runAt:  now + off,
					}
					n++
					w.add(pf)
					h.add(pf)
				}
			case 2: // advance and drain
				now += rng.Int63n(40 * 86400)
				wp, hp := drain(w, now), drain(h, now)
				if len(wp) != len(hp) {
					t.Fatalf("seed %d step %d: wheel popped %d, heap popped %d", seed, step, len(wp), len(hp))
				}
				counts := map[Firing]int{}
				for i := range wp {
					if wp[i].runAt > now {
						t.Fatalf("seed %d: popped runAt %d past limit %d", seed, wp[i].runAt, now)
					}
					if i > 0 && wp[i].runAt < wp[i-1].runAt {
						t.Fatalf("seed %d: wheel pop order regressed: %d after %d", seed, wp[i].runAt, wp[i-1].runAt)
					}
					if wp[i].runAt != hp[i].runAt {
						t.Fatalf("seed %d: pop %d runAt wheel=%d heap=%d", seed, i, wp[i].runAt, hp[i].runAt)
					}
					counts[wp[i].Firing]++
					counts[hp[i].Firing]--
				}
				for f, c := range counts {
					if c != 0 {
						t.Fatalf("seed %d: pop multiset mismatch at %v (%+d)", seed, f, c)
					}
				}
			}
			if w.size() != h.size() {
				t.Fatalf("seed %d: size wheel=%d heap=%d", seed, w.size(), h.size())
			}
			// The wheel's wakeup bound must never be later than the true
			// next instant (waking early is safe; late loses firings).
			if wn, hn := w.next(), h.next(); wn > hn {
				t.Fatalf("seed %d: wheel bound %d after true next %d", seed, wn, hn)
			}
		}
	}
}

// TestWheelNextBoundStalePlacement pins the subtle case: an entry placed at
// a coarse level while the base was far away keeps its slot as the base
// closes in, and can be earlier than fresher level-0 entries. The bound
// must still cover it.
func TestWheelNextBoundStalePlacement(t *testing.T) {
	w := newTimingWheel(0)
	early := pendingFiring{Firing: Firing{Rule: "early", At: 64}, runAt: 64}
	w.add(early) // 64-0 >= 64 → level 1
	if pf, ok := w.popDue(63); ok {
		t.Fatalf("nothing is due at 63, popped %+v", pf)
	}
	late := pendingFiring{Firing: Firing{Rule: "late", At: 100}, runAt: 100}
	w.add(late) // 100-63 < 64 → level 0
	if got := w.next(); got > 64 {
		t.Fatalf("next() = %d, must bound the level-1 entry at 64", got)
	}
	got := drain(w, 100)
	if len(got) != 2 || got[0].Rule != "early" || got[1].Rule != "late" {
		t.Fatalf("drain = %+v, want early then late", got)
	}
}

// TestWheelRemoveRule removes one rule's entries across the due heap and
// every level, leaving the rest intact.
func TestWheelRemoveRule(t *testing.T) {
	w := newTimingWheel(1000)
	adds := []struct {
		rule  string
		runAt int64
	}{
		{"a", 900},    // overdue → due heap
		{"b", 1001},   // level 0
		{"a", 1100},   // level ≥ 1
		{"b", 90000},  // coarse level
		{"a", 500000}, // coarser
	}
	for _, ad := range adds {
		w.add(pendingFiring{Firing: Firing{Rule: ad.rule, At: ad.runAt}, runAt: ad.runAt})
	}
	removed := w.removeRule("a")
	if len(removed) != 3 {
		t.Fatalf("removed %d entries of rule a, want 3", len(removed))
	}
	if w.size() != 2 {
		t.Fatalf("size = %d after removal, want 2", w.size())
	}
	rest := drain(w, 1<<40)
	if len(rest) != 2 || rest[0].Rule != "b" || rest[1].Rule != "b" {
		t.Fatalf("survivors = %+v, want b's two entries", rest)
	}
}

// TestWheelYearJumpCascade advances the base across a multi-year gap in one
// popDue — every entry must come out, in order, regardless of how many
// levels the jump crosses.
func TestWheelYearJumpCascade(t *testing.T) {
	base := int64(725846400)
	w := newTimingWheel(base)
	const n = 500
	for i := 0; i < n; i++ {
		at := base + int64(i)*7919 // spread over ~45 days
		w.add(pendingFiring{Firing: Firing{Rule: "r", At: at}, runAt: at})
	}
	got := drain(w, base+10*365*86400)
	if len(got) != n {
		t.Fatalf("popped %d, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i].runAt < got[i-1].runAt {
			t.Fatalf("pop order regressed at %d", i)
		}
	}
	if w.next() != noTrigger {
		t.Fatalf("next() = %d on empty wheel, want noTrigger", w.next())
	}
}
