package rules

// Chaos harness: a virtual daemon is killed at a deterministic, seeded
// fault-injection point — during the probe, inside the firing transaction,
// in the ack window after commit, or on a journal append — then recovered
// (new engine over the same durable store, reattached action, replayed
// journal, catch-up), and driven to the end of its schedule. Invariant
// under FireAll: every due trigger instant executes its action EXACTLY
// once across all incarnations. Under SkipMissed: at most once.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/faultinject"
	"calsys/internal/rules/journal"
	"calsys/internal/store"
)

// chaosSites are the kill points exercised; journal.SiteAppend models a
// crash while writing the journal itself.
var chaosSites = []string{SiteProbe, SiteFire, SiteAck, journal.SiteAppend}

const chaosDays = 8

// chaosRun drives one seeded kill-and-recover scenario and returns the
// per-instant execution counts, the expected trigger instants, and how many
// kills were injected.
func chaosRun(t *testing.T, seed int64, site string, policy CatchUpPolicy) (counts map[int64]int, expected []int64, kills int) {
	t.Helper()
	db := store.NewDB()
	cal, err := caldb.New(db, chronology.MustNew(chronology.DefaultEpoch))
	if err != nil {
		t.Fatal(err)
	}
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	end := start + chaosDays*chronology.SecondsPerDay
	for i := int64(1); i <= chaosDays; i++ {
		expected = append(expected, start+i*chronology.SecondsPerDay)
	}
	counts = map[int64]int{}
	action := FuncAction{Name: "count", Fn: func(_ *store.Txn, _ *store.Event, at int64) error {
		counts[at]++
		return nil
	}}
	jpath := filepath.Join(t.TempDir(), "firing.journal")

	inj := faultinject.New(seed)
	rng := rand.New(rand.NewSource(seed))
	// Arm one kill at a seed-chosen occurrence of the site. The first
	// journal append is Open's magic line; skip past it so boot succeeds.
	switch site {
	case journal.SiteAppend:
		inj.CrashAt(site, 2+rng.Intn(18))
	default:
		inj.CrashAt(site, 1+rng.Intn(6))
	}

	var cron *DBCron
	var jnl *journal.Journal
	boot := func(now int64, first bool) {
		for {
			eng, err := NewEngine(cal)
			if err != nil {
				t.Fatal(err)
			}
			eng.LookaheadDays = 60
			eng.SetFaults(inj)
			if first {
				err = eng.DefineTemporalRule("daily", "DAYS", action, start)
			} else {
				err = eng.ReattachAction("daily", action)
			}
			if err != nil {
				t.Fatalf("seed %d site %s: attach: %v", seed, site, err)
			}
			j, err := journal.Open(jpath, journal.WithSync(false), journal.WithFaults(inj))
			if err != nil {
				t.Fatalf("seed %d site %s: journal: %v", seed, site, err)
			}
			c, err := NewDBCronWith(eng, chronology.SecondsPerDay, now, CronOptions{
				Journal: j,
				Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: 1, MaxDelay: 2},
				CatchUp: policy,
				Seed:    seed,
				Faults:  inj,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !first {
				if _, err := c.Recover(now); err != nil {
					if faultinject.IsCrash(err) {
						// Killed again during recovery; the fd is all the
						// "process" that is left — reap it and reboot.
						kills++
						j.Close()
						continue
					}
					t.Fatalf("seed %d site %s: recover: %v", seed, site, err)
				}
			}
			cron, jnl = c, j
			return
		}
	}
	boot(start, true)

	step := int64(chronology.SecondsPerDay / 4)
	for now := start; now <= end; {
		_, err := cron.AdvanceTo(now)
		if err == nil {
			now += step
			continue
		}
		if !faultinject.IsCrash(err) {
			t.Fatalf("seed %d site %s: advance: %v", seed, site, err)
		}
		// Kill -9: abandon the incarnation mid-operation and recover. The
		// store.DB object stands in for the durable store (committed
		// transactions survive); the journal survives on disk.
		kills++
		jnl.Close()
		boot(now, false)
	}
	jnl.Close()
	return counts, expected, kills
}

// saveChaosArtifact copies a failing run's journal for CI upload.
func saveChaosArtifact(t *testing.T, jpath string, tag string) {
	dir := os.Getenv("CHAOS_ARTIFACTS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	src, err := os.Open(jpath)
	if err != nil {
		return
	}
	defer src.Close()
	dst, err := os.Create(filepath.Join(dir, tag+".journal"))
	if err != nil {
		return
	}
	defer dst.Close()
	io.Copy(dst, src)
	t.Logf("journal artifact saved for %s", tag)
}

// TestChaosExactlyOnceFireAll kills and recovers the daemon at every chaos
// site across many seeds and proves the FireAll invariant: each due trigger
// instant executes exactly once, none lost, none doubled.
func TestChaosExactlyOnceFireAll(t *testing.T) {
	const seedsPerSite = 13
	for _, site := range chaosSites {
		site := site
		t.Run(site, func(t *testing.T) {
			totalKills := 0
			for seed := int64(1); seed <= seedsPerSite; seed++ {
				counts, expected, kills := chaosRun(t, seed, site, FireAll)
				totalKills += kills
				for _, at := range expected {
					if counts[at] != 1 {
						t.Errorf("seed %d: instant %d executed %d times, want exactly 1", seed, at, counts[at])
					}
				}
				for at, n := range counts {
					found := false
					for _, want := range expected {
						if at == want {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("seed %d: unexpected execution at %d (%d times)", seed, at, n)
					}
				}
				if t.Failed() {
					saveChaosArtifact(t, filepath.Join(t.TempDir(), "firing.journal"),
						fmt.Sprintf("fireall-%s-seed%d", site, seed))
					return
				}
			}
			// The harness must actually be killing daemons, or the test
			// proves nothing.
			if totalKills == 0 {
				t.Errorf("site %s: no kills injected across %d seeds", site, seedsPerSite)
			}
		})
	}
}

// TestChaosAtMostOnceSkip replays the same kill schedule under SkipMissed:
// instants may be skipped but none may ever execute twice.
func TestChaosAtMostOnceSkip(t *testing.T) {
	const seedsPerSite = 13
	for _, site := range chaosSites {
		site := site
		t.Run(site, func(t *testing.T) {
			totalKills := 0
			for seed := int64(1); seed <= seedsPerSite; seed++ {
				counts, expected, kills := chaosRun(t, seed, site, SkipMissed)
				totalKills += kills
				for at, n := range counts {
					if n > 1 {
						t.Errorf("seed %d: instant %d executed %d times, want at most 1", seed, at, n)
					}
					found := false
					for _, want := range expected {
						if at == want {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("seed %d: unexpected execution at %d", seed, at)
					}
				}
				if t.Failed() {
					saveChaosArtifact(t, filepath.Join(t.TempDir(), "firing.journal"),
						fmt.Sprintf("skip-%s-seed%d", site, seed))
					return
				}
			}
			if totalKills == 0 {
				t.Errorf("site %s: no kills injected across %d seeds", site, seedsPerSite)
			}
		})
	}
}

// TestChaosRecoveryAfterLongOutage: the daemon dies and stays down for days;
// FireAll recovery fires every missed instant before resuming, FireLast only
// the latest, SkipMissed none.
func TestChaosRecoveryAfterLongOutage(t *testing.T) {
	cases := []struct {
		policy    CatchUpPolicy
		wantHits  int // executions of missed instants during recovery
		wantAfter int // further daily firings after recovery
	}{
		{FireAll, 5, 2},
		{FireLast, 1, 2},
		{SkipMissed, 0, 2},
	}
	for _, tc := range cases {
		t.Run(tc.policy.String(), func(t *testing.T) {
			db := store.NewDB()
			cal, err := caldb.New(db, chronology.MustNew(chronology.DefaultEpoch))
			if err != nil {
				t.Fatal(err)
			}
			start := cal.Chron().EpochSecondsOf(d(1993, 1, 1))
			var hits []int64
			action := countingAction("n", &hits)
			eng, err := NewEngine(cal)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.DefineTemporalRule("daily", "DAYS", action, start); err != nil {
				t.Fatal(err)
			}
			// The daemon never ran; 5 days pass. Boot durable and recover.
			down := start + 5*chronology.SecondsPerDay
			jpath := filepath.Join(t.TempDir(), "j")
			j, err := journal.Open(jpath, journal.WithSync(false))
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			cron, err := NewDBCronWith(eng, chronology.SecondsPerDay, down, CronOptions{
				Journal: j, CatchUp: tc.policy, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := cron.Recover(down)
			if err != nil {
				t.Fatal(err)
			}
			if len(hits) != tc.wantHits {
				t.Errorf("recovery fired %d times (%v), want %d; report %v", len(hits), hits, tc.wantHits, rep)
			}
			hits = hits[:0]
			for nowd := int64(1); nowd <= int64(tc.wantAfter); nowd++ {
				if _, err := cron.AdvanceTo(down + nowd*chronology.SecondsPerDay); err != nil {
					t.Fatal(err)
				}
			}
			if len(hits) != tc.wantAfter {
				t.Errorf("post-recovery fired %d times (%v), want %d", len(hits), hits, tc.wantAfter)
			}
		})
	}
}
