package rules

import (
	"fmt"
	"sync"
	"testing"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/store"
)

// Redefining a calendar must reach rules already defined on it: the engine
// caches each rule's prepared (inlined) expression, so without
// generation-based invalidation a redefined PAY_DAYS would keep firing on
// the old schedule forever. The new schedule takes effect at the first
// recomputation after the change (i.e. after the already-armed trigger).
func TestRuleSeesRedefinedCalendar(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	ls := caldb.Lifespan{Lo: 1, Hi: caldb.MaxDayTick}
	if err := cal.DefineDerived("PAY", "{[1]/DAYS:during:WEEKS;}", ls, caldb.GranAuto); err != nil {
		t.Fatal(err)
	}
	start := ch.EpochSecondsOf(d(1993, 1, 1)) // Friday
	var hits []int64
	if err := eng.DefineTemporalRule("payday", "PAY", countingAction("pay", &hits), start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCron(eng, chronology.SecondsPerDay, start)
	if err != nil {
		t.Fatal(err)
	}
	clock := NewVirtualClock(start)
	advanceDays := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := cron.AdvanceTo(clock.Advance(chronology.SecondsPerDay)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Through Jan 5: the Monday Jan 4 firing re-arms for Monday Jan 11.
	advanceDays(4)
	// Paydays move to Wednesdays. The armed Jan 11 trigger still fires (it
	// was scheduled before the change); its recomputation must pick up the
	// new definition.
	if err := cal.Drop("PAY"); err != nil {
		t.Fatal(err)
	}
	if err := cal.DefineDerived("PAY", "{[3]/DAYS:during:WEEKS;}", ls, caldb.GranAuto); err != nil {
		t.Fatal(err)
	}
	advanceDays(24) // through Jan 29
	want := []chronology.Civil{
		d(1993, 1, 4),  // Monday (old schedule)
		d(1993, 1, 11), // Monday (armed before the change)
		d(1993, 1, 13), // Wednesday (new schedule)
		d(1993, 1, 20),
		d(1993, 1, 27),
	}
	if len(hits) != len(want) {
		days := make([]chronology.Civil, len(hits))
		for i, at := range hits {
			days[i] = ch.CivilOf(at)
		}
		t.Fatalf("fired on %v, want %v", days, want)
	}
	for i, at := range hits {
		if day := ch.CivilOf(at); day != want[i] {
			t.Errorf("firing %d on %v, want %v", i, day, want[i])
		}
	}
}

// The daemon firing rules, sessions evaluating expressions, and sessions
// defining further rules all share the engine and the materialization cache;
// they must be safe to run concurrently (the CI race job runs this package
// under -race).
func TestConcurrentFiringEvaluationDefinition(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	var mu sync.Mutex
	var hits []int64
	counting := FuncAction{Name: "count", Fn: func(_ *store.Txn, _ *store.Event, at int64) error {
		mu.Lock()
		hits = append(hits, at)
		mu.Unlock()
		return nil
	}}
	if err := eng.DefineTemporalRule("weekly", "[2]/DAYS:during:WEEKS", counting, start); err != nil {
		t.Fatal(err)
	}
	cron, err := NewDBCron(eng, chronology.SecondsPerDay, start)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		clock := NewVirtualClock(start)
		for i := 0; i < 28; i++ {
			if _, err := cron.AdvanceTo(clock.Advance(chronology.SecondsPerDay)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			yr := 1990 + i%4
			if _, err := cal.EvalExpr("WEEKS + MONTHS", d(yr, 1, 1), d(yr, 12, 31)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("extra%d", i)
			if err := eng.DefineTemporalRule(name, "[n]/DAYS:during:MONTHS", counting, start); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(hits) == 0 {
		t.Fatal("no rule fired during the concurrent run")
	}
}
