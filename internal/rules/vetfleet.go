// vetfleet.go is the fleet-wide rule dedup analysis: every temporal rule's
// prepared calendar expression is canonicalized — symbolically, to the
// periodic pattern of its firing instants, when the calculus can lower it —
// and rules with identical canonical forms are reported as merge candidates.
// On a fleet where many tenants define "first day of month" in slightly
// different spellings, this finds every group that fires on identical
// instants without evaluating a single window.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"calsys/internal/core/plan"
)

// MergeGroup is one set of temporal rules that provably fire at identical
// instants and can be merged into a single rule (or rewired to share one
// action list).
type MergeGroup struct {
	// Key is the shared canonical form: the seconds-canonical firing pattern
	// when Exact, else the shared prepared-plan rendering.
	Key string
	// Exact reports whether the group was proven by the symbolic calculus
	// (equal firing patterns even across different spellings and
	// granularities). Inexact groups share a prepared plan verbatim — still
	// a guaranteed match, but only for syntactically convergent expressions.
	Exact bool
	// Rules are the member rule names, sorted.
	Rules []string
}

// String renders the merge suggestion the fleet analyzer prints.
func (g MergeGroup) String() string {
	return fmt.Sprintf("rules %s fire on identical instants — merge them",
		strings.Join(g.Rules, ", "))
}

// VetFleet canonicalizes every temporal rule's calendar expression and
// groups rules firing on identical instants. Expressions the symbolic
// calculus can lower are keyed by their canonical firing pattern in epoch
// seconds (so a daily rule and a first-hour-of-day rule group together);
// the rest fall back to the prepared-plan rendering, which still groups
// syntactic duplicates. Rules whose expressions no longer prepare (e.g. a
// referenced calendar was dropped) are skipped. The pass is linear in the
// fleet size: one lowering per rule, no evaluation.
func (e *Engine) VetFleet() []MergeGroup {
	e.mu.Lock()
	rules := make([]*temporalRule, 0, len(e.temporal))
	for _, r := range e.temporal {
		rules = append(rules, r)
	}
	e.mu.Unlock()

	env := e.cal.Env()
	byKey := map[string]*MergeGroup{}
	for _, r := range rules {
		prepped, gran, err := plan.Prepare(env, r.expr, nil)
		if err != nil {
			continue
		}
		key := "plan|" + gran.String() + "|" + prepped.String()
		exact := false
		if p, ok := plan.SymbolicPattern(env, prepped, gran); ok {
			if p == nil {
				key, exact = "sym|never", true
			} else if sp, sok := p.InSeconds(env.Chron, gran); sok {
				if sp == nil {
					key, exact = "sym|never", true
				} else {
					key, exact = "sym|"+sp.Starts().Canonical().String(), true
				}
			}
		}
		g := byKey[key]
		if g == nil {
			g = &MergeGroup{Key: key, Exact: exact}
			byKey[key] = g
		}
		g.Rules = append(g.Rules, r.name)
	}

	var out []MergeGroup
	for _, g := range byKey {
		if len(g.Rules) < 2 {
			continue
		}
		sort.Strings(g.Rules)
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rules[0] < out[j].Rules[0] })
	return out
}
