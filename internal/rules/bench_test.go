package rules

import (
	"fmt"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/store"
)

// BenchmarkNextTrigger measures one engine next-trigger computation per
// expression class, kernel against the seed windowed ablation
// (DisableNextKernel). The ratio here is the per-firing recompute cost that
// dominates DBCRON at fleet scale.
func BenchmarkNextTrigger(b *testing.B) {
	noop := FuncAction{Name: "noop", Fn: func(*store.Txn, *store.Event, int64) error { return nil }}
	for _, tc := range []struct{ name, src string }{
		{"basic", "DAYS"},
		{"weekly", "[2]/DAYS:during:WEEKS"},
		{"monthly", "[n]/DAYS:during:MONTHS"},
		{"quarterly", "[n]/DAYS:during:caloperate(MONTHS, 3)"},
	} {
		for _, mode := range []string{"kernel", "windowed"} {
			b.Run(tc.name+"/"+mode, func(b *testing.B) {
				eng, cal := newEngine(b)
				eng.DisableNextKernel = mode == "windowed"
				ch := cal.Chron()
				start := ch.EpochSecondsOf(d(1993, 1, 1))
				if err := eng.DefineTemporalRule("r", tc.src, noop, start); err != nil {
					b.Fatal(err)
				}
				eng.mu.Lock()
				r := eng.temporal["r"]
				eng.mu.Unlock()
				at := start
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					next, _, err := eng.nextTrigger(r, at)
					if err != nil {
						b.Fatal(err)
					}
					if next >= noTrigger {
						at = start
						continue
					}
					at = next
				}
			})
		}
	}
}

// fleetExprs returns `distinct` calendar expressions for a synthetic rule
// fleet: mostly monthly day picks, plus weekly and week-of-month shapes.
func fleetExprs(distinct int) []string {
	exprs := make([]string, 0, distinct)
	for k := 1; len(exprs) < distinct && k <= 28; k++ {
		exprs = append(exprs, fmt.Sprintf("[%d]/DAYS:during:MONTHS", k))
	}
	for k := 1; len(exprs) < distinct && k <= 7; k++ {
		exprs = append(exprs, fmt.Sprintf("[%d]/DAYS:during:WEEKS", k))
	}
	for k := 1; len(exprs) < distinct && k <= 4; k++ {
		exprs = append(exprs, fmt.Sprintf("[%d]/WEEKS:overlaps:MONTHS", k))
	}
	for k := 1; len(exprs) < distinct; k++ {
		exprs = append(exprs, fmt.Sprintf("[%d,%d]/DAYS:during:MONTHS", k, k+14))
	}
	return exprs
}

// BenchmarkProbe100kRules drives one probe-day of DBCRON over a fleet of
// 100k temporal rules sharing 50 distinct expressions — the scale target of
// the shared-plan fan-out. Each iteration advances the daemon one virtual
// day: one RULE-TIME probe plus every firing due that day (~3.5k with this
// mix).
func BenchmarkProbe100kRules(b *testing.B) {
	const nRules, distinct = 100_000, 50
	eng, cal := newEngine(b)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	noop := FuncAction{Name: "noop", Fn: func(*store.Txn, *store.Event, int64) error { return nil }}
	exprs := fleetExprs(distinct)
	defs := make([]TemporalRuleDef, nRules)
	for i := range defs {
		defs[i] = TemporalRuleDef{Name: fmt.Sprintf("r%d", i), CalExpr: exprs[i%distinct], Action: noop}
	}
	if err := eng.DefineTemporalRules(start, defs); err != nil {
		b.Fatal(err)
	}
	cron, err := NewDBCron(eng, chronology.SecondsPerDay, start)
	if err != nil {
		b.Fatal(err)
	}
	now := start
	b.ResetTimer()
	fired := 0
	for i := 0; i < b.N; i++ {
		now += chronology.SecondsPerDay
		fs, err := cron.AdvanceTo(now)
		if err != nil {
			b.Fatal(err)
		}
		fired += len(fs)
	}
	b.ReportMetric(float64(fired)/float64(b.N), "firings/day")
	_, probes := eng.PlanGroupStats()
	b.ReportMetric(float64(probes), "probes")
}
