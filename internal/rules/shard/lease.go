package shard

import (
	"errors"
	"fmt"
	"sync"

	"calsys/internal/faultinject"
	"calsys/internal/rules"
)

// ErrNotOwner is returned by Release when the caller's (worker, epoch) no
// longer matches the lease — it expired and was re-granted. The caller must
// treat the shard as lost, not owned.
var ErrNotOwner = errors.New("shard: lease not owned under this epoch")

// Lease is one shard's ownership record. Epoch is the fencing token: it
// increments on every grant (acquire, re-acquire or steal), so an old
// epoch's holder can always be told apart from the current owner no matter
// how the clock or the grants interleave.
type Lease struct {
	Shard     int
	Owner     string // "" = free
	Epoch     uint64
	ExpiresAt int64 // valid while now < ExpiresAt
}

// CoordStats counts coordinator-side lease traffic.
type CoordStats struct {
	Grants   int64 // leases granted (fresh or steal)
	Steals   int64 // grants that took an expired lease from another owner
	Renewals int64 // successful per-lease heartbeat extensions
	Releases int64 // voluntary releases
}

// Coordinator is the lease table of a sharded fleet: an in-memory stand-in
// for the coordination service (etcd, a SQL row set, ...) a deployed fleet
// would use, with the exact semantics the workers rely on — TTL expiry,
// heartbeat renewal, steal-on-expiry, epoch fencing. All methods take the
// caller's clock so virtual-time tests drive every edge deterministically.
type Coordinator struct {
	mu     sync.Mutex
	ttl    int64
	leases []Lease
	epoch  uint64
	// beat maps each worker to its liveness deadline; fair-share rebalance
	// divides shards among workers whose deadline has not passed.
	beat   map[string]int64
	faults *faultinject.Injector
	stats  CoordStats
}

// NewCoordinator creates the lease table for `shards` shards with leases
// valid for ttl seconds after each grant or renewal.
func NewCoordinator(shards int, ttl int64) *Coordinator {
	if shards <= 0 {
		shards = 1
	}
	if ttl <= 0 {
		ttl = 60
	}
	c := &Coordinator{ttl: ttl, leases: make([]Lease, shards), beat: map[string]int64{}}
	for i := range c.leases {
		c.leases[i].Shard = i
	}
	return c
}

// SetFaults threads a fault injector through the lease sites.
func (c *Coordinator) SetFaults(in *faultinject.Injector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = in
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.leases) }

// TTL returns the lease TTL in seconds.
func (c *Coordinator) TTL() int64 { return c.ttl }

// Heartbeat marks the worker live through now+TTL without touching leases
// (a worker with no shards still counts toward fair shares).
func (c *Coordinator) Heartbeat(worker string, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beat[worker] = now + c.ttl
}

// Depart removes a worker from the liveness set (graceful exit, after its
// leases are released) so fair shares redistribute to the survivors
// immediately instead of after a TTL lapse.
func (c *Coordinator) Depart(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.beat, worker)
}

// LiveWorkers counts workers whose liveness deadline has not passed.
func (c *Coordinator) LiveWorkers(now int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveLocked(now)
}

func (c *Coordinator) liveLocked(now int64) int {
	n := 0
	for _, dl := range c.beat {
		if now < dl {
			n++
		}
	}
	return n
}

// FairShare is the per-worker shard quota: ceil(shards / live workers).
// Workers release down to it when peers join and acquire up to it when
// shards are free or expired.
func (c *Coordinator) FairShare(now int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := c.liveLocked(now)
	if live < 1 {
		live = 1
	}
	return (len(c.leases) + live - 1) / live
}

// Acquire grants the worker up to max free or expired shards, renewing its
// liveness. Taking an expired lease from another owner is a steal and bumps
// the steal counter; every grant bumps the epoch — the fencing token.
func (c *Coordinator) Acquire(worker string, now int64, max int) ([]Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beat[worker] = now + c.ttl
	var out []Lease
	for i := range c.leases {
		if len(out) >= max {
			break
		}
		l := &c.leases[i]
		free := l.Owner == ""
		expired := !free && now >= l.ExpiresAt
		if !free && !expired {
			continue
		}
		// Crash-before-effect: a worker killed at the site dies without
		// the grant, so the shard stays takeable by the survivors.
		site := SiteAcquire
		if expired && l.Owner != worker {
			site = SiteSteal
		}
		if err := faultinject.Hit(c.faults, site); err != nil {
			return out, err
		}
		if site == SiteSteal {
			c.stats.Steals++
		}
		c.epoch++
		l.Owner = worker
		l.Epoch = c.epoch
		l.ExpiresAt = now + c.ttl
		c.stats.Grants++
		out = append(out, *l)
	}
	return out, nil
}

// Renew extends every still-valid lease of the worker by TTL and renews its
// liveness. Leases that already expired cannot be renewed — they are
// returned in lost and stay in the steal window (re-acquiring one mints a
// new epoch, so the old fencing token stays dead).
func (c *Coordinator) Renew(worker string, now int64) (kept []Lease, lost []int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := faultinject.Hit(c.faults, SiteRenew); err != nil {
		return nil, nil, err
	}
	c.beat[worker] = now + c.ttl
	for i := range c.leases {
		l := &c.leases[i]
		if l.Owner != worker {
			continue
		}
		if now >= l.ExpiresAt {
			lost = append(lost, l.Shard)
			continue
		}
		l.ExpiresAt = now + c.ttl
		c.stats.Renewals++
		kept = append(kept, *l)
	}
	return kept, lost, nil
}

// Release voluntarily frees a shard. The (worker, epoch) pair must match
// the current grant: a zombie cannot release the successor's lease.
func (c *Coordinator) Release(worker string, sh int, epoch uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh < 0 || sh >= len(c.leases) {
		return fmt.Errorf("shard: no shard %d", sh)
	}
	if err := faultinject.Hit(c.faults, SiteRelease); err != nil {
		return err
	}
	l := &c.leases[sh]
	if l.Owner != worker || l.Epoch != epoch {
		return fmt.Errorf("shard %d: %w", sh, ErrNotOwner)
	}
	l.Owner = ""
	l.ExpiresAt = 0
	c.stats.Releases++
	return nil
}

// Validate is the fencing check run inside every firing transaction: the
// epoch must be the shard's current grant and the lease unexpired.
// Expiry counts as fenced even before anyone steals — a worker that cannot
// prove ownership at commit time must not commit.
func (c *Coordinator) Validate(sh int, epoch uint64, now int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh < 0 || sh >= len(c.leases) {
		return fmt.Errorf("shard: no shard %d", sh)
	}
	l := c.leases[sh]
	if l.Owner == "" || l.Epoch != epoch || now >= l.ExpiresAt {
		return fmt.Errorf("shard %d epoch %d: %w", sh, epoch, rules.ErrFenced)
	}
	return nil
}

// Owner returns the shard's current lease record.
func (c *Coordinator) Owner(sh int) (Lease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh < 0 || sh >= len(c.leases) {
		return Lease{}, false
	}
	l := c.leases[sh]
	return l, l.Owner != ""
}

// Stats returns the coordinator's lease-traffic counters.
func (c *Coordinator) Stats() CoordStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
