package shard

// Fleet chaos harness: a multi-worker fleet splits a rule population across
// shards under TTL'd leases. Every run hard-kills one shard-owning worker at
// a seeded time (guaranteeing lease expiry and steal traffic) and arms ONE
// seeded crash site across the coordination and firing layers — crash before
// the journal commit, after it, during a heartbeat, mid-steal, mid-handoff.
// A replacement worker joins after the kill. Invariant under FireAll: every
// (rule, instant) executes EXACTLY once across all workers and epochs.
// Under SkipMissed: at most once.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/faultinject"
	"calsys/internal/rules"
	"calsys/internal/rules/journal"
	"calsys/internal/store"
)

// fleetSites is the kill matrix: the PR 4 daemon sites plus the lease and
// handoff sites introduced here.
var fleetSites = []string{
	SiteAcquire, SiteRenew, SiteSteal, SiteRelease, SiteHandoff,
	rules.SiteProbe, rules.SiteFire, rules.SiteAck, journal.SiteAppend,
}

const (
	fleetShards = 6
	fleetRules  = 12
	fleetDays   = 16
	fleetTTL    = int64(chronology.SecondsPerDay * 3 / 2) // 1.5 days
	quarter     = int64(chronology.SecondsPerDay / 4)
)

// armFleetSite arms one crash at a seed-chosen occurrence of the site,
// scaled to how often each site is hit so the crash (when it fires at all)
// lands early enough for the fleet to recover inside the run.
func armFleetSite(inj *faultinject.Injector, rng *rand.Rand, site string) {
	switch site {
	case SiteSteal:
		inj.CrashAt(site, 1+rng.Intn(2))
	case SiteRelease, SiteAcquire, SiteHandoff:
		inj.CrashAt(site, 1+rng.Intn(5))
	case SiteRenew:
		inj.CrashAt(site, 1+rng.Intn(25))
	case journal.SiteAppend:
		// Skip occurrence 1: the very first append is Open's magic line
		// during the first adoption; dying there is legal but proves less.
		inj.CrashAt(site, 2+rng.Intn(60))
	default: // probe / fire / ack
		inj.CrashAt(site, 1+rng.Intn(40))
	}
}

// chaosFleetRun drives one seeded fleet scenario. It returns per-rule
// per-instant execution counts, the expected instants, how many workers
// died (hard kill + injected), and the coordinator for stats.
func chaosFleetRun(t *testing.T, seed int64, site string, policy rules.CatchUpPolicy) (map[string]map[int64]int, []int64, int, *Coordinator, string) {
	t.Helper()
	db := store.NewDB()
	cal, err := caldb.New(db, chronology.MustNew(chronology.DefaultEpoch))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := rules.NewEngine(cal)
	if err != nil {
		t.Fatal(err)
	}
	eng.LookaheadDays = 60
	start := cal.Chron().EpochSecondsOf(chronology.Civil{Year: 1993, Month: 1, Day: 1})
	end := start + fleetDays*day

	counts := map[string]map[int64]int{}
	var defs []rules.TemporalRuleDef
	for i := 0; i < fleetRules; i++ {
		name := fmt.Sprintf("fleet-%d", i)
		counts[name] = map[int64]int{}
		m := counts[name]
		defs = append(defs, rules.TemporalRuleDef{
			Name:    name,
			CalExpr: "DAYS",
			Action: rules.FuncAction{Name: name, Fn: func(_ *store.Txn, _ *store.Event, at int64) error {
				m[at]++
				return nil
			}},
		})
	}
	if err := eng.DefineTemporalRules(start, defs); err != nil {
		t.Fatal(err)
	}
	var expected []int64
	for i := int64(1); i <= fleetDays; i++ {
		expected = append(expected, start+i*day)
	}

	inj := faultinject.New(seed)
	rng := rand.New(rand.NewSource(seed))
	armFleetSite(inj, rng, site)
	eng.SetFaults(inj)

	coord := NewCoordinator(fleetShards, fleetTTL)
	coord.SetFaults(inj)
	dir := t.TempDir()
	opts := Options{
		Retry:   rules.RetryPolicy{MaxAttempts: 3, BaseDelay: 1, MaxDelay: 2},
		CatchUp: policy,
		Seed:    seed,
		Faults:  inj,
	}
	mk := func(name string) *Worker { return New(name, coord, eng, day, dir, opts) }

	// Staggered joins; w0 is hard-killed at a seeded time; a replacement
	// joins a day later.
	joinAt := map[string]int64{
		"w0": start,
		"w1": start + quarter,
		"w2": start + 2*quarter,
	}
	killAt := start + (1+rng.Int63n(3))*day + rng.Int63n(4)*quarter
	joinAt["w3"] = killAt + day
	workers := map[string]*Worker{"w0": mk("w0"), "w1": mk("w1"), "w2": mk("w2"), "w3": mk("w3")}
	order := []string{"w0", "w1", "w2", "w3"}
	dead := map[string]bool{}
	kills, hardKilled := 0, false

	for now := start; now <= end; now += quarter {
		// SIGKILL: the first live, shard-owning worker stops dead — no
		// release, no drain. Its journal files stay on disk (every record
		// is flushed on write); its leases lapse into the steal window.
		if !hardKilled && now >= killAt {
			for _, name := range order {
				if !dead[name] && now > joinAt[name] && len(workers[name].Owned()) > 0 {
					dead[name] = true
					kills++
					hardKilled = true
					break
				}
			}
		}
		for _, name := range order {
			if dead[name] || now < joinAt[name] {
				continue
			}
			if err := workers[name].Tick(now); err != nil {
				if faultinject.IsCrash(err) {
					dead[name] = true
					kills++
					continue
				}
				t.Fatalf("seed %d site %s: %s tick at +%dd: %v",
					seed, site, name, (now-start)/day, err)
			}
		}
	}
	return counts, expected, kills, coord, dir
}

// saveFleetArtifacts copies a failing run's shard journals for CI upload.
func saveFleetArtifacts(t *testing.T, dir, tag string) {
	out := os.Getenv("CHAOS_ARTIFACTS")
	if out == "" {
		return
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.journal"))
	for _, f := range files {
		src, err := os.Open(f)
		if err != nil {
			continue
		}
		dst, err := os.Create(filepath.Join(out, tag+"-"+filepath.Base(f)))
		if err != nil {
			src.Close()
			continue
		}
		io.Copy(dst, src)
		dst.Close()
		src.Close()
	}
	t.Logf("%d journal artifacts saved for %s", len(files), tag)
}

// TestChaosFleetExactlyOnceFireAll kills workers at every matrix site across
// many seeds and proves the fleet-wide FireAll invariant: each (rule,
// instant) executes exactly once — across worker kills, lease steals, shard
// handoffs and zombie fencing — none lost, none doubled.
func TestChaosFleetExactlyOnceFireAll(t *testing.T) {
	const seedsPerSite = 8
	for _, site := range fleetSites {
		site := site
		t.Run(site, func(t *testing.T) {
			totalKills, totalSteals := 0, int64(0)
			for seed := int64(1); seed <= seedsPerSite; seed++ {
				counts, expected, kills, coord, dir := chaosFleetRun(t, seed, site, rules.FireAll)
				totalKills += kills
				totalSteals += coord.Stats().Steals
				for name, m := range counts {
					for _, at := range expected {
						if m[at] != 1 {
							t.Errorf("seed %d: %s at +%dd executed %d times, want exactly 1",
								seed, name, (at-expected[0])/day+1, m[at])
						}
					}
					for at, n := range m {
						if at < expected[0] || at > expected[len(expected)-1] || at%day != expected[0]%day {
							t.Errorf("seed %d: %s unexpected execution at %d (%d times)", seed, name, at, n)
						}
					}
				}
				if t.Failed() {
					saveFleetArtifacts(t, dir, fmt.Sprintf("fleet-fireall-%s-seed%d", site, seed))
					return
				}
			}
			// Every run hard-kills a shard owner, so a matrix arm with no
			// kills or no steals is a broken harness, not a pass.
			if totalKills < seedsPerSite {
				t.Errorf("site %s: only %d kills across %d seeds", site, totalKills, seedsPerSite)
			}
			if totalSteals == 0 {
				t.Errorf("site %s: no lease steals across %d seeds", site, seedsPerSite)
			}
		})
	}
}

// TestChaosFleetAtMostOnceSkip replays the matrix under SkipMissed: a
// stolen shard's missed instants may be skipped, but nothing ever fires
// twice and nothing fires off-schedule.
func TestChaosFleetAtMostOnceSkip(t *testing.T) {
	const seedsPerSite = 8
	for _, site := range fleetSites {
		site := site
		t.Run(site, func(t *testing.T) {
			totalKills := 0
			for seed := int64(1); seed <= seedsPerSite; seed++ {
				counts, expected, kills, _, dir := chaosFleetRun(t, seed, site, rules.SkipMissed)
				totalKills += kills
				for name, m := range counts {
					for at, n := range m {
						if n > 1 {
							t.Errorf("seed %d: %s at %d executed %d times, want at most 1", seed, name, at, n)
						}
						if at < expected[0] || at > expected[len(expected)-1] || at%day != expected[0]%day {
							t.Errorf("seed %d: %s unexpected execution at %d", seed, name, at)
						}
					}
				}
				if t.Failed() {
					saveFleetArtifacts(t, dir, fmt.Sprintf("fleet-skip-%s-seed%d", site, seed))
					return
				}
			}
			if totalKills < seedsPerSite {
				t.Errorf("site %s: only %d kills across %d seeds", site, totalKills, seedsPerSite)
			}
		})
	}
}
