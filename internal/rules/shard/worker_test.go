package shard

import (
	"fmt"
	"testing"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/rules"
	"calsys/internal/rules/journal"
	"calsys/internal/store"
)

// newTestEngine builds an engine over a fresh in-memory store and returns it
// with the epoch seconds of 1993-01-01.
func newTestEngine(t *testing.T) (*rules.Engine, int64) {
	t.Helper()
	db := store.NewDB()
	cal, err := caldb.New(db, chronology.MustNew(chronology.DefaultEpoch))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := rules.NewEngine(cal)
	if err != nil {
		t.Fatal(err)
	}
	eng.LookaheadDays = 60
	start := cal.Chron().EpochSecondsOf(chronology.Civil{Year: 1993, Month: 1, Day: 1})
	return eng, start
}

// defineDailies registers n daily rules ("fleet-0".."fleet-n") whose actions
// count executions per (rule, instant) into counts.
func defineDailies(t *testing.T, eng *rules.Engine, n int, start int64, counts map[string]map[int64]int) {
	t.Helper()
	var defs []rules.TemporalRuleDef
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("fleet-%d", i)
		counts[name] = map[int64]int{}
		m := counts[name]
		defs = append(defs, rules.TemporalRuleDef{
			Name:    name,
			CalExpr: "DAYS",
			Action: rules.FuncAction{Name: name, Fn: func(_ *store.Txn, _ *store.Event, at int64) error {
				m[at]++
				return nil
			}},
		})
	}
	if err := eng.DefineTemporalRules(start, defs); err != nil {
		t.Fatal(err)
	}
}

const day = int64(chronology.SecondsPerDay)

// TestFleetConvergesToFairShares: workers joining one by one rebalance by
// voluntary release/acquire only — a healthy fleet never steals.
func TestFleetConvergesToFairShares(t *testing.T) {
	eng, start := newTestEngine(t)
	coord := NewCoordinator(8, 4*day)
	dir := t.TempDir()
	opts := Options{CatchUp: rules.FireAll}
	w1 := New("w1", coord, eng, day, dir, opts)
	w2 := New("w2", coord, eng, day, dir, opts)
	w3 := New("w3", coord, eng, day, dir, opts)

	if err := w1.Tick(start); err != nil {
		t.Fatal(err)
	}
	if got := len(w1.Owned()); got != 8 {
		t.Fatalf("solo worker owns %d shards, want 8", got)
	}

	// w2 joins: fair share drops to 4; w1 must shed, w2 must pick up.
	now := start + 1
	if err := w2.Tick(now); err != nil { // counts itself live, nothing free yet
		t.Fatal(err)
	}
	if err := w1.Tick(now); err != nil { // sheds down to 4
		t.Fatal(err)
	}
	if err := w2.Tick(now); err != nil { // acquires the freed 4
		t.Fatal(err)
	}
	if a, b := len(w1.Owned()), len(w2.Owned()); a != 4 || b != 4 {
		t.Fatalf("after w2 join: w1=%d w2=%d, want 4/4", a, b)
	}

	// w3 joins: fair share ceil(8/3)=3.
	now++
	if err := w3.Tick(now); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w1.Tick(now); err != nil {
			t.Fatal(err)
		}
		if err := w2.Tick(now); err != nil {
			t.Fatal(err)
		}
		if err := w3.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	total := len(w1.Owned()) + len(w2.Owned()) + len(w3.Owned())
	if total != 8 {
		t.Fatalf("fleet owns %d shards total, want 8", total)
	}
	for _, w := range []*Worker{w1, w2, w3} {
		if n := len(w.Owned()); n > 3 {
			t.Fatalf("%s owns %d shards, want <= fair share 3", w.Name(), n)
		}
	}
	if st := coord.Stats(); st.Steals != 0 {
		t.Fatalf("healthy rebalance stole %d leases, want 0", st.Steals)
	}
}

// TestGracefulShutdownNoStealWindow: SIGTERM drains, compacts, releases and
// departs — the peer re-acquires the freed shards on its very next tick,
// with zero steals and zero lost firings.
func TestGracefulShutdownNoStealWindow(t *testing.T) {
	eng, start := newTestEngine(t)
	counts := map[string]map[int64]int{}
	defineDailies(t, eng, 6, start, counts)
	coord := NewCoordinator(4, 4*day)
	dir := t.TempDir()
	opts := Options{CatchUp: rules.FireAll}
	w1 := New("w1", coord, eng, day, dir, opts)
	w2 := New("w2", coord, eng, day, dir, opts)

	for nowd := int64(0); nowd <= 2; nowd++ {
		if err := w1.Tick(start + nowd*day); err != nil {
			t.Fatal(err)
		}
		if err := w2.Tick(start + nowd*day); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := len(w1.Owned()), len(w2.Owned()); a+b != 4 || a == 0 || b == 0 {
		t.Fatalf("split = %d/%d, want all 4 shards across both", a, b)
	}

	if err := w1.Shutdown(start + 2*day + 1); err != nil {
		t.Fatal(err)
	}
	if n := len(w1.Owned()); n != 0 {
		t.Fatalf("w1 owns %d shards after Shutdown, want 0", n)
	}
	// The very next w2 tick — one second later, far inside the TTL — takes
	// everything over: graceful exits never wait out a steal window.
	if err := w2.Tick(start + 2*day + 2); err != nil {
		t.Fatal(err)
	}
	if n := len(w2.Owned()); n != 4 {
		t.Fatalf("w2 owns %d shards after peer shutdown, want 4", n)
	}
	if st := coord.Stats(); st.Steals != 0 {
		t.Fatalf("graceful handoff stole %d leases, want 0", st.Steals)
	}

	// Finish the week on w2 alone; every instant fires exactly once.
	for nowd := int64(3); nowd <= 6; nowd++ {
		if err := w2.Tick(start + nowd*day); err != nil {
			t.Fatal(err)
		}
	}
	for name, m := range counts {
		for i := int64(1); i <= 6; i++ {
			if m[start+i*day] != 1 {
				t.Errorf("%s at day %d fired %d times, want 1", name, i, m[start+i*day])
			}
		}
	}
}

// TestNextWakeupReflectsGrantedShard: before owning anything the worker
// sleeps to its heartbeat; after a grant the wakeup is re-derived from the
// adopted shard's timing wheel.
func TestNextWakeupReflectsGrantedShard(t *testing.T) {
	eng, start := newTestEngine(t)
	counts := map[string]map[int64]int{}
	defineDailies(t, eng, 3, start, counts)
	coord := NewCoordinator(1, 40*day)
	w := New("w", coord, eng, day, t.TempDir(), Options{CatchUp: rules.FireAll, HeartbeatEvery: 20 * day})

	if wake := w.NextWakeup(start); wake != start+20*day {
		t.Fatalf("idle NextWakeup = %d, want heartbeat cap %d", wake, start+20*day)
	}
	if err := w.Tick(start); err != nil {
		t.Fatal(err)
	}
	wake := w.NextWakeup(start)
	if wake > start+day {
		t.Fatalf("NextWakeup after grant = %d, want <= next probe %d", wake, start+day)
	}
}

// TestZombieFencedEndToEnd: a worker that stops heartbeating keeps its cron
// state; after a peer steals and catches up, the zombie's next firing
// attempt is fenced inside the transaction — the action never runs, the
// RULE-TIME row is untouched, and every instant still fires exactly once.
func TestZombieFencedEndToEnd(t *testing.T) {
	eng, start := newTestEngine(t)
	counts := map[string]map[int64]int{}
	defineDailies(t, eng, 4, start, counts)
	coord := NewCoordinator(1, 2*day)
	dir := t.TempDir()
	opts := Options{CatchUp: rules.FireAll}
	w1 := New("w1", coord, eng, day, dir, opts)

	if err := w1.Tick(start); err != nil {
		t.Fatal(err)
	}
	if err := w1.Tick(start + day); err != nil { // fires day 1, renews
		t.Fatal(err)
	}
	for name, m := range counts {
		if m[start+day] != 1 {
			t.Fatalf("%s day 1 fired %d times before zombie phase", name, m[start+day])
		}
	}

	// w1 goes silent; its lease expires at day 3. w2 steals at day 3 and
	// catches up days 2 and 3 under FireAll.
	w2 := New("w2", coord, eng, day, dir, opts)
	if err := w2.Tick(start + 3*day); err != nil {
		t.Fatal(err)
	}
	if n := len(w2.Owned()); n != 1 {
		t.Fatalf("w2 owns %d shards after steal, want 1", n)
	}
	if st := coord.Stats(); st.Steals != 1 {
		t.Fatalf("Steals = %d, want 1", st.Steals)
	}

	// The zombie wakes and tries to catch up days 2..3 itself. The fence
	// must abort its firing transactions before any effect.
	if err := w1.Tick(start + 3*day + 10); err != nil {
		t.Fatal(err)
	}
	if st := w1.Stats(); st.Fenced != 1 || st.Owned != 0 {
		t.Fatalf("zombie stats = %+v, want Fenced=1 Owned=0", st)
	}
	for name, m := range counts {
		for i := int64(1); i <= 3; i++ {
			if m[start+i*day] != 1 {
				t.Errorf("%s day %d fired %d times, want exactly 1", name, i, m[start+i*day])
			}
		}
	}
}

// TestCompactRacingHandoff: a dead owner's journal handle survives into the
// successor's tenure and Compacts after the handoff already merged and
// deleted the file — resurrecting a stale-epoch journal on disk. The next
// handoff must re-merge it and deduplicate by RULE-TIME, never double-firing.
func TestCompactRacingHandoff(t *testing.T) {
	eng, start := newTestEngine(t)
	counts := map[string]map[int64]int{}
	defineDailies(t, eng, 4, start, counts)
	coord := NewCoordinator(1, 2*day)
	dir := t.TempDir()

	// First owner: drive a raw per-shard daemon under lease epoch 1 so the
	// test keeps its journal handle (the "zombie fd") after the kill.
	l1, err := coord.Acquire("w1", start, 1)
	if err != nil || len(l1) != 1 {
		t.Fatalf("Acquire = %v, %v", l1, err)
	}
	j1path := journal.ShardFile(dir, 0, l1[0].Epoch)
	j1, err := journal.Open(j1path, journal.WithSync(false))
	if err != nil {
		t.Fatal(err)
	}
	sh, ep := l1[0].Shard, l1[0].Epoch
	cron1, err := rules.NewDBCronWith(eng, day, start, rules.CronOptions{
		Journal: j1,
		CatchUp: rules.FireAll,
		Shard:   sh,
		Shards:  coord.Shards(),
		Fence:   func(at int64) error { return coord.Validate(sh, ep, at) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cron1.AdvanceTo(start + day); err != nil { // fires day 1
		t.Fatal(err)
	}
	cron1.Close() // killed: journal handle j1 stays open, lease left to expire

	// Second owner steals at day 3, merges + deletes the epoch-1 file, and
	// catches up days 2..3.
	opts := Options{CatchUp: rules.FireAll}
	w2 := New("w2", coord, eng, day, dir, opts)
	if err := w2.Tick(start + 3*day); err != nil {
		t.Fatal(err)
	}
	if st := coord.Stats(); st.Steals != 1 {
		t.Fatalf("Steals = %d, want 1", st.Steals)
	}

	// The zombie's Compact now lands AFTER the handoff: tmp+rename brings
	// the stale epoch-1 file back from the dead.
	if err := j1.Compact(); err != nil {
		t.Fatal(err)
	}
	j1.Close()
	if _, err := journal.ReplayFile(j1path); err != nil {
		t.Fatalf("resurrected journal unreadable: %v", err)
	}

	// w2 exits gracefully; the third owner merges BOTH files — the live
	// epoch-2 state and the resurrected stale one — and must come out with
	// day 1 already acked, not refire it.
	if err := w2.Tick(start + 4*day); err != nil {
		t.Fatal(err)
	}
	if err := w2.Shutdown(start + 4*day + 1); err != nil {
		t.Fatal(err)
	}
	w3 := New("w3", coord, eng, day, dir, opts)
	if err := w3.Tick(start + 5*day); err != nil {
		t.Fatal(err)
	}
	if n := len(w3.Owned()); n != 1 {
		t.Fatalf("w3 owns %d shards, want 1", n)
	}
	for name, m := range counts {
		for i := int64(1); i <= 5; i++ {
			if m[start+i*day] != 1 {
				t.Errorf("%s day %d fired %d times, want exactly 1", name, i, m[start+i*day])
			}
		}
	}
}

// TestShardPartitionCoverage: with multiple shards, every rule lands in
// exactly one shard's daemon — union of fired instants is complete, no rule
// fires under two shards.
func TestShardPartitionCoverage(t *testing.T) {
	eng, start := newTestEngine(t)
	counts := map[string]map[int64]int{}
	defineDailies(t, eng, 16, start, counts)
	coord := NewCoordinator(4, 10*day)
	dir := t.TempDir()
	w := New("w", coord, eng, day, dir, Options{CatchUp: rules.FireAll})
	for i := int64(0); i <= 3; i++ {
		if err := w.Tick(start + i*day); err != nil {
			t.Fatal(err)
		}
	}
	for name, m := range counts {
		for i := int64(1); i <= 3; i++ {
			if m[start+i*day] != 1 {
				t.Errorf("%s day %d fired %d times, want exactly 1", name, i, m[start+i*day])
			}
		}
	}
	// The 16 rules must actually spread across shards (FNV over these names
	// hits more than one of 4 buckets).
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		seen[rules.ShardOf(fmt.Sprintf("fleet-%d", i), 4)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all 16 rules hashed to %d shard(s); partition degenerate", len(seen))
	}
}

// TestWorkerFiredStatSurvivesHandoff: Fired counts accumulate across
// release/drop so fleet accounting stays truthful.
func TestWorkerFiredStatSurvivesHandoff(t *testing.T) {
	eng, start := newTestEngine(t)
	counts := map[string]map[int64]int{}
	defineDailies(t, eng, 2, start, counts)
	coord := NewCoordinator(1, 10*day)
	w := New("w", coord, eng, day, t.TempDir(), Options{CatchUp: rules.FireAll})
	if err := w.Tick(start); err != nil {
		t.Fatal(err)
	}
	if err := w.Tick(start + 2*day); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Fired != 4 { // 2 rules × days 1,2
		t.Fatalf("Fired = %d, want 4", st.Fired)
	}
	if err := w.Shutdown(start + 2*day + 1); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Fired != 4 || st.Released != 1 {
		t.Fatalf("post-shutdown stats = %+v, want Fired=4 Released=1", st)
	}
}
